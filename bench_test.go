// Benchmarks regenerating the paper's evaluation (§VI), one per figure,
// plus micro-benchmarks of the framework's building blocks and ablation
// benches for the design choices called out in DESIGN.md.
//
// Figure benches report their headline series values through
// b.ReportMetric (custom units), so `go test -bench=. -benchmem` prints
// the reproduced numbers alongside timing. Benchmark scale follows
// experiments.Default() — the paper's sweep scaled to benchmark time;
// run `rideshare experiments -scale paper` for full-scale series.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/bound"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/lp"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/pricing"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/spatial"
	"repro/internal/stats"
	"repro/internal/taskmap"
	"repro/internal/trace"
)

// benchProblem builds the standard bench-scale market once per call.
func benchProblem(b *testing.B, seed int64, tasks, drivers int, dm trace.DriverModel) *core.Problem {
	b.Helper()
	cfg := trace.NewConfig(seed, tasks, drivers, dm)
	tr := trace.NewGenerator(cfg).Generate(nil)
	p, err := core.NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// --- Figure 3 & 4: trace distributions -------------------------------

func BenchmarkFig3TravelTimeDistribution(b *testing.B) {
	cfg := experiments.Default()
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Fig3TravelTime(cfg)
	}
	if len(fig.Series) > 0 {
		xs := fig.Series[0].X
		b.ReportMetric(xs[len(xs)-1], "max-min(tt)")
	}
}

func BenchmarkFig4TravelDistanceDistribution(b *testing.B) {
	cfg := experiments.Default()
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Fig4TravelDistance(cfg)
	}
	if len(fig.Series) > 0 {
		xs := fig.Series[0].X
		b.ReportMetric(xs[len(xs)-1], "max-km")
	}
}

// --- Figure 5: performance ratio vs driver count ---------------------

func benchmarkFig5(b *testing.B, dm trace.DriverModel) {
	cfg := experiments.Default()
	cfg.Sweep = []int{20, 60, 120} // bench-speed subset of the sweep
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Fig5PerformanceRatio(context.Background(), cfg, dm)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the final (densest-market) ratio of each curve.
	for _, s := range fig.Series {
		b.ReportMetric(s.Y[len(s.Y)-1], "ratio-"+s.Name)
	}
}

func BenchmarkFig5PerformanceRatioHitchhiking(b *testing.B) {
	benchmarkFig5(b, trace.Hitchhiking)
}

func BenchmarkFig5PerformanceRatioHomeWorkHome(b *testing.B) {
	benchmarkFig5(b, trace.HomeWorkHome)
}

// --- Figures 6–9: market-density study -------------------------------

func densitySweep(b *testing.B) experiments.DensityMetrics {
	b.Helper()
	cfg := experiments.Default()
	var m experiments.DensityMetrics
	for i := 0; i < b.N; i++ {
		var err error
		m, err = experiments.RunDensitySweep(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return m
}

func BenchmarkFig6TotalRevenue(b *testing.B) {
	m := densitySweep(b)
	last := len(m.Drivers) - 1
	b.ReportMetric(m.Revenue[0][0], "rev-sparse")
	b.ReportMetric(m.Revenue[0][last], "rev-dense")
}

func BenchmarkFig7ServeRate(b *testing.B) {
	m := densitySweep(b)
	last := len(m.Drivers) - 1
	b.ReportMetric(m.ServeRate[0][0], "serve-sparse")
	b.ReportMetric(m.ServeRate[0][last], "serve-dense")
}

func BenchmarkFig8AvgRevenuePerDriver(b *testing.B) {
	m := densitySweep(b)
	last := len(m.Drivers) - 1
	b.ReportMetric(m.AvgRev[0][0], "avgrev-sparse")
	b.ReportMetric(m.AvgRev[0][last], "avgrev-dense")
}

func BenchmarkFig9AvgTasksPerDriver(b *testing.B) {
	m := densitySweep(b)
	last := len(m.Drivers) - 1
	b.ReportMetric(m.AvgTasks[0][0], "avgtasks-sparse")
	b.ReportMetric(m.AvgTasks[0][last], "avgtasks-dense")
}

// --- §VI-B small-scale exact comparison (CPLEX role) -----------------

func BenchmarkExactSmallScale(b *testing.B) {
	// The paper's n ≤ 50, m ≤ 100 exact regime, shrunk to B&B-friendly
	// size: exact Z* via the arc-formulation MILP.
	p := benchProblem(b, 1, 12, 4, trace.Hitchhiking)
	g := p.Graph()
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := bound.ExactMILP(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		greedy := offline.Greedy(g).TotalProfit
		gap = greedy / ex.Objective
	}
	b.ReportMetric(gap, "greedy/Z*")
}

// --- Fig. 2 / Theorem 1: tightness instance --------------------------

func BenchmarkTightnessInstance(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		mkt, drivers, tasks, err := offline.TightnessInstance(6, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		g, err := taskmap.New(mkt, drivers, tasks)
		if err != nil {
			b.Fatal(err)
		}
		ga := offline.Greedy(g)
		ex, err := bound.BruteForce(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratio = ga.TotalProfit / ex.Objective
	}
	b.ReportMetric(ratio, "GA/OPT")
}

// --- Micro-benchmarks: substrates ------------------------------------

func BenchmarkTaskMapConstruction(b *testing.B) {
	cfg := trace.NewConfig(3, 250, 40, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taskmap.New(cfg.Market, tr.Drivers, tr.Tasks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLongestPathDP(b *testing.B) {
	p := benchProblem(b, 3, 250, 40, trace.Hitchhiking)
	g := p.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BestPath(i%g.N(), nil, nil)
	}
}

func BenchmarkSimplexMediumLP(b *testing.B) {
	// A 60x120 random-ish dense LP, the master-LP shape.
	build := func() *lp.Problem {
		p := lp.NewProblem(120)
		for j := 0; j < 120; j++ {
			p.SetObjective(j, float64((j*37)%11)-3)
		}
		for i := 0; i < 60; i++ {
			entries := make([]lp.Entry, 0, 12)
			for k := 0; k < 12; k++ {
				col := (i*13 + k*7) % 120
				entries = append(entries, lp.Entry{Col: col, Val: float64((i+k)%5) + 0.5})
			}
			p.AddRow(lp.LE, float64(5+i%7), entries...)
		}
		return p
	}
	prob := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColumnGenerationSmall(b *testing.B) {
	p := benchProblem(b, 5, 40, 8, trace.Hitchhiking)
	g := p.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bound.ColumnGeneration(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLagrangianBound(b *testing.B) {
	p := benchProblem(b, 5, 250, 60, trace.Hitchhiking)
	g := p.Graph()
	lb := offline.Greedy(g).TotalProfit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bound.Lagrangian(g, lb, 60)
	}
}

func BenchmarkOnlineMaxMargin(b *testing.B) {
	cfg := trace.NewConfig(7, 250, 40, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(tr.Tasks, online.MaxMargin{})
	}
}

func BenchmarkOnlineNearest(b *testing.B) {
	cfg := trace.NewConfig(7, 250, 40, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(tr.Tasks, online.Nearest{})
	}
}

// --- Spatial index: dispatch at fleet scale ---------------------------

// benchmarkDispatchScale runs a full online day at city-fleet driver
// counts under one candidate source. The scan engine pays O(N) per
// task; the grid-indexed engine only examines drivers inside the
// pickup's reachability radius; the zone-sharded engine additionally
// partitions that radius across per-zone indexes queried concurrently.
// All paths produce identical results (asserted by the sim differential
// tests); the "served" metric is reported so a divergence would also be
// visible here. `rideshare bench` records the same measurements as the
// machine-readable BENCH_2.json trajectory.
func benchmarkDispatchScale(b *testing.B, drivers int, src func() sim.CandidateSource) {
	if testing.Short() {
		b.Skip("full-day city-scale dispatch is seconds per op; skipped in -short smoke runs")
	}
	cfg := trace.NewConfig(27, 1000, drivers, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		b.Fatal(err)
	}
	if s := src(); s != nil {
		eng.SetCandidateSource(s)
	}
	var served int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		served = eng.Run(tr.Tasks, online.MaxMargin{}).Served
	}
	b.ReportMetric(float64(served), "served")
}

func scanSrc() sim.CandidateSource { return nil }
func gridSrc() sim.CandidateSource { return sim.NewGridSource(nil) }
func shardedSrc(n int) func() sim.CandidateSource {
	return func() sim.CandidateSource { return sim.NewShardedSource(n) }
}

func BenchmarkOnlineMaxMarginScan10k(b *testing.B) { benchmarkDispatchScale(b, 10_000, scanSrc) }
func BenchmarkOnlineMaxMarginGrid10k(b *testing.B) { benchmarkDispatchScale(b, 10_000, gridSrc) }
func BenchmarkOnlineMaxMarginScan50k(b *testing.B) { benchmarkDispatchScale(b, 50_000, scanSrc) }
func BenchmarkOnlineMaxMarginGrid50k(b *testing.B) { benchmarkDispatchScale(b, 50_000, gridSrc) }

func BenchmarkOnlineMaxMarginSharded1x50k(b *testing.B) {
	benchmarkDispatchScale(b, 50_000, shardedSrc(1))
}
func BenchmarkOnlineMaxMarginSharded4x50k(b *testing.B) {
	benchmarkDispatchScale(b, 50_000, shardedSrc(4))
}
func BenchmarkOnlineMaxMarginSharded8x50k(b *testing.B) {
	benchmarkDispatchScale(b, 50_000, shardedSrc(8))
}

// BenchmarkScenarioChurn measures the event-driven engine on the
// dynamic workload the batch replayer could not express: a 10k-driver
// day with mid-day joins, early retirements and rider cancellations,
// dispatched through the sharded source.
func BenchmarkScenarioChurn10k(b *testing.B) {
	if testing.Short() {
		b.Skip("city-scale scenario day; skipped in -short smoke runs")
	}
	cfg := trace.NewConfig(27, 1000, 10_000, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	events := trace.WithChurn(tr, trace.ChurnConfig{
		Seed: 31, JoinFraction: 0.25, RetireFraction: 0.2, CancelFraction: 0.15,
	})
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng.SetCandidateSource(sim.NewShardedSource(4))
	var res sim.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eng.RunScenario(tr.Tasks, events, online.MaxMargin{})
	}
	b.ReportMetric(float64(res.Served), "served")
	b.ReportMetric(float64(res.Cancelled), "cancelled")
}

// BenchmarkSpatialIndexNear measures one radius query against a 10k-point
// index — the per-task cost floor of grid-indexed dispatch.
func BenchmarkSpatialIndexNear(b *testing.B) {
	rng := trace.NewGenerator(trace.NewConfig(29, 10_000, 1, trace.Hitchhiking))
	tasks := rng.GenerateTasks()
	pts := make([]geo.Point, len(tasks))
	for i, tk := range tasks {
		pts[i] = tk.Source
	}
	grid := geo.NewGrid(geo.PortoBox, 64, 64)
	ix := spatial.NewIndex(grid, pts)
	var visited int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		visited = 0
		ix.Near(pts[i%len(pts)], 2.5, func(int) { visited++ })
	}
	b.ReportMetric(float64(visited), "visited")
}

// BenchmarkDensitySweepSerial vs ...Parallel measures the worker-pool
// speedup of the Figs 6–9 sweep (identical series either way; the win
// scales with core count).
func benchmarkDensitySweep(b *testing.B, workers int) {
	cfg := experiments.Default()
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDensitySweep(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDensitySweepSerial(b *testing.B)   { benchmarkDensitySweep(b, 1) }
func BenchmarkDensitySweepParallel(b *testing.B) { benchmarkDensitySweep(b, 0) }

func BenchmarkSurgePricer(b *testing.B) {
	m := model.DefaultMarket()
	grid := geo.NewGrid(geo.PortoBox, 8, 8)
	s := pricing.NewSurge(pricing.NewLinear(m, 1), grid, 3)
	tk := model.Task{Source: geo.PortoBox.Center(), Dest: geo.PortoBox.Lerp(0.8, 0.8),
		StartBy: 600, EndBy: 1800}
	s.ObserveDemand(tk.Source, 5)
	s.ObserveSupply(tk.Source, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Price(tk)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := trace.NewConfig(11, 1000, 100, trace.Hitchhiking)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.NewGenerator(cfg).Generate(nil)
	}
}

func BenchmarkPowerLawFit(b *testing.B) {
	cfg := trace.NewConfig(13, 5000, 1, trace.Hitchhiking)
	tasks := trace.NewGenerator(cfg).GenerateTasks()
	xs := make([]float64, len(tasks))
	for i, tk := range tasks {
		xs[i] = cfg.Market.Dist(tk.Source, tk.Dest)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.FitPowerLaw(xs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md design choices) ----------------------------

// BenchmarkAblationGreedyLazy vs ...GreedyNaive quantifies the lazy
// priority-queue evaluation against the textbook O(N²M²) loop on the
// same instance (identical output, see offline tests).
func BenchmarkAblationGreedyLazy(b *testing.B) {
	p := benchProblem(b, 9, 250, 60, trace.Hitchhiking)
	g := p.Graph()
	var rec int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec = offline.Greedy(g).Recomputes
	}
	b.ReportMetric(float64(rec), "dp-calls")
}

func BenchmarkAblationGreedyNaive(b *testing.B) {
	p := benchProblem(b, 9, 250, 60, trace.Hitchhiking)
	g := p.Graph()
	var rec int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec = offline.GreedyNaive(g).Recomputes
	}
	b.ReportMetric(float64(rec), "dp-calls")
}

// BenchmarkAblationDeadlineVsRealTime quantifies how much extra capacity
// the online market gains when drivers free up at real finish times
// (§III-B) instead of deadlines (Algorithms 3–4 as written).
func BenchmarkAblationDeadlineAvailability(b *testing.B) {
	benchmarkAvailability(b, false)
}

func BenchmarkAblationRealTimeAvailability(b *testing.B) {
	benchmarkAvailability(b, true)
}

func benchmarkAvailability(b *testing.B, realTime bool) {
	cfg := trace.NewConfig(15, 250, 40, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng.RealTime = realTime
	var profit float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profit = eng.Run(tr.Tasks, online.MaxMargin{}).TotalProfit
	}
	b.ReportMetric(profit, "profit")
}

// BenchmarkAblationByValueOrdering measures the offline sorted variant
// of maxMargin (§V-B) against arrival-order processing.
func BenchmarkAblationByValueOrdering(b *testing.B) {
	cfg := trace.NewConfig(17, 250, 40, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		b.Fatal(err)
	}
	var arrival, byValue float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrival = eng.Run(tr.Tasks, online.MaxMargin{}).TotalProfit
		byValue = eng.RunByValue(tr.Tasks, online.MaxMargin{}).TotalProfit
	}
	b.ReportMetric(arrival, "profit-arrival")
	b.ReportMetric(byValue, "profit-byvalue")
}

// BenchmarkAblationSurgeVsFlat compares market outcomes under flat and
// surge pricing on the same demand curve (the paper's §VI-C discussion
// of congestion control levers).
func BenchmarkAblationSurgeVsFlat(b *testing.B) {
	cfg := trace.NewConfig(19, 250, 40, trace.HomeWorkHome)
	gen := trace.NewGenerator(cfg)
	flatTrace := gen.Generate(pricing.NewLinear(cfg.Market, 1))
	surgeTasks := append([]model.Task(nil), flatTrace.Tasks...)
	grid := geo.NewGrid(cfg.Box, 6, 6)
	surge := pricing.NewSurge(pricing.NewLinear(cfg.Market, 1), grid, 3)
	for _, d := range flatTrace.Drivers {
		surge.ObserveSupply(d.Source, 1)
	}
	for i := range surgeTasks {
		surge.ObserveDemand(surgeTasks[i].Source, 1)
		surgeTasks[i].Price = surge.Price(surgeTasks[i])
		surgeTasks[i].WTP = surgeTasks[i].Price * 1.5
	}
	eng, err := sim.New(cfg.Market, flatTrace.Drivers, 1)
	if err != nil {
		b.Fatal(err)
	}
	var flat, surged float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flat = eng.Run(flatTrace.Tasks, online.MaxMargin{}).TotalProfit
		surged = eng.Run(surgeTasks, online.MaxMargin{}).TotalProfit
	}
	b.ReportMetric(flat, "profit-flat")
	b.ReportMetric(surged, "profit-surge")
}

// BenchmarkAblationBatchedDispatch compares batched maximum-weight
// matching dispatch (Hungarian per 30s window) against instant per-task
// assignment on the same day — the framework's implementation of the
// paper's "non-heuristic online algorithms" future-work direction.
func BenchmarkAblationBatchedDispatch(b *testing.B) {
	cfg := trace.NewConfig(21, 250, 40, trace.Hitchhiking)
	cfg.PickupWindowMin = 10 * 60 // batching needs notice to breathe
	cfg.PickupWindowMax = 20 * 60
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		b.Fatal(err)
	}
	var instant, batched float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instant = eng.Run(tr.Tasks, online.MaxMargin{}).TotalProfit
		batched = eng.RunBatched(tr.Tasks, 30, sim.BatchHungarian).TotalProfit
	}
	b.ReportMetric(instant, "profit-instant")
	b.ReportMetric(batched, "profit-batched")
}

func BenchmarkHungarianMatching(b *testing.B) {
	// Batch-shaped instance: 12 tasks x 40 drivers.
	w := make([][]float64, 12)
	for r := range w {
		w[r] = make([]float64, 40)
		for c := range w[r] {
			if (r*41+c*17)%5 == 0 {
				w[r][c] = matching.Forbidden
				continue
			}
			w[r][c] = float64((r*31+c*13)%23) - 5
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matching.Hungarian(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuctionMatching(b *testing.B) {
	w := make([][]float64, 12)
	for r := range w {
		w[r] = make([]float64, 40)
		for c := range w[r] {
			if (r*41+c*17)%5 == 0 {
				w[r][c] = matching.Forbidden
				continue
			}
			w[r][c] = float64((r*31+c*13)%23) - 5
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matching.Auction(w, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoadNetworkRouting(b *testing.B) {
	g, err := roadnet.GenerateGrid(roadnet.DefaultGridConfig())
	if err != nil {
		b.Fatal(err)
	}
	router := roadnet.NewRouter(g, geo.PortoBox, 10)
	pts := make([]geo.Point, 64)
	for i := range pts {
		pts[i] = geo.PortoBox.Lerp(float64(i%8)/8+0.05, float64(i/8)/8+0.05)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router.Dist(pts[i%64], pts[(i*7+3)%64])
	}
}

// BenchmarkAblationRoadVsCrowFly builds the same market under network
// and straight-line distances and reports the greedy profit gap (the
// estimation-error story of examples/roadnetwork).
func BenchmarkAblationRoadVsCrowFly(b *testing.B) {
	g, err := roadnet.GenerateGrid(roadnet.DefaultGridConfig())
	if err != nil {
		b.Fatal(err)
	}
	router := roadnet.NewRouter(g, geo.PortoBox, 10)
	cfg := trace.NewConfig(23, 150, 25, trace.Hitchhiking)
	cfg.Market.Dist = router.Dist
	tr := trace.NewGenerator(cfg).Generate(nil)

	roadP, err := core.NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		b.Fatal(err)
	}
	crowMkt := cfg.Market
	crowMkt.Dist = geo.Equirectangular
	crowP, err := core.NewProblem(crowMkt, tr.Drivers, tr.Tasks)
	if err != nil {
		b.Fatal(err)
	}
	var road, promised, delivered float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roadSol := offline.Greedy(roadP.Graph())
		crowSol := offline.Greedy(crowP.Graph())
		road = roadSol.TotalProfit
		promised = crowSol.TotalProfit
		delivered = 0
		for _, path := range crowSol.Paths {
			if pr, err := roadP.Graph().PathProfit(path.Driver, path.Tasks); err == nil {
				delivered += pr
			}
		}
	}
	b.ReportMetric(road, "profit-road-aware")
	b.ReportMetric(promised, "profit-crow-promised")
	b.ReportMetric(delivered, "profit-crow-delivered")
}

// BenchmarkAblationReplanDispatch measures rolling-horizon
// re-optimization (offline greedy re-run at every arrival) against the
// instant maxMargin heuristic — the strongest online strategy in the
// framework versus the paper's best heuristic.
func BenchmarkAblationReplanDispatch(b *testing.B) {
	cfg := trace.NewConfig(25, 250, 40, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		b.Fatal(err)
	}
	var replan, instant float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replan = eng.RunReplan(tr.Tasks, 120).TotalProfit
		instant = eng.Run(tr.Tasks, online.MaxMargin{}).TotalProfit
	}
	b.ReportMetric(replan, "profit-replan")
	b.ReportMetric(instant, "profit-instant")
}

// --- Extension experiments -------------------------------------------

// BenchmarkExtWelfareGap quantifies §III-E's claim that optimizing
// drivers' profit (Eq. 4) is "enough": the welfare attained by the
// profit objective vs the welfare objective.
func BenchmarkExtWelfareGap(b *testing.B) {
	cfg := experiments.Default()
	cfg.Sweep = []int{60}
	var rows []experiments.WelfareRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.WelfareComparison(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ProfitObjWelfare, "welfare-profit-obj")
	b.ReportMetric(rows[0].WelfareObjWelfare, "welfare-welfare-obj")
}

// BenchmarkExtSurgeSweep reports the serve rate and earnings inequality
// at the extremes of the surge-cap sweep (§VI-C congestion levers).
func BenchmarkExtSurgeSweep(b *testing.B) {
	cfg := experiments.Default()
	var rows []experiments.SurgeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.SurgeSweep(context.Background(), cfg, 40, []float64{1, 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AvgProfit, "avgprofit-flat")
	b.ReportMetric(rows[1].AvgProfit, "avgprofit-surge3")
	b.ReportMetric(rows[1].Gini, "gini-surge3")
}

// BenchmarkExtDispatchComparison lines up all five dispatch strategies.
func BenchmarkExtDispatchComparison(b *testing.B) {
	cfg := experiments.Default()
	var rows []experiments.DispatchRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.DispatchComparison(context.Background(), cfg, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Ratio, "ratio-"+r.Name[:7])
	}
}
