package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/dispatch"
	"repro/internal/trace"
)

// cmdLoadgen is the traffic half of the serve front end: it generates a
// synthetic day of rider orders and drives them against a running
// `rideshare serve` instance over HTTP — concurrent submitters, a
// configurable cancellation rate — then reads back the server's settled
// stats. It is both a demo client and the sustained-load check the
// acceptance bar asks for (≥ 1k tasks end-to-end).

type loadgenReport struct {
	Submitted int `json:"submitted"`
	Assigned  int `json:"assigned"`
	Rejected  int `json:"rejected"`
	// Pending counts orders a batched server answered with a pending
	// handle; after the stream drains, each one is polled once via
	// GET /v1/tasks/{id} and folded into Assigned/Rejected if its
	// window has closed by then. Orders still undecided (the server's
	// final window never closed) remain counted here.
	Pending int `json:"pending,omitempty"`
	Cancels int `json:"cancellations_sent"`
	Errors  int `json:"errors"`
	// FirstError carries the first failure's text so a non-zero Errors
	// count in a smoke run is diagnosable from the report alone.
	FirstError string  `json:"first_error,omitempty"`
	Seconds    float64 `json:"seconds"`
	PerSec     float64 `json:"tasks_per_sec"`
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	baseURL := fs.String("addr", "http://127.0.0.1:8080", "base URL of the rideshare serve instance")
	tasks := fs.Int("tasks", 1000, "orders to submit")
	seed := fs.Int64("seed", 1, "order generation seed")
	workers := fs.Int("workers", 4, "concurrent submitter goroutines")
	cancel := fs.Float64("cancel", 0, "fraction of assigned orders cancelled right after assignment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkPositive("loadgen", map[string]int{"-tasks": *tasks, "-workers": *workers}); err != nil {
		return err
	}
	if err := checkFraction("loadgen", map[string]float64{"-cancel": *cancel}); err != nil {
		return err
	}

	// Generate(nil) rather than GenerateTasks: the latter leaves tasks
	// unpriced, and an unpriced order is never profitable to serve.
	cfg := trace.NewConfig(*seed, *tasks, 1, trace.Hitchhiking)
	gen := trace.NewGenerator(cfg).Generate(nil).Tasks
	sort.Slice(gen, func(a, b int) bool { return gen[a].Publish < gen[b].Publish })

	report, err := runLoad(*baseURL, *workers, *cancel, *seed, func(i int) dispatch.Task {
		return toDispatchTask(i, gen[i])
	}, len(gen))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d submitted (%d assigned, %d rejected, %d pending, %d errors) in %.2fs — %.0f tasks/s\n",
		report.Submitted, report.Assigned, report.Rejected, report.Pending, report.Errors, report.Seconds, report.PerSec)

	resp, err := http.Get(*baseURL + "/v1/stats")
	if err != nil {
		return fmt.Errorf("loadgen: stats: %w", err)
	}
	defer resp.Body.Close()
	stats, _ := io.ReadAll(resp.Body)
	fmt.Printf("server stats: %s", stats)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// runLoad submits mk(0..n-1) against the server with the given worker
// count, optionally cancelling a fraction of assigned orders, and
// aggregates the client-side view. Workers stripe the publish-sorted
// order stream round-robin, so submission order is approximately
// time-ordered and the server's late-event clamping absorbs the rest.
// Against a batched server, submissions come back pending; each pending
// order is re-polled once after the stream drains, by which time later
// traffic has closed all but (at most) the final window.
func runLoad(baseURL string, workers int, cancelFrac float64, seed int64, mk func(i int) dispatch.Task, n int) (loadgenReport, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	var assigned, rejected, errs, cancels atomic.Int64
	var mu sync.Mutex
	var pendingIDs []int
	withdrawn := make(map[int]bool) // cancels this client landed on pending orders
	var firstErr string
	fail := func(err error) {
		errs.Add(1)
		mu.Lock()
		if firstErr == "" {
			firstErr = err.Error()
		}
		mu.Unlock()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := w; i < n; i += workers {
				task := mk(i)
				var a dispatch.Assignment
				if err := postJSON(client, baseURL+"/v1/tasks", task, &a); err != nil {
					fail(err)
					continue
				}
				if a.Pending {
					mu.Lock()
					pendingIDs = append(pendingIDs, task.ID)
					mu.Unlock()
					// A batched rider can still change her mind while the
					// window is open.
					if cancelFrac > 0 && rng.Float64() < cancelFrac {
						var out dispatch.CancelOutcome
						url := fmt.Sprintf("%s/v1/tasks/%d/cancel", baseURL, task.ID)
						if err := postJSON(client, url, map[string]float64{"at": a.DecidedAt + 1}, &out); err != nil {
							fail(err)
							continue
						}
						cancels.Add(1)
						if out.Cancelled {
							mu.Lock()
							withdrawn[task.ID] = true
							mu.Unlock()
						}
					}
					continue
				}
				if !a.Assigned {
					rejected.Add(1)
					continue
				}
				assigned.Add(1)
				if cancelFrac > 0 && rng.Float64() < cancelFrac {
					var out dispatch.CancelOutcome
					url := fmt.Sprintf("%s/v1/tasks/%d/cancel", baseURL, task.ID)
					if err := postJSON(client, url, map[string]float64{"at": a.DecidedAt + 1}, &out); err != nil {
						fail(err)
						continue
					}
					cancels.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	// The timed window ends here: the sequential decision polls below
	// are bookkeeping, and folding them in would deflate tasks/s on
	// batched runs (n extra round-trips) relative to instant ones.
	elapsed := time.Since(start).Seconds()

	// Fold in decisions for orders that were pending at submission. An
	// order this client successfully withdrew is a cancellation, not a
	// platform rejection — it is already counted under Cancels.
	stillPending := 0
	for _, id := range pendingIDs {
		if withdrawn[id] {
			continue
		}
		var a dispatch.Assignment
		if err := fetchJSON(client, fmt.Sprintf("%s/v1/tasks/%d", baseURL, id), &a); err != nil {
			fail(err)
			continue
		}
		switch {
		case a.Pending:
			stillPending++
		case a.Assigned:
			assigned.Add(1)
		default:
			rejected.Add(1)
		}
	}

	report := loadgenReport{
		Submitted:  n,
		Assigned:   int(assigned.Load()),
		Rejected:   int(rejected.Load()),
		Pending:    stillPending,
		Cancels:    int(cancels.Load()),
		Errors:     int(errs.Load()),
		FirstError: firstErr,
		Seconds:    elapsed,
		PerSec:     float64(n) / elapsed,
	}
	if report.Errors > 0 {
		return report, fmt.Errorf("loadgen: %d of %d requests failed (first: %s)", report.Errors, n, firstErr)
	}
	return report, nil
}

// fetchJSON fetches url and decodes the JSON response into out, treating
// any non-2xx status as an error.
func fetchJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON posts v and decodes the JSON response into out, treating any
// non-2xx status as an error.
func postJSON(client *http.Client, url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
