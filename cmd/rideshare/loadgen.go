package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/dispatch"
	"repro/internal/stats"
	"repro/internal/trace"
)

// cmdLoadgen is the traffic half of the serve front end: it generates a
// synthetic day of rider orders and drives them against a running
// `rideshare serve` instance over HTTP, then reads back the server's
// settled stats. Two pacing modes:
//
//   - Closed loop (default): -workers concurrent submitters, each
//     firing its next order as soon as the previous answer lands. Good
//     for sustained-throughput smoke checks.
//   - Open loop (-rate R): orders fire on a fixed schedule of R per
//     second regardless of how fast the server answers — the wrk2-style
//     discipline for saturation measurements. Latency is measured from
//     each order's *intended* send time, so server-side queueing delays
//     are charged to the server instead of silently thinning the load
//     (no coordinated omission).
//
// Either way the report carries an HDR-style latency distribution
// (p50/p90/p95/p99/p999/max) over successful submissions, and 429
// responses from a server running with an admission bound
// (-max-pending) are counted as Overloaded sheds, not errors.

type loadgenReport struct {
	// Tasks is the number of submissions attempted; Submitted counts
	// only the ones the server accepted (shed and failed submissions
	// are in Overloaded and SubmitErrors respectively).
	Tasks     int `json:"tasks"`
	Submitted int `json:"submitted"`
	Assigned  int `json:"assigned"`
	Rejected  int `json:"rejected"`
	// Pending counts orders a batched server answered with a pending
	// handle; after the stream drains, each one is polled once via
	// GET /v1/tasks/{id} and folded into Assigned/Rejected if its
	// window has closed by then. Orders still undecided (the server's
	// final window never closed) remain counted here.
	Pending int `json:"pending,omitempty"`
	// Overloaded counts submissions the server shed with HTTP 429 at
	// its admission bound — backpressure working as designed, reported
	// separately from errors.
	Overloaded int `json:"overloaded,omitempty"`
	Cancels    int `json:"cancellations_sent"`
	// Errors are split by request kind so a failing cancel or poll
	// cannot masquerade as a submission failure.
	SubmitErrors int `json:"submit_errors"`
	CancelErrors int `json:"cancel_errors"`
	PollErrors   int `json:"poll_errors"`
	// FirstError carries the first failure's text so a non-zero error
	// count in a smoke run is diagnosable from the report alone.
	FirstError string  `json:"first_error,omitempty"`
	Seconds    float64 `json:"seconds"`
	// PerSec is successful submissions per wall second — shed and
	// failed POSTs do not inflate throughput.
	PerSec float64 `json:"tasks_per_sec"`
	// TargetRate echoes -rate on open-loop runs, 0 on closed-loop ones.
	TargetRate float64 `json:"target_rate,omitempty"`
	// Latency is the distribution of successful submission round trips;
	// open-loop runs measure from the intended send time.
	Latency stats.LatencySummary `json:"latency"`
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	baseURL := fs.String("addr", "http://127.0.0.1:8080", "base URL of the rideshare serve (or router) instance")
	market := fs.String("market", "", "drive one market of a rideshare router instance (orders go to /v1/markets/<name>/...)")
	tasks := fs.Int("tasks", 1000, "orders to submit")
	idBase := fs.Int("id-base", 0, "first order ID; follow-up runs against a recovered market offset past the IDs already journaled")
	seed := fs.Int64("seed", 1, "order generation seed")
	workers := fs.Int("workers", 4, "concurrent submitter goroutines (closed loop; ignored with -rate)")
	rate := fs.Float64("rate", 0, "open-loop target submissions per second; 0 keeps the closed-loop worker model")
	cancel := fs.Float64("cancel", 0, "fraction of assigned orders cancelled right after assignment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkPositive("loadgen", map[string]int{"-tasks": *tasks, "-workers": *workers}); err != nil {
		return err
	}
	if err := checkFraction("loadgen", map[string]float64{"-cancel": *cancel}); err != nil {
		return err
	}
	if *rate < 0 || math.IsNaN(*rate) || math.IsInf(*rate, 0) {
		return fmt.Errorf("loadgen: -rate %g, want a finite rate ≥ 0", *rate)
	}

	// Generate(nil) rather than GenerateTasks: the latter leaves tasks
	// unpriced, and an unpriced order is never profitable to serve.
	cfg := trace.NewConfig(*seed, *tasks, 1, trace.Hitchhiking)
	gen := trace.NewGenerator(cfg).Generate(nil).Tasks
	sort.Slice(gen, func(a, b int) bool { return gen[a].Publish < gen[b].Publish })

	if *idBase < 0 {
		return fmt.Errorf("loadgen: -id-base %d, want ≥ 0", *idBase)
	}
	report, err := runLoadMarket(*baseURL, *market, *workers, *rate, *cancel, *seed, func(i int) dispatch.Task {
		return toDispatchTask(*idBase+i, gen[i])
	}, len(gen))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d/%d submitted (%d assigned, %d rejected, %d pending, %d overloaded) in %.2fs — %.0f tasks/s, p50 %.2fms p99 %.2fms p999 %.2fms\n",
		report.Submitted, report.Tasks, report.Assigned, report.Rejected, report.Pending,
		report.Overloaded, report.Seconds, report.PerSec,
		report.Latency.P50Ms, report.Latency.P99Ms, report.Latency.P999Ms)

	resp, err := http.Get(apiBase(*baseURL, *market) + "/stats")
	if err != nil {
		return fmt.Errorf("loadgen: stats: %w", err)
	}
	defer resp.Body.Close()
	srvStats, _ := io.ReadAll(resp.Body)
	fmt.Printf("server stats: %s", srvStats)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// loadRun aggregates one runLoad invocation's counters; workers and the
// open-loop pacer share it through atomics plus one mutex for the
// pending bookkeeping.
type loadRun struct {
	client *http.Client
	// api is the market-API root the /tasks etc. paths hang off: either
	// <base>/v1 against a serve instance, or <base>/v1/markets/<name>
	// against one market of a router instance.
	api string
	mk  func(i int) dispatch.Task
	// cancelPlan[i] is the deterministic coin flip for cancelling order
	// i, fixed upfront so the two pacing modes and any worker
	// interleaving draw identical cancel traffic for one seed.
	cancelPlan []bool

	submitted, assigned, rejected, overloaded atomic.Int64
	cancels, submitErrs, cancelErrs, pollErrs atomic.Int64
	latency                                   stats.LatencyHist

	mu         sync.Mutex
	pendingIDs []int
	withdrawn  map[int]bool // cancels this client landed on pending orders
	firstErr   string
}

func (lr *loadRun) fail(counter *atomic.Int64, err error) {
	counter.Add(1)
	lr.mu.Lock()
	if lr.firstErr == "" {
		lr.firstErr = err.Error()
	}
	lr.mu.Unlock()
}

// doTask runs order i end to end: submit, record latency against the
// intended send time, then any planned cancellation. Overload sheds
// (HTTP 429) are counted and abandoned — an open-loop generator does
// not retry, it measures.
func (lr *loadRun) doTask(i int, sched time.Time) {
	task := lr.mk(i)
	var a dispatch.Assignment
	err := postJSON(lr.client, lr.api+"/tasks", task, &a)
	if err != nil {
		var se *httpStatusError
		if errors.As(err, &se) && se.Status == http.StatusTooManyRequests {
			lr.overloaded.Add(1)
			return
		}
		lr.fail(&lr.submitErrs, err)
		return
	}
	lr.latency.Record(time.Since(sched).Seconds())
	lr.submitted.Add(1)

	wantCancel := lr.cancelPlan != nil && lr.cancelPlan[i]
	if a.Pending {
		lr.mu.Lock()
		lr.pendingIDs = append(lr.pendingIDs, task.ID)
		lr.mu.Unlock()
		// A batched rider can still change her mind while the window is
		// open.
		if wantCancel {
			var out dispatch.CancelOutcome
			url := fmt.Sprintf("%s/tasks/%d/cancel", lr.api, task.ID)
			if err := postJSON(lr.client, url, map[string]float64{"at": a.DecidedAt + 1}, &out); err != nil {
				lr.fail(&lr.cancelErrs, err)
				return
			}
			lr.cancels.Add(1)
			if out.Cancelled {
				lr.mu.Lock()
				lr.withdrawn[task.ID] = true
				lr.mu.Unlock()
			}
		}
		return
	}
	if !a.Assigned {
		lr.rejected.Add(1)
		return
	}
	lr.assigned.Add(1)
	if wantCancel {
		var out dispatch.CancelOutcome
		url := fmt.Sprintf("%s/tasks/%d/cancel", lr.api, task.ID)
		if err := postJSON(lr.client, url, map[string]float64{"at": a.DecidedAt + 1}, &out); err != nil {
			lr.fail(&lr.cancelErrs, err)
			return
		}
		lr.cancels.Add(1)
	}
}

// runLoad submits mk(0..n-1) against the server and aggregates the
// client-side view. rate 0 runs a closed loop: workers stripe the
// publish-sorted order stream round-robin, each submitting as fast as
// answers arrive. rate > 0 runs an open loop: order i fires at
// start + i/rate on its own goroutine whether or not earlier orders
// have been answered, and latency is charged from that scheduled
// instant. Against a batched server, submissions come back pending;
// each pending order is re-polled once after the stream drains, by
// which time later traffic has closed all but (at most) the final
// window.
func runLoad(baseURL string, workers int, rate, cancelFrac float64, seed int64, mk func(i int) dispatch.Task, n int) (loadgenReport, error) {
	return runLoadMarket(baseURL, "", workers, rate, cancelFrac, seed, mk, n)
}

// apiBase resolves the market-API root: the serve surface at the base
// URL itself, or one router market under /v1/markets/<name>.
func apiBase(baseURL, market string) string {
	if market == "" {
		return baseURL + "/v1"
	}
	return baseURL + "/v1/markets/" + market
}

// runLoadMarket is runLoad aimed at one market of a router instance
// (market "" drives a plain serve instance).
func runLoadMarket(baseURL, market string, workers int, rate, cancelFrac float64, seed int64, mk func(i int) dispatch.Task, n int) (loadgenReport, error) {
	lr := &loadRun{
		client:    &http.Client{Timeout: 30 * time.Second},
		api:       apiBase(baseURL, market),
		mk:        mk,
		withdrawn: make(map[int]bool),
	}
	if cancelFrac > 0 {
		rng := rand.New(rand.NewSource(seed))
		lr.cancelPlan = make([]bool, n)
		for i := range lr.cancelPlan {
			lr.cancelPlan[i] = rng.Float64() < cancelFrac
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	if rate > 0 {
		interval := time.Duration(float64(time.Second) / rate)
		for i := 0; i < n; i++ {
			sched := start.Add(time.Duration(i) * interval)
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(i int, sched time.Time) {
				defer wg.Done()
				lr.doTask(i, sched)
			}(i, sched)
		}
	} else {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					lr.doTask(i, time.Now())
				}
			}(w)
		}
	}
	wg.Wait()
	// The timed window ends here: the sequential decision polls below
	// are bookkeeping, and folding them in would deflate tasks/s on
	// batched runs (n extra round-trips) relative to instant ones.
	elapsed := time.Since(start).Seconds()

	// Fold in decisions for orders that were pending at submission. An
	// order this client successfully withdrew is a cancellation, not a
	// platform rejection — it is already counted under Cancels.
	stillPending := 0
	for _, id := range lr.pendingIDs {
		if lr.withdrawn[id] {
			continue
		}
		var a dispatch.Assignment
		if err := fetchJSON(lr.client, fmt.Sprintf("%s/tasks/%d", lr.api, id), &a); err != nil {
			lr.fail(&lr.pollErrs, err)
			continue
		}
		switch {
		case a.Pending:
			stillPending++
		case a.Assigned:
			lr.assigned.Add(1)
		default:
			lr.rejected.Add(1)
		}
	}

	report := loadgenReport{
		Tasks:        n,
		Submitted:    int(lr.submitted.Load()),
		Assigned:     int(lr.assigned.Load()),
		Rejected:     int(lr.rejected.Load()),
		Pending:      stillPending,
		Overloaded:   int(lr.overloaded.Load()),
		Cancels:      int(lr.cancels.Load()),
		SubmitErrors: int(lr.submitErrs.Load()),
		CancelErrors: int(lr.cancelErrs.Load()),
		PollErrors:   int(lr.pollErrs.Load()),
		FirstError:   lr.firstErr,
		Seconds:      elapsed,
		PerSec:       float64(lr.submitted.Load()) / elapsed,
		TargetRate:   rate,
		Latency:      lr.latency.Summary(),
	}
	if failed := report.SubmitErrors + report.CancelErrors + report.PollErrors; failed > 0 {
		return report, fmt.Errorf("loadgen: %d requests failed (first: %s)", failed, report.FirstError)
	}
	return report, nil
}

// httpStatusError is a non-2xx HTTP response, keeping the status code
// inspectable so callers can tell backpressure (429) from failure.
type httpStatusError struct {
	URL    string
	Status int
	Msg    string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("%s: status %d: %s", e.URL, e.Status, e.Msg)
}

// fetchJSON fetches url and decodes the JSON response into out,
// returning an *httpStatusError for any non-2xx status.
func fetchJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &httpStatusError{URL: url, Status: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON posts v and decodes the JSON response into out, returning an
// *httpStatusError for any non-2xx status.
func postJSON(client *http.Client, url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &httpStatusError{URL: url, Status: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
