package main

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// parseRouters maps a comma-separated -router list onto the roadnet
// kernel enum. An empty string selects no router suite (nil, nil).
func parseRouters(s string) ([]roadnet.Algorithm, error) {
	if s == "" {
		return nil, nil
	}
	var out []roadnet.Algorithm
	seen := make(map[roadnet.Algorithm]bool)
	for _, part := range strings.Split(s, ",") {
		var a roadnet.Algorithm
		switch strings.TrimSpace(part) {
		case roadnet.AlgoCH.String():
			a = roadnet.AlgoCH
		case roadnet.AlgoALT.String():
			a = roadnet.AlgoALT
		default:
			return nil, fmt.Errorf("bad router %q, want %q or %q", part, roadnet.AlgoCH, roadnet.AlgoALT)
		}
		if seen[a] {
			return nil, fmt.Errorf("router %q listed twice", a)
		}
		seen[a] = true
		out = append(out, a)
	}
	return out, nil
}

// benchRouters is the BENCH_10 suite: it prices the contraction-
// hierarchy routing kernel against the landmark-A* kernel it replaced,
// on the default Porto grid, in four legs per kernel:
//
//   - preprocess: wall time to build the kernel (hierarchy + hub labels
//     for CH, landmark distance tables for ALT);
//   - ptp: cold point-to-point node queries/sec at the kernel level
//     (no route cache), plus each kernel's speedup over the ALT leg;
//   - distmany: the router's one-to-many batch API against a looped
//     Dist over the same ≥ 8-target candidate sets, cache defeated,
//     with bitwise equality of the two result vectors enforced;
//   - day: the same batched dispatch day once per rep on a cold route
//     cache and again on a warmed one, through the full engine with the
//     batched scoring hook installed.
//
// Every day leg must settle bit-identically across kernels and across
// cold/warm caches — same served and rejected counts, bitwise-equal
// revenue — and when both kernels run, the harness errors out unless
// CH clears 5× ALT on cold point-to-point and the batch API beats the
// looped Dist. Those are the repo's acceptance bars, enforced where
// the numbers are made rather than in a post-processing script.
func benchRouters(out string, tasks int, driverCounts []int, reps int, seed int64,
	window float64, algo sim.BatchAlgorithm, routers []roadnet.Algorithm, cache int) error {
	report := benchReport{
		Schema:     "rideshare-bench/v1",
		Command:    fmt.Sprintf("rideshare bench -roadnet -router %s -batch-window %g", routerNames(routers), window),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Reps:       reps,
	}

	g, err := roadnet.GenerateGrid(roadnet.DefaultGridConfig())
	if err != nil {
		return fmt.Errorf("bench: roadnet graph: %w", err)
	}
	n := g.NumNodes()

	// Deterministic query workloads shared by every kernel. The ptp
	// pairs stride over the whole grid; the candidate sets model an
	// order's scoring batch — one origin against 15 targets, above the
	// engine's own ≥ 8 batching threshold.
	var pairs [][2]int
	for u := 0; u < n; u++ {
		v := (u*7 + 13) % n
		if u != v {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	const numSets, setSize = 32, 15
	type candSet struct {
		origin  geo.Point
		targets []geo.Point
	}
	sets := make([]candSet, numSets)
	for i := range sets {
		sets[i].origin = g.Point((i * 37) % n)
		for j := 0; j < setSize; j++ {
			sets[i].targets = append(sets[i].targets, g.Point((i*17+j*29+5)%n))
		}
	}

	qps := make(map[roadnet.Algorithm]float64)
	var ptpRows []int // report indices to fill SpeedupVsALT once ALT is known

	for _, algoKind := range routers {
		// Preprocess leg: the kernel build alone, on the shared graph.
		// The snap grid and route cache are common to both kernels and
		// excluded.
		var lm *roadnet.Landmarks
		var h *roadnet.Hierarchy
		times := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if algoKind == roadnet.AlgoALT {
				lm = roadnet.NewLandmarks(g, g.SelectLandmarks(8))
			} else {
				h = roadnet.BuildHierarchy(g)
			}
			times = append(times, time.Since(start).Seconds())
		}
		sort.Float64s(times)
		prepSec := times[len(times)/2]
		report.Results = append(report.Results, benchResult{
			Name:              fmt.Sprintf("routers/preprocess/%s", algoKind),
			Router:            algoKind.String(),
			PreprocessSeconds: prepSec,
		})
		fmt.Fprintf(os.Stderr, "%-52s %10.4fs preprocessing\n",
			fmt.Sprintf("routers/preprocess/%s", algoKind), prepSec)

		// Point-to-point leg: the raw kernel, no route cache, every
		// query cold.
		times = times[:0]
		for r := 0; r < reps; r++ {
			start := time.Now()
			for _, p := range pairs {
				if algoKind == roadnet.AlgoALT {
					g.AStarALT(lm, p[0], p[1])
				} else {
					h.Query(p[0], p[1])
				}
			}
			times = append(times, time.Since(start).Seconds())
		}
		sort.Float64s(times)
		ptpSec := times[len(times)/2]
		qps[algoKind] = float64(len(pairs)) / ptpSec
		ptpRows = append(ptpRows, len(report.Results))
		report.Results = append(report.Results, benchResult{
			Name:          fmt.Sprintf("routers/ptp/%s", algoKind),
			Router:        algoKind.String(),
			Seconds:       ptpSec,
			QueriesPerSec: qps[algoKind],
		})
		fmt.Fprintf(os.Stderr, "%-52s %10.0f queries/s cold point-to-point\n",
			fmt.Sprintf("routers/ptp/%s", algoKind), qps[algoKind])

		// One-to-many leg: the router's batch API against a looped Dist
		// over the same candidate sets. A one-entry cache bound defeats
		// memoization so both sides pay the routing, not map lookups.
		router := roadnet.NewRouterAlgo(g, roadnet.DefaultGridConfig().Box, 0, algoKind)
		router.SetCacheBound(1)
		batchOut := make([]float64, setSize)
		loopOut := make([]float64, setSize)
		for _, s := range sets {
			router.DistManyInto(s.origin, s.targets, batchOut)
			for j, t := range s.targets {
				loopOut[j] = router.Dist(s.origin, t)
			}
			for j := range s.targets {
				if batchOut[j] != loopOut[j] {
					return fmt.Errorf("bench: %s DistMany[%d] = %.17g, looped Dist = %.17g — the batch API broke bitwise equality, this is a bug",
						algoKind, j, batchOut[j], loopOut[j])
				}
			}
		}
		var manySec, loopSec float64
		times = times[:0]
		for r := 0; r < reps; r++ {
			start := time.Now()
			for _, s := range sets {
				router.DistManyInto(s.origin, s.targets, batchOut)
			}
			times = append(times, time.Since(start).Seconds())
		}
		sort.Float64s(times)
		manySec = times[len(times)/2]
		times = times[:0]
		for r := 0; r < reps; r++ {
			start := time.Now()
			for _, s := range sets {
				for j, t := range s.targets {
					loopOut[j] = router.Dist(s.origin, t)
				}
			}
			times = append(times, time.Since(start).Seconds())
		}
		sort.Float64s(times)
		loopSec = times[len(times)/2]
		report.Results = append(report.Results, benchResult{
			Name:            fmt.Sprintf("routers/distmany/%s", algoKind),
			Router:          algoKind.String(),
			Seconds:         manySec,
			DistManySpeedup: loopSec / manySec,
		})
		fmt.Fprintf(os.Stderr, "%-52s %10.2fx one-to-many vs looped Dist (%d-target sets)\n",
			fmt.Sprintf("routers/distmany/%s", algoKind), loopSec/manySec, setSize)
		if algoKind == roadnet.AlgoCH && loopSec/manySec <= 1 {
			return fmt.Errorf("bench: CH DistMany %.2fx vs looped Dist on %d-target sets — the batch API does not pay for itself", loopSec/manySec, setSize)
		}
	}

	if alt, ok := qps[roadnet.AlgoALT]; ok {
		for _, i := range ptpRows {
			report.Results[i].SpeedupVsALT = report.Results[i].QueriesPerSec / alt
		}
		if ch, ok := qps[roadnet.AlgoCH]; ok && ch/alt < 5 {
			return fmt.Errorf("bench: CH cold point-to-point %.2fx ALT, want ≥ 5x — the hierarchy is not earning its preprocessing", ch/alt)
		}
	}

	// Day legs: the full engine with the network metric and the batched
	// scoring hook, once per rep on a cold route cache (fresh router)
	// and again on the warmed cache. Results must be bit-identical
	// across kernels and across cache temperature.
	const shards, workers = 4, 4
	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(seed, tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)

		var baseRes sim.Result
		haveBase := false
		for _, algoKind := range routers {
			mkRouter := func() *roadnet.Router {
				r := roadnet.NewRouterAlgo(g, roadnet.DefaultGridConfig().Box, 0, algoKind)
				if cache > 0 {
					r.SetCacheBound(cache)
				}
				return r
			}
			runDay := func(router *roadnet.Router) (sim.Result, error) {
				mkt := cfg.Market
				mkt.Dist = router.Dist
				mkt.Batch = router
				eng, err := sim.New(mkt, tr.Drivers, 1)
				if err != nil {
					return sim.Result{}, err
				}
				eng.SetCandidateSource(sim.NewShardedSource(shards))
				eng.MatchWorkers = workers
				return eng.RunBatched(tr.Tasks, window, algo), nil
			}

			var coldRes sim.Result
			var warm *roadnet.Router
			times := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				router := mkRouter()
				start := time.Now()
				res, err := runDay(router)
				if err != nil {
					return err
				}
				times = append(times, time.Since(start).Seconds())
				coldRes, warm = res, router
			}
			sort.Float64s(times)
			coldSec := times[len(times)/2]

			// Warm leg: the last cold rep's router keeps its populated
			// cache; only the hit counters are zeroed between reps so
			// the recorded hit rate describes a warm rep alone.
			var warmRes sim.Result
			var hitRate float64
			times = times[:0]
			for r := 0; r < reps; r++ {
				warm.ResetCacheStats()
				start := time.Now()
				res, err := runDay(warm)
				if err != nil {
					return err
				}
				times = append(times, time.Since(start).Seconds())
				warmRes = res
				if r == 0 {
					if hits, misses, _ := warm.CacheStats(); hits+misses > 0 {
						hitRate = float64(hits) / float64(hits+misses)
					}
				}
			}
			sort.Float64s(times)
			warmSec := times[len(times)/2]

			if !reflect.DeepEqual(coldRes, warmRes) {
				return fmt.Errorf("bench: %s day diverged between cold and warm cache at %d drivers: served %d vs %d, revenue %.9f vs %.9f — this is a bug",
					algoKind, drivers, coldRes.Served, warmRes.Served, coldRes.Revenue, warmRes.Revenue)
			}
			if !haveBase {
				baseRes, haveBase = coldRes, true
			} else if !reflect.DeepEqual(baseRes, coldRes) {
				return fmt.Errorf("bench: %s day diverged from the %s leg at %d drivers: served %d vs %d, revenue %.9f vs %.9f — the kernels are not bit-identical, this is a bug",
					algoKind, routers[0], drivers, coldRes.Served, baseRes.Served, coldRes.Revenue, baseRes.Revenue)
			}

			name := fmt.Sprintf("routers/day/drivers=%d/%s", drivers, algoKind)
			report.Results = append(report.Results, benchResult{
				Name:    name,
				Drivers: drivers, Tasks: tasks,
				Source: "sharded", Shards: shards, Workers: workers,
				Router: algoKind.String(), Metric: "network",
				Seconds:         coldSec,
				TasksPerSec:     float64(tasks) / coldSec,
				ColdTasksPerSec: float64(tasks) / coldSec,
				WarmTasksPerSec: float64(tasks) / warmSec,
				CacheHitRate:    hitRate,
				Served:          coldRes.Served,
				Revenue:         coldRes.Revenue,
			})
			fmt.Fprintf(os.Stderr, "%-52s cold %8.0f tasks/s  warm %8.0f tasks/s  served %d\n",
				name, float64(tasks)/coldSec, float64(tasks)/warmSec, coldRes.Served)
		}
	}

	return writeBenchReport(out, report)
}

// routerNames renders a -router list back to its flag form.
func routerNames(routers []roadnet.Algorithm) string {
	names := make([]string, len(routers))
	for i, a := range routers {
		names[i] = a.String()
	}
	return strings.Join(names, ",")
}
