package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"repro/internal/bound"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/taskmap"
	"repro/internal/trace"
)

// checkPositive rejects non-positive values for flags where zero or a
// negative count would silently misbehave (or panic) deep inside the
// engine instead of failing at the boundary.
func checkPositive(cmd string, vals map[string]int) error {
	for _, name := range []string{"-shards", "-workers", "-match-workers", "-reps", "-tasks", "-drivers"} {
		if v, ok := vals[name]; ok && v < 1 {
			return fmt.Errorf("%s: %s must be ≥ 1, got %d", cmd, name, v)
		}
	}
	return nil
}

// checkBatchWindow rejects unusable batch-window flag values at the
// CLI boundary: negative, NaN or infinite windows would otherwise
// surface as a typed error from the dispatch options (or, through the
// internal sim entry points, as a panic). Zero is allowed and means
// instant dispatch.
func checkBatchWindow(cmd string, w float64) error {
	if !(w >= 0) || math.IsInf(w, 1) {
		return fmt.Errorf("%s: -batch-window must be a non-negative finite number of seconds, got %g", cmd, w)
	}
	return nil
}

// checkFraction rejects rate flags outside [0, 1].
func checkFraction(cmd string, vals map[string]float64) error {
	for name, v := range vals {
		if v < 0 || v > 1 {
			return fmt.Errorf("%s: %s must be in [0,1], got %g", cmd, name, v)
		}
	}
	return nil
}

func parseModel(s string) (trace.DriverModel, error) {
	switch strings.ToLower(s) {
	case "hitchhiking", "hitch":
		return trace.Hitchhiking, nil
	case "home", "home-work-home", "homeworkhome":
		return trace.HomeWorkHome, nil
	default:
		return 0, fmt.Errorf("unknown driver model %q (want hitchhiking or home)", s)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	tasks := fs.Int("tasks", 250, "number of customer tasks")
	drivers := fs.Int("drivers", 50, "number of drivers")
	modelName := fs.String("model", "hitchhiking", "driver model: hitchhiking or home")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default stdout); .json or .csv prefix pair")
	churn := fs.Float64("churn", 0, "driver churn rate: this fraction retires early and half joins mid-day")
	cancel := fs.Float64("cancel", 0, "fraction of tasks cancelled by their rider before pickup")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkPositive("gen", map[string]int{"-tasks": *tasks, "-drivers": *drivers}); err != nil {
		return err
	}
	if err := checkFraction("gen", map[string]float64{"-churn": *churn, "-cancel": *cancel}); err != nil {
		return err
	}
	dm, err := parseModel(*modelName)
	if err != nil {
		return err
	}
	cfg := trace.NewConfig(*seed, *tasks, *drivers, dm)
	tr := trace.NewGenerator(cfg).Generate(nil)
	if *churn > 0 || *cancel > 0 {
		tr.Events = trace.WithChurn(tr, trace.DefaultChurn(*seed, *churn, *cancel))
	}

	if *out == "" {
		return model.WriteTraceJSON(os.Stdout, tr)
	}
	if strings.HasSuffix(*out, ".json") {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := model.WriteTraceJSON(f, tr); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d drivers, %d tasks)\n", *out, len(tr.Drivers), len(tr.Tasks))
		return f.Close()
	}
	// CSV pair: <out>_drivers.csv and <out>_tasks.csv.
	if len(tr.Events) > 0 {
		fmt.Fprintln(os.Stderr, "gen: warning: the CSV format carries no churn/cancel events; use a .json output to keep them")
	}
	base := strings.TrimSuffix(*out, ".csv")
	df, err := os.Create(base + "_drivers.csv")
	if err != nil {
		return err
	}
	defer df.Close()
	if err := model.WriteDriversCSV(df, tr.Drivers); err != nil {
		return err
	}
	tf, err := os.Create(base + "_tasks.csv")
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := model.WriteTasksCSV(tf, tr.Tasks); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s_drivers.csv and %s_tasks.csv\n", base, base)
	return nil
}

func loadTrace(path string) (model.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return model.Trace{}, err
	}
	defer f.Close()
	return model.ReadTraceJSON(f)
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "trace JSON file (required)")
	withBound := fs.Bool("bound", false, "also compute the Z*_f upper bound and performance ratio")
	naive := fs.Bool("naive", false, "use the O(N²M²) reference greedy instead of lazy evaluation")
	verbose := fs.Bool("v", false, "print each selected task list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("solve: -trace is required")
	}
	tr, err := loadTrace(*tracePath)
	if err != nil {
		return err
	}
	p, err := core.NewProblem(model.DefaultMarket(), tr.Drivers, tr.Tasks)
	if err != nil {
		return err
	}
	sol, err := core.GreedySolver{Naive: *naive}.Solve(p)
	if err != nil {
		return err
	}
	g := p.Graph()
	fmt.Printf("algorithm       %s\n", sol.Algorithm)
	fmt.Printf("drivers         %d\n", g.N())
	fmt.Printf("tasks           %d\n", g.M())
	fmt.Printf("task-map arcs   %d (diameter %d)\n", g.ArcCount(), g.Diameter())
	fmt.Printf("served          %d (%.1f%%)\n", sol.Served, 100*float64(sol.Served)/float64(g.M()))
	fmt.Printf("revenue         %.2f\n", sol.Revenue)
	fmt.Printf("drivers' profit %.2f\n", sol.Profit)
	fmt.Printf("social welfare  %.2f\n", sol.Welfare(p))
	if *withBound {
		ub := bound.Auto(g, sol.Profit)
		fmt.Printf("upper bound     %.2f (%s)\n", ub.Bound, ub.Method)
		fmt.Printf("perf ratio      %.4f\n", core.PerformanceRatio(sol.Profit, ub.Bound))
	}
	if *verbose {
		for _, path := range sol.Paths {
			fmt.Printf("driver %4d  profit %8.2f  tasks %v\n", path.Driver, path.Profit, path.Tasks)
		}
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "trace JSON file (required)")
	algo := fs.String("algo", "maxmargin", "dispatcher: maxmargin, nearest, random, batched or replan")
	byValue := fs.Bool("byvalue", false, "process tasks by descending price (offline variant)")
	realTime := fs.Bool("realtime", false, "free drivers at real finish times instead of deadlines")
	batchWindow := fs.Float64("batchwindow", 30, "batch window in seconds (batched dispatcher only)")
	batchAlgo := fs.String("batchalgo", "hungarian", "batch solver: hungarian or auction (batched dispatcher only)")
	// Aliases matching the serve/bench spelling, so the batch flags
	// read the same across subcommands.
	fs.Float64Var(batchWindow, "batch-window", 30, "alias for -batchwindow")
	fs.StringVar(batchAlgo, "batch-algo", "hungarian", "alias for -batchalgo")
	replanPeriod := fs.Float64("replanperiod", 60, "flush period in seconds (replan dispatcher only)")
	seed := fs.Int64("seed", 1, "random seed for tie-breaking")
	indexed := fs.Bool("indexed", false, "use the grid-indexed candidate source (identical results, faster on large fleets)")
	shards := fs.Int("shards", 1, "zone shards for candidate generation; 1 reproduces the sequential engine exactly, higher counts give identical results faster")
	churn := fs.Float64("churn", 0, "override the trace's events: this fraction of drivers retires early (half also joins mid-day)")
	cancel := fs.Float64("cancel", 0, "override the trace's events: this fraction of tasks is cancelled before pickup")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkPositive("simulate", map[string]int{"-shards": *shards}); err != nil {
		return err
	}
	if err := checkFraction("simulate", map[string]float64{"-churn": *churn, "-cancel": *cancel}); err != nil {
		return err
	}
	var batchedAlgo sim.BatchAlgorithm
	if strings.ToLower(*algo) == "batched" {
		// The engine treats a non-positive window as an internal
		// invariant violation (it panics); the flag boundary turns bad
		// user input into a normal error instead.
		if !(*batchWindow > 0) || math.IsInf(*batchWindow, 1) {
			return fmt.Errorf("simulate: -batchwindow must be a positive finite number of seconds, got %g", *batchWindow)
		}
		switch strings.ToLower(*batchAlgo) {
		case "hungarian":
			batchedAlgo = sim.BatchHungarian
		case "auction":
			batchedAlgo = sim.BatchAuction
		default:
			return fmt.Errorf("simulate: unknown batch solver %q (want hungarian or auction)", *batchAlgo)
		}
	}
	if *tracePath == "" {
		return fmt.Errorf("simulate: -trace is required")
	}
	tr, err := loadTrace(*tracePath)
	if err != nil {
		return err
	}
	events := tr.Events
	if *churn > 0 || *cancel > 0 {
		events = trace.WithChurn(tr, trace.DefaultChurn(*seed, *churn, *cancel))
	}
	if err := model.ValidateEvents(events, tr.Drivers, tr.Tasks); err != nil {
		return fmt.Errorf("simulate: %w", err)
	}
	eng, err := sim.New(model.DefaultMarket(), tr.Drivers, *seed)
	if err != nil {
		return err
	}
	eng.RealTime = *realTime
	switch {
	case *shards > 1:
		eng.SetCandidateSource(sim.NewShardedSource(*shards))
	case *indexed:
		eng.SetCandidateSource(sim.NewGridSource(nil))
	}

	var res sim.Result
	name := ""
	switch strings.ToLower(*algo) {
	case "batched":
		res = eng.RunBatchedScenario(tr.Tasks, events, *batchWindow, batchedAlgo)
		name = fmt.Sprintf("%v window=%gs", batchedAlgo, *batchWindow)
	case "replan":
		res = eng.RunReplanScenario(tr.Tasks, events, *replanPeriod)
		name = fmt.Sprintf("replan period=%gs", *replanPeriod)
	default:
		var d sim.Dispatcher
		switch strings.ToLower(*algo) {
		case "maxmargin":
			d = online.MaxMargin{}
		case "nearest":
			d = online.Nearest{}
		case "random":
			d = online.Random{}
		default:
			return fmt.Errorf("simulate: unknown dispatcher %q", *algo)
		}
		if *byValue {
			if len(events) > 0 {
				return fmt.Errorf("simulate: -byvalue processes tasks out of time order and cannot replay churn/cancel events")
			}
			res = eng.RunByValue(tr.Tasks, d)
		} else {
			res = eng.RunScenario(tr.Tasks, events, d)
		}
		name = d.Name()
	}
	fmt.Printf("dispatcher        %s\n", name)
	fmt.Printf("served            %d / %d (%.1f%%)\n", res.Served, res.Served+res.Rejected, 100*res.ServeRate())
	if len(events) > 0 {
		fmt.Printf("events            %d (cancelled before pickup: %d)\n", len(events), res.Cancelled)
	}
	fmt.Printf("revenue           %.2f\n", res.Revenue)
	fmt.Printf("drivers' profit   %.2f\n", res.TotalProfit)
	fmt.Printf("avg revenue/drv   %.2f\n", res.AvgRevenuePerDriver())
	fmt.Printf("avg tasks/drv     %.2f\n", res.AvgTasksPerDriver())
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 3-9, welfare, surge, dispatch, churn, regret, or all")
	scale := fs.String("scale", "bench", "bench (scaled-down, fast) or paper (full §VI scale)")
	seed := fs.Int64("seed", 1, "trace seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent sweep workers")
	reps := fs.Int("reps", 1, "replications averaged per sweep point (consecutive seeds)")
	shards := fs.Int("shards", 1, "zone shards for the online simulations (identical series, faster engine)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkPositive("experiments", map[string]int{"-shards": *shards, "-workers": *workers, "-reps": *reps}); err != nil {
		return err
	}
	var cfg experiments.Config
	switch *scale {
	case "bench":
		cfg = experiments.Default()
	case "paper":
		cfg = experiments.Paper()
	default:
		return fmt.Errorf("experiments: unknown scale %q", *scale)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Replications = *reps
	cfg.Shards = *shards
	// Sweeps can run for minutes at paper scale; a SIGINT aborts the
	// worker pool promptly instead of grinding through remaining points.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runExperiments(ctx, os.Stdout, cfg, *fig)
}

func runExperiments(ctx context.Context, w io.Writer, cfg experiments.Config, fig string) error {
	want := func(id string) bool { return fig == "all" || fig == id }

	if want("3") {
		if err := experiments.RenderText(w, experiments.Fig3TravelTime(cfg)); err != nil {
			return err
		}
	}
	if want("4") {
		if err := experiments.RenderText(w, experiments.Fig4TravelDistance(cfg)); err != nil {
			return err
		}
	}
	if want("5") {
		for _, dm := range []trace.DriverModel{trace.Hitchhiking, trace.HomeWorkHome} {
			f, err := experiments.Fig5PerformanceRatio(ctx, cfg, dm)
			if err != nil {
				return err
			}
			if err := experiments.RenderText(w, f); err != nil {
				return err
			}
		}
	}
	if want("6") || want("7") || want("8") || want("9") {
		m, err := experiments.RunDensitySweep(ctx, cfg)
		if err != nil {
			return err
		}
		for _, f := range m.Figures() {
			if !want(strings.TrimPrefix(f.ID, "fig")) {
				continue
			}
			if err := experiments.RenderText(w, f); err != nil {
				return err
			}
		}
	}
	if want("welfare") {
		rows, err := experiments.WelfareComparison(ctx, cfg)
		if err != nil {
			return err
		}
		if err := experiments.RenderText(w, experiments.WelfareFigure(rows)); err != nil {
			return err
		}
	}
	if want("surge") {
		mid := cfg.Sweep[len(cfg.Sweep)/2]
		rows, err := experiments.SurgeSweep(ctx, cfg, mid, []float64{1, 1.25, 1.5, 2, 2.5, 3})
		if err != nil {
			return err
		}
		if err := experiments.RenderText(w, experiments.SurgeFigure(rows)); err != nil {
			return err
		}
	}
	if want("churn") {
		mid := cfg.Sweep[len(cfg.Sweep)/2]
		rows, err := experiments.ChurnSweep(ctx, cfg, mid, []float64{0, 0.1, 0.2, 0.35, 0.5, 0.75})
		if err != nil {
			return err
		}
		if err := experiments.RenderText(w, experiments.ChurnFigure(rows)); err != nil {
			return err
		}
	}
	if want("regret") {
		// Three densities (sparse, mid, dense) keep the oracle solves
		// affordable under -fig all; the bench -oracle suite is the
		// full-scale version of this study.
		rcfg := cfg
		rcfg.Sweep = []int{cfg.Sweep[0], cfg.Sweep[len(cfg.Sweep)/2], cfg.Sweep[len(cfg.Sweep)-1]}
		rc := experiments.RegretConfig{Churn: 0.25, Cancel: 0.2, TopK: 8, LP: true, NodeCap: 500_000}
		points, err := experiments.RegretSweep(ctx, rcfg, rc)
		if err != nil {
			return err
		}
		if err := experiments.RenderText(w, experiments.RegretFigure(points, rcfg, rc)); err != nil {
			return err
		}
	}
	if want("dispatch") {
		mid := cfg.Sweep[len(cfg.Sweep)/2]
		rows, err := experiments.DispatchComparison(ctx, cfg, mid)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# ext-dispatch — Dispatch strategies vs the relaxation bound (%d drivers)\n", mid)
		for _, r := range rows {
			fmt.Fprintf(w, "%-24s profit %8.2f  revenue %8.2f  serve %5.1f%%  ratio %.4f\n",
				r.Name, r.Profit, r.Revenue, 100*r.ServeRate, r.Ratio)
		}
	}
	return nil
}

func cmdTightness(args []string) error {
	fs := flag.NewFlagSet("tightness", flag.ContinueOnError)
	d := fs.Int("d", 5, "task-map diameter D of the adversarial instance")
	eps := fs.Float64("eps", 0.01, "profit gap ε of the adversarial instance")
	maxPaths := fs.Int("max-paths", 200000, "per-driver path cap for the brute-force reference solve")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxPaths <= 0 {
		return fmt.Errorf("tightness: -max-paths must be ≥ 1, got %d", *maxPaths)
	}
	mkt, drivers, tasks, err := offline.TightnessInstance(*d, *eps)
	if err != nil {
		return err
	}
	g, err := taskmap.New(mkt, drivers, tasks)
	if err != nil {
		return err
	}
	ga := offline.Greedy(g)
	exact, err := bound.BruteForce(g, *maxPaths)
	if err != nil {
		if errors.Is(err, bound.ErrPathLimit) {
			return fmt.Errorf("tightness: instance too large to brute-force at D=%d (%w); lower -d or raise -max-paths", *d, err)
		}
		return err
	}
	fmt.Printf("Fig. 2 adversarial instance: D=%d, ε=%g\n", *d, *eps)
	fmt.Printf("greedy (GA) profit  %.6f\n", ga.TotalProfit)
	fmt.Printf("optimal profit      %.6f  (= (D+1)(1−ε) = %.6f)\n",
		exact.Objective, float64(*d+1)*(1-*eps))
	fmt.Printf("GA / OPT            %.6f\n", ga.TotalProfit/exact.Objective)
	fmt.Printf("1/(D+1) bound       %.6f  (Theorem 1: the bound is tight)\n", 1/float64(*d+1))
	return nil
}
