package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/dispatch"
	"repro/internal/fed"
	"repro/internal/trace"
)

// newTestServer starts the HTTP API over a synthetic fleet and returns
// the server plus the number of drivers.
func newTestServer(t *testing.T, drivers int, opts ...dispatch.Option) (*httptest.Server, *dispatch.Service) {
	t.Helper()
	cfg := trace.NewConfig(17, 1, drivers, trace.Hitchhiking)
	m := dispatch.Market{}
	for i, d := range trace.NewGenerator(cfg).GenerateDrivers() {
		m.Drivers = append(m.Drivers, dispatch.Driver{
			ID: i, Source: dispatch.Point(d.Source), Dest: dispatch.Point(d.Dest),
			Start: d.Start, End: d.End, SpeedKmh: d.SpeedKmh,
		})
	}
	svc, err := dispatch.New(m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fed.MarketHandler(svc, nil))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { svc.Close() })
	return srv, svc
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// TestServeEndToEnd exercises every endpoint of the HTTP API against a
// live server: health, submission, cancellation with revocation,
// driver churn, stats, and the SSE event feed.
func TestServeEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t, 40, dispatch.WithSeed(2))
	client := &http.Client{}

	var health struct {
		Status  string `json:"status"`
		Drivers int    `json:"drivers"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 || health.Status != "ok" || health.Drivers != 40 {
		t.Fatalf("healthz: %d %+v", code, health)
	}

	// Open the event feed before generating traffic.
	feedResp, err := http.Get(srv.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer feedResp.Body.Close()
	feedLines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(feedResp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				feedLines <- strings.TrimPrefix(line, "data: ")
			}
		}
		close(feedLines)
	}()

	// Submit a servable order.
	cfg := trace.NewConfig(99, 50, 40, trace.Hitchhiking)
	tasks := trace.NewGenerator(cfg).Generate(nil).Tasks
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].Publish < tasks[b].Publish })
	var first dispatch.Assignment
	var firstID int
	for i, mt := range tasks {
		task := dispatch.Task{ID: i, Publish: mt.Publish, Source: dispatch.Point(mt.Source),
			Dest: dispatch.Point(mt.Dest), StartBy: mt.StartBy, EndBy: mt.EndBy, Price: mt.Price, WTP: mt.WTP}
		if err := postJSON(client, srv.URL+"/v1/tasks", task, &first); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if first.Assigned {
			firstID = i
			break
		}
	}
	if !first.Assigned {
		t.Fatal("no task found a driver")
	}

	// The feed reports the assignment.
	ev := dispatch.Event{}
	for raw := range feedLines {
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			t.Fatalf("feed json: %v (%s)", err, raw)
		}
		if ev.Type == dispatch.EventAssigned && ev.TaskID == firstID {
			break
		}
	}
	if ev.DriverID != first.DriverID {
		t.Fatalf("feed driver %d, assignment driver %d", ev.DriverID, first.DriverID)
	}

	// Cancel it before pickup: the assignment is revoked.
	var out dispatch.CancelOutcome
	cancelURL := srv.URL + "/v1/tasks/" + jsonInt(firstID) + "/cancel"
	if err := postJSON(client, cancelURL, map[string]float64{"at": first.PickupBy - 0.5}, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cancelled || out.FreedDriverID != first.DriverID {
		t.Fatalf("cancel outcome %+v", out)
	}

	// Unknown IDs surface as 404s.
	resp, err := client.Post(srv.URL+"/v1/tasks/424242/cancel", "application/json",
		strings.NewReader(`{"at": 1e6}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown task: %d", resp.StatusCode)
	}

	// Retire the freed driver at the current market instant (a future
	// retirement would only be scheduled, and a scheduled retiree
	// cannot re-enter yet), then re-announce them.
	var retired map[string]any
	if err := postJSON(client, srv.URL+"/v1/drivers/"+jsonInt(first.DriverID)+"/retire",
		map[string]float64{"at": first.PickupBy - 0.5}, &retired); err != nil {
		t.Fatal(err)
	}
	rejoin := dispatch.Driver{ID: first.DriverID, Source: dispatch.Point{Lat: 41.15, Lon: -8.61},
		Dest: dispatch.Point{Lat: 41.16, Lon: -8.60}, Start: 0, End: 86400}
	var joined map[string]any
	if err := postJSON(client, srv.URL+"/v1/drivers", rejoin, &joined); err != nil {
		t.Fatal(err)
	}

	var stats dispatch.Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if stats.Cancelled != 1 || stats.PresentDrivers != 40 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestServeSustainsLoad is the acceptance check: a running server
// absorbs a load-generated stream of ≥ 1k task submissions end-to-end
// (concurrent submitters, 10% cancellations) without a single error,
// and the books balance afterwards.
func TestServeSustainsLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	srv, _ := newTestServer(t, 200, dispatch.WithShards(4), dispatch.WithSeed(3))

	const n = 1200
	cfg := trace.NewConfig(5, n, 1, trace.Hitchhiking)
	tasks := trace.NewGenerator(cfg).Generate(nil).Tasks
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].Publish < tasks[b].Publish })

	report, err := runLoad(srv.URL, 8, 0, 0.1, 42, func(i int) dispatch.Task {
		mt := tasks[i]
		return dispatch.Task{ID: i, Publish: mt.Publish, Source: dispatch.Point(mt.Source),
			Dest: dispatch.Point(mt.Dest), StartBy: mt.StartBy, EndBy: mt.EndBy, Price: mt.Price, WTP: mt.WTP}
	}, n)
	if err != nil {
		t.Fatalf("load run: %v (%+v)", err, report)
	}
	if report.Submitted != n || report.SubmitErrors != 0 || report.CancelErrors != 0 || report.PollErrors != 0 {
		t.Fatalf("report %+v", report)
	}
	if report.Assigned == 0 {
		t.Fatal("no task was ever assigned")
	}
	if report.Latency.N != int64(n) || report.Latency.P50Ms <= 0 || report.Latency.P50Ms > report.Latency.MaxMs {
		t.Fatalf("latency summary not populated sanely: %+v", report.Latency)
	}

	var stats dispatch.Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if stats.Tasks != n {
		t.Fatalf("server saw %d of %d tasks", stats.Tasks, n)
	}
	if stats.Served+stats.Rejected+stats.Cancelled != n {
		t.Fatalf("books do not balance: %+v", stats)
	}
}

// TestServeBatchedEndToEnd drives the HTTP API of a batched market:
// submissions answer pending, GET /v1/tasks/{id} polls the decision,
// the SSE feed streams pending → decision → batch_closed, and the
// stats expose the pending column.
func TestServeBatchedEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t, 40, dispatch.WithSeed(2), dispatch.WithBatching(30, dispatch.Hungarian))
	client := &http.Client{}

	feedResp, err := http.Get(srv.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer feedResp.Body.Close()
	feedLines := make(chan string, 256)
	go func() {
		sc := bufio.NewScanner(feedResp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				feedLines <- strings.TrimPrefix(line, "data: ")
			}
		}
		close(feedLines)
	}()

	cfg := trace.NewConfig(99, 30, 40, trace.Hitchhiking)
	tasks := trace.NewGenerator(cfg).Generate(nil).Tasks
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].Publish < tasks[b].Publish })
	var last dispatch.Assignment
	for i, mt := range tasks {
		task := dispatch.Task{ID: i, Publish: mt.Publish, Source: dispatch.Point(mt.Source),
			Dest: dispatch.Point(mt.Dest), StartBy: mt.StartBy, EndBy: mt.EndBy, Price: mt.Price, WTP: mt.WTP}
		if err := postJSON(client, srv.URL+"/v1/tasks", task, &last); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if !last.Pending || last.Assigned || last.DecideBy <= last.DecidedAt {
			t.Fatalf("batched submission %d not pending: %+v", i, last)
		}
	}

	// The last submission is still in its window; earlier ones have
	// been decided as later traffic closed their windows.
	var dec dispatch.Assignment
	lastID := len(tasks) - 1
	if code := getJSON(t, srv.URL+"/v1/tasks/"+jsonInt(lastID), &dec); code != 200 || !dec.Pending {
		t.Fatalf("last task decision: %d %+v", code, dec)
	}
	var first dispatch.Assignment
	if code := getJSON(t, srv.URL+"/v1/tasks/"+jsonInt(0), &first); code != 200 || first.Pending {
		t.Fatalf("first task decision still pending: %d %+v", code, first)
	}
	resp, err := client.Get(srv.URL + "/v1/tasks/424242")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("decision of unknown task: %d", resp.StatusCode)
	}

	var stats dispatch.Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if stats.Tasks != len(tasks) || stats.Pending == 0 {
		t.Fatalf("stats %+v (want the open window's orders pending)", stats)
	}
	if stats.Served+stats.Rejected+stats.Cancelled+stats.Pending != stats.Tasks {
		t.Fatalf("books do not balance: %+v", stats)
	}

	// The feed carries pending acknowledgements, window decisions and
	// batch_closed entries with stats.
	var sawPending, sawDecision, sawClose bool
	for raw := range feedLines {
		var ev dispatch.Event
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			t.Fatalf("feed json: %v (%s)", err, raw)
		}
		switch ev.Type {
		case dispatch.EventPending:
			sawPending = true
		case dispatch.EventAssigned, dispatch.EventRejected:
			sawDecision = true
		case dispatch.EventBatchClosed:
			sawClose = true
			if ev.Batch == nil || ev.Batch.Submitted != ev.Batch.Matched+ev.Batch.Rejected+ev.Batch.Cancelled {
				t.Fatalf("batch_closed stats %+v", ev.Batch)
			}
		}
		if sawPending && sawDecision && sawClose {
			break
		}
	}
	if !sawPending || !sawDecision || !sawClose {
		t.Fatalf("feed missing batched vocabulary: pending=%v decision=%v close=%v",
			sawPending, sawDecision, sawClose)
	}
}

// TestServeBatchedSustainsLoad: the sustained-load acceptance check
// against a batched market — loadgen's pending accounting plus the
// server's books must still cover every submission.
func TestServeBatchedSustainsLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	srv, _ := newTestServer(t, 200, dispatch.WithShards(4), dispatch.WithSeed(3),
		dispatch.WithBatching(60, dispatch.Hungarian))

	const n = 1200
	cfg := trace.NewConfig(5, n, 1, trace.Hitchhiking)
	tasks := trace.NewGenerator(cfg).Generate(nil).Tasks
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].Publish < tasks[b].Publish })

	report, err := runLoad(srv.URL, 8, 0, 0.1, 42, func(i int) dispatch.Task {
		mt := tasks[i]
		return dispatch.Task{ID: i, Publish: mt.Publish, Source: dispatch.Point(mt.Source),
			Dest: dispatch.Point(mt.Dest), StartBy: mt.StartBy, EndBy: mt.EndBy, Price: mt.Price, WTP: mt.WTP}
	}, n)
	if err != nil {
		t.Fatalf("load run: %v (%+v)", err, report)
	}
	if report.Submitted != n || report.SubmitErrors != 0 || report.CancelErrors != 0 || report.PollErrors != 0 {
		t.Fatalf("report %+v", report)
	}
	if report.Assigned == 0 {
		t.Fatal("no task was ever assigned")
	}

	var stats dispatch.Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if stats.Tasks != n {
		t.Fatalf("server saw %d of %d tasks", stats.Tasks, n)
	}
	if stats.Served+stats.Rejected+stats.Cancelled+stats.Pending != n {
		t.Fatalf("books do not balance: %+v", stats)
	}
}

// overloadServeTask builds a valid order near the synthetic fleet's
// home region with the given publish time, for the admission tests.
func overloadServeTask(id int, publish float64) dispatch.Task {
	base := dispatch.Point{Lat: 41.15, Lon: -8.61}
	return dispatch.Task{
		ID: id, Publish: publish,
		Source:  dispatch.Point{Lat: base.Lat + 0.001, Lon: base.Lon},
		Dest:    dispatch.Point{Lat: base.Lat + 0.01, Lon: base.Lon + 0.01},
		StartBy: publish + 900, EndBy: publish + 4500, Price: 10,
	}
}

// TestServeOverloadSheds is the backpressure acceptance check: a
// batched server with an admission bound answers submissions beyond
// the cap with 429 + Retry-After while the window is open, keeps the
// pending queue bounded at the cap, exposes the shed count through
// /healthz, and still admits the submission that closes the window so
// a full market can never wedge.
func TestServeOverloadSheds(t *testing.T) {
	srv, _ := newTestServer(t, 40, dispatch.WithSeed(2),
		dispatch.WithBatching(600, dispatch.Hungarian), dispatch.WithMaxPending(8))
	client := &http.Client{}

	const n = 100
	admitted, shed := 0, 0
	for i := 0; i < n; i++ {
		body, _ := json.Marshal(overloadServeTask(i, float64(i)))
		resp, err := client.Post(srv.URL+"/v1/tasks", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		resp.Body.Close()
		switch {
		case resp.StatusCode/100 == 2:
			admitted++
		case resp.StatusCode == http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("submit %d: 429 without Retry-After", i)
			}
		default:
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
	if admitted != 8 || shed != n-8 {
		t.Fatalf("admitted %d shed %d, want 8/%d", admitted, shed, n-8)
	}

	var health struct {
		Pending    int `json:"pending"`
		MaxPending int `json:"max_pending"`
		Shed       int `json:"shed"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if health.Pending != 8 || health.MaxPending != 8 || health.Shed != n-8 {
		t.Fatalf("healthz %+v", health)
	}

	// The submission at the window close drains the window first and is
	// admitted even though it finds the queue at the cap.
	var a dispatch.Assignment
	if err := postJSON(client, srv.URL+"/v1/tasks", overloadServeTask(n, 600), &a); err != nil {
		t.Fatalf("window-closing submission shed: %v", err)
	}
	if !a.Pending {
		t.Fatalf("window-closing submission: %+v", a)
	}

	var stats dispatch.Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if stats.Tasks != 9 || stats.Shed != n-8 || stats.Pending != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Served+stats.Rejected+stats.Cancelled+stats.Pending != stats.Tasks {
		t.Fatalf("books do not balance: %+v", stats)
	}
}

// TestServeLoadgenCountsSheds drives runLoad against a bounded batched
// market: shed submissions land in Overloaded (not in errors, not in
// the latency distribution), throughput counts successes only, and the
// client's view of the shed count matches the server's.
func TestServeLoadgenCountsSheds(t *testing.T) {
	srv, _ := newTestServer(t, 40, dispatch.WithSeed(2),
		dispatch.WithBatching(600, dispatch.Hungarian), dispatch.WithMaxPending(8))

	const n = 60
	report, err := runLoad(srv.URL, 4, 0, 0, 7, func(i int) dispatch.Task {
		return overloadServeTask(i, float64(i))
	}, n)
	if err != nil {
		t.Fatalf("load run: %v (%+v)", err, report)
	}
	if report.Submitted != 8 || report.Overloaded != n-8 {
		t.Fatalf("submitted %d overloaded %d, want 8/%d (%+v)",
			report.Submitted, report.Overloaded, n-8, report)
	}
	if report.SubmitErrors != 0 || report.CancelErrors != 0 || report.PollErrors != 0 {
		t.Fatalf("sheds leaked into the error columns: %+v", report)
	}
	if report.Latency.N != 8 {
		t.Fatalf("latency N = %d, want the 8 successes only", report.Latency.N)
	}
	if report.Pending != 8 {
		t.Fatalf("pending %d, want the full bounded window (%+v)", report.Pending, report)
	}

	var stats dispatch.Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if stats.Tasks != 8 || stats.Pending != 8 || stats.Shed != n-8 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Served+stats.Rejected+stats.Cancelled+stats.Pending != stats.Tasks {
		t.Fatalf("books do not balance: %+v", stats)
	}
}

func jsonInt(i int) string {
	b, _ := json.Marshal(i)
	return string(b)
}
