package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCmdBenchOracleWritesJSON: the -oracle suite writes one policy
// row per (policy, density) with competitive ratios inside (0,1] — the
// in-command dominance check would have errored otherwise — and one
// solver leg per (density, workers ∈ {1,2,4}) with the worker-sweep
// identity check already enforced before anything is written.
func TestCmdBenchOracleWritesJSON(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench7.json")
	if err := cmdBench([]string{"-oracle", "-drivers", "15,40", "-tasks", "70",
		"-reps", "2", "-batch-window", "45", "-churn", "0.3", "-cancel", "0.2",
		"-topk", "6", "-seed", "11", "-out", out}); err != nil {
		t.Fatalf("bench -oracle: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report oracleReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bench -oracle output is not valid JSON: %v", err)
	}
	if report.Schema != "rideshare-oracle-bench/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	if len(report.Rows) != 2*3 {
		t.Fatalf("rows = %d, want 6 (3 policies x 2 densities)", len(report.Rows))
	}
	for _, r := range report.Rows {
		if r.CompetitiveRatio <= 0 || r.CompetitiveRatio > 1 {
			t.Errorf("%s@%d: ratio %.6f outside (0,1]", r.Policy, r.Drivers, r.CompetitiveRatio)
		}
		if r.RevenueRegret < 0 {
			t.Errorf("%s@%d: negative regret %.6f", r.Policy, r.Drivers, r.RevenueRegret)
		}
		if r.OfflineRevenue < r.OnlineRevenue {
			t.Errorf("%s@%d: offline %.6f below online %.6f", r.Policy, r.Drivers, r.OfflineRevenue, r.OnlineRevenue)
		}
	}
	if len(report.Solver) != 2*len(oracleWorkerSweep) {
		t.Fatalf("solver legs = %d, want %d", len(report.Solver), 2*len(oracleWorkerSweep))
	}
	for i, leg := range report.Solver {
		if leg.Workers != oracleWorkerSweep[i%len(oracleWorkerSweep)] {
			t.Errorf("leg %d workers = %d", i, leg.Workers)
		}
		if leg.SolveSeconds <= 0 || leg.CompileSeconds <= 0 {
			t.Errorf("leg %d: non-positive timing %+v", i, leg)
		}
		if leg.Components <= 0 || leg.ExactComponents > leg.Components {
			t.Errorf("leg %d: bad component counts %+v", i, leg)
		}
		if leg.UpperBound < leg.Objective {
			t.Errorf("leg %d: upper bound %.9f below objective %.9f", i, leg.UpperBound, leg.Objective)
		}
	}
	// All legs of one density share the compiled instance and must have
	// reported the identical solution.
	for d := 0; d < 2; d++ {
		base := report.Solver[d*len(oracleWorkerSweep)]
		for _, leg := range report.Solver[d*len(oracleWorkerSweep) : (d+1)*len(oracleWorkerSweep)] {
			if leg.Objective != base.Objective || leg.Nodes != base.Nodes {
				t.Errorf("density %d: legs diverged: %+v vs %+v", d, leg, base)
			}
		}
	}
}

// The tightness command's brute-force call is bounded: a cap that is
// too small fails with a typed, actionable error instead of hanging,
// and a non-positive cap is rejected at the flag boundary.
func TestCmdTightnessMaxPaths(t *testing.T) {
	if err := cmdTightness([]string{"-max-paths", "0"}); err == nil {
		t.Error("-max-paths 0 accepted")
	}
	err := cmdTightness([]string{"-d", "6", "-max-paths", "1"})
	if err == nil {
		t.Fatal("-max-paths 1 solved D=6 — the cap is not reaching the solver")
	}
	if !strings.Contains(err.Error(), "-max-paths") {
		t.Errorf("cap error gives no remediation hint: %v", err)
	}
	if err := cmdTightness([]string{"-d", "3", "-max-paths", "100000"}); err != nil {
		t.Errorf("generous cap failed: %v", err)
	}
}

func TestCmdBenchOracleFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"oracle+batched", []string{"-oracle", "-batched"}},
		{"oracle+windows", []string{"-oracle", "-windows"}},
		{"bad churn", []string{"-oracle", "-churn", "1.5"}},
		{"bad cancel", []string{"-oracle", "-cancel", "-0.1"}},
		{"bad topk", []string{"-oracle", "-topk", "-1"}},
		{"zero window", []string{"-oracle", "-batch-window", "0"}},
	}
	for _, tc := range cases {
		if err := cmdBench(tc.args); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
