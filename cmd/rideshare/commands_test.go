package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/trace"
)

func TestParseModel(t *testing.T) {
	cases := []struct {
		in   string
		want trace.DriverModel
		ok   bool
	}{
		{"hitchhiking", trace.Hitchhiking, true},
		{"hitch", trace.Hitchhiking, true},
		{"HOME", trace.HomeWorkHome, true},
		{"home-work-home", trace.HomeWorkHome, true},
		{"uber", 0, false},
	}
	for _, tc := range cases {
		got, err := parseModel(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("parseModel(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseModel(%q) accepted", tc.in)
		}
	}
}

func TestCmdGenJSONAndSolveAndSimulate(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "day.json")
	if err := cmdGen([]string{"-tasks", "40", "-drivers", "8", "-seed", "3", "-out", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := model.ReadTraceJSON(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 40 || len(tr.Drivers) != 8 {
		t.Fatalf("trace sizes %d/%d", len(tr.Tasks), len(tr.Drivers))
	}

	if err := cmdSolve([]string{"-trace", out, "-bound", "-v"}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	for _, algo := range []string{"maxmargin", "nearest", "random", "batched"} {
		if err := cmdSimulate([]string{"-trace", out, "-algo", algo}); err != nil {
			t.Fatalf("simulate %s: %v", algo, err)
		}
	}
	if err := cmdSimulate([]string{"-trace", out, "-algo", "maxmargin", "-byvalue", "-realtime"}); err != nil {
		t.Fatalf("simulate flags: %v", err)
	}
}

func TestCmdGenCSV(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "day.csv")
	if err := cmdGen([]string{"-tasks", "10", "-drivers", "3", "-out", base}); err != nil {
		t.Fatalf("gen csv: %v", err)
	}
	df, err := os.Open(strings.TrimSuffix(base, ".csv") + "_drivers.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	drivers, err := model.ReadDriversCSV(df)
	if err != nil || len(drivers) != 3 {
		t.Fatalf("drivers csv: %v, %d", err, len(drivers))
	}
	tf, err := os.Open(strings.TrimSuffix(base, ".csv") + "_tasks.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	tasks, err := model.ReadTasksCSV(tf)
	if err != nil || len(tasks) != 10 {
		t.Fatalf("tasks csv: %v, %d", err, len(tasks))
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdSolve(nil); err == nil {
		t.Error("solve without -trace accepted")
	}
	if err := cmdSimulate(nil); err == nil {
		t.Error("simulate without -trace accepted")
	}
	if err := cmdSimulate([]string{"-trace", "/nonexistent.json"}); err == nil {
		t.Error("missing trace file accepted")
	}
	if err := cmdGen([]string{"-model", "teleportation"}); err == nil {
		t.Error("unknown model accepted")
	}
	if err := cmdExperiments([]string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := cmdTightness([]string{"-d", "1"}); err == nil {
		t.Error("D=1 tightness accepted")
	}
}

func TestCmdTightness(t *testing.T) {
	if err := cmdTightness([]string{"-d", "3", "-eps", "0.05"}); err != nil {
		t.Fatalf("tightness: %v", err)
	}
}

func TestRunExperimentsRendersRequestedFigures(t *testing.T) {
	cfg := experiments.Config{
		Seed: 1, Tasks: 40, Sweep: []int{5, 10},
		BoundIters: 20, DistSamples: 500,
	}
	var buf bytes.Buffer
	if err := runExperiments(&buf, cfg, "3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig3") {
		t.Errorf("fig3 missing:\n%s", out)
	}
	if strings.Contains(out, "fig5") {
		t.Errorf("fig5 rendered though only fig3 requested")
	}

	buf.Reset()
	if err := runExperiments(&buf, cfg, "7"); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "fig7") || strings.Contains(out, "fig6") {
		t.Errorf("density figure filtering broken:\n%s", out)
	}

	buf.Reset()
	if err := runExperiments(&buf, cfg, "all"); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if !strings.Contains(out, id) {
			t.Errorf("%s missing from -fig all output", id)
		}
	}
}
