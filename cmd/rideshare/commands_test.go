package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/trace"
)

func TestParseModel(t *testing.T) {
	cases := []struct {
		in   string
		want trace.DriverModel
		ok   bool
	}{
		{"hitchhiking", trace.Hitchhiking, true},
		{"hitch", trace.Hitchhiking, true},
		{"HOME", trace.HomeWorkHome, true},
		{"home-work-home", trace.HomeWorkHome, true},
		{"uber", 0, false},
	}
	for _, tc := range cases {
		got, err := parseModel(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("parseModel(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseModel(%q) accepted", tc.in)
		}
	}
}

func TestCmdGenJSONAndSolveAndSimulate(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "day.json")
	if err := cmdGen([]string{"-tasks", "40", "-drivers", "8", "-seed", "3", "-out", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := model.ReadTraceJSON(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 40 || len(tr.Drivers) != 8 {
		t.Fatalf("trace sizes %d/%d", len(tr.Tasks), len(tr.Drivers))
	}

	if err := cmdSolve([]string{"-trace", out, "-bound", "-v"}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	for _, algo := range []string{"maxmargin", "nearest", "random", "batched"} {
		if err := cmdSimulate([]string{"-trace", out, "-algo", algo}); err != nil {
			t.Fatalf("simulate %s: %v", algo, err)
		}
	}
	if err := cmdSimulate([]string{"-trace", out, "-algo", "maxmargin", "-byvalue", "-realtime"}); err != nil {
		t.Fatalf("simulate flags: %v", err)
	}
}

func TestCmdGenCSV(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "day.csv")
	if err := cmdGen([]string{"-tasks", "10", "-drivers", "3", "-out", base}); err != nil {
		t.Fatalf("gen csv: %v", err)
	}
	df, err := os.Open(strings.TrimSuffix(base, ".csv") + "_drivers.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	drivers, err := model.ReadDriversCSV(df)
	if err != nil || len(drivers) != 3 {
		t.Fatalf("drivers csv: %v, %d", err, len(drivers))
	}
	tf, err := os.Open(strings.TrimSuffix(base, ".csv") + "_tasks.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	tasks, err := model.ReadTasksCSV(tf)
	if err != nil || len(tasks) != 10 {
		t.Fatalf("tasks csv: %v, %d", err, len(tasks))
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdSolve(nil); err == nil {
		t.Error("solve without -trace accepted")
	}
	if err := cmdSimulate(nil); err == nil {
		t.Error("simulate without -trace accepted")
	}
	if err := cmdSimulate([]string{"-trace", "/nonexistent.json"}); err == nil {
		t.Error("missing trace file accepted")
	}
	if err := cmdGen([]string{"-model", "teleportation"}); err == nil {
		t.Error("unknown model accepted")
	}
	if err := cmdExperiments([]string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := cmdTightness([]string{"-d", "1"}); err == nil {
		t.Error("D=1 tightness accepted")
	}
}

// TestCmdFlagValidation: every command rejects non-positive counts
// (-shards, -workers, -reps, -tasks, -drivers) and out-of-range rates
// at the flag boundary with a clear error, instead of misbehaving or
// panicking deep inside the engine.
func TestCmdFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"gen -tasks 0", func() error { return cmdGen([]string{"-tasks", "0"}) }},
		{"gen -drivers -1", func() error { return cmdGen([]string{"-drivers", "-1"}) }},
		{"gen -churn 1.5", func() error { return cmdGen([]string{"-churn", "1.5"}) }},
		{"gen -cancel -0.1", func() error { return cmdGen([]string{"-cancel", "-0.1"}) }},
		{"simulate -shards 0", func() error { return cmdSimulate([]string{"-trace", "x.json", "-shards", "0"}) }},
		{"simulate -shards -2", func() error { return cmdSimulate([]string{"-trace", "x.json", "-shards", "-2"}) }},
		{"experiments -shards 0", func() error { return cmdExperiments([]string{"-shards", "0"}) }},
		{"experiments -workers 0", func() error { return cmdExperiments([]string{"-workers", "0"}) }},
		{"experiments -workers -3", func() error { return cmdExperiments([]string{"-workers", "-3"}) }},
		{"experiments -reps 0", func() error { return cmdExperiments([]string{"-reps", "0"}) }},
		{"bench -reps 0", func() error { return cmdBench([]string{"-reps", "0"}) }},
		{"bench -tasks 0", func() error { return cmdBench([]string{"-tasks", "0"}) }},
		{"bench -shards 0,2", func() error { return cmdBench([]string{"-shards", "0,2"}) }},
		{"bench -drivers 0", func() error { return cmdBench([]string{"-drivers", "0"}) }},
		{"simulate -algo batched -batchwindow 0", func() error {
			return cmdSimulate([]string{"-trace", "x.json", "-algo", "batched", "-batchwindow", "0"})
		}},
		{"simulate -algo batched -batchwindow -5", func() error {
			return cmdSimulate([]string{"-trace", "x.json", "-algo", "batched", "-batchwindow", "-5"})
		}},
		{"simulate -algo batched -batchalgo simplex", func() error {
			return cmdSimulate([]string{"-trace", "x.json", "-algo", "batched", "-batchalgo", "simplex"})
		}},
		{"bench -batched -batch-window 0", func() error {
			return cmdBench([]string{"-batched", "-batch-window", "0"})
		}},
		{"bench -batch-window -3", func() error { return cmdBench([]string{"-batch-window", "-3"}) }},
		{"bench -batched -batch-algo simplex", func() error {
			return cmdBench([]string{"-batched", "-batch-algo", "simplex"})
		}},
		{"bench -batched -streaming", func() error { return cmdBench([]string{"-batched", "-streaming"}) }},
		{"bench -windows -batched", func() error { return cmdBench([]string{"-windows", "-batched"}) }},
		{"bench -windows -batch-window 0", func() error {
			return cmdBench([]string{"-windows", "-batch-window", "0"})
		}},
		{"bench -match-workers 0", func() error { return cmdBench([]string{"-match-workers", "0"}) }},
		{"serve -match-workers 0", func() error { return cmdServe([]string{"-match-workers", "0"}) }},
		{"serve -match-workers without -batch-window", func() error {
			return cmdServe([]string{"-match-workers", "4"})
		}},
		{"serve -shards 0", func() error { return cmdServe([]string{"-shards", "0"}) }},
		{"serve -drivers 0", func() error { return cmdServe([]string{"-drivers", "0"}) }},
		{"serve -batch-window -1", func() error { return cmdServe([]string{"-batch-window", "-1"}) }},
		{"serve -algo with -batch-window", func() error {
			return cmdServe([]string{"-algo", "nearest", "-batch-window", "30"})
		}},
		{"serve -batch-window NaN", func() error { return cmdServe([]string{"-batch-window", "NaN"}) }},
		{"serve -batch-algo simplex", func() error { return cmdServe([]string{"-batch-algo", "simplex"}) }},
		{"loadgen -tasks 0", func() error { return cmdLoadgen([]string{"-tasks", "0"}) }},
		{"loadgen -workers 0", func() error { return cmdLoadgen([]string{"-workers", "0"}) }},
		{"loadgen -cancel 2", func() error { return cmdLoadgen([]string{"-cancel", "2"}) }},
		{"loadgen -rate -5", func() error { return cmdLoadgen([]string{"-rate", "-5"}) }},
		{"serve -max-pending -1", func() error { return cmdServe([]string{"-max-pending", "-1"}) }},
		{"bench -maxprocs without a suite", func() error { return cmdBench([]string{"-maxprocs", "1,2"}) }},
		{"bench -windows -maxprocs -2", func() error {
			return cmdBench([]string{"-windows", "-maxprocs", "1,-2"})
		}},
		{"bench -batched -maxprocs x", func() error {
			return cmdBench([]string{"-batched", "-maxprocs", "x"})
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestCmdTightness(t *testing.T) {
	if err := cmdTightness([]string{"-d", "3", "-eps", "0.05"}); err != nil {
		t.Fatalf("tightness: %v", err)
	}
}

func TestRunExperimentsRendersRequestedFigures(t *testing.T) {
	cfg := experiments.Config{
		Seed: 1, Tasks: 40, Sweep: []int{5, 10},
		BoundIters: 20, DistSamples: 500,
	}
	var buf bytes.Buffer
	if err := runExperiments(context.Background(), &buf, cfg, "3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig3") {
		t.Errorf("fig3 missing:\n%s", out)
	}
	if strings.Contains(out, "fig5") {
		t.Errorf("fig5 rendered though only fig3 requested")
	}

	buf.Reset()
	if err := runExperiments(context.Background(), &buf, cfg, "7"); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "fig7") || strings.Contains(out, "fig6") {
		t.Errorf("density figure filtering broken:\n%s", out)
	}

	buf.Reset()
	if err := runExperiments(context.Background(), &buf, cfg, "all"); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if !strings.Contains(out, id) {
			t.Errorf("%s missing from -fig all output", id)
		}
	}
}

func TestCmdGenChurnAndSimulateSharded(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "churnday.json")
	if err := cmdGen([]string{"-tasks", "60", "-drivers", "12", "-seed", "5",
		"-churn", "0.4", "-cancel", "0.3", "-out", out}); err != nil {
		t.Fatalf("gen with churn: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := model.ReadTraceJSON(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("gen -churn/-cancel wrote a trace without events")
	}
	// The embedded events replay through every dispatcher and shard count.
	for _, algo := range []string{"maxmargin", "batched", "replan"} {
		for _, shards := range []string{"1", "4"} {
			if err := cmdSimulate([]string{"-trace", out, "-algo", algo, "-shards", shards}); err != nil {
				t.Fatalf("simulate %s -shards=%s: %v", algo, shards, err)
			}
		}
	}
	// By-value runs cannot replay time-ordered events.
	if err := cmdSimulate([]string{"-trace", out, "-algo", "maxmargin", "-byvalue"}); err == nil {
		t.Fatal("simulate -byvalue accepted a trace with events")
	}
	// Flag override replaces the embedded events.
	if err := cmdSimulate([]string{"-trace", out, "-churn", "0.1", "-cancel", "0.1"}); err != nil {
		t.Fatalf("simulate churn override: %v", err)
	}
}

func TestCmdBenchWritesJSON(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	if err := cmdBench([]string{"-drivers", "120", "-shards", "1,2", "-tasks", "50",
		"-reps", "1", "-out", out}); err != nil {
		t.Fatalf("bench: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Schema  string `json:"schema"`
		Results []struct {
			Name        string  `json:"name"`
			Source      string  `json:"source"`
			Seconds     float64 `json:"seconds"`
			TasksPerSec float64 `json:"tasks_per_sec"`
			Served      int     `json:"served"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bench output is not valid JSON: %v", err)
	}
	if report.Schema != "rideshare-bench/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	// scan + grid + two shard counts.
	if len(report.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(report.Results))
	}
	for _, r := range report.Results {
		if r.Seconds <= 0 || r.TasksPerSec <= 0 {
			t.Fatalf("%s: non-positive timing %v", r.Name, r)
		}
	}
}

// TestCmdBenchBatchedWritesJSON: the -batched suite records engine and
// streaming-batched service timings in pairs under the shared schema,
// with the served counts of each pair agreeing (the batched streaming
// differential guarantee checked end to end) — for both solvers.
func TestCmdBenchBatchedWritesJSON(t *testing.T) {
	dir := t.TempDir()
	for _, algo := range []string{"hungarian", "auction"} {
		out := filepath.Join(dir, "bench4-"+algo+".json")
		if err := cmdBench([]string{"-batched", "-drivers", "120", "-shards", "2", "-tasks", "60",
			"-reps", "1", "-batch-window", "45", "-batch-algo", algo, "-out", out}); err != nil {
			t.Fatalf("bench -batched (%s): %v", algo, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var report struct {
			Schema  string `json:"schema"`
			Results []struct {
				Name    string  `json:"name"`
				Mode    string  `json:"mode"`
				Seconds float64 `json:"seconds"`
				Served  int     `json:"served"`
			} `json:"results"`
		}
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("bench -batched output is not valid JSON: %v", err)
		}
		if report.Schema != "rideshare-bench/v1" {
			t.Fatalf("schema = %q", report.Schema)
		}
		// scan + one shard count, two modes each.
		if len(report.Results) != 4 {
			t.Fatalf("results = %d, want 4", len(report.Results))
		}
		for i := 0; i < len(report.Results); i += 2 {
			engine, stream := report.Results[i], report.Results[i+1]
			if engine.Mode != "batch" || stream.Mode != "streaming" {
				t.Fatalf("pair %d modes: %q/%q", i, engine.Mode, stream.Mode)
			}
			if engine.Served != stream.Served {
				t.Fatalf("pair %d served diverged: %d vs %d", i, engine.Served, stream.Served)
			}
			if engine.Seconds <= 0 || stream.Seconds <= 0 {
				t.Fatalf("pair %d non-positive timing", i)
			}
		}
	}
}

// TestCmdBenchWindowsWritesJSON: the -windows suite records a
// dense/sparse kernel pair per fleet size with the allocation columns
// filled, equal served counts across the pair (the kernel equivalence
// check runs inside the command), and the sparse leg's speedup column
// populated. A -match-workers above 1 adds a parallel sparse leg.
func TestCmdBenchWindowsWritesJSON(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench5.json")
	if err := cmdBench([]string{"-windows", "-drivers", "150", "-shards", "2", "-tasks", "80",
		"-reps", "1", "-batch-window", "600", "-match-workers", "2", "-out", out}); err != nil {
		t.Fatalf("bench -windows: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Schema  string `json:"schema"`
		Results []struct {
			Name           string  `json:"name"`
			Kernel         string  `json:"kernel"`
			Workers        int     `json:"workers"`
			Seconds        float64 `json:"seconds"`
			Served         int     `json:"served"`
			AllocsPerTask  float64 `json:"allocs_per_task"`
			BytesPerTask   float64 `json:"bytes_per_task"`
			SpeedupVsDense float64 `json:"speedup_vs_dense"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bench -windows output is not valid JSON: %v", err)
	}
	if report.Schema != "rideshare-bench/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	// One fleet size, three legs: dense, sparse serial, sparse workers=2.
	if len(report.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(report.Results))
	}
	dense, sparse, parallel := report.Results[0], report.Results[1], report.Results[2]
	if dense.Kernel != "dense" || sparse.Kernel != "sparse" || parallel.Kernel != "sparse" {
		t.Fatalf("kernels: %q/%q/%q", dense.Kernel, sparse.Kernel, parallel.Kernel)
	}
	if parallel.Workers != 2 {
		t.Fatalf("parallel leg workers = %d", parallel.Workers)
	}
	for i, r := range report.Results {
		if r.Served != dense.Served {
			t.Fatalf("leg %d served %d, dense %d", i, r.Served, dense.Served)
		}
		if r.Seconds <= 0 || r.AllocsPerTask < 0 || r.BytesPerTask < 0 {
			t.Fatalf("leg %d has empty measurement columns: %+v", i, r)
		}
	}
	if sparse.SpeedupVsDense <= 0 || parallel.SpeedupVsDense <= 0 {
		t.Fatalf("sparse legs missing speedup_vs_dense: %+v / %+v", sparse, parallel)
	}
	if dense.SpeedupVsDense != 0 {
		t.Fatalf("dense leg carries speedup_vs_dense %g", dense.SpeedupVsDense)
	}
}

// TestCmdBenchMaxprocsWritesJSON: the -maxprocs sweep writes one
// result per GOMAXPROCS leg with the latency column family populated
// and ordered, a go_maxprocs column that actually varies (including a
// leg above 1 even on a single-core host — the parallel branches still
// execute), and bit-identical books across legs.
func TestCmdBenchMaxprocsWritesJSON(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench6.json")
	if err := cmdBench([]string{"-windows", "-maxprocs", "1,2", "-drivers", "150", "-shards", "2",
		"-tasks", "80", "-reps", "1", "-batch-window", "600", "-out", out}); err != nil {
		t.Fatalf("bench -windows -maxprocs: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Schema  string `json:"schema"`
		NumCPU  int    `json:"num_cpu"`
		Results []struct {
			Name       string  `json:"name"`
			GoMaxProcs int     `json:"go_maxprocs"`
			Workers    int     `json:"workers"`
			Served     int     `json:"served"`
			Revenue    float64 `json:"revenue"`
			Seconds    float64 `json:"seconds"`
			Latency    *struct {
				N     int64   `json:"n"`
				P50   float64 `json:"p50_ms"`
				P95   float64 `json:"p95_ms"`
				P99   float64 `json:"p99_ms"`
				P999  float64 `json:"p999_ms"`
				MaxMs float64 `json:"max_ms"`
			} `json:"latency"`
			SpeedupVsProcs1 float64 `json:"speedup_vs_procs1"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bench -maxprocs output is not valid JSON: %v", err)
	}
	if report.Schema != "rideshare-bench/v1" || report.NumCPU < 1 {
		t.Fatalf("schema %q, num_cpu %d", report.Schema, report.NumCPU)
	}
	if len(report.Results) != 2 {
		t.Fatalf("results = %d, want 2 legs", len(report.Results))
	}
	base := report.Results[0]
	sawMulti := false
	for i, r := range report.Results {
		if r.GoMaxProcs != i+1 {
			t.Fatalf("leg %d go_maxprocs = %d, want %d", i, r.GoMaxProcs, i+1)
		}
		if r.GoMaxProcs > 1 {
			sawMulti = true
		}
		if r.Workers != r.GoMaxProcs {
			t.Fatalf("leg %d workers = %d, want to follow go_maxprocs %d", i, r.Workers, r.GoMaxProcs)
		}
		if r.Served != base.Served || r.Revenue != base.Revenue {
			t.Fatalf("leg %d books diverged: served %d/%d revenue %g/%g",
				i, r.Served, base.Served, r.Revenue, base.Revenue)
		}
		if r.Seconds <= 0 {
			t.Fatalf("leg %d non-positive timing", i)
		}
		l := r.Latency
		if l == nil || l.N == 0 {
			t.Fatalf("leg %d missing latency columns: %+v", i, r)
		}
		if !(l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.P999 && l.P999 <= l.MaxMs) {
			t.Fatalf("leg %d latency percentiles unordered: %+v", i, *l)
		}
		if l.P50 <= 0 {
			t.Fatalf("leg %d latency p50 not populated: %+v", i, *l)
		}
	}
	if !sawMulti {
		t.Fatal("no leg ran with go_maxprocs > 1")
	}
	if base.SpeedupVsProcs1 != 0 {
		t.Fatalf("first leg carries speedup_vs_procs1 %g", base.SpeedupVsProcs1)
	}
	if report.Results[1].SpeedupVsProcs1 <= 0 {
		t.Fatalf("second leg missing speedup_vs_procs1: %+v", report.Results[1])
	}
}

// TestCmdBenchStreamingWritesJSON: the -streaming suite records batch
// and service timings in pairs with the overhead column filled, under
// the same schema as the dispatch suite, and the served counts of each
// pair agree (the end-to-end differential check).
func TestCmdBenchStreamingWritesJSON(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench3.json")
	if err := cmdBench([]string{"-streaming", "-drivers", "150", "-shards", "2", "-tasks", "60",
		"-reps", "1", "-out", out}); err != nil {
		t.Fatalf("bench -streaming: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Schema  string `json:"schema"`
		Results []struct {
			Name     string  `json:"name"`
			Mode     string  `json:"mode"`
			Seconds  float64 `json:"seconds"`
			Served   int     `json:"served"`
			Overhead float64 `json:"overhead_vs_batch"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bench -streaming output is not valid JSON: %v", err)
	}
	if report.Schema != "rideshare-bench/v1" {
		t.Fatalf("schema = %q", report.Schema)
	}
	// scan + one shard count, two modes each.
	if len(report.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(report.Results))
	}
	for i := 0; i < len(report.Results); i += 2 {
		batch, stream := report.Results[i], report.Results[i+1]
		if batch.Mode != "batch" || stream.Mode != "streaming" {
			t.Fatalf("pair %d modes: %q/%q", i, batch.Mode, stream.Mode)
		}
		if batch.Served != stream.Served {
			t.Fatalf("pair %d served diverged: %d vs %d", i, batch.Served, stream.Served)
		}
		if batch.Seconds <= 0 || stream.Seconds <= 0 {
			t.Fatalf("pair %d non-positive timing", i)
		}
	}
}
