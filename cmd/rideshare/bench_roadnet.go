package main

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/pricing"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchRoadnet prices the road-network distance rail: the same batched
// day is timed under the crow-fly metric, under street-graph shortest
// paths (the default CH router with its singleflight route cache), and under
// the network metric with a live surge pricer fed from an
// airport-spike trace. Each leg sweeps shard × match-worker
// configurations that must settle bit-identically — the network metric
// and the live pricing feed both ride the deterministic event drain —
// and the harness errors out if any diverges, if the generated graph's
// measured circuity leaves the plausible urban band [1.1, 1.6], or if
// the route cache serves less than 90% of lookups on the largest day.
func benchRoadnet(out string, tasks int, driverCounts []int, reps int, seed int64,
	window float64, algo sim.BatchAlgorithm, cache int) error {
	report := benchReport{
		Schema:     "rideshare-bench/v1",
		Command:    fmt.Sprintf("rideshare bench -roadnet -batch-window %g", window),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Reps:       reps,
	}

	maxDrivers := 0
	for _, d := range driverCounts {
		if d > maxDrivers {
			maxDrivers = d
		}
	}
	sweep := [][2]int{{1, 1}, {2, 2}, {4, 4}}

	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(seed, tasks, drivers, trace.Hitchhiking)
		plain := trace.NewGenerator(cfg).Generate(nil)
		spikeCfg := cfg
		spikeCfg.Spikes = []trace.Spike{trace.AirportEveningSpike()}
		spiked := trace.NewGenerator(spikeCfg).Generate(nil)

		crowRevenue := 0.0

		for _, l := range []struct {
			metric  string
			network bool
			surge   bool
		}{
			{"crowfly", false, false},
			{"network", true, false},
			{"network-surge", true, true},
		} {
			tr := plain
			if l.surge {
				tr = spiked
			}
			var baseRes sim.Result
			for ci, sw := range sweep {
				shards, workers := sw[0], sw[1]

				var router *roadnet.Router
				mkt := cfg.Market
				if l.network {
					g, err := roadnet.GenerateGrid(roadnet.DefaultGridConfig())
					if err != nil {
						return fmt.Errorf("bench: roadnet graph: %w", err)
					}
					router = roadnet.NewRouter(g, geo.PortoBox, 0)
					if cache > 0 {
						router.SetCacheBound(cache)
					}
					mkt.Dist = router.Dist
				}
				eng, err := sim.New(mkt, tr.Drivers, 1)
				if err != nil {
					return err
				}
				eng.SetCandidateSource(sim.NewShardedSource(shards))
				eng.MatchWorkers = workers
				if l.surge {
					surge := pricing.NewSurge(pricing.NewLinear(mkt, 1), geo.NewGrid(cfg.Box, 10, 10), 3)
					eng.SetLivePricer(surge, 0.7, 0.5)
				}

				var res sim.Result
				var hitRate float64
				times := make([]float64, 0, reps)
				for r := 0; r < reps; r++ {
					if router != nil {
						// Zero the counters between reps so each rep's
						// stats describe that rep alone, not the
						// accumulated history of the leg.
						router.ResetCacheStats()
					}
					start := time.Now()
					res = eng.RunBatched(tr.Tasks, window, algo)
					times = append(times, time.Since(start).Seconds())
					if r == 0 && router != nil {
						// The cold first day is the honest hit rate;
						// later reps replay a warm cache.
						hits, misses, _ := router.CacheStats()
						if hits+misses > 0 {
							hitRate = float64(hits) / float64(hits+misses)
						}
					}
				}
				sort.Float64s(times)
				median := times[len(times)/2]

				if ci == 0 {
					baseRes = res
				} else if !reflect.DeepEqual(baseRes, res) {
					return fmt.Errorf("bench: roadnet %s leg diverged at shards=%d workers=%d: served %d vs %d, revenue %.9f vs %.9f — this is a bug",
						l.metric, shards, workers, res.Served, baseRes.Served, res.Revenue, baseRes.Revenue)
				}
				if l.metric == "crowfly" && ci == 0 {
					crowRevenue = res.Revenue
				}

				row := benchResult{
					Name:        fmt.Sprintf("roadnet/drivers=%d/%s/shards=%d,workers=%d", drivers, l.metric, shards, workers),
					Drivers:     drivers,
					Tasks:       tasks,
					Source:      "sharded",
					Shards:      shards,
					Workers:     workers,
					Metric:      l.metric,
					Seconds:     median,
					TasksPerSec: float64(tasks) / median,
					Served:      res.Served,
					Revenue:     res.Revenue,
				}
				if router != nil {
					circ := router.Circuity(300)
					if circ < 1.1 || circ > 1.6 {
						return fmt.Errorf("bench: roadnet circuity %.3f outside the urban band [1.1, 1.6] — the generated graph is implausible", circ)
					}
					row.Circuity = circ
					row.CacheHitRate = hitRate
					if drivers >= maxDrivers && maxDrivers >= 50000 && hitRate < 0.90 {
						return fmt.Errorf("bench: route-cache hit rate %.3f below 0.90 on the %d-driver day — the cache is not absorbing the workload", hitRate, drivers)
					}
					if crowRevenue != 0 {
						row.RevenueDeltaVsCrow = res.Revenue/crowRevenue - 1
					}
				}
				report.Results = append(report.Results, row)
				fmt.Fprintf(os.Stderr, "%-58s %8.3fs  %8.0f tasks/s  served %d\n",
					row.Name, median, row.TasksPerSec, res.Served)
			}
		}
	}

	return writeBenchReport(out, report)
}
