package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/dispatch"
	"repro/internal/model"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// cmdBench is the repository's perf trajectory recorder: it times one
// full online day of maxMargin dispatch at city-fleet driver counts
// under every candidate source — the sequential linear scan (what
// -shards=1 runs), the grid index, and the zone-sharded engine at each
// shard count — and writes the measurements as machine-readable JSON so
// future changes have a baseline to diff against. Every configuration
// must produce identical market outcomes; the harness errors out if any
// diverges, doubling as an end-to-end differential check.

// benchResult is one timed configuration in the JSON output.
type benchResult struct {
	Name        string  `json:"name"`
	Drivers     int     `json:"drivers"`
	Tasks       int     `json:"tasks"`
	Source      string  `json:"source"`
	Shards      int     `json:"shards,omitempty"`
	Mode        string  `json:"mode,omitempty"`   // batch | streaming (streaming suite only)
	Kernel      string  `json:"kernel,omitempty"` // dense | sparse (windows suite only)
	Workers     int     `json:"workers,omitempty"`
	Seconds     float64 `json:"seconds"` // median over -reps runs
	TasksPerSec float64 `json:"tasks_per_sec"`
	Served      int     `json:"served"`
	Speedup     float64 `json:"speedup_vs_scan,omitempty"`
	// Overhead is the streaming replay's extra wall time over the batch
	// drain of the same day and source: seconds/batchSeconds − 1.
	Overhead float64 `json:"overhead_vs_batch,omitempty"`
	// Allocation accounting over the timed region (runtime.MemStats
	// deltas, median over -reps runs), normalized per submitted task.
	AllocsPerTask float64 `json:"allocs_per_task,omitempty"`
	BytesPerTask  float64 `json:"bytes_per_task,omitempty"`
	// SpeedupVsDense and AllocCutVsDense compare the sparse
	// component-decomposed window kernel against the dense oracle on
	// the same day (windows suite only); AllocCutVsDense is the
	// fraction of the dense path's allocations eliminated.
	SpeedupVsDense  float64 `json:"speedup_vs_dense,omitempty"`
	AllocCutVsDense float64 `json:"alloc_cut_vs_dense,omitempty"`
	// The -maxprocs sweep's column family: the GOMAXPROCS value this
	// leg ran under, the day's revenue (part of the cross-leg identity
	// check), per-decision wall-latency percentiles, and the speedup
	// over the sweep's first leg (procs=1 when the sweep includes it).
	GoMaxProcs      int                   `json:"go_maxprocs,omitempty"`
	Revenue         float64               `json:"revenue,omitempty"`
	Latency         *stats.LatencySummary `json:"latency,omitempty"`
	SpeedupVsProcs1 float64               `json:"speedup_vs_procs1,omitempty"`
	// The -durable suite's column family: the journal's fsync policy
	// (with Overhead measured against the in-memory baseline), the
	// snapshot cadence of a recovery leg, and the log's on-disk size.
	Fsync         string `json:"fsync,omitempty"`
	SnapshotEvery int    `json:"snapshot_every,omitempty"`
	WALBytes      int64  `json:"wal_bytes,omitempty"`
	// The -roadnet suite's column family: which distance metric the leg
	// ran under, the street graph's measured circuity (network over
	// crow-fly distance across sampled node pairs), the route cache's
	// cold-day hit rate, and the leg's revenue relative to the crow-fly
	// baseline at the same fleet size.
	Metric             string  `json:"metric,omitempty"`
	Circuity           float64 `json:"circuity,omitempty"`
	CacheHitRate       float64 `json:"cache_hit_rate,omitempty"`
	RevenueDeltaVsCrow float64 `json:"revenue_delta_vs_crowfly,omitempty"`
	// The -router suite's column family (BENCH_10): the routing kernel a
	// leg ran on, its preprocessing wall time, cold point-to-point
	// queries/sec (with each kernel's speedup over the ALT leg), the
	// one-to-many batch API's speedup over a looped Dist on the same
	// candidate sets, and the batched day's throughput under a cold
	// route cache next to a warmed one.
	Router            string  `json:"router,omitempty"`
	PreprocessSeconds float64 `json:"preprocess_seconds,omitempty"`
	QueriesPerSec     float64 `json:"queries_per_sec,omitempty"`
	SpeedupVsALT      float64 `json:"speedup_vs_alt,omitempty"`
	DistManySpeedup   float64 `json:"distmany_speedup_vs_looped,omitempty"`
	ColdTasksPerSec   float64 `json:"cold_tasks_per_sec,omitempty"`
	WarmTasksPerSec   float64 `json:"warm_tasks_per_sec,omitempty"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	Schema     string        `json:"schema"`
	Command    string        `json:"command"`
	GoMaxProcs int           `json:"go_maxprocs"`
	NumCPU     int           `json:"num_cpu,omitempty"`
	Reps       int           `json:"reps"`
	Results    []benchResult `json:"results"`
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "", "output JSON file (- for stdout; default BENCH_2.json, BENCH_3.json with -streaming, BENCH_4.json with -batched, BENCH_5.json with -windows, BENCH_7.json with -oracle, BENCH_8.json with -durable, BENCH_9.json with -roadnet, or BENCH_10.json with -roadnet -router)")
	tasks := fs.Int("tasks", 1000, "orders per simulated day")
	driversList := fs.String("drivers", "10000,50000", "comma-separated fleet sizes")
	shardsList := fs.String("shards", "1,2,4,8", "comma-separated shard counts to time")
	reps := fs.Int("reps", 3, "runs per configuration (median reported)")
	seed := fs.Int64("seed", 27, "trace seed")
	streaming := fs.Bool("streaming", false, "measure streaming overhead: batch drain vs dispatch.Service replay of the same day")
	batched := fs.Bool("batched", false, "measure streaming-batched overhead: Engine.RunBatched drain vs a WithBatching dispatch.Service replay of the same day")
	windows := fs.Bool("windows", false, "measure window-clearing kernels: dense whole-matrix vs sparse component-decomposed solve of the same batched day, with per-task allocation accounting")
	oracle := fs.Bool("oracle", false, "run the offline-optimum oracle suite: three online policies vs the warm-started sparse branch and bound on the same churned day, with a {1,2,4}-worker determinism sweep")
	durable := fs.Bool("durable", false, "price the durability rail: the same batched day in-memory vs journaled under each fsync policy, plus Restore timings per snapshot cadence")
	roadnetSuite := fs.Bool("roadnet", false, "price the road-network distance rail: the same batched day under crow-fly vs street-graph shortest paths vs network+live-surge on a spiked trace, with a shard × match-worker identity sweep per leg")
	routerList := fs.String("router", "", "comma-separated routing kernels (ch,alt) for the -roadnet router suite: per-kernel preprocessing, cold point-to-point and one-to-many microbenchmarks plus a cold- vs warm-cache batched day, with cross-kernel bit-identity enforced; writes BENCH_10.json by default")
	roadnetCache := fs.Int("roadnet-cache", 0, "route-cache bound in memoized node pairs for the -roadnet suites (0 = default)")
	snapIntervalsList := fs.String("snap-intervals", "16,256,4096", "comma-separated snapshot cadences for the -durable suite's recovery legs")
	churn := fs.Float64("churn", 0.2, "driver churn fraction for the -oracle suite")
	cancel := fs.Float64("cancel", 0.15, "rider cancellation fraction for the -oracle suite")
	topk := fs.Int("topk", 8, "rail top-k column pruning for the -oracle suite's hindsight compile (0 = exact, small days only)")
	batchWindow := fs.Float64("batch-window", 60, "window seconds for the -batched and -windows suites")
	batchAlgo := fs.String("batch-algo", "hungarian", "batch solver for the -batched and -windows suites: hungarian or auction")
	matchWorkers := fs.Int("match-workers", 1, "component-solver goroutines for the -windows suite's sparse leg")
	maxprocsList := fs.String("maxprocs", "", "comma-separated GOMAXPROCS legs to sweep (0 = all CPUs); pairs with -windows or -batched, adds per-decision latency percentiles, and writes BENCH_6.json by default")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// A sweep scales the component solver with the leg's GOMAXPROCS
	// unless the user pinned -match-workers explicitly.
	workersSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "match-workers" {
			workersSet = true
		}
	})
	if err := checkPositive("bench", map[string]int{"-tasks": *tasks, "-reps": *reps, "-match-workers": *matchWorkers}); err != nil {
		return err
	}
	if err := checkBatchWindow("bench", *batchWindow); err != nil {
		return err
	}
	if *batched && *batchWindow == 0 {
		return fmt.Errorf("bench: -batched needs a positive -batch-window, got %g", *batchWindow)
	}
	if *windows && *batchWindow == 0 {
		return fmt.Errorf("bench: -windows needs a positive -batch-window, got %g", *batchWindow)
	}
	suites := 0
	for _, on := range []bool{*streaming, *batched, *windows, *oracle, *durable, *roadnetSuite} {
		if on {
			suites++
		}
	}
	if suites > 1 {
		return fmt.Errorf("bench: -streaming, -batched, -windows, -oracle, -durable and -roadnet are separate suites; pick one")
	}
	if *roadnetSuite && *batchWindow == 0 {
		return fmt.Errorf("bench: -roadnet needs a positive -batch-window, got %g", *batchWindow)
	}
	routers, err := parseRouters(*routerList)
	if err != nil {
		return fmt.Errorf("bench: -router: %w", err)
	}
	if len(routers) > 0 && !*roadnetSuite {
		return fmt.Errorf("bench: -router pairs with -roadnet")
	}
	if *roadnetCache < 0 {
		return fmt.Errorf("bench: -roadnet-cache %d, want ≥ 0", *roadnetCache)
	}
	if !*roadnetSuite {
		cacheSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "roadnet-cache" {
				cacheSet = true
			}
		})
		if cacheSet {
			return fmt.Errorf("bench: -roadnet-cache pairs with -roadnet")
		}
	}
	var snapIntervals []int
	if *durable {
		if *batchWindow == 0 {
			return fmt.Errorf("bench: -durable needs a positive -batch-window, got %g", *batchWindow)
		}
		var err error
		if snapIntervals, err = parseIntList(*snapIntervalsList); err != nil {
			return fmt.Errorf("bench: -snap-intervals: %w", err)
		}
		for _, v := range snapIntervals {
			if v < 1 {
				return fmt.Errorf("bench: -snap-intervals entries must be ≥ 1, got %d", v)
			}
		}
	} else {
		snapSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "snap-intervals" {
				snapSet = true
			}
		})
		if snapSet {
			return fmt.Errorf("bench: -snap-intervals pairs with -durable")
		}
	}
	if *oracle {
		if *churn < 0 || *churn > 1 || *cancel < 0 || *cancel > 1 {
			return fmt.Errorf("bench: -churn and -cancel must be in [0,1], got %g and %g", *churn, *cancel)
		}
		if *topk < 0 {
			return fmt.Errorf("bench: -topk must be ≥ 0, got %d", *topk)
		}
		if *batchWindow == 0 {
			return fmt.Errorf("bench: -oracle needs a positive -batch-window, got %g", *batchWindow)
		}
	}
	var procs []int
	if *maxprocsList != "" {
		if !*windows && !*batched {
			return fmt.Errorf("bench: -maxprocs sweeps the -windows or -batched suite; pick one of those")
		}
		raw, err := parseIntList(*maxprocsList)
		if err != nil {
			return fmt.Errorf("bench: -maxprocs: %w", err)
		}
		seen := make(map[int]bool)
		for _, p := range raw {
			if p < 0 {
				return fmt.Errorf("bench: -maxprocs entries must be ≥ 0 (0 = all CPUs), got %d", p)
			}
			if p == 0 {
				p = runtime.NumCPU()
			}
			if !seen[p] {
				seen[p] = true
				procs = append(procs, p)
			}
		}
	}
	batchPolicy, err := dispatch.ParseBatchAlgorithm(*batchAlgo)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	driverCounts, err := parseIntList(*driversList)
	if err != nil {
		return fmt.Errorf("bench: -drivers: %w", err)
	}
	shardCounts, err := parseIntList(*shardsList)
	if err != nil {
		return fmt.Errorf("bench: -shards: %w", err)
	}
	for _, v := range driverCounts {
		if v < 1 {
			return fmt.Errorf("bench: -drivers entries must be ≥ 1, got %d", v)
		}
	}
	for _, v := range shardCounts {
		if v < 1 {
			return fmt.Errorf("bench: -shards entries must be ≥ 1, got %d", v)
		}
	}
	if *out == "" {
		*out = "BENCH_2.json"
		if *streaming {
			*out = "BENCH_3.json"
		}
		if *batched {
			*out = "BENCH_4.json"
		}
		if *windows {
			*out = "BENCH_5.json"
		}
		if len(procs) > 0 {
			*out = "BENCH_6.json"
		}
		if *oracle {
			*out = "BENCH_7.json"
		}
		if *durable {
			*out = "BENCH_8.json"
		}
		if *roadnetSuite {
			*out = "BENCH_9.json"
			if len(routers) > 0 {
				*out = "BENCH_10.json"
			}
		}
	}
	if *roadnetSuite {
		simAlgo := sim.BatchHungarian
		if batchPolicy == dispatch.Auction {
			simAlgo = sim.BatchAuction
		}
		if len(routers) > 0 {
			return benchRouters(*out, *tasks, driverCounts, *reps, *seed, *batchWindow, simAlgo, routers, *roadnetCache)
		}
		return benchRoadnet(*out, *tasks, driverCounts, *reps, *seed, *batchWindow, simAlgo, *roadnetCache)
	}
	if *durable {
		return benchDurable(*out, *tasks, driverCounts, *reps, *seed,
			*batchWindow, batchPolicy, snapIntervals)
	}
	if *oracle {
		return benchOracle(*out, *tasks, driverCounts, *reps, *seed,
			*batchWindow, *churn, *cancel, *topk, *matchWorkers)
	}
	if len(procs) > 0 {
		if *windows {
			return benchWindowsMaxprocs(*out, *tasks, driverCounts, shardCounts, *reps, *seed,
				*batchWindow, batchPolicy, *matchWorkers, workersSet, procs)
		}
		return benchBatchedMaxprocs(*out, *tasks, driverCounts, shardCounts, *reps, *seed,
			*batchWindow, batchPolicy, *matchWorkers, workersSet, procs)
	}
	if *streaming {
		return benchStreaming(*out, *tasks, driverCounts, shardCounts, *reps, *seed)
	}
	if *batched {
		return benchBatched(*out, *tasks, driverCounts, shardCounts, *reps, *seed, *batchWindow, batchPolicy)
	}
	if *windows {
		return benchWindows(*out, *tasks, driverCounts, shardCounts, *reps, *seed, *batchWindow, batchPolicy, *matchWorkers)
	}

	report := benchReport{
		Schema:     "rideshare-bench/v1",
		Command:    "rideshare bench",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       *reps,
	}

	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(*seed, *tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)

		type config struct {
			source string
			shards int
			mk     func() sim.CandidateSource
		}
		configs := []config{
			{"scan", 0, func() sim.CandidateSource { return nil }},
			{"grid", 0, func() sim.CandidateSource { return sim.NewGridSource(nil) }},
		}
		for _, s := range shardCounts {
			s := s
			configs = append(configs, config{"sharded", s,
				func() sim.CandidateSource { return sim.NewShardedSource(s) }})
		}

		baseline := -1.0
		var baselineServed int
		for _, c := range configs {
			eng, err := sim.New(cfg.Market, tr.Drivers, 1)
			if err != nil {
				return err
			}
			if src := c.mk(); src != nil {
				eng.SetCandidateSource(src)
			}
			times := make([]float64, 0, *reps)
			var res sim.Result
			for r := 0; r < *reps; r++ {
				start := time.Now()
				res = eng.Run(tr.Tasks, online.MaxMargin{})
				times = append(times, time.Since(start).Seconds())
			}
			sort.Float64s(times)
			median := times[len(times)/2]

			if c.source == "scan" {
				baseline = median
				baselineServed = res.Served
			} else if res.Served != baselineServed {
				return fmt.Errorf("bench: %s served %d, scan served %d — results diverged, this is a bug",
					c.source, res.Served, baselineServed)
			}
			name := fmt.Sprintf("dispatch/drivers=%d/%s", drivers, c.source)
			if c.shards > 0 {
				name = fmt.Sprintf("%s-%d", name, c.shards)
			}
			report.Results = append(report.Results, benchResult{
				Name: name, Drivers: drivers, Tasks: *tasks,
				Source: c.source, Shards: c.shards,
				Seconds:     median,
				TasksPerSec: float64(*tasks) / median,
				Served:      res.Served,
				Speedup:     baseline / median,
			})
			fmt.Fprintf(os.Stderr, "%-40s %8.3fs  %8.0f tasks/s  %.2fx vs scan\n",
				name, median, float64(*tasks)/median, baseline/median)
		}
	}

	return writeBenchReport(*out, report)
}

// writeBenchReport encodes the report to the output file ("-" for
// stdout).
func writeBenchReport(out string, report benchReport) error {
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d results)\n", out, len(report.Results))
	}
	return nil
}

// benchStreaming measures what promoting the engine to an open-loop
// service costs: the same full day of maxMargin dispatch is timed as a
// batch drain (Engine.RunScenario) and as an event-by-event replay
// through the public dispatch.Service, per candidate source. The two
// must serve identical task counts (the streaming differential
// guarantee, checked here end to end); the interesting number is the
// overhead column, which prices the Service's per-event costs — heap
// pushes, ID mapping, feed publication, locking — against the batch
// drain's.
func benchStreaming(out string, tasks int, driverCounts, shardCounts []int, reps int, seed int64) error {
	report := benchReport{
		Schema:     "rideshare-bench/v1",
		Command:    "rideshare bench -streaming",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
	}
	ctx := context.Background()
	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(seed, tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)

		// Public-typed view of the same day, tasks in publish order —
		// the canonical streaming feed for an event-free trace.
		market := dispatch.Market{}
		for i, d := range tr.Drivers {
			market.Drivers = append(market.Drivers, toDispatchDriver(i, d))
		}
		feed := make([]dispatch.Task, len(tr.Tasks))
		for i, t := range tr.Tasks {
			feed[i] = toDispatchTask(i, t)
		}
		sort.SliceStable(feed, func(a, b int) bool { return feed[a].Publish < feed[b].Publish })

		type config struct {
			source string
			shards int
		}
		// Shard count 1 is the engine default on both sides (the public
		// WithShards(1) selects the plain scan), so a sharded-1 pair
		// would time two different candidate sources against each other
		// and contaminate the overhead column; the scan pair already
		// covers that configuration.
		configs := []config{{"scan", 0}}
		for _, s := range shardCounts {
			if s < 2 {
				fmt.Fprintf(os.Stderr, "bench: -streaming skips shard count %d (identical to the scan pair)\n", s)
				continue
			}
			configs = append(configs, config{"sharded", s})
		}
		for _, c := range configs {
			mkSource := func() sim.CandidateSource {
				if c.shards > 0 {
					return sim.NewShardedSource(c.shards)
				}
				return nil
			}
			// Batch drain.
			eng, err := sim.New(cfg.Market, tr.Drivers, 1)
			if err != nil {
				return err
			}
			if src := mkSource(); src != nil {
				eng.SetCandidateSource(src)
			}
			var batchRes sim.Result
			batchTimes := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				start := time.Now()
				batchRes = eng.RunScenario(tr.Tasks, nil, online.MaxMargin{})
				batchTimes = append(batchTimes, time.Since(start).Seconds())
			}
			sort.Float64s(batchTimes)
			batchSec := batchTimes[len(batchTimes)/2]

			// Streaming replay. The timed region is the whole service
			// transaction — construction, every submission, Close — so
			// the overhead includes everything a real front end pays.
			opts := []dispatch.Option{
				dispatch.WithDispatcher(dispatch.MaxMargin),
				dispatch.WithSeed(1), dispatch.WithStrictTimes(),
			}
			if c.shards > 1 {
				opts = append(opts, dispatch.WithShards(c.shards))
			}
			var streamStats dispatch.Stats
			streamTimes := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				start := time.Now()
				svc, err := dispatch.New(market, opts...)
				if err != nil {
					return fmt.Errorf("bench: streaming service: %w", err)
				}
				for i := range feed {
					if _, err := svc.SubmitTask(ctx, feed[i]); err != nil {
						return fmt.Errorf("bench: streaming submit %d: %w", feed[i].ID, err)
					}
				}
				streamStats, err = svc.Close()
				if err != nil {
					return err
				}
				streamTimes = append(streamTimes, time.Since(start).Seconds())
			}
			sort.Float64s(streamTimes)
			streamSec := streamTimes[len(streamTimes)/2]

			if streamStats.Served != batchRes.Served {
				return fmt.Errorf("bench: streaming served %d, batch served %d — replay diverged, this is a bug",
					streamStats.Served, batchRes.Served)
			}

			base := fmt.Sprintf("streaming/drivers=%d/%s", drivers, c.source)
			if c.shards > 0 {
				base = fmt.Sprintf("%s-%d", base, c.shards)
			}
			overhead := streamSec/batchSec - 1
			report.Results = append(report.Results,
				benchResult{
					Name: base + "/batch", Drivers: drivers, Tasks: tasks,
					Source: c.source, Shards: c.shards, Mode: "batch",
					Seconds: batchSec, TasksPerSec: float64(tasks) / batchSec,
					Served: batchRes.Served,
				},
				benchResult{
					Name: base + "/service", Drivers: drivers, Tasks: tasks,
					Source: c.source, Shards: c.shards, Mode: "streaming",
					Seconds: streamSec, TasksPerSec: float64(tasks) / streamSec,
					Served: streamStats.Served, Overhead: overhead,
				})
			fmt.Fprintf(os.Stderr, "%-44s batch %7.3fs  service %7.3fs  overhead %+.1f%%\n",
				base, batchSec, streamSec, 100*overhead)
		}
	}
	return writeBenchReport(out, report)
}

// benchBatched prices the tentpole promotion of window matching to the
// open-loop API: the same full day of batched dispatch is timed as an
// engine drain (Engine.RunBatched) and as a submission-by-submission
// replay through a dispatch.Service built WithBatching, per candidate
// source. The pairs must serve identical task counts (the batched
// streaming differential guarantee, checked here end to end); the
// overhead column prices the service's per-event costs on top of the
// window matching itself.
func benchBatched(out string, tasks int, driverCounts, shardCounts []int, reps int, seed int64,
	window float64, algo dispatch.BatchAlgorithm) error {
	simAlgo := sim.BatchHungarian
	if algo == dispatch.Auction {
		simAlgo = sim.BatchAuction
	}
	report := benchReport{
		Schema:     "rideshare-bench/v1",
		Command:    fmt.Sprintf("rideshare bench -batched -batch-window %g -batch-algo %v", window, algo),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
	}
	ctx := context.Background()
	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(seed, tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)

		market := dispatch.Market{}
		for i, d := range tr.Drivers {
			market.Drivers = append(market.Drivers, toDispatchDriver(i, d))
		}
		feed := make([]dispatch.Task, len(tr.Tasks))
		for i, t := range tr.Tasks {
			feed[i] = toDispatchTask(i, t)
		}
		sort.SliceStable(feed, func(a, b int) bool { return feed[a].Publish < feed[b].Publish })

		type config struct {
			source string
			shards int
		}
		configs := []config{{"scan", 0}}
		for _, s := range shardCounts {
			if s < 2 {
				fmt.Fprintf(os.Stderr, "bench: -batched skips shard count %d (identical to the scan pair)\n", s)
				continue
			}
			configs = append(configs, config{"sharded", s})
		}
		for _, c := range configs {
			// Engine drain.
			eng, err := sim.New(cfg.Market, tr.Drivers, 1)
			if err != nil {
				return err
			}
			if c.shards > 0 {
				eng.SetCandidateSource(sim.NewShardedSource(c.shards))
			}
			var batchRes sim.Result
			batchTimes := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				start := time.Now()
				batchRes = eng.RunBatched(tr.Tasks, window, simAlgo)
				batchTimes = append(batchTimes, time.Since(start).Seconds())
			}
			sort.Float64s(batchTimes)
			batchSec := batchTimes[len(batchTimes)/2]

			// Streaming-batched replay: construction, every submission
			// (each answered pending), Close deciding the final window.
			opts := []dispatch.Option{
				dispatch.WithBatching(window, algo),
				dispatch.WithSeed(1), dispatch.WithStrictTimes(),
			}
			if c.shards > 1 {
				opts = append(opts, dispatch.WithShards(c.shards))
			}
			var streamStats dispatch.Stats
			streamTimes := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				start := time.Now()
				svc, err := dispatch.New(market, opts...)
				if err != nil {
					return fmt.Errorf("bench: batched service: %w", err)
				}
				for i := range feed {
					a, err := svc.SubmitTask(ctx, feed[i])
					if err != nil {
						return fmt.Errorf("bench: batched submit %d: %w", feed[i].ID, err)
					}
					if !a.Pending {
						return fmt.Errorf("bench: batched submit %d answered instantly", feed[i].ID)
					}
				}
				streamStats, err = svc.Close()
				if err != nil {
					return err
				}
				streamTimes = append(streamTimes, time.Since(start).Seconds())
			}
			sort.Float64s(streamTimes)
			streamSec := streamTimes[len(streamTimes)/2]

			if streamStats.Served != batchRes.Served {
				return fmt.Errorf("bench: batched service served %d, engine served %d — replay diverged, this is a bug",
					streamStats.Served, batchRes.Served)
			}

			base := fmt.Sprintf("batched/drivers=%d/%s", drivers, c.source)
			if c.shards > 0 {
				base = fmt.Sprintf("%s-%d", base, c.shards)
			}
			overhead := streamSec/batchSec - 1
			report.Results = append(report.Results,
				benchResult{
					Name: base + "/engine", Drivers: drivers, Tasks: tasks,
					Source: c.source, Shards: c.shards, Mode: "batch",
					Seconds: batchSec, TasksPerSec: float64(tasks) / batchSec,
					Served: batchRes.Served,
				},
				benchResult{
					Name: base + "/service", Drivers: drivers, Tasks: tasks,
					Source: c.source, Shards: c.shards, Mode: "streaming",
					Seconds: streamSec, TasksPerSec: float64(tasks) / streamSec,
					Served: streamStats.Served, Overhead: overhead,
				})
			fmt.Fprintf(os.Stderr, "%-44s engine %7.3fs  service %7.3fs  overhead %+.1f%%\n",
				base, batchSec, streamSec, 100*overhead)
		}
	}
	return writeBenchReport(out, report)
}

// benchWindows prices the window-clearing kernels against each other:
// the same batched day is drained once through the dense whole-matrix
// oracle (Engine.DenseWindows) and once through the sparse
// component-decomposed solve, on the sharded candidate source, with
// runtime.MemStats deltas recording the allocation bill of each run.
// The two kernels must produce bit-identical assignments — checked
// here over the full Assignment map, not just serve counts — so the
// speedup and allocation columns compare equal outputs, never cheaper
// approximations.
//
// Note the workload: windows only earn their keep when they hold more
// than one order, so this suite defaults to a denser day than the
// BENCH_2–BENCH_4 trajectory (scripts/bench.sh passes -tasks/-batch-
// window sized for ~15-order windows). The dense oracle's cost grows
// with the cube of (batch + column union), which is precisely the
// regime the sparse kernel exists for.
func benchWindows(out string, tasks int, driverCounts, shardCounts []int, reps int, seed int64,
	window float64, algo dispatch.BatchAlgorithm, workers int) error {
	simAlgo := sim.BatchHungarian
	if algo == dispatch.Auction {
		simAlgo = sim.BatchAuction
	}
	// One sharded source configuration: the largest requested shard
	// count (the fastest candidate generator, so kernel time dominates
	// the column least). This suite compares kernels, not sources —
	// say so when the -shards list asked for more than one.
	shards := 1
	for _, s := range shardCounts {
		if s > shards {
			shards = s
		}
	}
	if len(shardCounts) > 1 {
		fmt.Fprintf(os.Stderr, "bench: -windows times one candidate source; using sharded-%d (the largest of -shards %v)\n",
			shards, shardCounts)
	}
	report := benchReport{
		Schema:     "rideshare-bench/v1",
		Command:    fmt.Sprintf("rideshare bench -windows -batch-window %g -batch-algo %v -match-workers %d", window, algo, workers),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
	}
	type leg struct {
		kernel  string
		dense   bool
		workers int
	}
	legs := []leg{{"dense", true, 1}, {"sparse", false, 1}}
	if workers > 1 {
		legs = append(legs, leg{"sparse", false, workers})
	}
	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(seed, tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)

		var denseRes sim.Result
		var denseSec, denseAllocs float64
		for _, l := range legs {
			eng, err := sim.New(cfg.Market, tr.Drivers, 1)
			if err != nil {
				return err
			}
			if shards > 1 {
				eng.SetCandidateSource(sim.NewShardedSource(shards))
			}
			eng.DenseWindows = l.dense
			eng.MatchWorkers = l.workers

			var res sim.Result
			times := make([]float64, 0, reps)
			allocs := make([]float64, 0, reps)
			bytes := make([]float64, 0, reps)
			var m0, m1 runtime.MemStats
			for r := 0; r < reps; r++ {
				runtime.GC()
				runtime.ReadMemStats(&m0)
				start := time.Now()
				res = eng.RunBatched(tr.Tasks, window, simAlgo)
				times = append(times, time.Since(start).Seconds())
				runtime.ReadMemStats(&m1)
				allocs = append(allocs, float64(m1.Mallocs-m0.Mallocs)/float64(tasks))
				bytes = append(bytes, float64(m1.TotalAlloc-m0.TotalAlloc)/float64(tasks))
			}
			sort.Float64s(times)
			sort.Float64s(allocs)
			sort.Float64s(bytes)
			median := times[len(times)/2]
			medAllocs := allocs[len(allocs)/2]
			medBytes := bytes[len(bytes)/2]

			if l.dense {
				denseRes, denseSec, denseAllocs = res, median, medAllocs
			} else {
				// The equal-output guarantee, checked end to end: the two
				// kernels must serve the same orders for the same money.
				// The task→driver maps are compared too, but tied optima
				// are tolerated and reported: on degenerate windows
				// (several drivers offering bitwise-equal margins) each
				// kernel commits its own exact optimum — the per-window
				// audit test proves those never trade away weight.
				if res.Served != denseRes.Served || res.Rejected != denseRes.Rejected {
					return fmt.Errorf("bench: sparse kernel (workers=%d) served %d/rejected %d vs dense %d/%d at %d drivers — this is a bug",
						l.workers, res.Served, res.Rejected, denseRes.Served, denseRes.Rejected, drivers)
				}
				if math.Abs(res.Revenue-denseRes.Revenue) > 1e-6*math.Max(1, math.Abs(denseRes.Revenue)) {
					return fmt.Errorf("bench: sparse kernel (workers=%d) revenue %.9f vs dense %.9f at %d drivers — this is a bug",
						l.workers, res.Revenue, denseRes.Revenue, drivers)
				}
				if !reflect.DeepEqual(res.Assignment, denseRes.Assignment) {
					// Symmetric difference: a task served by only one
					// kernel counts once from each side's perspective.
					diffs := 0
					for ti, drv := range denseRes.Assignment {
						if sd, ok := res.Assignment[ti]; !ok || sd != drv {
							diffs++
						}
					}
					for ti := range res.Assignment {
						if _, ok := denseRes.Assignment[ti]; !ok {
							diffs++
						}
					}
					fmt.Fprintf(os.Stderr, "bench: note: %d of %d assignments differ between kernels at %d drivers (tied optima; equal served counts and revenue)\n",
						diffs, len(denseRes.Assignment), drivers)
				}
			}

			name := fmt.Sprintf("windows/drivers=%d/sharded-%d/%s", drivers, shards, l.kernel)
			if l.workers > 1 {
				name = fmt.Sprintf("%s-w%d", name, l.workers)
			}
			r := benchResult{
				Name: name, Drivers: drivers, Tasks: tasks,
				Source: "sharded", Shards: shards,
				Kernel: l.kernel, Workers: l.workers,
				Seconds: median, TasksPerSec: float64(tasks) / median,
				Served:        res.Served,
				AllocsPerTask: medAllocs, BytesPerTask: medBytes,
			}
			if !l.dense {
				r.SpeedupVsDense = denseSec / median
				if denseAllocs > 0 {
					r.AllocCutVsDense = 1 - medAllocs/denseAllocs
				}
			}
			report.Results = append(report.Results, r)
			fmt.Fprintf(os.Stderr, "%-48s %8.3fs  %8.0f tasks/s  %9.0f allocs/task  %.2fx vs dense\n",
				name, median, float64(tasks)/median, medAllocs, r.SpeedupVsDense)
		}
	}
	return writeBenchReport(out, report)
}

// maxShards collapses a -shards list to the single candidate-source
// configuration the maxprocs sweeps time: the largest requested count,
// where the parallel fan-out has the most shards to spread across.
func maxShards(shardCounts []int) int {
	shards := 1
	for _, s := range shardCounts {
		if s > shards {
			shards = s
		}
	}
	return shards
}

// checkSweepIdentity enforces the maxprocs sweep's bit-identity bar:
// every GOMAXPROCS leg must reproduce the first leg's books exactly —
// same served and rejected counts, bitwise-equal revenue. The parallel
// query fan-out and the component solver both preserve the merge order,
// so equality here is exact, not tolerance-based; any drift is a bug.
func checkSweepIdentity(suite string, p int, served, rejected, baseServed, baseRejected int, revenue, baseRevenue float64) error {
	if served != baseServed || rejected != baseRejected {
		return fmt.Errorf("bench: %s at GOMAXPROCS=%d served %d/rejected %d vs first leg %d/%d — legs diverged, this is a bug",
			suite, p, served, rejected, baseServed, baseRejected)
	}
	if revenue != baseRevenue {
		return fmt.Errorf("bench: %s at GOMAXPROCS=%d revenue %.12g vs first leg %.12g — legs diverged, this is a bug",
			suite, p, revenue, baseRevenue)
	}
	return nil
}

// benchWindowsMaxprocs sweeps GOMAXPROCS over the sparse windowed
// kernel at the engine level: the same batched day is replayed through
// Engine.NewBatchedStream once per requested processor count, with the
// per-shard query fan-out and the component solver free to use the
// leg's processors (MatchWorkers follows GOMAXPROCS unless the user
// pinned -match-workers). Every SubmitTask — the call that pays for
// due window closes — is individually timed into an HDR-style
// histogram, so the latency columns price the decision tail, not just
// mean throughput. All legs must produce bit-identical books.
func benchWindowsMaxprocs(out string, tasks int, driverCounts, shardCounts []int, reps int, seed int64,
	window float64, algo dispatch.BatchAlgorithm, workers int, workersSet bool, procs []int) error {
	simAlgo := sim.BatchHungarian
	if algo == dispatch.Auction {
		simAlgo = sim.BatchAuction
	}
	shards := maxShards(shardCounts)
	if len(shardCounts) > 1 {
		fmt.Fprintf(os.Stderr, "bench: -maxprocs times one candidate source; using sharded-%d (the largest of -shards %v)\n",
			shards, shardCounts)
	}
	report := benchReport{
		Schema:     "rideshare-bench/v1",
		Command:    fmt.Sprintf("rideshare bench -windows -maxprocs %v -batch-window %g -batch-algo %v", procs, window, algo),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Reps:       reps,
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(seed, tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		// The canonical streaming feed: the day's orders in publish
		// order, exactly as the batched differential tests replay them.
		day := make([]model.Task, len(tr.Tasks))
		copy(day, tr.Tasks)
		sort.SliceStable(day, func(a, b int) bool { return day[a].Publish < day[b].Publish })

		var baseRes sim.Result
		var baseSec float64
		for li, p := range procs {
			runtime.GOMAXPROCS(p)
			w := workers
			if !workersSet {
				w = p
			}
			eng, err := sim.New(cfg.Market, tr.Drivers, 1)
			if err != nil {
				return err
			}
			if shards > 1 {
				eng.SetCandidateSource(sim.NewShardedSource(shards))
			}
			eng.MatchWorkers = w

			var res sim.Result
			hist := &stats.LatencyHist{}
			times := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				st, err := eng.NewBatchedStream(window, simAlgo, nil)
				if err != nil {
					return err
				}
				start := time.Now()
				for i := range day {
					t0 := time.Now()
					st.SubmitTask(day[i])
					hist.Record(time.Since(t0).Seconds())
				}
				t0 := time.Now()
				res, err = st.Finish()
				if err != nil {
					return err
				}
				hist.Record(time.Since(t0).Seconds())
				times = append(times, time.Since(start).Seconds())
			}
			sort.Float64s(times)
			median := times[len(times)/2]

			if li == 0 {
				baseRes, baseSec = res, median
			} else if err := checkSweepIdentity("-windows sweep", p,
				res.Served, res.Rejected, baseRes.Served, baseRes.Rejected,
				res.Revenue, baseRes.Revenue); err != nil {
				return err
			}

			sum := hist.Summary()
			r := benchResult{
				Name:    fmt.Sprintf("windows/drivers=%d/sharded-%d/sparse/procs=%d", drivers, shards, p),
				Drivers: drivers, Tasks: tasks,
				Source: "sharded", Shards: shards,
				Kernel: "sparse", Workers: w,
				Seconds: median, TasksPerSec: float64(tasks) / median,
				Served: res.Served, Revenue: res.Revenue,
				GoMaxProcs: p, Latency: &sum,
			}
			if li > 0 {
				r.SpeedupVsProcs1 = baseSec / median
			}
			report.Results = append(report.Results, r)
			fmt.Fprintf(os.Stderr, "%-52s %8.3fs  %8.0f tasks/s  p50 %.3fms  p99 %.3fms  p999 %.3fms\n",
				r.Name, median, r.TasksPerSec, sum.P50Ms, sum.P99Ms, sum.P999Ms)
		}
	}
	return writeBenchReport(out, report)
}

// benchBatchedMaxprocs sweeps GOMAXPROCS over the public batched
// service: the same day is replayed submission-by-submission through a
// WithBatching dispatch.Service once per requested processor count,
// timing each SubmitTask and the window-deciding Close into the latency
// histogram. The service's match workers follow the leg's GOMAXPROCS
// unless -match-workers pinned them. All legs must balance to the same
// books — the sweep doubles as a concurrency differential test of the
// whole public stack.
func benchBatchedMaxprocs(out string, tasks int, driverCounts, shardCounts []int, reps int, seed int64,
	window float64, algo dispatch.BatchAlgorithm, workers int, workersSet bool, procs []int) error {
	shards := maxShards(shardCounts)
	if len(shardCounts) > 1 {
		fmt.Fprintf(os.Stderr, "bench: -maxprocs times one candidate source; using sharded-%d (the largest of -shards %v)\n",
			shards, shardCounts)
	}
	report := benchReport{
		Schema:     "rideshare-bench/v1",
		Command:    fmt.Sprintf("rideshare bench -batched -maxprocs %v -batch-window %g -batch-algo %v", procs, window, algo),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Reps:       reps,
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	ctx := context.Background()
	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(seed, tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)

		market := dispatch.Market{}
		for i, d := range tr.Drivers {
			market.Drivers = append(market.Drivers, toDispatchDriver(i, d))
		}
		feed := make([]dispatch.Task, len(tr.Tasks))
		for i, t := range tr.Tasks {
			feed[i] = toDispatchTask(i, t)
		}
		sort.SliceStable(feed, func(a, b int) bool { return feed[a].Publish < feed[b].Publish })

		var baseStats dispatch.Stats
		var baseSec float64
		for li, p := range procs {
			runtime.GOMAXPROCS(p)
			w := workers
			if !workersSet {
				w = p
			}
			opts := []dispatch.Option{
				dispatch.WithBatching(window, algo),
				dispatch.WithSeed(1), dispatch.WithStrictTimes(),
			}
			if shards > 1 {
				opts = append(opts, dispatch.WithShards(shards))
			}
			if w > 1 {
				opts = append(opts, dispatch.WithMatchWorkers(w))
			}

			var svcStats dispatch.Stats
			hist := &stats.LatencyHist{}
			times := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				svc, err := dispatch.New(market, opts...)
				if err != nil {
					return fmt.Errorf("bench: batched service: %w", err)
				}
				start := time.Now()
				for i := range feed {
					t0 := time.Now()
					if _, err := svc.SubmitTask(ctx, feed[i]); err != nil {
						return fmt.Errorf("bench: batched submit %d: %w", feed[i].ID, err)
					}
					hist.Record(time.Since(t0).Seconds())
				}
				t0 := time.Now()
				svcStats, err = svc.Close()
				if err != nil {
					return err
				}
				hist.Record(time.Since(t0).Seconds())
				times = append(times, time.Since(start).Seconds())
			}
			sort.Float64s(times)
			median := times[len(times)/2]

			if li == 0 {
				baseStats, baseSec = svcStats, median
			} else if err := checkSweepIdentity("-batched sweep", p,
				svcStats.Served, svcStats.Rejected, baseStats.Served, baseStats.Rejected,
				svcStats.Revenue, baseStats.Revenue); err != nil {
				return err
			}

			sum := hist.Summary()
			r := benchResult{
				Name:    fmt.Sprintf("batched/drivers=%d/sharded-%d/service/procs=%d", drivers, shards, p),
				Drivers: drivers, Tasks: tasks,
				Source: "sharded", Shards: shards,
				Mode: "streaming", Workers: w,
				Seconds: median, TasksPerSec: float64(tasks) / median,
				Served: svcStats.Served, Revenue: svcStats.Revenue,
				GoMaxProcs: p, Latency: &sum,
			}
			if li > 0 {
				r.SpeedupVsProcs1 = baseSec / median
			}
			report.Results = append(report.Results, r)
			fmt.Fprintf(os.Stderr, "%-52s %8.3fs  %8.0f tasks/s  p50 %.3fms  p99 %.3fms  p999 %.3fms\n",
				r.Name, median, r.TasksPerSec, sum.P50Ms, sum.P99Ms, sum.P999Ms)
		}
	}
	return writeBenchReport(out, report)
}
