package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
)

// cmdBench is the repository's perf trajectory recorder: it times one
// full online day of maxMargin dispatch at city-fleet driver counts
// under every candidate source — the sequential linear scan (what
// -shards=1 runs), the grid index, and the zone-sharded engine at each
// shard count — and writes the measurements as machine-readable JSON so
// future changes have a baseline to diff against. Every configuration
// must produce identical market outcomes; the harness errors out if any
// diverges, doubling as an end-to-end differential check.

// benchResult is one timed configuration in the JSON output.
type benchResult struct {
	Name        string  `json:"name"`
	Drivers     int     `json:"drivers"`
	Tasks       int     `json:"tasks"`
	Source      string  `json:"source"`
	Shards      int     `json:"shards,omitempty"`
	Seconds     float64 `json:"seconds"` // median over -reps runs
	TasksPerSec float64 `json:"tasks_per_sec"`
	Served      int     `json:"served"`
	Speedup     float64 `json:"speedup_vs_scan"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	Schema     string        `json:"schema"`
	Command    string        `json:"command"`
	GoMaxProcs int           `json:"go_maxprocs"`
	Reps       int           `json:"reps"`
	Results    []benchResult `json:"results"`
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_2.json", "output JSON file (- for stdout)")
	tasks := fs.Int("tasks", 1000, "orders per simulated day")
	driversList := fs.String("drivers", "10000,50000", "comma-separated fleet sizes")
	shardsList := fs.String("shards", "1,2,4,8", "comma-separated shard counts to time")
	reps := fs.Int("reps", 3, "runs per configuration (median reported)")
	seed := fs.Int64("seed", 27, "trace seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	driverCounts, err := parseIntList(*driversList)
	if err != nil {
		return fmt.Errorf("bench: -drivers: %w", err)
	}
	shardCounts, err := parseIntList(*shardsList)
	if err != nil {
		return fmt.Errorf("bench: -shards: %w", err)
	}

	report := benchReport{
		Schema:     "rideshare-bench/v1",
		Command:    "rideshare bench",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       *reps,
	}

	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(*seed, *tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)

		type config struct {
			source string
			shards int
			mk     func() sim.CandidateSource
		}
		configs := []config{
			{"scan", 0, func() sim.CandidateSource { return nil }},
			{"grid", 0, func() sim.CandidateSource { return sim.NewGridSource(nil) }},
		}
		for _, s := range shardCounts {
			s := s
			configs = append(configs, config{"sharded", s,
				func() sim.CandidateSource { return sim.NewShardedSource(s) }})
		}

		baseline := -1.0
		var baselineServed int
		for _, c := range configs {
			eng, err := sim.New(cfg.Market, tr.Drivers, 1)
			if err != nil {
				return err
			}
			if src := c.mk(); src != nil {
				eng.SetCandidateSource(src)
			}
			times := make([]float64, 0, *reps)
			var res sim.Result
			for r := 0; r < *reps; r++ {
				start := time.Now()
				res = eng.Run(tr.Tasks, online.MaxMargin{})
				times = append(times, time.Since(start).Seconds())
			}
			sort.Float64s(times)
			median := times[len(times)/2]

			if c.source == "scan" {
				baseline = median
				baselineServed = res.Served
			} else if res.Served != baselineServed {
				return fmt.Errorf("bench: %s served %d, scan served %d — results diverged, this is a bug",
					c.source, res.Served, baselineServed)
			}
			name := fmt.Sprintf("dispatch/drivers=%d/%s", drivers, c.source)
			if c.shards > 0 {
				name = fmt.Sprintf("%s-%d", name, c.shards)
			}
			report.Results = append(report.Results, benchResult{
				Name: name, Drivers: drivers, Tasks: *tasks,
				Source: c.source, Shards: c.shards,
				Seconds:     median,
				TasksPerSec: float64(*tasks) / median,
				Served:      res.Served,
				Speedup:     baseline / median,
			})
			fmt.Fprintf(os.Stderr, "%-40s %8.3fs  %8.0f tasks/s  %.2fx vs scan\n",
				name, median, float64(*tasks)/median, baseline/median)
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d results)\n", *out, len(report.Results))
	}
	return nil
}
