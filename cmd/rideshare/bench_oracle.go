package main

// The -oracle suite prices the offline-optimum rail end to end: one
// churned day is dispatched by the three online policies (instant
// maxMargin, batched Hungarian, batched auction), compiled once into a
// hindsight instance with every policy's own pairs force-kept, and
// solved by the sparse branch and bound at worker counts {1, 2, 4}.
// The policy rows report revenue/served regret and the competitive
// ratio against the rail optimum; the solver rows report wall time,
// allocations per component, and the exactness ledger. All worker legs
// must produce bit-identical solutions — the suite errors out if any
// diverges, doubling as the determinism check of the fan-out.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/bound"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
)

// oracleWorkerSweep is the fixed determinism sweep; every leg must
// reproduce the first one bit for bit.
var oracleWorkerSweep = []int{1, 2, 4}

// oraclePolicyRow is one (policy, density) cell of BENCH_7.
type oraclePolicyRow struct {
	Policy  string `json:"policy"`
	Drivers int    `json:"drivers"`
	Tasks   int    `json:"tasks"`

	PolicySeconds  float64 `json:"policy_seconds"`
	OnlineRevenue  float64 `json:"online_revenue"`
	OfflineRevenue float64 `json:"offline_revenue"`
	OnlineServed   int     `json:"online_served"`
	OfflineServed  int     `json:"offline_served"`

	RevenueRegret    float64 `json:"revenue_regret"`
	ServedRegret     int     `json:"served_regret"`
	CompetitiveRatio float64 `json:"competitive_ratio"`
}

// oracleSolverLeg is one (density, workers) timing of the rail solve.
type oracleSolverLeg struct {
	Drivers int `json:"drivers"`
	Workers int `json:"workers"`

	CompileSeconds float64 `json:"compile_seconds"`
	SolveSeconds   float64 `json:"solve_seconds"` // median over -reps re-solves

	Objective       float64 `json:"objective"`
	UpperBound      float64 `json:"upper_bound"`
	Exact           bool    `json:"exact"`
	Components      int     `json:"components"`
	ExactComponents int     `json:"exact_components"`
	Nodes           int64   `json:"nodes"`
	Pairs           int     `json:"pairs"`
	Arcs            int     `json:"arcs"`

	AllocsPerComponent float64 `json:"allocs_per_component"`
	WarmKept           int     `json:"warm_kept"`
	WarmDropped        int     `json:"warm_dropped"`
	LPSolved           int     `json:"lp_solved"`
	LPFixed            int     `json:"lp_fixed"`
}

type oracleReport struct {
	Schema     string  `json:"schema"`
	Command    string  `json:"command"`
	GoMaxProcs int     `json:"go_maxprocs"`
	Reps       int     `json:"reps"`
	Tasks      int     `json:"tasks"`
	Window     float64 `json:"batch_window"`
	Churn      float64 `json:"churn"`
	Cancel     float64 `json:"cancel"`
	TopK       int     `json:"topk"`

	Rows   []oraclePolicyRow `json:"rows"`
	Solver []oracleSolverLeg `json:"solver"`
}

func benchOracle(out string, tasks int, driverCounts []int, reps int, seed int64,
	window, churn, cancel float64, topk, compileWorkers int) error {
	report := oracleReport{
		Schema: "rideshare-oracle-bench/v1",
		Command: fmt.Sprintf("rideshare bench -oracle -tasks %d -batch-window %g -churn %g -cancel %g -topk %d",
			tasks, window, churn, cancel, topk),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps, Tasks: tasks, Window: window,
		Churn: churn, Cancel: cancel, TopK: topk,
	}

	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(seed, tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		if churn > 0 || cancel > 0 {
			tr.Events = trace.WithChurn(tr, trace.DefaultChurn(seed, churn, cancel))
		}
		eng, err := sim.New(cfg.Market, tr.Drivers, seed)
		if err != nil {
			return err
		}
		eng.MatchWorkers = compileWorkers

		type policyRun struct {
			name    string
			seconds float64
			res     sim.Result
		}
		runs := make([]policyRun, 3)
		runs[0].name = "maxMargin"
		runs[1].name = "batched(hungarian)"
		runs[2].name = "batched(auction)"
		for i := range runs {
			start := time.Now()
			switch i {
			case 0:
				runs[i].res = eng.RunScenario(tr.Tasks, tr.Events, online.MaxMargin{})
			case 1:
				runs[i].res = eng.RunBatchedScenario(tr.Tasks, tr.Events, window, sim.BatchHungarian)
			case 2:
				runs[i].res = eng.RunBatchedScenario(tr.Tasks, tr.Events, window, sim.BatchAuction)
			}
			runs[i].seconds = time.Since(start).Seconds()
		}

		var keep [][2]int32
		best := 0
		for i, r := range runs {
			for m, d := range r.res.Assignment {
				keep = append(keep, [2]int32{int32(m), int32(d)})
			}
			if r.res.Revenue > runs[best].res.Revenue {
				best = i
			}
		}

		t0 := time.Now()
		in, err := offline.Compile(cfg.Market, tr, offline.Options{
			Objective: offline.ObjectiveRevenue,
			TopK:      topk,
			Keep:      keep,
			Workers:   compileWorkers,
		})
		if err != nil {
			return fmt.Errorf("bench: oracle compile at %d drivers: %w", drivers, err)
		}
		compileSec := time.Since(t0).Seconds()

		var baseSol bound.SparseSolution
		var baseTD []int32
		for li, workers := range oracleWorkerSweep {
			var solver bound.SparseSolver
			opt := bound.SparseOptions{
				Workers: workers, Warm: runs[best].res.DriverPaths,
				LP: true, SkipPaths: true,
			}
			var sol bound.SparseSolution
			times := make([]float64, 0, reps)
			allocs := make([]float64, 0, reps)
			var m0, m1 runtime.MemStats
			for r := 0; r < reps; r++ {
				runtime.GC()
				runtime.ReadMemStats(&m0)
				start := time.Now()
				sol, err = solver.Solve(in, opt)
				times = append(times, time.Since(start).Seconds())
				runtime.ReadMemStats(&m1)
				if err != nil {
					return fmt.Errorf("bench: oracle solve at %d drivers, %d workers: %w", drivers, workers, err)
				}
				allocs = append(allocs, float64(m1.Mallocs-m0.Mallocs))
			}
			sort.Float64s(times)
			sort.Float64s(allocs)
			median := times[len(times)/2]
			medAllocs := allocs[len(allocs)/2]

			if li == 0 {
				baseSol = sol
				baseTD = append([]int32(nil), sol.TaskDriver...)
			} else {
				// The determinism bar: every worker count must reproduce
				// the serial solve bit for bit — objective, bound, node
				// count, and the full task→driver map.
				if sol.Objective != baseSol.Objective || sol.UpperBound != baseSol.UpperBound ||
					sol.Nodes != baseSol.Nodes || sol.Exact != baseSol.Exact {
					return fmt.Errorf("bench: oracle solve at %d drivers diverged at %d workers: obj %.12g/%.12g ub %.12g/%.12g nodes %d/%d — this is a bug",
						drivers, workers, sol.Objective, baseSol.Objective, sol.UpperBound, baseSol.UpperBound, sol.Nodes, baseSol.Nodes)
				}
				for ti := range sol.TaskDriver {
					if sol.TaskDriver[ti] != baseTD[ti] {
						return fmt.Errorf("bench: oracle solve at %d drivers diverged at %d workers: task %d → driver %d vs %d — this is a bug",
							drivers, workers, ti, sol.TaskDriver[ti], baseTD[ti])
					}
				}
			}

			leg := oracleSolverLeg{
				Drivers: drivers, Workers: workers,
				CompileSeconds: compileSec, SolveSeconds: median,
				Objective: sol.Objective, UpperBound: sol.UpperBound,
				Exact: sol.Exact, Components: sol.Components,
				ExactComponents: sol.ExactComponents, Nodes: sol.Nodes,
				Pairs: in.Stats.Pairs, Arcs: in.Stats.Arcs,
				WarmKept: sol.WarmKept, WarmDropped: sol.WarmDropped,
				LPSolved: sol.LPSolved, LPFixed: sol.LPFixed,
			}
			if sol.Components > 0 {
				leg.AllocsPerComponent = medAllocs / float64(sol.Components)
			}
			report.Solver = append(report.Solver, leg)
			fmt.Fprintf(os.Stderr, "oracle/drivers=%d/workers=%d  compile %6.3fs  solve %7.4fs  %5d/%d comps exact  %6.1f allocs/comp\n",
				drivers, workers, compileSec, median, sol.ExactComponents, sol.Components, leg.AllocsPerComponent)
		}

		offServed := 0
		for _, d := range baseTD {
			if d >= 0 {
				offServed++
			}
		}
		for _, r := range runs {
			row := oraclePolicyRow{
				Policy: r.name, Drivers: drivers, Tasks: tasks,
				PolicySeconds: r.seconds,
				OnlineRevenue: r.res.Revenue, OfflineRevenue: baseSol.Objective,
				OnlineServed: r.res.Served, OfflineServed: offServed,
				RevenueRegret: baseSol.Objective - r.res.Revenue,
				ServedRegret:  offServed - r.res.Served,
			}
			switch {
			case baseSol.Objective > 0:
				row.CompetitiveRatio = r.res.Revenue / baseSol.Objective
			case r.res.Revenue == 0:
				row.CompetitiveRatio = 1
			}
			if row.CompetitiveRatio <= 0 || row.CompetitiveRatio > 1 {
				return fmt.Errorf("bench: oracle ratio %.9f for %s at %d drivers outside (0,1] — the rail must dominate every policy, this is a bug",
					row.CompetitiveRatio, r.name, drivers)
			}
			report.Rows = append(report.Rows, row)
			fmt.Fprintf(os.Stderr, "oracle/drivers=%d/%-20s revenue %12.2f vs offline %12.2f  ratio %.4f\n",
				drivers, r.name, r.res.Revenue, baseSol.Objective, row.CompetitiveRatio)
		}
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d rows, %d solver legs)\n", out, len(report.Rows), len(report.Solver))
	}
	return nil
}
