package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof-addr
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/dispatch"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wal"
)

// This file is the live front end: `rideshare serve` exposes a
// dispatch.Service over HTTP/JSON so the market actually serves
// traffic instead of replaying traces. The API is deliberately small:
//
//	GET  /healthz                    liveness + market shape
//	POST /v1/tasks                   submit a task, get the decision
//	GET  /v1/tasks/{id}              current decision (pending on a batched market)
//	POST /v1/tasks/{id}/cancel       rider cancellation   {"at": t}
//	POST /v1/drivers                 announce a driver
//	POST /v1/drivers/{id}/retire     retire a driver      {"at": t}
//	GET  /v1/stats                   settled aggregate stats
//	GET  /v1/events                  assignment feed (server-sent events)
//
// With -batch-window W the market dispatches in batched mode: POST
// /v1/tasks answers {"pending":true,"decide_by":...}, the decision and
// each window's batch_closed stats stream out on /v1/events, and GET
// /v1/tasks/{id} polls the decision. -realtime additionally closes due
// windows on the wall clock, so a quiet market still answers.
//
// With -wal-dir the market is durable: every mutation is journaled to a
// write-ahead log before it is applied (fsync policy under -fsync),
// periodic snapshots bound replay, graceful shutdown (SIGINT) fsyncs
// the tail and writes a final snapshot, and a restart over the same
// directory recovers the log — after a crash, from the newest snapshot
// plus the journal suffix — and resumes the market where it stopped.
//
// The HTTP surface itself is fed.MarketHandler, shared with the
// multi-market `rideshare router` (router.go). `rideshare loadgen`
// (loadgen.go) is the matching traffic generator.

// toDispatchDriver and toDispatchTask convert internal trace types to
// the public API types, registering the slice index as the public ID.
// JoinAt stays zero: trace fleets are known upfront.
func toDispatchDriver(i int, d model.Driver) dispatch.Driver {
	return dispatch.Driver{
		ID: i, Source: dispatch.Point(d.Source), Dest: dispatch.Point(d.Dest),
		Start: d.Start, End: d.End, SpeedKmh: d.SpeedKmh,
	}
}

func toDispatchTask(i int, t model.Task) dispatch.Task {
	return dispatch.Task{
		ID: i, Publish: t.Publish, Source: dispatch.Point(t.Source), Dest: dispatch.Point(t.Dest),
		StartBy: t.StartBy, EndBy: t.EndBy, Price: t.Price, WTP: t.WTP,
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	tracePath := fs.String("trace", "", "optional trace JSON supplying the initial fleet (tasks and events in it are ignored)")
	drivers := fs.Int("drivers", 1000, "synthetic fleet size when no -trace is given")
	seed := fs.Int64("seed", 1, "fleet generation and tie-breaking seed")
	algo := fs.String("algo", "maxmargin", "dispatch policy: maxmargin, nearest or random")
	shards := fs.Int("shards", 1, "zone shards for candidate generation (identical assignments, higher throughput)")
	realTime := fs.Bool("realtime", false, "free drivers at real trip finish times instead of deadlines (and close due batch windows on the wall clock)")
	batchWindow := fs.Float64("batch-window", 0, "batched dispatch: accumulate orders for this many seconds and clear each window with a maximum-weight matching (0 = instant dispatch)")
	batchAlgo := fs.String("batch-algo", "hungarian", "batched dispatch solver: hungarian or auction")
	matchWorkers := fs.Int("match-workers", 1, "concurrent solvers for a batch window's independent components (identical assignments, higher throughput; needs -batch-window)")
	maxPending := fs.Int("max-pending", 0, "admission bound: shed submissions with 429 once the open batch window (batched) or the submissions in flight (instant) reach this many (0 = unbounded)")
	useRoadnet := fs.Bool("roadnet", false, "route every distance over the synthetic street graph instead of crow-fly (network-accurate travel times; journals with -wal-dir)")
	roadnetCache := fs.Int("roadnet-cache", 0, "route-cache bound in memoized node pairs (0 = default; needs -roadnet)")
	pprofAddr := fs.String("pprof-addr", "", "optional listen address for a net/http/pprof debug server (e.g. localhost:6060) with mutex profiling enabled; empty disables it")
	walDir := fs.String("wal-dir", "", "durable mode: write-ahead-log directory; an existing log is recovered and the market resumes where it stopped")
	fsyncMode := fs.String("fsync", "always", "WAL fsync policy: always, interval or off (needs -wal-dir)")
	snapEvery := fs.Int("snapshot-every", 4096, "WAL records between full-state snapshots (needs -wal-dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *walDir == "" {
		// -fsync/-snapshot-every tune the write-ahead log; without one
		// they would be silently ignored — reject them instead.
		durSet := ""
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "fsync" || f.Name == "snapshot-every" {
				durSet = "-" + f.Name
			}
		})
		if durSet != "" {
			return fmt.Errorf("serve: %s needs -wal-dir (there is no log to tune)", durSet)
		}
	}
	if *maxPending < 0 {
		return fmt.Errorf("serve: -max-pending %d, want ≥ 0", *maxPending)
	}
	if !*useRoadnet {
		// -roadnet-cache tunes the street-graph route cache; without the
		// graph it would be silently ignored — reject it instead.
		cacheSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "roadnet-cache" {
				cacheSet = true
			}
		})
		if cacheSet {
			return fmt.Errorf("serve: -roadnet-cache needs -roadnet (there is no route cache to bound)")
		}
	}
	if *roadnetCache < 0 {
		return fmt.Errorf("serve: -roadnet-cache %d, want ≥ 0", *roadnetCache)
	}
	counts := map[string]int{"-shards": *shards, "-match-workers": *matchWorkers}
	if *tracePath == "" {
		counts["-drivers"] = *drivers
	}
	if err := checkPositive("serve", counts); err != nil {
		return err
	}
	if err := checkBatchWindow("serve", *batchWindow); err != nil {
		return err
	}
	if *batchWindow > 0 {
		// A batched market clears windows with -batch-algo; the instant
		// policy is never consulted. An explicit -algo alongside
		// -batch-window would be silently ignored — reject it instead.
		algoSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "algo" {
				algoSet = true
			}
		})
		if algoSet {
			return fmt.Errorf("serve: -algo selects the instant-dispatch policy and is not consulted with -batch-window; use -batch-algo (or drop one flag)")
		}
	} else if *matchWorkers > 1 {
		// Matcher workers solve batch-window components; without a
		// window the flag would be silently ignored — reject it instead.
		return fmt.Errorf("serve: -match-workers needs -batch-window (instant dispatch has no windows to solve)")
	}
	policy, err := dispatch.ParsePolicy(*algo)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	batchPolicy, err := dispatch.ParseBatchAlgorithm(*batchAlgo)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	market := dispatch.Market{}
	var fleet []model.Driver
	if *tracePath != "" {
		tr, err := loadTrace(*tracePath)
		if err != nil {
			return err
		}
		fleet = tr.Drivers
	} else {
		cfg := trace.NewConfig(*seed, 1, *drivers, trace.Hitchhiking)
		fleet = trace.NewGenerator(cfg).GenerateDrivers()
	}
	for i, d := range fleet {
		market.Drivers = append(market.Drivers, toDispatchDriver(i, d))
	}

	opts := []dispatch.Option{dispatch.WithDispatcher(policy), dispatch.WithSeed(*seed)}
	if *shards > 1 {
		opts = append(opts, dispatch.WithShards(*shards))
	}
	if *realTime {
		opts = append(opts, dispatch.WithRealTime())
	}
	if *batchWindow > 0 {
		opts = append(opts, dispatch.WithBatching(*batchWindow, batchPolicy))
	}
	if *matchWorkers > 1 {
		opts = append(opts, dispatch.WithMatchWorkers(*matchWorkers))
	}
	if *maxPending > 0 {
		opts = append(opts, dispatch.WithMaxPending(*maxPending))
	}
	if *useRoadnet {
		opts = append(opts, dispatch.WithRoadNetwork(dispatch.RoadNetwork{CacheEntries: *roadnetCache}))
	}
	var svc *dispatch.Service
	restored := false
	if *walDir != "" {
		durOpts := []dispatch.DurOption{dispatch.DurFsync(*fsyncMode), dispatch.DurSnapshotEvery(*snapEvery)}
		svc, err = dispatch.Restore(*walDir, durOpts...)
		switch {
		case err == nil:
			// The log is self-contained: market and dispatch config come
			// from it, so the shape flags above are not consulted.
			restored = true
			fmt.Fprintf(os.Stderr, "serve: recovered log in %s, resuming the market (shape flags ignored; config comes from the log)\n", *walDir)
		case errors.Is(err, wal.ErrNotFound):
			opts = append(opts, dispatch.WithDurability(*walDir, durOpts...))
			svc, err = dispatch.New(market, opts...)
			if err != nil {
				return fmt.Errorf("serve: %w", err)
			}
		default:
			return fmt.Errorf("serve: recovering %s: %w", *walDir, err)
		}
	} else {
		svc, err = dispatch.New(market, opts...)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}

	// The profiling server lives on its own listener so the debug
	// surface never shares a port with the market API; it serves the
	// default mux, where the net/http/pprof import registered its
	// handlers, and is shut down with the main listener below — a
	// leaked debug port must not outlive the market. Mutex profiling is
	// sampled only while the rail is up: /debug/pprof/mutex is how the
	// shard fan-out's merge rendezvous shows up under load. See
	// EXPERIMENTS.md for the loadgen-driven profiling recipe.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		runtime.SetMutexProfileFraction(5)
		defer runtime.SetMutexProfileFraction(0)
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux}
		go func() {
			fmt.Fprintf(os.Stderr, "serve: pprof on http://%s/debug/pprof/\n", pprofSrv.Addr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "serve: pprof server: %v\n", err)
			}
		}()
	}

	// done unblocks long-lived handlers (the SSE feed) ahead of
	// srv.Shutdown, which waits for handlers to return — without it a
	// single connected /v1/events client would hold graceful shutdown
	// to its full timeout.
	done := make(chan struct{})
	srv := &http.Server{Addr: *addr, Handler: fed.MarketHandler(svc, done)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if restored {
		if st, serr := svc.Snapshot(context.Background()); serr == nil {
			fmt.Fprintf(os.Stderr, "serve: %d drivers, %d tasks replayed to t=%.0fs, listening on %s\n",
				st.Drivers, st.Tasks, st.Now, *addr)
		}
	} else {
		mode := fmt.Sprintf("policy %v", policy)
		if *batchWindow > 0 {
			mode = fmt.Sprintf("batched %gs/%v", *batchWindow, batchPolicy)
		}
		if *useRoadnet {
			mode += ", street-graph metric"
		}
		fmt.Fprintf(os.Stderr, "serve: %d drivers, %s, shards %d, listening on %s\n",
			len(market.Drivers), mode, *shards, *addr)
	}

	select {
	case err := <-errc:
		if pprofSrv != nil {
			pprofSrv.Close()
		}
		svc.Close()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "serve: shutting down")
	close(done)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(shutCtx); err != nil {
			pprofSrv.Close()
		}
	}
	stats, err := svc.Close()
	if err != nil {
		return fmt.Errorf("serve: close: %w", err)
	}
	fmt.Fprintf(os.Stderr, "serve: final stats: tasks=%d served=%d rejected=%d cancelled=%d revenue=%.2f profit=%.2f\n",
		stats.Tasks, stats.Served, stats.Rejected, stats.Cancelled, stats.Revenue, stats.Profit)
	return nil
}
