package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof-addr
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"repro/dispatch"
	"repro/internal/model"
	"repro/internal/trace"
)

// This file is the live front end: `rideshare serve` exposes a
// dispatch.Service over HTTP/JSON so the market actually serves
// traffic instead of replaying traces. The API is deliberately small:
//
//	GET  /healthz                    liveness + market shape
//	POST /v1/tasks                   submit a task, get the decision
//	GET  /v1/tasks/{id}              current decision (pending on a batched market)
//	POST /v1/tasks/{id}/cancel       rider cancellation   {"at": t}
//	POST /v1/drivers                 announce a driver
//	POST /v1/drivers/{id}/retire     retire a driver      {"at": t}
//	GET  /v1/stats                   settled aggregate stats
//	GET  /v1/events                  assignment feed (server-sent events)
//
// With -batch-window W the market dispatches in batched mode: POST
// /v1/tasks answers {"pending":true,"decide_by":...}, the decision and
// each window's batch_closed stats stream out on /v1/events, and GET
// /v1/tasks/{id} polls the decision. -realtime additionally closes due
// windows on the wall clock, so a quiet market still answers.
//
// `rideshare loadgen` (loadgen.go) is the matching traffic generator.

// toDispatchDriver and toDispatchTask convert internal trace types to
// the public API types, registering the slice index as the public ID.
// JoinAt stays zero: trace fleets are known upfront.
func toDispatchDriver(i int, d model.Driver) dispatch.Driver {
	return dispatch.Driver{
		ID: i, Source: dispatch.Point(d.Source), Dest: dispatch.Point(d.Dest),
		Start: d.Start, End: d.End, SpeedKmh: d.SpeedKmh,
	}
}

func toDispatchTask(i int, t model.Task) dispatch.Task {
	return dispatch.Task{
		ID: i, Publish: t.Publish, Source: dispatch.Point(t.Source), Dest: dispatch.Point(t.Dest),
		StartBy: t.StartBy, EndBy: t.EndBy, Price: t.Price, WTP: t.WTP,
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	tracePath := fs.String("trace", "", "optional trace JSON supplying the initial fleet (tasks and events in it are ignored)")
	drivers := fs.Int("drivers", 1000, "synthetic fleet size when no -trace is given")
	seed := fs.Int64("seed", 1, "fleet generation and tie-breaking seed")
	algo := fs.String("algo", "maxmargin", "dispatch policy: maxmargin, nearest or random")
	shards := fs.Int("shards", 1, "zone shards for candidate generation (identical assignments, higher throughput)")
	realTime := fs.Bool("realtime", false, "free drivers at real trip finish times instead of deadlines (and close due batch windows on the wall clock)")
	batchWindow := fs.Float64("batch-window", 0, "batched dispatch: accumulate orders for this many seconds and clear each window with a maximum-weight matching (0 = instant dispatch)")
	batchAlgo := fs.String("batch-algo", "hungarian", "batched dispatch solver: hungarian or auction")
	matchWorkers := fs.Int("match-workers", 1, "concurrent solvers for a batch window's independent components (identical assignments, higher throughput; needs -batch-window)")
	maxPending := fs.Int("max-pending", 0, "admission bound: shed submissions with 429 once the open batch window (batched) or the submissions in flight (instant) reach this many (0 = unbounded)")
	pprofAddr := fs.String("pprof-addr", "", "optional listen address for a net/http/pprof debug server (e.g. localhost:6060) with mutex profiling enabled; empty disables it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxPending < 0 {
		return fmt.Errorf("serve: -max-pending %d, want ≥ 0", *maxPending)
	}
	counts := map[string]int{"-shards": *shards, "-match-workers": *matchWorkers}
	if *tracePath == "" {
		counts["-drivers"] = *drivers
	}
	if err := checkPositive("serve", counts); err != nil {
		return err
	}
	if err := checkBatchWindow("serve", *batchWindow); err != nil {
		return err
	}
	if *batchWindow > 0 {
		// A batched market clears windows with -batch-algo; the instant
		// policy is never consulted. An explicit -algo alongside
		// -batch-window would be silently ignored — reject it instead.
		algoSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "algo" {
				algoSet = true
			}
		})
		if algoSet {
			return fmt.Errorf("serve: -algo selects the instant-dispatch policy and is not consulted with -batch-window; use -batch-algo (or drop one flag)")
		}
	} else if *matchWorkers > 1 {
		// Matcher workers solve batch-window components; without a
		// window the flag would be silently ignored — reject it instead.
		return fmt.Errorf("serve: -match-workers needs -batch-window (instant dispatch has no windows to solve)")
	}
	policy, err := dispatch.ParsePolicy(*algo)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	batchPolicy, err := dispatch.ParseBatchAlgorithm(*batchAlgo)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	market := dispatch.Market{}
	var fleet []model.Driver
	if *tracePath != "" {
		tr, err := loadTrace(*tracePath)
		if err != nil {
			return err
		}
		fleet = tr.Drivers
	} else {
		cfg := trace.NewConfig(*seed, 1, *drivers, trace.Hitchhiking)
		fleet = trace.NewGenerator(cfg).GenerateDrivers()
	}
	for i, d := range fleet {
		market.Drivers = append(market.Drivers, toDispatchDriver(i, d))
	}

	opts := []dispatch.Option{dispatch.WithDispatcher(policy), dispatch.WithSeed(*seed)}
	if *shards > 1 {
		opts = append(opts, dispatch.WithShards(*shards))
	}
	if *realTime {
		opts = append(opts, dispatch.WithRealTime())
	}
	if *batchWindow > 0 {
		opts = append(opts, dispatch.WithBatching(*batchWindow, batchPolicy))
	}
	if *matchWorkers > 1 {
		opts = append(opts, dispatch.WithMatchWorkers(*matchWorkers))
	}
	if *maxPending > 0 {
		opts = append(opts, dispatch.WithMaxPending(*maxPending))
	}
	svc, err := dispatch.New(market, opts...)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	// The profiling server lives on its own listener so the debug
	// surface never shares a port with the market API; it serves the
	// default mux, where the net/http/pprof import registered its
	// handlers, and is shut down with the main listener below — a
	// leaked debug port must not outlive the market. Mutex profiling is
	// sampled only while the rail is up: /debug/pprof/mutex is how the
	// shard fan-out's merge rendezvous shows up under load. See
	// EXPERIMENTS.md for the loadgen-driven profiling recipe.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		runtime.SetMutexProfileFraction(5)
		defer runtime.SetMutexProfileFraction(0)
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux}
		go func() {
			fmt.Fprintf(os.Stderr, "serve: pprof on http://%s/debug/pprof/\n", pprofSrv.Addr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "serve: pprof server: %v\n", err)
			}
		}()
	}

	// done unblocks long-lived handlers (the SSE feed) ahead of
	// srv.Shutdown, which waits for handlers to return — without it a
	// single connected /v1/events client would hold graceful shutdown
	// to its full timeout.
	done := make(chan struct{})
	srv := &http.Server{Addr: *addr, Handler: newServeMux(svc, done)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	mode := fmt.Sprintf("policy %v", policy)
	if *batchWindow > 0 {
		mode = fmt.Sprintf("batched %gs/%v", *batchWindow, batchPolicy)
	}
	fmt.Fprintf(os.Stderr, "serve: %d drivers, %s, shards %d, listening on %s\n",
		len(market.Drivers), mode, *shards, *addr)

	select {
	case err := <-errc:
		if pprofSrv != nil {
			pprofSrv.Close()
		}
		svc.Close()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "serve: shutting down")
	close(done)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(shutCtx); err != nil {
			pprofSrv.Close()
		}
	}
	stats, err := svc.Close()
	if err != nil {
		return fmt.Errorf("serve: close: %w", err)
	}
	fmt.Fprintf(os.Stderr, "serve: final stats: tasks=%d served=%d rejected=%d cancelled=%d revenue=%.2f profit=%.2f\n",
		stats.Tasks, stats.Served, stats.Rejected, stats.Cancelled, stats.Revenue, stats.Profit)
	return nil
}

// newServeMux wires the HTTP API over a dispatch service. Split out so
// the end-to-end tests can drive it through httptest. done, when
// non-nil, tells streaming handlers the server is shutting down.
func newServeMux(svc *dispatch.Service, done <-chan struct{}) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		stats, err := svc.Snapshot(r.Context())
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":      "ok",
			"now":         stats.Now,
			"drivers":     stats.Drivers,
			"present":     stats.PresentDrivers,
			"tasks":       stats.Tasks,
			"pending":     stats.Pending,
			"max_pending": stats.MaxPending,
			"shed":        stats.Shed,
			"feed_drops":  stats.FeedDrops,
		})
	})

	mux.HandleFunc("POST /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		var t dispatch.Task
		if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
			httpError(w, fmt.Errorf("%w: %v", dispatch.ErrInvalidTask, err))
			return
		}
		a, err := svc.SubmitTask(r.Context(), t)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, a)
	})

	mux.HandleFunc("GET /v1/tasks/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("bad id %q: not an integer", r.PathValue("id")),
			})
			return
		}
		a, err := svc.Decision(r.Context(), id)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, a)
	})

	mux.HandleFunc("POST /v1/tasks/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id, at, ok := idAndAt(w, r)
		if !ok {
			return
		}
		out, err := svc.CancelTask(r.Context(), id, at)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /v1/drivers", func(w http.ResponseWriter, r *http.Request) {
		var d dispatch.Driver
		if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
			httpError(w, fmt.Errorf("%w: %v", dispatch.ErrInvalidDriver, err))
			return
		}
		if err := svc.AddDriver(r.Context(), d); err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"driver_id": d.ID, "joined": true})
	})

	mux.HandleFunc("POST /v1/drivers/{id}/retire", func(w http.ResponseWriter, r *http.Request) {
		id, at, ok := idAndAt(w, r)
		if !ok {
			return
		}
		if err := svc.RetireDriver(r.Context(), id, at); err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"driver_id": id, "retired": true})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		stats, err := svc.Snapshot(r.Context())
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, stats)
	})

	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		feed, cancel := svc.Subscribe(1024)
		defer cancel()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-done:
				return // server shutting down
			case ev, ok := <-feed:
				if !ok {
					return // service closed
				}
				data, err := json.Marshal(ev)
				if err != nil {
					return
				}
				fmt.Fprintf(w, "data: %s\n\n", data)
				fl.Flush()
			}
		}
	})

	return mux
}

// idAndAt parses the {id} path value and the {"at": t} request body
// shared by the cancel and retire endpoints, answering a plain 400
// itself on malformed requests (the typed-error vocabulary is reserved
// for conditions the dispatch service actually reported).
func idAndAt(w http.ResponseWriter, r *http.Request) (id int, at float64, ok bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("bad id %q: not an integer", r.PathValue("id")),
		})
		return 0, 0, false
	}
	var body struct {
		At float64 `json:"at"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("bad request body: %v (want {\"at\": seconds})", err),
		})
		return 0, 0, false
	}
	return id, body.At, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// httpError maps the dispatch package's typed errors onto HTTP status
// codes, keeping the sentinel's text in the JSON body so clients can
// still distinguish conditions sharing a code.
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, dispatch.ErrOverloaded):
		// Backpressure, not failure: the submission was shed at the
		// admission bound and the rider should retry after the market
		// drains (a batched market decides its window within seconds).
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, dispatch.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, dispatch.ErrUnknownTask), errors.Is(err, dispatch.ErrUnknownDriver):
		status = http.StatusNotFound
	case errors.Is(err, dispatch.ErrDuplicateTask), errors.Is(err, dispatch.ErrDuplicateDriver),
		errors.Is(err, dispatch.ErrOutOfOrder):
		status = http.StatusConflict
	case errors.Is(err, dispatch.ErrInvalidTask), errors.Is(err, dispatch.ErrInvalidDriver),
		errors.Is(err, dispatch.ErrInvalidCancel), errors.Is(err, dispatch.ErrInvalidOption):
		status = http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = 499 // client closed request
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
