// Command rideshare is the CLI front end of the ride-sharing market
// optimization framework. Subcommands:
//
//	gen          generate a synthetic Porto-like trace (CSV or JSON)
//	solve        run the offline greedy algorithm on a trace
//	simulate     run an online dispatcher over a trace
//	experiments  regenerate the paper's evaluation figures (3–9)
//	tightness    demonstrate the greedy algorithm's tight 1/(D+1) bound
//
// Run `rideshare <subcommand> -h` for per-command flags.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "tightness":
		err = cmdTightness(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rideshare: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rideshare: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rideshare — online ride-sharing market optimization framework

Usage:
  rideshare gen         -tasks N -drivers N [-model hitchhiking|home] [-seed S] [-out trace.json]
  rideshare solve       -trace trace.json [-bound] [-naive]
  rideshare simulate    -trace trace.json [-algo maxmargin|nearest|random] [-byvalue] [-realtime]
  rideshare experiments [-fig 3|4|5|6|7|8|9|all] [-scale bench|paper] [-seed S]
  rideshare tightness   [-d D] [-eps E]
`)
}
