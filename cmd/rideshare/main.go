// Command rideshare is the CLI front end of the ride-sharing market
// optimization framework. Subcommands:
//
//	gen          generate a synthetic Porto-like trace (CSV or JSON),
//	             optionally with churn/cancellation events
//	solve        run the offline greedy algorithm on a trace
//	simulate     run an online dispatcher over a trace (optionally
//	             sharded, with driver churn and rider cancellations)
//	experiments  regenerate the paper's evaluation figures (3–9) and
//	             the extension studies (welfare, surge, dispatch, churn)
//	bench        time full-day dispatch across candidate sources and
//	             shard counts (batch vs streaming replay with -streaming,
//	             engine vs streaming-batched with -batched, online
//	             policies vs the offline-optimum oracle with -oracle,
//	             crow-fly vs street-graph distances with -roadnet),
//	             writing a machine-readable JSON baseline
//	serve        run the live dispatch market as an HTTP/JSON service
//	             over the public dispatch package — instant dispatch, or
//	             windowed batch matching with -batch-window; durable with
//	             -wal-dir (write-ahead log, snapshots, crash recovery);
//	             street-graph travel times with -roadnet
//	router       federate several markets behind one HTTP router:
//	             /v1/markets/{m}/... per market, aggregated healthz and
//	             stats, per-market WALs, rolling restart via recovery
//	loadgen      drive a running serve instance (or one router market
//	             with -market) with a generated order stream (concurrent
//	             submitters, cancellations)
//	tightness    demonstrate the greedy algorithm's tight 1/(D+1) bound
//
// Run `rideshare <subcommand> -h` for per-command flags.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "router":
		err = cmdRouter(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "tightness":
		err = cmdTightness(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rideshare: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rideshare: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rideshare — online ride-sharing market optimization framework

Usage:
  rideshare gen         -tasks N -drivers N [-model hitchhiking|home] [-seed S] [-churn R] [-cancel R] [-out trace.json]
  rideshare solve       -trace trace.json [-bound] [-naive]
  rideshare simulate    -trace trace.json [-algo maxmargin|nearest|random|batched|replan] [-batchwindow W -batchalgo hungarian|auction] [-shards N] [-churn R] [-cancel R] [-byvalue] [-realtime]
  rideshare experiments [-fig 3|4|5|6|7|8|9|welfare|surge|dispatch|churn|regret|all] [-scale bench|paper] [-seed S] [-shards N]
  rideshare bench       [-drivers 10000,50000] [-shards 1,2,4,8] [-out BENCH_2.json] [-streaming | -batched [-batch-window W] [-batch-algo A] | -oracle [-churn R] [-cancel R] [-topk K] | -durable [-snap-intervals 16,256,4096] | -roadnet]
  rideshare serve       [-addr :8080] [-drivers N | -trace trace.json] [-algo maxmargin|nearest|random] [-batch-window W -batch-algo hungarian|auction] [-shards N] [-roadnet] [-realtime] [-seed S] [-wal-dir DIR [-fsync always|interval|off] [-snapshot-every N]]
  rideshare router      [-addr :8080] [-markets a,b,c] [-drivers N] [-algo P | -batch-window W -batch-algo A] [-max-pending N] [-max-inflight N] [-wal-dir DIR [-fsync P] [-snapshot-every N]]
  rideshare loadgen     [-addr http://127.0.0.1:8080] [-market NAME] [-tasks N] [-id-base N] [-workers N] [-cancel R] [-seed S]
  rideshare tightness   [-d D] [-eps E]
`)
}
