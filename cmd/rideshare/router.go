package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/dispatch"
	"repro/internal/fed"
	"repro/internal/trace"
	"repro/internal/wal"
)

// cmdRouter is the multi-market front end: one dispatch.Service per
// named market, federated behind fed.Router. Each market runs the same
// configuration (fleet size, policy, admission bound) over its own
// independently-seeded fleet and, with -wal-dir, its own write-ahead
// log in <wal-dir>/<market> — which makes POST
// /v1/markets/{m}/restart a genuine rolling restart: that market is
// halted crash-consistently and restored from its log while the others
// keep serving. Markets whose logs already exist are recovered on
// startup, so a router restart resumes every market's day.
func cmdRouter(args []string) error {
	fs := flag.NewFlagSet("router", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	marketsFlag := fs.String("markets", "porto,lisbon,braga", "comma-separated market names, one dispatch service each")
	drivers := fs.Int("drivers", 1000, "synthetic fleet size per market")
	seed := fs.Int64("seed", 1, "base seed; market i uses seed+i for its fleet")
	algo := fs.String("algo", "maxmargin", "dispatch policy: maxmargin, nearest or random")
	shards := fs.Int("shards", 1, "zone shards for candidate generation, per market")
	batchWindow := fs.Float64("batch-window", 0, "batched dispatch window in seconds (0 = instant dispatch)")
	batchAlgo := fs.String("batch-algo", "hungarian", "batched dispatch solver: hungarian or auction")
	maxPending := fs.Int("max-pending", 0, "per-market admission bound: shed submissions with 429 at this many pending (0 = unbounded)")
	maxInflight := fs.Int("max-inflight", 0, "per-market router-level bound on concurrent in-flight requests; excess answers 429 (0 = unbounded)")
	walDir := fs.String("wal-dir", "", "durable mode: root directory, one write-ahead log per market in <dir>/<market>; existing logs are recovered")
	fsyncMode := fs.String("fsync", "always", "WAL fsync policy: always, interval or off (needs -wal-dir)")
	snapEvery := fs.Int("snapshot-every", 4096, "WAL records between full-state snapshots (needs -wal-dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := splitMarkets(*marketsFlag)
	if len(names) == 0 {
		return fmt.Errorf("router: -markets %q names no markets", *marketsFlag)
	}
	if err := checkPositive("router", map[string]int{"-drivers": *drivers, "-shards": *shards}); err != nil {
		return err
	}
	if err := checkBatchWindow("router", *batchWindow); err != nil {
		return err
	}
	if *maxPending < 0 || *maxInflight < 0 {
		return fmt.Errorf("router: -max-pending %d / -max-inflight %d, want ≥ 0", *maxPending, *maxInflight)
	}
	if *walDir == "" {
		durSet := ""
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "fsync" || f.Name == "snapshot-every" {
				durSet = "-" + f.Name
			}
		})
		if durSet != "" {
			return fmt.Errorf("router: %s needs -wal-dir (there is no log to tune)", durSet)
		}
	}
	policy, err := dispatch.ParsePolicy(*algo)
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	batchPolicy, err := dispatch.ParseBatchAlgorithm(*batchAlgo)
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}

	done := make(chan struct{})
	rt := fed.NewRouter(done)
	for i, name := range names {
		mseed := *seed + int64(i)
		market := dispatch.Market{}
		cfg := trace.NewConfig(mseed, 1, *drivers, trace.Hitchhiking)
		for j, d := range trace.NewGenerator(cfg).GenerateDrivers() {
			market.Drivers = append(market.Drivers, toDispatchDriver(j, d))
		}
		opts := []dispatch.Option{dispatch.WithDispatcher(policy), dispatch.WithSeed(mseed)}
		if *shards > 1 {
			opts = append(opts, dispatch.WithShards(*shards))
		}
		if *batchWindow > 0 {
			opts = append(opts, dispatch.WithBatching(*batchWindow, batchPolicy))
		}
		if *maxPending > 0 {
			opts = append(opts, dispatch.WithMaxPending(*maxPending))
		}

		m := fed.Market{Name: name, MaxInflight: *maxInflight}
		if *walDir != "" {
			dir := filepath.Join(*walDir, name)
			durOpts := []dispatch.DurOption{dispatch.DurFsync(*fsyncMode), dispatch.DurSnapshotEvery(*snapEvery)}
			svc, err := dispatch.Restore(dir, durOpts...)
			switch {
			case err == nil:
				fmt.Fprintf(os.Stderr, "router: market %s recovered from %s\n", name, dir)
			case errors.Is(err, wal.ErrNotFound):
				svc, err = dispatch.New(market, append(opts, dispatch.WithDurability(dir, durOpts...))...)
				if err != nil {
					return fmt.Errorf("router: market %s: %w", name, err)
				}
			default:
				return fmt.Errorf("router: recovering market %s: %w", name, err)
			}
			m.Svc, m.WALDir, m.DurOpts = svc, dir, durOpts
		} else {
			svc, err := dispatch.New(market, opts...)
			if err != nil {
				return fmt.Errorf("router: market %s: %w", name, err)
			}
			m.Svc = svc
		}
		if err := rt.Register(m); err != nil {
			return fmt.Errorf("router: %w", err)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "router: %d markets (%s), %d drivers each, listening on %s\n",
		len(names), strings.Join(names, ", "), *drivers, *addr)

	select {
	case err := <-errc:
		rt.Close()
		return fmt.Errorf("router: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "router: shutting down")
	close(done)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	stats, err := rt.Close()
	if err != nil {
		return fmt.Errorf("router: close: %w", err)
	}
	for _, name := range sortedKeys(stats) {
		st := stats[name]
		fmt.Fprintf(os.Stderr, "router: %s settled: tasks=%d served=%d rejected=%d cancelled=%d revenue=%.2f\n",
			name, st.Tasks, st.Served, st.Rejected, st.Cancelled, st.Revenue)
	}
	return nil
}

// splitMarkets parses the -markets list, trimming blanks.
func splitMarkets(s string) []string {
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

func sortedKeys(m map[string]dispatch.Stats) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
