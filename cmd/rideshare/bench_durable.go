package main

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/dispatch"
	"repro/internal/stats"
	"repro/internal/trace"
)

// benchDurable prices the durability rail: the same batched day is
// replayed through an in-memory dispatch service and through durable
// services under each fsync policy, so BENCH_8.json records what a
// write-ahead log costs in tasks/sec and per-submission latency. A
// second sweep writes the day once per snapshot cadence and times
// dispatch.Restore over the resulting log, pricing recovery against
// the snapshot interval. Every leg must settle the same books as the
// in-memory baseline — the suite doubles as a crash-replay
// differential at bench scale.
//
// The acceptance bar for the PR that introduced the rail: fsync
// "interval" costs at most 25% tasks/sec on the largest fleet's
// batched day.
func benchDurable(out string, tasks int, driverCounts []int, reps int, seed int64,
	window float64, algo dispatch.BatchAlgorithm, snapIntervals []int) error {
	report := benchReport{
		Schema:     "rideshare-bench/v1",
		Command:    fmt.Sprintf("rideshare bench -durable -batch-window %g -batch-algo %v", window, algo),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
	}
	ctx := context.Background()
	policies := []string{"off", "interval", "always"}
	var lastIntervalOverhead float64

	for _, drivers := range driverCounts {
		cfg := trace.NewConfig(seed, tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		market := dispatch.Market{}
		for i, d := range tr.Drivers {
			market.Drivers = append(market.Drivers, toDispatchDriver(i, d))
		}
		feed := make([]dispatch.Task, len(tr.Tasks))
		for i, t := range tr.Tasks {
			feed[i] = toDispatchTask(i, t)
		}
		sort.SliceStable(feed, func(a, b int) bool { return feed[a].Publish < feed[b].Publish })

		base := []dispatch.Option{
			dispatch.WithBatching(window, algo),
			dispatch.WithSeed(1), dispatch.WithStrictTimes(),
		}

		// One timed replay of the day; extraOpts selects the journal.
		run := func(extraOpts []dispatch.Option, hist *stats.LatencyHist) (dispatch.Stats, float64, error) {
			opts := append(append([]dispatch.Option(nil), base...), extraOpts...)
			start := time.Now()
			svc, err := dispatch.New(market, opts...)
			if err != nil {
				return dispatch.Stats{}, 0, fmt.Errorf("bench: durable service: %w", err)
			}
			for i := range feed {
				t0 := time.Now()
				a, err := svc.SubmitTask(ctx, feed[i])
				hist.Record(time.Since(t0).Seconds())
				if err != nil {
					return dispatch.Stats{}, 0, fmt.Errorf("bench: durable submit %d: %w", feed[i].ID, err)
				}
				if !a.Pending {
					return dispatch.Stats{}, 0, fmt.Errorf("bench: durable submit %d answered instantly", feed[i].ID)
				}
			}
			st, err := svc.Close()
			if err != nil {
				return dispatch.Stats{}, 0, err
			}
			return st, time.Since(start).Seconds(), nil
		}

		median := func(extra func() ([]dispatch.Option, func())) (dispatch.Stats, float64, *stats.LatencySummary, error) {
			hist := &stats.LatencyHist{}
			times := make([]float64, 0, reps)
			var st dispatch.Stats
			for r := 0; r < reps; r++ {
				opts, cleanup := extra()
				s, sec, err := run(opts, hist)
				if cleanup != nil {
					cleanup()
				}
				if err != nil {
					return dispatch.Stats{}, 0, nil, err
				}
				st = s
				times = append(times, sec)
			}
			sort.Float64s(times)
			sum := hist.Summary()
			return st, times[len(times)/2], &sum, nil
		}

		// In-memory baseline.
		memStats, memSec, memLat, err := median(func() ([]dispatch.Option, func()) { return nil, nil })
		if err != nil {
			return err
		}
		report.Results = append(report.Results, benchResult{
			Name: fmt.Sprintf("durable/drivers=%d/memory", drivers), Drivers: drivers, Tasks: tasks,
			Mode: "streaming", Seconds: memSec, TasksPerSec: float64(tasks) / memSec,
			Served: memStats.Served, Revenue: memStats.Revenue, Latency: memLat,
		})
		fmt.Fprintf(os.Stderr, "%-44s %8.3fs  %9.0f tasks/s\n",
			fmt.Sprintf("durable/drivers=%d/memory", drivers), memSec, float64(tasks)/memSec)

		// The fsync-policy family: identical day, journaled.
		for _, policy := range policies {
			var walBytes int64
			durStats, durSec, durLat, err := median(func() ([]dispatch.Option, func()) {
				dir, err := os.MkdirTemp("", "rideshare-bench-wal-")
				if err != nil {
					return nil, nil
				}
				return []dispatch.Option{dispatch.WithDurability(dir, dispatch.DurFsync(policy))},
					func() { walBytes = dirBytes(dir); os.RemoveAll(dir) }
			})
			if err != nil {
				return err
			}
			if durStats.Served != memStats.Served || durStats.Revenue != memStats.Revenue {
				return fmt.Errorf("bench: fsync=%s settled served=%d revenue=%.6f, memory settled served=%d revenue=%.6f — journaled replay diverged, this is a bug",
					policy, durStats.Served, durStats.Revenue, memStats.Served, memStats.Revenue)
			}
			overhead := durSec/memSec - 1
			if policy == "interval" {
				lastIntervalOverhead = overhead
			}
			name := fmt.Sprintf("durable/drivers=%d/fsync=%s", drivers, policy)
			report.Results = append(report.Results, benchResult{
				Name: name, Drivers: drivers, Tasks: tasks,
				Mode: "durable", Fsync: policy,
				Seconds: durSec, TasksPerSec: float64(tasks) / durSec,
				Served: durStats.Served, Revenue: durStats.Revenue,
				Overhead: overhead, Latency: durLat, WALBytes: walBytes,
			})
			fmt.Fprintf(os.Stderr, "%-44s %8.3fs  %9.0f tasks/s  overhead %+.1f%%  wal %dB\n",
				name, durSec, float64(tasks)/durSec, 100*overhead, walBytes)
		}

		// Recovery pricing: write the day once per snapshot cadence
		// (fsync off — recovery cost does not depend on how the bytes
		// got to disk), halt without settling, and time Restore.
		for _, every := range snapIntervals {
			dir, err := os.MkdirTemp("", "rideshare-bench-replay-")
			if err != nil {
				return err
			}
			knobs := []dispatch.DurOption{dispatch.DurFsync("off"), dispatch.DurSnapshotEvery(every)}
			svc, err := dispatch.New(market, append(append([]dispatch.Option(nil), base...),
				dispatch.WithDurability(dir, knobs...))...)
			if err != nil {
				os.RemoveAll(dir)
				return err
			}
			for i := range feed {
				if _, err := svc.SubmitTask(ctx, feed[i]); err != nil {
					os.RemoveAll(dir)
					return fmt.Errorf("bench: replay day submit %d: %w", feed[i].ID, err)
				}
			}
			if _, err := svc.Halt(); err != nil {
				os.RemoveAll(dir)
				return err
			}
			times := make([]float64, 0, reps)
			var restoredStats dispatch.Stats
			for r := 0; r < reps; r++ {
				start := time.Now()
				restored, err := dispatch.Restore(dir, knobs...)
				if err != nil {
					os.RemoveAll(dir)
					return fmt.Errorf("bench: Restore(snap-every=%d): %w", every, err)
				}
				times = append(times, time.Since(start).Seconds())
				restoredStats, err = restored.Halt()
				if err != nil {
					os.RemoveAll(dir)
					return err
				}
			}
			walBytes := dirBytes(dir)
			os.RemoveAll(dir)
			if restoredStats.Tasks != tasks {
				return fmt.Errorf("bench: restore replayed %d of %d tasks — recovery diverged, this is a bug",
					restoredStats.Tasks, tasks)
			}
			sort.Float64s(times)
			sec := times[len(times)/2]
			name := fmt.Sprintf("durable/drivers=%d/replay/snap-every=%d", drivers, every)
			report.Results = append(report.Results, benchResult{
				Name: name, Drivers: drivers, Tasks: tasks,
				Mode: "replay", SnapshotEvery: every,
				Seconds: sec, WALBytes: walBytes,
			})
			fmt.Fprintf(os.Stderr, "%-44s %8.3fs to restore  wal %dB\n", name, sec, walBytes)
		}
	}

	if lastIntervalOverhead > 0.25 {
		fmt.Fprintf(os.Stderr, "bench: WARNING fsync=interval overhead %.1f%% exceeds the 25%% acceptance bar on the largest fleet\n",
			100*lastIntervalOverhead)
	} else {
		fmt.Fprintf(os.Stderr, "bench: fsync=interval overhead %.1f%% on the largest fleet (bar: 25%%)\n",
			100*lastIntervalOverhead)
	}
	return writeBenchReport(out, report)
}

// dirBytes sums the file sizes under dir (the on-disk cost of a log).
func dirBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}
