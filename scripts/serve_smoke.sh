#!/usr/bin/env sh
# Smoke-tests the live front end the way CI (and a curious human) would:
# build the CLI, start `rideshare serve` on a local port, wait for the
# health endpoint to answer, push a small load-generated order stream
# through it, and shut the server down with SIGINT to exercise the
# graceful-shutdown path.
#
# Usage: scripts/serve_smoke.sh [port]
set -eu
cd "$(dirname "$0")/.."
PORT="${1:-18080}"

go build -o /tmp/rideshare-smoke ./cmd/rideshare

/tmp/rideshare-smoke serve -addr "127.0.0.1:$PORT" -drivers 500 -shards 2 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# Wait for the server to come up (5s budget).
i=0
until curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "serve_smoke: server did not come up on port $PORT" >&2
    exit 1
  fi
  sleep 0.1
done
echo "serve_smoke: healthz OK"
curl -sf "http://127.0.0.1:$PORT/healthz"
echo

/tmp/rideshare-smoke loadgen -addr "http://127.0.0.1:$PORT" -tasks 200 -workers 4 -cancel 0.1

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
echo "serve_smoke: clean shutdown"

# Second leg: the same drill against a batched market (-batch-window).
# -realtime arms the wall-clock window timer, so the final window is
# decided even with no follow-up traffic; loadgen's pending accounting
# covers the rest. -match-workers exercises the component worker pool
# and -pprof-addr the profiling listener (probed below).
PPROF_PORT=$((PORT + 1))
/tmp/rideshare-smoke serve -addr "127.0.0.1:$PORT" -drivers 500 -shards 2 \
  -batch-window 30 -batch-algo hungarian -realtime \
  -match-workers 2 -pprof-addr "127.0.0.1:$PPROF_PORT" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

i=0
until curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "serve_smoke: batched server did not come up on port $PORT" >&2
    exit 1
  fi
  sleep 0.1
done
echo "serve_smoke: batched healthz OK"

# The profiling surface must answer on its own listener, never on the
# market port.
curl -sf "http://127.0.0.1:$PPROF_PORT/debug/pprof/" >/dev/null
if curl -sf "http://127.0.0.1:$PORT/debug/pprof/" >/dev/null 2>&1; then
  echo "serve_smoke: pprof leaked onto the market port" >&2
  exit 1
fi
echo "serve_smoke: pprof OK"

/tmp/rideshare-smoke loadgen -addr "http://127.0.0.1:$PORT" -tasks 200 -workers 4 -cancel 0.1

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
echo "serve_smoke: batched clean shutdown"

# Third leg: the street-graph metric (-roadnet). Same drill; every
# travel time the market computes now routes over the synthetic road
# network, so this exercises the router (nearest-node search, ALT
# shortest paths, the shared route cache) under live HTTP traffic.
/tmp/rideshare-smoke serve -addr "127.0.0.1:$PORT" -drivers 500 -shards 2 -roadnet &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

i=0
until curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "serve_smoke: roadnet server did not come up on port $PORT" >&2
    exit 1
  fi
  sleep 0.1
done
echo "serve_smoke: roadnet healthz OK"

/tmp/rideshare-smoke loadgen -addr "http://127.0.0.1:$PORT" -tasks 200 -workers 4 -cancel 0.1

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
echo "serve_smoke: roadnet clean shutdown"
