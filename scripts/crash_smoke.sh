#!/usr/bin/env sh
# Crash-recovery smoke test, the way CI (and an unlucky operator) would
# hit it: run a durable `rideshare serve -wal-dir`, push real load
# through HTTP, kill the process with SIGKILL mid-day — no flush, no
# goodbye — restart on the same log, and require the recovered books to
# match the books observed just before the kill. A second leg does the
# same to one market of a federated router via its rolling-restart
# endpoint while a neighbor market keeps serving.
#
# Usage: scripts/crash_smoke.sh [port]
set -eu
cd "$(dirname "$0")/.."
PORT="${1:-18090}"
BASE="http://127.0.0.1:$PORT"

go build -o /tmp/rideshare-crash ./cmd/rideshare

WALROOT=$(mktemp -d /tmp/rideshare-crash-wal.XXXXXX)
trap 'rm -rf "$WALROOT"; kill "$SERVE_PID" 2>/dev/null || true' EXIT

wait_healthz() {
  i=0
  until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
      echo "crash_smoke: server did not come up on port $PORT" >&2
      exit 1
    fi
    sleep 0.1
  done
}

# books extracts the replay-deterministic fields of a stats body —
# process-local operational counters (feed drops) are excluded.
books() {
  sed -n 's/.*"now":\([0-9.e+-]*\).*"tasks":\([0-9]*\),"served":\([0-9]*\),"rejected":\([0-9]*\),"cancelled":\([0-9]*\).*"revenue":\([0-9.e+-]*\).*/now=\1 tasks=\2 served=\3 rejected=\4 cancelled=\5 revenue=\6/p'
}

## Leg 1: single durable market, SIGKILL, restart on the same log.
/tmp/rideshare-crash serve -addr "127.0.0.1:$PORT" -drivers 300 \
  -wal-dir "$WALROOT/solo" -fsync interval &
SERVE_PID=$!
wait_healthz
echo "crash_smoke: durable serve up"

/tmp/rideshare-crash loadgen -addr "$BASE" -tasks 150 -workers 4 -cancel 0.1 >/dev/null

BEFORE=$(curl -sf "$BASE/v1/stats" | books)
[ -n "$BEFORE" ] || { echo "crash_smoke: could not parse pre-crash stats" >&2; exit 1; }

kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
echo "crash_smoke: killed -9 mid-day ($BEFORE)"

/tmp/rideshare-crash serve -addr "127.0.0.1:$PORT" -wal-dir "$WALROOT/solo" &
SERVE_PID=$!
wait_healthz
AFTER=$(curl -sf "$BASE/v1/stats" | books)
if [ "$BEFORE" != "$AFTER" ]; then
  echo "crash_smoke: recovery diverged" >&2
  echo "  before: $BEFORE" >&2
  echo "  after:  $AFTER" >&2
  exit 1
fi
echo "crash_smoke: replay identical after SIGKILL"

# The survivor still takes traffic (IDs offset past the replayed day).
/tmp/rideshare-crash loadgen -addr "$BASE" -tasks 50 -id-base 150 -workers 2 >/dev/null
kill -INT "$SERVE_PID"
wait "$SERVE_PID"
echo "crash_smoke: recovered market served on and shut down cleanly"

## Leg 2: federated router — rolling restart of one market through WAL
## recovery while its neighbor keeps serving.
/tmp/rideshare-crash router -addr "127.0.0.1:$PORT" -markets porto,lisbon \
  -drivers 300 -wal-dir "$WALROOT/fed" -fsync interval &
SERVE_PID=$!
wait_healthz
echo "crash_smoke: router up"

/tmp/rideshare-crash loadgen -addr "$BASE" -market porto -tasks 100 -workers 4 >/dev/null

BEFORE=$(curl -sf "$BASE/v1/markets/porto/stats" | books)
curl -sf -X POST "$BASE/v1/markets/porto/restart" >/dev/null
AFTER=$(curl -sf "$BASE/v1/markets/porto/stats" | books)
if [ "$BEFORE" != "$AFTER" ]; then
  echo "crash_smoke: rolling restart diverged" >&2
  echo "  before: $BEFORE" >&2
  echo "  after:  $AFTER" >&2
  exit 1
fi
echo "crash_smoke: rolling restart preserved porto's books"

# The restarted market and its neighbor both still take traffic.
/tmp/rideshare-crash loadgen -addr "$BASE" -market porto -tasks 30 -id-base 100 -workers 2 >/dev/null
/tmp/rideshare-crash loadgen -addr "$BASE" -market lisbon -tasks 30 -workers 2 >/dev/null
curl -sf "$BASE/healthz" | grep -q '"status":"ok"' || {
  echo "crash_smoke: federation unhealthy after restart" >&2
  exit 1
}

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
rm -rf "$WALROOT"
echo "crash_smoke: all legs passed"
