#!/usr/bin/env sh
# Records the repository's dispatch-throughput baselines:
#
#   BENCH_2.json — one full online day of maxMargin dispatch at
#     city-fleet sizes under every candidate source (sequential scan,
#     grid index, zone shards).
#   BENCH_3.json — the streaming-overhead trajectory: the same day
#     drained in batch vs replayed event-by-event through the public
#     dispatch.Service, pricing the open-loop API against the engine.
#   BENCH_4.json — the streaming-batched trajectory: the same day
#     window-matched by Engine.RunBatched vs through a WithBatching
#     dispatch.Service, pricing the open-loop batched API.
#   BENCH_5.json — the window-kernel trajectory: the same batched day
#     cleared by the dense whole-matrix oracle vs the sparse
#     component-decomposed solve, with per-task allocation accounting
#     (allocs_per_task / bytes_per_task). This suite runs a denser day
#     than the others (windows only earn their keep holding many
#     orders): ~40 orders per 300 s window at 12k orders/day.
#   BENCH_6.json — the multi-core trajectory: the sparse windowed
#     kernel swept across GOMAXPROCS legs (1, 2, 4, and all CPUs) on
#     the same dense day, with per-decision latency percentiles
#     (p50/p95/p99/p999) alongside tasks/sec. Every leg must produce
#     bit-identical books — the sweep doubles as a concurrency
#     differential test.
#   BENCH_7.json — the oracle-rail trajectory: three online policies
#     (instant maxMargin, batched Hungarian, batched auction) on one
#     churned 12k-order day vs the hindsight optimum from the
#     warm-started sparse branch and bound, reporting revenue/served
#     regret and competitive ratio per policy per fleet size, with
#     solver wall time and allocations per component across a {1,2,4}
#     worker sweep that must stay bit-identical.
#   BENCH_8.json — the durability trajectory: the same batched day
#     replayed in-memory vs journaled through the write-ahead log under
#     each fsync policy (off / interval / always), with per-submission
#     latency percentiles and the log's on-disk size, plus Restore
#     timings per snapshot cadence. Acceptance bar: fsync=interval
#     costs ≤ 25% tasks/sec on the largest fleet. Every journaled leg
#     must settle the in-memory books — the suite doubles as a
#     crash-replay differential at bench scale.
#   BENCH_9.json — the road-network trajectory: the same batched day
#     under crow-fly vs street-graph shortest paths (the default CH
#     router with its singleflight route cache) vs network distances with a
#     live surge pricer on an airport-spiked trace. Each leg sweeps
#     shard × match-worker configurations that must stay bit-identical,
#     and the harness enforces measured circuity in [1.1, 1.6] and a
#     ≥ 90% route-cache hit rate on the largest fleet.
#   BENCH_10.json — the routing-kernel trajectory: contraction
#     hierarchies vs the landmark-A* kernel on the default Porto grid.
#     Per kernel: preprocessing seconds, cold point-to-point queries/sec
#     (with speedup_vs_alt), the one-to-many batch API vs a looped Dist
#     on 15-target candidate sets, and the same batched day on a cold vs
#     warm route cache. The harness enforces CH ≥ 5× ALT on cold
#     point-to-point, a > 1× one-to-many speedup, and bit-identical
#     books across kernels and cache temperatures.
#
# All are machine-readable JSON so perf changes diff against a fixed
# trajectory.
#
# Usage: scripts/bench.sh [extra `rideshare bench` flags]
# Output: BENCH_2.json through BENCH_10.json at the repository root.
#
# Extra flags apply to the dispatch run only — forwarding them to the
# streaming runs too would let a user -out/-shards override clobber the
# streaming baselines' fixed configurations (Go's flag package keeps
# the last occurrence).
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/rideshare bench -out BENCH_2.json "$@"
go run ./cmd/rideshare bench -streaming -shards 4 -out BENCH_3.json
go run ./cmd/rideshare bench -batched -shards 4 -out BENCH_4.json
go run ./cmd/rideshare bench -windows -tasks 12000 -batch-window 300 -shards 4 -out BENCH_5.json
go run ./cmd/rideshare bench -windows -maxprocs 1,2,4,0 -tasks 12000 -batch-window 300 -shards 4 -out BENCH_6.json
go run ./cmd/rideshare bench -oracle -tasks 12000 -batch-window 60 -match-workers 4 -out BENCH_7.json
go run ./cmd/rideshare bench -durable -out BENCH_8.json
go run ./cmd/rideshare bench -roadnet -out BENCH_9.json
exec go run ./cmd/rideshare bench -roadnet -router alt,ch -out BENCH_10.json
