#!/usr/bin/env sh
# Records the repository's dispatch-throughput baseline: one full online
# day of maxMargin dispatch at city-fleet sizes under every candidate
# source (sequential scan, grid index, zone shards), written as
# machine-readable JSON so perf changes diff against a fixed trajectory.
#
# Usage: scripts/bench.sh [extra `rideshare bench` flags]
# Output: BENCH_2.json at the repository root (override with -out).
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/rideshare bench -out BENCH_2.json "$@"
