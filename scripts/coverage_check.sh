#!/usr/bin/env sh
# Coverage ratchet for the packages the differential-testing discipline
# lives in: fails if `go test -cover` for any of them drops below the
# floor recorded when the batched streaming PR landed (the pre-PR
# baseline). Raise a floor when coverage durably improves; never lower
# one to make a change pass.
#
# Usage: scripts/coverage_check.sh
set -eu
cd "$(dirname "$0")/.."

check() {
  pkg="$1"
  floor="$2"
  out=$(go test -count=1 -cover "$pkg")
  echo "$out"
  pct=$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
  if [ -z "$pct" ]; then
    echo "coverage_check: no coverage figure for $pkg" >&2
    exit 1
  fi
  # All-integer comparison (tenths of a percent): POSIX sh has no floats.
  pct10=$(echo "$pct" | awk '{printf "%d", $1 * 10}')
  floor10=$(echo "$floor" | awk '{printf "%d", $1 * 10}')
  if [ "$pct10" -lt "$floor10" ]; then
    echo "coverage_check: $pkg coverage $pct% fell below the $floor% floor" >&2
    exit 1
  fi
}

# Floors raised with the sparse window-matching PR (sim 91.0 -> 92.5,
# dispatch 80.7 -> 84.0, matching 97.7 -> 98.0 after its tests landed);
# dispatch re-ratcheted to 93.0 when the durability PR's journal-failure
# and replay-rejection tests pushed it to 94.2.
check ./internal/sim 92.5
check ./dispatch 93.0
check ./internal/matching 98.0
# The oracle rail's solver stack, floored when the offline-optimum PR
# landed (lp 93.9, bound 94.1, offline 93.8 at the time).
check ./internal/lp 93.0
check ./internal/bound 93.0
check ./internal/offline 93.0
# The durability rail and the federation router, floored when the WAL +
# multi-market PR landed (wal 90.1, fed 97.2 at the time; the ≥90 bar
# is the PR's acceptance criterion).
check ./internal/wal 90.0
check ./internal/fed 90.0
# The road-network distance rail and live surge pricing, floored when
# the roadnet-metric PR landed (roadnet 93.9, pricing 100.0 at the
# time; the ≥90 bar is the PR's acceptance criterion).
check ./internal/roadnet 90.0
check ./internal/pricing 90.0
echo "coverage_check: all floors held"
