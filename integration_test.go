// Cross-module integration tests: each test drives the full pipeline
// (trace generation → problem → task map → solvers → bounds) and checks
// invariants that only hold if the modules agree with each other.
package repro_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/bound"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

func buildProblem(t *testing.T, seed int64, tasks, drivers int, dm trace.DriverModel) *core.Problem {
	t.Helper()
	cfg := trace.NewConfig(seed, tasks, drivers, dm)
	tr := trace.NewGenerator(cfg).Generate(nil)
	p, err := core.NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestOnlineSolutionsAreOfflineFeasible is the central consistency
// invariant between the simulator and the task-map model: under
// deadline-based availability (the paper's Algorithms 3–4), every path
// an online dispatcher builds must be a feasible path of the offline
// task map, with the simulator's per-driver profit equal to the
// task map's ground-truth path valuation.
func TestOnlineSolutionsAreOfflineFeasible(t *testing.T) {
	for _, dm := range []trace.DriverModel{trace.Hitchhiking, trace.HomeWorkHome} {
		p := buildProblem(t, 3, 150, 25, dm)
		g := p.Graph()
		eng, err := sim.New(p.Market, p.Drivers, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []sim.Dispatcher{online.Nearest{}, online.MaxMargin{}, online.Random{}} {
			res := eng.Run(p.Tasks, d)
			for n, tasks := range res.DriverPaths {
				if len(tasks) == 0 {
					continue
				}
				profit, err := g.PathProfit(n, tasks)
				if err != nil {
					t.Fatalf("%v/%s: driver %d path %v infeasible offline: %v",
						dm, d.Name(), n, tasks, err)
				}
				if math.Abs(profit-res.PerDriverProfit[n]) > 1e-6 {
					t.Fatalf("%v/%s: driver %d sim profit %.9f != task-map profit %.9f",
						dm, d.Name(), n, res.PerDriverProfit[n], profit)
				}
			}
		}
	}
}

// TestBatchedSolutionsAreOfflineFeasible extends the same invariant to
// the batched matching dispatcher.
func TestBatchedSolutionsAreOfflineFeasible(t *testing.T) {
	p := buildProblem(t, 5, 150, 25, trace.Hitchhiking)
	g := p.Graph()
	eng, err := sim.New(p.Market, p.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []sim.BatchAlgorithm{sim.BatchHungarian, sim.BatchAuction} {
		res := eng.RunBatched(p.Tasks, 45, algo)
		for n, tasks := range res.DriverPaths {
			if len(tasks) == 0 {
				continue
			}
			profit, err := g.PathProfit(n, tasks)
			if err != nil {
				t.Fatalf("%v: driver %d path %v infeasible offline: %v", algo, n, tasks, err)
			}
			if math.Abs(profit-res.PerDriverProfit[n]) > 1e-6 {
				t.Fatalf("%v: driver %d profit mismatch", algo, n)
			}
		}
	}
}

// TestEverythingBelowTheBound: the LP-relaxation bound dominates every
// algorithm in the framework, offline and online, on both models.
func TestEverythingBelowTheBound(t *testing.T) {
	for _, dm := range []trace.DriverModel{trace.Hitchhiking, trace.HomeWorkHome} {
		p := buildProblem(t, 7, 120, 20, dm)
		g := p.Graph()
		greedy := offline.Greedy(g).TotalProfit
		ub := bound.Lagrangian(g, greedy, 150)

		eng, err := sim.New(p.Market, p.Drivers, 1)
		if err != nil {
			t.Fatal(err)
		}
		profits := map[string]float64{
			"greedy":    greedy,
			"nearest":   eng.Run(p.Tasks, online.Nearest{}).TotalProfit,
			"maxmargin": eng.Run(p.Tasks, online.MaxMargin{}).TotalProfit,
			"batched":   eng.RunBatched(p.Tasks, 45, sim.BatchHungarian).TotalProfit,
			"replan":    eng.RunReplan(p.Tasks, 60).TotalProfit,
		}
		for name, profit := range profits {
			if profit > ub.Bound+1e-6 {
				t.Errorf("%v: %s profit %.6f exceeds upper bound %.6f", dm, name, profit, ub.Bound)
			}
		}
	}
}

// TestBatchedBeatsInstantOnBatchableMarkets: with enough notice, batch
// matching should not lose to per-task greedy assignment on aggregate.
func TestBatchedVersusInstantTradeoff(t *testing.T) {
	// With generous pickup notice, batching delay is harmless and
	// global matching helps; with street-hail notice (the default), the
	// delay costs urgent tasks. Both directions are the documented
	// response-time tradeoff.
	cfg := trace.NewConfig(11, 200, 30, trace.Hitchhiking)
	cfg.PickupWindowMin = 10 * 60
	cfg.PickupWindowMax = 20 * 60
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	instant := eng.Run(tr.Tasks, online.MaxMargin{})
	batched := eng.RunBatched(tr.Tasks, 60, sim.BatchHungarian)
	if batched.TotalProfit < instant.TotalProfit*0.9 {
		t.Fatalf("with 10-20 min notice, batched profit %.2f fell far below instant %.2f",
			batched.TotalProfit, instant.TotalProfit)
	}
}

// TestRoadNetworkMarketPipeline runs the full stack over network
// distances instead of crow-fly.
func TestRoadNetworkMarketPipeline(t *testing.T) {
	g, err := roadnet.GenerateGrid(roadnet.DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	router := roadnet.NewRouter(g, geo.PortoBox, 10)
	cfg := trace.NewConfig(13, 80, 15, trace.Hitchhiking)
	cfg.Market.Dist = router.Dist
	tr := trace.NewGenerator(cfg).Generate(nil)

	p, err := core.NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.GreedySolver{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Served == 0 {
		t.Fatal("road-network market served nothing")
	}
	if err := p.CheckOffline(sol); err != nil {
		t.Fatal(err)
	}
	// Network distances dominate straight-line: every task's service
	// cost under the router is ≥ the crow-fly cost (minus snap slack).
	for _, tk := range p.Tasks[:20] {
		road := router.Dist(tk.Source, tk.Dest)
		crow := geo.Equirectangular(tk.Source, tk.Dest)
		if crow > 2 && road < crow*0.8 {
			t.Fatalf("road distance %.3f below crow-fly %.3f", road, crow)
		}
	}
}

// TestTraceRoundTripPreservesResults: serializing a trace to JSON and
// back must not change any algorithm's output.
func TestTraceRoundTripPreservesResults(t *testing.T) {
	cfg := trace.NewConfig(17, 100, 15, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)

	var buf bytes.Buffer
	if err := model.WriteTraceJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := model.ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	p1, err := core.NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.NewProblem(cfg.Market, tr2.Drivers, tr2.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := core.GreedySolver{}.Solve(p1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := core.GreedySolver{}.Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.Profit-s2.Profit) > 1e-9 || s1.Served != s2.Served {
		t.Fatalf("round trip changed results: %.6f/%d vs %.6f/%d",
			s1.Profit, s1.Served, s2.Profit, s2.Served)
	}
}

// TestFullDeterminism: identical seeds give identical end-to-end
// results, across every solver.
func TestFullDeterminism(t *testing.T) {
	run := func() []float64 {
		p := buildProblem(t, 23, 120, 20, trace.HomeWorkHome)
		eng, err := sim.New(p.Market, p.Drivers, 9)
		if err != nil {
			t.Fatal(err)
		}
		return []float64{
			offline.Greedy(p.Graph()).TotalProfit,
			eng.Run(p.Tasks, online.Nearest{}).TotalProfit,
			eng.Run(p.Tasks, online.MaxMargin{}).TotalProfit,
			eng.RunBatched(p.Tasks, 30, sim.BatchHungarian).TotalProfit,
			bound.Lagrangian(p.Graph(), 0, 30).Bound,
		}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs across identical runs: %.9f vs %.9f", i, a[i], b[i])
		}
	}
}

// TestWelfareDominatesProfitObjective: solving the welfare view yields
// at least as much welfare as solving the profit view, when both use
// the exact small-scale solver.
func TestWelfareDominatesProfitObjective(t *testing.T) {
	p := buildProblem(t, 29, 10, 3, trace.Hitchhiking)
	w := p.WelfareProblem()

	profitOpt, err := bound.BruteForce(p.Graph(), 0)
	if err != nil {
		t.Fatal(err)
	}
	welfareOpt, err := bound.BruteForce(w.Graph(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Welfare of the profit-optimal assignment ≤ welfare optimum.
	var welfareOfProfitOpt float64
	wg := w.Graph()
	for _, path := range profitOpt.Paths {
		pw, err := wg.PathProfit(path.Driver, path.Tasks)
		if err != nil {
			t.Fatalf("profit-optimal path infeasible in welfare view: %v", err)
		}
		welfareOfProfitOpt += pw
	}
	if welfareOfProfitOpt > welfareOpt.Objective+1e-6 {
		t.Fatalf("welfare view not optimal: %.6f > %.6f", welfareOfProfitOpt, welfareOpt.Objective)
	}
}
