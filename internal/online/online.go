// Package online implements the paper's two online heuristics (§V) as
// sim.Dispatcher implementations:
//
//   - Nearest (Algorithm 3): assign the arriving task to the candidate
//     driver who can reach the pickup soonest, breaking ties uniformly
//     at random, exactly as the paper specifies.
//   - MaxMargin (Algorithm 4): assign to the candidate maximizing the
//     marginal value δ_{n,m} (Eq. 14) of inserting the task into the
//     driver's current plan.
//
// Both are applicable online and offline: pair MaxMargin with
// sim.Engine.RunByValue for the offline sorted variant the paper
// sketches at the end of §V-B.
//
// Dispatchers are candidate-source-agnostic: the engine hands them the
// same candidate slice (ascending driver order — a sim.CandidateSource
// contract) whether candidates came from the exact linear scan or the
// grid-indexed pre-filter, so tie-breaking and RNG consumption, and
// therefore results, are identical under either source.
package online

import (
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// Nearest is the nearest-driver heuristic (Algorithm 3). The zero value
// is ready to use.
type Nearest struct{}

var _ sim.Dispatcher = Nearest{}

// Name implements sim.Dispatcher.
func (Nearest) Name() string { return "Nearest" }

// Choose picks the candidate with the earliest pickup arrival; among
// equal arrivals it picks uniformly at random ("if multiple, choose a
// random one", Algorithm 3 step b).
func (Nearest) Choose(_ model.Task, cands []sim.Candidate, rng *rand.Rand) int {
	best := -1
	ties := 0
	for i, c := range cands {
		switch {
		case best < 0 || c.Arrival < cands[best].Arrival:
			best = i
			ties = 1
		case c.Arrival == cands[best].Arrival:
			// Reservoir-style uniform choice among ties.
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// MaxMargin is the maximum-marginal-value heuristic (Algorithm 4).
//
// AllowNegative controls whether a task may be assigned to a driver whose
// marginal value δ_{n,m} is non-positive. The paper's Algorithm 4 picks
// argmax δ unconditionally, but the market model's individual-rationality
// constraint (Eq. 5b) forbids forcing unprofitable work on a driver, so
// the default (false) rejects tasks whose best margin is ≤ 0.
type MaxMargin struct {
	AllowNegative bool
}

var _ sim.Dispatcher = MaxMargin{}

// Name implements sim.Dispatcher.
func (m MaxMargin) Name() string {
	if m.AllowNegative {
		return "maxMargin(unconstrained)"
	}
	return "maxMargin"
}

// Choose picks the candidate with maximal δ_{n,m}.
func (m MaxMargin) Choose(_ model.Task, cands []sim.Candidate, _ *rand.Rand) int {
	best := -1
	for i, c := range cands {
		if best < 0 || c.Margin > cands[best].Margin {
			best = i
		}
	}
	if best >= 0 && !m.AllowNegative && cands[best].Margin <= 0 {
		return -1
	}
	return best
}

// Random assigns the task to a uniformly random candidate. It is not in
// the paper; it serves as the naive control baseline in ablation
// benchmarks.
type Random struct{}

var _ sim.Dispatcher = Random{}

// Name implements sim.Dispatcher.
func (Random) Name() string { return "Random" }

// Choose implements sim.Dispatcher.
func (Random) Choose(_ model.Task, cands []sim.Candidate, rng *rand.Rand) int {
	if len(cands) == 0 {
		return -1
	}
	return rng.Intn(len(cands))
}
