package online

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func cands(vals ...[2]float64) []sim.Candidate {
	out := make([]sim.Candidate, len(vals))
	for i, v := range vals {
		out[i] = sim.Candidate{Driver: i, Arrival: v[0], Margin: v[1]}
	}
	return out
}

func TestNearestPicksEarliestArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := Nearest{}.Choose(model.Task{}, cands([2]float64{30, 1}, [2]float64{10, -5}, [2]float64{20, 9}), rng)
	if got != 1 {
		t.Fatalf("Nearest chose %d, want 1 (earliest arrival, ignoring margin)", got)
	}
}

func TestNearestTieBreaksUniformly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	counts := make(map[int]int)
	tied := cands([2]float64{10, 0}, [2]float64{10, 0}, [2]float64{10, 0})
	for i := 0; i < 3000; i++ {
		counts[Nearest{}.Choose(model.Task{}, tied, rng)]++
	}
	for c := 0; c < 3; c++ {
		if counts[c] < 800 || counts[c] > 1200 {
			t.Fatalf("tie-break counts %v not ≈ uniform", counts)
		}
	}
}

func TestNearestEmptyCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := (Nearest{}).Choose(model.Task{}, nil, rng); got != -1 {
		t.Fatalf("empty candidates: got %d, want -1", got)
	}
}

func TestMaxMarginPicksLargestMargin(t *testing.T) {
	got := MaxMargin{}.Choose(model.Task{}, cands([2]float64{5, 1}, [2]float64{50, 7}, [2]float64{10, 3}), nil)
	if got != 1 {
		t.Fatalf("MaxMargin chose %d, want 1 (largest δ, ignoring arrival)", got)
	}
}

func TestMaxMarginRejectsNonPositiveByDefault(t *testing.T) {
	neg := cands([2]float64{5, -2}, [2]float64{6, -1})
	if got := (MaxMargin{}).Choose(model.Task{}, neg, nil); got != -1 {
		t.Fatalf("default MaxMargin accepted a negative margin: %d", got)
	}
	if got := (MaxMargin{AllowNegative: true}).Choose(model.Task{}, neg, nil); got != 1 {
		t.Fatalf("unconstrained MaxMargin chose %d, want 1", got)
	}
}

func TestMaxMarginZeroMarginRejected(t *testing.T) {
	zero := cands([2]float64{5, 0})
	if got := (MaxMargin{}).Choose(model.Task{}, zero, nil); got != -1 {
		t.Fatalf("δ = 0 must be rejected under individual rationality, got %d", got)
	}
}

func TestRandomStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cs := cands([2]float64{1, 1}, [2]float64{2, 2})
	for i := 0; i < 100; i++ {
		got := Random{}.Choose(model.Task{}, cs, rng)
		if got < 0 || got >= len(cs) {
			t.Fatalf("Random chose %d out of range", got)
		}
	}
	if got := (Random{}).Choose(model.Task{}, nil, rng); got != -1 {
		t.Fatalf("Random on empty candidates: %d, want -1", got)
	}
}

func TestNames(t *testing.T) {
	for _, tc := range []struct {
		d    sim.Dispatcher
		want string
	}{
		{Nearest{}, "Nearest"},
		{MaxMargin{}, "maxMargin"},
		{MaxMargin{AllowNegative: true}, "maxMargin(unconstrained)"},
		{Random{}, "Random"},
	} {
		if got := tc.d.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// TestMaxMarginBeatsNearestOnProfit is the paper's central online claim
// (§VI-B): the maxMargin heuristic earns more total profit than Nearest
// on realistic traces. Individual seeds are noisy, so the claim is
// asserted on the aggregate over several seeds.
func TestMaxMarginBeatsNearestOnProfit(t *testing.T) {
	var mmTotal, nrTotal float64
	const trials = 8
	for seed := int64(0); seed < trials; seed++ {
		cfg := trace.NewConfig(seed, 150, 20, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		eng, err := sim.New(cfg.Market, tr.Drivers, seed)
		if err != nil {
			t.Fatal(err)
		}
		mmTotal += eng.Run(tr.Tasks, MaxMargin{}).TotalProfit
		nrTotal += eng.Run(tr.Tasks, Nearest{}).TotalProfit
	}
	if mmTotal < nrTotal {
		t.Fatalf("maxMargin aggregate profit %.1f below Nearest %.1f", mmTotal, nrTotal)
	}
}

// TestMaxMarginNeverNegativeDriverProfit: with the IR-enforcing default,
// no driver should end the day with negative profit.
func TestMaxMarginNeverNegativeDriverProfit(t *testing.T) {
	cfg := trace.NewConfig(11, 200, 25, trace.HomeWorkHome)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(tr.Tasks, MaxMargin{})
	for i, p := range res.PerDriverProfit {
		if p < -1e-6 {
			t.Fatalf("driver %d profit %.6f < 0 under IR-enforcing maxMargin", i, p)
		}
	}
	if res.TotalProfit < 0 {
		t.Fatalf("total profit %.6f < 0", res.TotalProfit)
	}
}

// TestNearestServesAtLeastAsManyEarly: Nearest is greedy on service
// speed; sanity-check it serves a similar task count (not profit).
func TestNearestServeRateReasonable(t *testing.T) {
	cfg := trace.NewConfig(21, 150, 25, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	nr := eng.Run(tr.Tasks, Nearest{})
	if nr.ServeRate() < 0.2 {
		t.Fatalf("Nearest serve rate %.2f unreasonably low", nr.ServeRate())
	}
	if math.IsNaN(nr.TotalProfit) {
		t.Fatal("NaN profit")
	}
}
