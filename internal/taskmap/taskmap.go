// Package taskmap builds the paper's task maps (§III-B): per-driver
// directed acyclic graphs whose nodes are tasks plus the driver's source
// (label 0) and destination (label −1), and whose arcs encode "driver n
// can take task m' in time after finishing task m" (Eqs. 1–3).
//
// A driver's task list is a path from her source to her destination, and
// the market optimization (Eq. 4 / Eq. 9) is a maximum-value
// node-disjoint paths problem over the merged graph. This package
// provides the graph representation plus the longest-path (maximum
// profit) dynamic program over the DAG that both the offline greedy
// algorithm (§IV) and the LP pricing oracle (§III-E) are built on.
//
// Arc structure is shared across drivers: the inter-task feasibility
// condition l_{m,m'} ≤ t̄−_{m'} − t̄+_m depends only on the market speed,
// while per-driver feasibility (reachability from the driver's source and
// return to her destination, Eqs. 2–3) is kept in per-driver tables.
// Per-driver speed overrides are honored by the per-driver tables; the
// shared arcs assume the market-wide speed, which matches the paper's
// evaluation (a single constant speed).
package taskmap

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// None marks "no predecessor" in path reconstruction.
const None int32 = -1

// Graph is the merged task map of all drivers over one task set. It is
// immutable after construction and safe for concurrent readers.
type Graph struct {
	Market  model.Market
	Drivers []model.Driver
	Tasks   []model.Task

	// Order holds task indices sorted by StartBy ascending: a valid
	// topological order, since every arc m→m' satisfies
	// t̄−_{m'} ≥ t̄+_m > t̄−_m.
	Order []int32

	// Preds[m] lists the task indices m' with a shared arc m'→m;
	// PredCosts[m][k] holds the deadhead cost c_{m'ₖ,m} of that arc and
	// PredDists[m][k] its deadhead distance in kilometers (used to
	// re-check arc timing for drivers with a speed override).
	Preds     [][]int32
	PredCosts [][]float64
	PredDists [][]float64

	// Succs[m] lists the task indices reachable by a shared arc m→m'.
	Succs [][]int32

	// Value[m] = p_m − ĉ_m: the margin of serving task m, before
	// deadhead costs (driver-independent: price and gasoline cost).
	Value []float64

	// Per-driver tables, indexed [driver][task]:
	//   feasible: ĥ_{n,m} ∧ return-home condition of Eqs. (2)–(3)
	//   srcOK:    driver can reach the pickup from her source in time
	//   srcCost:  c_{n,0,m}, cost from driver source to task source
	//   snkCost:  c_{n,m,−1}, cost from task destination to driver dest
	feasible [][]bool
	srcOK    [][]bool
	srcCost  [][]float64
	snkCost  [][]float64

	// Baseline[n] = c_{n,0,−1}: the driver's no-task travel cost,
	// credited back in the objective (Eq. 4).
	Baseline []float64

	arcCount int
}

// New constructs the merged task map for the given market instance.
// Construction is O(N·M + M²), matching the paper's O(N·M²) bound with
// the shared-arc optimization. It returns an error if the instance fails
// validation.
func New(m model.Market, drivers []model.Driver, tasks []model.Task) (*Graph, error) {
	if err := model.ValidateAll(m, drivers, tasks); err != nil {
		return nil, fmt.Errorf("taskmap: %w", err)
	}
	g := &Graph{
		Market:  m,
		Drivers: append([]model.Driver(nil), drivers...),
		Tasks:   append([]model.Task(nil), tasks...),
	}
	g.buildOrder()
	g.buildValues()
	g.buildSharedArcs()
	g.buildDriverTables()
	return g, nil
}

// M returns the number of tasks, N the number of drivers.
func (g *Graph) M() int { return len(g.Tasks) }

// N returns the number of drivers.
func (g *Graph) N() int { return len(g.Drivers) }

// ArcCount returns the number of shared inter-task arcs.
func (g *Graph) ArcCount() int { return g.arcCount }

// Feasible reports whether task m is feasible for driver n: the service
// fits the task window (Eq. 1) and the driver can still reach her own
// destination after finishing it (the return clause of Eqs. 2–3).
func (g *Graph) Feasible(n, m int) bool { return g.feasible[n][m] }

// SourceReachable reports whether driver n can reach task m's pickup
// from her source by the pickup deadline (the reach clause of Eq. 2).
func (g *Graph) SourceReachable(n, m int) bool { return g.srcOK[n][m] }

// SourceCost returns c_{n,0,m} and SinkCost returns c_{n,m,−1}.
func (g *Graph) SourceCost(n, m int) float64 { return g.srcCost[n][m] }

// SinkCost returns the travel cost from task m's destination to driver
// n's destination.
func (g *Graph) SinkCost(n, m int) float64 { return g.snkCost[n][m] }

// HasArc reports whether the shared arc m→m' exists (both tasks pass the
// market-speed window checks and the deadhead fits between them). This is
// the driver-independent part of Eq. (3).
func (g *Graph) HasArc(m, mp int) bool {
	for _, p := range g.Preds[mp] {
		if int(p) == m {
			return true
		}
	}
	return false
}

// arcUsable reports whether the k-th predecessor arc into task m is
// usable at the given driving speed: shared arcs are built at the
// market-wide speed, so a driver with a slower override must re-check
// that her deadhead still fits the inter-task gap (Eq. 3). speedKmh ≤ 0
// or ≥ the market speed needs no re-check for slower-driver safety, and
// faster overrides only make more arcs feasible than the shared graph
// records (a documented under-approximation).
func (g *Graph) arcUsable(m, k int, speedKmh float64) bool {
	if speedKmh <= 0 || speedKmh >= g.Market.SpeedKmh {
		return true
	}
	p := g.Preds[m][k]
	gap := g.Tasks[m].StartBy - g.Tasks[p].EndBy
	return g.PredDists[m][k]/speedKmh*3600 <= gap+timeEps
}

func (g *Graph) buildOrder() {
	g.Order = make([]int32, len(g.Tasks))
	for i := range g.Order {
		g.Order[i] = int32(i)
	}
	// Insertion of sort.Slice over int32 indices by StartBy.
	tasks := g.Tasks
	sortInt32s(g.Order, func(a, b int32) bool {
		if tasks[a].StartBy != tasks[b].StartBy {
			return tasks[a].StartBy < tasks[b].StartBy
		}
		return a < b
	})
}

func (g *Graph) buildValues() {
	g.Value = make([]float64, len(g.Tasks))
	for i, t := range g.Tasks {
		g.Value[i] = t.Price - g.Market.ServiceCost(t)
	}
}

// serviceFits implements Eq. (1) at market speed: ĥ_m.
func (g *Graph) serviceFits(t model.Task) bool {
	return g.Market.ServiceTime(t, 0) <= t.EndBy-t.StartBy+timeEps
}

// timeEps absorbs floating-point noise in deadline comparisons.
const timeEps = 1e-9

func (g *Graph) buildSharedArcs() {
	mCount := len(g.Tasks)
	g.Preds = make([][]int32, mCount)
	g.PredCosts = make([][]float64, mCount)
	g.PredDists = make([][]float64, mCount)
	g.Succs = make([][]int32, mCount)

	fits := make([]bool, mCount)
	for i, t := range g.Tasks {
		fits[i] = g.serviceFits(t)
	}

	// Tasks in topological (StartBy) order; an arc a→b needs
	// t̄−_b ≥ t̄+_a, so only pairs with EndBy_a ≤ StartBy_b are checked.
	for ia := 0; ia < mCount; ia++ {
		a := int(g.Order[ia])
		if !fits[a] {
			continue
		}
		ta := g.Tasks[a]
		for ib := ia + 1; ib < mCount; ib++ {
			b := int(g.Order[ib])
			if !fits[b] {
				continue
			}
			tb := g.Tasks[b]
			gap := tb.StartBy - ta.EndBy
			if gap < -timeEps {
				continue
			}
			if g.Market.TravelTime(ta.Dest, tb.Source, 0) <= gap+timeEps {
				g.Preds[b] = append(g.Preds[b], int32(a))
				g.PredCosts[b] = append(g.PredCosts[b], g.Market.DeadheadCost(ta, tb))
				g.PredDists[b] = append(g.PredDists[b], g.Market.Dist(ta.Dest, tb.Source))
				g.Succs[a] = append(g.Succs[a], int32(b))
				g.arcCount++
			}
		}
	}
}

func (g *Graph) buildDriverTables() {
	n := len(g.Drivers)
	mCount := len(g.Tasks)
	g.feasible = make([][]bool, n)
	g.srcOK = make([][]bool, n)
	g.srcCost = make([][]float64, n)
	g.snkCost = make([][]float64, n)
	g.Baseline = make([]float64, n)

	for i, d := range g.Drivers {
		g.feasible[i] = make([]bool, mCount)
		g.srcOK[i] = make([]bool, mCount)
		g.srcCost[i] = make([]float64, mCount)
		g.snkCost[i] = make([]float64, mCount)
		g.Baseline[i] = g.Market.BaselineCost(d)

		for j, t := range g.Tasks {
			// Eq. (1) at the driver's own speed.
			if g.Market.ServiceTime(t, d.SpeedKmh) > t.EndBy-t.StartBy+timeEps {
				continue
			}
			// Return clause of Eqs. (2)-(3): reach own destination
			// from the task's destination by t+_n.
			if g.Market.DriverTravelTime(d, t.Dest, d.Dest) > d.End-t.EndBy+timeEps {
				continue
			}
			g.feasible[i][j] = true
			g.snkCost[i][j] = g.Market.TravelCost(t.Dest, d.Dest)
			g.srcCost[i][j] = g.Market.TravelCost(d.Source, t.Source)
			// Reach clause of Eq. (2): source to pickup by t̄−_m,
			// departing no earlier than t−_n.
			if g.Market.DriverTravelTime(d, d.Source, t.Source) <= t.StartBy-d.Start+timeEps {
				g.srcOK[i][j] = true
			}
		}
	}
}

// Path is a driver's task list: a source→destination path in her task
// map with its total profit r_π (Eq. 9's path value: task margins minus
// deadhead and source/sink legs, plus the baseline credit).
type Path struct {
	Driver int
	Tasks  []int // task indices in service order
	Profit float64
}

// Len returns the number of tasks on the path.
func (p Path) Len() int { return len(p.Tasks) }

// BestPath computes the maximum-profit source→destination path for
// driver n over the alive tasks (alive == nil means all tasks). It
// returns an empty path with zero profit when no path has positive
// profit — taking no tasks is always feasible and costs nothing beyond
// the baseline, which the objective credits back (Eq. 4).
//
// The DP runs in O(V + E) over the topological order. adj, if non-nil,
// supplies per-node dual adjustments subtracted from each task's value
// (used by the LP pricing oracle); len(adj) must equal M.
func (g *Graph) BestPath(n int, alive []bool, adj []float64) Path {
	if n < 0 || n >= len(g.Drivers) {
		panic(fmt.Sprintf("taskmap: driver index %d out of range [0,%d)", n, len(g.Drivers)))
	}
	if alive != nil && len(alive) != len(g.Tasks) {
		panic(fmt.Sprintf("taskmap: alive mask length %d, want %d", len(alive), len(g.Tasks)))
	}
	if adj != nil && len(adj) != len(g.Tasks) {
		panic(fmt.Sprintf("taskmap: adjustment length %d, want %d", len(adj), len(g.Tasks)))
	}

	mCount := len(g.Tasks)
	best := make([]float64, mCount) // best profit of a path ending at m (before sink leg)
	prev := make([]int32, mCount)
	reach := make([]bool, mCount)

	feas := g.feasible[n]
	srcOK := g.srcOK[n]
	srcCost := g.srcCost[n]

	negInf := math.Inf(-1)
	for i := range best {
		best[i] = negInf
		prev[i] = None
	}

	for _, mi := range g.Order {
		m := int(mi)
		if !feas[m] || (alive != nil && !alive[m]) {
			continue
		}
		v := g.Value[m]
		if adj != nil {
			v -= adj[m]
		}
		cur := negInf
		var curPrev int32 = None
		if srcOK[m] {
			cur = -srcCost[m]
		}
		preds := g.Preds[m]
		costs := g.PredCosts[m]
		speed := g.Drivers[n].SpeedKmh
		for k, p := range preds {
			if !reach[p] || !g.arcUsable(m, k, speed) {
				continue
			}
			if c := best[p] - costs[k]; c > cur {
				cur = c
				curPrev = p
			}
		}
		if cur == negInf {
			continue
		}
		best[m] = cur + v
		prev[m] = curPrev
		reach[m] = true
	}

	// Close the path with the sink leg and the baseline credit.
	baseline := g.Baseline[n]
	snkCost := g.snkCost[n]
	bestEnd := -1
	bestProfit := 0.0
	for m := 0; m < mCount; m++ {
		if !reach[m] {
			continue
		}
		if r := best[m] - snkCost[m] + baseline; r > bestProfit {
			bestProfit = r
			bestEnd = m
		}
	}
	if bestEnd < 0 {
		return Path{Driver: n}
	}

	var rev []int
	for m := int32(bestEnd); m != None; m = prev[m] {
		rev = append(rev, int(m))
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return Path{Driver: n, Tasks: rev, Profit: bestProfit}
}

// PathProfit recomputes the profit of the given task sequence for driver
// n from first principles (independent of the DP), returning an error if
// the sequence is not a feasible path in the driver's task map. It is the
// ground-truth valuation used by solution validation and tests.
func (g *Graph) PathProfit(n int, tasks []int) (float64, error) {
	if len(tasks) == 0 {
		return 0, nil
	}
	d := g.Drivers[n]
	first := tasks[0]
	if first < 0 || first >= len(g.Tasks) {
		return 0, fmt.Errorf("taskmap: task index %d out of range", first)
	}
	if !g.feasible[n][first] || !g.srcOK[n][first] {
		return 0, fmt.Errorf("taskmap: task %d not reachable from driver %d's source", first, n)
	}
	profit := -g.srcCost[n][first]
	for i, m := range tasks {
		if m < 0 || m >= len(g.Tasks) {
			return 0, fmt.Errorf("taskmap: task index %d out of range", m)
		}
		if !g.feasible[n][m] {
			return 0, fmt.Errorf("taskmap: task %d infeasible for driver %d", m, n)
		}
		profit += g.Value[m]
		if i > 0 {
			p := tasks[i-1]
			arcK := -1
			for k, pr := range g.Preds[m] {
				if int(pr) == p {
					arcK = k
					break
				}
			}
			if arcK < 0 {
				return 0, fmt.Errorf("taskmap: no arc %d→%d", p, m)
			}
			if !g.arcUsable(m, arcK, d.SpeedKmh) {
				return 0, fmt.Errorf("taskmap: arc %d→%d too tight for driver %d at %.1f km/h",
					p, m, n, d.SpeedKmh)
			}
			profit -= g.PredCosts[m][arcK]
		}
	}
	last := tasks[len(tasks)-1]
	profit -= g.snkCost[n][last]
	profit += g.Market.BaselineCost(d)
	return profit, nil
}

// Diameter returns D: the maximum number of task nodes on any single
// source→destination path in the merged graph. Every path belongs to
// exactly one driver (it runs from her source to her destination), so D
// is the longest chain of tasks that some one driver could serve — "the
// maximum number of possible tasks taken by a single driver during one
// working period" (§IV-C). The greedy algorithm's approximation ratio is
// 1/(D+1) (Theorem 1).
func (g *Graph) Diameter() int {
	mCount := len(g.Tasks)
	best := 0
	depth := make([]int, mCount)
	for n := range g.Drivers {
		feas := g.feasible[n]
		srcOK := g.srcOK[n]
		for i := range depth {
			depth[i] = 0
		}
		for _, mi := range g.Order {
			m := int(mi)
			if !feas[m] {
				continue
			}
			d := 0
			if srcOK[m] {
				d = 1
			}
			for _, p := range g.Preds[m] {
				if depth[p] > 0 && depth[p]+1 > d {
					d = depth[p] + 1
				}
			}
			depth[m] = d
			if d > best {
				best = d
			}
		}
	}
	return best
}
