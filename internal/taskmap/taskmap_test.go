package taskmap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/model"
)

// lineMkt returns a deterministic market on a flat west-east line:
// 60 km/h (1 km/min) and 1 unit/km, so distances, times and costs are
// easy to compute by hand.
func lineMkt() model.Market {
	return model.Market{Dist: geo.Equirectangular, SpeedKmh: 60, GasPerKm: 1}
}

// at returns a point d kilometers east of a fixed origin.
func at(km float64) geo.Point {
	return geo.Offset(geo.Point{Lat: 41.15, Lon: -8.61}, math.Pi/2, km)
}

// minutes converts minutes to seconds.
func minutes(m float64) float64 { return m * 60 }

// simpleTask builds a zero-length task at location km with the given
// window, price p.
func simpleTask(id int, km, startBy, endBy, p float64) model.Task {
	return model.Task{
		ID: id, Publish: startBy - 1,
		Source: at(km), Dest: at(km),
		StartBy: startBy, EndBy: endBy,
		Price: p, WTP: p,
	}
}

func mustNew(t *testing.T, m model.Market, drivers []model.Driver, tasks []model.Task) *Graph {
	t.Helper()
	g, err := New(m, drivers, tasks)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestArcRequiresDeadheadTime(t *testing.T) {
	// Task 0 at km 0 ends at minute 10; task 1 at km 5 starts by minute
	// 12: deadhead needs 5 min > 2 min gap → no arc. Task 2 at km 5
	// starts by minute 20 → 10 min gap → arc.
	tasks := []model.Task{
		simpleTask(0, 0, minutes(5), minutes(10), 5),
		simpleTask(1, 5, minutes(12), minutes(16), 5),
		simpleTask(2, 5, minutes(20), minutes(24), 5),
	}
	drv := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(120)}}
	g := mustNew(t, lineMkt(), drv, tasks)
	if g.HasArc(0, 1) {
		t.Error("arc 0→1 should not exist: deadhead 5 min > gap 2 min")
	}
	if !g.HasArc(0, 2) {
		t.Error("arc 0→2 should exist: deadhead 5 min ≤ gap 10 min")
	}
	if g.HasArc(2, 0) {
		t.Error("arcs must not go backward in time")
	}
}

func TestServiceMustFitWindow(t *testing.T) {
	// Task from km 0 to km 10 takes 10 min; window of 5 min is
	// infeasible per Eq. (1), and the task gets no arcs at all.
	long := model.Task{
		ID: 0, Publish: 0, Source: at(0), Dest: at(10),
		StartBy: minutes(10), EndBy: minutes(15), Price: 100, WTP: 100,
	}
	later := simpleTask(1, 10, minutes(60), minutes(70), 5)
	drv := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	g := mustNew(t, lineMkt(), drv, []model.Task{long, later})
	if g.Feasible(0, 0) {
		t.Error("task 0 violates Eq. (1), should be infeasible")
	}
	if g.HasArc(0, 1) {
		t.Error("infeasible task must not grow arcs")
	}
	if !g.Feasible(0, 1) {
		t.Error("task 1 should be feasible")
	}
}

func TestDriverMustReachPickup(t *testing.T) {
	// Driver at km 0 from minute 0; task at km 30 starting by minute 10
	// needs 30 min of travel → unreachable.
	tasks := []model.Task{
		simpleTask(0, 30, minutes(10), minutes(20), 5),
		simpleTask(1, 30, minutes(40), minutes(50), 5),
	}
	drv := []model.Driver{{ID: 0, Source: at(0), Dest: at(30), Start: 0, End: minutes(240)}}
	g := mustNew(t, lineMkt(), drv, tasks)
	if g.SourceReachable(0, 0) {
		t.Error("task 0 pickup unreachable in 10 min from 30 km away")
	}
	if !g.SourceReachable(0, 1) {
		t.Error("task 1 pickup reachable in 40 min")
	}
}

func TestDriverMustReturnHome(t *testing.T) {
	// Driver must end at km 0 by minute 60. A task at km 30 ending at
	// minute 40 leaves only 20 min for a 30-min return → infeasible.
	tasks := []model.Task{
		simpleTask(0, 30, minutes(35), minutes(40), 5),
		simpleTask(1, 10, minutes(35), minutes(40), 5),
	}
	drv := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(60)}}
	g := mustNew(t, lineMkt(), drv, tasks)
	if g.Feasible(0, 0) {
		t.Error("task 0 violates the return-home clause")
	}
	if !g.Feasible(0, 1) {
		t.Error("task 1 leaves 20 min for a 10-min return, feasible")
	}
}

func TestPerDriverSpeedOverride(t *testing.T) {
	// A 120 km/h driver can serve a task a 60 km/h driver cannot reach
	// in time.
	tasks := []model.Task{simpleTask(0, 20, minutes(15), minutes(25), 5)}
	drivers := []model.Driver{
		{ID: 0, Source: at(0), Dest: at(20), Start: 0, End: minutes(240)},
		{ID: 1, Source: at(0), Dest: at(20), Start: 0, End: minutes(240), SpeedKmh: 120},
	}
	g := mustNew(t, lineMkt(), drivers, tasks)
	if g.SourceReachable(0, 0) {
		t.Error("60 km/h driver needs 20 min for 20 km, deadline is 15")
	}
	if !g.SourceReachable(1, 0) {
		t.Error("120 km/h driver covers 20 km in 10 min")
	}
}

func TestTopologicalOrderValid(t *testing.T) {
	g := randomGraph(t, 40, 6, 99)
	pos := make([]int, g.M())
	for i, m := range g.Order {
		pos[m] = i
	}
	for m := 0; m < g.M(); m++ {
		for _, p := range g.Preds[m] {
			if pos[p] >= pos[m] {
				t.Fatalf("pred %d not before %d in topological order", p, m)
			}
		}
	}
}

func TestArcsConsistentPredsSuccs(t *testing.T) {
	g := randomGraph(t, 40, 6, 7)
	count := 0
	for m := 0; m < g.M(); m++ {
		for _, s := range g.Succs[m] {
			count++
			found := false
			for _, p := range g.Preds[s] {
				if int(p) == m {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("succ arc %d→%d missing from preds", m, s)
			}
		}
	}
	if count != g.ArcCount() {
		t.Fatalf("ArcCount() = %d, succs total %d", g.ArcCount(), count)
	}
}

func TestBestPathMatchesBruteForceEnumeration(t *testing.T) {
	// On random small instances, the DP's best path must equal the best
	// over all enumerated paths for every driver.
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(t, 12, 4, seed)
		for n := 0; n < g.N(); n++ {
			want, path := bruteBest(g, n)
			got := g.BestPath(n, nil, nil)
			if math.Abs(got.Profit-want) > 1e-9 {
				t.Fatalf("seed %d driver %d: DP profit %.6f, brute force %.6f (path %v vs %v)",
					seed, n, got.Profit, want, got.Tasks, path)
			}
		}
	}
}

// bruteBest enumerates all paths for driver n by DFS and returns the max
// profit (0 for the empty path) and the argmax.
func bruteBest(g *Graph, n int) (float64, []int) {
	best := 0.0
	var bestPath []int
	var cur []int
	var dfs func(last int)
	dfs = func(last int) {
		profit, err := g.PathProfit(n, cur)
		if err == nil && profit > best {
			best = profit
			bestPath = append([]int(nil), cur...)
		}
		for _, s := range g.Succs[last] {
			if g.Feasible(n, int(s)) {
				cur = append(cur, int(s))
				dfs(int(s))
				cur = cur[:len(cur)-1]
			}
		}
	}
	for m := 0; m < g.M(); m++ {
		if g.Feasible(n, m) && g.SourceReachable(n, m) {
			cur = append(cur, m)
			dfs(m)
			cur = cur[:len(cur)-1]
		}
	}
	return best, bestPath
}

func TestBestPathProfitAgreesWithPathProfit(t *testing.T) {
	g := randomGraph(t, 50, 8, 3)
	for n := 0; n < g.N(); n++ {
		p := g.BestPath(n, nil, nil)
		if p.Len() == 0 {
			continue
		}
		profit, err := g.PathProfit(n, p.Tasks)
		if err != nil {
			t.Fatalf("driver %d: BestPath returned infeasible path: %v", n, err)
		}
		if math.Abs(profit-p.Profit) > 1e-9 {
			t.Fatalf("driver %d: DP profit %.9f, recomputed %.9f", n, p.Profit, profit)
		}
	}
}

func TestBestPathRespectsAliveMask(t *testing.T) {
	g := randomGraph(t, 30, 5, 21)
	for n := 0; n < g.N(); n++ {
		full := g.BestPath(n, nil, nil)
		if full.Len() == 0 {
			continue
		}
		// Kill the first task of the best path; the new best must avoid
		// it and cannot improve.
		alive := make([]bool, g.M())
		for i := range alive {
			alive[i] = true
		}
		alive[full.Tasks[0]] = false
		reduced := g.BestPath(n, alive, nil)
		for _, task := range reduced.Tasks {
			if task == full.Tasks[0] {
				t.Fatalf("driver %d: masked task %d still used", n, task)
			}
		}
		if reduced.Profit > full.Profit+1e-9 {
			t.Fatalf("driver %d: removing a node increased profit %.6f → %.6f",
				n, full.Profit, reduced.Profit)
		}
	}
}

func TestBestPathMonotoneUnderRemoval(t *testing.T) {
	// Property: profits never increase as tasks are removed one by one.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(nil, 20, 3, seed)
		alive := make([]bool, g.M())
		for i := range alive {
			alive[i] = true
		}
		prev := make([]float64, g.N())
		for n := range prev {
			prev[n] = g.BestPath(n, alive, nil).Profit
		}
		for k := 0; k < 10; k++ {
			alive[rng.Intn(g.M())] = false
			for n := 0; n < g.N(); n++ {
				cur := g.BestPath(n, alive, nil).Profit
				if cur > prev[n]+1e-9 {
					return false
				}
				prev[n] = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBestPathDualAdjustment(t *testing.T) {
	// With adj = 0 the result matches no-adj; with huge adj everywhere,
	// no path is profitable.
	g := randomGraph(t, 25, 4, 13)
	zero := make([]float64, g.M())
	huge := make([]float64, g.M())
	for i := range huge {
		huge[i] = 1e9
	}
	for n := 0; n < g.N(); n++ {
		a := g.BestPath(n, nil, nil)
		b := g.BestPath(n, nil, zero)
		if math.Abs(a.Profit-b.Profit) > 1e-12 {
			t.Fatalf("driver %d: zero adjustment changed profit", n)
		}
		c := g.BestPath(n, nil, huge)
		if c.Len() != 0 {
			t.Fatalf("driver %d: huge duals should price out all paths", n)
		}
	}
}

func TestPathProfitRejectsBadSequences(t *testing.T) {
	tasks := []model.Task{
		simpleTask(0, 0, minutes(10), minutes(15), 5),
		simpleTask(1, 0, minutes(30), minutes(35), 5),
	}
	drv := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(120)}}
	g := mustNew(t, lineMkt(), drv, tasks)
	if _, err := g.PathProfit(0, []int{1, 0}); err == nil {
		t.Error("backward sequence should be rejected")
	}
	if _, err := g.PathProfit(0, []int{5}); err == nil {
		t.Error("out-of-range index should be rejected")
	}
	if _, err := g.PathProfit(0, []int{0, 1}); err != nil {
		t.Errorf("forward chain should be accepted: %v", err)
	}
	if p, err := g.PathProfit(0, nil); err != nil || p != 0 {
		t.Errorf("empty path: profit=%v err=%v, want 0, nil", p, err)
	}
}

func TestDiameterChain(t *testing.T) {
	// A strict chain of 5 tasks has diameter 5.
	var tasks []model.Task
	for i := 0; i < 5; i++ {
		start := minutes(float64(10 + 20*i))
		tasks = append(tasks, simpleTask(i, 0, start, start+minutes(5), 5))
	}
	drv := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(300)}}
	g := mustNew(t, lineMkt(), drv, tasks)
	if d := g.Diameter(); d != 5 {
		t.Fatalf("Diameter = %d, want 5", d)
	}
}

func TestDiameterNoFeasibleTasks(t *testing.T) {
	// One task far outside the driver's window: diameter 0.
	tasks := []model.Task{simpleTask(0, 0, minutes(1000), minutes(1005), 5)}
	drv := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(60)}}
	g := mustNew(t, lineMkt(), drv, tasks)
	if d := g.Diameter(); d != 0 {
		t.Fatalf("Diameter = %d, want 0", d)
	}
}

func TestNewRejectsInvalidInstance(t *testing.T) {
	bad := model.Task{ID: 0, Publish: 10, StartBy: 5, EndBy: 20,
		Source: at(0), Dest: at(0), Price: 1, WTP: 1}
	_, err := New(lineMkt(), nil, []model.Task{bad})
	if err == nil {
		t.Fatal("New should reject publish-after-start task")
	}
}

func TestBestPathPanicsOnBadDriver(t *testing.T) {
	g := randomGraph(t, 5, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("BestPath(-1) should panic")
		}
	}()
	g.BestPath(-1, nil, nil)
}

// randomGraph builds a reproducible random instance on the line. The
// *testing.T may be nil when called from quick.Check properties.
func randomGraph(t *testing.T, m, n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]model.Task, m)
	for i := range tasks {
		src := rng.Float64() * 15
		dst := rng.Float64() * 15
		startBy := minutes(10 + rng.Float64()*400)
		service := math.Abs(dst-src) + 1e-6
		endBy := startBy + minutes(service) + minutes(rng.Float64()*10)
		tasks[i] = model.Task{
			ID: i, Publish: startBy - minutes(5),
			Source: at(src), Dest: at(dst),
			StartBy: startBy, EndBy: endBy,
			Price: 1 + rng.Float64()*10,
		}
		tasks[i].WTP = tasks[i].Price * (1 + rng.Float64())
	}
	drivers := make([]model.Driver, n)
	for i := range drivers {
		start := minutes(rng.Float64() * 200)
		drivers[i] = model.Driver{
			ID:     i,
			Source: at(rng.Float64() * 15),
			Dest:   at(rng.Float64() * 15),
			Start:  start,
			End:    start + minutes(120+rng.Float64()*240),
		}
	}
	g, err := New(lineMkt(), drivers, tasks)
	if err != nil {
		if t != nil {
			t.Fatalf("randomGraph: %v", err)
		}
		panic(err)
	}
	return g
}

func TestSlowDriverArcRecheck(t *testing.T) {
	// Two tasks 4 km apart with a 5-minute gap: feasible at the 60 km/h
	// market speed (4 min), infeasible for a 30 km/h driver (8 min).
	tasks := []model.Task{
		simpleTask(0, 0, minutes(10), minutes(15), 5),
		simpleTask(1, 4, minutes(20), minutes(25), 5),
	}
	drivers := []model.Driver{
		{ID: 0, Source: at(0), Dest: at(4), Start: 0, End: minutes(240)},
		{ID: 1, Source: at(0), Dest: at(4), Start: 0, End: minutes(240), SpeedKmh: 30},
	}
	g := mustNew(t, lineMkt(), drivers, tasks)
	if !g.HasArc(0, 1) {
		t.Fatal("shared arc 0→1 should exist at market speed")
	}
	// Market-speed driver can chain both tasks.
	fast := g.BestPath(0, nil, nil)
	if len(fast.Tasks) != 2 {
		t.Fatalf("market-speed driver path %v, want both tasks", fast.Tasks)
	}
	// The slow driver cannot use the arc: her best path has one task.
	slow := g.BestPath(1, nil, nil)
	if len(slow.Tasks) != 1 {
		t.Fatalf("slow driver path %v, want a single task", slow.Tasks)
	}
	// PathProfit agrees: the chain is rejected for the slow driver.
	if _, err := g.PathProfit(1, []int{0, 1}); err == nil {
		t.Fatal("PathProfit accepted a chain the slow driver cannot drive")
	}
	if _, err := g.PathProfit(0, []int{0, 1}); err != nil {
		t.Fatalf("PathProfit rejected a feasible market-speed chain: %v", err)
	}
}

func TestFastDriverKeepsSharedArcs(t *testing.T) {
	// A faster override must never lose arcs relative to market speed.
	tasks := []model.Task{
		simpleTask(0, 0, minutes(10), minutes(15), 5),
		simpleTask(1, 4, minutes(20), minutes(25), 5),
	}
	drivers := []model.Driver{
		{ID: 0, Source: at(0), Dest: at(4), Start: 0, End: minutes(240), SpeedKmh: 120},
	}
	g := mustNew(t, lineMkt(), drivers, tasks)
	if p := g.BestPath(0, nil, nil); len(p.Tasks) != 2 {
		t.Fatalf("fast driver path %v, want both tasks", p.Tasks)
	}
}
