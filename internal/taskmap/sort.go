package taskmap

import "sort"

// sortInt32s sorts xs in place using the given less function.
func sortInt32s(xs []int32, less func(a, b int32) bool) {
	sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
}
