// Package spatial maintains a bucketed index of moving points (drivers)
// over the cells of a geo.Grid, answering the radius queries the online
// dispatchers need: "which drivers could possibly be within R kilometers
// of this pickup?". It is the candidate pre-filter promised by the grid's
// doc comment — the exact per-driver feasibility checks in the simulator
// remain the final arbiter, so the index only has to be *conservative*:
// it may return points that turn out to be too far, but it must never
// drop a point that is within the radius.
//
// The index buckets each point into its grid cell and serves queries by
// expanding square rings of cells around the query point's cell. Ring r
// is visited only while its distance lower bound (r-1)·minCellSpan —
// scaled by a safety factor that absorbs projection distortion — does not
// exceed the query radius, so a query touches O(points within ~R) rather
// than all N points. Points outside the grid's bounding box are clamped
// into boundary cells; because clamping is a projection onto a convex
// box, it never increases pairwise distances, so the pruning bound stays
// valid for out-of-box points too.
//
// Distance checks use planar kilometer coordinates under a fixed
// conservative projection (see project) so the query hot path does no
// per-pair trigonometry. The conservativeness contract is stated in
// terms of equirectangular distance: a query with radius R visits every
// point whose equirectangular distance to the query point is at most
// R/Safety. Callers whose true travel metric can undercut
// equirectangular distance (it never does for the metrics in this
// repository: equirectangular itself, haversine at city scale, and road
// networks, whose path lengths exceed straight-line distance) must widen
// the radius accordingly.
package spatial

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// Safety discounts every pruning bound: a cell ring or an individual
// point is skipped only when its distance lower bound *after* multiplying
// by Safety still exceeds the query radius. The slack absorbs the small
// (well under 1% at city scale) disagreement between the equirectangular
// planar model the bounds are computed in and other city-scale metrics
// such as haversine.
const Safety = 0.9

// Index is a driver-over-grid-cells bucket index. Construct with
// NewIndex (every point present) or NewSparseIndex (membership managed
// with Add and Remove — the shape zone shards need, where each shard
// indexes only the drivers currently inside its zone). It is not safe
// for concurrent mutation.
//
// Besides its location, every point carries an availability window
// [freeAt, retireAt) — for a driver: when she can next depart (shift
// start, or the lock release of her in-flight task) and when her shift
// ends. NearReachable combines the window with the distance bound so a
// city-scale fleet where most drivers are off shift or locked at query
// time is pruned by a float compare instead of a distance computation.
type Index struct {
	grid *geo.Grid

	loc      []geo.Point // id -> current location
	px, py   []float64   // id -> planar km coordinates (see project)
	freeAt   []float64   // id -> earliest departure time
	retireAt []float64   // id -> end of availability
	cell     []int       // id -> current cell, or absentCell when removed
	slot     []int       // id -> position inside bucket[cell[id]]

	bucket  [][]int // cell -> ids (unordered)
	members int     // number of present points

	minSpanKm float64 // conservative one-cell extent for ring bounds
	kmPerLon  float64 // km per degree of longitude at the box's widest-cos latitude
}

// absentCell marks an id that is allocated but not currently indexed
// (removed, or never added on a sparse index).
const absentCell = -1

// kmPerLat converts degrees of latitude to kilometers.
const kmPerLat = geo.EarthRadiusKm * math.Pi / 180

// project maps p to planar kilometer coordinates in which the Euclidean
// distance never exceeds the equirectangular distance for points at the
// box's latitudes: longitude is scaled with the *smallest* cosine the
// box reaches, so east-west separations are under-, never over-stated.
// Distance checks against these coordinates are therefore lower bounds,
// exactly what a conservative pre-filter needs — and they avoid the
// per-pair trigonometry of the true metric on the query hot path.
func (ix *Index) project(p geo.Point) (x, y float64) {
	return p.Lon * ix.kmPerLon, p.Lat * kmPerLat
}

// NewIndex builds an index of the given points over grid. Point i is
// addressed as id i in every other method. Every availability window
// starts as (-Inf, +Inf), i.e. always available; narrow it with SetSpan.
func NewIndex(grid *geo.Grid, locs []geo.Point) *Index {
	ix := NewSparseIndex(grid, len(locs))
	for id, p := range locs {
		ix.Add(id, p)
	}
	return ix
}

// NewSparseIndex allocates an index with id space [0, n) over grid in
// which every id starts absent: queries visit nothing until points are
// inserted with Add. Zone shards use this shape — each shard allocates
// the full fleet id space but only ever inserts the drivers currently
// located in its zone.
func NewSparseIndex(grid *geo.Grid, n int) *Index {
	h, w := grid.CellSpanKm()
	// Derive the longitude scale from the same conservative cell width
	// the ring-pruning bound uses, so the two can never drift apart: one
	// cell spans (lonSpan/Cols) degrees and w kilometers.
	kmPerLon := w * float64(grid.Cols) / (grid.Box.MaxLon - grid.Box.MinLon)
	ix := &Index{
		grid:      grid,
		loc:       make([]geo.Point, n),
		px:        make([]float64, n),
		py:        make([]float64, n),
		freeAt:    make([]float64, n),
		retireAt:  make([]float64, n),
		cell:      make([]int, n),
		slot:      make([]int, n),
		bucket:    make([][]int, grid.NumCells()),
		minSpanKm: min(h, w),
		kmPerLon:  kmPerLon,
	}
	for id := 0; id < n; id++ {
		ix.freeAt[id] = math.Inf(-1)
		ix.retireAt[id] = math.Inf(1)
		ix.cell[id] = absentCell
	}
	return ix
}

// Len returns the size of the id space (present or not).
func (ix *Index) Len() int { return len(ix.loc) }

// Members returns the number of currently present points.
func (ix *Index) Members() int { return ix.members }

// Contains reports whether id is currently present in the index.
func (ix *Index) Contains(id int) bool {
	ix.checkID(id)
	return ix.cell[id] != absentCell
}

// Location returns the current location of id.
func (ix *Index) Location(id int) geo.Point { return ix.loc[id] }

func (ix *Index) checkID(id int) {
	if id < 0 || id >= len(ix.loc) {
		panic(fmt.Sprintf("spatial: id %d out of range [0,%d)", id, len(ix.loc)))
	}
}

// Add inserts the absent id at location p. The id's availability window
// is preserved across Remove/Add cycles. It panics if id is already
// present — membership bugs (a driver indexed by two zone shards at
// once) must not pass silently.
func (ix *Index) Add(id int, p geo.Point) {
	ix.checkID(id)
	if ix.cell[id] != absentCell {
		panic(fmt.Sprintf("spatial: Add of already-present id %d", id))
	}
	ix.loc[id] = p
	ix.px[id], ix.py[id] = ix.project(p)
	c := ix.grid.CellOf(p)
	ix.cell[id] = c
	ix.slot[id] = len(ix.bucket[c])
	ix.bucket[c] = append(ix.bucket[c], id)
	ix.members++
}

// Remove detaches id from the index (driver retirement, or migration to
// another zone shard): subsequent queries never visit it. The id keeps
// its slot in the id space and may be re-inserted with Add. It panics if
// id is absent.
func (ix *Index) Remove(id int) {
	ix.checkID(id)
	old := ix.cell[id]
	if old == absentCell {
		panic(fmt.Sprintf("spatial: Remove of absent id %d", id))
	}
	// Swap-remove from the bucket.
	b := ix.bucket[old]
	s := ix.slot[id]
	last := len(b) - 1
	b[s] = b[last]
	ix.slot[b[s]] = s
	ix.bucket[old] = b[:last]
	ix.cell[id] = absentCell
	ix.members--
}

// Move updates id's location, rebucketing it if it crossed a cell
// boundary. It panics if id is absent.
func (ix *Index) Move(id int, p geo.Point) {
	ix.checkID(id)
	old := ix.cell[id]
	if old == absentCell {
		panic(fmt.Sprintf("spatial: Move of absent id %d", id))
	}
	ix.loc[id] = p
	ix.px[id], ix.py[id] = ix.project(p)
	c := ix.grid.CellOf(p)
	if c == old {
		return
	}
	// Swap-remove from the old bucket.
	b := ix.bucket[old]
	s := ix.slot[id]
	last := len(b) - 1
	b[s] = b[last]
	ix.slot[b[s]] = s
	ix.bucket[old] = b[:last]

	ix.cell[id] = c
	ix.slot[id] = len(ix.bucket[c])
	ix.bucket[c] = append(ix.bucket[c], id)
}

// SetSpan sets id's availability window: freeAt is the earliest time the
// point can start moving, retireAt the time it stops being available.
func (ix *Index) SetSpan(id int, freeAt, retireAt float64) {
	ix.checkID(id)
	ix.freeAt[id] = freeAt
	ix.retireAt[id] = retireAt
}

// Near calls visit for every point whose equirectangular distance to p,
// scaled by Safety, is within radiusKm — a superset of the points truly
// within radiusKm. Availability windows are ignored. Visit order is
// unspecified (it follows ring and bucket order, both of which depend on
// mutation history); callers that need a canonical order must sort the
// ids they collect.
func (ix *Index) Near(p geo.Point, radiusKm float64, visit func(id int)) {
	if radiusKm < 0 {
		return
	}
	qx, qy := ix.project(p)
	limitSq := (radiusKm / Safety) * (radiusKm / Safety)
	ix.query(p, radiusKm, func(id int) bool {
		dx, dy := ix.px[id]-qx, ix.py[id]-qy
		return dx*dx+dy*dy <= limitSq
	}, visit)
}

// NearReachable calls visit for every point that could move from its
// current location to p by time byTime: it retires no earlier than
// minRetire, and traveling at speedKmh from the later of its free time
// and now leaves enough budget to cover the (Safety-scaled
// equirectangular) distance. The caller supplies speedKmh as an upper
// bound on any point's true speed, making the visit set a superset of
// the truly reachable points; exact feasibility stays with the caller.
func (ix *Index) NearReachable(p geo.Point, speedKmh, byTime, now, minRetire float64, visit func(id int)) {
	if speedKmh <= 0 || byTime < now {
		return
	}
	radiusKm := speedKmh * (byTime - now) / 3600
	qx, qy := ix.project(p)
	ix.query(p, radiusKm, func(id int) bool {
		// Availability prunes first: on a day-long market most of the
		// fleet is off shift or locked, and these are float compares.
		if ix.retireAt[id] < minRetire {
			return false
		}
		depart := ix.freeAt[id]
		if depart < now {
			depart = now
		}
		if depart > byTime {
			return false
		}
		// Compare travel time at the fleet-max speed against the point's
		// own remaining budget, using the Safety-discounted planar
		// distance lower bound (squared, to avoid the square root).
		budgetKm := speedKmh * (byTime - depart) / 3600 / Safety
		dx, dy := ix.px[id]-qx, ix.py[id]-qy
		return dx*dx+dy*dy <= budgetKm*budgetKm
	}, visit)
}

// query expands cell rings around p out to ringRadiusKm and calls visit
// for every point accepted by the predicate.
func (ix *Index) query(p geo.Point, ringRadiusKm float64, accept func(id int) bool, visit func(id int)) {
	if ringRadiusKm < 0 {
		return
	}
	center := ix.grid.CellOf(p)
	crow, ccol := center/ix.grid.Cols, center%ix.grid.Cols
	maxRing := ix.grid.Rows
	if ix.grid.Cols > maxRing {
		maxRing = ix.grid.Cols
	}
	for r := 0; r <= maxRing; r++ {
		// Every point in a ring-r cell is at least (r-1) cell spans from
		// any point in the center cell; beyond the radius, all farther
		// rings are out too.
		if r > 1 && float64(r-1)*ix.minSpanKm*Safety > ringRadiusKm {
			break
		}
		ix.visitRing(crow, ccol, r, accept, visit)
	}
}

// visitRing scans the cells at Chebyshev distance r from (crow, ccol).
func (ix *Index) visitRing(crow, ccol, r int, accept func(id int) bool, visit func(id int)) {
	if r == 0 {
		ix.visitCell(crow, ccol, accept, visit)
		return
	}
	for dc := -r; dc <= r; dc++ { // top and bottom edges
		ix.visitCell(crow-r, ccol+dc, accept, visit)
		ix.visitCell(crow+r, ccol+dc, accept, visit)
	}
	for dr := -r + 1; dr <= r-1; dr++ { // left and right edges, corners done
		ix.visitCell(crow+dr, ccol-r, accept, visit)
		ix.visitCell(crow+dr, ccol+r, accept, visit)
	}
}

func (ix *Index) visitCell(row, col int, accept func(id int) bool, visit func(id int)) {
	if row < 0 || row >= ix.grid.Rows || col < 0 || col >= ix.grid.Cols {
		return
	}
	for _, id := range ix.bucket[row*ix.grid.Cols+col] {
		if accept(id) {
			visit(id)
		}
	}
}
