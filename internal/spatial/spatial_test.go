package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
)

func randomPoints(rng *rand.Rand, n int, box geo.BoundingBox) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = box.Lerp(rng.Float64(), rng.Float64())
	}
	return pts
}

// collect gathers Near's visit set in sorted order.
func collect(ix *Index, p geo.Point, radiusKm float64) []int {
	var ids []int
	ix.Near(p, radiusKm, func(id int) { ids = append(ids, id) })
	sort.Ints(ids)
	return ids
}

// TestNearConservative is the index's core contract: no point within the
// query radius (true equirectangular distance) is ever missed, for grids
// of very different granularities.
func TestNearConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 300, geo.PortoBox)
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {16, 16}, {64, 64}} {
		ix := NewIndex(geo.NewGrid(geo.PortoBox, dims[0], dims[1]), pts)
		for q := 0; q < 50; q++ {
			query := geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
			radius := rng.Float64() * 8 // up to ~8 km
			got := collect(ix, query, radius)
			seen := make(map[int]bool, len(got))
			for _, id := range got {
				if seen[id] {
					t.Fatalf("grid %v: id %d visited twice", dims, id)
				}
				seen[id] = true
			}
			for id, p := range pts {
				if geo.Equirectangular(p, query) <= radius && !seen[id] {
					t.Fatalf("grid %v: point %d at %.3f km missed by radius %.3f query",
						dims, id, geo.Equirectangular(p, query), radius)
				}
			}
		}
	}
}

// TestNearAfterMoves checks that a long mutation history leaves the index
// answering queries exactly like a fresh index over the final locations.
func TestNearAfterMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 200, geo.PortoBox)
	ix := NewIndex(geo.NewGrid(geo.PortoBox, 12, 12), pts)

	cur := append([]geo.Point(nil), pts...)
	for step := 0; step < 2000; step++ {
		id := rng.Intn(len(cur))
		cur[id] = geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
		ix.Move(id, cur[id])
	}
	fresh := NewIndex(geo.NewGrid(geo.PortoBox, 12, 12), cur)
	for q := 0; q < 40; q++ {
		query := geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
		radius := rng.Float64() * 5
		got, want := collect(ix, query, radius), collect(fresh, query, radius)
		if len(got) != len(want) {
			t.Fatalf("query %d: mutated index returned %d ids, fresh %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: id sets diverge at %d: %d vs %d", q, i, got[i], want[i])
			}
		}
	}
	for id := range cur {
		if ix.Location(id) != cur[id] {
			t.Fatalf("id %d location stale", id)
		}
	}
}

// TestNearOutOfBox: points and queries outside the grid box are clamped
// into boundary cells; conservativeness must survive that.
func TestNearOutOfBox(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// A box covering only the middle of the sampled region.
	inner := geo.BoundingBox{MinLat: 41.14, MinLon: -8.64, MaxLat: 41.20, MaxLon: -8.56}
	outer := geo.PortoBox
	pts := randomPoints(rng, 250, outer)
	ix := NewIndex(geo.NewGrid(inner, 8, 8), pts)
	for q := 0; q < 60; q++ {
		query := outer.Lerp(rng.Float64(), rng.Float64())
		radius := rng.Float64() * 10
		got := collect(ix, query, radius)
		seen := make(map[int]bool, len(got))
		for _, id := range got {
			seen[id] = true
		}
		for id, p := range pts {
			if geo.Equirectangular(p, query) <= radius && !seen[id] {
				t.Fatalf("out-of-box point %d at %.3f km missed by radius %.3f query",
					id, geo.Equirectangular(p, query), radius)
			}
		}
	}
}

// TestNearReachableConservative brute-force-checks the availability
// query: any point that could truly reach the pickup in time — by
// equirectangular distance at its own (slower) speed, departing at
// max(freeAt, now), retiring late enough — must be visited.
func TestNearReachableConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 300, geo.PortoBox)
	ix := NewIndex(geo.NewGrid(geo.PortoBox, 10, 14), pts)

	free := make([]float64, len(pts))
	retire := make([]float64, len(pts))
	speed := make([]float64, len(pts))
	const maxSpeed = 60.0
	for id := range pts {
		free[id] = rng.Float64() * 3600
		retire[id] = free[id] + rng.Float64()*7200
		speed[id] = 10 + rng.Float64()*(maxSpeed-10)
		ix.SetSpan(id, free[id], retire[id])
	}

	for q := 0; q < 80; q++ {
		query := geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
		now := rng.Float64() * 3600
		byTime := now + rng.Float64()*1200
		minRetire := byTime + rng.Float64()*1800

		seen := make(map[int]bool)
		ix.NearReachable(query, maxSpeed, byTime, now, minRetire, func(id int) { seen[id] = true })

		for id, p := range pts {
			if retire[id] < minRetire {
				continue
			}
			depart := free[id]
			if depart < now {
				depart = now
			}
			arrive := depart + geo.Equirectangular(p, query)/speed[id]*3600
			if arrive <= byTime && !seen[id] {
				t.Fatalf("query %d: point %d arrives %.1f <= %.1f yet was pruned", q, id, arrive, byTime)
			}
		}
	}

	// Degenerate inputs must visit nothing rather than misbehave.
	none := 0
	ix.NearReachable(geo.PortoBox.Center(), 0, 100, 0, 0, func(int) { none++ })
	ix.NearReachable(geo.PortoBox.Center(), maxSpeed, 50, 100, 0, func(int) { none++ })
	if none != 0 {
		t.Fatalf("degenerate NearReachable queries visited %d points", none)
	}
}

func TestNearDegenerate(t *testing.T) {
	pts := []geo.Point{geo.PortoBox.Center()}
	ix := NewIndex(geo.NewGrid(geo.PortoBox, 4, 4), pts)
	if got := collect(ix, geo.PortoBox.Center(), -1); len(got) != 0 {
		t.Fatalf("negative radius visited %v", got)
	}
	if got := collect(ix, geo.PortoBox.Center(), 0); len(got) != 1 {
		t.Fatalf("zero radius at the point itself visited %v, want [0]", got)
	}
	empty := NewIndex(geo.NewGrid(geo.PortoBox, 4, 4), nil)
	if empty.Len() != 0 {
		t.Fatalf("empty index Len = %d", empty.Len())
	}
	if got := collect(empty, geo.PortoBox.Center(), 100); len(got) != 0 {
		t.Fatalf("empty index visited %v", got)
	}
}

// TestRemoveAndAdd: removed points disappear from every query, re-added
// points reappear, and a churned index answers exactly like a fresh
// index over the surviving membership.
func TestRemoveAndAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 200, geo.PortoBox)
	ix := NewIndex(geo.NewGrid(geo.PortoBox, 10, 10), pts)

	present := make([]bool, len(pts))
	for i := range present {
		present[i] = true
	}
	// Churn: random removes, re-adds (sometimes at a new location) and
	// moves, then compare against a fresh sparse index of the survivors.
	for step := 0; step < 3000; step++ {
		id := rng.Intn(len(pts))
		switch {
		case present[id] && rng.Float64() < 0.5:
			ix.Remove(id)
			present[id] = false
		case !present[id]:
			pts[id] = geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
			ix.Add(id, pts[id])
			present[id] = true
		default:
			pts[id] = geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
			ix.Move(id, pts[id])
		}
	}
	fresh := NewSparseIndex(geo.NewGrid(geo.PortoBox, 10, 10), len(pts))
	want := 0
	for id, ok := range present {
		if ok {
			fresh.Add(id, pts[id])
			want++
		}
	}
	if ix.Members() != want {
		t.Fatalf("Members() = %d after churn, want %d", ix.Members(), want)
	}
	for q := 0; q < 60; q++ {
		query := geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
		radius := rng.Float64() * 6
		got, exp := collect(ix, query, radius), collect(fresh, query, radius)
		if len(got) != len(exp) {
			t.Fatalf("query %d: churned index returned %d ids, fresh %d", q, len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("query %d: id sets diverge: %v vs %v", q, got, exp)
			}
			if !present[got[i]] {
				t.Fatalf("query %d: visited removed id %d", q, got[i])
			}
		}
	}
	for id, ok := range present {
		if ix.Contains(id) != ok {
			t.Fatalf("Contains(%d) = %v, want %v", id, ix.Contains(id), ok)
		}
	}
}

// TestSpanSurvivesRemoveAdd: availability windows are per-id state, not
// per-membership — a driver migrating between zone shards keeps hers.
func TestSpanSurvivesRemoveAdd(t *testing.T) {
	ix := NewSparseIndex(geo.NewGrid(geo.PortoBox, 4, 4), 2)
	p := geo.PortoBox.Center()
	ix.Add(0, p)
	ix.SetSpan(0, 100, 200)
	ix.Remove(0)
	ix.Add(0, p)
	seen := 0
	// Window [100, 200): reachable for a dispatch at now=150, byTime=160.
	ix.NearReachable(p, 30, 160, 150, 200, func(int) { seen++ })
	if seen != 1 {
		t.Fatalf("point with preserved span visited %d times, want 1", seen)
	}
	seen = 0
	// retireAt 200 < minRetire 300: pruned.
	ix.NearReachable(p, 30, 160, 150, 300, func(int) { seen++ })
	if seen != 0 {
		t.Fatalf("retired point visited %d times, want 0", seen)
	}
}

func TestSparseMembershipPanics(t *testing.T) {
	ix := NewSparseIndex(geo.NewGrid(geo.PortoBox, 2, 2), 3)
	p := geo.PortoBox.Center()
	ix.Add(1, p)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("double Add", func() { ix.Add(1, p) })
	mustPanic("Remove of absent id", func() { ix.Remove(0) })
	mustPanic("Move of absent id", func() { ix.Move(2, p) })
	mustPanic("Remove out of range", func() { ix.Remove(7) })
}

func TestMovePanicsOutOfRange(t *testing.T) {
	ix := NewIndex(geo.NewGrid(geo.PortoBox, 2, 2), randomPoints(rand.New(rand.NewSource(4)), 3, geo.PortoBox))
	defer func() {
		if recover() == nil {
			t.Fatal("Move(5) on a 3-point index did not panic")
		}
	}()
	ix.Move(5, geo.PortoBox.Center())
}
