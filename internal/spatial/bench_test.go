package spatial

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// Micro-benchmarks for the ring queries on the candidate-generation hot
// path: Near (pure radius) and NearReachable (radius plus availability
// pruning), at fleet sizes where the bucketed expansion either touches
// a handful of cells or degenerates toward a scan. CI runs these at
// -benchtime 1x as a bit-rot smoke.

// benchIndex builds an index of n points spread over the Porto box,
// with availability windows staggered so NearReachable prunes roughly
// half the fleet at the benchmark query times.
func benchIndex(n int) (*Index, []geo.Point) {
	rng := rand.New(rand.NewSource(5))
	box := geo.PortoBox
	grid := geo.NewGrid(box, 64, 64)
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
			Lon: box.MinLon + rng.Float64()*(box.MaxLon-box.MinLon),
		}
	}
	ix := NewIndex(grid, pts)
	for i := range pts {
		start := rng.Float64() * 43200
		ix.SetSpan(i, start, start+4*3600)
	}
	queries := make([]geo.Point, 256)
	for i := range queries {
		queries[i] = geo.Point{
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
			Lon: box.MinLon + rng.Float64()*(box.MaxLon-box.MinLon),
		}
	}
	return ix, queries
}

func BenchmarkRingQueries(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		ix, queries := benchIndex(n)
		for _, radius := range []float64{0.5, 2, 8} {
			b.Run(fmt.Sprintf("near/n=%d/r=%.1fkm", n, radius), func(b *testing.B) {
				b.ReportAllocs()
				hits := 0
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					ix.Near(q, radius, func(int) { hits++ })
				}
				_ = hits
			})
		}
		b.Run(fmt.Sprintf("near-reachable/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			hits := 0
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				now := float64(i%86400) / 86400 * 43200
				ix.NearReachable(q, 30, now+300, now, now, func(int) { hits++ })
			}
			_ = hits
		})
	}
}
