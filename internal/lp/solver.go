package lp

import (
	"errors"
	"math"
)

// This file is the reusable-arena façade over the simplex tableau. The
// package-level Solve builds a fresh tableau per call — fine for the
// occasional bound computation, hopeless for a solver that prices
// thousands of per-component LPs in one oracle run: the dense m×n
// working state would be reallocated and re-zeroed from the heap every
// time. A Solver owns one tableau whose backing arrays are grown to the
// high-water mark of the problems it sees and reused for every solve
// after that, the same pooling discipline matching.SparseSolver applies
// to window clearing.

// Solver carries the reusable working state of repeated LP solves. The
// zero value is ready to use; a Solver is not safe for concurrent
// Solve calls. Solutions returned by its methods alias the solver's
// arena: X and Duals are valid until the next solve and must be copied
// to be retained — the same ownership contract as
// matching.SparseSolver.Solve.
type Solver struct {
	t tableau
}

// Solve runs the two-phase primal simplex on p, reusing the solver's
// arena. Semantics match the package-level Solve exactly; only the
// allocation behavior and the Solution ownership differ.
func (s *Solver) Solve(p *Problem) (Solution, error) {
	return s.SolveWarm(p, nil)
}

// SolveWarm is Solve with a warm-start hint: before optimizing, the
// given structural columns are pivoted into the starting basis (in
// order, via the usual ratio test), so phase 2 begins at — or near —
// the vertex those columns describe instead of the all-slack origin.
// The canonical use is seeding a path-packing LP with an incumbent
// assignment's columns: re-proving or improving a good incumbent then
// costs a handful of pivots rather than a full climb from zero.
//
// The hint is best-effort and never affects the result, only the
// iteration count: columns that are already basic, out of range, or
// admit no valid pivot are skipped, and problems that need a phase 1
// (any GE/EQ row) ignore the hint entirely — a crash basis there could
// mask artificials and break the feasibility proof.
func (s *Solver) SolveWarm(p *Problem, warm []int) (Solution, error) {
	if p == nil || p.numVars == 0 {
		return Solution{}, errors.New("lp: empty problem")
	}
	s.t.init(p)
	if len(warm) > 0 && s.t.na == 0 {
		s.t.crashBasis(warm)
	}
	return s.t.solve(), nil
}

// crashBasis pivots the given structural columns into the basis before
// optimization. Each pivot row is chosen by the standard ratio test, so
// primal feasibility (rhs ≥ 0) is preserved; columns with no positive
// pivot candidate are skipped rather than forced.
func (t *tableau) crashBasis(warm []int) {
	for _, j := range warm {
		if j < 0 || j >= t.nv || t.inBasis(j) {
			continue
		}
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][j] > eps {
				ratio := t.rhs[i] / t.a[i][j]
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && leave >= 0 && t.basis[i] < t.basis[leave]) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			continue
		}
		t.pivot(leave, j)
	}
}

// growFloats returns s resized (never shrunk) to n without zeroing:
// every user initializes the entries it owns.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]float64, n-cap(s))...)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]int, n-cap(s))...)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]bool, n-cap(s))...)
	}
	return s[:n]
}

func growRows(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		s = append(s[:cap(s)], make([][]float64, n-cap(s))...)
	}
	return s[:n]
}
