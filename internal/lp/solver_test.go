package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomLE builds a bounded random all-LE maximization problem — the
// shape every path-packing LP in the oracle rail takes (no phase 1
// needed, rhs ≥ 0).
func randomLE(rng *rand.Rand) *Problem {
	nv := 2 + rng.Intn(8)
	nr := 1 + rng.Intn(6)
	p := NewProblem(nv)
	for j := 0; j < nv; j++ {
		p.SetObjective(j, rng.Float64()*4-1)
	}
	for i := 0; i < nr; i++ {
		entries := make([]Entry, nv)
		for j := 0; j < nv; j++ {
			entries[j] = Entry{j, rng.Float64()}
		}
		p.AddRow(LE, 1+rng.Float64()*5, entries...)
	}
	for j := 0; j < nv; j++ {
		p.AddRow(LE, 10, Entry{j, 1})
	}
	return p
}

// TestSolverMatchesSolve reuses one Solver across many random problems
// of varying shapes and demands bitwise agreement with the fresh-
// tableau package Solve: the arena must never leak state between
// solves.
func TestSolverMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var s Solver
	for trial := 0; trial < 200; trial++ {
		p := randomLE(rng)
		want, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		got, err := s.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: Solver.Solve: %v", trial, err)
		}
		if got.Status != want.Status || got.Objective != want.Objective || got.Iters != want.Iters {
			t.Fatalf("trial %d: got (%v, %v, %d iters), want (%v, %v, %d iters)",
				trial, got.Status, got.Objective, got.Iters, want.Status, want.Objective, want.Iters)
		}
		if len(got.X) != len(want.X) {
			t.Fatalf("trial %d: |X| = %d, want %d", trial, len(got.X), len(want.X))
		}
		for j := range want.X {
			if got.X[j] != want.X[j] {
				t.Fatalf("trial %d: X[%d] = %v, want %v", trial, j, got.X[j], want.X[j])
			}
		}
		for i := range want.Duals {
			if got.Duals[i] != want.Duals[i] {
				t.Fatalf("trial %d: Duals[%d] = %v, want %v", trial, i, got.Duals[i], want.Duals[i])
			}
		}
	}
}

// TestSolverMatchesSolvePhase1 covers the GE/EQ shapes that do need a
// phase 1, where SolveWarm must ignore warm hints but still agree with
// the fresh path.
func TestSolverMatchesSolvePhase1(t *testing.T) {
	var s Solver
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 1)
	p.AddRow(EQ, 3, Entry{0, 1}, Entry{1, 1})
	p.AddRow(LE, 2, Entry{0, 1})
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SolveWarm(p, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || got.Objective != want.Objective {
		t.Fatalf("got (%v, %v), want (%v, %v)", got.Status, got.Objective, want.Status, want.Objective)
	}
}

// TestSolveWarmSameOptimum sweeps warm hints over random all-LE
// problems: warm starting may change the pivot path but never the
// optimum (up to simplex tolerance) or the status.
func TestSolveWarmSameOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	var cold, warm Solver
	for trial := 0; trial < 200; trial++ {
		p := randomLE(rng)
		want, err := cold.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		hint := make([]int, 0, p.NumVars())
		for j := 0; j < p.NumVars(); j++ {
			if rng.Intn(2) == 0 {
				hint = append(hint, j)
			}
		}
		hint = append(hint, -1, p.NumVars()+3) // out-of-range entries must be skipped
		got, err := warm.SolveWarm(p, hint)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: status %v, want %v (hint %v)", trial, got.Status, want.Status, hint)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-7*(1+math.Abs(want.Objective)) {
			t.Fatalf("trial %d: warm objective %v, cold %v (hint %v)", trial, got.Objective, want.Objective, hint)
		}
	}
}

// TestSolveWarmPacking warm-starts a path-packing-shaped LP (binary
// coefficient rows, one per driver and per task) from its known optimal
// columns and checks it converges with fewer iterations than cold.
func TestSolveWarmPacking(t *testing.T) {
	// 3 drivers × 3 paths each; path j of driver d covers task j and
	// has value 1 + small driver-dependent tilt so column d*3+d is
	// uniquely optimal for task d.
	const n = 3
	build := func() *Problem {
		p := NewProblem(n * n)
		for d := 0; d < n; d++ {
			for j := 0; j < n; j++ {
				col := d*n + j
				p.SetObjective(col, 1+0.1*float64((d+j)%n))
			}
		}
		for d := 0; d < n; d++ {
			entries := make([]Entry, n)
			for j := 0; j < n; j++ {
				entries[j] = Entry{d*n + j, 1}
			}
			p.AddRow(LE, 1, entries...)
		}
		for j := 0; j < n; j++ {
			entries := make([]Entry, n)
			for d := 0; d < n; d++ {
				entries[d] = Entry{d*n + j, 1}
			}
			p.AddRow(LE, 1, entries...)
		}
		return p
	}
	var s Solver
	coldSol, err := s.Solve(build())
	if err != nil {
		t.Fatal(err)
	}
	// Optimal columns: for each driver d the path j maximizing the tilt.
	warmCols := []int{0*n + (n - 1), 1*n + (n - 2), 2*n + (n - 3)}
	warmSol, err := s.SolveWarm(build(), warmCols)
	if err != nil {
		t.Fatal(err)
	}
	if warmSol.Status != Optimal || coldSol.Status != Optimal {
		t.Fatalf("status: warm %v cold %v", warmSol.Status, coldSol.Status)
	}
	if math.Abs(warmSol.Objective-coldSol.Objective) > 1e-9 {
		t.Fatalf("warm objective %v != cold %v", warmSol.Objective, coldSol.Objective)
	}
	if warmSol.Iters > coldSol.Iters {
		t.Fatalf("warm start took %d iters, cold %d — hint made it worse", warmSol.Iters, coldSol.Iters)
	}
}

// TestSolverOwnedBuffers documents the aliasing contract: the X slice
// of one solve is overwritten by the next.
func TestSolverOwnedBuffers(t *testing.T) {
	var s Solver
	p1 := NewProblem(1)
	p1.SetObjective(0, 1)
	p1.AddRow(LE, 5, Entry{0, 1})
	sol1, err := s.Solve(p1)
	if err != nil {
		t.Fatal(err)
	}
	x := sol1.X
	if x[0] != 5 {
		t.Fatalf("x = %v, want 5", x[0])
	}
	p2 := NewProblem(1)
	p2.SetObjective(0, 1)
	p2.AddRow(LE, 2, Entry{0, 1})
	if _, err := s.Solve(p2); err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 {
		t.Fatalf("buffer not reused: x = %v after second solve, want 2", x[0])
	}
}

func TestSolverEmptyProblem(t *testing.T) {
	var s Solver
	if _, err := s.Solve(nil); err == nil {
		t.Fatal("nil problem: want error")
	}
}

// TestSolverSteadyStateAllocs pins the arena promise: after warm-up,
// re-solving same-shape problems allocates nothing.
func TestSolverSteadyStateAllocs(t *testing.T) {
	var s Solver
	p := randomLE(rand.New(rand.NewSource(3)))
	if _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := s.Solve(p); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Solve allocates %v per run, want 0", avg)
	}
}
