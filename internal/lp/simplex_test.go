package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-6

func approx(t *testing.T, got, want, tolerance float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tolerance {
		t.Fatalf("%s = %g, want %g (±%g)", what, got, want, tolerance)
	}
}

func mustSolve(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSolveSimpleLE(t *testing.T) {
	// max 3x + 2y s.t. x+y ≤ 4, x+3y ≤ 6 → x=4, y=0, obj=12.
	p := NewProblem(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.AddRow(LE, 4, Entry{0, 1}, Entry{1, 1})
	p.AddRow(LE, 6, Entry{0, 1}, Entry{1, 3})
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	approx(t, sol.Objective, 12, tol, "objective")
	approx(t, sol.X[0], 4, tol, "x")
	approx(t, sol.X[1], 0, tol, "y")
}

func TestSolveInteriorOptimum(t *testing.T) {
	// max x + y s.t. x ≤ 2, y ≤ 3, x+y ≤ 4 → obj 4 on a face.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddRow(LE, 2, Entry{0, 1})
	p.AddRow(LE, 3, Entry{1, 1})
	p.AddRow(LE, 4, Entry{0, 1}, Entry{1, 1})
	sol := mustSolve(t, p)
	approx(t, sol.Objective, 4, tol, "objective")
	approx(t, sol.X[0]+sol.X[1], 4, tol, "x+y")
}

func TestSolveEquality(t *testing.T) {
	// max 2x + y s.t. x + y = 3, x ≤ 2 → x=2, y=1, obj=5.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 1)
	p.AddRow(EQ, 3, Entry{0, 1}, Entry{1, 1})
	p.AddRow(LE, 2, Entry{0, 1})
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	approx(t, sol.Objective, 5, tol, "objective")
	approx(t, sol.X[0], 2, tol, "x")
	approx(t, sol.X[1], 1, tol, "y")
}

func TestSolveGE(t *testing.T) {
	// max -x - y s.t. x + y ≥ 2, i.e. minimize x+y ≥ 2 → obj = -2.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddRow(GE, 2, Entry{0, 1}, Entry{1, 1})
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	approx(t, sol.Objective, -2, tol, "objective")
}

func TestSolveNegativeRHS(t *testing.T) {
	// max x s.t. -x ≥ -5 (i.e. x ≤ 5).
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddRow(GE, -5, Entry{0, -1})
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	approx(t, sol.Objective, 5, tol, "objective")
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2 is infeasible.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddRow(LE, 1, Entry{0, 1})
	p.AddRow(GE, 2, Entry{0, 1})
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// max x with only x ≥ 1.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddRow(GE, 1, Entry{0, 1})
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveZeroObjective(t *testing.T) {
	// A pure feasibility problem: any feasible point, objective 0.
	p := NewProblem(2)
	p.AddRow(EQ, 1, Entry{0, 1}, Entry{1, 1})
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	approx(t, sol.Objective, 0, tol, "objective")
	approx(t, sol.X[0]+sol.X[1], 1, tol, "x+y")
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex: three constraints through one point.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddRow(LE, 1, Entry{0, 1})
	p.AddRow(LE, 1, Entry{1, 1})
	p.AddRow(LE, 2, Entry{0, 1}, Entry{1, 1})
	sol := mustSolve(t, p)
	approx(t, sol.Objective, 2, tol, "objective")
}

func TestDualsLE(t *testing.T) {
	// max 3x + 2y s.t. x+y ≤ 4 (dual y1), x+3y ≤ 6 (dual y2).
	// Optimal basis x=4: y1 = 3, y2 = 0.
	p := NewProblem(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.AddRow(LE, 4, Entry{0, 1}, Entry{1, 1})
	p.AddRow(LE, 6, Entry{0, 1}, Entry{1, 3})
	sol := mustSolve(t, p)
	approx(t, sol.Duals[0], 3, tol, "dual 0")
	approx(t, sol.Duals[1], 0, tol, "dual 1")
}

func TestDualObjectiveMatchesPrimal(t *testing.T) {
	// Strong duality: b·y == c·x at optimum, on a fixed medium LP.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		nv := 2 + rng.Intn(5)
		nr := 1 + rng.Intn(5)
		p := NewProblem(nv)
		for j := 0; j < nv; j++ {
			p.SetObjective(j, rng.Float64()*4-1)
		}
		rhs := make([]float64, nr)
		for i := 0; i < nr; i++ {
			entries := make([]Entry, nv)
			for j := 0; j < nv; j++ {
				entries[j] = Entry{j, rng.Float64()} // nonneg coeffs keep it bounded-ish
			}
			rhs[i] = 1 + rng.Float64()*5
			p.AddRow(LE, rhs[i], entries...)
		}
		// Add a box to guarantee boundedness.
		for j := 0; j < nv; j++ {
			p.AddRow(LE, 10, Entry{j, 1})
		}
		sol := mustSolve(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		var dualObj float64
		for i := 0; i < nr; i++ {
			dualObj += rhs[i] * sol.Duals[i]
		}
		for j := 0; j < nv; j++ {
			dualObj += 10 * sol.Duals[nr+j]
		}
		approx(t, dualObj, sol.Objective, 1e-5, "strong duality")
	}
}

func TestDualsAreSignFeasible(t *testing.T) {
	// For a max problem: duals of ≤ rows are ≥ 0, of ≥ rows are ≤ 0.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, -2)
	p.AddRow(LE, 3, Entry{0, 1}, Entry{1, 1})
	p.AddRow(GE, 1, Entry{0, 1})
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Duals[0] < -tol {
		t.Errorf("dual of ≤ row = %g, want ≥ 0", sol.Duals[0])
	}
	if sol.Duals[1] > tol {
		t.Errorf("dual of ≥ row = %g, want ≤ 0", sol.Duals[1])
	}
}

func TestAddVarGrowsProblem(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, 1)
	r := p.AddRow(LE, 5, Entry{0, 1})
	col := p.AddVar(3)
	if col != 1 {
		t.Fatalf("AddVar col = %d, want 1", col)
	}
	p.SetCoeff(r, col, 1)
	sol := mustSolve(t, p)
	// max x + 3y s.t. x + y ≤ 5 → y=5, obj 15.
	approx(t, sol.Objective, 15, tol, "objective")
	approx(t, sol.X[1], 5, tol, "new var")
}

// TestRandomLPAgainstVertexEnumeration cross-checks the simplex against
// brute-force vertex enumeration on random 2-variable LPs, where every
// optimum lies at an intersection of two constraint lines or axes.
func TestRandomLPAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nr := 2 + rng.Intn(4)
		type line struct{ a, b, c float64 } // ax + by ≤ c
		lines := make([]line, nr)
		p := NewProblem(2)
		c0 := rng.Float64()*4 - 2
		c1 := rng.Float64()*4 - 2
		p.SetObjective(0, c0)
		p.SetObjective(1, c1)
		for i := range lines {
			lines[i] = line{rng.Float64() * 2, rng.Float64() * 2, 1 + rng.Float64()*4}
			p.AddRow(LE, lines[i].c, Entry{0, lines[i].a}, Entry{1, lines[i].b})
		}
		// Axes as implicit constraints x,y ≥ 0 plus a box for boundedness.
		lines = append(lines, line{1, 0, 20}, line{0, 1, 20})
		p.AddRow(LE, 20, Entry{0, 1})
		p.AddRow(LE, 20, Entry{1, 1})

		sol := mustSolve(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}

		feasible := func(x, y float64) bool {
			if x < -tol || y < -tol {
				return false
			}
			for _, l := range lines {
				if l.a*x+l.b*y > l.c+1e-7 {
					return false
				}
			}
			return true
		}
		best := 0.0 // origin is always feasible
		// Enumerate pairwise intersections (incl. axes).
		all := append([]line{{1, 0, 0}, {0, 1, 0}}, lines...)
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				det := all[i].a*all[j].b - all[j].a*all[i].b
				if math.Abs(det) < 1e-12 {
					continue
				}
				x := (all[i].c*all[j].b - all[j].c*all[i].b) / det
				y := (all[i].a*all[j].c - all[j].a*all[i].c) / det
				if feasible(x, y) {
					if v := c0*x + c1*y; v > best {
						best = v
					}
				}
			}
		}
		approx(t, sol.Objective, best, 1e-5, "vs vertex enumeration")
	}
}

// TestQuickSolutionAlwaysFeasible property: whenever the solver reports
// Optimal, the returned point satisfies every constraint.
func TestQuickSolutionAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 1 + rng.Intn(6)
		nr := 1 + rng.Intn(6)
		p := NewProblem(nv)
		type rrow struct {
			coeffs []float64
			sense  Sense
			rhs    float64
		}
		var rows []rrow
		for j := 0; j < nv; j++ {
			p.SetObjective(j, rng.Float64()*2-1)
		}
		for i := 0; i < nr; i++ {
			coeffs := make([]float64, nv)
			entries := make([]Entry, nv)
			for j := 0; j < nv; j++ {
				coeffs[j] = rng.Float64()*2 - 0.5
				entries[j] = Entry{j, coeffs[j]}
			}
			sense := Sense(rng.Intn(2)) // LE or GE
			rhs := rng.Float64()*6 - 1
			rows = append(rows, rrow{coeffs, sense, rhs})
			p.AddRow(sense, rhs, entries...)
		}
		for j := 0; j < nv; j++ {
			p.AddRow(LE, 8, Entry{j, 1})
			rows = append(rows, rrow{unit(nv, j), LE, 8})
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return true // infeasible/unbounded is a legal outcome
		}
		for _, r := range rows {
			var lhs float64
			for j, c := range r.coeffs {
				lhs += c * sol.X[j]
			}
			switch r.sense {
			case LE:
				if lhs > r.rhs+1e-6 {
					return false
				}
			case GE:
				if lhs < r.rhs-1e-6 {
					return false
				}
			}
		}
		for _, x := range sol.X {
			if x < -1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func unit(n, j int) []float64 {
	u := make([]float64, n)
	u[j] = 1
	return u
}

func TestSenseString(t *testing.T) {
	for _, tc := range []struct {
		s    Sense
		want string
	}{{LE, "<="}, {GE, ">="}, {EQ, "=="}} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("Sense(%d).String() = %q, want %q", tc.s, got, tc.want)
		}
	}
}

func TestStatusString(t *testing.T) {
	for _, tc := range []struct {
		s    Status
		want string
	}{{Optimal, "optimal"}, {Infeasible, "infeasible"}, {Unbounded, "unbounded"}, {IterLimit, "iteration-limit"}} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("Status.String() = %q, want %q", got, tc.want)
		}
	}
}
