package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveBinaryKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c ≤ 2 (binary) → a,b → 16.
	p := NewProblem(3)
	p.SetObjective(0, 10)
	p.SetObjective(1, 6)
	p.SetObjective(2, 4)
	p.AddRow(LE, 2, Entry{0, 1}, Entry{1, 1}, Entry{2, 1})
	res, err := SolveBinary(p, []int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.Objective, 16, tol, "objective")
	approx(t, res.X[0], 1, intTol*10, "a")
	approx(t, res.X[1], 1, intTol*10, "b")
	approx(t, res.X[2], 0, intTol*10, "c")
}

func TestSolveBinaryFractionalRelaxation(t *testing.T) {
	// Classic: max x+y s.t. 2x+2y ≤ 3 binary → LP gives 1.5, IP gives 1.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddRow(LE, 3, Entry{0, 2}, Entry{1, 2})
	res, err := SolveBinary(p, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Objective, 1, tol, "objective")
	approx(t, res.RootBound, 1.5, tol, "root LP bound")
}

func TestSolveBinaryInfeasible(t *testing.T) {
	// x + y = 1.5 has no binary solution.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddRow(EQ, 1.5, Entry{0, 1}, Entry{1, 1})
	res, err := SolveBinary(p, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestSolveBinaryMixed(t *testing.T) {
	// Binary a plus continuous y: max 5a + y s.t. y ≤ 2 + 3a, y ≤ 4.
	// a=1 → y=4 → 9.
	p := NewProblem(2)
	p.SetObjective(0, 5)
	p.SetObjective(1, 1)
	p.AddRow(LE, 2, Entry{1, 1}, Entry{0, -3})
	p.AddRow(LE, 4, Entry{1, 1})
	res, err := SolveBinary(p, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Objective, 9, tol, "objective")
}

// TestSolveBinaryAgainstBruteForce cross-checks B&B against exhaustive
// enumeration on random small binary programs.
func TestSolveBinaryAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nv := 2 + rng.Intn(5) // up to 6 binaries
		nr := 1 + rng.Intn(4)
		p := NewProblem(nv)
		obj := make([]float64, nv)
		for j := range obj {
			obj[j] = rng.Float64()*10 - 3
			p.SetObjective(j, obj[j])
		}
		type crow struct {
			coeffs []float64
			rhs    float64
		}
		rows := make([]crow, nr)
		for i := range rows {
			coeffs := make([]float64, nv)
			entries := make([]Entry, nv)
			for j := range coeffs {
				coeffs[j] = rng.Float64()*4 - 1
				entries[j] = Entry{j, coeffs[j]}
			}
			rows[i] = crow{coeffs, rng.Float64() * float64(nv)}
			p.AddRow(LE, rows[i].rhs, entries...)
		}
		binary := make([]int, nv)
		for j := range binary {
			binary[j] = j
		}
		res, err := SolveBinary(p, binary, 0)
		if err != nil {
			t.Fatal(err)
		}

		best := math.Inf(-1)
		found := false
		for mask := 0; mask < 1<<nv; mask++ {
			ok := true
			for _, r := range rows {
				var lhs float64
				for j := 0; j < nv; j++ {
					if mask&(1<<j) != 0 {
						lhs += r.coeffs[j]
					}
				}
				if lhs > r.rhs+1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			found = true
			var v float64
			for j := 0; j < nv; j++ {
				if mask&(1<<j) != 0 {
					v += obj[j]
				}
			}
			if v > best {
				best = v
			}
		}
		if !found {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible, solver says %v", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		approx(t, res.Objective, best, 1e-5, "vs brute force")
		// Root LP bound must dominate the integral optimum.
		if res.RootBound < best-1e-6 {
			t.Fatalf("trial %d: root bound %g below IP optimum %g", trial, res.RootBound, best)
		}
	}
}

func TestSolveBinaryNodeCap(t *testing.T) {
	// With maxNodes=1 on a problem needing branching, expect IterLimit.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddRow(LE, 3, Entry{0, 2}, Entry{1, 2})
	res, err := SolveBinary(p, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != IterLimit {
		t.Fatalf("status %v, want iteration-limit", res.Status)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddRow(LE, 1, Entry{0, 1})
	q := p.Clone()
	q.SetObjective(0, 5)
	q.AddRow(LE, 9, Entry{1, 1})
	q.SetCoeff(0, 1, 7)
	if p.obj[0] != 1 {
		t.Errorf("clone mutated original objective: %v", p.obj)
	}
	if p.NumRows() != 1 {
		t.Errorf("clone mutated original rows: %d", p.NumRows())
	}
	if len(p.rows[0].entries) != 1 {
		t.Errorf("clone shares row storage with original")
	}
}
