// Package lp is a self-contained linear-programming toolkit: a dense
// two-phase primal simplex solver with dual extraction, and a
// branch-and-bound solver for binary integer programs built on top of
// it.
//
// The paper solves the relaxed problem Z_f (§III-E) and small exact
// instances Z* with CPLEX/MOSEK (§VI-B); this package is the stdlib-only
// substitute documented in DESIGN.md. It targets the problem sizes the
// framework produces: restricted-master LPs from column generation (a few
// thousand rows/columns) and small exact arc-formulation MILPs.
//
// Problems are stated as
//
//	maximize  c·x
//	subject to  a_i·x {≤,=,≥} b_i   for every row i
//	            x ≥ 0
//
// Variables are non-negative; upper bounds are expressed as rows.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x ≤ b
	GE              // a·x ≥ b
	EQ              // a·x = b
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Status is the outcome of a solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Entry is one nonzero coefficient of a constraint row.
type Entry struct {
	Col int
	Val float64
}

type row struct {
	entries []Entry
	sense   Sense
	rhs     float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create with NewProblem.
type Problem struct {
	numVars int
	obj     []float64
	rows    []row
}

// NewProblem returns an empty maximization problem with numVars
// non-negative variables, all with zero objective coefficient.
func NewProblem(numVars int) *Problem {
	if numVars <= 0 {
		panic(fmt.Sprintf("lp: non-positive variable count %d", numVars))
	}
	return &Problem{numVars: numVars, obj: make([]float64, numVars)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumRows returns the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjective sets the objective coefficient of variable col.
func (p *Problem) SetObjective(col int, val float64) {
	p.checkCol(col)
	p.obj[col] = val
}

// AddVar appends a new variable with the given objective coefficient and
// returns its column index. Column generation uses it to grow the
// restricted master.
func (p *Problem) AddVar(objCoeff float64) int {
	p.obj = append(p.obj, objCoeff)
	p.numVars++
	return p.numVars - 1
}

// SetCoeff sets (or adds) the coefficient of variable col in row r.
func (p *Problem) SetCoeff(r, col int, val float64) {
	if r < 0 || r >= len(p.rows) {
		panic(fmt.Sprintf("lp: row %d out of range [0,%d)", r, len(p.rows)))
	}
	p.checkCol(col)
	for i := range p.rows[r].entries {
		if p.rows[r].entries[i].Col == col {
			p.rows[r].entries[i].Val = val
			return
		}
	}
	p.rows[r].entries = append(p.rows[r].entries, Entry{Col: col, Val: val})
}

// AddRow appends the constraint Σ entries ≤/=/≥ rhs and returns its row
// index. Entries with out-of-range columns cause a panic: rows are built
// from program logic, not user input.
func (p *Problem) AddRow(sense Sense, rhs float64, entries ...Entry) int {
	for _, e := range entries {
		p.checkCol(e.Col)
	}
	p.rows = append(p.rows, row{entries: append([]Entry(nil), entries...), sense: sense, rhs: rhs})
	return len(p.rows) - 1
}

func (p *Problem) checkCol(col int) {
	if col < 0 || col >= p.numVars {
		panic(fmt.Sprintf("lp: column %d out of range [0,%d)", col, p.numVars))
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // one value per structural variable
	Duals     []float64 // one multiplier per constraint row
	Iters     int
}

const (
	eps     = 1e-9 // pivot / feasibility tolerance
	dualEps = 1e-7 // phase-1 residual tolerance
)

// Solve runs the two-phase primal simplex method. It returns an error
// only for malformed problems; infeasibility and unboundedness are
// reported in Solution.Status.
func Solve(p *Problem) (Solution, error) {
	if p == nil || p.numVars == 0 {
		return Solution{}, errors.New("lp: empty problem")
	}
	t := newTableau(p)
	sol := t.solve()
	return sol, nil
}

// tableau is the dense simplex working state.
//
// Column layout: [0, nv) structural, [nv, nv+ns) slack/surplus,
// [nv+ns, nv+ns+na) artificial. rhs is kept separately.
//
// Every slice is grown in place by init and never shrunk, so a tableau
// embedded in a Solver re-solves without touching the allocator once
// its high-water marks are reached.
type tableau struct {
	m, nTotal  int
	nv, ns, na int
	a          [][]float64 // m x nTotal, row headers into rowBuf
	rowBuf     []float64   // flat backing store for a
	rhs        []float64   // m
	basis      []int       // m, column index basic in each row
	obj        []float64   // structural objective, length nTotal (zeros beyond nv)
	artOf      []int       // row -> artificial column (-1 if none)
	slackOf    []int       // row -> slack column (-1 if none)
	rowSign    []float64   // ±1: -1 when the row was negated to make rhs ≥ 0
	iterBudget int

	// Reused per-solve scratch (see optimize / solve / extractDuals).
	inBasisBuf []bool
	y          []float64
	phase1Buf  []float64
	xBuf       []float64
	dualsBuf   []float64
}

func newTableau(p *Problem) *tableau {
	t := &tableau{}
	t.init(p)
	return t
}

// init loads the problem into the tableau, reusing any backing arrays a
// previous init left behind.
func (t *tableau) init(p *Problem) {
	m := len(p.rows)
	nv := p.numVars

	ns := 0
	na := 0
	for _, r := range p.rows {
		rhs := r.rhs
		sense := r.sense
		if rhs < 0 {
			sense = flip(sense)
		}
		switch sense {
		case LE:
			ns++
		case GE:
			ns++
			na++
		case EQ:
			na++
		}
	}
	nTotal := nv + ns + na
	t.m, t.nTotal, t.nv, t.ns, t.na = m, nTotal, nv, ns, na
	t.rowBuf = growFloats(t.rowBuf, m*nTotal)
	for i := range t.rowBuf {
		t.rowBuf[i] = 0
	}
	t.a = growRows(t.a, m)
	for i := 0; i < m; i++ {
		t.a[i] = t.rowBuf[i*nTotal : (i+1)*nTotal : (i+1)*nTotal]
	}
	t.rhs = growFloats(t.rhs, m)
	t.basis = growInts(t.basis, m)
	t.obj = growFloats(t.obj, nTotal)
	t.artOf = growInts(t.artOf, m)
	t.slackOf = growInts(t.slackOf, m)
	t.rowSign = growFloats(t.rowSign, m)
	copy(t.obj, p.obj)
	for i := nv; i < nTotal; i++ {
		t.obj[i] = 0
	}
	t.iterBudget = 2000 + 60*(m+nTotal)

	slackCol := nv
	artCol := nv + ns
	for i, r := range p.rows {
		sign := 1.0
		rhs := r.rhs
		sense := r.sense
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			sense = flip(sense)
		}
		for _, e := range r.entries {
			t.a[i][e.Col] += sign * e.Val
		}
		t.rhs[i] = rhs
		t.artOf[i] = -1
		t.slackOf[i] = -1
		t.rowSign[i] = sign

		switch sense {
		case LE:
			t.a[i][slackCol] = 1
			t.slackOf[i] = slackCol
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			t.slackOf[i] = slackCol
			slackCol++
			t.a[i][artCol] = 1
			t.artOf[i] = artCol
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol] = 1
			t.artOf[i] = artCol
			t.basis[i] = artCol
			artCol++
		}
	}
}

func flip(s Sense) Sense {
	switch s {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// solve runs phase 1 (drive artificials out) then phase 2 (optimize the
// real objective), and extracts primal and dual values.
func (t *tableau) solve() Solution {
	totalIters := 0
	if t.na > 0 {
		// Phase 1: minimize sum of artificials == maximize -sum.
		t.phase1Buf = growFloats(t.phase1Buf, t.nTotal)
		phase1 := t.phase1Buf
		for i := range phase1 {
			phase1[i] = 0
		}
		for i := 0; i < t.m; i++ {
			if c := t.artOf[i]; c >= 0 {
				phase1[c] = -1
			}
		}
		st, iters := t.optimize(phase1, true)
		totalIters += iters
		if st == IterLimit {
			return Solution{Status: IterLimit, Iters: totalIters}
		}
		// Infeasible if any artificial retains positive value.
		for i := 0; i < t.m; i++ {
			if isArt := t.basis[i] >= t.nv+t.ns; isArt && t.rhs[i] > dualEps {
				return Solution{Status: Infeasible, Iters: totalIters}
			}
		}
		// Pivot any degenerate artificials out of the basis where
		// possible so phase 2 starts from a clean basis.
		t.evictArtificials()
	}

	st, iters := t.optimize(t.obj, false)
	totalIters += iters
	sol := Solution{Status: st, Iters: totalIters}
	if st != Optimal {
		return sol
	}

	t.xBuf = growFloats(t.xBuf, t.nv)
	sol.X = t.xBuf
	for i := range sol.X {
		sol.X[i] = 0
	}
	for i := 0; i < t.m; i++ {
		if b := t.basis[i]; b < t.nv {
			sol.X[b] = t.rhs[i]
		}
	}
	for c, coef := range t.obj[:t.nv] {
		sol.Objective += coef * sol.X[c]
	}
	sol.Duals = t.extractDuals()
	return sol
}

// optimize runs primal simplex iterations for the given objective,
// maximizing. In phase 1 (phase1 == true) artificial columns may stay in
// play; in phase 2 they are barred from entering.
func (t *tableau) optimize(obj []float64, phase1 bool) (Status, int) {
	// reduced[j] = obj[j] - y·a_j, priced against the current basis each
	// iteration (dense, O(m·n)).
	iters := 0
	blandAfter := t.iterBudget / 2
	t.inBasisBuf = growBools(t.inBasisBuf, t.nTotal)
	inBasis := t.inBasisBuf
	for i := range inBasis {
		inBasis[i] = false
	}
	for i := 0; i < t.m; i++ {
		inBasis[t.basis[i]] = true
	}
	colLimit := t.nTotal
	if !phase1 {
		colLimit = t.nv + t.ns // artificials barred in phase 2
	}
	for ; iters < t.iterBudget; iters++ {
		y := t.dualVector(obj)
		enter := -1
		bestScore := eps
		for j := 0; j < colLimit; j++ {
			if inBasis[j] {
				continue
			}
			red := obj[j]
			for i := 0; i < t.m; i++ {
				if y[i] != 0 {
					red -= y[i] * t.a[i][j]
				}
			}
			if red > bestScore {
				if iters > blandAfter {
					// Bland's rule: first improving column.
					enter = j
					break
				}
				bestScore = red
				enter = j
			}
		}
		if enter < 0 {
			return Optimal, iters
		}

		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.rhs[i] / t.a[i][enter]
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && leave >= 0 && t.basis[i] < t.basis[leave]) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, iters
		}
		inBasis[t.basis[leave]] = false
		inBasis[enter] = true
		t.pivot(leave, enter)
	}
	return IterLimit, iters
}

// dualVector returns y with y_i = obj[basis[i]] transformed through the
// current tableau: since rows are kept in product form (B^{-1}A), the
// reduced cost of column j is obj[j] - Σ_i obj[basis[i]]·a[i][j].
func (t *tableau) dualVector(obj []float64) []float64 {
	t.y = growFloats(t.y, t.m)
	y := t.y
	for i := 0; i < t.m; i++ {
		y[i] = obj[t.basis[i]]
	}
	return y
}

func (t *tableau) inBasis(col int) bool {
	for i := 0; i < t.m; i++ {
		if t.basis[i] == col {
			return true
		}
	}
	return false
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	pv := t.a[leave][enter]
	inv := 1 / pv
	rowL := t.a[leave]
	for j := 0; j < t.nTotal; j++ {
		rowL[j] *= inv
	}
	t.rhs[leave] *= inv
	rowL[enter] = 1 // kill residual error

	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		rowI := t.a[i]
		for j := 0; j < t.nTotal; j++ {
			rowI[j] -= f * rowL[j]
		}
		rowI[enter] = 0
		t.rhs[i] -= f * t.rhs[leave]
		if t.rhs[i] < 0 && t.rhs[i] > -eps {
			t.rhs[i] = 0
		}
	}
	t.basis[leave] = enter
}

// evictArtificials pivots zero-valued artificial basics out where a
// nonzero structural/slack coefficient exists in their row.
func (t *tableau) evictArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.nv+t.ns {
			continue
		}
		for j := 0; j < t.nv+t.ns; j++ {
			if math.Abs(t.a[i][j]) > eps && !t.inBasis(j) {
				t.pivot(i, j)
				break
			}
		}
	}
}

// extractDuals recovers the dual multiplier of each original constraint.
//
// The tableau rows are B⁻¹A, so for any column j,
// Σ_k c_B[k]·a[k][j] = y*·a_j^orig where y* = c_B·B⁻¹ is the dual vector
// of the *normalized* rows. We price a column whose original coefficient
// in row i is exactly +e_i: the slack for LE rows, the artificial for GE
// and EQ rows. The dual of the user's original row then differs from
// y*_i only by the ±1 normalization sign applied when rhs was negative.
func (t *tableau) extractDuals() []float64 {
	y := t.dualVector(t.obj)
	t.dualsBuf = growFloats(t.dualsBuf, t.m)
	duals := t.dualsBuf
	for i := 0; i < t.m; i++ {
		col := t.artOf[i]
		if col < 0 {
			col = t.slackOf[i] // LE row: slack has coefficient +1
		}
		var dot float64
		for k := 0; k < t.m; k++ {
			dot += y[k] * t.a[k][col]
		}
		duals[i] = t.rowSign[i] * dot
	}
	return duals
}
