package lp

import (
	"fmt"
	"math"
)

// This file implements a branch-and-bound solver for binary integer
// programs: maximize c·x with the problem's linear rows, x ≥ 0, and
// x_j ∈ {0,1} for the designated binary columns. It plays the role of
// CPLEX in the paper's small-scale exact evaluation (§VI-B): computing
// the best integral solution Z* for instances with n ≤ 50, m ≤ 100.

// intTol decides when an LP value counts as integral.
const intTol = 1e-6

// MILPResult is the outcome of SolveBinary.
type MILPResult struct {
	Status    Status
	Objective float64
	X         []float64
	Nodes     int // branch-and-bound nodes explored
	RootBound float64
}

// Clone returns a deep copy of the problem, used by branch-and-bound to
// add branching rows without disturbing the original.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		numVars: p.numVars,
		obj:     append([]float64(nil), p.obj...),
		rows:    make([]row, len(p.rows)),
	}
	for i, r := range p.rows {
		q.rows[i] = row{
			entries: append([]Entry(nil), r.entries...),
			sense:   r.sense,
			rhs:     r.rhs,
		}
	}
	return q
}

// SolveBinary solves the problem to integral optimality over the given
// binary columns by LP-based branch-and-bound (best-first on the most
// fractional variable, depth-first exploration, bound pruning).
// maxNodes caps the search; 0 means a generous default. If the cap is
// hit, the best incumbent is returned with Status == IterLimit.
func SolveBinary(p *Problem, binary []int, maxNodes int) (MILPResult, error) {
	if maxNodes <= 0 {
		maxNodes = 200_000
	}
	base := p.Clone()
	// Upper bounds x_j ≤ 1 for every binary column.
	for _, j := range binary {
		if j < 0 || j >= base.numVars {
			return MILPResult{}, fmt.Errorf("lp: binary column %d out of range", j)
		}
		base.AddRow(LE, 1, Entry{Col: j, Val: 1})
	}

	res := MILPResult{Status: Infeasible, Objective: math.Inf(-1)}

	type node struct {
		fixes []Entry // (col, 0/1) fixings applied on this path
	}
	stack := []node{{}}
	first := true

	for len(stack) > 0 && res.Nodes < maxNodes {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		sub := base.Clone()
		for _, f := range nd.fixes {
			sub.AddRow(EQ, f.Val, Entry{Col: f.Col, Val: 1})
		}
		sol, err := Solve(sub)
		if err != nil {
			return MILPResult{}, err
		}
		if first {
			res.RootBound = sol.Objective
			first = false
		}
		switch sol.Status {
		case Infeasible:
			continue
		case Unbounded:
			return MILPResult{Status: Unbounded, Nodes: res.Nodes}, nil
		case IterLimit:
			// Treat as unexplorable; conservative but safe.
			continue
		}
		if sol.Objective <= res.Objective+1e-9 {
			continue // bound pruning
		}

		// Find the most fractional binary variable.
		branchCol := -1
		worst := intTol
		for _, j := range binary {
			f := sol.X[j] - math.Floor(sol.X[j])
			frac := math.Min(f, 1-f)
			if frac > worst {
				worst = frac
				branchCol = j
			}
		}
		if branchCol < 0 {
			// Integral: new incumbent.
			res.Objective = sol.Objective
			res.X = append([]float64(nil), sol.X...)
			res.Status = Optimal
			continue
		}

		// Depth-first: push the "round away" branch first so the
		// "round toward" branch is explored next (often integral
		// sooner).
		val := sol.X[branchCol]
		near := math.Round(val)
		far := 1 - near
		fixNear := append(append([]Entry(nil), nd.fixes...), Entry{Col: branchCol, Val: near})
		fixFar := append(append([]Entry(nil), nd.fixes...), Entry{Col: branchCol, Val: far})
		stack = append(stack, node{fixes: fixFar}, node{fixes: fixNear})
	}

	if len(stack) > 0 {
		// Node cap hit with work remaining.
		if res.Status == Optimal {
			res.Status = IterLimit
		} else {
			return MILPResult{Status: IterLimit, Nodes: res.Nodes, RootBound: res.RootBound}, nil
		}
	}
	return res, nil
}
