// Package experiments regenerates every figure of the paper's evaluation
// (§VI): the trace distribution plots (Figs 3–4), the performance-ratio
// comparison against the LP-relaxation bound for both working models
// (Fig 5), and the market-density study (Figs 6–9). Each figure is
// returned as named series ready for text rendering or plotting; the
// bench harness in the repository root and the `rideshare experiments`
// command both drive this package.
//
// Scale: the paper sweeps 20–300 drivers against 1000 tasks of one day of
// the Porto trace. The default Config here is a proportionally scaled-down
// sweep that completes in benchmark time; pass Paper() for the full-scale
// parameters. Shapes (who wins, monotonicity, crossovers), not absolute
// values, are the reproduction target — see EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"text/tabwriter"

	"repro/internal/bound"
	"repro/internal/core"
	"repro/internal/online"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config parameterizes an experiment run.
type Config struct {
	Seed  int64
	Tasks int   // tasks per day
	Sweep []int // driver counts for Figs 5–9

	// BoundIters bounds the Lagrangian subgradient refinement used when
	// the instance is too large for exact column generation.
	BoundIters int

	// DistSamples is the trip count used for the distribution figures.
	DistSamples int

	// Workers bounds the number of concurrent workers evaluating sweep
	// points; 0 means one per CPU core. Every (density, seed) point owns
	// its generator, engine and RNG, so the series are identical for any
	// worker count.
	Workers int

	// Replications averages each sweep point of Fig. 5 and the density
	// study over this many consecutive seeds (Seed, Seed+1, …); 0 or 1
	// reproduces the single-seed sweep.
	Replications int

	// Shards > 1 runs every online simulation through the zone-sharded
	// candidate source. Series are bit-identical for any value (the sim
	// differential tests prove it); the knob exists so large sweeps can
	// use the faster engine.
	Shards int
}

// replications normalizes the Replications field.
func (c Config) replications() int {
	if c.Replications < 1 {
		return 1
	}
	return c.Replications
}

// Default returns the benchmark-scale configuration: 250 tasks and a
// 10–120 driver sweep (the paper's 1000 tasks / 20–300 drivers, scaled
// by 1/4 with the same demand:supply range).
func Default() Config {
	return Config{
		Seed:        1,
		Tasks:       250,
		Sweep:       []int{10, 20, 30, 45, 60, 75, 90, 105, 120},
		BoundIters:  120,
		DistSamples: 20000,
	}
}

// Paper returns the full-scale configuration matching §VI-A: 1000 tasks
// of one day and 20–300 drivers.
func Paper() Config {
	return Config{
		Seed:        1,
		Tasks:       1000,
		Sweep:       []int{20, 60, 100, 140, 180, 220, 260, 300},
		BoundIters:  150,
		DistSamples: 100000,
	}
}

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	ID     string // "fig3" … "fig9"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  string
}

// Fig3TravelTime reproduces Fig. 3: the distribution of trip travel
// times, rendered as a log-binned density with its power-law fit.
func Fig3TravelTime(cfg Config) Figure {
	times := sampleTrips(cfg, func(distKm, durSec float64) float64 { return durSec / 60 })
	return distributionFigure(cfg, "fig3", "Travel Time Distribution", "travel time (min)", times)
}

// Fig4TravelDistance reproduces Fig. 4: the distribution of trip travel
// distances.
func Fig4TravelDistance(cfg Config) Figure {
	dists := sampleTrips(cfg, func(distKm, durSec float64) float64 { return distKm })
	return distributionFigure(cfg, "fig4", "Travel Distance Distribution", "travel distance (km)", dists)
}

func sampleTrips(cfg Config, pick func(distKm, durSec float64) float64) []float64 {
	tcfg := trace.NewConfig(cfg.Seed, cfg.DistSamples, 1, trace.Hitchhiking)
	gen := trace.NewGenerator(tcfg)
	tasks := gen.GenerateTasks()
	out := make([]float64, 0, len(tasks))
	for _, tk := range tasks {
		d := tcfg.Market.Dist(tk.Source, tk.Dest)
		dur := tcfg.Market.TravelTime(tk.Source, tk.Dest, 0)
		out = append(out, pick(d, dur))
	}
	return out
}

func distributionFigure(cfg Config, id, title, xlabel string, xs []float64) Figure {
	bins := stats.LogHistogram(xs, 24)
	var sx, sy []float64
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		sx = append(sx, (b.Lo+b.Hi)/2)
		sy = append(sy, b.Density)
	}
	fig := Figure{
		ID: id, Title: title,
		XLabel: xlabel, YLabel: "density",
		Series: []Series{{Name: "empirical", X: sx, Y: sy}},
	}
	sum := stats.Summarize(xs)
	notes := fmt.Sprintf("n=%d mean=%.2f p50=%.2f p99=%.2f tail-heaviness=%.2f",
		sum.N, sum.Mean, sum.P50, sum.P99, stats.TailHeaviness(xs))
	if fit, err := stats.FitPowerLaw(xs, sum.P50); err == nil {
		notes += fmt.Sprintf(" power-law pdf exponent=%.2f (xmin=p50)", fit.Alpha)
	}
	fig.Notes = notes
	return fig
}

// Fig5PerformanceRatio reproduces Fig. 5 for the given working model:
// the performance ratio (algorithm profit / upper bound Z*_f) of Greedy,
// maxMargin and Nearest as the number of drivers grows. The paper plots
// Z*_f / profit; we plot the reciprocal so curves live in [0, 1] with
// higher = better (same ordering information).
func Fig5PerformanceRatio(ctx context.Context, cfg Config, dm trace.DriverModel) (Figure, error) {
	names := []string{"Greedy", "maxMargin", "Nearest"}
	series := make([]Series, len(names))
	for i, name := range names {
		series[i] = Series{Name: name}
	}

	// Fan the (density, seed) grid out over the worker pool; ratios[k]
	// belongs to sweep point k/reps, replication k%reps.
	reps := cfg.replications()
	ratios := make([][3]float64, len(cfg.Sweep)*reps)
	var fallbacks atomic.Int64
	err := forEachIndex(ctx, cfg.Workers, len(ratios), func(k int) error {
		n, seed := cfg.Sweep[k/reps], cfg.Seed+int64(k%reps)
		p, err := buildProblem(cfg, seed, n, dm)
		if err != nil {
			return err
		}
		sols, err := solveAll(p, seed, cfg.Shards)
		if err != nil {
			return err
		}
		ub, fellBack := upperBound(p, sols[0].Profit, cfg)
		if fellBack {
			fallbacks.Add(1)
		}
		for i := range names {
			ratios[k][i] = core.PerformanceRatio(sols[i].Profit, ub)
		}
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	for pi, n := range cfg.Sweep {
		for i := range names {
			var sum float64
			for r := 0; r < reps; r++ {
				sum += ratios[pi*reps+r][i]
			}
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, sum/float64(reps))
		}
	}
	return Figure{
		ID:     "fig5-" + dm.String(),
		Title:  fmt.Sprintf("Performance Ratio (%v model)", dm),
		XLabel: "number of drivers", YLabel: "profit / Z*_f",
		Series: series,
		Notes: fmt.Sprintf("%d tasks; %d replication(s); bound: colgen (small) / Lagrangian %d iters (large); colgen-fallbacks=%d",
			cfg.Tasks, reps, cfg.BoundIters, fallbacks.Load()),
	}, nil
}

// DensityMetrics bundles the market-density sweep behind Figs 6–9 so the
// four figures share one set of simulation runs.
type DensityMetrics struct {
	Drivers []int
	// Indexed [algorithm][sweep point]; algorithm order matches Names.
	Revenue   [][]float64 // Fig 6: total market revenue
	ServeRate [][]float64 // Fig 7: fraction of tasks served
	AvgRev    [][]float64 // Fig 8: average revenue per driver
	AvgTasks  [][]float64 // Fig 9: average tasks per driver
	Names     []string
}

// RunDensitySweep executes the Figs 6–9 sweep on the hitchhiking model
// (the paper's §VI-C uses "the general hitchhiking model"). The
// (density, seed) points run concurrently on cfg.Workers workers; each
// point owns its trace generator and simulation engines, so the returned
// series are identical for any worker count.
func RunDensitySweep(ctx context.Context, cfg Config) (DensityMetrics, error) {
	names := []string{"Greedy", "maxMargin", "Nearest"}
	m := DensityMetrics{
		Names:     names,
		Revenue:   make([][]float64, len(names)),
		ServeRate: make([][]float64, len(names)),
		AvgRev:    make([][]float64, len(names)),
		AvgTasks:  make([][]float64, len(names)),
	}
	reps := cfg.replications()
	type point struct {
		revenue, served [3]float64
	}
	pts := make([]point, len(cfg.Sweep)*reps)
	err := forEachIndex(ctx, cfg.Workers, len(pts), func(k int) error {
		n, seed := cfg.Sweep[k/reps], cfg.Seed+int64(k%reps)
		p, err := buildProblem(cfg, seed, n, trace.Hitchhiking)
		if err != nil {
			return err
		}
		sols, err := solveAll(p, seed, cfg.Shards)
		if err != nil {
			return err
		}
		for i, s := range sols {
			pts[k].revenue[i] = s.Revenue
			pts[k].served[i] = float64(s.Served)
		}
		return nil
	})
	if err != nil {
		return DensityMetrics{}, err
	}
	for pi, n := range cfg.Sweep {
		m.Drivers = append(m.Drivers, n)
		for i := range names {
			var revenue, served float64
			for r := 0; r < reps; r++ {
				revenue += pts[pi*reps+r].revenue[i]
				served += pts[pi*reps+r].served[i]
			}
			revenue /= float64(reps)
			served /= float64(reps)
			m.Revenue[i] = append(m.Revenue[i], revenue)
			m.ServeRate[i] = append(m.ServeRate[i], served/float64(cfg.Tasks))
			m.AvgRev[i] = append(m.AvgRev[i], revenue/float64(n))
			m.AvgTasks[i] = append(m.AvgTasks[i], served/float64(n))
		}
	}
	return m, nil
}

// Figures converts the sweep into the paper's four density figures.
func (m DensityMetrics) Figures() []Figure {
	mk := func(id, title, ylabel string, data [][]float64) Figure {
		fig := Figure{ID: id, Title: title, XLabel: "number of drivers", YLabel: ylabel}
		for i, name := range m.Names {
			xs := make([]float64, len(m.Drivers))
			for j, d := range m.Drivers {
				xs[j] = float64(d)
			}
			fig.Series = append(fig.Series, Series{Name: name, X: xs, Y: data[i]})
		}
		return fig
	}
	return []Figure{
		mk("fig6", "Total Revenue in the Market", "total revenue", m.Revenue),
		mk("fig7", "Rate of Served Tasks", "serve rate", m.ServeRate),
		mk("fig8", "Average Revenue per Worker", "avg revenue / driver", m.AvgRev),
		mk("fig9", "Average Tasks per Worker", "avg tasks / driver", m.AvgTasks),
	}
}

// buildProblem generates the trace for one (seed, density) sweep point.
// The task set is held fixed across driver counts (same seed), as in the
// paper: "We select 1000 records during one day ... by gradually
// increasing the number of drivers".
func buildProblem(cfg Config, seed int64, drivers int, dm trace.DriverModel) (*core.Problem, error) {
	tcfg := trace.NewConfig(seed, cfg.Tasks, drivers, dm)
	tr := trace.NewGenerator(tcfg).Generate(nil)
	return core.NewProblem(tcfg.Market, tr.Drivers, tr.Tasks)
}

// solveAll runs the three algorithms of Fig. 5 in the canonical order
// Greedy, maxMargin, Nearest.
func solveAll(p *core.Problem, seed int64, shards int) ([]core.Solution, error) {
	solvers := []core.Solver{
		core.GreedySolver{},
		core.OnlineSolver{Dispatcher: online.MaxMargin{}, Seed: seed, Shards: shards},
		core.OnlineSolver{Dispatcher: online.Nearest{}, Seed: seed, Shards: shards},
	}
	out := make([]core.Solution, len(solvers))
	for i, s := range solvers {
		sol, err := s.Solve(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.Name(), err)
		}
		out[i] = sol
	}
	return out, nil
}

// upperBound computes the Z*_f estimate for a sweep point: exact column
// generation when small, Lagrangian subgradient otherwise. fellBack
// reports that column generation was attempted but errored — the
// Lagrangian result is still a valid bound, but the study surfaces the
// count so a misbehaving master LP cannot hide behind a weaker bound.
func upperBound(p *core.Problem, greedyLB float64, cfg Config) (float64, bool) {
	g := p.Graph()
	if g.N()+g.M() <= 150 {
		r, _, err := bound.ColumnGeneration(g)
		if err == nil {
			return r.Bound, false
		}
		return bound.Lagrangian(g, greedyLB, cfg.BoundIters).Bound, true
	}
	return bound.Lagrangian(g, greedyLB, cfg.BoundIters).Bound, false
}

// RenderText writes the figure as an aligned text table, one row per X
// value and one column per series.
func RenderText(w io.Writer, fig Figure) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# %s — %s\n", fig.ID, fig.Title)
	if fig.Notes != "" {
		fmt.Fprintf(tw, "# %s\n", fig.Notes)
	}
	fmt.Fprintf(tw, "%s", fig.XLabel)
	for _, s := range fig.Series {
		fmt.Fprintf(tw, "\t%s", s.Name)
	}
	fmt.Fprintln(tw)

	if len(fig.Series) > 0 {
		for j := range fig.Series[0].X {
			fmt.Fprintf(tw, "%.4g", fig.Series[0].X[j])
			for _, s := range fig.Series {
				if j < len(s.Y) {
					fmt.Fprintf(tw, "\t%.4f", s.Y[j])
				} else {
					fmt.Fprintf(tw, "\t-")
				}
			}
			fmt.Fprintln(tw)
		}
	}
	return tw.Flush()
}
