package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

// testConfig is a fast, tiny sweep for unit tests.
func testConfig() Config {
	return Config{
		Seed:        1,
		Tasks:       80,
		Sweep:       []int{5, 15, 30},
		BoundIters:  40,
		DistSamples: 3000,
	}
}

// shortConfig shrinks the sweep for -short runs: fewer points, fewer
// tasks and far fewer bound-refinement iterations (the dominant cost).
func shortConfig() Config {
	return Config{
		Seed:        1,
		Tasks:       40,
		Sweep:       []int{5, 12},
		BoundIters:  10,
		DistSamples: 1500,
	}
}

func TestFig3Shape(t *testing.T) {
	fig := Fig3TravelTime(testConfig())
	if fig.ID != "fig3" || len(fig.Series) != 1 {
		t.Fatalf("unexpected figure: %+v", fig.ID)
	}
	s := fig.Series[0]
	if len(s.X) < 5 {
		t.Fatalf("too few histogram points: %d", len(s.X))
	}
	// Density must decay over the tail (power law): last point far
	// below the peak.
	peak, last := 0.0, s.Y[len(s.Y)-1]
	for _, y := range s.Y {
		if y > peak {
			peak = y
		}
	}
	if last > peak/10 {
		t.Fatalf("tail density %.4g not far below peak %.4g", last, peak)
	}
	if !strings.Contains(fig.Notes, "power-law") {
		t.Errorf("notes missing power-law fit: %q", fig.Notes)
	}
}

func TestFig4Shape(t *testing.T) {
	fig := Fig4TravelDistance(testConfig())
	if fig.ID != "fig4" {
		t.Fatalf("ID = %q", fig.ID)
	}
	// Distances are bounded by the generator's trip range.
	for _, x := range fig.Series[0].X {
		if x <= 0 || x > 30 {
			t.Fatalf("distance bin center %.2f outside plausible range", x)
		}
	}
}

func TestFig5OrderingMatchesPaper(t *testing.T) {
	cfg := testConfig()
	if testing.Short() {
		cfg = shortConfig()
	}
	fig, err := Fig5PerformanceRatio(context.Background(), cfg, trace.Hitchhiking)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	greedy, mm, nr := fig.Series[0], fig.Series[1], fig.Series[2]
	if greedy.Name != "Greedy" || mm.Name != "maxMargin" || nr.Name != "Nearest" {
		t.Fatalf("series names wrong: %v %v %v", greedy.Name, mm.Name, nr.Name)
	}
	var gSum, mSum, nSum float64
	for i := range greedy.Y {
		if greedy.Y[i] <= 0 || greedy.Y[i] > 1+1e-9 {
			t.Fatalf("greedy ratio %.4f outside (0, 1]", greedy.Y[i])
		}
		gSum += greedy.Y[i]
		mSum += mm.Y[i]
		nSum += nr.Y[i]
	}
	// §VI-B: offline greedy best, maxMargin above Nearest. At this tiny
	// test scale the online pair is within noise of each other, so the
	// maxMargin ≥ Nearest claim gets a small tolerance here; the strict
	// aggregate ordering is asserted at realistic scale in the online
	// package tests and in the Fig. 5 bench.
	if gSum < mSum || gSum < nSum {
		t.Errorf("greedy aggregate ratio %.3f not best (maxMargin %.3f, nearest %.3f)", gSum, mSum, nSum)
	}
	if mSum < nSum*0.95 {
		t.Errorf("maxMargin aggregate %.3f well below Nearest %.3f", mSum, nSum)
	}
}

func TestFig5HitchhikingBeatsHomeWorkHome(t *testing.T) {
	if testing.Short() {
		t.Skip("directional §VI-B claim needs the full test scale; run without -short")
	}
	// §VI-B: "almost all our algorithms achieve better performance
	// ratio in the hitchhiking model". Compare greedy's aggregate.
	cfg := testConfig()
	hitch, err := Fig5PerformanceRatio(context.Background(), cfg, trace.Hitchhiking)
	if err != nil {
		t.Fatal(err)
	}
	home, err := Fig5PerformanceRatio(context.Background(), cfg, trace.HomeWorkHome)
	if err != nil {
		t.Fatal(err)
	}
	var hSum, oSum float64
	for i := range hitch.Series[0].Y {
		hSum += hitch.Series[0].Y[i]
		oSum += home.Series[0].Y[i]
	}
	// Allow a modest tolerance: the claim is directional.
	if hSum < oSum*0.95 {
		t.Errorf("hitchhiking greedy aggregate %.3f well below home-work-home %.3f", hSum, oSum)
	}
}

func TestDensitySweepShapes(t *testing.T) {
	cfg := testConfig()
	m, err := RunDensitySweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Drivers) != len(cfg.Sweep) {
		t.Fatalf("sweep points %d, want %d", len(m.Drivers), len(cfg.Sweep))
	}
	for a, name := range m.Names {
		last := len(m.Drivers) - 1
		// Fig 6: revenue grows with market density.
		if m.Revenue[a][last] < m.Revenue[a][0] {
			t.Errorf("%s: revenue fell with more drivers: %v", name, m.Revenue[a])
		}
		// Fig 7: serve rate grows.
		if m.ServeRate[a][last] < m.ServeRate[a][0] {
			t.Errorf("%s: serve rate fell with more drivers: %v", name, m.ServeRate[a])
		}
		// Fig 8: average revenue per driver declines (congestion).
		if m.AvgRev[a][last] > m.AvgRev[a][0] {
			t.Errorf("%s: avg revenue per driver rose with more drivers: %v", name, m.AvgRev[a])
		}
		// Fig 9: average tasks per driver declines.
		if m.AvgTasks[a][last] > m.AvgTasks[a][0] {
			t.Errorf("%s: avg tasks per driver rose with more drivers: %v", name, m.AvgTasks[a])
		}
		for i := range m.Drivers {
			if m.ServeRate[a][i] < 0 || m.ServeRate[a][i] > 1 {
				t.Fatalf("%s: serve rate %.3f outside [0,1]", name, m.ServeRate[a][i])
			}
		}
	}
	figs := m.Figures()
	if len(figs) != 4 {
		t.Fatalf("figures = %d, want 4", len(figs))
	}
	wantIDs := []string{"fig6", "fig7", "fig8", "fig9"}
	for i, f := range figs {
		if f.ID != wantIDs[i] {
			t.Errorf("figure %d ID = %q, want %q", i, f.ID, wantIDs[i])
		}
		if len(f.Series) != 3 {
			t.Errorf("%s: series = %d, want 3", f.ID, len(f.Series))
		}
	}
}

// TestSweepsDeterministicAcrossWorkers pins the parallelization
// contract: every sweep yields identical series no matter how many
// workers evaluate it, because each (density, seed) point owns its
// generator, engines and RNG.
func TestSweepsDeterministicAcrossWorkers(t *testing.T) {
	cfg := shortConfig()
	cfg.Replications = 2

	serial, parallel := cfg, cfg
	serial.Workers = 1
	parallel.Workers = 4

	ms, err := RunDensitySweep(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := RunDensitySweep(context.Background(), parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ms, mp) {
		t.Errorf("density sweep differs across worker counts:\nserial   %+v\nparallel %+v", ms, mp)
	}

	fs, err := Fig5PerformanceRatio(context.Background(), serial, trace.Hitchhiking)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Fig5PerformanceRatio(context.Background(), parallel, trace.Hitchhiking)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs, fp) {
		t.Errorf("fig5 differs across worker counts:\nserial   %+v\nparallel %+v", fs, fp)
	}

	ws, err := WelfareComparison(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := WelfareComparison(context.Background(), parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ws, wp) {
		t.Errorf("welfare comparison differs across worker counts:\nserial   %+v\nparallel %+v", ws, wp)
	}
}

// TestReplicationsAverage checks that multi-seed averaging keeps the
// series well-formed and actually mixes in the extra seeds.
func TestReplicationsAverage(t *testing.T) {
	cfg := shortConfig()
	single, err := RunDensitySweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replications = 3
	avg, err := RunDensitySweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(avg.Drivers) != len(cfg.Sweep) {
		t.Fatalf("averaged sweep has %d points, want %d", len(avg.Drivers), len(cfg.Sweep))
	}
	var moved bool
	for a := range avg.Names {
		for i := range avg.Drivers {
			if s := avg.ServeRate[a][i]; s < 0 || s > 1 {
				t.Fatalf("averaged serve rate %.3f outside [0,1]", s)
			}
			if avg.Revenue[a][i] != single.Revenue[a][i] {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("3-replication averages identical to the single seed on every point; extra seeds unused")
	}
}

// TestForEachIndexErrors pins the pool's error contract: a failing
// index surfaces its error on both the serial and concurrent paths, an
// empty range is a no-op, and a failure stops the pool from dispatching
// the rest of the range.
func TestForEachIndexErrors(t *testing.T) {
	errBoom := errors.New("boom")
	for _, workers := range []int{1, 3} {
		err := forEachIndex(context.Background(), workers, 8, func(i int) error {
			if i == 2 {
				return errBoom
			}
			return nil
		})
		if err != errBoom {
			t.Errorf("workers=%d: error = %v, want %v", workers, err, errBoom)
		}
		if err := forEachIndex(context.Background(), workers, 0, func(int) error { return errBoom }); err != nil {
			t.Errorf("workers=%d: empty range returned %v", workers, err)
		}
	}

	// Early abort: with the very first index failing, the feeder must
	// stop long before the end of a large range (in-flight work is
	// bounded by the worker count).
	var executed atomic.Int64
	err := forEachIndex(context.Background(), 2, 4096, func(i int) error {
		executed.Add(1)
		if i == 0 {
			return errBoom
		}
		return nil
	})
	if err != errBoom {
		t.Fatalf("abort run returned %v, want %v", err, errBoom)
	}
	if n := executed.Load(); n >= 4096 {
		t.Errorf("pool executed all %d indices despite an index-0 failure", n)
	}
}

// TestForEachIndexCancellation: a cancelled context aborts the pool on
// both paths — pending indices are abandoned, ctx.Err() is returned —
// which is what lets `rideshare experiments` shut down on SIGINT
// mid-sweep.
func TestForEachIndexCancellation(t *testing.T) {
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		var executed atomic.Int64
		err := forEachIndex(ctx, workers, 4096, func(i int) error {
			if executed.Add(1) == 2 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: error = %v, want context.Canceled", workers, err)
		}
		if n := executed.Load(); n >= 4096 {
			t.Errorf("workers=%d: pool ran all %d indices despite cancellation", workers, n)
		}
	}

	// A context cancelled upfront runs nothing at all.
	dead, kill := context.WithCancel(context.Background())
	kill()
	ran := false
	if err := forEachIndex(dead, 1, 8, func(int) error { ran = true; return nil }); !errors.Is(err, context.Canceled) || ran {
		t.Errorf("pre-cancelled context: err=%v ran=%v", err, ran)
	}
}

func TestRenderText(t *testing.T) {
	fig := Figure{
		ID: "figX", Title: "Test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.6}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{0.7, 0.8}},
		},
		Notes: "note",
	}
	var buf bytes.Buffer
	if err := RenderText(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "note", "a", "b", "0.5000", "0.8000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultAndPaperConfigs(t *testing.T) {
	d := Default()
	p := Paper()
	if d.Tasks >= p.Tasks {
		t.Error("default scale should be below paper scale")
	}
	if len(d.Sweep) == 0 || len(p.Sweep) == 0 {
		t.Error("sweeps must be non-empty")
	}
	if p.Sweep[0] != 20 || p.Sweep[len(p.Sweep)-1] != 300 {
		t.Errorf("paper sweep %v should span 20–300 drivers", p.Sweep)
	}
	if p.Tasks != 1000 {
		t.Errorf("paper tasks = %d, want 1000", p.Tasks)
	}
}
