package experiments

import (
	"context"
	"testing"
)

func TestWelfareComparison(t *testing.T) {
	cfg := testConfig()
	rows, err := WelfareComparison(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Sweep) {
		t.Fatalf("rows = %d, want %d", len(rows), len(cfg.Sweep))
	}
	for _, r := range rows {
		// Identities: welfare ≥ profit for the same assignment
		// (consumer surplus is non-negative)...
		if r.ProfitObjWelfare < r.ProfitObjProfit-1e-9 {
			t.Errorf("drivers=%d: welfare %.3f below profit %.3f", r.Drivers, r.ProfitObjWelfare, r.ProfitObjProfit)
		}
		if r.WelfareObjWelfare < r.WelfareObjProfit-1e-9 {
			t.Errorf("drivers=%d: welfare-obj welfare below its profit", r.Drivers)
		}
		// ...and all quantities are non-negative at this scale.
		if r.ProfitObjProfit < 0 || r.WelfareObjProfit < -1e-9 {
			t.Errorf("drivers=%d: negative profit", r.Drivers)
		}
	}
	fig := WelfareFigure(rows)
	if fig.ID != "ext-welfare" || len(fig.Series) != 2 {
		t.Fatalf("bad figure %+v", fig.ID)
	}
}

func TestSurgeSweepShapes(t *testing.T) {
	cfg := testConfig()
	caps := []float64{1, 1.5, 2, 3}
	rows, err := SurgeSweep(context.Background(), cfg, 15, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(caps) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Higher caps can only raise prices, hence revenue per served task;
	// total revenue at the top cap should be at least flat pricing's.
	if rows[len(rows)-1].Revenue < rows[0].Revenue {
		t.Errorf("revenue fell with surge: %.2f → %.2f", rows[0].Revenue, rows[len(rows)-1].Revenue)
	}
	for _, r := range rows {
		if r.ServeRate < 0 || r.ServeRate > 1 {
			t.Errorf("cap %.1f: serve rate %.3f outside [0,1]", r.MaxAlpha, r.ServeRate)
		}
		if r.Gini < 0 || r.Gini > 1 {
			t.Errorf("cap %.1f: Gini %.3f outside [0,1]", r.MaxAlpha, r.Gini)
		}
	}
	fig := SurgeFigure(rows)
	if fig.ID != "ext-surge" || len(fig.Series) != 4 {
		t.Fatalf("bad figure")
	}
}

func TestDispatchComparison(t *testing.T) {
	cfg := testConfig()
	rows, err := DispatchComparison(context.Background(), cfg, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	byName := map[string]DispatchRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Ratio < 0 || r.Ratio > 1+1e-9 {
			t.Errorf("%s: ratio %.4f outside [0,1]", r.Name, r.Ratio)
		}
		if r.ServeRate < 0 || r.ServeRate > 1 {
			t.Errorf("%s: serve rate %.4f", r.Name, r.ServeRate)
		}
	}
	// Offline greedy is the full-information reference: best ratio.
	greedy := byName["offline Greedy (Alg. 1)"]
	for _, r := range rows {
		if r.Profit > greedy.Profit+1e-6 {
			t.Errorf("%s profit %.3f exceeds offline greedy %.3f", r.Name, r.Profit, greedy.Profit)
		}
	}
	// Rolling replan dominates the instant heuristics (it re-runs the
	// offline algorithm with the same information plus hindsight).
	if byName["rolling replan"].Profit < byName["Nearest (Alg. 3)"].Profit*0.95 {
		t.Errorf("replan %.3f well below Nearest %.3f",
			byName["rolling replan"].Profit, byName["Nearest (Alg. 3)"].Profit)
	}
	fig := DispatchFigure(rows)
	if fig.ID != "ext-dispatch" || len(fig.Series[0].X) != 5 {
		t.Fatalf("bad figure")
	}
}

func TestChurnSweepShapes(t *testing.T) {
	cfg := testConfig()
	cfg.Replications = 2
	rates := []float64{0, 0.25, 0.6}
	rows, err := ChurnSweep(context.Background(), cfg, 15, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rates) {
		t.Fatalf("rows = %d, want %d", len(rows), len(rates))
	}
	if rows[0].Cancelled != 0 {
		t.Fatalf("rate 0 cancelled %.1f tasks", rows[0].Cancelled)
	}
	last := rows[len(rows)-1]
	if last.Cancelled == 0 {
		t.Fatal("heavy churn honored no cancellations")
	}
	// Retiring drivers and cancelling riders can only shrink served work.
	if last.ServeRate >= rows[0].ServeRate {
		t.Errorf("serve rate did not fall under churn: %.3f → %.3f", rows[0].ServeRate, last.ServeRate)
	}
	for _, r := range rows {
		if r.ServeRate < 0 || r.ServeRate > 1 {
			t.Errorf("rate %.2f: serve rate %.3f outside [0,1]", r.Rate, r.ServeRate)
		}
	}

	// Sharded engine: identical rows (the sweep is an experiments-layer
	// restatement of the sim differential guarantee).
	cfg.Shards = 4
	sharded, err := ChurnSweep(context.Background(), cfg, 15, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != sharded[i] {
			t.Errorf("rate %.2f: sharded row %+v != scan row %+v", rates[i], sharded[i], rows[i])
		}
	}

	fig := ChurnFigure(rows)
	if fig.ID != "ext-churn" || len(fig.Series) != 3 {
		t.Fatal("bad churn figure")
	}
}
