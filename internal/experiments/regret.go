package experiments

// The oracle-rail study: how much revenue did each online policy leave
// on the table against a clairvoyant dispatcher on the same day? For
// every density the three policies (instant maxMargin, batched
// Hungarian, batched auction) run over an identical churn/cancellation
// trace; the trace is then compiled once into a hindsight instance
// (revenue objective, rail pruning, every policy's own assignments
// force-kept so the rail stays at or above all of them) and solved by
// the sparse branch and bound, warm-started from the best policy.
//
// The rail optimum is a lower bound on the true hindsight optimum, so
// the reported competitive ratios are upper bounds on the policies'
// true ratios — the forced pairs keep every ratio ≤ 1.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bound"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
)

// RegretPolicies names the online policies of the study, in row order.
var RegretPolicies = []string{"maxMargin", "batched(hungarian)", "batched(auction)"}

// RegretRow is one (policy, density) cell of the study.
type RegretRow struct {
	Policy  string `json:"policy"`
	Drivers int    `json:"drivers"`

	OnlineRevenue  float64 `json:"online_revenue"`
	OfflineRevenue float64 `json:"offline_revenue"`
	OnlineServed   int     `json:"online_served"`
	OfflineServed  int     `json:"offline_served"`

	RevenueRegret    float64 `json:"revenue_regret"`    // offline − online
	CompetitiveRatio float64 `json:"competitive_ratio"` // online / offline, ∈ (0, 1]
}

// RegretPoint bundles one density's shared oracle solve.
type RegretPoint struct {
	Drivers int          `json:"drivers"`
	Rows    []RegretRow  `json:"rows"`
	Oracle  RegretOracle `json:"oracle"`
}

// RegretOracle records how the hindsight optimum was obtained.
type RegretOracle struct {
	CompileSeconds  float64 `json:"compile_seconds"`
	SolveSeconds    float64 `json:"solve_seconds"`
	Exact           bool    `json:"exact"`
	Components      int     `json:"components"`
	ExactComponents int     `json:"exact_components"`
	Pairs           int     `json:"pairs"`
	Arcs            int     `json:"arcs"`
	Nodes           int64   `json:"nodes"`
	UpperBound      float64 `json:"upper_bound"`
	WarmKept        int     `json:"warm_kept"`
	WarmDropped     int     `json:"warm_dropped"`
	LPSolved        int     `json:"lp_solved"`
	LPFixed         int     `json:"lp_fixed"`
}

// RegretConfig parameterizes RegretSweep beyond the base Config.
type RegretConfig struct {
	// Churn and Cancel are the trace.DefaultChurn fractions of drivers
	// joining/retiring mid-day and riders cancelling.
	Churn  float64
	Cancel float64

	// Window is the batched policies' dispatch window in seconds
	// (default 45).
	Window float64

	// TopK is the rail pruning width of the hindsight compile (default
	// 8; 0 compiles the exact instance — only viable on small days).
	TopK int

	// Solver knobs, passed through to bound.SparseOptions.
	LP      bool
	PathCap int
	NodeCap int
}

// RegretSweep runs the oracle-rail study over cfg.Sweep. The returned
// points are ordered like the sweep; every policy row shares its
// density's single compiled instance and oracle solve.
func RegretSweep(ctx context.Context, cfg Config, rc RegretConfig) ([]RegretPoint, error) {
	if rc.Window <= 0 {
		rc.Window = 45
	}
	if rc.TopK < 0 {
		return nil, fmt.Errorf("experiments: negative TopK %d", rc.TopK)
	}
	points := make([]RegretPoint, len(cfg.Sweep))
	for pi, n := range cfg.Sweep {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pt, err := regretPoint(cfg, rc, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: regret @%d drivers: %w", n, err)
		}
		points[pi] = pt
	}
	return points, nil
}

// regretPoint runs one density: three policies, one shared oracle.
func regretPoint(cfg Config, rc RegretConfig, drivers int) (RegretPoint, error) {
	tcfg := trace.NewConfig(cfg.Seed, cfg.Tasks, drivers, trace.Hitchhiking)
	tr := trace.NewGenerator(tcfg).Generate(nil)
	if rc.Churn > 0 || rc.Cancel > 0 {
		tr.Events = trace.WithChurn(tr, trace.DefaultChurn(cfg.Seed, rc.Churn, rc.Cancel))
	}

	eng, err := sim.New(tcfg.Market, tr.Drivers, cfg.Seed)
	if err != nil {
		return RegretPoint{}, err
	}
	eng.MatchWorkers = cfg.Workers
	results := []sim.Result{
		eng.RunScenario(tr.Tasks, tr.Events, online.MaxMargin{}),
		eng.RunBatchedScenario(tr.Tasks, tr.Events, rc.Window, sim.BatchHungarian),
		eng.RunBatchedScenario(tr.Tasks, tr.Events, rc.Window, sim.BatchAuction),
	}

	// Force-keep every policy's pairs so the rail optimum dominates
	// them all; warm-start from the highest-revenue policy.
	var keep [][2]int32
	bestPolicy := 0
	for i, res := range results {
		for m, d := range res.Assignment {
			keep = append(keep, [2]int32{int32(m), int32(d)})
		}
		if res.Revenue > results[bestPolicy].Revenue {
			bestPolicy = i
		}
	}

	t0 := time.Now()
	in, err := offline.Compile(tcfg.Market, tr, offline.Options{
		Objective: offline.ObjectiveRevenue,
		TopK:      rc.TopK,
		Keep:      keep,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return RegretPoint{}, err
	}
	compileSec := time.Since(t0).Seconds()

	var solver bound.SparseSolver
	t0 = time.Now()
	sol, err := solver.Solve(in, bound.SparseOptions{
		Workers: cfg.Workers,
		Warm:    results[bestPolicy].DriverPaths,
		LP:      rc.LP,
		PathCap: rc.PathCap,
		NodeCap: rc.NodeCap,
	})
	if err != nil {
		return RegretPoint{}, err
	}
	solveSec := time.Since(t0).Seconds()

	offServed := 0
	for _, d := range sol.TaskDriver {
		if d >= 0 {
			offServed++
		}
	}
	pt := RegretPoint{
		Drivers: drivers,
		Oracle: RegretOracle{
			CompileSeconds:  compileSec,
			SolveSeconds:    solveSec,
			Exact:           sol.Exact,
			Components:      sol.Components,
			ExactComponents: sol.ExactComponents,
			Pairs:           in.Stats.Pairs,
			Arcs:            in.Stats.Arcs,
			Nodes:           sol.Nodes,
			UpperBound:      sol.UpperBound,
			WarmKept:        sol.WarmKept,
			WarmDropped:     sol.WarmDropped,
			LPSolved:        sol.LPSolved,
			LPFixed:         sol.LPFixed,
		},
	}
	for i, res := range results {
		row := RegretRow{
			Policy:         RegretPolicies[i],
			Drivers:        drivers,
			OnlineRevenue:  res.Revenue,
			OfflineRevenue: sol.Objective,
			OnlineServed:   res.Served,
			OfflineServed:  offServed,
			RevenueRegret:  sol.Objective - res.Revenue,
		}
		switch {
		case sol.Objective > 0:
			row.CompetitiveRatio = res.Revenue / sol.Objective
		case res.Revenue == 0:
			row.CompetitiveRatio = 1 // both zero: the policy left nothing behind
		default:
			row.CompetitiveRatio = 0
		}
		pt.Rows = append(pt.Rows, row)
	}
	return pt, nil
}

// RegretFigure renders the sweep as a competitive-ratio figure, one
// series per policy.
func RegretFigure(points []RegretPoint, cfg Config, rc RegretConfig) Figure {
	series := make([]Series, len(RegretPolicies))
	for i, name := range RegretPolicies {
		series[i] = Series{Name: name}
	}
	exact := 0
	for _, pt := range points {
		if pt.Oracle.Exact {
			exact++
		}
		for i, row := range pt.Rows {
			series[i].X = append(series[i].X, float64(pt.Drivers))
			series[i].Y = append(series[i].Y, row.CompetitiveRatio)
		}
	}
	return Figure{
		ID:     "regret",
		Title:  "Competitive Ratio vs Hindsight Optimum",
		XLabel: "number of drivers", YLabel: "online revenue / offline optimum",
		Series: series,
		Notes: fmt.Sprintf("%d tasks; churn=%.2f cancel=%.2f; rail top-%d; %d/%d oracle solves exact",
			cfg.Tasks, rc.Churn, rc.Cancel, rc.TopK, exact, len(points)),
	}
}
