package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachIndex evaluates fn(0) … fn(n-1) on a bounded pool of goroutines
// and returns the lowest-index recorded error, or nil. workers ≤ 0 means
// one per CPU core; workers == 1 degenerates to a plain serial loop that
// stops at the first error. The parallel path aborts promptly too: once
// any invocation fails, no further indices are dispatched or started
// (in-flight ones finish), so a paper-scale sweep does not grind through
// the remaining points after an early failure. Each index must be
// self-contained (own generator, engine, RNG), which makes successful
// results identical for every worker count — the sweep tests assert that
// equivalence, and `go test -race` guards the fan-out.
func forEachIndex(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
