package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachIndex evaluates fn(0) … fn(n-1) on a bounded pool of goroutines
// and returns the lowest-index recorded error, or nil. workers ≤ 0 means
// one per CPU core; workers == 1 degenerates to a plain serial loop that
// stops at the first error. The parallel path aborts promptly too: once
// any invocation fails, no further indices are dispatched or started
// (in-flight ones finish), so a paper-scale sweep does not grind through
// the remaining points after an early failure. Cancelling ctx aborts
// the same way — pending indices are abandoned, in-flight ones finish,
// and ctx.Err() is returned — which is what lets `rideshare
// experiments` and the serve front end shut sweeps down cleanly on
// SIGINT. Each index must be self-contained (own generator, engine,
// RNG), which makes successful results identical for every worker count
// — the sweep tests assert that equivalence, and `go test -race` guards
// the fan-out.
func forEachIndex(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() || ctx.Err() != nil {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n && !failed.Load(); i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
