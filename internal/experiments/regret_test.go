package experiments

import (
	"context"
	"testing"
)

// The central soundness property of the oracle rail: because every
// online policy's own assignment is force-kept into the hindsight
// instance, the rail optimum dominates each policy's revenue on any
// trace — churn, cancellations, batching and all — so every reported
// competitive ratio lands in (0, 1].
func TestRegretOfflineDominatesOnline(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := Config{Seed: seed, Tasks: 60, Sweep: []int{6, 14}, Workers: 2}
		// The small NodeCap keeps the suite fast under -race and
		// exercises the abort path; dominance holds regardless of
		// exactness because the incumbent already contains every
		// policy's force-kept assignment.
		rc := RegretConfig{Churn: 0.3, Cancel: 0.25, Window: 40, TopK: 6, LP: true, NodeCap: 50_000}
		points, err := RegretSweep(context.Background(), cfg, rc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(points) != len(cfg.Sweep) {
			t.Fatalf("seed %d: %d points, want %d", seed, len(points), len(cfg.Sweep))
		}
		for _, pt := range points {
			if len(pt.Rows) != len(RegretPolicies) {
				t.Fatalf("seed %d @%d drivers: %d rows", seed, pt.Drivers, len(pt.Rows))
			}
			for _, row := range pt.Rows {
				if row.OfflineRevenue < row.OnlineRevenue {
					t.Errorf("seed %d @%d drivers: %s online %.6f beats offline %.6f",
						seed, pt.Drivers, row.Policy, row.OnlineRevenue, row.OfflineRevenue)
				}
				if row.CompetitiveRatio <= 0 || row.CompetitiveRatio > 1 {
					t.Errorf("seed %d @%d drivers: %s ratio %.6f outside (0,1]",
						seed, pt.Drivers, row.Policy, row.CompetitiveRatio)
				}
				if row.RevenueRegret < 0 {
					t.Errorf("seed %d @%d drivers: %s negative regret %.6f",
						seed, pt.Drivers, row.Policy, row.RevenueRegret)
				}
			}
			if pt.Oracle.UpperBound < pt.Rows[0].OfflineRevenue {
				t.Errorf("seed %d @%d drivers: upper bound %.6f below objective %.6f",
					seed, pt.Drivers, pt.Oracle.UpperBound, pt.Rows[0].OfflineRevenue)
			}
		}
	}
}

// The sweep must be reproducible: same config, same result, including
// the solver statistics that feed BENCH_7.
func TestRegretSweepDeterministic(t *testing.T) {
	cfg := Config{Seed: 9, Tasks: 50, Sweep: []int{10}, Workers: 3}
	rc := RegretConfig{Churn: 0.2, Cancel: 0.1, TopK: 5, LP: true, NodeCap: 50_000}
	a, err := RegretSweep(context.Background(), cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RegretSweep(context.Background(), cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Rows {
			ra, rb := a[i].Rows[j], b[i].Rows[j]
			if ra.OnlineRevenue != rb.OnlineRevenue || ra.OfflineRevenue != rb.OfflineRevenue ||
				ra.CompetitiveRatio != rb.CompetitiveRatio || ra.OnlineServed != rb.OnlineServed {
				t.Errorf("point %d row %d differs between runs: %+v vs %+v", i, j, ra, rb)
			}
		}
		if a[i].Oracle.Nodes != b[i].Oracle.Nodes || a[i].Oracle.Exact != b[i].Oracle.Exact {
			t.Errorf("point %d oracle stats differ: %+v vs %+v", i, a[i].Oracle, b[i].Oracle)
		}
	}
}

func TestRegretFigureShape(t *testing.T) {
	cfg := Config{Seed: 3, Tasks: 40, Sweep: []int{8, 12}, Workers: 2}
	rc := RegretConfig{TopK: 4, NodeCap: 50_000}
	points, err := RegretSweep(context.Background(), cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	fig := RegretFigure(points, cfg, rc)
	if fig.ID != "regret" || len(fig.Series) != len(RegretPolicies) {
		t.Fatalf("bad figure: id=%q series=%d", fig.ID, len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != len(points) || len(s.Y) != len(points) {
			t.Errorf("series %s: %d/%d samples, want %d", s.Name, len(s.X), len(s.Y), len(points))
		}
	}
}
