package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/online"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file holds the evaluation extensions beyond the paper's figures:
//
//   - WelfareComparison quantifies §III-C vs §III-D: how much social
//     welfare is lost by optimizing drivers' profit instead of welfare
//     (the paper argues profit optimization "is enough" in practice —
//     this experiment measures the gap).
//   - SurgeSweep operationalizes the §VI-C discussion of congestion
//     control: the surge-multiplier cap is swept and its effect on serve
//     rate, revenue, per-driver earnings and earnings inequality (Gini)
//     is reported.
//   - DispatchComparison lines up every dispatch strategy in the
//     framework (the paper's two heuristics plus batched matching and
//     rolling-horizon re-optimization) against the bound on one market.
//   - ChurnSweep opens the two workloads the paper's static-fleet
//     evaluation could not express: driver churn (mid-day joins, early
//     retirements) and rider cancellations, swept over increasing
//     rates on the event-driven engine.

// WelfareRow is one line of the welfare-objective comparison.
type WelfareRow struct {
	Drivers int
	// ProfitObjective: greedy run on the p_m objective (Eq. 4), then
	// both metrics evaluated on the resulting assignment.
	ProfitObjProfit  float64
	ProfitObjWelfare float64
	// WelfareObjective: greedy run on the b_m objective (Eq. 6).
	WelfareObjProfit  float64
	WelfareObjWelfare float64
}

// WelfareComparison runs the greedy algorithm under both objectives of
// §III across the driver sweep (hitchhiking model). Sweep points run
// concurrently on cfg.Workers workers.
func WelfareComparison(ctx context.Context, cfg Config) ([]WelfareRow, error) {
	rows := make([]WelfareRow, len(cfg.Sweep))
	err := forEachIndex(ctx, cfg.Workers, len(cfg.Sweep), func(pi int) error {
		n := cfg.Sweep[pi]
		p, err := buildProblem(cfg, cfg.Seed, n, trace.Hitchhiking)
		if err != nil {
			return err
		}
		profitSol, err := core.GreedySolver{}.Solve(p)
		if err != nil {
			return err
		}
		w := p.WelfareProblem()
		welfareSol, err := core.GreedySolver{}.Solve(w)
		if err != nil {
			return err
		}
		// Evaluate the welfare solution's true profit on the original
		// problem (its Profit field is the b_m objective value).
		var welfareObjProfit float64
		g := p.Graph()
		for _, path := range welfareSol.Paths {
			pr, err := g.PathProfit(path.Driver, path.Tasks)
			if err != nil {
				return fmt.Errorf("experiments: welfare path invalid on profit view: %w", err)
			}
			welfareObjProfit += pr
		}
		rows[pi] = WelfareRow{
			Drivers:           n,
			ProfitObjProfit:   profitSol.Profit,
			ProfitObjWelfare:  profitSol.Welfare(p),
			WelfareObjProfit:  welfareObjProfit,
			WelfareObjWelfare: welfareSol.Profit, // Eq. (6) value
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WelfareFigure renders the comparison as a Figure (two welfare curves).
func WelfareFigure(rows []WelfareRow) Figure {
	fig := Figure{
		ID:     "ext-welfare",
		Title:  "Social Welfare: profit objective vs welfare objective",
		XLabel: "number of drivers", YLabel: "social welfare (Eq. 6)",
		Series: make([]Series, 2),
		Notes:  "gap = welfare left on the table by optimizing Eq. 4 instead of Eq. 6 (§III-E)",
	}
	fig.Series[0].Name = "greedy(profit obj)"
	fig.Series[1].Name = "greedy(welfare obj)"
	for _, r := range rows {
		x := float64(r.Drivers)
		fig.Series[0].X = append(fig.Series[0].X, x)
		fig.Series[0].Y = append(fig.Series[0].Y, r.ProfitObjWelfare)
		fig.Series[1].X = append(fig.Series[1].X, x)
		fig.Series[1].Y = append(fig.Series[1].Y, r.WelfareObjWelfare)
	}
	return fig
}

// SurgeRow is one line of the surge-cap sweep.
type SurgeRow struct {
	MaxAlpha  float64
	ServeRate float64
	Revenue   float64
	AvgProfit float64 // mean driver profit
	Gini      float64 // inequality of per-driver revenue
}

// SurgeSweep fixes the market (tasks, drivers) and sweeps the surge
// multiplier cap; each point re-prices the day under that cap and runs
// the maxMargin dispatcher. Cap 1.0 is flat pricing.
func SurgeSweep(ctx context.Context, cfg Config, drivers int, caps []float64) ([]SurgeRow, error) {
	tcfg := trace.NewConfig(cfg.Seed, cfg.Tasks, drivers, trace.HomeWorkHome)
	gen := trace.NewGenerator(tcfg)
	baseTasks := gen.GenerateTasks()
	drv := gen.GenerateDrivers()

	var rows []SurgeRow
	for _, cap := range caps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tasks := append([]model.Task(nil), baseTasks...)
		grid := geo.NewGrid(tcfg.Box, 6, 6)
		surge := pricing.NewSurge(pricing.NewLinear(tcfg.Market, 1), grid, cap)
		for _, d := range drv {
			surge.ObserveSupply(d.Source, 1)
		}
		var bucket float64
		for i := range tasks {
			for tasks[i].Publish > bucket+1800 {
				surge.Decay(0.7)
				bucket += 1800
			}
			surge.ObserveDemand(tasks[i].Source, 1)
			tasks[i].Price = surge.Price(tasks[i])
			tasks[i].WTP = tasks[i].Price * 1.5
		}
		eng, err := sim.New(tcfg.Market, drv, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res := eng.Run(tasks, online.MaxMargin{})
		rows = append(rows, SurgeRow{
			MaxAlpha:  cap,
			ServeRate: res.ServeRate(),
			Revenue:   res.Revenue,
			AvgProfit: res.TotalProfit / float64(len(drv)),
			Gini:      stats.Gini(res.PerDriverRevenue),
		})
	}
	return rows, nil
}

// SurgeFigure renders the sweep.
func SurgeFigure(rows []SurgeRow) Figure {
	fig := Figure{
		ID:     "ext-surge",
		Title:  "Surge cap sweep (congestion control, §VI-C)",
		XLabel: "surge multiplier cap", YLabel: "metric",
		Series: make([]Series, 4),
		Notes:  "maxMargin dispatch; revenue rescaled by 1/100 to share the axis",
	}
	names := []string{"serve-rate", "revenue/100", "avg-driver-profit", "gini(revenue)"}
	for i, name := range names {
		fig.Series[i].Name = name
	}
	for _, r := range rows {
		x := r.MaxAlpha
		vals := []float64{r.ServeRate, r.Revenue / 100, r.AvgProfit, r.Gini}
		for i := range vals {
			fig.Series[i].X = append(fig.Series[i].X, x)
			fig.Series[i].Y = append(fig.Series[i].Y, vals[i])
		}
	}
	return fig
}

// DispatchRow is one strategy's outcome in the dispatch comparison.
type DispatchRow struct {
	Name      string
	Profit    float64
	Revenue   float64
	ServeRate float64
	Ratio     float64 // profit / Z*_f estimate
}

// DispatchComparison runs every dispatch strategy in the framework on
// one market and reports profits against the relaxation bound: the
// paper's two heuristics, the batched matcher, rolling-horizon
// re-optimization, and the offline greedy as the full-information
// reference.
func DispatchComparison(ctx context.Context, cfg Config, drivers int) ([]DispatchRow, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := buildProblem(cfg, cfg.Seed, drivers, trace.Hitchhiking)
	if err != nil {
		return nil, err
	}
	greedySol, err := core.GreedySolver{}.Solve(p)
	if err != nil {
		return nil, err
	}
	ub, _ := upperBound(p, greedySol.Profit, cfg)
	eng, err := sim.New(p.Market, p.Drivers, cfg.Seed)
	if err != nil {
		return nil, err
	}

	mTasks := float64(len(p.Tasks))
	row := func(name string, profit, revenue float64, served int) DispatchRow {
		return DispatchRow{
			Name: name, Profit: profit, Revenue: revenue,
			ServeRate: float64(served) / mTasks,
			Ratio:     core.PerformanceRatio(profit, ub),
		}
	}

	nearest := eng.Run(p.Tasks, online.Nearest{})
	maxMargin := eng.Run(p.Tasks, online.MaxMargin{})
	batched := eng.RunBatched(p.Tasks, 30, sim.BatchHungarian)
	replan := eng.RunReplan(p.Tasks, 120)

	return []DispatchRow{
		row("Nearest (Alg. 3)", nearest.TotalProfit, nearest.Revenue, nearest.Served),
		row("maxMargin (Alg. 4)", maxMargin.TotalProfit, maxMargin.Revenue, maxMargin.Served),
		row("batched matching", batched.TotalProfit, batched.Revenue, batched.Served),
		row("rolling replan", replan.TotalProfit, replan.Revenue, replan.Served),
		row("offline Greedy (Alg. 1)", greedySol.Profit, greedySol.Revenue, greedySol.Served),
	}, nil
}

// DispatchFigure renders the comparison as a one-x-point-per-strategy
// figure (bar-chart shaped).
func DispatchFigure(rows []DispatchRow) Figure {
	fig := Figure{
		ID:     "ext-dispatch",
		Title:  "Dispatch strategies vs the relaxation bound",
		XLabel: "strategy index", YLabel: "profit / Z*_f",
		Series: make([]Series, 1),
	}
	fig.Series[0].Name = "ratio"
	notes := ""
	for i, r := range rows {
		fig.Series[0].X = append(fig.Series[0].X, float64(i))
		fig.Series[0].Y = append(fig.Series[0].Y, r.Ratio)
		notes += fmt.Sprintf("[%d]=%s ", i, r.Name)
	}
	fig.Notes = notes
	return fig
}

// ChurnRow is one churn rate's outcome in the churn/cancellation study.
type ChurnRow struct {
	Rate      float64 // retirement and cancellation fraction applied
	ServeRate float64 // served / published tasks
	Cancelled float64 // mean cancellations honored per day
	Profit    float64 // drivers' total profit
	Revenue   float64
}

// ChurnSweep runs the driver-churn and rider-cancellation workload: for
// each rate r, a fraction r of drivers retires early, a fraction r of
// riders cancels between publish and pickup, and r/2 of the fleet is
// announced mid-day rather than upfront (a joiner cannot be
// pre-assigned demand published before her announcement, so all three
// knobs shrink what the dispatcher can do). Each rate averages over
// cfg.Replications consecutive seeds and every (rate, seed) point runs
// concurrently on cfg.Workers workers, simulated with maxMargin
// dispatch on the event-driven engine (sharded per cfg.Shards).
//
// Rate 0 reproduces the static Figs 6–9 market exactly, which anchors
// the curves: everything the sweep shows beyond the first point is
// dynamics the paper's evaluation never reached.
func ChurnSweep(ctx context.Context, cfg Config, drivers int, rates []float64) ([]ChurnRow, error) {
	reps := cfg.replications()
	type point struct {
		served, cancelled int
		profit, revenue   float64
	}
	pts := make([]point, len(rates)*reps)
	err := forEachIndex(ctx, cfg.Workers, len(pts), func(k int) error {
		rate, seed := rates[k/reps], cfg.Seed+int64(k%reps)
		tcfg := trace.NewConfig(seed, cfg.Tasks, drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(tcfg).Generate(nil)
		events := trace.WithChurn(tr, trace.DefaultChurn(seed, rate, rate))
		eng, err := sim.New(tcfg.Market, tr.Drivers, seed)
		if err != nil {
			return err
		}
		if cfg.Shards > 1 {
			eng.SetCandidateSource(sim.NewShardedSource(cfg.Shards))
		}
		res := eng.RunScenario(tr.Tasks, events, online.MaxMargin{})
		pts[k] = point{res.Served, res.Cancelled, res.TotalProfit, res.Revenue}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ChurnRow, len(rates))
	for ri, rate := range rates {
		row := ChurnRow{Rate: rate}
		for r := 0; r < reps; r++ {
			p := pts[ri*reps+r]
			row.ServeRate += float64(p.served)
			row.Cancelled += float64(p.cancelled)
			row.Profit += p.profit
			row.Revenue += p.revenue
		}
		row.ServeRate /= float64(reps * cfg.Tasks)
		row.Cancelled /= float64(reps)
		row.Profit /= float64(reps)
		row.Revenue /= float64(reps)
		rows[ri] = row
	}
	return rows, nil
}

// ChurnFigure renders the churn study: serve rate and profit (relative
// to the churn-free day) as the churn/cancellation rate rises.
func ChurnFigure(rows []ChurnRow) Figure {
	fig := Figure{
		ID:     "ext-churn",
		Title:  "Driver churn and rider cancellations",
		XLabel: "churn / cancellation rate", YLabel: "fraction of the static day",
		Series: make([]Series, 3),
	}
	fig.Series[0].Name = "serve rate"
	fig.Series[1].Name = "profit / no-churn profit"
	fig.Series[2].Name = "cancelled (count)"
	base := 1.0
	if len(rows) > 0 && rows[0].Profit != 0 {
		base = rows[0].Profit
	}
	for _, r := range rows {
		fig.Series[0].X = append(fig.Series[0].X, r.Rate)
		fig.Series[0].Y = append(fig.Series[0].Y, r.ServeRate)
		fig.Series[1].X = append(fig.Series[1].X, r.Rate)
		fig.Series[1].Y = append(fig.Series[1].Y, r.Profit/base)
		fig.Series[2].X = append(fig.Series[2].X, r.Rate)
		fig.Series[2].Y = append(fig.Series[2].Y, r.Cancelled)
	}
	fig.Notes = "rate 0 = the static-fleet market of Figs 6-9; cancelled series is absolute counts"
	return fig
}
