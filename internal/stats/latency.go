package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// LatencyHist is a fixed-size HDR-style histogram for latency samples.
// Values are bucketed at 1µs resolution into log2 octaves of 64 linear
// sub-buckets each, which bounds the relative quantile error at ~1.6%
// while keeping the whole structure a flat array of counters. Record is
// safe for concurrent use (atomic adds); readers (Quantile, Count, Max,
// Merge destination) must not race with writers — snapshot after the
// load completes, which is how both the bench sweep and loadgen use it.
//
// The range covers 1µs to ~4295s; larger samples clamp into the top
// bucket rather than widening the array.
type LatencyHist struct {
	counts  [latSlots]int64
	n       int64
	maxBits uint64 // math.Float64bits of the largest recorded sample
}

const (
	latUnit    = 1e-6 // seconds per count: 1µs resolution at the bottom
	latSubBits = 6
	latSub     = 1 << latSubBits // 64 linear sub-buckets per octave
	latOctaves = 26              // top of range: 128µs << 25 ≈ 4295s
	latSlots   = latSub + latOctaves*latSub
)

// Record adds one latency sample, given in seconds. Negative and NaN
// samples count as zero.
func (h *LatencyHist) Record(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		seconds = 0
	}
	atomic.AddInt64(&h.counts[latSlot(seconds)], 1)
	atomic.AddInt64(&h.n, 1)
	want := math.Float64bits(seconds)
	for {
		cur := atomic.LoadUint64(&h.maxBits)
		// Non-negative IEEE floats order the same as their bit patterns.
		if want <= cur {
			return
		}
		if atomic.CompareAndSwapUint64(&h.maxBits, cur, want) {
			return
		}
	}
}

// latSlot maps a sample in seconds to its bucket index.
func latSlot(seconds float64) int {
	u := uint64(seconds / latUnit)
	if u < latSub {
		return int(u)
	}
	o := bits.Len64(u) - latSubBits - 1
	if o >= latOctaves {
		return latSlots - 1
	}
	return o*latSub + int(u>>uint(o))
}

// latUpper returns the upper bound, in seconds, of bucket slot.
func latUpper(slot int) float64 {
	if slot < latSub {
		return float64(slot+1) * latUnit
	}
	o := slot/latSub - 1
	sub := slot % latSub
	return float64(uint64(latSub+sub+1)<<uint(o)) * latUnit
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() int64 { return atomic.LoadInt64(&h.n) }

// Max returns the largest recorded sample in seconds (0 when empty).
func (h *LatencyHist) Max() float64 {
	return math.Float64frombits(atomic.LoadUint64(&h.maxBits))
}

// Quantile returns the q-quantile (0 < q ≤ 1) in seconds as the upper
// bound of the bucket holding the q-th sample, clamped to the observed
// maximum so the reported tail never exceeds a real sample. It returns
// 0 for an empty histogram.
func (h *LatencyHist) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	var seen int64
	for slot := 0; slot < latSlots; slot++ {
		seen += atomic.LoadInt64(&h.counts[slot])
		if seen >= target {
			up := latUpper(slot)
			if max := h.Max(); up > max {
				return max
			}
			return up
		}
	}
	return h.Max()
}

// Merge adds every sample recorded in o into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	for slot := 0; slot < latSlots; slot++ {
		if c := atomic.LoadInt64(&o.counts[slot]); c != 0 {
			atomic.AddInt64(&h.counts[slot], c)
		}
	}
	atomic.AddInt64(&h.n, atomic.LoadInt64(&o.n))
	om := o.Max()
	for {
		cur := atomic.LoadUint64(&h.maxBits)
		if math.Float64bits(om) <= cur {
			return
		}
		if atomic.CompareAndSwapUint64(&h.maxBits, cur, math.Float64bits(om)) {
			return
		}
	}
}

// LatencySummary is the percentile family reported by benches and
// loadgen, in milliseconds.
type LatencySummary struct {
	N      int64   `json:"n"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary snapshots the percentile family in milliseconds.
func (h *LatencyHist) Summary() LatencySummary {
	const ms = 1e3
	return LatencySummary{
		N:      h.Count(),
		P50Ms:  h.Quantile(0.50) * ms,
		P90Ms:  h.Quantile(0.90) * ms,
		P95Ms:  h.Quantile(0.95) * ms,
		P99Ms:  h.Quantile(0.99) * ms,
		P999Ms: h.Quantile(0.999) * ms,
		MaxMs:  h.Max() * ms,
	}
}
