// Package stats provides the statistical primitives the evaluation
// harness uses to reproduce the paper's distribution figures (Figs 3–4:
// travel-time and travel-distance distributions, which exhibit power-law
// shape) and to summarize simulation metrics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N               int
	Min, Max        float64
	Mean, Std       float64
	P50, P90, P99   float64
	Sum             float64
	SkewIndex       float64 // mean / median, a cheap heavy-tail indicator
	CoeffOfVariance float64 // std / mean
}

// Summarize computes descriptive statistics for xs. It returns the zero
// Summary for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)

	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(sorted)))

	s := Summary{
		N:    len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: mean,
		Std:  std,
		P50:  Quantile(sorted, 0.50),
		P90:  Quantile(sorted, 0.90),
		P99:  Quantile(sorted, 0.99),
		Sum:  sum,
	}
	if s.P50 != 0 {
		s.SkewIndex = mean / s.P50
	}
	if mean != 0 {
		s.CoeffOfVariance = std / mean
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation. It panics if sorted is empty.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Bin is one histogram bucket.
type Bin struct {
	Lo, Hi float64 // [Lo, Hi)
	Count  int
	// Density is Count normalized by total count and bin width, so the
	// histogram integrates to 1 and can be compared against a pdf.
	Density float64
}

// Histogram bins xs into n equal-width buckets spanning [min, max].
// Values exactly equal to max land in the last bucket.
func Histogram(xs []float64, n int) []Bin {
	if n <= 0 {
		panic(fmt.Sprintf("stats: non-positive bin count %d", n))
	}
	if len(xs) == 0 {
		return nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(n)
	bins := make([]Bin, n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = bins[i].Lo + width
	}
	for _, x := range xs {
		i := int((x - lo) / width)
		if i >= n {
			i = n - 1
		}
		bins[i].Count++
	}
	total := float64(len(xs))
	for i := range bins {
		bins[i].Density = float64(bins[i].Count) / (total * width)
	}
	return bins
}

// LogHistogram bins positive xs into n logarithmically-spaced buckets.
// Non-positive values are dropped. Log binning is the standard rendering
// for power-law distributions (paper Figs 3–4).
func LogHistogram(xs []float64, n int) []Bin {
	if n <= 0 {
		panic(fmt.Sprintf("stats: non-positive bin count %d", n))
	}
	var pos []float64
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) == 0 {
		return nil
	}
	lo, hi := pos[0], pos[0]
	for _, x := range pos {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		hi = lo * 2
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	width := (logHi - logLo) / float64(n)
	bins := make([]Bin, n)
	for i := range bins {
		bins[i].Lo = math.Exp(logLo + float64(i)*width)
		bins[i].Hi = math.Exp(logLo + float64(i+1)*width)
	}
	for _, x := range pos {
		i := int((math.Log(x) - logLo) / width)
		if i >= n {
			i = n - 1
		}
		if i < 0 {
			i = 0
		}
		bins[i].Count++
	}
	total := float64(len(pos))
	for i := range bins {
		w := bins[i].Hi - bins[i].Lo
		bins[i].Density = float64(bins[i].Count) / (total * w)
	}
	return bins
}

// CCDFPoint is one point of a complementary CDF.
type CCDFPoint struct {
	X float64 // value
	P float64 // Pr[sample > X]
}

// CCDF returns the empirical complementary CDF of xs evaluated at every
// distinct sample value, ascending in X. A straight line of the CCDF on
// log-log axes is the signature of a power law.
func CCDF(xs []float64) []CCDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []CCDFPoint
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, CCDFPoint{X: sorted[i], P: float64(len(sorted)-j) / n})
		i = j
	}
	return out
}

// PowerLawFit holds the result of a continuous power-law MLE fit
// p(x) ∝ x^(−Alpha) for x ≥ XMin (the Hill estimator).
type PowerLawFit struct {
	Alpha float64 // fitted exponent (> 1 for a proper distribution)
	XMin  float64 // lower cutoff used in the fit
	N     int     // number of tail samples used
}

// FitPowerLaw fits a continuous power-law tail to the samples ≥ xmin
// using maximum likelihood: α̂ = 1 + n / Σ ln(x_i / xmin). It returns an
// error when fewer than two samples survive the cutoff.
func FitPowerLaw(xs []float64, xmin float64) (PowerLawFit, error) {
	if xmin <= 0 {
		return PowerLawFit{}, fmt.Errorf("stats: xmin must be positive, got %g", xmin)
	}
	var sum float64
	var n int
	for _, x := range xs {
		if x >= xmin {
			sum += math.Log(x / xmin)
			n++
		}
	}
	if n < 2 || sum <= 0 {
		return PowerLawFit{}, fmt.Errorf("stats: insufficient tail samples (%d) above xmin=%g", n, xmin)
	}
	return PowerLawFit{Alpha: 1 + float64(n)/sum, XMin: xmin, N: n}, nil
}

// TailHeaviness returns the ratio P99/P50 of the sample, a scale-free
// indicator of heavy tails used by tests to assert that generated traces
// exhibit the paper's power-law shape.
func TailHeaviness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	p50 := Quantile(sorted, 0.50)
	if p50 == 0 {
		return 0
	}
	return Quantile(sorted, 0.99) / p50
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Gini returns the Gini coefficient of the sample (0 = perfectly equal,
// →1 = maximally concentrated). The market-design discussion of §VI-C is
// about congestion and participant welfare; the Gini of per-driver
// earnings quantifies how evenly a dispatch policy spreads income.
// Negative values are not meaningful for earnings and cause a 0 return,
// as does an empty or all-zero sample.
func Gini(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		if x < 0 {
			return 0
		}
		total += x
	}
	if len(xs) == 0 || total == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// G = (2 Σ_i i·x_(i) / (n Σ x)) − (n+1)/n with 1-based ranks.
	var weighted float64
	for i, x := range sorted {
		weighted += float64(i+1) * x
	}
	n := float64(len(sorted))
	return 2*weighted/(n*total) - (n+1)/n
}
