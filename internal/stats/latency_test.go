package stats

import (
	"math"
	"sync"
	"testing"
)

func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if h.Count() != 0 {
		t.Fatalf("empty Count = %d", h.Count())
	}
	if h.Quantile(0.99) != 0 {
		t.Fatalf("empty Quantile = %g", h.Quantile(0.99))
	}
	if h.Max() != 0 {
		t.Fatalf("empty Max = %g", h.Max())
	}
	s := h.Summary()
	if s.N != 0 || s.P999Ms != 0 || s.MaxMs != 0 {
		t.Fatalf("empty Summary = %+v", s)
	}
}

func TestLatencyHistQuantileAccuracy(t *testing.T) {
	var h LatencyHist
	// Uniform 1..1000 ms, one sample each.
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i) * 1e-3)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	checks := []struct{ q, want float64 }{
		{0.50, 0.500},
		{0.90, 0.900},
		{0.99, 0.990},
		{0.999, 0.999},
		{1.0, 1.000},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if rel := math.Abs(got-c.want) / c.want; rel > 0.02 {
			t.Errorf("Quantile(%g) = %g, want %g ± 2%%", c.q, got, c.want)
		}
	}
	if got := h.Max(); got != 1.0 {
		t.Errorf("Max = %g, want exactly 1.0", got)
	}
}

func TestLatencyHistMonotoneAndClamped(t *testing.T) {
	var h LatencyHist
	h.Record(0)
	h.Record(250e-6)
	h.Record(3e-3)
	h.Record(42e-3)
	h.Record(1.7)
	qs := []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1}
	prev := -1.0
	for _, q := range qs {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g: not monotone", q, v, prev)
		}
		prev = v
	}
	// The top of the distribution must be the real observed max, not a
	// bucket upper bound beyond it.
	if got := h.Quantile(1); got != 1.7 {
		t.Fatalf("Quantile(1) = %g, want clamped to max 1.7", got)
	}
}

func TestLatencyHistOutOfRange(t *testing.T) {
	var h LatencyHist
	h.Record(-5)         // negative counts as zero
	h.Record(math.NaN()) // NaN counts as zero
	h.Record(1e6)        // past the top octave: clamps, does not panic
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if got := h.Quantile(0.5); got != 1e6 && got > 1e6 {
		t.Fatalf("median of {0,0,1e6} = %g", got)
	}
	if got := h.Max(); got != 1e6 {
		t.Fatalf("Max = %g, want 1e6", got)
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b LatencyHist
	for i := 0; i < 100; i++ {
		a.Record(1e-3)
	}
	for i := 0; i < 100; i++ {
		b.Record(100e-3)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged Count = %d, want 200", a.Count())
	}
	if med := a.Quantile(0.5); med > 2e-3 {
		t.Fatalf("merged median = %g, want ~1ms", med)
	}
	if p99 := a.Quantile(0.99); p99 < 90e-3 {
		t.Fatalf("merged p99 = %g, want ~100ms", p99)
	}
	if a.Max() != b.Max() {
		t.Fatalf("merged Max = %g, want %g", a.Max(), b.Max())
	}
}

func TestLatencyHistConcurrentRecord(t *testing.T) {
	var h LatencyHist
	const (
		workers = 8
		per     = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(float64(w+1) * 1e-3)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	if max := h.Max(); math.Abs(max-8e-3) > 1e-9 {
		t.Fatalf("Max = %g, want 8ms", max)
	}
}

func TestLatencySummaryOrdered(t *testing.T) {
	var h LatencyHist
	for i := 1; i <= 5000; i++ {
		h.Record(float64(i%97+1) * 1e-4)
	}
	s := h.Summary()
	if s.N != 5000 {
		t.Fatalf("Summary N = %d", s.N)
	}
	if !(s.P50Ms <= s.P90Ms && s.P90Ms <= s.P95Ms && s.P95Ms <= s.P99Ms &&
		s.P99Ms <= s.P999Ms && s.P999Ms <= s.MaxMs) {
		t.Fatalf("summary percentiles not ordered: %+v", s)
	}
	if s.P50Ms <= 0 {
		t.Fatalf("P50Ms = %g, want > 0", s.P50Ms)
	}
}

func TestLatencySlotRoundTrip(t *testing.T) {
	// Every sample must land in a bucket whose upper bound is ≥ the
	// sample; above the 64µs linear region the bucket is within ~1.6%
	// (one sub-bucket) of the sample, below it within 1µs absolute.
	for _, sec := range []float64{1e-6, 63e-6, 64e-6, 65e-6, 1e-3, 17e-3, 0.999, 1, 60, 3600} {
		slot := latSlot(sec)
		up := latUpper(slot)
		if up < sec {
			t.Errorf("latUpper(latSlot(%g)) = %g < sample", sec, up)
		}
		if sec < 64e-6 {
			if up-sec > 1.000001e-6 {
				t.Errorf("bucket for %g too wide: upper %g", sec, up)
			}
		} else if rel := (up - sec) / sec; rel > 0.033 {
			t.Errorf("bucket for %g too wide: upper %g (rel %g)", sec, up, rel)
		}
	}
}
