package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("basic fields wrong: %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 || math.Abs(s.P50-3) > 1e-12 {
		t.Fatalf("mean/median wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std = %g, want sqrt(2)", s.Std)
	}
	if math.Abs(s.Sum-15) > 1e-12 {
		t.Fatalf("sum = %g", s.Sum)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty sample: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, tc := range cases {
		if got := Quantile(sorted, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestHistogramCountsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 10
	}
	bins := Histogram(xs, 20)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(xs) {
		t.Fatalf("histogram dropped samples: %d of %d", total, len(xs))
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	var integral float64
	for _, b := range Histogram(xs, 30) {
		integral += b.Density * (b.Hi - b.Lo)
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("density integral = %g, want 1", integral)
	}
}

func TestHistogramDegenerateSample(t *testing.T) {
	bins := Histogram([]float64{5, 5, 5}, 4)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("degenerate histogram lost samples: %d", total)
	}
}

func TestLogHistogramDropsNonPositive(t *testing.T) {
	bins := LogHistogram([]float64{-1, 0, 1, 10, 100}, 5)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("log histogram counted %d, want 3 positive samples", total)
	}
	for i := 1; i < len(bins); i++ {
		if bins[i].Lo <= bins[i-1].Lo {
			t.Fatal("log bins not increasing")
		}
	}
}

func TestLogHistogramEmpty(t *testing.T) {
	if bins := LogHistogram([]float64{-2, 0}, 4); bins != nil {
		t.Fatalf("expected nil bins, got %v", bins)
	}
}

func TestCCDFProperties(t *testing.T) {
	xs := []float64{1, 1, 2, 3, 3, 3}
	pts := CCDF(xs)
	if len(pts) != 3 {
		t.Fatalf("distinct values = %d, want 3", len(pts))
	}
	// P[>1] = 4/6, P[>2] = 3/6, P[>3] = 0.
	want := []float64{4.0 / 6, 3.0 / 6, 0}
	for i, p := range pts {
		if math.Abs(p.P-want[i]) > 1e-12 {
			t.Errorf("CCDF[%d] = %g, want %g", i, p.P, want[i])
		}
	}
}

func TestCCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		pts := CCDF(raw)
		for i := 1; i < len(pts); i++ {
			if pts[i].P > pts[i-1].P || pts[i].X <= pts[i-1].X {
				return false
			}
		}
		return pts[len(pts)-1].P == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	// Sample from a pure Pareto with α = 2.5 and check the MLE.
	rng := rand.New(rand.NewSource(3))
	const alpha = 2.5
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = math.Pow(rng.Float64(), -1/(alpha-1)) // xmin = 1
	}
	fit, err := FitPowerLaw(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 0.1 {
		t.Fatalf("fitted α = %.3f, want ≈ %.1f", fit.Alpha, alpha)
	}
	if fit.N != len(xs) {
		t.Fatalf("tail count %d, want %d", fit.N, len(xs))
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1, 2}, 0); err == nil {
		t.Error("xmin = 0 accepted")
	}
	if _, err := FitPowerLaw([]float64{0.5}, 1); err == nil {
		t.Error("no tail samples accepted")
	}
}

func TestTailHeaviness(t *testing.T) {
	// A heavy-tailed sample has far higher P99/P50 than a uniform one.
	rng := rand.New(rand.NewSource(4))
	uniform := make([]float64, 5000)
	pareto := make([]float64, 5000)
	for i := range uniform {
		uniform[i] = 1 + rng.Float64()
		pareto[i] = math.Pow(rng.Float64(), -1/1.5)
	}
	hu := TailHeaviness(uniform)
	hp := TailHeaviness(pareto)
	if hp < 3*hu {
		t.Fatalf("pareto heaviness %.2f not clearly above uniform %.2f", hp, hu)
	}
	if TailHeaviness(nil) != 0 {
		t.Error("empty sample should report 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
}

func TestGiniKnownValues(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Errorf("equal sample Gini = %g, want 0", g)
	}
	// One person has everything: G = (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 10}); math.Abs(g-0.75) > 1e-12 {
		t.Errorf("concentrated Gini = %g, want 0.75", g)
	}
	// Textbook example: {1,2,3,4} → G = 0.25.
	if g := Gini([]float64{4, 1, 3, 2}); math.Abs(g-0.25) > 1e-12 {
		t.Errorf("Gini({1..4}) = %g, want 0.25", g)
	}
}

func TestGiniDegenerate(t *testing.T) {
	if Gini(nil) != 0 {
		t.Error("empty sample should be 0")
	}
	if Gini([]float64{0, 0}) != 0 {
		t.Error("all-zero sample should be 0")
	}
	if Gini([]float64{3, -1}) != 0 {
		t.Error("negative earnings should return 0")
	}
}

func TestGiniScaleInvariant(t *testing.T) {
	xs := []float64{1, 4, 2, 9, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * 1000
	}
	if math.Abs(Gini(xs)-Gini(ys)) > 1e-12 {
		t.Error("Gini should be scale invariant")
	}
}
