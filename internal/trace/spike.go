package trace

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// Spike is a transient demand surge layered onto the daily curve: for
// publish times inside [Start, End) the arrival intensity gains Weight
// (in the units of DemandIntensity, whose baseline day peaks at ~2.75)
// and the extra arrivals' pickups are drawn from a Gaussian around
// Center instead of the regular hotspot mixture. A flight bank landing
// at the airport or a stadium emptying after a match are spikes; the
// morning and evening rush hours are not — they are already part of
// DemandIntensity.
//
// Spikes exist to exercise live surge pricing: a spiked trace
// concentrates demand in one zone faster than supply can follow, which
// is exactly the imbalance pricing.Surge amplifies.
type Spike struct {
	Center geo.Point
	StdKm  float64 // spatial standard deviation of spiked pickups, km
	Start  float64 // seconds, inclusive
	End    float64 // seconds, exclusive
	Weight float64 // added arrival intensity while active
}

// AirportEveningSpike is the stock scenario: an evening flight bank at
// Porto airport, 5pm–8pm, roughly doubling the citywide evening peak.
func AirportEveningSpike() Spike {
	return Spike{
		Center: geo.Point{Lat: 41.2371, Lon: -8.6700},
		StdKm:  1.2,
		Start:  17 * 3600,
		End:    20 * 3600,
		Weight: 2.5,
	}
}

// validateSpikes is called from Config.Validate.
func validateSpikes(spikes []Spike) error {
	for i, s := range spikes {
		switch {
		case !(s.Weight > 0):
			return fmt.Errorf("trace: spike %d weight %g, want > 0", i, s.Weight)
		case !(s.StdKm > 0):
			return fmt.Errorf("trace: spike %d std %g km, want > 0", i, s.StdKm)
		case !(s.Start < s.End):
			return fmt.Errorf("trace: spike %d empty window [%g, %g)", i, s.Start, s.End)
		}
	}
	return nil
}

// spikeBoost is the total extra arrival intensity at absolute time t.
func (c *Config) spikeBoost(t float64) float64 {
	var boost float64
	for _, s := range c.Spikes {
		if t >= s.Start && t < s.End {
			boost += s.Weight
		}
	}
	return boost
}

// intensityAt is the full arrival intensity at absolute time t: the
// daily demand curve plus any active spikes.
func (c *Config) intensityAt(t float64) float64 {
	return DemandIntensity(t-c.DayStart) + c.spikeBoost(t)
}

// intensityMax is an upper bound on intensityAt over the whole day,
// used as the thinning envelope. With no spikes it is exactly the
// historical constant, so spike-free traces are byte-identical to those
// generated before spikes existed.
func (c *Config) intensityMax() float64 {
	const lambdaMax = 2.75 // ≥ max of DemandIntensity
	bound := lambdaMax
	for _, s := range c.Spikes {
		bound += s.Weight
	}
	return bound
}

// samplePickupAt draws the pickup location for a task published at
// absolute time t. With no spikes it is exactly samplePickup — no extra
// RNG draws, keeping spike-free traces byte-identical. With spikes
// active at t, the pickup comes from a spike's Gaussian with
// probability Weight/intensityAt (each spike's share of the boosted
// intensity), else from the regular hotspot mixture.
func (g *Generator) samplePickupAt(t float64) geo.Point {
	if len(g.cfg.Spikes) == 0 {
		return g.samplePickup()
	}
	r := g.rng.Float64() * g.cfg.intensityAt(t)
	for _, s := range g.cfg.Spikes {
		if t < s.Start || t >= s.End {
			continue
		}
		if r < s.Weight {
			bearing := g.rng.Float64() * 2 * math.Pi
			dist := math.Abs(g.rng.NormFloat64()) * s.StdKm
			return g.cfg.Box.Clamp(geo.Offset(s.Center, bearing, dist))
		}
		r -= s.Weight
	}
	return g.samplePickup()
}
