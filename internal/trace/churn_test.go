package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/model"
)

func TestWithChurnDeterministicAndValid(t *testing.T) {
	cfg := NewConfig(3, 120, 40, Hitchhiking)
	tr := NewGenerator(cfg).Generate(nil)
	cc := ChurnConfig{Seed: 9, JoinFraction: 0.3, RetireFraction: 0.25, CancelFraction: 0.2}

	evs := WithChurn(tr, cc)
	if len(evs) == 0 {
		t.Fatal("churn config with positive rates produced no events")
	}
	if again := WithChurn(tr, cc); !reflect.DeepEqual(evs, again) {
		t.Fatal("WithChurn is not deterministic for a fixed seed")
	}
	if err := model.ValidateEvents(evs, tr.Drivers, tr.Tasks); err != nil {
		t.Fatalf("generated events fail validation: %v", err)
	}
	var joins, retires, cancels int
	for i, ev := range evs {
		if i > 0 && ev.At < evs[i-1].At {
			t.Fatalf("events not sorted by time: %v after %v", ev, evs[i-1])
		}
		switch ev.Kind {
		case model.EventJoin:
			joins++
			if ev.At != tr.Drivers[ev.Driver].Start {
				t.Fatalf("join event at %.1f, want driver %d shift start %.1f", ev.At, ev.Driver, tr.Drivers[ev.Driver].Start)
			}
		case model.EventRetire:
			retires++
			d := tr.Drivers[ev.Driver]
			if ev.At < d.Start || ev.At > d.End {
				t.Fatalf("retire event at %.1f outside driver %d shift [%.1f, %.1f]", ev.At, ev.Driver, d.Start, d.End)
			}
		case model.EventCancel:
			cancels++
			tk := tr.Tasks[ev.Task]
			if ev.At <= tk.Publish || ev.At > tk.StartBy {
				t.Fatalf("cancel event at %.1f outside task %d window (%.1f, %.1f]", ev.At, ev.Task, tk.Publish, tk.StartBy)
			}
		}
	}
	if joins == 0 || retires == 0 || cancels == 0 {
		t.Fatalf("expected all three kinds, got joins=%d retires=%d cancels=%d", joins, retires, cancels)
	}

	if evs := WithChurn(tr, ChurnConfig{Seed: 9}); len(evs) != 0 {
		t.Fatalf("zero-rate churn produced %d events", len(evs))
	}
}

func TestWithChurnRejectsBadFractions(t *testing.T) {
	tr := NewGenerator(NewConfig(3, 5, 2, Hitchhiking)).Generate(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("WithChurn with a negative fraction did not panic")
		}
	}()
	WithChurn(tr, ChurnConfig{CancelFraction: -0.1})
}

// TestEventsJSONRoundTrip: traces carry their events through the JSON
// format unchanged, and event-free traces stay byte-compatible.
func TestEventsJSONRoundTrip(t *testing.T) {
	cfg := NewConfig(5, 30, 10, HomeWorkHome)
	tr := NewGenerator(cfg).Generate(nil)
	tr.Events = WithChurn(tr, ChurnConfig{Seed: 2, RetireFraction: 0.5, CancelFraction: 0.5})

	var buf bytes.Buffer
	if err := model.WriteTraceJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := model.ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("trace with events did not survive a JSON round trip")
	}

	buf.Reset()
	plain := model.Trace{Drivers: tr.Drivers, Tasks: tr.Tasks}
	if err := model.WriteTraceJSON(&buf, plain); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"events"`)) {
		t.Fatal("event-free trace serialized an events field")
	}
}
