package trace

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// This file derives dynamic market events — driver churn and rider
// cancellations — from an already-generated trace. Churn is sampled by
// a dedicated RNG seeded independently of the trace generator, so
// adding events to a trace never perturbs the tasks and drivers it was
// generated with: the same (trace seed, churn config) pair always
// yields the same scenario, and a zero-rate config yields no events.

// ChurnConfig parameterizes WithChurn. All fractions are in [0, 1];
// the zero value produces no events.
type ChurnConfig struct {
	Seed int64

	// JoinFraction of drivers are announced mid-day instead of being
	// known upfront: each gets a join event at her shift start. Before
	// the join the platform does not know the driver exists, so a task
	// published earlier can never be pre-assigned to her — upfront
	// rosters allow exactly that (Algorithms 3–4 admit a driver whose
	// shift starts before the pickup deadline), so joins genuinely
	// shrink the information the dispatcher acts on.
	JoinFraction float64

	// RetireFraction of drivers retire early, at a uniformly random
	// point inside their shift; from then on they accept no new tasks.
	RetireFraction float64

	// CancelFraction of tasks are cancelled by their rider at a
	// uniformly random time between publication and the pickup deadline.
	CancelFraction float64
}

// DefaultChurn is the convention shared by the CLI flags and the
// experiment harness: a churn rate retires that fraction of drivers
// early and announces half of it mid-day, a cancel rate withdraws that
// fraction of tasks, and the sampling seed is offset from the trace
// seed (by an arbitrary prime) so churn never perturbs the trace
// stream it decorates.
func DefaultChurn(seed int64, churn, cancel float64) ChurnConfig {
	return ChurnConfig{
		Seed:           seed + 7919,
		JoinFraction:   churn / 2,
		RetireFraction: churn,
		CancelFraction: cancel,
	}
}

// Validate reports whether the configuration is usable.
func (c ChurnConfig) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("trace: churn %s fraction %g outside [0,1]", name, v)
		}
		return nil
	}
	if err := check("join", c.JoinFraction); err != nil {
		return err
	}
	if err := check("retire", c.RetireFraction); err != nil {
		return err
	}
	return check("cancel", c.CancelFraction)
}

// WithChurn samples churn and cancellation events for the trace and
// returns them sorted by time (ties by sampling order). The trace
// itself is not modified; stamp the result onto Trace.Events. A driver
// may be both a mid-day joiner and an early retiree — that is exactly
// what a part-time driver dropping in for two hours looks like.
func WithChurn(tr model.Trace, cfg ChurnConfig) []model.MarketEvent {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var events []model.MarketEvent
	for i, d := range tr.Drivers {
		if rng.Float64() < cfg.JoinFraction {
			events = append(events, model.MarketEvent{At: d.Start, Kind: model.EventJoin, Driver: i})
		}
		if rng.Float64() < cfg.RetireFraction {
			at := d.Start + rng.Float64()*(d.End-d.Start)
			events = append(events, model.MarketEvent{At: at, Kind: model.EventRetire, Driver: i})
		}
	}
	for i, t := range tr.Tasks {
		if rng.Float64() < cfg.CancelFraction {
			// Strictly after publish: cancellations race the dispatch
			// decision only through the pickup, never the publication.
			at := t.Publish + (0.05+0.95*rng.Float64())*(t.StartBy-t.Publish)
			events = append(events, model.MarketEvent{At: at, Kind: model.EventCancel, Task: i})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
	return events
}
