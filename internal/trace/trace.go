// Package trace generates synthetic Porto-like taxi traces.
//
// The paper evaluates on the ECML/PKDD'15 Porto dataset: a year of
// trajectories for the 442 taxis of Porto, Portugal, from which it draws
// (a) trip records with publish/start/end times, sources and
// destinations, and (b) driver shifts derived from driver IDs and trip
// timestamps. That dataset is not redistributable here, so this package
// is the substitution documented in DESIGN.md: a deterministic generator
// that reproduces the properties the evaluation actually consumes —
//
//   - travel-time and travel-distance distributions with power-law shape
//     (paper Figs 3–4), via bounded-Pareto trip lengths;
//   - a daily demand curve with morning and evening rush peaks, via a
//     non-homogeneous Poisson arrival process (thinning);
//   - driver shifts of ~4 hours (the paper cites 4h average Uber working
//     periods), with the two working models of §VI-A: "home-work-home"
//     (source == destination) and "hitchhiking" (distinct endpoints);
//   - spatial concentration around city hotspots, via a Gaussian-mixture
//     pickup model over the Porto bounding box.
//
// All sampling is driven by a seeded *rand.Rand, so traces are fully
// reproducible.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/pricing"
)

// DriverModel selects how driver sources/destinations are generated
// (§VI-A of the paper).
type DriverModel int

const (
	// HomeWorkHome: the driver leaves a fixed place and returns to it
	// after the working period — the full-time (Uber) model.
	HomeWorkHome DriverModel = iota
	// Hitchhiking: the driver has distinct source and destination — the
	// part-time commuter (Waze Rider) model.
	Hitchhiking
)

// String implements fmt.Stringer.
func (m DriverModel) String() string {
	switch m {
	case HomeWorkHome:
		return "home-work-home"
	case Hitchhiking:
		return "hitchhiking"
	default:
		return fmt.Sprintf("DriverModel(%d)", int(m))
	}
}

// Config parameterizes trace generation. NewConfig returns the defaults
// used by the experiment harness; zero values elsewhere are invalid.
type Config struct {
	Seed    int64
	Box     geo.BoundingBox
	Market  model.Market
	Tasks   int // number of customer tasks (orders)
	Drivers int // number of drivers
	Model   DriverModel

	// Day window in seconds; tasks are published within it.
	DayStart, DayEnd float64

	// Trip-length distribution: bounded Pareto on
	// [TripMinKm, TripMaxKm] with *tail* (CCDF) exponent TripAlpha,
	// i.e. Pr[X > x] ∝ x^(−TripAlpha) and pdf ∝ x^(−TripAlpha−1).
	// Alpha ≈ 2.2 matches the heavy-tailed shape of the Porto trips in
	// Figs 3–4.
	TripAlpha            float64
	TripMinKm, TripMaxKm float64

	// PickupWindow bounds on t̄−_m − t̄_m: how far ahead of the pickup
	// deadline customers publish. Porto taxi rides are near-immediate
	// hails, so the default notice is short (1–6 min); this is also what
	// gives the offline algorithm its information advantage in Fig. 5 —
	// it can pre-position drivers toward pickups that online dispatchers
	// have not seen yet.
	PickupWindowMin, PickupWindowMax float64

	// SlackMin/Max multiply the direct service time to produce the
	// dropoff deadline window t̄+_m − t̄−_m. The Porto trace records
	// *actual* trip start/finish timestamps, so the paper's windows
	// equal the realized ride duration; keep the slack close to 1 to
	// preserve that property (large slack makes the offline
	// deadline-based model artificially conservative relative to the
	// real-time online simulator).
	SlackMin, SlackMax float64

	// Driver shifts: start uniform over the day (biased toward rush
	// hours), length normal with the given mean/std, clamped.
	ShiftMean, ShiftStd      float64
	ShiftMinLen, ShiftMaxLen float64

	// Hotspots is the Gaussian mixture for pickup locations. Empty
	// means PortoHotspots.
	Hotspots []Hotspot

	// Spikes layers transient demand surges (flight banks, stadium
	// lets-out) onto the daily curve; see Spike. Empty means none, and
	// a spike-free trace is byte-identical to one generated before
	// spikes existed.
	Spikes []Spike

	// WTPMarkup sets customer willingness-to-pay at
	// price·(1+markup·U) with U uniform in [0,1].
	WTPMarkup float64
}

// Hotspot is one component of the pickup-location mixture.
type Hotspot struct {
	Center geo.Point
	StdKm  float64 // spatial standard deviation, kilometers
	Weight float64 // relative mixture weight
}

// PortoHotspots models downtown Porto, the riverside and the airport.
func PortoHotspots() []Hotspot {
	return []Hotspot{
		{Center: geo.Point{Lat: 41.1496, Lon: -8.6109}, StdKm: 1.5, Weight: 0.5}, // city center
		{Center: geo.Point{Lat: 41.1621, Lon: -8.5830}, StdKm: 2.0, Weight: 0.2}, // east / Campanhã
		{Center: geo.Point{Lat: 41.2371, Lon: -8.6700}, StdKm: 1.2, Weight: 0.1}, // airport
		{Center: geo.Point{Lat: 41.1400, Lon: -8.6400}, StdKm: 2.5, Weight: 0.2}, // riverside/west
	}
}

// NewConfig returns the default generator configuration used throughout
// the experiments: one day, Porto bounding box, heavy-tailed trips.
func NewConfig(seed int64, tasks, drivers int, dm DriverModel) Config {
	return Config{
		Seed:            seed,
		Box:             geo.PortoBox,
		Market:          model.DefaultMarket(),
		Tasks:           tasks,
		Drivers:         drivers,
		Model:           dm,
		DayStart:        0,
		DayEnd:          24 * 3600,
		TripAlpha:       2.2,
		TripMinKm:       0.5,
		TripMaxKm:       25,
		PickupWindowMin: 1 * 60,
		PickupWindowMax: 6 * 60,
		SlackMin:        1.0,
		SlackMax:        1.1,
		ShiftMean:       4 * 3600,
		ShiftStd:        1 * 3600,
		ShiftMinLen:     2 * 3600,
		ShiftMaxLen:     8 * 3600,
		Hotspots:        PortoHotspots(),
		WTPMarkup:       0.4,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Tasks < 0 || c.Drivers < 0:
		return fmt.Errorf("trace: negative counts tasks=%d drivers=%d", c.Tasks, c.Drivers)
	case !c.Box.Valid():
		return fmt.Errorf("trace: invalid box %+v", c.Box)
	case c.DayStart >= c.DayEnd:
		return fmt.Errorf("trace: empty day window [%g, %g]", c.DayStart, c.DayEnd)
	case c.TripAlpha <= 1:
		return fmt.Errorf("trace: trip alpha %.2f must exceed 1", c.TripAlpha)
	case c.TripMinKm <= 0 || c.TripMaxKm <= c.TripMinKm:
		return fmt.Errorf("trace: bad trip range [%g, %g]", c.TripMinKm, c.TripMaxKm)
	case c.PickupWindowMin <= 0 || c.PickupWindowMax < c.PickupWindowMin:
		return fmt.Errorf("trace: bad pickup window [%g, %g]", c.PickupWindowMin, c.PickupWindowMax)
	case c.SlackMin < 1 || c.SlackMax < c.SlackMin:
		return fmt.Errorf("trace: bad slack range [%g, %g]", c.SlackMin, c.SlackMax)
	case c.ShiftMinLen <= 0 || c.ShiftMaxLen < c.ShiftMinLen:
		return fmt.Errorf("trace: bad shift length range [%g, %g]", c.ShiftMinLen, c.ShiftMaxLen)
	}
	if err := validateSpikes(c.Spikes); err != nil {
		return err
	}
	return c.Market.Validate()
}

// Generator produces reproducible synthetic traces.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator returns a generator for cfg. It panics if cfg is invalid,
// since configurations are static test/experiment inputs.
func NewGenerator(cfg Config) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(cfg.Hotspots) == 0 {
		cfg.Hotspots = PortoHotspots()
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Generate produces the full instance: tasks priced with the given
// pricer (nil means the default Linear pricer with α=1) plus drivers.
func (g *Generator) Generate(p pricing.Pricer) model.Trace {
	tasks := g.GenerateTasks()
	if p == nil {
		p = pricing.NewLinear(g.cfg.Market, 1)
	}
	for i := range tasks {
		tasks[i].Price = p.Price(tasks[i])
		tasks[i].WTP = tasks[i].Price * (1 + g.cfg.WTPMarkup*g.rng.Float64())
	}
	return model.Trace{Drivers: g.GenerateDrivers(), Tasks: tasks}
}

// GenerateTasks produces cfg.Tasks unpriced tasks ordered by publish
// time (the arrival order the online algorithms consume).
func (g *Generator) GenerateTasks() []model.Task {
	arrivals := g.arrivalTimes(g.cfg.Tasks)
	tasks := make([]model.Task, 0, len(arrivals))
	for i, at := range arrivals {
		src := g.samplePickupAt(at)
		distKm := g.boundedPareto()
		bearing := g.rng.Float64() * 2 * math.Pi
		dst := g.cfg.Box.Clamp(geo.Offset(src, bearing, distKm))

		pickupWin := g.uniform(g.cfg.PickupWindowMin, g.cfg.PickupWindowMax)
		startBy := at + pickupWin
		service := g.cfg.Market.TravelTime(src, dst, 0)
		slack := g.uniform(g.cfg.SlackMin, g.cfg.SlackMax)
		window := service * slack
		// Clamping can collapse a trip onto the box boundary; every ride
		// still takes a strictly positive minute so the task window
		// stays valid (t̄− < t̄+).
		if window < 60 {
			window = 60
		}
		endBy := startBy + window

		tasks = append(tasks, model.Task{
			ID:      i,
			Publish: at,
			Source:  src,
			Dest:    dst,
			StartBy: startBy,
			EndBy:   endBy,
		})
	}
	return tasks
}

// GenerateDrivers produces cfg.Drivers drivers under the configured
// working model.
func (g *Generator) GenerateDrivers() []model.Driver {
	drivers := make([]model.Driver, 0, g.cfg.Drivers)
	day := g.cfg.DayEnd - g.cfg.DayStart
	for i := 0; i < g.cfg.Drivers; i++ {
		length := g.rng.NormFloat64()*g.cfg.ShiftStd + g.cfg.ShiftMean
		length = math.Min(math.Max(length, g.cfg.ShiftMinLen), g.cfg.ShiftMaxLen)
		latestStart := day - length
		if latestStart < 0 {
			latestStart = 0
			length = day
		}
		// Bias shift starts toward the demand curve so supply tracks
		// demand the way working drivers do in practice.
		start := g.cfg.DayStart + g.sampleByIntensity()*latestStart/day

		src := g.samplePickup()
		dst := src
		if g.cfg.Model == Hitchhiking {
			bearing := g.rng.Float64() * 2 * math.Pi
			dst = g.cfg.Box.Clamp(geo.Offset(src, bearing, g.boundedPareto()))
		}
		drivers = append(drivers, model.Driver{
			ID:     i,
			Source: src,
			Dest:   dst,
			Start:  start,
			End:    start + length,
		})
	}
	return drivers
}

// DemandIntensity is the relative arrival intensity at time-of-day t
// (seconds): a baseline plus morning (8–9am) and evening (6–7pm) rush
// peaks. Exposed so tests and the surge pricer can assert against it.
func DemandIntensity(t float64) float64 {
	hour := t / 3600
	peak := func(center, width float64) float64 {
		d := (hour - center) / width
		return math.Exp(-d * d / 2)
	}
	return 0.25 + 1.0*peak(8.5, 1.2) + 1.2*peak(18.5, 1.5) + 0.3*peak(13, 2.0)
}

// arrivalTimes draws n arrival times from the non-homogeneous Poisson
// process with intensity proportional to DemandIntensity, via thinning,
// and returns them sorted ascending (thinning preserves order).
func (g *Generator) arrivalTimes(n int) []float64 {
	out := make([]float64, 0, n)
	day := g.cfg.DayEnd - g.cfg.DayStart
	// Conditional on the total count, the arrival times of a Poisson
	// process are i.i.d. with density ∝ intensity; sample by rejection
	// then sort by insertion into a slice we later sort — but to keep
	// the stream deterministic and O(n log n), sample then sort.
	lambdaMax := g.cfg.intensityMax() // 2.75 ≥ max of DemandIntensity; + spikes
	for len(out) < n {
		t := g.cfg.DayStart + g.rng.Float64()*day
		if g.rng.Float64()*lambdaMax <= g.cfg.intensityAt(t) {
			out = append(out, t)
		}
	}
	sort.Float64s(out)
	return out
}

// sampleByIntensity returns a time offset in [0, day) distributed
// according to the demand curve; used to bias driver shift starts.
func (g *Generator) sampleByIntensity() float64 {
	day := g.cfg.DayEnd - g.cfg.DayStart
	const lambdaMax = 2.75
	for {
		t := g.rng.Float64() * day
		if g.rng.Float64()*lambdaMax <= DemandIntensity(t) {
			return t
		}
	}
}

// samplePickup draws a pickup location from the hotspot mixture, clamped
// to the bounding box.
func (g *Generator) samplePickup() geo.Point {
	var totalW float64
	for _, h := range g.cfg.Hotspots {
		totalW += h.Weight
	}
	r := g.rng.Float64() * totalW
	var chosen Hotspot
	for _, h := range g.cfg.Hotspots {
		if r < h.Weight {
			chosen = h
			break
		}
		r -= h.Weight
		chosen = h
	}
	bearing := g.rng.Float64() * 2 * math.Pi
	dist := math.Abs(g.rng.NormFloat64()) * chosen.StdKm
	return g.cfg.Box.Clamp(geo.Offset(chosen.Center, bearing, dist))
}

// boundedPareto samples from the bounded Pareto distribution on
// [TripMinKm, TripMaxKm] with exponent TripAlpha via inverse transform.
func (g *Generator) boundedPareto() float64 {
	a := g.cfg.TripAlpha
	l := g.cfg.TripMinKm
	h := g.cfg.TripMaxKm
	u := g.rng.Float64()
	la := math.Pow(l, a)
	ha := math.Pow(h, a)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/a)
	return x
}

func (g *Generator) uniform(lo, hi float64) float64 {
	return lo + g.rng.Float64()*(hi-lo)
}
