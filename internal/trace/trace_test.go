package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/pricing"
	"repro/internal/stats"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := NewConfig(7, 50, 10, Hitchhiking)
	a := NewGenerator(cfg).Generate(nil)
	b := NewGenerator(cfg).Generate(nil)
	if len(a.Tasks) != len(b.Tasks) || len(a.Drivers) != len(b.Drivers) {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("task %d differs across identical seeds", i)
		}
	}
	for i := range a.Drivers {
		if a.Drivers[i] != b.Drivers[i] {
			t.Fatalf("driver %d differs across identical seeds", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := NewGenerator(NewConfig(1, 20, 5, Hitchhiking)).Generate(nil)
	b := NewGenerator(NewConfig(2, 20, 5, Hitchhiking)).Generate(nil)
	same := true
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratedInstanceValidates(t *testing.T) {
	for _, dm := range []DriverModel{HomeWorkHome, Hitchhiking} {
		cfg := NewConfig(3, 200, 40, dm)
		tr := NewGenerator(cfg).Generate(nil)
		if err := model.ValidateAll(cfg.Market, tr.Drivers, tr.Tasks); err != nil {
			t.Fatalf("%v: generated instance invalid: %v", dm, err)
		}
	}
}

func TestTasksSortedByPublish(t *testing.T) {
	tr := NewGenerator(NewConfig(5, 300, 10, Hitchhiking)).Generate(nil)
	for i := 1; i < len(tr.Tasks); i++ {
		if tr.Tasks[i].Publish < tr.Tasks[i-1].Publish {
			t.Fatalf("tasks not in arrival order at %d", i)
		}
	}
}

func TestDriverModels(t *testing.T) {
	home := NewGenerator(NewConfig(1, 5, 30, HomeWorkHome)).GenerateDrivers()
	for _, d := range home {
		if d.Source != d.Dest {
			t.Fatalf("home-work-home driver %d has distinct endpoints", d.ID)
		}
	}
	hitch := NewGenerator(NewConfig(1, 5, 30, Hitchhiking)).GenerateDrivers()
	distinct := 0
	for _, d := range hitch {
		if d.Source != d.Dest {
			distinct++
		}
	}
	if distinct < len(hitch)*3/4 {
		t.Fatalf("only %d/%d hitchhiking drivers have distinct endpoints", distinct, len(hitch))
	}
}

func TestDriverShiftsWithinBounds(t *testing.T) {
	cfg := NewConfig(9, 5, 200, Hitchhiking)
	for _, d := range NewGenerator(cfg).GenerateDrivers() {
		length := d.End - d.Start
		if length < cfg.ShiftMinLen-1e-9 || length > cfg.ShiftMaxLen+1e-9 {
			t.Fatalf("driver %d shift %.0fs outside [%.0f, %.0f]", d.ID, length, cfg.ShiftMinLen, cfg.ShiftMaxLen)
		}
		if d.Start < cfg.DayStart {
			t.Fatalf("driver %d starts before the day", d.ID)
		}
	}
}

func TestTripDistancesHeavyTailed(t *testing.T) {
	// Figs 3–4: travel time/distance follow a power-law shape. The
	// bounded-Pareto generator must produce a visibly heavy tail and an
	// MLE exponent near the configured TripAlpha.
	cfg := NewConfig(13, 4000, 1, Hitchhiking)
	g := NewGenerator(cfg)
	dists := make([]float64, 0, cfg.Tasks)
	for range make([]struct{}, cfg.Tasks) {
		dists = append(dists, g.boundedPareto())
	}
	for _, d := range dists {
		if d < cfg.TripMinKm-1e-9 || d > cfg.TripMaxKm+1e-9 {
			t.Fatalf("trip %.3f km outside [%g, %g]", d, cfg.TripMinKm, cfg.TripMaxKm)
		}
	}
	fit, err := stats.FitPowerLaw(dists, cfg.TripMinKm)
	if err != nil {
		t.Fatal(err)
	}
	// TripAlpha is the tail (CCDF) exponent; FitPowerLaw returns the pdf
	// exponent, which is TripAlpha+1 for a Pareto. The bounded upper
	// cutoff adds a small upward bias.
	want := cfg.TripAlpha + 1
	if fit.Alpha < want-0.15 || fit.Alpha > want+0.25 {
		t.Fatalf("fitted pdf exponent = %.3f, want ≈ %.2f", fit.Alpha, want)
	}
	if h := stats.TailHeaviness(dists); h < 3 {
		t.Fatalf("tail heaviness %.2f too light for a power law", h)
	}
}

func TestArrivalsFollowRushHours(t *testing.T) {
	cfg := NewConfig(17, 6000, 1, Hitchhiking)
	tasks := NewGenerator(cfg).GenerateTasks()
	// Count arrivals in the evening rush (17:30–19:30) vs dead of night
	// (02:00–04:00); the ratio should reflect the intensity profile.
	var rush, night int
	for _, tk := range tasks {
		h := tk.Publish / 3600
		switch {
		case h >= 17.5 && h < 19.5:
			rush++
		case h >= 2 && h < 4:
			night++
		}
	}
	if rush < 4*night {
		t.Fatalf("rush=%d night=%d: demand curve not peaked", rush, night)
	}
}

func TestDemandIntensityShape(t *testing.T) {
	if DemandIntensity(8.5*3600) < DemandIntensity(3*3600) {
		t.Error("morning rush should exceed night")
	}
	if DemandIntensity(18.5*3600) < DemandIntensity(12*3600)*1.2 {
		t.Error("evening rush should clearly exceed midday")
	}
	// Intensity must stay under the thinning majorant.
	for h := 0.0; h <= 24; h += 0.1 {
		if DemandIntensity(h*3600) > 2.75 {
			t.Fatalf("intensity %.3f at hour %.1f exceeds thinning bound", DemandIntensity(h*3600), h)
		}
	}
}

func TestTaskGeometryInsideBox(t *testing.T) {
	cfg := NewConfig(19, 500, 1, Hitchhiking)
	for _, tk := range NewGenerator(cfg).GenerateTasks() {
		if !cfg.Box.Contains(tk.Source) || !cfg.Box.Contains(tk.Dest) {
			t.Fatalf("task %d endpoints outside the box", tk.ID)
		}
	}
}

func TestTaskWindowsConsistent(t *testing.T) {
	cfg := NewConfig(23, 400, 1, Hitchhiking)
	for _, tk := range NewGenerator(cfg).GenerateTasks() {
		if !(tk.Publish < tk.StartBy && tk.StartBy < tk.EndBy) {
			t.Fatalf("task %d: ordering broken: %+v", tk.ID, tk)
		}
		service := cfg.Market.TravelTime(tk.Source, tk.Dest, 0)
		if tk.EndBy-tk.StartBy < service-1e-9 {
			t.Fatalf("task %d: window shorter than direct service time", tk.ID)
		}
	}
}

func TestGenerateAppliesPricer(t *testing.T) {
	cfg := NewConfig(29, 100, 5, Hitchhiking)
	surge := pricing.NewLinear(cfg.Market, 2)
	tr := NewGenerator(cfg).Generate(surge)
	base := NewGenerator(cfg).Generate(pricing.NewLinear(cfg.Market, 1))
	for i := range tr.Tasks {
		if tr.Tasks[i].Price <= 0 {
			t.Fatalf("task %d unpriced", i)
		}
		if math.Abs(tr.Tasks[i].Price-2*base.Tasks[i].Price) > 1e-9 {
			t.Fatalf("task %d: α=2 price %.4f != 2 × α=1 price %.4f",
				i, tr.Tasks[i].Price, base.Tasks[i].Price)
		}
		if tr.Tasks[i].WTP < tr.Tasks[i].Price {
			t.Fatalf("task %d: WTP below price", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := NewConfig(1, 10, 5, Hitchhiking)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative tasks", func(c *Config) { c.Tasks = -1 }},
		{"bad box", func(c *Config) { c.Box.MaxLat = c.Box.MinLat }},
		{"empty day", func(c *Config) { c.DayEnd = c.DayStart }},
		{"alpha ≤ 1", func(c *Config) { c.TripAlpha = 1 }},
		{"bad trip range", func(c *Config) { c.TripMaxKm = c.TripMinKm }},
		{"bad pickup window", func(c *Config) { c.PickupWindowMax = c.PickupWindowMin - 1 }},
		{"slack below 1", func(c *Config) { c.SlackMin = 0.5 }},
		{"bad shift range", func(c *Config) { c.ShiftMaxLen = c.ShiftMinLen - 1 }},
	}
	for _, tc := range cases {
		c := NewConfig(1, 10, 5, Hitchhiking)
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestNewGeneratorPanicsOnInvalid(t *testing.T) {
	cfg := NewConfig(1, 10, 5, Hitchhiking)
	cfg.TripAlpha = 0.5
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(cfg)
}

func TestDriverModelString(t *testing.T) {
	if HomeWorkHome.String() != "home-work-home" || Hitchhiking.String() != "hitchhiking" {
		t.Error("DriverModel String values wrong")
	}
	if DriverModel(9).String() != "DriverModel(9)" {
		t.Error("unknown DriverModel String wrong")
	}
}

// TestQuickGeneratedInstancesAlwaysValid fuzzes generator parameters:
// every emitted instance must pass full model validation (the zero-width
// window regression found by the simulator property tests lives here).
func TestQuickGeneratedInstancesAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := NewConfig(seed, 5+rng.Intn(80), rng.Intn(20), DriverModel(rng.Intn(2)))
		tr := NewGenerator(cfg).Generate(nil)
		return model.ValidateAll(cfg.Market, tr.Drivers, tr.Tasks) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
