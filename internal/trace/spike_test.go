package trace

import (
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/pricing"
)

// TestSpikeFreeByteIdentical: the spike rail must be invisible when
// unused — nil and empty Spikes produce byte-identical traces (no extra
// RNG draws on the default path).
func TestSpikeFreeByteIdentical(t *testing.T) {
	cfg := NewConfig(31, 200, 50, Hitchhiking)
	a := NewGenerator(cfg).Generate(nil)
	cfg.Spikes = []Spike{}
	b := NewGenerator(cfg).Generate(nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("empty (non-nil) Spikes changed the generated trace; the spike-free path must not draw extra randomness")
	}
}

// TestSpikeValidation: malformed spikes are rejected at Validate.
func TestSpikeValidation(t *testing.T) {
	bad := []Spike{
		{Center: geo.PortoBox.Lerp(0.5, 0.5), StdKm: 1, Start: 0, End: 3600, Weight: 0},
		{Center: geo.PortoBox.Lerp(0.5, 0.5), StdKm: 0, Start: 0, End: 3600, Weight: 1},
		{Center: geo.PortoBox.Lerp(0.5, 0.5), StdKm: 1, Start: 3600, End: 3600, Weight: 1},
	}
	for i, s := range bad {
		cfg := NewConfig(1, 10, 5, Hitchhiking)
		cfg.Spikes = []Spike{s}
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad spike %d accepted: %+v", i, s)
		}
	}
}

// spikeShare returns the fraction of tasks published inside [start,
// end) whose pickup lies within radiusKm of center.
func spikeShare(tr []float64, srcs []geo.Point, center geo.Point, radiusKm, start, end float64) (inWin, nearInWin int) {
	for i, at := range tr {
		if at < start || at >= end {
			continue
		}
		inWin++
		if geo.Equirectangular(srcs[i], center) <= radiusKm {
			nearInWin++
		}
	}
	return
}

// TestSpikeConcentratesDemand: during the airport spike the window
// holds a clearly elevated share of the day's arrivals and most of its
// pickups sit at the airport; the same window without the spike shows
// neither.
func TestSpikeConcentratesDemand(t *testing.T) {
	base := NewConfig(37, 2000, 10, Hitchhiking)
	spike := AirportEveningSpike()

	plain := NewGenerator(base).GenerateTasks()
	cfgS := base
	cfgS.Spikes = []Spike{spike}
	spiked := NewGenerator(cfgS).GenerateTasks()

	countWin := func(tasks []float64) int {
		n := 0
		for _, at := range tasks {
			if at >= spike.Start && at < spike.End {
				n++
			}
		}
		return n
	}

	plainAt := make([]float64, len(plain))
	plainSrc := make([]geo.Point, len(plain))
	for i, tk := range plain {
		plainAt[i], plainSrc[i] = tk.Publish, tk.Source
	}
	spikedAt := make([]float64, len(spiked))
	spikedSrc := make([]geo.Point, len(spiked))
	for i, tk := range spiked {
		spikedAt[i], spikedSrc[i] = tk.Publish, tk.Source
	}

	plainWin := countWin(plainAt)
	spikedWin := countWin(spikedAt)
	if spikedWin <= plainWin*3/2 {
		t.Errorf("spike did not lift arrivals: %d in window with spike vs %d without", spikedWin, plainWin)
	}

	_, plainNear := spikeShare(plainAt, plainSrc, spike.Center, 4, spike.Start, spike.End)
	winS, spikedNear := spikeShare(spikedAt, spikedSrc, spike.Center, 4, spike.Start, spike.End)
	if winS == 0 {
		t.Fatal("no spiked-window arrivals at all")
	}
	spikedFrac := float64(spikedNear) / float64(winS)
	plainFrac := float64(plainNear) / float64(plainWin)
	if spikedFrac < 0.4 || spikedFrac < 2*plainFrac {
		t.Errorf("spike did not concentrate pickups at the airport: near-fraction %.2f with spike vs %.2f without", spikedFrac, plainFrac)
	}
}

// TestSpikeRaisesSurgeAtCell: the whole point of the spike rail — fed
// into a live surge pricer, the spiked zone's multiplier rises above 1
// and above the citywide median zone.
func TestSpikeRaisesSurgeAtCell(t *testing.T) {
	cfg := NewConfig(41, 1500, 10, Hitchhiking)
	spike := AirportEveningSpike()
	cfg.Spikes = []Spike{spike}
	tasks := NewGenerator(cfg).GenerateTasks()

	grid := geo.NewGrid(cfg.Box, 10, 10)
	surge := pricing.NewSurge(pricing.NewLinear(cfg.Market, 1), grid, 3)
	// Thin, uniform supply; demand replayed through the spike window.
	for i := 0; i < 20; i++ {
		surge.ObserveSupply(cfg.Box.Lerp(float64(i%5)/4, float64(i/5)/4), 1)
	}
	for _, tk := range tasks {
		if tk.Publish >= spike.Start && tk.Publish < spike.End {
			surge.ObserveDemand(tk.Source, 1)
		}
	}

	airport := surge.Multiplier(spike.Center)
	center := surge.Multiplier(geo.Point{Lat: 41.1496, Lon: -8.6109})
	if airport <= 1 {
		t.Fatalf("airport multiplier %.3f after spike window, want > 1", airport)
	}
	if airport < center {
		t.Errorf("airport multiplier %.3f below downtown %.3f; the spike should dominate its own cell", airport, center)
	}
}
