// Package matching implements maximum-weight bipartite matching — the
// building block for batched ("non-heuristic", in the words of the
// paper's conclusion) online dispatch. Instead of assigning each task
// the moment it arrives, a batched dispatcher accumulates the tasks of a
// short time window and solves an assignment problem between the batch
// and the candidate drivers, trading a bounded increase in response time
// for globally better matches.
//
// Two algorithms are provided: the O(n³) Hungarian method (exact,
// deterministic) and Bertsekas' auction algorithm (exact up to its bid
// increment ε, often faster on sparse rectangular instances); both
// operate on a rectangular weight matrix with missing (forbidden) pairs.
package matching

import (
	"fmt"
	"math"
)

// Forbidden marks a (row, col) pair that must not be matched. Any weight
// ≤ Forbidden is treated as forbidden.
const Forbidden = -1e18

// Assignment is the result of a matching: ColOf[r] is the column matched
// to row r, or -1. Weight is the total matched weight.
type Assignment struct {
	ColOf  []int
	Weight float64
	// Matched counts the matched rows.
	Matched int
}

// validate checks the weights matrix is rectangular.
func validate(w [][]float64) (rows, cols int, err error) {
	rows = len(w)
	if rows == 0 {
		return 0, 0, nil
	}
	cols = len(w[0])
	for i, row := range w {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("matching: ragged weight matrix at row %d (%d vs %d)", i, len(row), cols)
		}
	}
	return rows, cols, nil
}

// Hungarian computes a maximum-weight matching of the rectangular
// weight matrix w (rows = tasks, cols = drivers). Pairs with weight ≤
// Forbidden are never matched; rows may remain unmatched when every
// compatible column is taken or forbidden, and unmatched rows cost
// nothing (this is *maximum weight*, not minimum cost with mandatory
// assignment). Negative-weight matches are never made.
func Hungarian(w [][]float64) (Assignment, error) {
	rows, cols, err := validate(w)
	if err != nil {
		return Assignment{}, err
	}
	out := Assignment{ColOf: make([]int, rows)}
	for i := range out.ColOf {
		out.ColOf[i] = -1
	}
	if rows == 0 || cols == 0 {
		return out, nil
	}

	// Reduce "maximize, optional assignment, forbidden pairs" to the
	// square Jonker-style shortest augmenting path formulation:
	// minimize cost over an n x n matrix, n = rows + cols, where
	//   cost[r][c]          = -w[r][c]  for allowed real pairs
	//   cost[r][cols+r]     = 0         "leave row r unmatched"
	//   cost[rows+c][c]     = 0         "leave col c unmatched"
	//   cost[dummy][dummy]  = 0
	// and anything else is prohibitively expensive. The minimum-cost
	// perfect matching then equals minus the maximum total weight, with
	// unmatched == weight 0, so only positive-weight matches improve
	// the objective.
	n := rows + cols
	const big = 1e17 // forbidden-pair cost; far above any real cost, far below overflow
	cost := func(r, c int) float64 {
		switch {
		case r < rows && c < cols:
			if w[r][c] <= Forbidden {
				return big
			}
			return -w[r][c]
		case r < rows && c-cols == r:
			return 0 // row r's personal dummy
		case r >= rows && c == r-rows:
			return 0 // col c's personal dummy
		case r >= rows && c >= cols:
			return 0
		default:
			return big
		}
	}

	// Jonker-Volgenant style shortest augmenting paths with dual
	// potentials, O(n³).
	inf := math.Inf(1)
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[c] = row matched to column c (1-based sentinel at 0)
	way := make([]int, n+1)
	for r := 1; r <= n; r++ {
		p[0] = r
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 1; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	for c := 1; c <= n; c++ {
		r := p[c] - 1
		col := c - 1
		if r < 0 || r >= rows || col >= cols {
			continue // dummy row or dummy column
		}
		if w[r][col] <= Forbidden || w[r][col] <= 0 {
			continue // forbidden or unprofitable pairs stay unmatched
		}
		out.ColOf[r] = col
		out.Weight += w[r][col]
		out.Matched++
	}
	return out, nil
}
