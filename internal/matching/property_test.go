package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Hungarian never produces an invalid structure and its weight
// dominates the simple greedy matching on every random instance.
func TestQuickHungarianDominatesGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		w := randomMatrix(rng, rows, cols, 0.25)
		asg, err := Hungarian(w)
		if err != nil {
			return false
		}
		// Greedy reference: repeatedly take the best remaining pair.
		usedR := make([]bool, rows)
		usedC := make([]bool, cols)
		var greedy float64
		for {
			br, bc := -1, -1
			best := 0.0
			for r := 0; r < rows; r++ {
				if usedR[r] {
					continue
				}
				for c := 0; c < cols; c++ {
					if usedC[c] || w[r][c] <= Forbidden {
						continue
					}
					if w[r][c] > best {
						best, br, bc = w[r][c], r, c
					}
				}
			}
			if br < 0 {
				break
			}
			usedR[br] = true
			usedC[bc] = true
			greedy += best
		}
		return asg.Weight >= greedy-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the auction result never exceeds Hungarian's optimum.
func TestQuickAuctionBoundedByHungarian(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(7)
		cols := 1 + rng.Intn(7)
		w := randomMatrix(rng, rows, cols, 0.3)
		h, err := Hungarian(w)
		if err != nil {
			return false
		}
		a, err := Auction(w, 1e-7)
		if err != nil {
			return false
		}
		return a.Weight <= h.Weight+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
