package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Hungarian never produces an invalid structure and its weight
// dominates the simple greedy matching on every random instance.
func TestQuickHungarianDominatesGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		w := randomMatrix(rng, rows, cols, 0.25)
		asg, err := Hungarian(w)
		if err != nil {
			return false
		}
		// Greedy reference: repeatedly take the best remaining pair.
		usedR := make([]bool, rows)
		usedC := make([]bool, cols)
		var greedy float64
		for {
			br, bc := -1, -1
			best := 0.0
			for r := 0; r < rows; r++ {
				if usedR[r] {
					continue
				}
				for c := 0; c < cols; c++ {
					if usedC[c] || w[r][c] <= Forbidden {
						continue
					}
					if w[r][c] > best {
						best, br, bc = w[r][c], r, c
					}
				}
			}
			if br < 0 {
				break
			}
			usedR[br] = true
			usedC[bc] = true
			greedy += best
		}
		return asg.Weight >= greedy-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bertsekas' ε-guarantee — on any random instance the auction
// total is within rows·ε of the Hungarian optimum (and never above it).
// Every other instance is degenerate on purpose: weights quantized onto
// a tiny value set so rows tie exactly, the regime where naive bidding
// can live-lock or leave value on the table.
func TestQuickAuctionWithinRowsEpsOfHungarian(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		w := randomMatrix(rng, rows, cols, 0.25)
		if seed%2 == 0 {
			// Degenerate ties: collapse weights onto {1, 2, 3}.
			for r := range w {
				for c := range w[r] {
					if w[r][c] > Forbidden {
						w[r][c] = float64(1 + rng.Intn(3))
					}
				}
			}
		}
		// ε trades accuracy for time on tied instances (the war walks a
		// contested price up in ε steps); 1e-3 keeps the sweep fast while
		// rows·ε stays far below the integer weight gaps.
		const eps = 1e-3
		h, err := Hungarian(w)
		if err != nil {
			return false
		}
		a, err := Auction(w, eps)
		if err != nil {
			return false
		}
		slack := float64(rows)*eps + 1e-9
		return a.Weight <= h.Weight+1e-9 && h.Weight-a.Weight <= slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAuctionExactOnAllTiedWeights pins the fully degenerate corner: an
// all-equal positive matrix, where every maximum matching has the same
// weight min(rows, cols)·v and the auction must still find one.
func TestAuctionExactOnAllTiedWeights(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {3, 3}, {5, 2}, {2, 7}} {
		rows, cols := dims[0], dims[1]
		w := make([][]float64, rows)
		for r := range w {
			w[r] = make([]float64, cols)
			for c := range w[r] {
				w[r][c] = 4
			}
		}
		const eps = 1e-4
		a, err := Auction(w, eps)
		if err != nil {
			t.Fatal(err)
		}
		n := rows
		if cols < n {
			n = cols
		}
		want := float64(n) * 4
		if a.Matched != n || want-a.Weight > float64(rows)*eps+1e-9 {
			t.Fatalf("%dx%d all-tied: matched=%d weight=%.9f, want %d/%.0f", rows, cols, a.Matched, a.Weight, n, want)
		}
		h, err := Hungarian(w)
		if err != nil {
			t.Fatal(err)
		}
		if h.Weight != want {
			t.Fatalf("%dx%d all-tied: Hungarian weight %.9f, want %.0f", rows, cols, h.Weight, want)
		}
	}
}

// Property: the auction result never exceeds Hungarian's optimum.
func TestQuickAuctionBoundedByHungarian(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(7)
		cols := 1 + rng.Intn(7)
		w := randomMatrix(rng, rows, cols, 0.3)
		h, err := Hungarian(w)
		if err != nil {
			return false
		}
		a, err := Auction(w, 1e-7)
		if err != nil {
			return false
		}
		return a.Weight <= h.Weight+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
