package matching

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomSparse builds a random CSR instance. Continuous weights make
// the maximum-weight matching unique with probability one, which is
// what lets the tests assert assignment identity, not just weight
// equality; quantize collapses weights onto {1,2,3} to manufacture the
// degenerate ties where only weights are comparable.
func randomSparse(rng *rand.Rand, rows, cols int, density float64, quantize bool) Sparse {
	sp := Sparse{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() >= density {
				continue
			}
			w := rng.Float64()*20 - 4 // some negatives
			if quantize {
				w = float64(1 + rng.Intn(3))
			}
			sp.Col = append(sp.Col, c)
			sp.W = append(sp.W, w)
		}
		sp.RowPtr[r+1] = len(sp.Col)
	}
	return sp
}

// denseOf expands a sparse instance to the dense matrix the oracle
// solvers take, absent pairs Forbidden.
func denseOf(sp Sparse) [][]float64 {
	w := make([][]float64, sp.Rows)
	for r := range w {
		w[r] = make([]float64, sp.Cols)
		for c := range w[r] {
			w[r][c] = Forbidden
		}
		for k := sp.RowPtr[r]; k < sp.RowPtr[r+1]; k++ {
			w[r][sp.Col[k]] = sp.W[k]
		}
	}
	return w
}

// TestSparseHungarianMatchesDenseOnRandom: on random continuous
// instances across the sparsity range, the sparse kernel must agree
// with the dense Hungarian oracle in weight AND assignment — the
// optimum is unique with probability one, so any tie-break divergence
// would surface as a different ColOf.
func TestSparseHungarianMatchesDenseOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		rows := 1 + rng.Intn(9)
		cols := 1 + rng.Intn(12)
		density := 0.05 + rng.Float64()*0.95
		sp := randomSparse(rng, rows, cols, density, false)
		d, err := Hungarian(denseOf(sp))
		if err != nil {
			t.Fatal(err)
		}
		s, err := SparseHungarian(sp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.Weight-s.Weight) > 1e-9 {
			t.Fatalf("trial %d: sparse weight %.12f vs dense %.12f\n%v", trial, s.Weight, d.Weight, denseOf(sp))
		}
		if !reflect.DeepEqual(d.ColOf, s.ColOf) {
			t.Fatalf("trial %d: sparse assignment %v vs dense %v\n%v", trial, s.ColOf, d.ColOf, denseOf(sp))
		}
		if s.Matched != d.Matched {
			t.Fatalf("trial %d: sparse matched %d vs dense %d", trial, s.Matched, d.Matched)
		}
	}
}

// TestSparseHungarianAgainstBruteForce pins the sparse kernel to the
// exhaustive optimum on small instances, independently of the dense
// implementation.
func TestSparseHungarianAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		sp := randomSparse(rng, 1+rng.Intn(6), 1+rng.Intn(6), 0.1+rng.Float64()*0.9, trial%3 == 0)
		s, err := SparseHungarian(sp)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteForce(denseOf(sp)); math.Abs(s.Weight-want) > 1e-9 {
			t.Fatalf("trial %d: sparse %.9f != brute force %.9f on %v", trial, s.Weight, want, denseOf(sp))
		}
	}
}

// TestSparseDecomposedEqualsWholeMatrix is the exactness property of
// the component decomposition (the satellite contract): on random
// sparse rectangular instances, the component-decomposed solve equals
// the whole-matrix Hungarian optimum in total weight, and — continuous
// weights making the optimum unique, so canonical tie-breaking is never
// exercised against a second optimum — is bit-identical in assignments.
func TestSparseDecomposedEqualsWholeMatrix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(14)
		cols := 1 + rng.Intn(20)
		// Low densities make many components; high make one.
		sp := randomSparse(rng, rows, cols, 0.02+rng.Float64()*0.5, false)
		d, err := Hungarian(denseOf(sp))
		if err != nil {
			return false
		}
		s, err := SparseHungarian(sp)
		if err != nil {
			return false
		}
		return math.Abs(d.Weight-s.Weight) <= 1e-9 && reflect.DeepEqual(d.ColOf, s.ColOf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSparseQuantizedWeightEquality covers the degenerate tied-weight
// regime: assignments may legitimately differ between equally-optimal
// matchings, but the total weight must still match the dense optimum
// exactly.
func TestSparseQuantizedWeightEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		sp := randomSparse(rng, 1+rng.Intn(10), 1+rng.Intn(12), 0.05+rng.Float64()*0.9, true)
		d, err := Hungarian(denseOf(sp))
		if err != nil {
			t.Fatal(err)
		}
		s, err := SparseHungarian(sp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.Weight-s.Weight) > 1e-9 {
			t.Fatalf("trial %d: sparse %.9f vs dense %.9f on tied weights\n%v", trial, s.Weight, d.Weight, denseOf(sp))
		}
	}
}

// TestSparseComponentEdgeCases fuzzes the shapes the decomposition must
// not trip over: singleton tasks, drivers shared by zero tasks
// (untouched columns), rows with no candidates at all, a fully
// connected window collapsing to one component, and all-non-positive
// instances where unmatched everywhere is the optimum.
func TestSparseComponentEdgeCases(t *testing.T) {
	cases := map[string]Sparse{
		"empty": {Rows: 0, Cols: 0, RowPtr: []int{0}},
		"singletons": {
			Rows: 3, Cols: 5,
			RowPtr: []int{0, 1, 2, 3},
			Col:    []int{0, 2, 4},
			W:      []float64{5, 7, 3},
		},
		"edgeless rows": {
			Rows: 3, Cols: 2,
			RowPtr: []int{0, 0, 1, 1},
			Col:    []int{1},
			W:      []float64{2},
		},
		"untouched columns": {
			Rows: 2, Cols: 6,
			RowPtr: []int{0, 1, 2},
			Col:    []int{3, 3},
			W:      []float64{4, 9},
		},
		"fully connected": {
			Rows: 3, Cols: 3,
			RowPtr: []int{0, 3, 6, 9},
			Col:    []int{0, 1, 2, 0, 1, 2, 0, 1, 2},
			W:      []float64{1, 8, 2, 7, 3, 6, 4, 5, 9},
		},
		"all non-positive": {
			Rows: 2, Cols: 2,
			RowPtr: []int{0, 2, 4},
			Col:    []int{0, 1, 0, 1},
			W:      []float64{-1, 0, -3, -0.5},
		},
		"chain": { // r0-c0-r1-c1-r2: one snake component
			Rows: 3, Cols: 2,
			RowPtr: []int{0, 1, 3, 4},
			Col:    []int{0, 0, 1, 1},
			W:      []float64{5, 6, 2, 4},
		},
	}
	for name, sp := range cases {
		d, err := Hungarian(denseOf(sp))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, kind := range []Kind{KindHungarian, KindAuction} {
			var solver SparseSolver
			colOf, weight, matched, err := solver.Solve(sp, kind, 1e-6, 1)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, kind, err)
			}
			if math.Abs(weight-d.Weight) > float64(sp.Rows)*1e-6+1e-9 {
				t.Errorf("%s/%v: weight %.9f, dense optimum %.9f", name, kind, weight, d.Weight)
			}
			if kind == KindHungarian {
				// Normalize nil vs empty: Solve hands back a zero-length
				// view of its scratch for row-less instances.
				if matched != d.Matched || !reflect.DeepEqual(append([]int{}, colOf...), append([]int{}, d.ColOf...)) {
					t.Errorf("%s: assignment %v (matched %d), dense %v (%d)", name, colOf, matched, d.ColOf, d.Matched)
				}
			}
		}
	}
}

// TestSparseAuctionBitCompatibleWithDense: the per-component auction
// must reproduce the dense auction bid for bid — including on
// quantized tied weights, where the ε-step price wars happen — because
// the dense LIFO stack preserves each component's relative order and
// prices never leak across components.
func TestSparseAuctionBitCompatibleWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		sp := randomSparse(rng, 1+rng.Intn(8), 1+rng.Intn(10), 0.05+rng.Float64()*0.9, trial%2 == 0)
		const eps = 1e-4
		d, err := Auction(denseOf(sp), eps)
		if err != nil {
			t.Fatal(err)
		}
		s, err := SparseAuction(sp, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(d.ColOf, s.ColOf) || d.Matched != s.Matched {
			t.Fatalf("trial %d: sparse auction %v vs dense %v on\n%v", trial, s.ColOf, d.ColOf, denseOf(sp))
		}
		if math.Abs(d.Weight-s.Weight) > 1e-9 {
			t.Fatalf("trial %d: sparse auction weight %.12f vs dense %.12f", trial, s.Weight, d.Weight)
		}
	}
}

// TestSparseWorkerCountIndependence: the solve must be bit-identical
// across worker counts — components are solved independently and merged
// in canonical order, so concurrency must never show in the result.
func TestSparseWorkerCountIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		sp := randomSparse(rng, 1+rng.Intn(16), 1+rng.Intn(24), 0.02+rng.Float64()*0.4, trial%4 == 0)
		for _, kind := range []Kind{KindHungarian, KindAuction} {
			var base SparseSolver
			want, wWeight, wMatched, err := base.Solve(sp, kind, 1e-5, 1)
			if err != nil {
				t.Fatal(err)
			}
			wantCopy := append([]int(nil), want...)
			for _, workers := range []int{2, 4, 7} {
				var solver SparseSolver
				got, gWeight, gMatched, err := solver.Solve(sp, kind, 1e-5, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wantCopy, got) || wWeight != gWeight || wMatched != gMatched {
					t.Fatalf("trial %d %v: workers=%d diverged: %v (w=%.12f m=%d) vs %v (w=%.12f m=%d)",
						trial, kind, workers, got, gWeight, gMatched, wantCopy, wWeight, wMatched)
				}
			}
		}
	}
}

// TestSparseSolverZeroAllocSteadyState is the zero-allocation contract
// of the hot path: once the solver's scratch is warm, repeated serial
// solves must not touch the allocator.
func TestSparseSolverZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sp := randomSparse(rng, 12, 40, 0.15, false)
	var solver SparseSolver
	if _, _, _, err := solver.Solve(sp, KindHungarian, 0, 1); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{KindHungarian, KindAuction} {
		kind := kind
		if _, _, _, err := solver.Solve(sp, kind, 1e-5, 1); err != nil {
			t.Fatal(err) // warm this kernel's scratch too
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, _, _, err := solver.Solve(sp, kind, 1e-5, 1); err != nil {
				t.Error(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per warm solve, want 0", kind, allocs)
		}
	}
}

// TestSparseValidate rejects malformed CSR structures loudly.
func TestSparseValidate(t *testing.T) {
	bad := map[string]Sparse{
		"rowptr len":     {Rows: 2, Cols: 2, RowPtr: []int{0, 1}},
		"rowptr start":   {Rows: 1, Cols: 1, RowPtr: []int{1, 1}},
		"rowptr order":   {Rows: 2, Cols: 2, RowPtr: []int{0, 2, 1}, Col: []int{0, 1}, W: []float64{1, 2}},
		"short edges":    {Rows: 1, Cols: 2, RowPtr: []int{0, 2}, Col: []int{0}, W: []float64{1}},
		"col range":      {Rows: 1, Cols: 2, RowPtr: []int{0, 1}, Col: []int{2}, W: []float64{1}},
		"col descending": {Rows: 1, Cols: 3, RowPtr: []int{0, 2}, Col: []int{2, 1}, W: []float64{1, 2}},
		"col duplicate":  {Rows: 1, Cols: 3, RowPtr: []int{0, 2}, Col: []int{1, 1}, W: []float64{1, 2}},
	}
	for name, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: invalid instance accepted", name)
		}
		var solver SparseSolver
		if _, _, _, err := solver.Solve(sp, KindHungarian, 0, 1); err == nil {
			t.Errorf("%s: Solve accepted invalid instance", name)
		}
	}
	if _, _, _, err := new(SparseSolver).Solve(Sparse{RowPtr: []int{0}}, Kind(99), 0, 1); err == nil {
		t.Error("unknown kernel accepted")
	}
	good := Sparse{Rows: 1, Cols: 2, RowPtr: []int{0, 1}, Col: []int{1}, W: []float64{3}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}
