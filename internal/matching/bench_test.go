package matching

import (
	"fmt"
	"math/rand"
	"testing"
)

// Micro-benchmarks for the window-matching kernels: the dense
// Hungarian/Auction oracles against the sparse component-decomposed
// solver, across the sparsity range batched dispatch actually sees.
// Dense instances cost the same whatever the sparsity (the virtual
// square is materialized either way); the sparse kernel's cost tracks
// the edge count and the component structure, which is the whole point.
// CI runs these at -benchtime 1x as a bit-rot smoke; real measurements
// belong to `rideshare bench -windows` (BENCH_5.json).

// benchInstance builds a reproducible rows×cols instance at the given
// edge density, weights continuous positive-biased like window margins.
func benchInstance(rows, cols int, density float64) (Sparse, [][]float64) {
	rng := rand.New(rand.NewSource(42))
	sp := Sparse{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() >= density {
				continue
			}
			sp.Col = append(sp.Col, c)
			sp.W = append(sp.W, rng.Float64()*10+0.1)
		}
		sp.RowPtr[r+1] = len(sp.Col)
	}
	return sp, denseOf(sp)
}

func BenchmarkWindowKernels(b *testing.B) {
	for _, size := range []struct{ rows, cols int }{{16, 128}, {48, 512}} {
		for _, density := range []float64{0.50, 0.10, 0.02} {
			sp, w := benchInstance(size.rows, size.cols, density)
			name := fmt.Sprintf("%dx%d/density=%.2f", size.rows, size.cols, density)
			b.Run("dense-hungarian/"+name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Hungarian(w); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("dense-auction/"+name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Auction(w, 1e-4); err != nil {
						b.Fatal(err)
					}
				}
			})
			var solver SparseSolver
			b.Run("sparse-hungarian/"+name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, _, err := solver.Solve(sp, KindHungarian, 0, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("sparse-auction/"+name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, _, err := solver.Solve(sp, KindAuction, 1e-4, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSparseWorkers prices the component worker pool on a
// many-component instance (block-diagonal, so every block is one
// independent component).
func BenchmarkSparseWorkers(b *testing.B) {
	const blocks, blockRows, blockCols = 64, 4, 12
	sp := Sparse{Rows: blocks * blockRows, Cols: blocks * blockCols}
	sp.RowPtr = make([]int, 0, sp.Rows+1)
	sp.RowPtr = append(sp.RowPtr, 0)
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < sp.Rows; r++ {
		base := (r / blockRows) * blockCols
		for c := 0; c < blockCols; c++ {
			sp.Col = append(sp.Col, base+c)
			sp.W = append(sp.W, rng.Float64()*10+0.1)
		}
		sp.RowPtr = append(sp.RowPtr, len(sp.Col))
	}
	for _, workers := range []int{1, 2, 4} {
		var solver SparseSolver
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := solver.Solve(sp, KindHungarian, 0, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
