package matching

// ComponentScratch is the exported sibling of SparseSolver's private
// union-find: it splits a Sparse bipartite instance into connected
// row–column components and lays both sides out in canonical order, so
// callers outside the window-matching path (the offline oracle rail
// solves each hindsight component independently) can reuse the same
// path-halving machinery and pooling discipline without going through
// a matching solve. The zero value is ready to use; buffers are grown
// to the high-water mark and reused across calls, and all returned
// layout slices alias the scratch — valid until the next Decompose.
type ComponentScratch struct {
	parent   []int
	firstRow []int

	// CompOfRow[r] is row r's component id; every row belongs to a
	// component (edgeless rows are singletons). CompOfCol[c] is column
	// c's component, or -1 for columns no edge touches. Components are
	// numbered by their smallest member row, ascending.
	CompOfRow []int
	CompOfCol []int

	// Component c owns rows RowsByComp[RowPtr[c]:RowPtr[c+1]] and
	// columns ColsByComp[ColPtr[c]:ColPtr[c+1]], each in ascending
	// order.
	RowPtr     []int
	RowsByComp []int
	ColPtr     []int
	ColsByComp []int
}

func (cs *ComponentScratch) find(r int) int {
	for cs.parent[r] != r {
		cs.parent[r] = cs.parent[cs.parent[r]] // path halving
		r = cs.parent[r]
	}
	return r
}

// Decompose runs the union-find over sp's edges and fills the scratch
// layout. It returns the component count. sp is assumed valid (see
// Sparse.Validate); rows sharing any column are merged, exactly as the
// sparse window solver does.
func (cs *ComponentScratch) Decompose(sp Sparse) int {
	cs.parent = grownInt(cs.parent, sp.Rows)
	for r := range cs.parent {
		cs.parent[r] = r
	}
	cs.firstRow = grownInt(cs.firstRow, sp.Cols)
	for c := range cs.firstRow {
		cs.firstRow[c] = -1
	}
	for r := 0; r < sp.Rows; r++ {
		for k := sp.RowPtr[r]; k < sp.RowPtr[r+1]; k++ {
			c := sp.Col[k]
			if cs.firstRow[c] < 0 {
				cs.firstRow[c] = r
				continue
			}
			a, b := cs.find(r), cs.find(cs.firstRow[c])
			if a != b {
				cs.parent[b] = a
			}
		}
	}
	// Label rows in order of first appearance so ids ascend by smallest
	// member row whatever the union roots are.
	cs.CompOfRow = grownInt(cs.CompOfRow, sp.Rows)
	for r := 0; r < sp.Rows; r++ {
		cs.CompOfRow[r] = -1
	}
	ncomp := 0
	for r := 0; r < sp.Rows; r++ {
		root := cs.find(r)
		if cs.CompOfRow[root] < 0 {
			cs.CompOfRow[root] = ncomp
			ncomp++
		}
		cs.CompOfRow[r] = cs.CompOfRow[root]
	}
	// Columns inherit the component of the first row that touched them.
	cs.CompOfCol = grownInt(cs.CompOfCol, sp.Cols)
	for c := 0; c < sp.Cols; c++ {
		if cs.firstRow[c] < 0 {
			cs.CompOfCol[c] = -1
		} else {
			cs.CompOfCol[c] = cs.CompOfRow[cs.firstRow[c]]
		}
	}
	// Counting-sort both sides; scanning ids ascending keeps each
	// component's member lists ascending.
	cs.RowPtr = grownInt(cs.RowPtr, ncomp+1)
	for c := 0; c <= ncomp; c++ {
		cs.RowPtr[c] = 0
	}
	for r := 0; r < sp.Rows; r++ {
		cs.RowPtr[cs.CompOfRow[r]+1]++
	}
	for c := 1; c <= ncomp; c++ {
		cs.RowPtr[c] += cs.RowPtr[c-1]
	}
	cs.RowsByComp = grownInt(cs.RowsByComp, sp.Rows)
	cursors := cs.parent // union-find is settled; reuse as fill cursors
	for c := 0; c < ncomp; c++ {
		cursors[c] = cs.RowPtr[c]
	}
	for r := 0; r < sp.Rows; r++ {
		c := cs.CompOfRow[r]
		cs.RowsByComp[cursors[c]] = r
		cursors[c]++
	}
	cs.ColPtr = grownInt(cs.ColPtr, ncomp+1)
	for c := 0; c <= ncomp; c++ {
		cs.ColPtr[c] = 0
	}
	ncols := 0
	for c := 0; c < sp.Cols; c++ {
		if cs.CompOfCol[c] >= 0 {
			cs.ColPtr[cs.CompOfCol[c]+1]++
			ncols++
		}
	}
	for c := 1; c <= ncomp; c++ {
		cs.ColPtr[c] += cs.ColPtr[c-1]
	}
	cs.ColsByComp = grownInt(cs.ColsByComp, ncols)
	// Row filling is done with cursors, so parent is free again (its
	// len is sp.Rows ≥ ncomp; firstRow's sp.Cols may be smaller).
	colCursors := cs.parent
	for c := 0; c < ncomp; c++ {
		colCursors[c] = cs.ColPtr[c]
	}
	for c := 0; c < sp.Cols; c++ {
		if comp := cs.CompOfCol[c]; comp >= 0 {
			cs.ColsByComp[colCursors[comp]] = c
			colCursors[comp]++
		}
	}
	return ncomp
}
