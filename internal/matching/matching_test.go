package matching

import (
	"math"
	"math/rand"
	"testing"
)

func TestHungarianSimple(t *testing.T) {
	// Classic 2x2: diagonal is optimal.
	w := [][]float64{
		{10, 3},
		{3, 10},
	}
	asg, err := Hungarian(w)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Weight != 20 || asg.ColOf[0] != 0 || asg.ColOf[1] != 1 {
		t.Fatalf("got %+v, want diagonal weight 20", asg)
	}
}

func TestHungarianPrefersWeightOverCount(t *testing.T) {
	// One heavy match must beat two light ones.
	w := [][]float64{
		{10, 3},
		{3, Forbidden},
	}
	asg, err := Hungarian(w)
	if err != nil {
		t.Fatal(err)
	}
	// Options: {A-X}=10, or {A-Y, B-X}=6. Max weight is 10.
	if math.Abs(asg.Weight-10) > 1e-9 {
		t.Fatalf("weight = %g, want 10 (weight beats cardinality)", asg.Weight)
	}
	if asg.ColOf[0] != 0 || asg.ColOf[1] != -1 {
		t.Fatalf("assignment %v, want row 0 → col 0 only", asg.ColOf)
	}
}

func TestHungarianForbiddenRespected(t *testing.T) {
	w := [][]float64{
		{Forbidden, 5},
		{7, Forbidden},
	}
	asg, err := Hungarian(w)
	if err != nil {
		t.Fatal(err)
	}
	if asg.ColOf[0] != 1 || asg.ColOf[1] != 0 {
		t.Fatalf("assignment %v violates forbidden pairs", asg.ColOf)
	}
	if asg.Weight != 12 {
		t.Fatalf("weight = %g, want 12", asg.Weight)
	}
}

func TestHungarianSkipsNonPositive(t *testing.T) {
	w := [][]float64{
		{-2, -5},
		{0, -1},
	}
	asg, err := Hungarian(w)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Matched != 0 || asg.Weight != 0 {
		t.Fatalf("non-positive weights matched: %+v", asg)
	}
}

func TestHungarianRectangular(t *testing.T) {
	// More rows than columns and vice versa.
	tall := [][]float64{{5}, {8}, {2}}
	asg, err := Hungarian(tall)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Matched != 1 || asg.ColOf[1] != 0 {
		t.Fatalf("tall: %+v, want only row 1 matched", asg)
	}
	wide := [][]float64{{5, 8, 2}}
	asg, err = Hungarian(wide)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Matched != 1 || asg.ColOf[0] != 1 {
		t.Fatalf("wide: %+v, want col 1", asg)
	}
}

func TestHungarianEmpty(t *testing.T) {
	asg, err := Hungarian(nil)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Matched != 0 {
		t.Fatalf("empty: %+v", asg)
	}
}

func TestHungarianRaggedRejected(t *testing.T) {
	if _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

// bruteForce enumerates all matchings (rows ≤ ~8) for the reference
// optimum, skipping forbidden and non-positive pairs.
func bruteForce(w [][]float64) float64 {
	rows := len(w)
	if rows == 0 {
		return 0
	}
	cols := len(w[0])
	usedCol := make([]bool, cols)
	var rec func(r int) float64
	rec = func(r int) float64 {
		if r == rows {
			return 0
		}
		best := rec(r + 1) // leave row r unmatched
		for c := 0; c < cols; c++ {
			if usedCol[c] || w[r][c] <= Forbidden || w[r][c] <= 0 {
				continue
			}
			usedCol[c] = true
			if v := w[r][c] + rec(r+1); v > best {
				best = v
			}
			usedCol[c] = false
		}
		return best
	}
	return rec(0)
}

func randomMatrix(rng *rand.Rand, rows, cols int, forbidFrac float64) [][]float64 {
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
		for c := range w[r] {
			if rng.Float64() < forbidFrac {
				w[r][c] = Forbidden
			} else {
				w[r][c] = rng.Float64()*20 - 4 // some negatives
			}
		}
	}
	return w
}

func TestHungarianAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		w := randomMatrix(rng, rows, cols, 0.3)
		asg, err := Hungarian(w)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(w)
		if math.Abs(asg.Weight-want) > 1e-9 {
			t.Fatalf("trial %d: Hungarian %.9f != brute force %.9f on %v", trial, asg.Weight, want, w)
		}
		assertValid(t, w, asg)
	}
}

func TestAuctionNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		w := randomMatrix(rng, rows, cols, 0.3)
		const eps = 1e-9
		asg, err := Auction(w, eps)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(w)
		// Auction is optimal within rows·eps.
		if asg.Weight < want-float64(rows)*eps-1e-6 {
			t.Fatalf("trial %d: auction %.9f below optimum %.9f", trial, asg.Weight, want)
		}
		assertValid(t, w, asg)
	}
}

func TestAuctionMatchesHungarianOnLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		w := randomMatrix(rng, 20, 25, 0.4)
		h, err := Hungarian(w)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Auction(w, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h.Weight-a.Weight) > 1e-5 {
			t.Fatalf("trial %d: auction %.6f vs hungarian %.6f", trial, a.Weight, h.Weight)
		}
	}
}

func TestAuctionEmptyAndRagged(t *testing.T) {
	if asg, err := Auction(nil, 0); err != nil || asg.Matched != 0 {
		t.Fatalf("empty: %+v, %v", asg, err)
	}
	if _, err := Auction([][]float64{{1}, {2, 3}}, 0); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

// assertValid checks structural invariants: no column reused, no
// forbidden or non-positive matches, weight adds up.
func assertValid(t *testing.T, w [][]float64, asg Assignment) {
	t.Helper()
	usedCol := make(map[int]bool)
	var sum float64
	matched := 0
	for r, c := range asg.ColOf {
		if c < 0 {
			continue
		}
		if usedCol[c] {
			t.Fatalf("column %d matched twice", c)
		}
		usedCol[c] = true
		if w[r][c] <= Forbidden {
			t.Fatalf("forbidden pair (%d,%d) matched", r, c)
		}
		if w[r][c] <= 0 {
			t.Fatalf("non-positive pair (%d,%d)=%g matched", r, c, w[r][c])
		}
		sum += w[r][c]
		matched++
	}
	if math.Abs(sum-asg.Weight) > 1e-9 {
		t.Fatalf("weight %.9f != sum of matches %.9f", asg.Weight, sum)
	}
	if matched != asg.Matched {
		t.Fatalf("Matched = %d, counted %d", asg.Matched, matched)
	}
}
