package matching

// Auction implements Bertsekas' auction algorithm for maximum-weight
// bipartite matching: unmatched rows repeatedly bid for their best
// column at the current prices; each successful bid raises the column's
// price by the bid increment. With increment ε, the result is within
// rows·ε of the optimum; ε below the minimum weight gap makes it exact.
// It is kept alongside Hungarian both as an independent cross-check
// (their outputs are compared in tests) and because on sparse batched
// dispatch instances it is usually faster.
func Auction(w [][]float64, eps float64) (Assignment, error) {
	rows, cols, err := validate(w)
	if err != nil {
		return Assignment{}, err
	}
	out := Assignment{ColOf: make([]int, rows)}
	for i := range out.ColOf {
		out.ColOf[i] = -1
	}
	if rows == 0 || cols == 0 {
		return out, nil
	}
	if eps <= 0 {
		eps = 1e-6
	}

	price := make([]float64, cols)
	rowOf := make([]int, cols)
	for c := range rowOf {
		rowOf[c] = -1
	}

	// A row stays permanently unmatched once its best available value
	// drops to ≤ 0 (unmatched is worth 0 under individual rationality).
	queue := make([]int, 0, rows)
	for r := 0; r < rows; r++ {
		queue = append(queue, r)
	}

	// Each bid strictly raises one column's price by ≥ eps, and prices
	// are bounded by the max weight, so the loop terminates after at
	// most rows·cols·(maxW/eps) bids; cap defensively anyway.
	maxBids := rows * cols * 1000
	for len(queue) > 0 && maxBids > 0 {
		maxBids--
		r := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		// Find the best and second-best column values for row r.
		// Staying unmatched is worth 0 and acts as the reservation.
		best := -1
		bestV := 0.0
		secondV := 0.0
		for c := 0; c < cols; c++ {
			if w[r][c] <= Forbidden {
				continue
			}
			v := w[r][c] - price[c]
			if best < 0 || v > bestV {
				if best >= 0 && bestV > secondV {
					secondV = bestV
				}
				best, bestV = c, v
			} else if v > secondV {
				secondV = v
			}
		}
		if best < 0 || bestV <= 0 {
			continue // unmatched is optimal for this row
		}
		// Bid away the advantage over the next-best alternative.
		price[best] += bestV - secondV + eps

		if prev := rowOf[best]; prev >= 0 {
			out.ColOf[prev] = -1
			queue = append(queue, prev)
		}
		rowOf[best] = r
		out.ColOf[r] = best
	}

	for r := 0; r < rows; r++ {
		if c := out.ColOf[r]; c >= 0 {
			if w[r][c] <= 0 {
				// Price dynamics can strand a non-positive match; drop
				// it (unmatched is individually rational).
				out.ColOf[r] = -1
				continue
			}
			out.Weight += w[r][c]
			out.Matched++
		}
	}
	return out, nil
}
