package matching

import "math"

// Auction implements Bertsekas' auction algorithm for maximum-weight
// bipartite matching: unmatched rows repeatedly bid for their best
// column at the current prices; each successful bid raises the column's
// price by at least the bid increment. With increment ε, the result is
// within rows·ε of the optimum; ε below the minimum weight gap makes it
// exact. It is kept alongside Hungarian both as an independent
// cross-check (their outputs are compared in tests) and because on
// sparse batched dispatch instances it is usually faster.
//
// The rows·ε guarantee requires running the auction to natural
// termination: every bid raises one column's price by at least ε, and a
// column priced above the maximum weight draws no further bids, so at
// most cols·(maxW/ε + 2) + rows bids can ever happen. The bid budget is
// set to exactly that bound — it is the termination proof, not a
// truncation — because an arbitrary smaller cap silently abandons the
// guarantee on degenerate tied-weight instances, where two rows
// fighting over one column walk its price up in ε steps (the property
// tests sweep those). The flip side is honest: tiny ε on tied weights
// means a long price war; callers pick ε to trade accuracy for time.
func Auction(w [][]float64, eps float64) (Assignment, error) {
	rows, cols, err := validate(w)
	if err != nil {
		return Assignment{}, err
	}
	out := Assignment{ColOf: make([]int, rows)}
	for i := range out.ColOf {
		out.ColOf[i] = -1
	}
	if rows == 0 || cols == 0 {
		return out, nil
	}
	if eps <= 0 {
		eps = 1e-6
	}

	maxW := 0.0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if w[r][c] > Forbidden && w[r][c] > maxW {
				maxW = w[r][c]
			}
		}
	}
	if maxW == 0 {
		return out, nil // no positive weight: unmatched everywhere is optimal
	}

	price := make([]float64, cols)
	rowOf := make([]int, cols)
	for c := range rowOf {
		rowOf[c] = -1
	}

	// A row stays permanently unmatched once its best available value
	// drops to ≤ 0 (unmatched is worth 0 under individual rationality).
	queue := make([]int, 0, rows)
	for r := 0; r < rows; r++ {
		queue = append(queue, r)
	}

	// Clamp before converting: for extreme maxW/eps ratios the float
	// bound exceeds the int range, and an overflowing conversion would
	// yield a negative budget that silently skips all bidding.
	bound := math.Ceil(float64(cols)*(maxW/eps+2)) + float64(rows)
	maxBids := math.MaxInt
	if bound < float64(math.MaxInt) {
		maxBids = int(bound)
	}
	for len(queue) > 0 && maxBids > 0 {
		maxBids--
		r := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		// Find the best and second-best column values for row r.
		// Staying unmatched is worth 0 and acts as the reservation.
		best := -1
		bestV := 0.0
		secondV := 0.0
		for c := 0; c < cols; c++ {
			if w[r][c] <= Forbidden {
				continue
			}
			v := w[r][c] - price[c]
			if best < 0 || v > bestV {
				if best >= 0 && bestV > secondV {
					secondV = bestV
				}
				best, bestV = c, v
			} else if v > secondV {
				secondV = v
			}
		}
		if best < 0 || bestV <= 0 {
			continue // unmatched is optimal for this row
		}
		// Bid away the advantage over the next-best alternative.
		price[best] += bestV - secondV + eps

		if prev := rowOf[best]; prev >= 0 {
			out.ColOf[prev] = -1
			queue = append(queue, prev)
		}
		rowOf[best] = r
		out.ColOf[r] = best
	}

	for r := 0; r < rows; r++ {
		if c := out.ColOf[r]; c >= 0 {
			if w[r][c] <= 0 {
				// Price dynamics can strand a non-positive match; drop
				// it (unmatched is individually rational).
				out.ColOf[r] = -1
				continue
			}
			out.Weight += w[r][c]
			out.Matched++
		}
	}
	return out, nil
}
