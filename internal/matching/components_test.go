package matching

import (
	"math/rand"
	"sort"
	"testing"
)

// buildSparse assembles a Sparse from per-row column lists.
func buildSparse(cols int, rows [][]int) Sparse {
	sp := Sparse{Rows: len(rows), Cols: cols, RowPtr: make([]int, len(rows)+1)}
	for r, cs := range rows {
		sp.RowPtr[r+1] = sp.RowPtr[r] + len(cs)
		for _, c := range cs {
			sp.Col = append(sp.Col, c)
			sp.W = append(sp.W, 1)
		}
	}
	return sp
}

func TestComponentScratchBasic(t *testing.T) {
	// Rows 0,2 share col 1; row 1 owns col 0; row 3 edgeless; col 2 untouched.
	sp := buildSparse(3, [][]int{{1}, {0}, {1}, {}})
	var cs ComponentScratch
	n := cs.Decompose(sp)
	if n != 3 {
		t.Fatalf("ncomp = %d, want 3", n)
	}
	wantRow := []int{0, 1, 0, 2}
	for r, w := range wantRow {
		if cs.CompOfRow[r] != w {
			t.Fatalf("CompOfRow[%d] = %d, want %d", r, cs.CompOfRow[r], w)
		}
	}
	wantCol := []int{1, 0, -1}
	for c, w := range wantCol {
		if cs.CompOfCol[c] != w {
			t.Fatalf("CompOfCol[%d] = %d, want %d", c, cs.CompOfCol[c], w)
		}
	}
	// Component 0: rows {0,2}, cols {1}. Component 1: rows {1}, cols {0}.
	// Component 2: rows {3}, no cols.
	if got := cs.RowsByComp[cs.RowPtr[0]:cs.RowPtr[1]]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("comp 0 rows = %v, want [0 2]", got)
	}
	if got := cs.ColsByComp[cs.ColPtr[0]:cs.ColPtr[1]]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("comp 0 cols = %v, want [1]", got)
	}
	if got := cs.ColsByComp[cs.ColPtr[2]:cs.ColPtr[3]]; len(got) != 0 {
		t.Fatalf("comp 2 cols = %v, want empty", got)
	}
}

// TestComponentScratchMatchesSolver fuzzes random instances and checks
// the exported decomposition agrees with SparseSolver's private one on
// row labeling and layout, and that the column layout is consistent
// with the row labels.
func TestComponentScratchMatchesSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var cs ComponentScratch
	var ss SparseSolver
	for trial := 0; trial < 300; trial++ {
		nr := rng.Intn(12)
		nc := rng.Intn(12)
		rows := make([][]int, nr)
		if nc > 0 {
			for r := range rows {
				deg := rng.Intn(4)
				for k := 0; k < deg; k++ {
					c := rng.Intn(nc)
					dup := false
					for _, have := range rows[r] {
						if have == c {
							dup = true
							break
						}
					}
					if !dup {
						rows[r] = append(rows[r], c)
					}
				}
				sort.Ints(rows[r])
			}
		}
		sp := buildSparse(nc, rows)
		if err := sp.Validate(); err != nil {
			t.Fatal(err)
		}
		n := cs.Decompose(sp)
		nWant := ss.decompose(sp)
		if n != nWant {
			t.Fatalf("trial %d: ncomp %d, solver %d", trial, n, nWant)
		}
		for r := 0; r < nr; r++ {
			if cs.CompOfRow[r] != ss.compOf[r] {
				t.Fatalf("trial %d: CompOfRow[%d] = %d, solver %d", trial, r, cs.CompOfRow[r], ss.compOf[r])
			}
		}
		for c := 0; c <= n; c++ {
			if cs.RowPtr[c] != ss.compPtr[c] {
				t.Fatalf("trial %d: RowPtr[%d] = %d, solver %d", trial, c, cs.RowPtr[c], ss.compPtr[c])
			}
		}
		for i := 0; i < nr; i++ {
			if cs.RowsByComp[i] != ss.rowsByComp[i] {
				t.Fatalf("trial %d: RowsByComp[%d] = %d, solver %d", trial, i, cs.RowsByComp[i], ss.rowsByComp[i])
			}
		}
		// Column side: every edge must stay inside its row's component,
		// every touched column appears exactly once, lists ascend.
		seen := make(map[int]bool)
		for comp := 0; comp < n; comp++ {
			prev := -1
			for _, c := range cs.ColsByComp[cs.ColPtr[comp]:cs.ColPtr[comp+1]] {
				if c <= prev {
					t.Fatalf("trial %d: comp %d cols not ascending", trial, comp)
				}
				prev = c
				if seen[c] {
					t.Fatalf("trial %d: col %d in two components", trial, c)
				}
				seen[c] = true
				if cs.CompOfCol[c] != comp {
					t.Fatalf("trial %d: CompOfCol[%d] = %d, laid out in %d", trial, c, cs.CompOfCol[c], comp)
				}
			}
		}
		for r := 0; r < nr; r++ {
			for k := sp.RowPtr[r]; k < sp.RowPtr[r+1]; k++ {
				if cs.CompOfCol[sp.Col[k]] != cs.CompOfRow[r] {
					t.Fatalf("trial %d: edge (%d,%d) crosses components", trial, r, sp.Col[k])
				}
			}
		}
		for c := 0; c < nc; c++ {
			touched := false
			for r := 0; r < nr && !touched; r++ {
				for k := sp.RowPtr[r]; k < sp.RowPtr[r+1]; k++ {
					if sp.Col[k] == c {
						touched = true
						break
					}
				}
			}
			if touched != seen[c] {
				t.Fatalf("trial %d: col %d touched=%v laid out=%v", trial, c, touched, seen[c])
			}
			if !touched && cs.CompOfCol[c] != -1 {
				t.Fatalf("trial %d: untouched col %d has component %d", trial, c, cs.CompOfCol[c])
			}
		}
	}
}

// TestComponentScratchManyRowsFewCols regression-tests the cursor
// reuse: more components than columns must not index out of range.
func TestComponentScratchManyRowsFewCols(t *testing.T) {
	sp := buildSparse(1, [][]int{{}, {}, {}, {}, {0}})
	var cs ComponentScratch
	if n := cs.Decompose(sp); n != 5 {
		t.Fatalf("ncomp = %d, want 5", n)
	}
	if cs.CompOfCol[0] != 4 {
		t.Fatalf("CompOfCol[0] = %d, want 4", cs.CompOfCol[0])
	}
}

func TestComponentScratchZeroAlloc(t *testing.T) {
	sp := buildSparse(6, [][]int{{0, 1}, {1, 2}, {3}, {4, 5}})
	var cs ComponentScratch
	cs.Decompose(sp)
	avg := testing.AllocsPerRun(50, func() { cs.Decompose(sp) })
	if avg != 0 {
		t.Fatalf("steady-state Decompose allocates %v per run, want 0", avg)
	}
}
