package matching

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// This file is the sparse formulation of the window-matching problem.
// The dense solvers in hungarian.go and auction.go receive a full
// rows×cols weight matrix and — in the Hungarian case — reduce it to a
// virtual (rows+cols)² square, which is exactly the right oracle for
// tests but hopeless as a hot path: a batched dispatch window over a
// city fleet is a *sparse* bipartite graph (each order reaches a few
// dozen nearby drivers out of tens of thousands) that usually falls
// apart into many small connected components, each solvable
// independently.
//
// Sparse is that graph in CSR form, and SparseSolver solves it with
// zero steady-state allocations: every slice it needs is grown once and
// reused across solves, so a long-running dispatcher clears thousands
// of windows without touching the allocator. Solve splits the instance
// into connected components with a union-find over the edges and solves
// each component independently — optionally across a bounded pool of
// worker goroutines — which is exact, not approximate: components share
// no rows and no columns, so any matching of the whole instance
// restricts to one matching per component and its weight is the sum of
// the restrictions; maximizing each term independently therefore
// maximizes the sum, and the union of per-component optima is a global
// maximum-weight matching.

// Kind selects the kernel a SparseSolver runs on each component.
type Kind int

// The sparse kernels.
const (
	// KindHungarian runs shortest augmenting paths with dual
	// potentials (exact, deterministic) per component.
	KindHungarian Kind = iota
	// KindAuction runs Bertsekas' auction per component (exact up to
	// rows·ε per component, same contract as the dense Auction).
	KindAuction
)

// Sparse is a sparse rectangular weight matrix in compressed sparse
// row form: row r's edges are Col[RowPtr[r]:RowPtr[r+1]] (column
// indices, strictly ascending within a row) with weights in the
// parallel W span. Absent pairs are forbidden; entries with weight ≤ 0
// may be present but are never matched (unmatched is individually
// rational), so hot-path builders should drop them while constructing
// the instance.
type Sparse struct {
	Rows   int
	Cols   int
	RowPtr []int
	Col    []int
	W      []float64
}

// Validate checks the CSR structure; Solve calls it on entry.
func (sp Sparse) Validate() error {
	if sp.Rows < 0 || sp.Cols < 0 {
		return fmt.Errorf("matching: negative sparse dims %dx%d", sp.Rows, sp.Cols)
	}
	if len(sp.RowPtr) != sp.Rows+1 {
		return fmt.Errorf("matching: sparse RowPtr len %d, want rows+1 = %d", len(sp.RowPtr), sp.Rows+1)
	}
	if sp.RowPtr[0] != 0 {
		return fmt.Errorf("matching: sparse RowPtr[0] = %d, want 0", sp.RowPtr[0])
	}
	nnz := sp.RowPtr[sp.Rows]
	if len(sp.Col) < nnz || len(sp.W) < nnz {
		return fmt.Errorf("matching: sparse edge arrays shorter than RowPtr extent %d", nnz)
	}
	for r := 0; r < sp.Rows; r++ {
		lo, hi := sp.RowPtr[r], sp.RowPtr[r+1]
		if lo > hi {
			return fmt.Errorf("matching: sparse RowPtr not monotone at row %d", r)
		}
		for k := lo; k < hi; k++ {
			if c := sp.Col[k]; c < 0 || c >= sp.Cols {
				return fmt.Errorf("matching: sparse column %d out of range [0,%d) at row %d", c, sp.Cols, r)
			}
			if k > lo && sp.Col[k] <= sp.Col[k-1] {
				return fmt.Errorf("matching: sparse columns not strictly ascending in row %d", r)
			}
		}
	}
	return nil
}

// SparseSolver carries the reusable scratch of sparse solves. The zero
// value is ready to use; a solver is not safe for concurrent Solve
// calls (one window at a time), though a single Solve may fan its
// components out across worker goroutines internally.
type SparseSolver struct {
	// Matching state, persistent across the rows of one solve. Columns
	// live in an extended id space: real columns 0..Cols-1, then one
	// virtual "exit" column Cols+r per row r representing "leave row r
	// unmatched" at weight 0 — the sparse analogue of the dense
	// reduction's personal dummy column, without ever materializing the
	// O((rows+cols)²) square.
	colOf []int // row -> extended column (exit ⇒ unmatched)
	rowOf []int // extended column -> row, -1 free
	u     []float64
	v     []float64

	// Per-row Dijkstra state, reset between rows via the touched list
	// only, so a row's augment costs work proportional to its
	// component, not the instance.
	minv []float64
	way  []int
	used []bool

	// Auction prices over real columns.
	price []float64

	// Union-find over rows plus the column -> first-row map that
	// stitches rows sharing a column into one component.
	parent   []int
	firstRow []int

	// Component layout: component c owns rows
	// rowsByComp[compPtr[c]:compPtr[c+1]] in ascending order;
	// components are numbered by their smallest member row.
	compOf     []int
	compPtr    []int
	rowsByComp []int

	// Per-worker scratch: a touched-column list for Hungarian, a bid
	// queue for Auction. workers[0] serves the serial path.
	workers []workerScratch
}

type workerScratch struct {
	touched []int
	queue   []int
}

// grownInt returns s resized (never shrunk) to n without zeroing:
// every user initializes the entries it owns.
func grownInt(s []int, n int) []int {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]int, n-cap(s))...)
	}
	return s[:n]
}

func grownFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]float64, n-cap(s))...)
	}
	return s[:n]
}

func grownBool(s []bool, n int) []bool {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]bool, n-cap(s))...)
	}
	return s[:n]
}

func (s *SparseSolver) find(r int) int {
	for s.parent[r] != r {
		s.parent[r] = s.parent[s.parent[r]] // path halving
		r = s.parent[r]
	}
	return r
}

// decompose runs the union-find over the edges and lays the components
// out canonically: numbered by smallest member row, rows ascending
// within each. Returns the component count.
func (s *SparseSolver) decompose(sp Sparse) int {
	s.parent = grownInt(s.parent, sp.Rows)
	for r := range s.parent {
		s.parent[r] = r
	}
	s.firstRow = grownInt(s.firstRow, sp.Cols)
	for c := range s.firstRow {
		s.firstRow[c] = -1
	}
	for r := 0; r < sp.Rows; r++ {
		for k := sp.RowPtr[r]; k < sp.RowPtr[r+1]; k++ {
			c := sp.Col[k]
			if s.firstRow[c] < 0 {
				s.firstRow[c] = r
				continue
			}
			a, b := s.find(r), s.find(s.firstRow[c])
			if a != b {
				s.parent[b] = a
			}
		}
	}
	// Label members with component ids in order of first appearance, so
	// ids ascend by smallest member row whatever the union roots are.
	s.compOf = grownInt(s.compOf, sp.Rows)
	for r := 0; r < sp.Rows; r++ {
		s.compOf[r] = -1
	}
	ncomp := 0
	for r := 0; r < sp.Rows; r++ {
		root := s.find(r)
		if s.compOf[root] < 0 {
			s.compOf[root] = ncomp
			ncomp++
		}
		s.compOf[r] = s.compOf[root]
	}
	// Counting sort the rows into their components; scanning rows in
	// ascending order keeps each component's row list ascending.
	s.compPtr = grownInt(s.compPtr, ncomp+1)
	for c := 0; c <= ncomp; c++ {
		s.compPtr[c] = 0
	}
	for r := 0; r < sp.Rows; r++ {
		s.compPtr[s.compOf[r]+1]++
	}
	for c := 1; c <= ncomp; c++ {
		s.compPtr[c] += s.compPtr[c-1]
	}
	s.rowsByComp = grownInt(s.rowsByComp, sp.Rows)
	cursors := s.parent // union-find is settled; reuse as fill cursors
	for c := 0; c < ncomp; c++ {
		cursors[c] = s.compPtr[c]
	}
	for r := 0; r < sp.Rows; r++ {
		c := s.compOf[r]
		s.rowsByComp[cursors[c]] = r
		cursors[c]++
	}
	return ncomp
}

// ensureWorkers grows the per-worker scratch pool to n entries.
func (s *SparseSolver) ensureWorkers(n int) {
	for len(s.workers) < n {
		s.workers = append(s.workers, workerScratch{})
	}
}

// Solve computes a maximum-weight matching of sp: the instance is split
// into connected components, each solved independently by the chosen
// kernel, concurrently across min(workers, components) goroutines when
// workers > 1. eps is the Auction bid increment (ignored by Hungarian;
// non-positive values default as the dense Auction does).
//
// The returned slice maps each row to its matched column (-1 for
// unmatched) and is owned by the solver: it is valid until the next
// Solve call and must not be retained. Weight and matched counts are
// computed from the final assignment in ascending row order, so the
// full result is bit-identical for every worker count.
func (s *SparseSolver) Solve(sp Sparse, kind Kind, eps float64, workers int) (colOf []int, weight float64, matched int, err error) {
	if err := sp.Validate(); err != nil {
		return nil, 0, 0, err
	}
	if kind != KindHungarian && kind != KindAuction {
		return nil, 0, 0, fmt.Errorf("matching: unknown sparse kernel %d", int(kind))
	}
	ext := sp.Cols + sp.Rows // real columns plus one exit per row
	s.colOf = grownInt(s.colOf, sp.Rows)
	s.rowOf = grownInt(s.rowOf, ext)
	for r := 0; r < sp.Rows; r++ {
		s.colOf[r] = -1
	}
	for c := 0; c < ext; c++ {
		s.rowOf[c] = -1
	}
	if sp.Rows == 0 {
		return s.colOf, 0, 0, nil
	}

	switch kind {
	case KindHungarian:
		s.u = grownFloat(s.u, sp.Rows)
		s.v = grownFloat(s.v, ext)
		s.minv = grownFloat(s.minv, ext)
		s.way = grownInt(s.way, ext)
		s.used = grownBool(s.used, ext)
		for r := 0; r < sp.Rows; r++ {
			s.u[r] = 0
		}
		inf := math.Inf(1)
		for c := 0; c < ext; c++ {
			s.v[c] = 0
			s.minv[c] = inf
			s.used[c] = false
		}
	case KindAuction:
		if eps <= 0 {
			eps = 1e-6
		}
		s.price = grownFloat(s.price, sp.Cols)
		for c := 0; c < sp.Cols; c++ {
			s.price[c] = 0
		}
	}

	ncomp := s.decompose(sp)
	if workers > ncomp {
		workers = ncomp
	}
	if workers <= 1 {
		s.ensureWorkers(1)
		for c := 0; c < ncomp; c++ {
			s.solveComponent(sp, kind, eps, c, &s.workers[0])
		}
	} else {
		// Kept out of line so the serial hot path carries no closure
		// captures (they would heap-allocate on every solve).
		s.solveParallel(sp, kind, eps, ncomp, workers)
	}

	// Settle in ascending row order — deterministic across worker
	// counts — mapping exit columns back to "unmatched".
	for r := 0; r < sp.Rows; r++ {
		c := s.colOf[r]
		if c < 0 || c >= sp.Cols {
			s.colOf[r] = -1
			continue
		}
		for k := sp.RowPtr[r]; k < sp.RowPtr[r+1]; k++ {
			if sp.Col[k] == c {
				weight += sp.W[k]
				break
			}
		}
		matched++
	}
	return s.colOf, weight, matched, nil
}

// solveParallel fans the components out over a bounded worker pool.
// Components touch disjoint rows and columns, so the shared state
// (colOf, rowOf, u, v, minv, way, used, price) is written at disjoint
// indices by construction; only the touched/queue lists are per-worker.
func (s *SparseSolver) solveParallel(sp Sparse, kind Kind, eps float64, ncomp, workers int) {
	s.ensureWorkers(workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ws *workerScratch) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= ncomp {
					return
				}
				s.solveComponent(sp, kind, eps, c, ws)
			}
		}(&s.workers[w])
	}
	wg.Wait()
}

// solveComponent dispatches one component to the kernel.
func (s *SparseSolver) solveComponent(sp Sparse, kind Kind, eps float64, comp int, ws *workerScratch) {
	rows := s.rowsByComp[s.compPtr[comp]:s.compPtr[comp+1]]
	if kind == KindAuction {
		s.auctionComponent(sp, eps, rows, ws)
		return
	}
	for _, r := range rows {
		s.augmentRow(sp, r, ws)
	}
}

// augmentRow extends the matching by one shortest augmenting path from
// row r0 — one outer iteration of the Jonker-Volgenant scheme the dense
// Hungarian runs, restated over adjacency lists. Edge weights w become
// costs −w; row r's exit column (id Cols+r) costs 0 and represents
// staying unmatched, so only positive-weight matches ever improve the
// objective and edges with w ≤ 0 need no relaxing at all. The Dijkstra
// frontier only ever reaches columns of r0's component, and the scratch
// it dirties is reset through the touched list, which is what makes a
// window of many small components cheap. Frontier ties break toward the
// smallest extended column id, mirroring the dense solver's ascending
// column scan.
func (s *SparseSolver) augmentRow(sp Sparse, r0 int, ws *workerScratch) {
	touched := ws.touched[:0]
	inf := math.Inf(1)
	j0 := -1 // frontier column; -1 while the path is still just r0
	for {
		i0 := r0
		if j0 >= 0 {
			i0 = s.rowOf[j0]
		}
		// Relax i0's positive edges and its exit column against the
		// current potentials (the dual updates below keep the reduced
		// cost through every settled column at zero, so no explicit
		// path-length bookkeeping is needed).
		for k := sp.RowPtr[i0]; k < sp.RowPtr[i0+1]; k++ {
			c := sp.Col[k]
			w := sp.W[k]
			if w <= 0 || s.used[c] {
				continue
			}
			cur := -w - s.u[i0] - s.v[c]
			if cur < s.minv[c] {
				if s.minv[c] == inf {
					touched = append(touched, c)
				}
				s.minv[c] = cur
				s.way[c] = j0
			}
		}
		if ec := sp.Cols + i0; !s.used[ec] {
			cur := -s.u[i0] - s.v[ec]
			if cur < s.minv[ec] {
				if s.minv[ec] == inf {
					touched = append(touched, ec)
				}
				s.minv[ec] = cur
				s.way[ec] = j0
			}
		}
		// Settle the reachable column with the least tentative cost,
		// ties to the smallest id. i0's exit is always relaxable and
		// never already settled (i0 appears on the path at most once),
		// so a candidate always exists.
		delta, j1 := inf, -1
		for _, c := range touched {
			if s.used[c] {
				continue
			}
			if s.minv[c] < delta || (s.minv[c] == delta && c < j1) {
				delta, j1 = s.minv[c], c
			}
		}
		if j1 < 0 {
			break // unreachable per the invariant above; guard anyway
		}
		// Dual update: settled columns and their rows absorb delta so
		// the reduced cost through every settled column stays zero;
		// unsettled tentative costs shift down to stay relative to the
		// new frontier. (A settled exit column would end the loop below
		// before any further update, so rowOf here is always a row.)
		s.u[r0] += delta
		for _, c := range touched {
			if s.used[c] {
				s.u[s.rowOf[c]] += delta
				s.v[c] -= delta
			} else {
				s.minv[c] -= delta
			}
		}
		s.used[j1] = true
		j0 = j1
		if s.rowOf[j1] < 0 {
			break // free column: augment
		}
	}
	// Augment: walk the way pointers back to r0, shifting each column
	// onto the row its predecessor column released.
	if j0 >= 0 && s.rowOf[j0] < 0 {
		for j0 >= 0 {
			jPrev := s.way[j0]
			r := r0
			if jPrev >= 0 {
				r = s.rowOf[jPrev]
			}
			s.rowOf[j0] = r
			s.colOf[r] = j0
			j0 = jPrev
		}
	}
	// Reset only what this row dirtied.
	for _, c := range touched {
		s.minv[c] = inf
		s.used[c] = false
	}
	ws.touched = touched[:0]
}

// auctionComponent runs Bertsekas' auction over one component's rows,
// mirroring the dense Auction bid for bid: same 0-value reservation,
// same bid increment, same LIFO processing order. (The dense global
// stack preserves each component's relative pop order and prices never
// cross components, so solving per component reproduces the dense run's
// per-component bid sequence exactly.)
func (s *SparseSolver) auctionComponent(sp Sparse, eps float64, rows []int, ws *workerScratch) {
	maxW := 0.0
	nedges := 0
	for _, r := range rows {
		for k := sp.RowPtr[r]; k < sp.RowPtr[r+1]; k++ {
			if sp.W[k] > maxW {
				maxW = sp.W[k]
			}
		}
		nedges += sp.RowPtr[r+1] - sp.RowPtr[r]
	}
	if maxW == 0 {
		return // no positive weight: unmatched everywhere is optimal
	}
	queue := append(ws.queue[:0], rows...)
	// Termination bound, as in the dense Auction: every bid raises one
	// column's price by ≥ ε and a column priced above maxW draws no
	// further bids. The component's distinct column count is bounded by
	// its edge count — the cheap conservative stand-in; the bound is a
	// proof of termination, not a truncation.
	bound := math.Ceil(float64(nedges)*(maxW/eps+2)) + float64(len(rows))
	maxBids := math.MaxInt
	if bound < float64(math.MaxInt) {
		maxBids = int(bound)
	}
	for len(queue) > 0 && maxBids > 0 {
		maxBids--
		r := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		// Best and second-best column values for row r; staying
		// unmatched is worth 0 and acts as the reservation, so edges
		// with w ≤ 0 can never contribute to either.
		best := -1
		bestV := 0.0
		secondV := 0.0
		for k := sp.RowPtr[r]; k < sp.RowPtr[r+1]; k++ {
			c := sp.Col[k]
			w := sp.W[k]
			if w <= 0 {
				continue
			}
			v := w - s.price[c]
			if best < 0 || v > bestV {
				if best >= 0 && bestV > secondV {
					secondV = bestV
				}
				best, bestV = c, v
			} else if v > secondV {
				secondV = v
			}
		}
		if best < 0 || bestV <= 0 {
			continue // unmatched is optimal for this row
		}
		s.price[best] += bestV - secondV + eps

		if prev := s.rowOf[best]; prev >= 0 {
			s.colOf[prev] = -1
			queue = append(queue, prev)
		}
		s.rowOf[best] = r
		s.colOf[r] = best
	}
	ws.queue = queue[:0]
}

// SparseHungarian solves sp with the sparse Hungarian kernel on a
// throwaway solver — the convenience form for tests and offline tools;
// hot paths hold a SparseSolver and call Solve.
func SparseHungarian(sp Sparse) (Assignment, error) {
	return sparseSolve(sp, KindHungarian, 0)
}

// SparseAuction solves sp with the sparse auction kernel on a
// throwaway solver. eps is the bid increment, as in Auction.
func SparseAuction(sp Sparse, eps float64) (Assignment, error) {
	return sparseSolve(sp, KindAuction, eps)
}

func sparseSolve(sp Sparse, kind Kind, eps float64) (Assignment, error) {
	var s SparseSolver
	colOf, weight, matched, err := s.Solve(sp, kind, eps, 1)
	if err != nil {
		return Assignment{}, err
	}
	out := Assignment{ColOf: make([]int, len(colOf)), Weight: weight, Matched: matched}
	copy(out.ColOf, colOf)
	return out, nil
}
