package pricing_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/online"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestSurgePricingThroughFullSimRun closes the gap between the surge
// pricer's unit tests and the market it actually prices: a full online
// day is simulated over surge-priced tasks under the exact linear scan,
// the grid-indexed source and the zone-sharded source, and all three
// must agree bit-for-bit — the surge multiplier changes what tasks are
// worth, never who is feasible, so candidate-source choice must be
// invisible through the whole pricing-to-profit pipeline.
func TestSurgePricingThroughFullSimRun(t *testing.T) {
	cfg := trace.NewConfig(83, 200, 50, trace.Hitchhiking)
	gen := trace.NewGenerator(cfg)
	tr := gen.Generate(nil) // linear-priced baseline

	// Surge-price the same tasks from the day's demand/supply imbalance.
	grid := geo.NewGrid(cfg.Box, 8, 8)
	surge := pricing.NewSurge(pricing.NewLinear(cfg.Market, 1), grid, 3)
	for _, d := range tr.Drivers {
		surge.ObserveSupply(d.Source, 1)
	}
	for _, tk := range tr.Tasks {
		surge.ObserveDemand(tk.Source, 1)
	}
	surgeTasks := append([]model.Task(nil), tr.Tasks...)
	pricing.ApplyPricing(surgeTasks, surge, 0.4)

	multipliers := make([]float64, len(surgeTasks))
	surged := false
	for i, tk := range surgeTasks {
		multipliers[i] = surge.Multiplier(tk.Source)
		if multipliers[i] > 1 {
			surged = true
		}
		base := tr.Tasks[i].Price // linear price of the identical task
		if math.Abs(tk.Price-multipliers[i]*base) > 1e-9 {
			t.Fatalf("task %d: surge price %.6f != multiplier %.3f × base %.6f", i, tk.Price, multipliers[i], base)
		}
	}
	if !surged {
		t.Fatal("demand-heavy market produced no surge multiplier above 1")
	}

	run := func(src sim.CandidateSource) sim.Result {
		e, err := sim.New(cfg.Market, tr.Drivers, 83)
		if err != nil {
			t.Fatal(err)
		}
		if src != nil {
			e.SetCandidateSource(src)
		}
		return e.Run(surgeTasks, online.MaxMargin{})
	}

	scan := run(nil)
	sources := map[string]sim.CandidateSource{
		"grid":      sim.NewGridSource(nil),
		"sharded-1": sim.NewShardedSource(1),
		"sharded-4": sim.NewShardedSource(4),
	}
	for name, src := range sources {
		if got := run(src); !reflect.DeepEqual(scan, got) {
			t.Errorf("%s: surge-priced simulation diverges from the linear scan", name)
		}
	}

	// The revenue really is the surged revenue: Σ multiplier·base over
	// the served set.
	var want float64
	for ti := range scan.Assignment {
		want += multipliers[ti] * tr.Tasks[ti].Price
	}
	if math.Abs(scan.Revenue-want) > 1e-6 {
		t.Fatalf("revenue %.6f != Σ surged prices of served tasks %.6f", scan.Revenue, want)
	}
	if scan.Served == 0 {
		t.Fatal("surge run served nothing; test would be vacuous")
	}
}
