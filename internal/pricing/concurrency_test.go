package pricing

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
)

// TestSurgeConcurrentObservePrice drives Observe*/Decay writers against
// Price/Multiplier readers; under -race this proves the Pricer contract
// ("safe for concurrent readers once constructed") now holds with live
// observation, and the assertions pin the multiplier to its documented
// clamp range whatever interleaving occurs.
func TestSurgeConcurrentObservePrice(t *testing.T) {
	m := model.DefaultMarket()
	grid := geo.NewGrid(geo.PortoBox, 8, 8)
	s := NewSurge(NewLinear(m, 1), grid, 3)

	const writers, readers, iters = 4, 4, 2000
	var wg sync.WaitGroup
	wg.Add(writers + readers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				p := geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
				switch i % 4 {
				case 0, 1:
					s.ObserveDemand(p, 1)
				case 2:
					s.ObserveSupply(p, 1)
				default:
					s.Decay(0.9)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < iters; i++ {
				src := geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
				tk := model.Task{Source: src, Dest: geo.PortoBox.Center(), StartBy: 60, EndBy: 600}
				if a := s.Multiplier(src); a < 1 || a > s.MaxAlpha {
					t.Errorf("multiplier %v outside [1, %v]", a, s.MaxAlpha)
					return
				}
				if price := s.Price(tk); price < 0 {
					t.Errorf("negative price %v", price)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestSurgeReset: observations are forgotten and the pricer returns to
// its flat (α = 1) state.
func TestSurgeReset(t *testing.T) {
	m := model.DefaultMarket()
	grid := geo.NewGrid(geo.PortoBox, 8, 8)
	s := NewSurge(NewLinear(m, 1), grid, 3)
	center := geo.PortoBox.Center()
	s.ObserveDemand(center, 50)
	s.ObserveSupply(center, 1)
	if a := s.Multiplier(center); a <= 1 {
		t.Fatalf("multiplier %v after heavy demand, want > 1", a)
	}
	s.Reset()
	if a := s.Multiplier(center); a != 1 {
		t.Fatalf("multiplier %v after Reset, want 1", a)
	}
	tk := model.Task{Source: center, Dest: geo.PortoBox.Lerp(0.8, 0.8), StartBy: 60, EndBy: 600}
	if got, want := s.Price(tk), s.Base.Price(tk); got != want {
		t.Fatalf("post-Reset price %v, want flat price %v", got, want)
	}
}
