package pricing

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
)

func mkt() model.Market { return model.DefaultMarket() }

func sampleTask() model.Task {
	return model.Task{
		ID: 0, Publish: 0,
		Source:  geo.Point{Lat: 41.15, Lon: -8.61},
		Dest:    geo.Point{Lat: 41.17, Lon: -8.58},
		StartBy: 600, EndBy: 1800,
	}
}

func TestLinearPriceFormula(t *testing.T) {
	m := mkt()
	l := NewLinear(m, 1)
	tk := sampleTask()
	want := DefaultBeta1*m.Dist(tk.Source, tk.Dest) + DefaultBeta2*(tk.EndBy-tk.StartBy)
	if got := l.Price(tk); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Price = %g, want %g", got, want)
	}
}

func TestLinearAlphaScales(t *testing.T) {
	m := mkt()
	tk := sampleTask()
	p1 := NewLinear(m, 1).Price(tk)
	p2 := NewLinear(m, 2.5).Price(tk)
	if math.Abs(p2-2.5*p1) > 1e-12 {
		t.Fatalf("α scaling broken: %g vs %g", p2, 2.5*p1)
	}
}

func TestSurgeNeutralWithoutObservations(t *testing.T) {
	m := mkt()
	grid := geo.NewGrid(geo.PortoBox, 5, 5)
	s := NewSurge(NewLinear(m, 1), grid, 3)
	tk := sampleTask()
	if got, want := s.Price(tk), NewLinear(m, 1).Price(tk); math.Abs(got-want) > 1e-12 {
		t.Fatalf("no-demand surge price %g, want base %g", got, want)
	}
	if s.Multiplier(tk.Source) != 1 {
		t.Fatalf("empty-market multiplier = %g, want 1", s.Multiplier(tk.Source))
	}
}

func TestSurgeRisesWithDemand(t *testing.T) {
	grid := geo.NewGrid(geo.PortoBox, 5, 5)
	s := NewSurge(NewLinear(mkt(), 1), grid, 3)
	p := sampleTask().Source
	for i := 0; i < 10; i++ {
		s.ObserveDemand(p, 1)
	}
	s.ObserveSupply(p, 2)
	mult := s.Multiplier(p)
	if mult <= 1 {
		t.Fatalf("multiplier %g should exceed 1 under excess demand", mult)
	}
	if mult > 3 {
		t.Fatalf("multiplier %g exceeds cap 3", mult)
	}
}

func TestSurgeCapEnforced(t *testing.T) {
	grid := geo.NewGrid(geo.PortoBox, 4, 4)
	s := NewSurge(NewLinear(mkt(), 1), grid, 2)
	p := sampleTask().Source
	for i := 0; i < 1000; i++ {
		s.ObserveDemand(p, 1)
	}
	if got := s.Multiplier(p); got != 2 {
		t.Fatalf("multiplier %g, want cap 2", got)
	}
}

func TestSurgeSupplyDampens(t *testing.T) {
	grid := geo.NewGrid(geo.PortoBox, 4, 4)
	s := NewSurge(NewLinear(mkt(), 1), grid, 5)
	p := sampleTask().Source
	for i := 0; i < 20; i++ {
		s.ObserveDemand(p, 1)
	}
	high := s.Multiplier(p)
	for i := 0; i < 40; i++ {
		s.ObserveSupply(p, 1)
	}
	low := s.Multiplier(p)
	if low >= high {
		t.Fatalf("supply should lower surge: %g → %g", high, low)
	}
	if low != 1 {
		t.Fatalf("abundant supply should restore multiplier 1, got %g", low)
	}
}

func TestSurgeDecay(t *testing.T) {
	grid := geo.NewGrid(geo.PortoBox, 4, 4)
	s := NewSurge(NewLinear(mkt(), 1), grid, 5)
	p := sampleTask().Source
	for i := 0; i < 50; i++ {
		s.ObserveDemand(p, 1)
	}
	before := s.Multiplier(p)
	for i := 0; i < 20; i++ {
		s.Decay(0.5)
	}
	after := s.Multiplier(p)
	if after >= before || after != 1 {
		t.Fatalf("decay should fade surge to 1: %g → %g", before, after)
	}
}

func TestSurgeNeighborSmoothing(t *testing.T) {
	grid := geo.NewGrid(geo.PortoBox, 5, 5)
	s := NewSurge(NewLinear(mkt(), 1), grid, 10)
	center := grid.CellCenter(12) // interior cell
	for i := 0; i < 100; i++ {
		s.ObserveDemand(center, 1)
	}
	// A neighboring cell should feel some of the surge.
	nb := grid.CellCenter(13)
	if s.Multiplier(nb) <= 1 {
		t.Fatalf("neighbor multiplier %g should exceed 1 via smoothing", s.Multiplier(nb))
	}
}

func TestNewSurgePanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for maxAlpha < 1")
		}
	}()
	NewSurge(NewLinear(mkt(), 1), geo.NewGrid(geo.PortoBox, 2, 2), 0.5)
}

func TestApplyPricing(t *testing.T) {
	tasks := []model.Task{sampleTask(), sampleTask()}
	tasks[1].ID = 1
	ApplyPricing(tasks, NewLinear(mkt(), 1), 0.25)
	for i, tk := range tasks {
		if tk.Price <= 0 {
			t.Fatalf("task %d unpriced", i)
		}
		if math.Abs(tk.WTP-1.25*tk.Price) > 1e-12 {
			t.Fatalf("task %d: WTP %.4f, want 1.25 × price", i, tk.WTP)
		}
		if err := tk.Validate(); err != nil {
			t.Fatalf("task %d invalid after pricing: %v", i, err)
		}
	}
}

func TestApplyPricingPanicsOnNegativeMarkup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ApplyPricing(nil, NewLinear(mkt(), 1), -0.1)
}
