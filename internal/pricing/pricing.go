// Package pricing implements the paper's task-pricing models (§III-A and
// Eq. 15 in §VI-A).
//
// The platform computes each task's price p_m and publishes it to both
// sides of the market, so from the optimization framework's point of view
// the price is a constant attribute of the task. The paper's evaluation
// uses a simplified surge-pricing rule:
//
//	p_m = α_m · (β1·dist(s̄_m, d̄_m) + β2·(t̄+_m − t̄−_m))
//
// where α_m is the surge multiplier, dynamically derived from the
// demand/supply imbalance in the task's geographic zone, and β1, β2 are
// global constants.
package pricing

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geo"
	"repro/internal/model"
)

// Pricer computes the platform price p_m for a task at its publish time.
// Implementations must be safe for concurrent readers once constructed.
type Pricer interface {
	// Price returns the payoff p_m the serving driver receives for t.
	Price(t model.Task) float64
}

// Linear prices tasks with a fixed surge multiplier:
// p = Alpha·(Beta1·distanceKm + Beta2·durationSec). It is the baseline
// (non-surge) pricer; the zero value prices everything at zero, so
// construct with NewLinear or fill every field.
type Linear struct {
	Market model.Market
	Alpha  float64 // constant surge multiplier, typically 1
	Beta1  float64 // currency per kilometer
	Beta2  float64 // currency per second of scheduled window
}

var _ Pricer = (*Linear)(nil)

// DefaultBeta1 and DefaultBeta2 are the global fare constants used by the
// evaluation: roughly 1 unit/km plus 0.4 units per scheduled minute,
// which keeps prices comfortably above gasoline cost so that most tasks
// are individually rational for nearby drivers.
const (
	DefaultBeta1 = 1.0
	DefaultBeta2 = 0.4 / 60
)

// NewLinear returns a Linear pricer with the default fare constants and
// multiplier alpha.
func NewLinear(m model.Market, alpha float64) *Linear {
	return &Linear{Market: m, Alpha: alpha, Beta1: DefaultBeta1, Beta2: DefaultBeta2}
}

// Price implements Pricer using Eq. (15) with a constant multiplier.
func (l *Linear) Price(t model.Task) float64 {
	base := l.Beta1*l.Market.Dist(t.Source, t.Dest) + l.Beta2*(t.EndBy-t.StartBy)
	return l.Alpha * base
}

// Surge prices tasks with a zone- and time-dependent multiplier derived
// from observed demand and supply counts, mimicking Uber's surge pricing
// mechanism ([2] in the paper). The multiplier for a zone is
//
//	α = clamp(1, demand/supply, MaxAlpha)
//
// smoothed over the zone's Moore neighborhood so that adjacent zones do
// not see discontinuous fares.
//
// Surge honors the Pricer concurrency contract: Observe*, Decay and
// Reset take the write lock while Multiplier and Price take the read
// lock, so a live engine may feed observations while HTTP handlers (or
// match workers) price concurrently. Base, Grid and MaxAlpha are
// read-only after construction.
type Surge struct {
	Base     *Linear
	Grid     *geo.Grid
	MaxAlpha float64

	// mu guards demand and supply: the current per-cell counts, updated
	// via Observe*/Decay/Reset and read by Multiplier/Price.
	mu     sync.RWMutex
	demand []float64
	supply []float64
}

var _ Pricer = (*Surge)(nil)

// NewSurge returns a surge pricer over the given zone grid. maxAlpha caps
// the multiplier (Uber caps surges in practice; the paper's α_m is
// "dynamically changed based on real market scenarios").
func NewSurge(base *Linear, grid *geo.Grid, maxAlpha float64) *Surge {
	if maxAlpha < 1 {
		panic(fmt.Sprintf("pricing: maxAlpha %.2f must be at least 1", maxAlpha))
	}
	return &Surge{
		Base:     base,
		Grid:     grid,
		MaxAlpha: maxAlpha,
		demand:   make([]float64, grid.NumCells()),
		supply:   make([]float64, grid.NumCells()),
	}
}

// ObserveDemand records demand mass (e.g. one published task) at p.
func (s *Surge) ObserveDemand(p geo.Point, weight float64) {
	cell := s.Grid.CellOf(p)
	s.mu.Lock()
	s.demand[cell] += weight
	s.mu.Unlock()
}

// ObserveSupply records supply mass (e.g. one idle driver) at p.
func (s *Surge) ObserveSupply(p geo.Point, weight float64) {
	cell := s.Grid.CellOf(p)
	s.mu.Lock()
	s.supply[cell] += weight
	s.mu.Unlock()
}

// Decay exponentially ages all demand/supply observations by factor
// gamma in (0, 1]; the simulator calls it between time buckets so that
// surge reflects recent imbalance rather than the whole day.
func (s *Surge) Decay(gamma float64) {
	s.mu.Lock()
	for i := range s.demand {
		s.demand[i] *= gamma
		s.supply[i] *= gamma
	}
	s.mu.Unlock()
}

// Reset zeroes all demand/supply observations, returning the pricer to
// its as-constructed state. The engine calls it at the start of every
// run so repeated days are bit-identical.
func (s *Surge) Reset() {
	s.mu.Lock()
	for i := range s.demand {
		s.demand[i] = 0
		s.supply[i] = 0
	}
	s.mu.Unlock()
}

// Multiplier returns the current surge multiplier α at p.
func (s *Surge) Multiplier(p geo.Point) float64 {
	cell := s.Grid.CellOf(p)
	s.mu.RLock()
	d, su := s.demand[cell], s.supply[cell]
	for _, nb := range s.Grid.Neighbors(cell) {
		d += 0.5 * s.demand[nb]
		su += 0.5 * s.supply[nb]
	}
	s.mu.RUnlock()
	if su < 1 {
		su = 1 // avoid division blow-up in empty zones
	}
	alpha := d / su
	return math.Min(math.Max(alpha, 1), s.MaxAlpha)
}

// Price implements Pricer: the linear fare scaled by the zone multiplier
// at the task's pickup location.
func (s *Surge) Price(t model.Task) float64 {
	base := s.Base.Beta1*s.Base.Market.Dist(t.Source, t.Dest) +
		s.Base.Beta2*(t.EndBy-t.StartBy)
	return s.Multiplier(t.Source) * base
}

// ApplyPricing stamps Price (and, when wtpMarkup > 0, WTP) onto every
// task using the given pricer. The customer's willingness-to-pay is
// modeled as price·(1+wtpMarkup) — customers only publish tasks whose WTP
// covers the fare (§III-A), so WTP ≥ price always holds afterwards.
// The slice is modified in place.
func ApplyPricing(tasks []model.Task, p Pricer, wtpMarkup float64) {
	if wtpMarkup < 0 {
		panic(fmt.Sprintf("pricing: negative wtp markup %.3f", wtpMarkup))
	}
	for i := range tasks {
		tasks[i].Price = p.Price(tasks[i])
		tasks[i].WTP = tasks[i].Price * (1 + wtpMarkup)
	}
}
