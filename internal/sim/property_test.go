package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// Property: on arbitrary random markets, every dispatch mode conserves
// task accounting (served + rejected == total), keeps per-driver sums
// equal to totals, and never produces NaN money.
func TestQuickSimulationConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTasks := 10 + rng.Intn(60)
		nDrivers := 1 + rng.Intn(15)
		dm := trace.DriverModel(rng.Intn(2))
		cfg := trace.NewConfig(seed, nTasks, nDrivers, dm)
		tr := trace.NewGenerator(cfg).Generate(nil)
		eng, err := New(cfg.Market, tr.Drivers, seed)
		if err != nil {
			return false
		}
		eng.RealTime = seed%2 == 0

		check := func(res Result) bool {
			if res.Served+res.Rejected != nTasks {
				return false
			}
			var profit, revenue float64
			tasksServed := 0
			for i := range res.PerDriverProfit {
				profit += res.PerDriverProfit[i]
				revenue += res.PerDriverRevenue[i]
				tasksServed += res.PerDriverTasks[i]
			}
			if tasksServed != res.Served {
				return false
			}
			if math.Abs(profit-res.TotalProfit) > 1e-6 {
				return false
			}
			if math.IsNaN(res.TotalProfit) || math.IsNaN(res.Revenue) {
				return false
			}
			if len(res.Assignment) != res.Served {
				return false
			}
			return true
		}

		return check(eng.Run(tr.Tasks, localMaxMargin{})) &&
			check(eng.RunBatched(tr.Tasks, 60, BatchHungarian)) &&
			check(eng.RunReplan(tr.Tasks, 120))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a driver never serves two tasks whose service intervals
// (deadline-based) overlap — the lock discipline of Algorithms 3–4.
func TestQuickNoOverlappingService(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := trace.NewConfig(seed, 10+rng.Intn(50), 1+rng.Intn(10), trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		eng, err := New(cfg.Market, tr.Drivers, seed)
		if err != nil {
			return false
		}
		res := eng.Run(tr.Tasks, localMaxMargin{})
		for _, path := range res.DriverPaths {
			for i := 1; i < len(path); i++ {
				prev, cur := tr.Tasks[path[i-1]], tr.Tasks[path[i]]
				if cur.StartBy < prev.EndBy-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
