package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/trace"
)

// replayThroughStream feeds a whole trace through a Stream in the
// canonical merge order — ascending time, retirements and cancellations
// before arrivals at the same instant, original order within a kind —
// which is exactly the order RunScenario's heap would drain the same
// events in. Joins and retirements are pre-scheduled as fleet events;
// cancellations and arrivals are submitted live.
func replayThroughStream(t *testing.T, e *Engine, d Dispatcher, tasks []model.Task, events []model.MarketEvent) Result {
	t.Helper()
	var fleet []model.MarketEvent
	type item struct {
		at     float64
		rank   int
		isTask bool
		task   int // arrival: task index; cancel: cancelled task index
	}
	var feed []item
	for _, ev := range events {
		switch ev.Kind {
		case model.EventJoin, model.EventRetire:
			fleet = append(fleet, ev)
		case model.EventCancel:
			feed = append(feed, item{at: ev.At, rank: int(evCancel), task: ev.Task})
		}
	}
	for i := range tasks {
		feed = append(feed, item{at: tasks[i].Publish, rank: int(evArrival), isTask: true, task: i})
	}
	sort.SliceStable(feed, func(a, b int) bool {
		if feed[a].at != feed[b].at {
			return feed[a].at < feed[b].at
		}
		return feed[a].rank < feed[b].rank
	})

	st, err := e.NewStream(d, fleet)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	for _, it := range feed {
		if it.isTask {
			dec, err := st.SubmitTask(tasks[it.task])
			if err != nil {
				t.Fatalf("SubmitTask(%d): %v", it.task, err)
			}
			if dec.Task != it.task {
				t.Fatalf("task registered under index %d, want %d", dec.Task, it.task)
			}
		} else {
			if _, _, err := st.CancelTask(it.task, it.at); err != nil {
				t.Fatalf("CancelTask(%d): %v", it.task, err)
			}
		}
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return res
}

// TestStreamReplayBitIdenticalToRunScenario is the streaming half of
// the engine's differential contract: replaying any trace — churn,
// cancellations, every candidate source and shard count — one event at
// a time through a Stream must produce the same Result, bit for bit, as
// RunScenario on the whole trace.
func TestStreamReplayBitIdenticalToRunScenario(t *testing.T) {
	dispatchers := []Dispatcher{diffMaxMargin{}, diffNearest{}, diffRandom{}}
	scenarios := []struct {
		drivers, tasks int
		churn, cancel  float64
		dm             trace.DriverModel
	}{
		{25, 120, 0, 0, trace.Hitchhiking},
		{25, 120, 0.4, 0.3, trace.Hitchhiking},
		{40, 150, 0.5, 0.4, trace.HomeWorkHome},
	}
	sources := []struct {
		name string
		mk   func() CandidateSource
	}{
		{"scan", func() CandidateSource { return nil }},
		{"grid", func() CandidateSource { return NewGridSource(nil) }},
		{"sharded-1", func() CandidateSource { return NewShardedSource(1) }},
		{"sharded-2", func() CandidateSource { return NewShardedSource(2) }},
		{"sharded-4", func() CandidateSource { return NewShardedSource(4) }},
	}
	for si, sc := range scenarios {
		cfg := trace.NewConfig(int64(100+si), sc.tasks, sc.drivers, sc.dm)
		tr := trace.NewGenerator(cfg).Generate(nil)
		var events []model.MarketEvent
		if sc.churn > 0 || sc.cancel > 0 {
			events = trace.WithChurn(tr, trace.DefaultChurn(int64(si), sc.churn, sc.cancel))
		}
		for _, d := range dispatchers {
			for _, src := range sources {
				name := fmt.Sprintf("s%d/%s/%s", si, d.Name(), src.name)
				t.Run(name, func(t *testing.T) {
					be, err := New(cfg.Market, tr.Drivers, 7)
					if err != nil {
						t.Fatal(err)
					}
					be.SetCandidateSource(src.mk())
					batch := be.RunScenario(tr.Tasks, events, d)

					se, err := New(cfg.Market, tr.Drivers, 7)
					if err != nil {
						t.Fatal(err)
					}
					se.SetCandidateSource(src.mk())
					streamed := replayThroughStream(t, se, d, tr.Tasks, events)

					if !reflect.DeepEqual(batch, streamed) {
						t.Fatalf("stream replay diverged from RunScenario:\nbatch:  served=%d rejected=%d cancelled=%d revenue=%.9f profit=%.9f\nstream: served=%d rejected=%d cancelled=%d revenue=%.9f profit=%.9f",
							batch.Served, batch.Rejected, batch.Cancelled, batch.Revenue, batch.TotalProfit,
							streamed.Served, streamed.Rejected, streamed.Cancelled, streamed.Revenue, streamed.TotalProfit)
					}
				})
			}
		}
	}
}

// TestStreamDynamicDriverAppend exercises the capability batch runs
// cannot express: a driver unknown at construction joins mid-stream and
// serves demand, under every candidate source.
func TestStreamDynamicDriverAppend(t *testing.T) {
	mkt := model.DefaultMarket()
	base := geo.Point{Lat: 41.15, Lon: -8.61}
	near := func(dlat, dlon float64) geo.Point {
		return geo.Point{Lat: base.Lat + dlat, Lon: base.Lon + dlon}
	}
	// One far-away registered driver who can never reach the demand.
	far := model.Driver{ID: 0, Source: near(0.5, 0.5), Dest: near(0.5, 0.5), Start: 0, End: 7200}
	task := func(id int, publish float64) model.Task {
		return model.Task{
			ID: id, Publish: publish, Source: near(0.001, 0), Dest: near(0.01, 0.01),
			StartBy: publish + 600, EndBy: publish + 3600, Price: 10, WTP: 12,
		}
	}
	for _, src := range []struct {
		name string
		mk   func() CandidateSource
	}{
		{"scan", func() CandidateSource { return nil }},
		{"grid", func() CandidateSource { return NewGridSource(nil) }},
		{"sharded-4", func() CandidateSource { return NewShardedSource(4) }},
	} {
		t.Run(src.name, func(t *testing.T) {
			e, err := New(mkt, []model.Driver{far}, 1)
			if err != nil {
				t.Fatal(err)
			}
			e.SetCandidateSource(src.mk())
			st, err := e.NewStream(diffMaxMargin{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if dec, err := st.SubmitTask(task(0, 100)); err != nil {
				t.Fatalf("SubmitTask: %v", err)
			} else if dec.Assigned {
				t.Fatalf("far-away driver took task: %+v", dec)
			}
			// Announced for t=200 while the market is at t=100: she is
			// registered but invisible until her join fires.
			idx, err := st.AddDriver(model.Driver{ID: 1, Source: base, Dest: near(0.02, 0.02), Start: 0, End: 7200}, 200)
			if err != nil {
				t.Fatalf("AddDriver: %v", err)
			}
			if idx != 1 || st.DriverCount() != 2 || st.PresentDrivers() != 1 {
				t.Fatalf("after scheduled append: idx=%d drivers=%d present=%d", idx, st.DriverCount(), st.PresentDrivers())
			}
			// A task published before her join time cannot be assigned to
			// her, even though her shift and deadlines would allow it —
			// the platform does not know she exists yet.
			early := task(1, 150)
			early.StartBy = 900
			if dec, err := st.SubmitTask(early); err != nil {
				t.Fatalf("SubmitTask: %v", err)
			} else if dec.Assigned {
				t.Fatalf("pending driver dispatched before her join: %+v", dec)
			}
			dec, err := st.SubmitTask(task(2, 300))
			if err != nil {
				t.Fatalf("SubmitTask: %v", err)
			}
			if !dec.Assigned || dec.Driver != idx {
				t.Fatalf("appended driver did not take the task: %+v", dec)
			}
			if st.PresentDrivers() != 2 {
				t.Fatalf("present=%d after the join fired", st.PresentDrivers())
			}
			if err := st.RetireDriver(idx, 300); err != nil { // at the current instant: applied now
				t.Fatalf("RetireDriver: %v", err)
			}
			if st.PresentDrivers() != 1 {
				t.Fatalf("present=%d after retire", st.PresentDrivers())
			}
			res, err := st.Finish()
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if res.Served != 1 || res.PerDriverTasks[idx] != 1 {
				t.Fatalf("final result: %+v", res)
			}
		})
	}
}

// TestStreamLateEventsClampToNow: submissions with timestamps in the
// past are processed at the stream's current time, and the clock never
// runs backwards.
func TestStreamLateEventsClamp(t *testing.T) {
	cfg := trace.NewConfig(5, 40, 10, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	e, err := New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewStream(diffMaxMargin{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AdvanceTo(40000); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	if st.Now() != 40000 {
		t.Fatalf("Now=%g after AdvanceTo", st.Now())
	}
	early := tr.Tasks[0] // publishes long before 40000
	if early.Publish >= 40000 {
		t.Fatalf("fixture broken: first task publishes at %g", early.Publish)
	}
	dec, err := st.SubmitTask(early)
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	if dec.At != 40000 {
		t.Fatalf("late submission decided at %g, want clamped 40000", dec.At)
	}
	if st.Now() != 40000 {
		t.Fatalf("Now moved backwards to %g", st.Now())
	}
	if _, err := st.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

// TestStreamSnapshotTracksRun: the mid-run snapshot agrees with the
// final settled result on an event-free day.
func TestStreamSnapshotTracksRun(t *testing.T) {
	cfg := trace.NewConfig(9, 80, 15, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	e, err := New(cfg.Market, tr.Drivers, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewStream(diffMaxMargin{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tr.Tasks {
		if _, err := st.SubmitTask(task); err != nil {
			t.Fatalf("SubmitTask: %v", err)
		}
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	final, err := st.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if snap.Served != final.Served || snap.Rejected != final.Rejected ||
		snap.Revenue != final.Revenue || snap.TotalProfit != final.TotalProfit {
		t.Fatalf("snapshot %+v diverges from final %+v", snap, final)
	}
	if snap.Assignment != nil || snap.DriverPaths != nil {
		t.Fatal("snapshot leaked live bookkeeping")
	}
}
