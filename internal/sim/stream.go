package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
)

// ErrFinished reports use of a Stream after Finish: the run's accounts
// were settled and its bookkeeping released, so no further mutation or
// snapshot is meaningful. Callers (the dispatch service) surface it as
// their own typed error instead of relying on internal state flags.
var ErrFinished = errors.New("sim: stream finished")

// This file is the engine's open-loop entry point: where the batch Run*
// adapters enqueue a complete day and drain it, a Stream keeps one
// instant-dispatch run suspended between events so callers can feed the
// market incrementally — submit a task and get the dispatch decision
// back, announce or retire drivers, revoke tasks — while the run stays
// bit-identical to what RunScenario would have produced on the same
// event sequence. The public dispatch package wraps a Stream behind a
// stable API; everything here speaks the engine's internal types.
//
// The equivalence contract is exact: feeding a trace's tasks and events
// through a Stream in the canonical merge order (ascending time, fleet
// changes before cancellations before arrivals at the same instant,
// original order within a kind) produces the same Result, bit for bit,
// as RunScenario on the whole trace — same heap, same handlers, same
// RNG consumption. The streaming differential tests in this package and
// in dispatch/ hold that line across candidate sources and shard
// counts.

// TaskDecision is the platform's answer to one submitted task. Instant
// streams return it fully decided from SubmitTask; batched streams
// return it Pending and deliver the decided form through the decision
// handler when the task's window closes.
type TaskDecision struct {
	// Task is the engine index the task was registered under (its
	// position in submission order).
	Task int
	// Assigned reports whether a driver took the task; Driver is her
	// engine index when so, -1 otherwise.
	Assigned bool
	Driver   int
	// PickupAt is the assigned driver's estimated arrival at the
	// pickup; meaningful only when Assigned.
	PickupAt float64
	// At is the effective decision time: the task's publish time, or
	// the stream's current time if the submission arrived late. For a
	// pending decision it is the time the order joined its window.
	At float64
	// Pending reports that the stream dispatches in batched mode and
	// the decision is deferred to the close of the window the task
	// joined; DecideAt is that window's scheduled close time.
	Pending  bool
	DecideAt float64
}

// Stream is a suspended open-loop run — instant dispatch (NewStream) or
// windowed batched dispatch (NewBatchedStream). The engine must not be
// used for batch Run* calls while the stream is open. A Stream is not
// safe for concurrent use — callers serialize access (the dispatch
// package's Service does).
type Stream struct {
	e      *Engine
	r      *eventRun
	b      *batcher // non-nil when the stream dispatches in batched mode
	closed bool
}

// newStreamRun validates the pre-scheduled fleet events, resets the
// engine and builds the suspended run; the caller installs the mode
// hooks (instant arrival handler, or a batcher).
func (e *Engine) newStreamRun(fleetEvents []model.MarketEvent) (*eventRun, error) {
	var absent []int
	for i, ev := range fleetEvents {
		if ev.Kind == model.EventCancel {
			return nil, fmt.Errorf("sim: fleet event %d: cancellations cannot be pre-scheduled on a stream", i)
		}
		if ev.Kind == model.EventJoin {
			absent = append(absent, ev.Driver)
		}
	}
	if err := model.ValidateEvents(fleetEvents, e.Drivers, nil); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	e.resetAbsent(absent)
	r := &eventRun{
		e:         e,
		timeKeyed: true,
		seq:       len(fleetEvents),
		res:       newResult(e),
		cancelled: make([]bool, 0),
		inflight:  make(map[int]inflightInfo),
		revert:    make(map[int]inflightInfo),
	}
	for i, ev := range fleetEvents {
		kind := evJoin
		if ev.Kind == model.EventRetire {
			kind = evRetire
		}
		r.add(event{key: ev.At, kind: kind, seq: i, at: ev.At, idx: ev.Driver})
	}
	r.init()
	return r, nil
}

// NewStream resets the engine and opens a streaming run dispatched by
// d. fleetEvents optionally pre-schedules driver events known upfront:
// join events make their drivers invisible to dispatch until the join
// time (exactly as RunScenario treats them), retire events end shifts
// early. Cancellations cannot be pre-scheduled — their tasks do not
// exist yet; submit them live via CancelTask.
func (e *Engine) NewStream(d Dispatcher, fleetEvents []model.MarketEvent) (*Stream, error) {
	if d == nil {
		return nil, fmt.Errorf("sim: nil dispatcher")
	}
	r, err := e.newStreamRun(fleetEvents)
	if err != nil {
		return nil, err
	}
	r.d = d
	r.onArrival = r.instantArrival
	return &Stream{e: e, r: r}, nil
}

// NewBatchedStream resets the engine and opens a streaming run with
// windowed batched dispatch: submitted tasks join the open window (the
// first order with no close pending opens one and anchors its close
// window seconds later), SubmitTask answers Pending, and the decisions
// arrive through the handler installed with SetDecisionHandler when the
// window's internal close event fires — on the next submission at or
// past the close time, an explicit AdvanceTo, or Finish. Replaying a
// trace through a batched stream in canonical order is bit-identical to
// RunBatchedScenario on the whole day; the differential tests hold that
// line. A non-positive (or non-finite) window is rejected with an
// error, mirroring the validation the public dispatch options perform.
func (e *Engine) NewBatchedStream(window float64, algo BatchAlgorithm, fleetEvents []model.MarketEvent) (*Stream, error) {
	if !(window > 0) || math.IsInf(window, 1) {
		return nil, fmt.Errorf("sim: batch window must be a positive finite number of seconds, got %g", window)
	}
	r, err := e.newStreamRun(fleetEvents)
	if err != nil {
		return nil, err
	}
	b := newBatcher(r, window, algo)
	return &Stream{e: e, r: r, b: b}, nil
}

// SetDecisionHandler registers fn to receive every dispatch decision
// the stream makes after the task's submission returned — the batched
// mode's deferred window-close decisions. Install it before submitting
// traffic; the handler runs synchronously inside whichever call drains
// the deciding event (SubmitTask, CancelTask, Step, AdvanceTo, Finish).
func (s *Stream) SetDecisionHandler(fn func(TaskDecision)) {
	s.r.onDecided = fn
}

// SetBatchCloseHandler registers fn to receive each closed window's
// stats, after the window's per-task decisions were delivered. It is a
// no-op on instant-dispatch streams.
func (s *Stream) SetBatchCloseHandler(fn func(BatchStats)) {
	if s.b != nil {
		s.b.onClose = fn
	}
}

// BatchDue reports the scheduled close time of the open batch window,
// if the stream dispatches in batched mode and a window is open.
func (s *Stream) BatchDue() (closeAt float64, open bool) {
	if s.b == nil || !s.b.open() {
		return 0, false
	}
	return s.b.closeAt, true
}

// PendingTasks returns the number of submitted orders waiting in the
// open batch window for their decision; 0 on instant-dispatch streams.
func (s *Stream) PendingTasks() int {
	if s.b == nil {
		return 0
	}
	return len(s.b.batch)
}

// submit pushes ev (stamping the next sequence number) and steps the
// run until ev itself has been handled — which first drains everything
// ordered before it: pre-scheduled fleet events, revocation frees from
// earlier cancellations. Dynamic sequence numbers are unique, so the
// match is unambiguous.
func (s *Stream) submit(ev event) {
	r := s.r
	ev.seq = r.seq
	r.seq++
	heap.Push(&r.q, ev)
	for {
		popped := heap.Pop(&r.q).(event)
		r.handle(popped)
		if popped.seq == ev.seq {
			return
		}
	}
}

// clampLate returns at, or the stream's current time if at lies in the
// past: the platform cannot act retroactively, so a late event is
// processed the moment it arrives. Callers wanting strict ordering
// reject late events before submitting (the dispatch package's
// WithStrictTimes does).
func (s *Stream) clampLate(at float64) float64 {
	if s.r.started && at < s.r.now {
		return s.r.now
	}
	return at
}

// checkOpen reports ErrFinished once the stream has been finished, the
// typed alternative to panicking on use-after-Finish.
func (s *Stream) checkOpen() error {
	if s.closed {
		return ErrFinished
	}
	return nil
}

// Finished reports whether Finish has settled and closed the stream.
func (s *Stream) Finished() bool { return s.closed }

// SubmitTask registers the task and dispatches it at its publish time
// (or now, if the submission is late). On an instant stream the
// returned decision is final; on a batched stream the task joins the
// open window (processing any due window close first) and the decision
// comes back Pending, to be delivered through the decision handler at
// DecideAt. Tasks are indexed by submission order; the caller keeps its
// own ID mapping. A finished stream reports ErrFinished.
func (s *Stream) SubmitTask(t model.Task) (TaskDecision, error) {
	if err := s.checkOpen(); err != nil {
		return TaskDecision{}, err
	}
	r := s.r
	ti := len(r.tasks)
	r.tasks = append(r.tasks, t)
	r.cancelled = append(r.cancelled, false)
	at := s.clampLate(t.Publish)
	s.submit(event{key: at, kind: evArrival, at: at, idx: ti})
	dec := TaskDecision{Task: ti, Driver: -1, At: at}
	if s.b != nil {
		// The arrival joined (or opened) a window whose close is
		// strictly after at, so the task is always still pending here.
		dec.Pending, dec.DecideAt = true, s.b.closeAt
		return dec, nil
	}
	if drv, ok := r.res.Assignment[ti]; ok {
		dec.Assigned, dec.Driver = true, drv
		if info, ok := r.inflight[ti]; ok {
			dec.PickupAt = info.arrival
		}
	}
	return dec, nil
}

// CancelTask submits a rider cancellation for task ti at the given
// time. ok reports whether the cancellation took effect; false means it
// arrived too late (or the task was never assigned) and any ride
// proceeds, with the same semantics as RunScenario's cancel events.
// When an assignment was revoked, freedDriver is the engine index of
// the driver released back into the market, -1 otherwise. A finished
// stream reports ErrFinished.
func (s *Stream) CancelTask(ti int, at float64) (freedDriver int, ok bool, err error) {
	if err := s.checkOpen(); err != nil {
		return -1, false, err
	}
	r := s.r
	if ti < 0 || ti >= len(r.tasks) {
		panic(fmt.Sprintf("sim: cancel of unknown task %d", ti))
	}
	drv, assigned := r.res.Assignment[ti]
	before := r.res.Cancelled
	at = s.clampLate(at)
	s.submit(event{key: at, kind: evCancel, at: at, idx: ti})
	if r.res.Cancelled > before {
		if assigned {
			return drv, true, nil
		}
		return -1, true, nil
	}
	return -1, false, nil
}

// submitOrSchedule routes a fleet event by its timestamp: an event at
// or before the stream's current time is processed immediately (with
// everything queued before it, exactly as submit does); a future event
// is left on the heap to fire when the drain reaches its time. The
// distinction matters twice over — a future event must not fast-forward
// the market clock past traffic that has not arrived yet, and the heap
// firing it later is precisely how the batch drain would order it.
func (s *Stream) submitOrSchedule(ev event) {
	if ev.key > s.r.now || !s.r.started && ev.key > 0 {
		ev.seq = s.r.seq
		s.r.seq++
		heap.Push(&s.r.q, ev)
		return
	}
	s.submit(ev)
}

// JoinDriver re-announces a registered driver at the given time: an
// absent driver (not yet joined, or retired) becomes visible to
// dispatch from that time on. Joining later than her shift start delays
// her earliest departure, exactly as a pre-scheduled join event would;
// a join time in the future is scheduled rather than applied now. A
// finished stream reports ErrFinished.
func (s *Stream) JoinDriver(i int, at float64) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if i < 0 || i >= len(s.e.Drivers) {
		panic(fmt.Sprintf("sim: join of unknown driver %d", i))
	}
	at = s.clampLate(at)
	s.submitOrSchedule(event{key: at, kind: evJoin, at: at, idx: i})
	return nil
}

// RetireDriver removes a registered driver from the market at the given
// time: no new tasks, though an in-flight assignment still completes. A
// retirement time in the future is scheduled rather than applied now. A
// finished stream reports ErrFinished.
func (s *Stream) RetireDriver(i int, at float64) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if i < 0 || i >= len(s.e.Drivers) {
		panic(fmt.Sprintf("sim: retire of unknown driver %d", i))
	}
	at = s.clampLate(at)
	s.submitOrSchedule(event{key: at, kind: evRetire, at: at, idx: i})
	return nil
}

// AddDriver registers a genuinely new driver mid-stream and returns her
// engine index. She becomes visible to dispatch at the given time: at
// or before the stream's current time means immediately, a future time
// schedules her announcement as a join event — before it fires she is
// registered but invisible, exactly like an upfront roster entry with a
// pending join. The candidate source is rebound over the grown fleet
// either way. A finished stream reports ErrFinished.
func (s *Stream) AddDriver(d model.Driver, at float64) (int, error) {
	if err := s.checkOpen(); err != nil {
		return -1, err
	}
	e := s.e
	r := s.r
	at = s.clampLate(at)
	i := len(e.Drivers)
	future := at > r.now || !r.started && at > 0
	e.Drivers = append(e.Drivers, d)
	st := driverState{freeAt: d.Start, loc: d.Source}
	if !future && st.freeAt < at {
		st.freeAt = at
	}
	e.states = append(e.states, st)
	e.present = append(e.present, !future)
	r.res.PerDriverRevenue = append(r.res.PerDriverRevenue, 0)
	r.res.PerDriverProfit = append(r.res.PerDriverProfit, 0)
	r.res.PerDriverTasks = append(r.res.PerDriverTasks, 0)
	r.res.DriverPaths = append(r.res.DriverPaths, nil)
	e.source.Bind(e)
	if future {
		ev := event{key: at, kind: evJoin, at: at, idx: i, seq: r.seq}
		r.seq++
		heap.Push(&r.q, ev)
	}
	return i, nil
}

// Step processes the next queued event, if any — deferred revocation
// frees, pre-scheduled fleet events — and reports whether one was
// handled. Submissions step through everything ordered before them
// automatically; Step exists for callers pacing the queue themselves. A
// finished stream reports ErrFinished.
func (s *Stream) Step() (bool, error) {
	if err := s.checkOpen(); err != nil {
		return false, err
	}
	return s.r.step(), nil
}

// AdvanceTo processes every queued event ordered at or before time t
// and moves the stream clock to t, so subsequent late submissions clamp
// to t and a pacing Clock sleeps through the silent gap. Advancing
// backwards is a no-op. A finished stream reports ErrFinished.
func (s *Stream) AdvanceTo(t float64) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	r := s.r
	for r.q.Len() > 0 && r.q[0].key <= t {
		r.step()
	}
	if !r.started {
		r.now, r.started = t, true
		return nil
	}
	if t > r.now {
		if r.e.Clock != nil {
			r.e.Clock.Advance(r.now, t)
		}
		r.now = t
	}
	return nil
}

// Now returns the stream's current simulated time: the latest event
// time processed (or advanced to). Zero before any event.
func (s *Stream) Now() float64 { return s.r.now }

// Engine returns the engine driving this stream. The durable dispatch
// rail uses it to rebuild a stream from a captured state (RestoreStream
// is an Engine method that replaces the engine's run in place).
func (s *Stream) Engine() *Engine { return s.e }

// DriverCount returns the number of registered drivers, present or not.
func (s *Stream) DriverCount() int { return len(s.e.Drivers) }

// PresentDrivers counts the drivers currently visible to dispatch.
func (s *Stream) PresentDrivers() int {
	n := 0
	for _, p := range s.e.present {
		if p {
			n++
		}
	}
	return n
}

// TaskCount returns the number of tasks submitted so far.
func (s *Stream) TaskCount() int { return len(s.r.tasks) }

// Present reports whether driver i is currently visible to dispatch.
func (s *Stream) Present(i int) bool { return s.e.present[i] }

// TaskPublish returns the publish time task i was registered with.
func (s *Stream) TaskPublish(i int) float64 { return s.r.tasks[i].Publish }

// Snapshot settles a copy of the in-progress accounts and returns the
// aggregate Result as of the last processed event. Only the aggregate
// and per-driver financial fields are populated — DriverPaths and
// Assignment stay nil to keep the live bookkeeping unshared.
//
// Revocations already granted but whose driver-free events are still
// queued (they fire in heap order, possibly behind same-instant fleet
// events — eagerly draining them here would reorder the batch-identical
// event sequence) are accounted for by settling those drivers at their
// pre-assignment state, so Served + Rejected + Cancelled + PendingTasks
// always equals the submitted task count and no cancelled trip is
// counted as served revenue. (PendingTasks is 0 on instant streams:
// orders waiting in a batched stream's open window are the one way a
// submitted task can be none of served, rejected or cancelled.) A
// finished stream reports ErrFinished: the live bookkeeping it settles
// from was released by Finish, whose Result is the settled answer.
func (s *Stream) Snapshot() (Result, error) {
	if err := s.checkOpen(); err != nil {
		return Result{}, err
	}
	e := s.e
	r := s.r
	res := Result{
		Served:           r.res.Served - len(r.revert),
		Rejected:         r.res.Rejected,
		Cancelled:        r.res.Cancelled,
		PerDriverRevenue: make([]float64, len(e.Drivers)),
		PerDriverProfit:  make([]float64, len(e.Drivers)),
		PerDriverTasks:   make([]int, len(e.Drivers)),
	}
	// Settle with pending revocations applied: swap each affected
	// driver to her pre-assignment state for the duration of the
	// settlement, then restore. The stream is single-threaded (callers
	// serialize), so the temporary mutation is invisible.
	saved := make(map[int]driverState, len(r.revert))
	for drv, info := range r.revert {
		saved[drv] = e.states[drv]
		e.states[drv] = info.prev
	}
	e.settle(&res)
	for drv, st := range saved {
		e.states[drv] = st
	}
	return res, nil
}

// Finish drains the remaining queue (deferred revocation frees,
// unfired fleet events), settles the accounts and returns the final
// Result. The stream is closed afterwards; the engine may be reused for
// batch runs or a new stream. Finishing twice reports ErrFinished.
func (s *Stream) Finish() (Result, error) {
	if err := s.checkOpen(); err != nil {
		return Result{}, err
	}
	r := s.r
	for r.step() {
	}
	s.e.settle(&r.res)
	s.closed = true
	return r.res, nil
}
