package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// feedItem is one live operation of a suspended-and-resumed replay.
type feedItem struct {
	at     float64
	rank   int
	isTask bool
	task   int
}

// buildFeed merges tasks and cancellations into the canonical replay
// order and splits out the pre-scheduled fleet events.
func buildFeed(tasks []model.Task, events []model.MarketEvent) (feed []feedItem, fleet []model.MarketEvent) {
	for _, ev := range events {
		switch ev.Kind {
		case model.EventJoin, model.EventRetire:
			fleet = append(fleet, ev)
		case model.EventCancel:
			feed = append(feed, feedItem{at: ev.At, rank: int(evCancel), task: ev.Task})
		}
	}
	for i := range tasks {
		feed = append(feed, feedItem{at: tasks[i].Publish, rank: int(evArrival), isTask: true, task: i})
	}
	// Insertion sort keeps the test free of sort-stability subtleties.
	for i := 1; i < len(feed); i++ {
		for j := i; j > 0 && (feed[j].at < feed[j-1].at ||
			(feed[j].at == feed[j-1].at && feed[j].rank < feed[j-1].rank)); j-- {
			feed[j], feed[j-1] = feed[j-1], feed[j]
		}
	}
	return feed, fleet
}

func applyItems(t *testing.T, st *Stream, tasks []model.Task, items []feedItem) {
	t.Helper()
	for _, it := range items {
		if it.isTask {
			if _, err := st.SubmitTask(tasks[it.task]); err != nil {
				t.Fatalf("SubmitTask(%d): %v", it.task, err)
			}
		} else {
			if _, _, err := st.CancelTask(it.task, it.at); err != nil {
				t.Fatalf("CancelTask(%d): %v", it.task, err)
			}
		}
	}
}

// TestStreamStateRoundTrip is the suspend/resume differential: run a
// churning trace to a cut point, capture the state, serialize it
// through JSON (the snapshot wire format), restore it onto a FRESH
// engine, finish both runs — the restored one must settle books
// bit-identical to the never-interrupted one. Swept across instant and
// batched modes, shard counts, and several cut points including 0 (the
// virgin stream) and every-op (capture after each operation).
func TestStreamStateRoundTrip(t *testing.T) {
	cfg := trace.NewConfig(41, 120, 25, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	events := trace.WithChurn(tr, trace.DefaultChurn(3, 0.4, 0.3))
	feed, fleet := buildFeed(tr.Tasks, events)

	type mode struct {
		name    string
		batched bool
	}
	modes := []mode{{"instant", false}, {"batched", true}}
	for _, m := range modes {
		for _, shards := range []int{1, 2, 4} {
			mk := func() (*Stream, error) {
				e, err := New(cfg.Market, tr.Drivers, 7)
				if err != nil {
					return nil, err
				}
				if shards > 1 {
					e.SetCandidateSource(NewShardedSource(shards))
				}
				if m.batched {
					return e.NewBatchedStream(45, BatchHungarian, fleet)
				}
				// diffRandom draws the RNG on ties: restores must
				// reproduce the RNG position too.
				return e.NewStream(diffRandom{}, fleet)
			}
			t.Run(fmt.Sprintf("%s/shards-%d", m.name, shards), func(t *testing.T) {
				base, err := mk()
				if err != nil {
					t.Fatal(err)
				}
				applyItems(t, base, tr.Tasks, feed)
				want, err := base.Finish()
				if err != nil {
					t.Fatal(err)
				}

				for _, cut := range []int{0, 1, len(feed) / 3, len(feed) / 2, len(feed) - 1, len(feed)} {
					st, err := mk()
					if err != nil {
						t.Fatal(err)
					}
					applyItems(t, st, tr.Tasks, feed[:cut])
					snap, err := st.CaptureState()
					if err != nil {
						t.Fatalf("cut %d: CaptureState: %v", cut, err)
					}
					buf, err := json.Marshal(snap)
					if err != nil {
						t.Fatalf("cut %d: marshal: %v", cut, err)
					}
					var back StreamState
					if err := json.Unmarshal(buf, &back); err != nil {
						t.Fatalf("cut %d: unmarshal: %v", cut, err)
					}

					e2, err := New(cfg.Market, tr.Drivers, 7)
					if err != nil {
						t.Fatal(err)
					}
					if shards > 1 {
						e2.SetCandidateSource(NewShardedSource(shards))
					}
					var restored *Stream
					if m.batched {
						restored, err = e2.RestoreStream(&back, nil, 45, BatchHungarian)
					} else {
						restored, err = e2.RestoreStream(&back, diffRandom{}, 0, 0)
					}
					if err != nil {
						t.Fatalf("cut %d: RestoreStream: %v", cut, err)
					}
					applyItems(t, restored, tr.Tasks, feed[cut:])
					got, err := restored.Finish()
					if err != nil {
						t.Fatalf("cut %d: Finish: %v", cut, err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("cut %d: restored run diverged:\nwant served=%d rejected=%d cancelled=%d revenue=%.9f profit=%.9f\ngot  served=%d rejected=%d cancelled=%d revenue=%.9f profit=%.9f",
							cut, want.Served, want.Rejected, want.Cancelled, want.Revenue, want.TotalProfit,
							got.Served, got.Rejected, got.Cancelled, got.Revenue, got.TotalProfit)
					}
				}
			})
		}
	}
}

// TestStreamErrFinished: after Finish every mutator, snapshot and
// capture returns the typed sentinel instead of panicking.
func TestStreamErrFinished(t *testing.T) {
	cfg := trace.NewConfig(5, 10, 5, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	e, err := New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewStream(diffMaxMargin{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Finished() {
		t.Fatal("fresh stream reports finished")
	}
	if _, err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if !st.Finished() {
		t.Fatal("finished stream reports open")
	}
	check := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, ErrFinished) {
			t.Fatalf("%s on finished stream: %v, want ErrFinished", op, err)
		}
	}
	_, err = st.SubmitTask(tr.Tasks[0])
	check("SubmitTask", err)
	_, _, err = st.CancelTask(0, 1)
	check("CancelTask", err)
	check("JoinDriver", st.JoinDriver(0, 1))
	check("RetireDriver", st.RetireDriver(0, 1))
	_, err = st.AddDriver(tr.Drivers[0], 1)
	check("AddDriver", err)
	_, err = st.Step()
	check("Step", err)
	check("AdvanceTo", st.AdvanceTo(10))
	_, err = st.Snapshot()
	check("Snapshot", err)
	_, err = st.Finish()
	check("Finish", err)
	_, err = st.CaptureState()
	check("CaptureState", err)
}

// TestRestoreStreamValidates: corrupted states fail loudly and typed,
// not as index panics mid-replay.
func TestRestoreStreamValidates(t *testing.T) {
	cfg := trace.NewConfig(6, 10, 5, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	mkState := func() *StreamState {
		e, err := New(cfg.Market, tr.Drivers, 1)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.NewStream(diffMaxMargin{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.SubmitTask(tr.Tasks[0]); err != nil {
			t.Fatal(err)
		}
		snap, err := st.CaptureState()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	fresh := func() *Engine {
		e, err := New(cfg.Market, tr.Drivers, 1)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	// Sizing mismatch.
	bad := mkState()
	bad.Present = bad.Present[:1]
	if _, err := fresh().RestoreStream(bad, diffMaxMargin{}, 0, 0); err == nil {
		t.Fatal("sizing mismatch accepted")
	}
	// Assignment out of range.
	bad = mkState()
	bad.Res.Assignment[99] = 0
	if _, err := fresh().RestoreStream(bad, diffMaxMargin{}, 0, 0); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	// Unknown event kind in the queue.
	bad = mkState()
	bad.Queue = append(bad.Queue, EventSnap{Kind: 99})
	if _, err := fresh().RestoreStream(bad, diffMaxMargin{}, 0, 0); err == nil {
		t.Fatal("unknown event kind accepted")
	}
	// Instant restore without a dispatcher.
	if _, err := fresh().RestoreStream(mkState(), nil, 0, 0); err == nil {
		t.Fatal("instant restore without dispatcher accepted")
	}
	// Batched restore with a bad window.
	batched := mkState()
	batched.Batch = &BatchSnap{}
	if _, err := fresh().RestoreStream(batched, nil, 0, BatchHungarian); err == nil {
		t.Fatal("batched restore without window accepted")
	}
	// The pristine state restores fine.
	if _, err := fresh().RestoreStream(mkState(), diffMaxMargin{}, 0, 0); err != nil {
		t.Fatalf("clean state refused: %v", err)
	}
}
