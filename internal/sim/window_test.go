package sim

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/trace"
)

// These tests are the sparse window pipeline's correctness wall. The
// component-decomposed solve (closeBatchSparse) must commit exactly
// what the pre-decomposition dense oracle (Engine.DenseWindows) would
// have committed — same assignments, same rejections, bit-identical
// Result — across solvers, window lengths, candidate sources and
// dynamic churn/cancellation workloads; and the matcher worker count,
// like the shard count, must be invisible in the results of both the
// batch drain and the streaming replay.

// runBatchedWith runs one batched scenario on a fresh engine in the
// given window configuration.
func runBatchedWith(t *testing.T, cfg trace.Config, drivers []model.Driver, tasks []model.Task,
	events []model.MarketEvent, window float64, algo BatchAlgorithm,
	shards, workers int, dense bool) Result {
	t.Helper()
	e, err := New(cfg.Market, drivers, 7)
	if err != nil {
		t.Fatal(err)
	}
	if shards > 1 {
		e.SetCandidateSource(NewShardedSource(shards))
	}
	e.MatchWorkers = workers
	e.DenseWindows = dense
	return e.RunBatchedScenario(tasks, events, window, algo)
}

// TestSparseWindowsMatchDenseOracle sweeps randomized days — quiet and
// churning — and asserts the sparse component path reproduces the dense
// oracle's Result bit for bit under both solvers, several window
// lengths, and both the scan and sharded candidate sources.
func TestSparseWindowsMatchDenseOracle(t *testing.T) {
	seeds := []int64{71, 72, 73, 74}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		cfg := trace.NewConfig(seed, 140, 50, trace.Hitchhiking)
		cfg.PickupWindowMin = 8 * 60 // give batches room to form
		cfg.PickupWindowMax = 16 * 60
		tr := trace.NewGenerator(cfg).Generate(nil)
		events := trace.WithChurn(tr, trace.ChurnConfig{
			Seed: seed + 500, JoinFraction: 0.3, RetireFraction: 0.3, CancelFraction: 0.25,
		})
		for _, algo := range []BatchAlgorithm{BatchHungarian, BatchAuction} {
			for _, window := range []float64{20, 60, 240} {
				for _, shards := range []int{1, 4} {
					for _, evs := range map[string][]model.MarketEvent{"quiet": nil, "churn": events} {
						dense := runBatchedWith(t, cfg, tr.Drivers, tr.Tasks, evs, window, algo, shards, 1, true)
						sparse := runBatchedWith(t, cfg, tr.Drivers, tr.Tasks, evs, window, algo, shards, 1, false)
						if !reflect.DeepEqual(dense, sparse) {
							t.Errorf("seed=%d %v window=%g shards=%d events=%d: sparse diverged from dense oracle\ndense:  served=%d rejected=%d cancelled=%d revenue=%.9f\nsparse: served=%d rejected=%d cancelled=%d revenue=%.9f",
								seed, algo, window, shards, len(evs),
								dense.Served, dense.Rejected, dense.Cancelled, dense.Revenue,
								sparse.Served, sparse.Rejected, sparse.Cancelled, sparse.Revenue)
						}
					}
				}
			}
		}
	}
}

// TestWindowWorkerIndependence is the worker-count determinism
// contract: batched results — from the batch drain and from a batched
// stream replay — are bit-identical across matcher workers {1, 2, 4} ×
// shards {1, 2, 4} × both solvers on churn/cancellation traces.
func TestWindowWorkerIndependence(t *testing.T) {
	seeds := []int64{81, 82}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := trace.NewConfig(seed, 150, 60, trace.Hitchhiking)
		cfg.PickupWindowMin = 8 * 60
		cfg.PickupWindowMax = 16 * 60
		tr := trace.NewGenerator(cfg).Generate(nil)
		events := trace.WithChurn(tr, trace.ChurnConfig{
			Seed: seed + 900, JoinFraction: 0.3, RetireFraction: 0.3, CancelFraction: 0.25,
		})
		for _, algo := range []BatchAlgorithm{BatchHungarian, BatchAuction} {
			base := runBatchedWith(t, cfg, tr.Drivers, tr.Tasks, events, 45, algo, 1, 1, false)
			for _, shards := range []int{1, 2, 4} {
				for _, workers := range []int{1, 2, 4} {
					label := fmt.Sprintf("seed=%d %v shards=%d workers=%d", seed, algo, shards, workers)
					got := runBatchedWith(t, cfg, tr.Drivers, tr.Tasks, events, 45, algo, shards, workers, false)
					if !reflect.DeepEqual(base, got) {
						t.Errorf("%s: batch drain diverged from shards=1 workers=1", label)
					}

					se, err := New(cfg.Market, tr.Drivers, 7)
					if err != nil {
						t.Fatal(err)
					}
					if shards > 1 {
						se.SetCandidateSource(NewShardedSource(shards))
					}
					se.MatchWorkers = workers
					streamed := replayThroughBatchedStream(t, se, 45, algo, tr.Tasks, events)
					if !reflect.DeepEqual(base, streamed) {
						t.Errorf("%s: batched stream replay diverged from shards=1 workers=1", label)
					}
				}
			}
		}
	}
}

// TestWindowSolversAgreePerWindow audits every window of batched days
// at the decision point itself: the dense matrix and the sparse CSR are
// rebuilt from identical candidate queries and solved by both kernels,
// and the two optima must carry exactly the same total weight. Where
// the assignments differ the window holds several exact optima — a real
// degeneracy of the workload: orders lying on a driver's route home
// cost exactly zero margin for every such driver (the box-clamped
// boundary makes whole windows collinear), so distinct drivers tie
// bitwise — and each kernel commits its own canonical optimum. The
// audit asserts those divergences never trade away weight, and the
// Result-level dense-vs-sparse tests above pin bit-identity whenever
// the optimum is unique.
func TestWindowSolversAgreePerWindow(t *testing.T) {
	seeds := []int64{27, 101}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := trace.NewConfig(seed, 600, 2000, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		e, err := New(cfg.Market, tr.Drivers, 1)
		if err != nil {
			t.Fatal(err)
		}
		e.SetCandidateSource(NewShardedSource(4))
		windows, ties := 0, 0
		e.auditHook = func(r *eventRun, batch []int, decisionAt float64) {
			windows++
			w, union := auditBuildDense(e, r, batch, decisionAt)
			dense, err := matching.Hungarian(w)
			if err != nil {
				t.Fatal(err)
			}
			sp := matching.Sparse{Rows: len(batch), Cols: len(union), RowPtr: []int{0}}
			for bi := range batch {
				for j := 0; j < len(union); j++ {
					if w[bi][j] > 0 && w[bi][j] > matching.Forbidden {
						sp.Col = append(sp.Col, j)
						sp.W = append(sp.W, w[bi][j])
					}
				}
				sp.RowPtr = append(sp.RowPtr, len(sp.Col))
			}
			sparse, err := matching.SparseHungarian(sp)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(dense.Weight-sparse.Weight) > 1e-9 {
				t.Errorf("window at %.1f (batch %d, union %d): weight dense %.15f vs sparse %.15f",
					decisionAt, len(batch), len(union), dense.Weight, sparse.Weight)
			}
			if !reflect.DeepEqual(dense.ColOf, sparse.ColOf) {
				ties++
			}
		}
		res := e.RunBatched(tr.Tasks, 180, BatchHungarian)
		if windows == 0 {
			t.Fatalf("seed=%d: no windows audited", seed)
		}
		if res.Served+res.Rejected != len(tr.Tasks) {
			t.Fatalf("seed=%d: books do not balance", seed)
		}
		t.Logf("seed=%d: %d windows audited, %d with tied optima", seed, windows, ties)
	}
}

// auditBuildDense rebuilds closeBatchDense's pruned weight matrix for
// one window from the same candidate queries, without committing.
func auditBuildDense(e *Engine, r *eventRun, batch []int, decisionAt float64) ([][]float64, []int) {
	cands := make([][]Candidate, len(batch))
	inUnion := make(map[int]bool)
	var union []int
	var buf []Candidate
	for bi, ti := range batch {
		buf = e.source.Candidates(r.tasks[ti], decisionAt, buf[:0])
		cs := append([]Candidate(nil), buf...)
		if len(cs) > len(batch) {
			sort.Slice(cs, func(a, b int) bool {
				if cs[a].Margin != cs[b].Margin {
					return cs[a].Margin > cs[b].Margin
				}
				return cs[a].Driver < cs[b].Driver
			})
			cs = cs[:len(batch)]
		}
		cands[bi] = cs
		for _, c := range cs {
			if !inUnion[c.Driver] {
				inUnion[c.Driver] = true
				union = append(union, c.Driver)
			}
		}
	}
	sort.Ints(union)
	col := make(map[int]int, len(union))
	for j, drv := range union {
		col[drv] = j
	}
	w := make([][]float64, len(batch))
	for bi := range batch {
		w[bi] = make([]float64, len(union))
		for j := range w[bi] {
			w[bi][j] = matching.Forbidden
		}
		for _, c := range cands[bi] {
			w[bi][col[c.Driver]] = c.Margin
		}
	}
	return w, union
}

// TestWindowScratchSurvivesFleetGrowth: the pooled driver-indexed maps
// must follow AddDriver mid-stream — a window closed after the fleet
// grew sees candidates whose driver index exceeds the fleet size the
// scratch was first sized for.
func TestWindowScratchSurvivesFleetGrowth(t *testing.T) {
	cfg := trace.NewConfig(91, 40, 6, trace.Hitchhiking)
	cfg.PickupWindowMin = 8 * 60
	cfg.PickupWindowMax = 16 * 60
	tr := trace.NewGenerator(cfg).Generate(nil)

	e, err := New(cfg.Market, tr.Drivers[:3], 7)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewBatchedStream(30, BatchHungarian, nil)
	if err != nil {
		t.Fatal(err)
	}
	decided := 0
	st.SetDecisionHandler(func(TaskDecision) { decided++ })
	for i, task := range tr.Tasks {
		if i == len(tr.Tasks)/2 {
			// Grow the fleet mid-day: the remaining drivers join at the
			// stream's current time and are candidates from then on.
			for _, d := range tr.Drivers[3:] {
				if _, err := st.AddDriver(d, st.Now()); err != nil {
					t.Fatalf("AddDriver: %v", err)
				}
			}
		}
		if _, err := st.SubmitTask(task); err != nil {
			t.Fatalf("SubmitTask: %v", err)
		}
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if decided != len(tr.Tasks) {
		t.Fatalf("decided %d of %d tasks", decided, len(tr.Tasks))
	}
	if res.Served+res.Rejected != len(tr.Tasks) {
		t.Fatalf("books do not balance after fleet growth: served %d + rejected %d != %d",
			res.Served, res.Rejected, len(tr.Tasks))
	}
}
