package sim

import (
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/pricing"
	"repro/internal/trace"
)

// recordingPricer is a LivePricer stub that keeps every order's
// original price (so results are comparable against a pricer-free run)
// while counting the feed calls.
type recordingPricer struct {
	resets, decays   int
	demands, supplys int
	prices           int
}

func (p *recordingPricer) Price(t model.Task) float64       { p.prices++; return t.Price }
func (p *recordingPricer) ObserveDemand(geo.Point, float64) { p.demands++ }
func (p *recordingPricer) ObserveSupply(geo.Point, float64) { p.supplys++ }
func (p *recordingPricer) Decay(float64)                    { p.decays++ }
func (p *recordingPricer) Reset()                           { p.resets++ }

// TestLivePricerFeedPoints pins the feed protocol: Reset once per run,
// demand once per arrival, supply once per starting driver plus once
// per committed assignment, Decay once per closed window — and a pricer
// that preserves prices leaves the day's outcome untouched.
func TestLivePricerFeedPoints(t *testing.T) {
	cfg := trace.NewConfig(41, 80, 30, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)

	base, err := New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := base.RunBatched(tr.Tasks, 60, BatchHungarian)

	eng, err := New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingPricer{}
	eng.SetLivePricer(rec, 0.8, 0.5)
	got := eng.RunBatched(tr.Tasks, 60, BatchHungarian)

	if rec.resets != 1 {
		t.Errorf("resets = %d, want 1", rec.resets)
	}
	if rec.demands != len(tr.Tasks) || rec.prices != len(tr.Tasks) {
		t.Errorf("demands/prices = %d/%d, want %d each", rec.demands, rec.prices, len(tr.Tasks))
	}
	if wantSupply := len(tr.Drivers) + got.Served; rec.supplys != wantSupply {
		t.Errorf("supplys = %d, want %d (fleet seed + one per assignment)", rec.supplys, wantSupply)
	}
	if rec.decays == 0 {
		t.Errorf("Decay never called; every closed window must decay the pricer")
	}
	// WTP restamping aside, a price-preserving pricer must not change
	// the day's economics.
	got.Assignment = want.Assignment // maps compare below
	if got.Served != want.Served || got.Rejected != want.Rejected ||
		got.Revenue != want.Revenue || got.TotalProfit != want.TotalProfit {
		t.Fatalf("price-preserving live pricer changed the outcome: %+v vs %+v", got, want)
	}
}

// TestLivePricerDoesNotMutateCallerTasks: the engine re-prices a
// private copy; the caller's slice is untouched.
func TestLivePricerDoesNotMutateCallerTasks(t *testing.T) {
	cfg := trace.NewConfig(43, 50, 20, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	orig := append([]model.Task(nil), tr.Tasks...)

	eng, err := New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	surge := pricing.NewSurge(pricing.NewLinear(cfg.Market, 1), geo.NewGrid(cfg.Box, 8, 8), 3)
	eng.SetLivePricer(surge, 0.7, 0.5)
	eng.RunBatched(tr.Tasks, 60, BatchHungarian)
	if !reflect.DeepEqual(orig, tr.Tasks) {
		t.Fatal("live pricing mutated the caller's task slice")
	}
}

// TestLiveSurgeMovesPrices: concentrated demand against thin supply
// must surge — the multiplier at the hotspot exceeds 1 mid-run and
// total revenue strictly exceeds the flat-priced day on an identical
// assignment-friendly market.
func TestLiveSurgeMovesPrices(t *testing.T) {
	cfg := trace.NewConfig(47, 120, 60, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	// Pile every pickup into one zone so demand/supply > 1 there.
	hot := cfg.Box.Lerp(0.5, 0.5)
	tasks := append([]model.Task(nil), tr.Tasks...)
	for i := range tasks {
		tasks[i].Source = hot
	}

	flatEng, err := New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	flat := flatEng.RunBatched(tasks, 60, BatchHungarian)

	surgeEng, err := New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	surge := pricing.NewSurge(pricing.NewLinear(cfg.Market, 1), geo.NewGrid(cfg.Box, 8, 8), 3)
	surge.Base.Market = cfg.Market
	surgeEng.SetLivePricer(surge, 1, 0.5)
	surged := surgeEng.RunBatched(tasks, 60, BatchHungarian)

	if m := surge.Multiplier(hot); m <= 1 {
		t.Fatalf("hotspot multiplier %v at day end, want > 1", m)
	}
	if surged.Served == 0 || flat.Served == 0 {
		t.Fatalf("degenerate day: served %d flat / %d surged", flat.Served, surged.Served)
	}
	if surged.Revenue <= flat.Revenue {
		t.Fatalf("surged revenue %.3f not above flat revenue %.3f", surged.Revenue, flat.Revenue)
	}
}

// TestLiveSurgeDifferential is the live-pricing half of the
// differential wall: with a surge pricer fed from the event loop, every
// candidate source × shard count × match-worker count must still
// produce bit-identical results, because every feed point sits on the
// single-goroutine event drain. Churn and cancellations included.
func TestLiveSurgeDifferential(t *testing.T) {
	cfg := trace.NewConfig(53, 150, 120, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	events := trace.WithChurn(tr, trace.ChurnConfig{
		Seed: 7, JoinFraction: 0.2, RetireFraction: 0.15, CancelFraction: 0.2,
	})

	type variant struct {
		name    string
		src     func() CandidateSource
		workers int
	}
	variants := []variant{
		{"scan", func() CandidateSource { return nil }, 1},
	}
	for _, shards := range []int{1, 2, 4} {
		n := shards
		variants = append(variants, variant{
			name: "sharded", src: func() CandidateSource { return NewShardedSource(n) }, workers: n,
		})
	}
	variants = append(variants, variant{"grid", func() CandidateSource { return NewGridSource(nil) }, 2})

	run := func(v variant, batched bool) Result {
		eng, err := New(cfg.Market, tr.Drivers, 1)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetCandidateSource(v.src())
		eng.MatchWorkers = v.workers
		surge := pricing.NewSurge(pricing.NewLinear(cfg.Market, 1), geo.NewGrid(cfg.Box, 8, 8), 3)
		eng.SetLivePricer(surge, 0.7, 0.5)
		if batched {
			return eng.RunBatchedScenario(tr.Tasks, events, 60, BatchHungarian)
		}
		return eng.RunScenario(tr.Tasks, events, diffMaxMargin{})
	}
	for _, batched := range []bool{false, true} {
		want := run(variants[0], batched)
		if want.Served == 0 {
			t.Fatalf("degenerate baseline (batched=%v): nothing served", batched)
		}
		for _, v := range variants[1:] {
			if got := run(v, batched); !reflect.DeepEqual(want, got) {
				t.Errorf("batched=%v: %s(workers=%d) diverges from scan under live surge: served %d vs %d, revenue %.9f vs %.9f",
					batched, v.name, v.workers, got.Served, want.Served, got.Revenue, want.Revenue)
			}
		}
	}
}
