package sim

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/spatial"
)

// ShardedSource partitions the fleet into per-zone shards — one
// spatial.Index per cell of a coarse zone grid, each holding exactly
// the drivers currently located in its zone — and answers candidate
// queries by fanning the reachability query out across the shards
// whose zone rectangle intersects the pickup's reachability radius,
// in parallel when there is more than one.
//
// Determinism is the design constraint, not an afterthought. Shards
// hold disjoint driver sets; each shard reports its feasible
// candidates in ascending driver order (the exact feasibility checks
// of Algorithms 3–4 are pure per-driver functions of engine state, so
// it does not matter which goroutine evaluates them); and the merged
// slice is restored to the canonical ascending-driver order before the
// dispatcher sees it. The result is bit-identical to ScanSource and
// GridSource for every shard count — the differential tests sweep
// shard counts 1, 2, 4 and 8 to prove exactly that. Concurrency here
// parallelizes candidate *generation* per arrival; commits stay
// sequential in event order, which is what keeps the simulation
// reproducible.
//
// Drivers migrate between shards as assignments move them (Moved), and
// enter or leave shards on mid-day joins and retirements (Presence) —
// a retired driver costs her shard nothing, unlike the dense
// GridSource where she still occupies a bucket. Pickups near a zone
// border borrow candidates from every zone the radius touches, so
// shard boundaries never change who gets picked, only where the
// lookup happens.
type ShardedSource struct {
	// Shards is the requested zone count; values below 1 are treated
	// as 1. The zone grid is dimensioned close to square (8 → 2×4).
	Shards int

	// Zones optionally fixes the zone decomposition; its cell count
	// overrides Shards. Nil auto-sizes a grid over the fleet's
	// bounding box at Bind time.
	Zones *geo.Grid

	// Serial disables concurrent shard queries (the zone partition is
	// still used) — an ablation knob for separating the partition's
	// effect from the parallelism's.
	Serial bool

	e        *Engine
	zones    *geo.Grid
	idx      []*spatial.Index // zone -> per-zone index over the full id space
	shardOf  []int            // driver -> zone, or -1 while absent
	maxSpeed float64

	// Conservative planar zone rectangles for shard-level pruning, in
	// the same spirit as the index's internal ring bound: degrees
	// scaled so east-west distances are under-, never over-stated.
	rects  []rect
	cosMin float64

	active []int         // query scratch: zones in radius
	heads  []int         // merge scratch
	ids    [][]int       // per-zone query scratch
	out    [][]Candidate // per-zone candidate scratch
	dbs    []distBatch   // per-zone scoring scratch (shards run concurrently)
}

type rect struct{ minLat, maxLat, minLon, maxLon float64 }

var _ CandidateSource = (*ShardedSource)(nil)

// NewShardedSource returns a sharded source with the given zone count
// and an auto-sized zone grid.
func NewShardedSource(shards int) *ShardedSource {
	return &ShardedSource{Shards: shards}
}

// Name implements CandidateSource.
func (s *ShardedSource) Name() string { return fmt.Sprintf("sharded(%d)", s.shardCount()) }

func (s *ShardedSource) shardCount() int {
	if s.Zones != nil {
		return s.Zones.NumCells()
	}
	if s.Shards < 1 {
		return 1
	}
	return s.Shards
}

// zoneDims factors n into a near-square rows×cols decomposition with
// rows*cols == n (primes degrade to 1×n strips).
func zoneDims(n int) (rows, cols int) {
	rows = 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return rows, n / rows
}

// Bind implements CandidateSource. Like GridSource, it rejects a
// configured zone grid whose latitude band is too far from the fleet
// for the conservative planar pre-filtering to hold.
func (s *ShardedSource) Bind(e *Engine) {
	s.e = e
	zones := s.Zones
	if zones == nil {
		rows, cols := zoneDims(s.shardCount())
		zones = geo.NewGrid(fleetBox(e.Drivers), rows, cols)
	}
	checkGridCoversFleet(zones, e.Drivers)
	s.zones = zones

	n := len(e.Drivers)
	nz := zones.NumCells()
	s.idx = make([]*spatial.Index, nz)
	s.rects = make([]rect, nz)
	for z := 0; z < nz; z++ {
		sub := zoneBox(zones, z)
		s.rects[z] = rect{sub.MinLat, sub.MaxLat, sub.MinLon, sub.MaxLon}
		s.idx[z] = spatial.NewSparseIndex(zoneGrid(sub, n, nz), n)
	}
	s.cosMin = math.Min(
		math.Abs(math.Cos(zones.Box.MinLat*math.Pi/180)),
		math.Abs(math.Cos(zones.Box.MaxLat*math.Pi/180)))

	s.maxSpeed = e.Market.SpeedKmh
	s.shardOf = make([]int, n)
	for i, d := range e.Drivers {
		if d.SpeedKmh > s.maxSpeed {
			s.maxSpeed = d.SpeedKmh
		}
		s.shardOf[i] = -1
		if e.present[i] {
			s.insert(i)
		}
	}

	s.active = make([]int, 0, nz)
	s.heads = make([]int, nz)
	s.ids = make([][]int, nz)
	s.out = make([][]Candidate, nz)
	s.dbs = make([]distBatch, nz)
}

// insert places driver i into the shard owning her current location.
func (s *ShardedSource) insert(i int) {
	st := &s.e.states[i]
	z := s.zones.CellOf(st.loc)
	s.idx[z].Add(i, st.loc)
	s.idx[z].SetSpan(i, st.freeAt, s.e.Drivers[i].End)
	s.shardOf[i] = z
}

// Moved implements CandidateSource: the driver is re-indexed at her new
// location, migrating shards if the assignment (or revocation) carried
// her across a zone border.
func (s *ShardedSource) Moved(i int) {
	z := s.shardOf[i]
	if z < 0 {
		return // retired mid-flight; nothing indexed anywhere
	}
	st := &s.e.states[i]
	nz := s.zones.CellOf(st.loc)
	if nz != z {
		s.idx[z].Remove(i)
		s.idx[nz].Add(i, st.loc)
		s.shardOf[i] = nz
	} else {
		s.idx[z].Move(i, st.loc)
	}
	s.idx[nz].SetSpan(i, st.freeAt, s.e.Drivers[i].End)
}

// Presence implements CandidateSource: joins insert the driver into
// her zone's shard, retirements remove her outright.
func (s *ShardedSource) Presence(i int, present bool) {
	if present {
		if s.shardOf[i] < 0 {
			s.insert(i)
		}
	} else if z := s.shardOf[i]; z >= 0 {
		s.idx[z].Remove(i)
		s.shardOf[i] = -1
	}
}

// Candidates implements CandidateSource. The reachability predicate is
// the same as GridSource's; it is evaluated shard-by-shard, skipping
// shards whose zone rectangle lies wholly outside the radius, and the
// surviving shards run concurrently.
func (s *ShardedSource) Candidates(task model.Task, now float64, buf []Candidate) []Candidate {
	e := s.e
	if task.StartBy < now {
		return buf
	}
	minRetire := task.EndBy
	if e.RealTime {
		minRetire = now
	}
	radiusKm := s.maxSpeed * (task.StartBy - now) / 3600

	q := s.zones.Box.Clamp(task.Source)
	s.active = s.active[:0]
	for z := range s.idx {
		if s.idx[z].Members() == 0 {
			continue
		}
		if s.rectDistKm(z, q)*spatial.Safety > radiusKm {
			continue // no point of this zone can be in range
		}
		s.active = append(s.active, z)
	}

	service := e.Market.TravelTime(task.Source, task.Dest, 0)
	serviceCost := e.Market.ServiceCost(task)

	// Fan out only when the runtime can actually run shards in
	// parallel: on a single-P runtime goroutines are pure overhead and
	// the serial path computes the identical result. The caller takes
	// the first shard itself rather than parking at the rendezvous —
	// one fewer goroutine spawn per query, and with two active shards
	// (the common radius) the only spawn overlaps the caller's own
	// shard work. Shards write disjoint s.out slots, so the split
	// cannot perturb the merge.
	if len(s.active) > 1 && !s.Serial && runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		wg.Add(len(s.active) - 1)
		for _, z := range s.active[1:] {
			go func(z int) {
				defer wg.Done()
				s.queryShard(z, task, now, minRetire, service, serviceCost)
			}(z)
		}
		s.queryShard(s.active[0], task, now, minRetire, service, serviceCost)
		wg.Wait()
	} else {
		for _, z := range s.active {
			s.queryShard(z, task, now, minRetire, service, serviceCost)
		}
	}

	// Merge: shards are disjoint and each per-shard slice is already in
	// ascending driver order, so a k-way merge restores the canonical
	// global order the dispatchers' tie-breaking depends on.
	return s.mergeInto(buf)
}

// mergeInto k-way-merges the active shards' sorted candidate slices
// into buf by ascending driver id. The active shard count is small (a
// radius rarely touches more than a handful of zones), so a linear
// scan over the heads beats a heap. The exact output size is known
// upfront, so buf is grown once instead of through append's doubling —
// on the batched hot path, which queries candidates per order per
// window into a pooled buffer, that keeps steady-state merges
// allocation-free.
func (s *ShardedSource) mergeInto(buf []Candidate) []Candidate {
	switch len(s.active) {
	case 0:
		return buf
	case 1:
		return append(buf, s.out[s.active[0]]...)
	}
	total := 0
	for _, z := range s.active {
		total += len(s.out[z])
	}
	if cap(buf)-len(buf) < total {
		grown := make([]Candidate, len(buf), len(buf)+total)
		copy(grown, buf)
		buf = grown
	}
	heads := s.heads[:len(s.active)]
	for k := range heads {
		heads[k] = 0
	}
	for {
		best, bestDriver := -1, 0
		for k, z := range s.active {
			if heads[k] >= len(s.out[z]) {
				continue
			}
			if d := s.out[z][heads[k]].Driver; best < 0 || d < bestDriver {
				best, bestDriver = k, d
			}
		}
		if best < 0 {
			return buf
		}
		buf = append(buf, s.out[s.active[best]][heads[best]])
		heads[best]++
	}
}

// queryShard runs the conservative index query plus the exact
// feasibility checks for one shard, into that shard's scratch. Engine
// state is only read here, which is what makes the shard fan-out safe.
func (s *ShardedSource) queryShard(z int, task model.Task, now, minRetire, service, serviceCost float64) {
	ids := s.ids[z][:0]
	s.idx[z].NearReachable(task.Source, s.maxSpeed, task.StartBy, now, minRetire,
		func(id int) { ids = append(ids, id) })
	slices.Sort(ids)
	out := s.e.scoreCandidates(&s.dbs[z], ids, task, now, service, serviceCost, s.out[z][:0])
	s.ids[z], s.out[z] = ids, out
}

// rectDistKm lower-bounds the equirectangular distance from q (clamped
// into the zone box) to any point whose clamped location falls in zone
// z: coordinate gaps in degrees, latitude at the exact scale, longitude
// at the zone box's smallest cosine so east-west separations are never
// overstated.
func (s *ShardedSource) rectDistKm(z int, q geo.Point) float64 {
	const kmPerDeg = geo.EarthRadiusKm * math.Pi / 180
	r := s.rects[z]
	var dLat, dLon float64
	if q.Lat < r.minLat {
		dLat = r.minLat - q.Lat
	} else if q.Lat > r.maxLat {
		dLat = q.Lat - r.maxLat
	}
	if q.Lon < r.minLon {
		dLon = r.minLon - q.Lon
	} else if q.Lon > r.maxLon {
		dLon = q.Lon - r.maxLon
	}
	x := dLon * kmPerDeg * s.cosMin
	y := dLat * kmPerDeg
	return math.Sqrt(x*x + y*y)
}

// zoneBox returns the sub-box of zone cell z.
func zoneBox(zones *geo.Grid, z int) geo.BoundingBox {
	row, col := z/zones.Cols, z%zones.Cols
	latSpan := (zones.Box.MaxLat - zones.Box.MinLat) / float64(zones.Rows)
	lonSpan := (zones.Box.MaxLon - zones.Box.MinLon) / float64(zones.Cols)
	return geo.BoundingBox{
		MinLat: zones.Box.MinLat + float64(row)*latSpan,
		MaxLat: zones.Box.MinLat + float64(row+1)*latSpan,
		MinLon: zones.Box.MinLon + float64(col)*lonSpan,
		MaxLon: zones.Box.MinLon + float64(col+1)*lonSpan,
	}
}

// zoneGrid sizes one shard's fine grid: the fleet splits across nz
// zones, so target a few expected members per cell, as autoGrid does
// for the whole fleet.
func zoneGrid(sub geo.BoundingBox, n, nz int) *geo.Grid {
	dim := int(math.Ceil(math.Sqrt(float64(n) / float64(2*nz))))
	if dim < 1 {
		dim = 1
	}
	if dim > 512 {
		dim = 512
	}
	return geo.NewGrid(sub, dim, dim)
}
