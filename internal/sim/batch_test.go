package sim

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

func TestBatchedSingleTask(t *testing.T) {
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(120)}}
	tk := task(0, 1, 3, minutes(1), minutes(15), minutes(25), 10)
	e := mustEngine(t, d)
	res := e.RunBatched([]model.Task{tk}, 30, BatchHungarian)
	if res.Served != 1 {
		t.Fatalf("served = %d, want 1", res.Served)
	}
	// Same accounting as instant dispatch: profit 10 − (1+2+3) = 4.
	if math.Abs(res.TotalProfit-4) > 1e-6 {
		t.Fatalf("profit = %.6f, want 4", res.TotalProfit)
	}
}

func TestBatchedGloballyBetterThanGreedyChoice(t *testing.T) {
	// Two tasks published within one window, two drivers. Instant
	// maxMargin gives the first task to the close driver (its best
	// margin), forcing the second task to the far driver — total
	// deadhead 0 + 10. Batched matching swaps them when that raises the
	// batch's total margin.
	drivers := []model.Driver{
		{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)},
		{ID: 1, Source: at(2), Dest: at(2), Start: 0, End: minutes(240)},
	}
	// Task A at km 0 (close to driver 0), task B at km 1: driver 0 is
	// best for both; batched must assign A→0 and B→1 (or the optimum).
	a := task(0, 0, 2, minutes(1), minutes(20), minutes(30), 10)
	b := task(1, 1, 3, minutes(1.5), minutes(20), minutes(30), 10)
	e := mustEngine(t, drivers)
	res := e.RunBatched([]model.Task{a, b}, 120, BatchHungarian)
	if res.Served != 2 {
		t.Fatalf("served = %d, want 2 (one task per driver per batch)", res.Served)
	}
	if res.Assignment[0] == res.Assignment[1] {
		t.Fatalf("both tasks went to driver %d within one batch", res.Assignment[0])
	}
}

func TestBatchedOneTaskPerDriverPerBatch(t *testing.T) {
	// Three compatible tasks in one window, one driver: only one can be
	// assigned in the batch.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	tasks := []model.Task{
		task(0, 0, 1, minutes(1), minutes(20), minutes(25), 8),
		task(1, 0, 1, minutes(1.2), minutes(40), minutes(45), 9),
		task(2, 0, 1, minutes(1.4), minutes(60), minutes(65), 10),
	}
	e := mustEngine(t, d)
	res := e.RunBatched(tasks, 120, BatchHungarian)
	if res.Served != 1 {
		t.Fatalf("served = %d, want 1 within a single batch", res.Served)
	}
	// The matcher should pick the highest-margin task (task 2: price 10,
	// same geometry).
	if _, ok := res.Assignment[2]; !ok {
		t.Fatalf("assignment %v, want the highest-margin task", res.Assignment)
	}
}

func TestBatchedWindowSplitsBatches(t *testing.T) {
	// Same three tasks but a tiny window: each task gets its own batch,
	// so the single driver can chain all three (deadline locking
	// permitting).
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	tasks := []model.Task{
		task(0, 0, 1, minutes(1), minutes(20), minutes(25), 8),
		task(1, 1, 2, minutes(5), minutes(40), minutes(45), 9),
		task(2, 2, 3, minutes(9), minutes(60), minutes(65), 10),
	}
	e := mustEngine(t, d)
	res := e.RunBatched(tasks, 10, BatchHungarian)
	if res.Served != 3 {
		t.Fatalf("served = %d, want 3 across separate batches", res.Served)
	}
}

func TestBatchedDelayCanLoseUrgentTasks(t *testing.T) {
	// A task whose pickup deadline falls inside the batch window is
	// decided too late: the response-time cost of batching.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	urgent := task(0, 0, 1, minutes(1), minutes(2), minutes(10), 10)
	e := mustEngine(t, d)
	if res := e.RunBatched([]model.Task{urgent}, 600, BatchHungarian); res.Served != 0 {
		t.Fatal("urgent task should be lost to batching delay")
	}
	if res := e.Run([]model.Task{urgent}, pickFirst{}); res.Served != 1 {
		t.Fatal("instant dispatch should serve the urgent task")
	}
}

func TestBatchedAuctionAgreesWithHungarian(t *testing.T) {
	cfg := trace.NewConfig(31, 150, 25, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := eng.RunBatched(tr.Tasks, 60, BatchHungarian)
	a := eng.RunBatched(tr.Tasks, 60, BatchAuction)
	// Both are exact (auction ε is tiny); totals should be very close —
	// they may differ slightly when equal-weight optima tie-break
	// differently and later batches diverge.
	if math.Abs(h.TotalProfit-a.TotalProfit) > 0.05*math.Abs(h.TotalProfit)+1e-6 {
		t.Fatalf("hungarian %.3f vs auction %.3f diverge", h.TotalProfit, a.TotalProfit)
	}
}

func TestBatchedProfitNonNegativePerDriver(t *testing.T) {
	cfg := trace.NewConfig(33, 150, 25, trace.HomeWorkHome)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.RunBatched(tr.Tasks, 60, BatchHungarian)
	for i, p := range res.PerDriverProfit {
		if p < -1e-6 {
			t.Fatalf("driver %d profit %.6f < 0 (matching assigned a non-positive margin?)", i, p)
		}
	}
}

func TestBatchedPanicsOnBadWindow(t *testing.T) {
	e := mustEngine(t, []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: 100}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.RunBatched(nil, 0, BatchHungarian)
}

func TestBatchAlgorithmString(t *testing.T) {
	if BatchHungarian.String() != "batched(hungarian)" || BatchAuction.String() != "batched(auction)" {
		t.Error("BatchAlgorithm String values wrong")
	}
	if BatchAlgorithm(9).String() != "BatchAlgorithm(9)" {
		t.Error("unknown BatchAlgorithm String wrong")
	}
}
