package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// localMaxMargin mirrors online.MaxMargin without importing the online
// package (which would create an import cycle in tests).
type localMaxMargin struct{}

func (localMaxMargin) Name() string { return "maxMargin" }
func (localMaxMargin) Choose(_ model.Task, cands []Candidate, _ *rand.Rand) int {
	best := -1
	for i, c := range cands {
		if best < 0 || c.Margin > cands[best].Margin {
			best = i
		}
	}
	if best >= 0 && cands[best].Margin <= 0 {
		return -1
	}
	return best
}

func TestReplanSingleTask(t *testing.T) {
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(120)}}
	tk := task(0, 1, 3, minutes(1), minutes(15), minutes(25), 10)
	e := mustEngine(t, d)
	res := e.RunReplan([]model.Task{tk}, 120)
	if res.Served != 1 {
		t.Fatalf("served = %d, want 1", res.Served)
	}
	if math.Abs(res.TotalProfit-4) > 1e-6 {
		t.Fatalf("profit = %.6f, want 4 (same accounting as instant dispatch)", res.TotalProfit)
	}
}

func TestReplanChainsTasks(t *testing.T) {
	// Three sequential tasks: rolling-horizon should chain them all on
	// the single driver across rounds.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	tasks := []model.Task{
		task(0, 0, 1, minutes(1), minutes(20), minutes(25), 8),
		task(1, 1, 2, minutes(2), minutes(50), minutes(55), 9),
		task(2, 2, 3, minutes(3), minutes(80), minutes(85), 10),
	}
	e := mustEngine(t, d)
	res := e.RunReplan(tasks, 300)
	if res.Served != 3 {
		t.Fatalf("served = %d, want all 3 chained", res.Served)
	}
	if len(res.DriverPaths[0]) != 3 {
		t.Fatalf("driver path %v", res.DriverPaths[0])
	}
}

func TestReplanExpiredTasksRejected(t *testing.T) {
	// A task whose pickup deadline passes before any replan round can
	// serve it must be counted rejected exactly once.
	d := []model.Driver{{ID: 0, Source: at(30), Dest: at(30), Start: 0, End: minutes(240)}}
	unreachable := task(0, 0, 1, minutes(1), minutes(5), minutes(10), 10)
	e := mustEngine(t, d)
	res := e.RunReplan([]model.Task{unreachable}, 60)
	if res.Served != 0 || res.Rejected != 1 {
		t.Fatalf("served=%d rejected=%d, want 0,1", res.Served, res.Rejected)
	}
}

func TestReplanAccountingConsistent(t *testing.T) {
	cfg := trace.NewConfig(41, 120, 20, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	eng, err := New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.RunReplan(tr.Tasks, 120)
	if res.Served+res.Rejected != len(tr.Tasks) {
		t.Fatalf("served %d + rejected %d != %d", res.Served, res.Rejected, len(tr.Tasks))
	}
	var sum float64
	for _, p := range res.PerDriverProfit {
		sum += p
	}
	if math.Abs(sum-res.TotalProfit) > 1e-9 {
		t.Fatalf("profit sum %.6f != total %.6f", sum, res.TotalProfit)
	}
	for ti, drv := range res.Assignment {
		found := false
		for _, x := range res.DriverPaths[drv] {
			if x == ti {
				found = true
			}
		}
		if !found {
			t.Fatalf("assignment (%d→%d) missing from driver path", ti, drv)
		}
	}
}

func TestReplanBeatsInstantHeuristics(t *testing.T) {
	// Rolling-horizon re-optimization sees pending demand and uses the
	// offline greedy; aggregated over seeds it should dominate the
	// instant heuristics.
	var replan, mm float64
	for seed := int64(0); seed < 4; seed++ {
		cfg := trace.NewConfig(seed, 150, 20, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		eng, err := New(cfg.Market, tr.Drivers, seed)
		if err != nil {
			t.Fatal(err)
		}
		replan += eng.RunReplan(tr.Tasks, 60).TotalProfit
		mm += eng.Run(tr.Tasks, localMaxMargin{}).TotalProfit
	}
	if replan < mm {
		t.Fatalf("replan aggregate %.2f below maxMargin %.2f", replan, mm)
	}
}

func TestReplanPanicsOnBadPeriod(t *testing.T) {
	e := mustEngine(t, []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: 100}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.RunReplan(nil, -1)
}

func TestReplanEmptyTasks(t *testing.T) {
	e := mustEngine(t, []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: 100}})
	res := e.RunReplan(nil, 60)
	if res.Served != 0 || res.Rejected != 0 {
		t.Fatalf("empty day: %+v", res)
	}
}
