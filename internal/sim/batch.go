package sim

import (
	"fmt"
	"sort"

	"repro/internal/matching"
	"repro/internal/model"
)

// This file implements batched dispatch: the "non-heuristic" online
// algorithm direction the paper's conclusion leaves as future work.
// Instead of answering each order the instant it arrives, the platform
// accumulates the orders of a short window (a few seconds to a minute in
// production systems) and solves a maximum-weight assignment between the
// batch and the candidate drivers. Each batch trades a bounded increase
// in response time for globally better matches than the per-task greedy
// heuristics of §V.

// BatchAlgorithm selects the assignment solver used per batch.
type BatchAlgorithm int

// Batch solvers.
const (
	// BatchHungarian solves each batch exactly in O(n³).
	BatchHungarian BatchAlgorithm = iota
	// BatchAuction uses Bertsekas' auction algorithm (exact up to its
	// bid increment; typically faster on sparse batches).
	BatchAuction
)

// String implements fmt.Stringer.
func (a BatchAlgorithm) String() string {
	switch a {
	case BatchHungarian:
		return "batched(hungarian)"
	case BatchAuction:
		return "batched(auction)"
	default:
		return fmt.Sprintf("BatchAlgorithm(%d)", int(a))
	}
}

// RunBatched simulates the day with batched dispatch: tasks are grouped
// into consecutive windows of `window` seconds by publish time; at each
// window's end the engine solves a maximum-weight task–driver assignment
// over the marginal values δ_{n,m} (Eq. 14), assigning at most one task
// per driver per batch. Margins ≤ 0 are never assigned (individual
// rationality), and tasks that found no driver are rejected — they are
// real-time orders and cannot wait for the next batch.
func (e *Engine) RunBatched(tasks []model.Task, window float64, algo BatchAlgorithm) Result {
	if window <= 0 {
		panic(fmt.Sprintf("sim: non-positive batch window %g", window))
	}
	e.reset()
	res := Result{
		PerDriverRevenue: make([]float64, len(e.Drivers)),
		PerDriverProfit:  make([]float64, len(e.Drivers)),
		PerDriverTasks:   make([]int, len(e.Drivers)),
		DriverPaths:      make([][]int, len(e.Drivers)),
		Assignment:       make(map[int]int),
	}

	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := tasks[order[a]], tasks[order[b]]
		if ta.Publish != tb.Publish {
			return ta.Publish < tb.Publish
		}
		return order[a] < order[b]
	})

	var cands []Candidate
	for start := 0; start < len(order); {
		// Collect one batch: all tasks published within `window` of the
		// batch head. Decisions happen at the window's close.
		head := tasks[order[start]].Publish
		end := start
		for end < len(order) && tasks[order[end]].Publish < head+window {
			end++
		}
		decisionAt := head + window
		batch := order[start:end]
		start = end

		// Weight matrix: rows = batch tasks, cols = drivers; margins
		// δ_{n,m} at decision time, Forbidden where infeasible.
		w := make([][]float64, len(batch))
		arrivals := make([][]float64, len(batch))
		for bi, ti := range batch {
			w[bi] = make([]float64, len(e.Drivers))
			arrivals[bi] = make([]float64, len(e.Drivers))
			for c := range w[bi] {
				w[bi][c] = matching.Forbidden
			}
			cands = e.source.Candidates(tasks[ti], decisionAt, cands[:0])
			for _, c := range cands {
				w[bi][c.Driver] = c.Margin
				arrivals[bi][c.Driver] = c.Arrival
			}
		}

		var asg matching.Assignment
		var err error
		switch algo {
		case BatchAuction:
			asg, err = matching.Auction(w, 1e-9)
		default:
			asg, err = matching.Hungarian(w)
		}
		if err != nil {
			// The matrix is rectangular by construction.
			panic(fmt.Sprintf("sim: batch matching failed: %v", err))
		}

		for bi, ti := range batch {
			drv := asg.ColOf[bi]
			if drv < 0 {
				res.Rejected++
				continue
			}
			e.assign(Candidate{Driver: drv, Arrival: arrivals[bi][drv], Margin: w[bi][drv]}, tasks[ti])
			res.Served++
			res.Assignment[ti] = drv
			res.DriverPaths[drv] = append(res.DriverPaths[drv], ti)
		}
	}

	e.settle(&res)
	return res
}
