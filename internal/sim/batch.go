package sim

import (
	"fmt"
	"math"

	"repro/internal/matching"
	"repro/internal/model"
)

// This file implements batched dispatch: the "non-heuristic" online
// algorithm direction the paper's conclusion leaves as future work.
// Instead of answering each order the instant it arrives, the platform
// accumulates the orders of a short window (a few seconds to a minute in
// production systems) and solves a maximum-weight assignment between the
// batch and the candidate drivers. Each batch trades a bounded increase
// in response time for globally better matches than the per-task greedy
// heuristics of §V.
//
// Over the event loop, the first arrival with no close pending opens a
// batch and schedules an internal batch-close event window seconds
// later; arrivals accumulate until it fires. The close event sorts
// before any arrival at the same instant, so a batch spans exactly
// [head, head+window) of publish time. Rider cancellations landing
// inside the window remove the order from the open batch before it is
// matched; the window stays anchored at the order that opened it, so a
// cancellation never changes when other orders are decided.

// BatchAlgorithm selects the assignment solver used per batch.
type BatchAlgorithm int

// Batch solvers.
const (
	// BatchHungarian solves each batch exactly in O(n³).
	BatchHungarian BatchAlgorithm = iota
	// BatchAuction uses Bertsekas' auction algorithm (exact up to its
	// bid increment; typically faster on sparse batches).
	BatchAuction
)

// String implements fmt.Stringer.
func (a BatchAlgorithm) String() string {
	switch a {
	case BatchHungarian:
		return "batched(hungarian)"
	case BatchAuction:
		return "batched(auction)"
	default:
		return fmt.Sprintf("BatchAlgorithm(%d)", int(a))
	}
}

// RunBatched simulates the day with batched dispatch: tasks are grouped
// into consecutive windows of `window` seconds by publish time; at each
// window's end the engine solves a maximum-weight task–driver assignment
// over the marginal values δ_{n,m} (Eq. 14), assigning at most one task
// per driver per batch. Margins ≤ 0 are never assigned (individual
// rationality), and tasks that found no driver are rejected — they are
// real-time orders and cannot wait for the next batch.
func (e *Engine) RunBatched(tasks []model.Task, window float64, algo BatchAlgorithm) Result {
	return e.RunBatchedScenario(tasks, nil, window, algo)
}

// RunBatchedScenario is RunBatched with dynamic market events (driver
// churn, rider cancellations) interleaved into the arrival stream, with
// the same event semantics as RunScenario.
func (e *Engine) RunBatchedScenario(tasks []model.Task, events []model.MarketEvent, window float64, algo BatchAlgorithm) Result {
	if window <= 0 {
		panic(fmt.Sprintf("sim: non-positive batch window %g", window))
	}
	r := e.newEventRun(tasks, events, true)

	// closeAt tracks the pending batch-close event (NaN when none): the
	// window is anchored at the arrival that opened the batch and stays
	// anchored even if cancellations empty the batch before it closes —
	// otherwise a stale close would fire early on the next batch.
	var batch []int
	closeAt := math.NaN()
	r.onArrival = func(ev event) {
		if math.IsNaN(closeAt) {
			closeAt = ev.at + window
			r.push(event{key: closeAt, kind: evBatchClose, at: closeAt})
		}
		batch = append(batch, ev.idx)
	}
	r.onBatchClose = func(ev event) {
		e.closeBatch(r, batch, ev.at, algo)
		batch = batch[:0]
		closeAt = math.NaN()
	}
	r.cancelPending = func(ti int) bool {
		for k, b := range batch {
			if b == ti {
				batch = append(batch[:k], batch[k+1:]...)
				return true
			}
		}
		return false
	}

	for i := range tasks {
		r.add(event{key: tasks[i].Publish, kind: evArrival, seq: i, at: tasks[i].Publish, idx: i})
	}
	r.drain()
	e.settle(&r.res)
	return r.res
}

// closeBatch solves the maximum-weight assignment for one batch at its
// decision time and commits the matches.
func (e *Engine) closeBatch(r *eventRun, batch []int, decisionAt float64, algo BatchAlgorithm) {
	if len(batch) == 0 {
		return // every order of the window was cancelled
	}
	// Weight matrix: rows = batch tasks, cols = drivers; margins
	// δ_{n,m} at decision time, Forbidden where infeasible.
	w := make([][]float64, len(batch))
	arrivals := make([][]float64, len(batch))
	for bi, ti := range batch {
		w[bi] = make([]float64, len(e.Drivers))
		arrivals[bi] = make([]float64, len(e.Drivers))
		for c := range w[bi] {
			w[bi][c] = matching.Forbidden
		}
		r.cands = e.source.Candidates(r.tasks[ti], decisionAt, r.cands[:0])
		for _, c := range r.cands {
			w[bi][c.Driver] = c.Margin
			arrivals[bi][c.Driver] = c.Arrival
		}
	}

	var asg matching.Assignment
	var err error
	switch algo {
	case BatchAuction:
		asg, err = matching.Auction(w, 1e-9)
	default:
		asg, err = matching.Hungarian(w)
	}
	if err != nil {
		// The matrix is rectangular by construction.
		panic(fmt.Sprintf("sim: batch matching failed: %v", err))
	}

	for bi, ti := range batch {
		drv := asg.ColOf[bi]
		if drv < 0 {
			r.res.Rejected++
			continue
		}
		r.assignTask(ti, Candidate{Driver: drv, Arrival: arrivals[bi][drv], Margin: w[bi][drv]}, r.tasks[ti])
	}
}
