package sim

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/matching"
	"repro/internal/model"
)

// This file implements batched dispatch: the "non-heuristic" online
// algorithm direction the paper's conclusion leaves as future work.
// Instead of answering each order the instant it arrives, the platform
// accumulates the orders of a short window (a few seconds to a minute in
// production systems) and solves a maximum-weight assignment between the
// batch and the candidate drivers. Each batch trades a bounded increase
// in response time for globally better matches than the per-task greedy
// heuristics of §V.
//
// Over the event loop, the first arrival with no close pending opens a
// batch and schedules an internal batch-close event window seconds
// later; arrivals accumulate until it fires. The close event sorts
// before any arrival at the same instant, so a batch spans exactly
// [head, head+window) of publish time. Rider cancellations landing
// inside the window remove the order from the open batch before it is
// matched; the window stays anchored at the order that opened it, so a
// cancellation never changes when other orders are decided.
//
// The window state lives in a batcher that wires itself onto an
// eventRun's mode hooks, so the same machinery backs both the
// drain-to-completion entry points (RunBatched*) and the open-loop
// streaming API (Engine.NewBatchedStream): a batch run is just a
// batched stream that enqueues the whole day upfront.

// BatchAlgorithm selects the assignment solver used per batch.
type BatchAlgorithm int

// Batch solvers.
const (
	// BatchHungarian solves each batch exactly in O(n³).
	BatchHungarian BatchAlgorithm = iota
	// BatchAuction uses Bertsekas' auction algorithm (exact up to its
	// bid increment; typically faster on sparse batches).
	BatchAuction
)

// String implements fmt.Stringer.
func (a BatchAlgorithm) String() string {
	switch a {
	case BatchHungarian:
		return "batched(hungarian)"
	case BatchAuction:
		return "batched(auction)"
	default:
		return fmt.Sprintf("BatchAlgorithm(%d)", int(a))
	}
}

// BatchStats summarizes one closed dispatch window.
type BatchStats struct {
	// OpenedAt is the publish time of the order that opened the window;
	// ClosedAt the decision instant, OpenedAt + window.
	OpenedAt float64
	ClosedAt float64
	// Submitted counts the orders that joined the window; Cancelled the
	// ones riders withdrew before the close. The remaining
	// Submitted − Cancelled orders were matched (Matched) or left
	// without a feasible profitable driver (Rejected).
	Submitted int
	Cancelled int
	Matched   int
	Rejected  int
}

// batcher holds the open-window state of one batched run and installs
// the mode hooks interpreting arrivals, batch closes and mid-window
// cancellations. closeAt tracks the pending batch-close event (NaN when
// none): the window is anchored at the arrival that opened it and stays
// anchored even if cancellations empty the batch before it closes —
// otherwise a stale close would fire early on the next batch.
type batcher struct {
	r      *eventRun
	window float64
	algo   BatchAlgorithm

	batch     []int
	openedAt  float64
	closeAt   float64
	cancelled int // orders removed from the open window by their riders

	// onClose, when set, receives each closed window's stats right
	// after its decisions committed; the streaming API forwards them to
	// the service feed.
	onClose func(BatchStats)
}

// newBatcher wires batched-window dispatch onto the run. The window
// must be positive: the public boundaries (dispatch options, CLI flags)
// validate user input, so a non-positive window here is an internal
// programming error.
func newBatcher(r *eventRun, window float64, algo BatchAlgorithm) *batcher {
	if !(window > 0) || math.IsInf(window, 1) {
		panic(fmt.Sprintf("sim: non-positive batch window %g", window))
	}
	b := &batcher{r: r, window: window, algo: algo, closeAt: math.NaN()}
	r.onArrival = b.arrival
	r.onBatchClose = b.close
	r.cancelPending = b.cancelPending
	return b
}

// open reports whether a window is currently accumulating orders.
func (b *batcher) open() bool { return !math.IsNaN(b.closeAt) }

func (b *batcher) arrival(ev event) {
	if !b.open() {
		b.openedAt = ev.at
		b.closeAt = ev.at + b.window
		b.cancelled = 0
		b.r.push(event{key: b.closeAt, kind: evBatchClose, at: b.closeAt})
	}
	b.batch = append(b.batch, ev.idx)
}

func (b *batcher) close(ev event) {
	stats := BatchStats{
		OpenedAt:  b.openedAt,
		ClosedAt:  ev.at,
		Submitted: len(b.batch) + b.cancelled,
		Cancelled: b.cancelled,
	}
	before := b.r.res.Rejected
	b.r.e.closeBatch(b.r, b.batch, ev.at, b.algo)
	stats.Rejected = b.r.res.Rejected - before
	stats.Matched = len(b.batch) - stats.Rejected
	b.batch = b.batch[:0]
	b.closeAt = math.NaN()
	if b.r.e.pricer != nil {
		b.r.e.pricer.Decay(b.r.e.pricerDecay)
	}
	if b.onClose != nil {
		b.onClose(stats)
	}
}

func (b *batcher) cancelPending(ti int) bool {
	for k, v := range b.batch {
		if v == ti {
			b.batch = append(b.batch[:k], b.batch[k+1:]...)
			b.cancelled++
			return true
		}
	}
	return false
}

// RunBatched simulates the day with batched dispatch: tasks are grouped
// into consecutive windows of `window` seconds by publish time; at each
// window's end the engine solves a maximum-weight task–driver assignment
// over the marginal values δ_{n,m} (Eq. 14), assigning at most one task
// per driver per batch. Margins ≤ 0 are never assigned (individual
// rationality), and tasks that found no driver are rejected — they are
// real-time orders and cannot wait for the next batch.
func (e *Engine) RunBatched(tasks []model.Task, window float64, algo BatchAlgorithm) Result {
	return e.RunBatchedScenario(tasks, nil, window, algo)
}

// RunBatchedScenario is RunBatched with dynamic market events (driver
// churn, rider cancellations) interleaved into the arrival stream, with
// the same event semantics as RunScenario.
func (e *Engine) RunBatchedScenario(tasks []model.Task, events []model.MarketEvent, window float64, algo BatchAlgorithm) Result {
	r := e.newEventRun(tasks, events, true)
	newBatcher(r, window, algo)
	for i := range tasks {
		r.add(event{key: tasks[i].Publish, kind: evArrival, seq: i, at: tasks[i].Publish, idx: i})
	}
	r.drain()
	e.settle(&r.res)
	return r.res
}

// closeBatch solves the maximum-weight assignment for one batch at its
// decision time and commits the matches, reporting each order's outcome
// through the run's decision hook when one is installed.
//
// The production path (closeBatchSparse) builds the window as a sparse
// candidate graph, splits it into connected task–driver components and
// solves each one independently with the sparse kernels of
// internal/matching, reusing pooled scratch so a steady-state window
// costs no allocations. The pre-decomposition dense path is retained as
// the differential oracle behind Engine.DenseWindows: both commit an
// exact maximum-weight assignment, bit-identical whenever the window's
// optimum is unique — the window differential tests sweep exactly that,
// and the per-window audit proves equal weight even on the degenerate
// windows where several exact optima tie bitwise (orders lying on a
// driver's route home cost zero margin for every such driver) and each
// path commits its own canonical optimum.
func (e *Engine) closeBatch(r *eventRun, batch []int, decisionAt float64, algo BatchAlgorithm) {
	if len(batch) == 0 {
		return // every order of the window was cancelled
	}
	if e.auditHook != nil {
		e.auditHook(r, batch, decisionAt)
	}
	if e.DenseWindows {
		e.closeBatchDense(r, batch, decisionAt, algo)
		return
	}
	e.closeBatchSparse(r, batch, decisionAt, algo)
}

// closeBatchDense is the pre-decomposition window solve — one dense
// Hungarian/Auction instance over the whole window — kept verbatim as
// the oracle the sparse path is differentially tested against.
//
// The weight matrix is compacted in two canonical steps. First, each
// row keeps only its top len(batch) candidates by (margin, then driver
// index): a maximum-weight matching never needs more — if an optimal
// matching used a column outside a row's top-k, at least one of the k
// higher-ranked columns is unmatched (only k−1 other rows exist) and
// an exchange to it preserves the total — so the optimum is exact, not
// approximated. Second, columns shrink to the union of the surviving
// drivers in ascending order. Carrying the whole fleet instead would
// make the Hungarian reduction O((batch+fleet)³) — hours at 50k
// drivers for a matrix whose decisive columns number a few dozen.
// Every candidate source produces the identical candidate sets (the
// differential contract) and both steps are deterministic, so results
// stay bit-identical across sources and shard counts.
func (e *Engine) closeBatchDense(r *eventRun, batch []int, decisionAt float64, algo BatchAlgorithm) {
	// Per-task candidate sets — pruned to the decisive top — and the
	// sorted union of their drivers.
	cands := make([][]Candidate, len(batch))
	inUnion := make(map[int]bool)
	var union []int
	for bi, ti := range batch {
		r.cands = e.source.Candidates(r.tasks[ti], decisionAt, r.cands[:0])
		cs := append([]Candidate(nil), r.cands...)
		if len(cs) > len(batch) {
			sort.Slice(cs, func(a, b int) bool {
				if cs[a].Margin != cs[b].Margin {
					return cs[a].Margin > cs[b].Margin
				}
				return cs[a].Driver < cs[b].Driver
			})
			cs = cs[:len(batch)]
		}
		cands[bi] = cs
		for _, c := range cs {
			if !inUnion[c.Driver] {
				inUnion[c.Driver] = true
				union = append(union, c.Driver)
			}
		}
	}
	sort.Ints(union)
	col := make(map[int]int, len(union)) // driver -> compact column
	for j, drv := range union {
		col[drv] = j
	}

	// Weight matrix: rows = batch tasks, cols = candidate drivers;
	// margins δ_{n,m} at decision time, Forbidden where infeasible.
	w := make([][]float64, len(batch))
	arrivals := make([][]float64, len(batch))
	for bi := range batch {
		w[bi] = make([]float64, len(union))
		arrivals[bi] = make([]float64, len(union))
		for j := range w[bi] {
			w[bi][j] = matching.Forbidden
		}
		for _, c := range cands[bi] {
			j := col[c.Driver]
			w[bi][j] = c.Margin
			arrivals[bi][j] = c.Arrival
		}
	}

	var asg matching.Assignment
	var err error
	switch algo {
	case BatchAuction:
		// ε bounds both the optimality gap (≤ rows·ε, negligible
		// against fares of currency-unit magnitude) and the worst-case
		// bid count (≤ cols·maxW/ε on exactly tied margins — drivers at
		// identical coordinates). A much smaller ε would buy no
		// meaningful accuracy while letting a degenerate window stall
		// the whole market for the length of its ε-step price war.
		asg, err = matching.Auction(w, 1e-4)
	default:
		asg, err = matching.Hungarian(w)
	}
	if err != nil {
		// The matrix is rectangular by construction.
		panic(fmt.Sprintf("sim: batch matching failed: %v", err))
	}

	for bi, ti := range batch {
		j := asg.ColOf[bi]
		if j < 0 {
			r.res.Rejected++
			if r.onDecided != nil {
				r.onDecided(TaskDecision{Task: ti, Driver: -1, At: decisionAt})
			}
			continue
		}
		drv := union[j]
		r.assignTask(ti, Candidate{Driver: drv, Arrival: arrivals[bi][j], Margin: w[bi][j]}, r.tasks[ti])
		if r.onDecided != nil {
			r.onDecided(TaskDecision{Task: ti, Assigned: true, Driver: drv, PickupAt: arrivals[bi][j], At: decisionAt})
		}
	}
}

// windowScratch is the batcher's pooled per-window working set. One
// instance lives on the engine and is reused across every window of
// every batched run, so the steady-state hot path — candidate arena,
// driver→column maps, the CSR edge arrays and the solver's own scratch
// — never touches the allocator. Driver-indexed arrays are epoch-
// stamped instead of cleared: bumping epoch invalidates the whole map
// in O(1), and entries for drivers added mid-stream (AddDriver) carry
// epoch 0, which is never current.
type windowScratch struct {
	arena  []Candidate // kept candidate edges, row spans concatenated
	rowPtr []int       // len batch+1: row spans into arena, reused as CSR RowPtr

	epoch    int
	colEpoch []int // driver -> epoch the driver was last seen
	colIdx   []int // driver -> compact column, valid when colEpoch is current
	union    []int // compact column -> driver, ascending

	col []int     // CSR column ids, parallel to arena
	w   []float64 // CSR margins
	arr []float64 // per-edge pickup arrival times

	solver matching.SparseSolver
}

// closeBatchSparse is the production window solve: the window as a
// sparse candidate graph, decomposed into connected components and
// solved exactly per component (concurrently across Engine.MatchWorkers
// goroutines when configured) by internal/matching's sparse kernels.
//
// The graph keeps the dense path's two canonical compactions — top
// len(batch) candidates per row by (margin, driver), columns renumbered
// over the ascending union of surviving drivers — and adds a third that
// is equally exact: candidates with non-positive margin are dropped
// while building the rows, because individual rationality already bars
// them from every assignment. Rows are laid out in batch order and each
// row's edges in ascending driver order, so the solve is deterministic
// and the commit loop below replays decisions in exactly the dense
// path's order — which is what keeps the two paths, all candidate
// sources, every shard count and every worker count bit-identical.
func (e *Engine) closeBatchSparse(r *eventRun, batch []int, decisionAt float64, algo BatchAlgorithm) {
	ws := e.winScratch
	if ws == nil {
		ws = &windowScratch{}
		e.winScratch = ws
	}
	for len(ws.colEpoch) < len(e.Drivers) {
		ws.colEpoch = append(ws.colEpoch, 0)
		ws.colIdx = append(ws.colIdx, 0)
	}
	ws.epoch++

	// Rows: query, filter to positive margins, prune to the decisive
	// top-k, restore ascending driver order within the row.
	ws.arena = ws.arena[:0]
	ws.rowPtr = append(ws.rowPtr[:0], 0)
	ws.union = ws.union[:0]
	for _, ti := range batch {
		r.cands = e.source.Candidates(r.tasks[ti], decisionAt, r.cands[:0])
		start := len(ws.arena)
		for _, c := range r.cands {
			if c.Margin > 0 {
				ws.arena = append(ws.arena, c)
			}
		}
		if row := ws.arena[start:]; len(row) > len(batch) {
			slices.SortFunc(row, func(a, b Candidate) int {
				if a.Margin != b.Margin {
					if a.Margin > b.Margin {
						return -1
					}
					return 1
				}
				return a.Driver - b.Driver
			})
			ws.arena = ws.arena[:start+len(batch)]
			slices.SortFunc(ws.arena[start:], func(a, b Candidate) int { return a.Driver - b.Driver })
		}
		for _, c := range ws.arena[start:] {
			if ws.colEpoch[c.Driver] != ws.epoch {
				ws.colEpoch[c.Driver] = ws.epoch
				ws.union = append(ws.union, c.Driver)
			}
		}
		ws.rowPtr = append(ws.rowPtr, len(ws.arena))
	}
	slices.Sort(ws.union)
	for j, drv := range ws.union {
		ws.colIdx[drv] = j
	}

	// CSR edge arrays over the compact column space. Ascending driver
	// order within a row maps to ascending column ids because the
	// renumbering is monotone.
	ws.col = ws.col[:0]
	ws.w = ws.w[:0]
	ws.arr = ws.arr[:0]
	for _, c := range ws.arena {
		ws.col = append(ws.col, ws.colIdx[c.Driver])
		ws.w = append(ws.w, c.Margin)
		ws.arr = append(ws.arr, c.Arrival)
	}
	sp := matching.Sparse{
		Rows: len(batch), Cols: len(ws.union),
		RowPtr: ws.rowPtr, Col: ws.col, W: ws.w,
	}

	kind, eps := matching.KindHungarian, 0.0
	if algo == BatchAuction {
		// Same ε as the dense oracle; see closeBatchDense.
		kind, eps = matching.KindAuction, 1e-4
	}
	workers := e.MatchWorkers
	if workers < 1 {
		workers = 1
	}
	colOf, _, _, err := ws.solver.Solve(sp, kind, eps, workers)
	if err != nil {
		// The CSR is well-formed by construction.
		panic(fmt.Sprintf("sim: batch matching failed: %v", err))
	}

	for bi, ti := range batch {
		j := colOf[bi]
		if j < 0 {
			r.res.Rejected++
			if r.onDecided != nil {
				r.onDecided(TaskDecision{Task: ti, Driver: -1, At: decisionAt})
			}
			continue
		}
		k := ws.rowPtr[bi]
		for ws.col[k] != j {
			k++
		}
		drv := ws.union[j]
		r.assignTask(ti, Candidate{Driver: drv, Arrival: ws.arr[k], Margin: ws.w[k]}, r.tasks[ti])
		if r.onDecided != nil {
			r.onDecided(TaskDecision{Task: ti, Assigned: true, Driver: drv, PickupAt: ws.arr[k], At: decisionAt})
		}
	}
}
