package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// These tests pin the semantics of the dynamic market events — the two
// workloads (driver churn, rider cancellation) the paper's static-fleet
// evaluation could not express.

func TestScenarioRetireStopsNewAssignments(t *testing.T) {
	// One driver, two well-separated tasks. Retiring her between the
	// two must reject the second.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	a := task(0, 1, 2, minutes(1), minutes(10), minutes(20), 10)
	b := task(1, 2, 3, minutes(30), minutes(60), minutes(80), 10)
	e := mustEngine(t, d)

	plain := e.Run([]model.Task{a, b}, pickFirst{})
	if plain.Served != 2 {
		t.Fatalf("baseline served %d, want 2", plain.Served)
	}
	res := e.RunScenario([]model.Task{a, b},
		[]model.MarketEvent{{At: minutes(25), Kind: model.EventRetire, Driver: 0}}, pickFirst{})
	if res.Served != 1 || res.Rejected != 1 {
		t.Fatalf("served=%d rejected=%d after retirement, want 1/1", res.Served, res.Rejected)
	}
	if _, ok := res.Assignment[0]; !ok {
		t.Fatal("task published before retirement should have been served")
	}
}

func TestScenarioJoinHidesDriverUntilAnnounced(t *testing.T) {
	// The information content of a join: an upfront-roster driver whose
	// shift starts at minute 10 can be pre-assigned a task published at
	// minute 1 (Algorithms 3–4 admit her — she departs at shift start),
	// but if she only joins at minute 10 the platform did not know her
	// when the task arrived, so the task is rejected. A task published
	// after the join is served either way.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: minutes(10), End: minutes(240)}}
	early := task(0, 1, 2, minutes(1), minutes(15), minutes(30), 10)
	// late's pickup deadline leaves room even behind early's deadline
	// lock (the driver is held until early's EndBy, minute 30).
	late := task(1, 1, 2, minutes(12), minutes(35), minutes(50), 10)
	join := []model.MarketEvent{{At: minutes(10), Kind: model.EventJoin, Driver: 0}}
	e := mustEngine(t, d)

	upfront := e.Run([]model.Task{early, late}, pickFirst{})
	if upfront.Served != 2 {
		t.Fatalf("upfront roster served %d, want 2 (pre-shift pre-assignment is legal)", upfront.Served)
	}
	joined := e.RunScenario([]model.Task{early, late}, join, pickFirst{})
	if _, ok := joined.Assignment[0]; ok {
		t.Fatal("task published before the join was pre-assigned to an unannounced driver")
	}
	if _, ok := joined.Assignment[1]; !ok {
		t.Fatal("task published after the join should be served")
	}
	if joined.Served != 1 || joined.Rejected != 1 {
		t.Fatalf("served=%d rejected=%d with mid-day join, want 1/1", joined.Served, joined.Rejected)
	}

	// For demand published after every join, the two rosters agree: the
	// same trace replayed with all-joins-at-start events and with the
	// shifts simply known upfront must match exactly once no task
	// precedes its candidate's announcement.
	cfg := trace.NewConfig(71, 100, 30, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	var joins []model.MarketEvent
	for i := range tr.Drivers {
		// Announce at time 0: same knowledge as an upfront roster.
		joins = append(joins, model.MarketEvent{At: 0, Kind: model.EventJoin, Driver: i})
	}
	eng, err := New(cfg.Market, tr.Drivers, 71)
	if err != nil {
		t.Fatal(err)
	}
	plain := eng.Run(tr.Tasks, diffNearest{})
	announced := eng.RunScenario(tr.Tasks, joins, diffNearest{})
	if !reflect.DeepEqual(plain, announced) {
		t.Fatal("join events at time zero changed the simulation result")
	}
}

func TestScenarioCancelBeforePickupRevokes(t *testing.T) {
	// Driver at km 0. Task from km 10: pickup arrival is minute 10, so
	// a cancellation at minute 5 lands mid-deadhead and revokes the
	// assignment: no revenue, no service cost, and the driver is free
	// again from her original position at the cancellation instant.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	a := task(0, 10, 12, minutes(0), minutes(15), minutes(30), 20)
	// A second task near the origin, published after the cancellation:
	// only servable if the driver was truly released at km 0.
	b := task(1, 1, 2, minutes(6), minutes(12), minutes(25), 10)
	e := mustEngine(t, d)

	res := e.RunScenario([]model.Task{a, b},
		[]model.MarketEvent{{At: minutes(5), Kind: model.EventCancel, Task: 0}}, pickFirst{})
	if res.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", res.Cancelled)
	}
	if res.Served != 1 {
		t.Fatalf("served = %d, want 1 (the follow-up task)", res.Served)
	}
	if _, ok := res.Assignment[0]; ok {
		t.Fatal("revoked task still in Assignment")
	}
	if drv, ok := res.Assignment[1]; !ok || drv != 0 {
		t.Fatal("released driver did not serve the follow-up task")
	}
	if got := res.DriverPaths[0]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("driver path = %v, want [1]", got)
	}
	// Accounting: only task b's economics. Legs 0→1 (1) + ride 1→2 (1)
	// + home 2→0 (2) = 4; baseline 0. Profit = 10 − 4 = 6.
	if math.Abs(res.Revenue-10) > 1e-9 {
		t.Fatalf("revenue = %.6f, want 10 (cancelled fare must not count)", res.Revenue)
	}
	if math.Abs(res.TotalProfit-6) > 1e-6 {
		t.Fatalf("profit = %.6f, want 6", res.TotalProfit)
	}
	if res.Served+res.Rejected+res.Cancelled != 2 {
		t.Fatalf("served+rejected+cancelled = %d, want 2", res.Served+res.Rejected+res.Cancelled)
	}
}

func TestScenarioCancelAfterPickupIsMoot(t *testing.T) {
	// Pickup at km 1 is reached at minute 1; a cancellation at minute 5
	// arrives with the rider already in the car — the ride proceeds.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	a := task(0, 1, 3, minutes(0), minutes(10), minutes(20), 10)
	e := mustEngine(t, d)
	res := e.RunScenario([]model.Task{a},
		[]model.MarketEvent{{At: minutes(5), Kind: model.EventCancel, Task: 0}}, pickFirst{})
	if res.Served != 1 || res.Cancelled != 0 {
		t.Fatalf("served=%d cancelled=%d, want 1/0 (too late to cancel)", res.Served, res.Cancelled)
	}
	if math.Abs(res.Revenue-10) > 1e-9 {
		t.Fatalf("revenue = %.6f, want 10", res.Revenue)
	}
}

func TestScenarioCancelOfRejectedTaskIsNoOp(t *testing.T) {
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	// Unreachable pickup: rejected at arrival.
	a := task(0, 30, 31, minutes(1), minutes(5), minutes(30), 10)
	e := mustEngine(t, d)
	res := e.RunScenario([]model.Task{a},
		[]model.MarketEvent{{At: minutes(3), Kind: model.EventCancel, Task: 0}}, pickFirst{})
	if res.Rejected != 1 || res.Cancelled != 0 {
		t.Fatalf("rejected=%d cancelled=%d, want 1/0", res.Rejected, res.Cancelled)
	}
}

func TestScenarioCancelPendingBatchedTask(t *testing.T) {
	// With a 10-minute batch window, a task cancelled inside the window
	// never reaches the matching: counted cancelled, not rejected.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	a := task(0, 1, 2, minutes(1), minutes(30), minutes(45), 10)
	e := mustEngine(t, d)
	res := e.RunBatchedScenario([]model.Task{a},
		[]model.MarketEvent{{At: minutes(5), Kind: model.EventCancel, Task: 0}},
		minutes(10), BatchHungarian)
	if res.Cancelled != 1 || res.Served != 0 || res.Rejected != 0 {
		t.Fatalf("cancelled=%d served=%d rejected=%d, want 1/0/0", res.Cancelled, res.Served, res.Rejected)
	}
}

// TestScenarioCancelKeepsBatchWindowsAnchored pins the batch-window
// invariant under cancellation: emptying an open batch must not leave a
// stale close behind, so later orders are decided at exactly the same
// instants whether the window's opener was cancelled or not.
func TestScenarioCancelKeepsBatchWindowsAnchored(t *testing.T) {
	// Two drivers so batch 2 has an unlocked candidate left.
	d := []model.Driver{
		{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)},
		{ID: 1, Source: at(1), Dest: at(1), Start: 0, End: minutes(240)},
	}
	// window 10 min. a opens batch 1 (closes at 10) and is cancelled at
	// minute 2, emptying it. b (publish 5) belongs to batch 1. c
	// (publish 11) opens batch 2, closing at minute 21 — with a stale
	// close left from the emptied batch, c would be decided early at
	// minute 15 instead. c's pickup deadline (minute 18) makes the
	// difference observable: a decision at 21 comes too late to serve.
	a := task(0, 1, 2, minutes(0), minutes(30), minutes(45), 10)
	b := task(1, 1, 2, minutes(5), minutes(30), minutes(45), 10)
	c := task(2, 1, 2, minutes(11), minutes(18), minutes(45), 10)
	cancelA := []model.MarketEvent{{At: minutes(2), Kind: model.EventCancel, Task: 0}}
	e := mustEngine(t, d)

	cancelled := e.RunBatchedScenario([]model.Task{a, b, c}, cancelA, minutes(10), BatchHungarian)
	uncancelled := e.RunBatchedScenario([]model.Task{a, b, c}, nil, minutes(10), BatchHungarian)

	for ti := 1; ti <= 2; ti++ {
		_, gc := cancelled.Assignment[ti]
		_, gu := uncancelled.Assignment[ti]
		if gc != gu {
			t.Fatalf("task %d: assigned=%v with opener cancelled, %v without — cancellation moved a batch window", ti, gc, gu)
		}
	}
	if cancelled.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", cancelled.Cancelled)
	}
	if _, ok := cancelled.Assignment[2]; ok {
		t.Fatal("task c decided before its batch's close (stale close fired early)")
	}
	if _, ok := cancelled.Assignment[1]; !ok {
		t.Fatal("task b should be matched at the original batch close")
	}
}

func TestScenarioInvalidEventsPanic(t *testing.T) {
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	a := task(0, 1, 2, minutes(1), minutes(10), minutes(20), 10)
	e := mustEngine(t, d)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range event driver index did not panic")
		}
	}()
	e.RunScenario([]model.Task{a},
		[]model.MarketEvent{{At: 0, Kind: model.EventRetire, Driver: 5}}, pickFirst{})
}

// recordingClock captures every advance to verify the drain is paced
// monotonically through event time.
type recordingClock struct {
	froms, tos []float64
}

func (c *recordingClock) Advance(from, to float64) {
	c.froms = append(c.froms, from)
	c.tos = append(c.tos, to)
}

func TestClockAdvancesMonotonically(t *testing.T) {
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	tasks := []model.Task{
		task(0, 1, 2, minutes(1), minutes(10), minutes(20), 10),
		task(1, 2, 3, minutes(30), minutes(60), minutes(80), 10),
		task(2, 3, 4, minutes(90), minutes(120), minutes(140), 10),
	}
	e := mustEngine(t, d)
	clk := &recordingClock{}
	e.Clock = clk
	e.Run(tasks, pickFirst{})
	if len(clk.tos) != 2 {
		t.Fatalf("clock advanced %d times across 3 distinct arrival times, want 2", len(clk.tos))
	}
	for i := range clk.tos {
		if clk.tos[i] <= clk.froms[i] {
			t.Fatalf("advance %d not forward: %g -> %g", i, clk.froms[i], clk.tos[i])
		}
		if i > 0 && clk.froms[i] != clk.tos[i-1] {
			t.Fatalf("advance %d does not resume where %d left off", i, i-1)
		}
	}
	// By-value runs are not time-ordered; the clock must stay silent.
	clk.froms, clk.tos = nil, nil
	e.RunByValue(tasks, pickFirst{})
	if len(clk.tos) != 0 {
		t.Fatalf("by-value run advanced the clock %d times", len(clk.tos))
	}
}

// TestScenarioChurnOpensCapacity is the workload-level sanity check:
// rising churn (earlier retirements) and cancellations must
// monotonically reduce served work on a supply-constrained market —
// the knob the static engine could never turn.
func TestScenarioChurnDegradesService(t *testing.T) {
	cfg := trace.NewConfig(77, 200, 25, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	e, err := New(cfg.Market, tr.Drivers, 77)
	if err != nil {
		t.Fatal(err)
	}
	base := e.Run(tr.Tasks, diffMaxMargin{})
	heavy := e.RunScenario(tr.Tasks, trace.WithChurn(tr, trace.ChurnConfig{
		Seed: 7, RetireFraction: 0.8, CancelFraction: 0.4,
	}), diffMaxMargin{})
	if heavy.Served >= base.Served {
		t.Fatalf("heavy churn served %d >= baseline %d", heavy.Served, base.Served)
	}
	if heavy.Cancelled == 0 {
		t.Fatal("heavy churn produced no cancellations")
	}
	if heavy.Served+heavy.Rejected+heavy.Cancelled != len(tr.Tasks) {
		t.Fatalf("task conservation violated: %d+%d+%d != %d",
			heavy.Served, heavy.Rejected, heavy.Cancelled, len(tr.Tasks))
	}
}
