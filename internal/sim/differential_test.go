package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/trace"
)

// Local stand-ins for the online package's dispatchers (which cannot be
// imported here without a cycle). They replicate the order- and
// RNG-sensitivity that makes candidate-set identity observable: maxMargin
// keeps the first best under strict comparison, nearest breaks arrival
// ties through the engine RNG, random consumes one draw per task.

type diffMaxMargin struct{}

func (diffMaxMargin) Name() string { return "maxMargin" }
func (diffMaxMargin) Choose(_ model.Task, cands []Candidate, _ *rand.Rand) int {
	best := -1
	for i, c := range cands {
		if best < 0 || c.Margin > cands[best].Margin {
			best = i
		}
	}
	if best >= 0 && cands[best].Margin <= 0 {
		return -1
	}
	return best
}

type diffNearest struct{}

func (diffNearest) Name() string { return "nearest" }
func (diffNearest) Choose(_ model.Task, cands []Candidate, rng *rand.Rand) int {
	best, ties := -1, 0
	for i, c := range cands {
		switch {
		case best < 0 || c.Arrival < cands[best].Arrival:
			best, ties = i, 1
		case c.Arrival == cands[best].Arrival:
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

type diffRandom struct{}

func (diffRandom) Name() string { return "random" }
func (diffRandom) Choose(_ model.Task, cands []Candidate, rng *rand.Rand) int {
	if len(cands) == 0 {
		return -1
	}
	return rng.Intn(len(cands))
}

// These differential tests are the correctness contract of the spatial
// candidate index: on randomized markets — varying grid granularity,
// driver counts, working models and both availability modes — the
// grid-indexed engine must produce the *identical* Result (serve counts,
// revenue, every per-driver assignment sequence, bit-for-bit floats) as
// the linear-scan engine, for every Run* entry point. The pre-filter may
// only ever shrink the work, never the candidate set.

// runPair runs the same simulation on a scan engine and a grid engine
// built from identical inputs and returns both results.
func runPair(t *testing.T, mkt model.Market, drivers []model.Driver, seed int64,
	realTime bool, grid *geo.Grid, run func(e *Engine) Result) (scan, indexed Result) {
	t.Helper()
	se, err := New(mkt, drivers, seed)
	if err != nil {
		t.Fatal(err)
	}
	se.RealTime = realTime
	ge, err := New(mkt, drivers, seed)
	if err != nil {
		t.Fatal(err)
	}
	ge.RealTime = realTime
	ge.SetCandidateSource(NewGridSource(grid))
	return run(se), run(ge)
}

func diffResults(t *testing.T, label string, scan, indexed Result) {
	t.Helper()
	if reflect.DeepEqual(scan, indexed) {
		return
	}
	t.Errorf("%s: grid-indexed result diverges from linear scan", label)
	if scan.Served != indexed.Served || scan.Rejected != indexed.Rejected {
		t.Errorf("%s: served/rejected %d/%d vs %d/%d",
			label, scan.Served, scan.Rejected, indexed.Served, indexed.Rejected)
	}
	if scan.Revenue != indexed.Revenue || scan.TotalProfit != indexed.TotalProfit {
		t.Errorf("%s: revenue/profit %.9f/%.9f vs %.9f/%.9f",
			label, scan.Revenue, scan.TotalProfit, indexed.Revenue, indexed.TotalProfit)
	}
	for ti, d := range scan.Assignment {
		if indexed.Assignment[ti] != d {
			t.Errorf("%s: task %d assigned to driver %d by scan, %d by index",
				label, ti, d, indexed.Assignment[ti])
		}
	}
	for ti := range indexed.Assignment {
		if _, ok := scan.Assignment[ti]; !ok {
			t.Errorf("%s: task %d served only by the indexed engine", label, ti)
		}
	}
}

// TestGridSourceMatchesScan sweeps randomized markets and asserts
// identical results for instant dispatch under both heuristics.
func TestGridSourceMatchesScan(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	grids := map[string]func() *geo.Grid{
		"auto":   func() *geo.Grid { return nil },
		"coarse": func() *geo.Grid { return geo.NewGrid(geo.PortoBox, 2, 3) },
		"fine":   func() *geo.Grid { return geo.NewGrid(geo.PortoBox, 48, 48) },
	}
	dispatchers := []Dispatcher{diffMaxMargin{}, diffNearest{}, diffRandom{}}

	for _, seed := range seeds {
		for _, nDrivers := range []int{3, 25, 120} {
			for _, dm := range []trace.DriverModel{trace.Hitchhiking, trace.HomeWorkHome} {
				cfg := trace.NewConfig(seed, 150, nDrivers, dm)
				tr := trace.NewGenerator(cfg).Generate(nil)
				for _, realTime := range []bool{false, true} {
					for gname, mk := range grids {
						for _, d := range dispatchers {
							label := fmt.Sprintf("seed=%d n=%d model=%v rt=%v grid=%s disp=%s",
								seed, nDrivers, dm, realTime, gname, d.Name())
							scan, indexed := runPair(t, cfg.Market, tr.Drivers, seed, realTime, mk(),
								func(e *Engine) Result { return e.Run(tr.Tasks, d) })
							diffResults(t, label, scan, indexed)
						}
					}
				}
			}
		}
	}
}

// TestGridSourceMatchesScanByValueAndBatched covers the remaining entry
// points: descending-price processing and batched matching (whose
// candidate queries happen at the batch close, after the publish time).
func TestGridSourceMatchesScanByValueAndBatched(t *testing.T) {
	seeds := []int64{11, 12, 13, 14}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		cfg := trace.NewConfig(seed, 120, 40, trace.Hitchhiking)
		cfg.PickupWindowMin = 8 * 60 // give batches room to form
		cfg.PickupWindowMax = 16 * 60
		tr := trace.NewGenerator(cfg).Generate(nil)

		scan, indexed := runPair(t, cfg.Market, tr.Drivers, seed, false, nil,
			func(e *Engine) Result { return e.RunByValue(tr.Tasks, diffMaxMargin{}) })
		diffResults(t, fmt.Sprintf("seed=%d by-value", seed), scan, indexed)

		for _, algo := range []BatchAlgorithm{BatchHungarian, BatchAuction} {
			scan, indexed = runPair(t, cfg.Market, tr.Drivers, seed, false, nil,
				func(e *Engine) Result { return e.RunBatched(tr.Tasks, 30, algo) })
			diffResults(t, fmt.Sprintf("seed=%d %v", seed, algo), scan, indexed)
		}
	}
}

// TestGridSourceMatchesScanWithSpeedOverrides exercises fleets with
// per-driver speeds: the reachability radius must follow the fastest
// driver, not the market default.
func TestGridSourceMatchesScanWithSpeedOverrides(t *testing.T) {
	for _, seed := range []int64{21, 22, 23} {
		cfg := trace.NewConfig(seed, 120, 60, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		for i := range tr.Drivers {
			switch i % 3 {
			case 0:
				tr.Drivers[i].SpeedKmh = 55 // faster than the 30 km/h market
			case 1:
				tr.Drivers[i].SpeedKmh = 18
			}
		}
		scan, indexed := runPair(t, cfg.Market, tr.Drivers, seed, false, nil,
			func(e *Engine) Result { return e.Run(tr.Tasks, diffMaxMargin{}) })
		diffResults(t, fmt.Sprintf("seed=%d speed-overrides", seed), scan, indexed)
	}
}

// runWithSource runs one simulation on a fresh engine bound to src.
func runWithSource(t *testing.T, mkt model.Market, drivers []model.Driver, seed int64,
	realTime bool, src CandidateSource, run func(e *Engine) Result) Result {
	t.Helper()
	e, err := New(mkt, drivers, seed)
	if err != nil {
		t.Fatal(err)
	}
	e.RealTime = realTime
	if src != nil {
		e.SetCandidateSource(src)
	}
	return run(e)
}

// shardCounts is the sweep the sharded differential tests run: 1 must
// reproduce the sequential engine, and every higher count must too.
var shardCounts = []int{1, 2, 4, 8}

// TestShardedSourceMatchesScan is the determinism contract of the
// zone-sharded engine: for shard counts 1, 2, 4 and 8, across
// randomized markets, working models, availability modes and
// dispatchers, the sharded engine's Result must be reflect.DeepEqual-
// (and therefore bit-)identical to the sequential linear-scan engine.
func TestShardedSourceMatchesScan(t *testing.T) {
	seeds := []int64{31, 32, 33, 34, 35}
	if testing.Short() {
		seeds = seeds[:2]
	}
	dispatchers := []Dispatcher{diffMaxMargin{}, diffNearest{}, diffRandom{}}
	for _, seed := range seeds {
		for _, nDrivers := range []int{3, 40, 150} {
			for _, dm := range []trace.DriverModel{trace.Hitchhiking, trace.HomeWorkHome} {
				cfg := trace.NewConfig(seed, 150, nDrivers, dm)
				tr := trace.NewGenerator(cfg).Generate(nil)
				for _, realTime := range []bool{false, true} {
					for _, d := range dispatchers {
						run := func(e *Engine) Result { return e.Run(tr.Tasks, d) }
						scan := runWithSource(t, cfg.Market, tr.Drivers, seed, realTime, nil, run)
						for _, shards := range shardCounts {
							label := fmt.Sprintf("seed=%d n=%d model=%v rt=%v shards=%d disp=%s",
								seed, nDrivers, dm, realTime, shards, d.Name())
							sharded := runWithSource(t, cfg.Market, tr.Drivers, seed, realTime,
								NewShardedSource(shards), run)
							diffResults(t, label, scan, sharded)
						}
					}
				}
			}
		}
	}
}

// TestShardedSourceMatchesScanAllEntryPoints covers the remaining Run*
// entry points — by-value ordering, both batched solvers, and
// rolling-horizon replanning — across the shard sweep.
func TestShardedSourceMatchesScanAllEntryPoints(t *testing.T) {
	seeds := []int64{41, 42, 43}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := trace.NewConfig(seed, 120, 50, trace.Hitchhiking)
		cfg.PickupWindowMin = 8 * 60 // give batches room to form
		cfg.PickupWindowMax = 16 * 60
		tr := trace.NewGenerator(cfg).Generate(nil)

		runs := map[string]func(e *Engine) Result{
			"by-value": func(e *Engine) Result { return e.RunByValue(tr.Tasks, diffMaxMargin{}) },
			"batched-hungarian": func(e *Engine) Result {
				return e.RunBatched(tr.Tasks, 30, BatchHungarian)
			},
			"batched-auction": func(e *Engine) Result {
				return e.RunBatched(tr.Tasks, 30, BatchAuction)
			},
			"replan": func(e *Engine) Result { return e.RunReplan(tr.Tasks, 60) },
		}
		for name, run := range runs {
			scan := runWithSource(t, cfg.Market, tr.Drivers, seed, false, nil, run)
			for _, shards := range shardCounts {
				sharded := runWithSource(t, cfg.Market, tr.Drivers, seed, false,
					NewShardedSource(shards), run)
				diffResults(t, fmt.Sprintf("seed=%d %s shards=%d", seed, name, shards), scan, sharded)
			}
		}
	}
}

// TestShardedScenarioMatchesScan adds the dynamic workloads — driver
// churn and rider cancellations — on top of the shard sweep: the
// sequential scan engine and every sharded engine must agree on the
// full Result including cancellation accounting, for instant, batched
// and replanned dispatch.
func TestShardedScenarioMatchesScan(t *testing.T) {
	seeds := []int64{51, 52, 53, 54}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		cfg := trace.NewConfig(seed, 150, 60, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		events := trace.WithChurn(tr, trace.ChurnConfig{
			Seed: seed + 100, JoinFraction: 0.3, RetireFraction: 0.3, CancelFraction: 0.25,
		})
		if len(events) == 0 {
			t.Fatalf("seed=%d: churn produced no events", seed)
		}
		runs := map[string]func(e *Engine) Result{
			"instant": func(e *Engine) Result { return e.RunScenario(tr.Tasks, events, diffNearest{}) },
			"batched": func(e *Engine) Result {
				return e.RunBatchedScenario(tr.Tasks, events, 45, BatchHungarian)
			},
			"replan": func(e *Engine) Result { return e.RunReplanScenario(tr.Tasks, events, 90) },
		}
		for name, run := range runs {
			scan := runWithSource(t, cfg.Market, tr.Drivers, seed, false, nil, run)
			grid := runWithSource(t, cfg.Market, tr.Drivers, seed, false, NewGridSource(nil), run)
			diffResults(t, fmt.Sprintf("seed=%d scenario=%s grid", seed, name), scan, grid)
			for _, shards := range shardCounts {
				sharded := runWithSource(t, cfg.Market, tr.Drivers, seed, false,
					NewShardedSource(shards), run)
				diffResults(t, fmt.Sprintf("seed=%d scenario=%s shards=%d", seed, name, shards), scan, sharded)
				if sharded.Cancelled != scan.Cancelled {
					t.Errorf("seed=%d scenario=%s shards=%d: cancelled %d vs scan %d",
						seed, name, shards, sharded.Cancelled, scan.Cancelled)
				}
			}
		}
	}
}

// TestShardedSourceSpeedOverridesAndSerial: per-driver speeds stretch
// the reachability radius past zone borders (candidate borrowing), and
// the Serial ablation knob must not change results either.
func TestShardedSourceSpeedOverrides(t *testing.T) {
	for _, seed := range []int64{61, 62} {
		cfg := trace.NewConfig(seed, 120, 60, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		for i := range tr.Drivers {
			switch i % 3 {
			case 0:
				tr.Drivers[i].SpeedKmh = 55
			case 1:
				tr.Drivers[i].SpeedKmh = 18
			}
		}
		run := func(e *Engine) Result { return e.Run(tr.Tasks, diffMaxMargin{}) }
		scan := runWithSource(t, cfg.Market, tr.Drivers, seed, false, nil, run)
		for _, shards := range shardCounts {
			for _, serial := range []bool{false, true} {
				src := NewShardedSource(shards)
				src.Serial = serial
				sharded := runWithSource(t, cfg.Market, tr.Drivers, seed, false, src, run)
				diffResults(t, fmt.Sprintf("seed=%d speed-overrides shards=%d serial=%v", seed, shards, serial), scan, sharded)
			}
		}
	}
}

// TestGridSourcePanicsOnFarGrid: a static grid whose latitude band is
// nowhere near the fleet would silently void the conservative
// pre-filtering guarantee; Bind must reject it loudly instead.
func TestGridSourcePanicsOnFarGrid(t *testing.T) {
	cfg := trace.NewConfig(41, 10, 5, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	e, err := New(cfg.Market, tr.Drivers, 41)
	if err != nil {
		t.Fatal(err)
	}
	equatorial := geo.NewGrid(geo.BoundingBox{MinLat: -1, MinLon: -8.7, MaxLat: 1, MaxLon: -8.5}, 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("binding an equatorial grid to a Porto fleet did not panic")
		}
	}()
	e.SetCandidateSource(NewGridSource(equatorial))
}

// TestSetCandidateSourceNilRestoresScan guards the seam's default.
func TestSetCandidateSourceNilRestoresScan(t *testing.T) {
	cfg := trace.NewConfig(31, 60, 10, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	e, err := New(cfg.Market, tr.Drivers, 31)
	if err != nil {
		t.Fatal(err)
	}
	e.SetCandidateSource(NewGridSource(nil))
	e.SetCandidateSource(nil)
	if _, ok := e.source.(*ScanSource); !ok {
		t.Fatalf("source after SetCandidateSource(nil) is %T, want *ScanSource", e.source)
	}
	res := e.Run(tr.Tasks, diffMaxMargin{})
	if res.Served+res.Rejected != len(tr.Tasks) {
		t.Fatalf("run after source swap lost tasks: %d+%d != %d", res.Served, res.Rejected, len(tr.Tasks))
	}
}
