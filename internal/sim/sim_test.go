package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
)

// lineMkt: 60 km/h, 1 unit/km on a flat line (see taskmap tests).
func lineMkt() model.Market {
	return model.Market{Dist: geo.Equirectangular, SpeedKmh: 60, GasPerKm: 1}
}

func at(km float64) geo.Point {
	return geo.Offset(geo.Point{Lat: 41.15, Lon: -8.61}, math.Pi/2, km)
}

func minutes(m float64) float64 { return m * 60 }

// pickFirst deterministically takes the first candidate.
type pickFirst struct{}

func (pickFirst) Name() string { return "first" }
func (pickFirst) Choose(_ model.Task, cands []Candidate, _ *rand.Rand) int {
	if len(cands) == 0 {
		return -1
	}
	return 0
}

// rejectAll declines everything.
type rejectAll struct{}

func (rejectAll) Name() string                                         { return "reject" }
func (rejectAll) Choose(_ model.Task, _ []Candidate, _ *rand.Rand) int { return -1 }

func mustEngine(t *testing.T, drivers []model.Driver) *Engine {
	t.Helper()
	e, err := New(lineMkt(), drivers, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func task(id int, srcKm, dstKm, publish, startBy, endBy, price float64) model.Task {
	return model.Task{
		ID: id, Publish: publish,
		Source: at(srcKm), Dest: at(dstKm),
		StartBy: startBy, EndBy: endBy,
		Price: price, WTP: price,
	}
}

func TestSingleTaskServed(t *testing.T) {
	// Driver at km 0; task from km 1 to km 3 (2 km ride).
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(120)}}
	tk := task(0, 1, 3, minutes(1), minutes(10), minutes(20), 10)
	e := mustEngine(t, d)
	res := e.Run([]model.Task{tk}, pickFirst{})
	if res.Served != 1 || res.Rejected != 0 {
		t.Fatalf("served=%d rejected=%d, want 1, 0", res.Served, res.Rejected)
	}
	// Profit: price 10 − excess cost. Legs: 0→1 (1) + 1→3 (2) + 3→0 (3)
	// = 6; baseline 0→0 = 0. Profit = 10 − 6 = 4.
	if math.Abs(res.TotalProfit-4) > 1e-6 {
		t.Fatalf("profit = %.6f, want 4", res.TotalProfit)
	}
	if math.Abs(res.Revenue-10) > 1e-9 {
		t.Fatalf("revenue = %.6f, want 10", res.Revenue)
	}
}

func TestUnreachablePickupRejected(t *testing.T) {
	// Pickup 30 km away with a 10-minute deadline: unreachable.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	tk := task(0, 30, 31, minutes(1), minutes(10), minutes(30), 10)
	e := mustEngine(t, d)
	res := e.Run([]model.Task{tk}, pickFirst{})
	if res.Served != 0 || res.Rejected != 1 {
		t.Fatalf("served=%d rejected=%d, want 0, 1", res.Served, res.Rejected)
	}
}

func TestReturnHomeEnforced(t *testing.T) {
	// Shift ends at minute 30. Task dropping at km 20 at ~min 21 leaves
	// no time for the 20-minute return → reject.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(30)}}
	tk := task(0, 1, 20, minutes(1), minutes(2), minutes(25), 50)
	e := mustEngine(t, d)
	res := e.Run([]model.Task{tk}, pickFirst{})
	if res.Served != 0 {
		t.Fatalf("task served despite violating the driver's end-of-shift return")
	}
}

func TestShiftNotStartedYet(t *testing.T) {
	// Driver starts at minute 60; a task published at minute 5 with
	// pickup deadline minute 70 is still reachable (depart at 60).
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: minutes(60), End: minutes(240)}}
	ok := task(0, 5, 6, minutes(5), minutes(70), minutes(90), 10)
	e := mustEngine(t, d)
	if res := e.Run([]model.Task{ok}, pickFirst{}); res.Served != 1 {
		t.Fatal("task after shift start should be served")
	}
	// Same task but pickup deadline minute 30 < shift start + travel.
	tooEarly := task(0, 5, 6, minutes(5), minutes(30), minutes(90), 10)
	if res := e.Run([]model.Task{tooEarly}, pickFirst{}); res.Served != 0 {
		t.Fatal("task before shift start should be rejected")
	}
}

func TestLockedDriverQueuesNextTask(t *testing.T) {
	// Task A occupies the driver until ~minute 11; task B published at
	// minute 5 (while locked) with pickup deadline far enough out must
	// still be assignable using the driver's post-A position and time.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	a := task(0, 0, 10, minutes(0), minutes(1), minutes(15), 20)
	b := task(1, 10, 12, minutes(5), minutes(30), minutes(45), 10)
	e := mustEngine(t, d)
	res := e.Run([]model.Task{a, b}, pickFirst{})
	if res.Served != 2 {
		t.Fatalf("served=%d, want 2 (locked driver must be a candidate via post-finish state)", res.Served)
	}
	if len(res.DriverPaths[0]) != 2 {
		t.Fatalf("driver path = %v, want both tasks", res.DriverPaths[0])
	}
}

func TestRealTimeModeBeatsDeadlineMode(t *testing.T) {
	// Task A finishes (really) at minute ~11 though its deadline is 60.
	// Task B's pickup deadline (minute 30) is only reachable using the
	// real finish time (§III-B note). Deadline mode — the paper's
	// Algorithm 3/4 candidate rule — must hold the driver until 60 and
	// reject B; real-time mode serves both.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	a := task(0, 0, 10, minutes(0), minutes(1), minutes(60), 20)
	b := task(1, 10, 11, minutes(5), minutes(30), minutes(70), 10)

	e := mustEngine(t, d)
	if res := e.Run([]model.Task{a, b}, pickFirst{}); res.Served != 1 {
		t.Fatalf("deadline mode served %d, want 1 (driver locked until t̄+)", res.Served)
	}
	e.RealTime = true
	if res := e.Run([]model.Task{a, b}, pickFirst{}); res.Served != 2 {
		t.Fatalf("real-time mode served %d, want 2 via early finish", res.Served)
	}
}

func TestDropoffDeadlineEnforced(t *testing.T) {
	// Pickup reachable, but arrival+service exceeds EndBy → reject.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	// Publish 0, pickup by minute 10 at km 5 (arrive min 5), ride 10 km
	// = 10 min, but EndBy at minute 12 < 15.
	tk := task(0, 5, 15, 0, minutes(10), minutes(12), 10)
	e := mustEngine(t, d)
	if res := e.Run([]model.Task{tk}, pickFirst{}); res.Served != 0 {
		t.Fatal("task violating dropoff deadline should be rejected")
	}
}

func TestRejectAllDispatcher(t *testing.T) {
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	tasks := []model.Task{
		task(0, 1, 2, minutes(1), minutes(10), minutes(20), 5),
		task(1, 1, 2, minutes(2), minutes(12), minutes(22), 5),
	}
	e := mustEngine(t, d)
	res := e.Run(tasks, rejectAll{})
	if res.Served != 0 || res.Rejected != 2 {
		t.Fatalf("served=%d rejected=%d, want 0, 2", res.Served, res.Rejected)
	}
	if res.TotalProfit != 0 || res.Revenue != 0 {
		t.Fatalf("profit=%.3f revenue=%.3f, want 0, 0", res.TotalProfit, res.Revenue)
	}
}

func TestMarginFormula(t *testing.T) {
	// Check δ_{n,m} (Eq. 14) against hand arithmetic. Driver idle at km
	// 0, home at km 0. Task: km 2 → km 5, price 10.
	// δ = 10 − (deadhead 2 + service 3 + newHome 5 − oldHome 0) = 0.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	tk := task(0, 2, 5, minutes(1), minutes(30), minutes(60), 10)
	e := mustEngine(t, d)
	var got float64
	probe := dispatcherFunc(func(_ model.Task, cands []Candidate, _ *rand.Rand) int {
		if len(cands) != 1 {
			t.Fatalf("candidates = %d, want 1", len(cands))
		}
		got = cands[0].Margin
		return -1
	})
	e.Run([]model.Task{tk}, probe)
	if math.Abs(got-0) > 1e-6 {
		t.Fatalf("margin = %.6f, want 0", got)
	}
}

// dispatcherFunc adapts a func to Dispatcher for tests.
type dispatcherFunc func(model.Task, []Candidate, *rand.Rand) int

func (dispatcherFunc) Name() string { return "func" }
func (f dispatcherFunc) Choose(t model.Task, c []Candidate, r *rand.Rand) int {
	return f(t, c, r)
}

func TestArrivalComputation(t *testing.T) {
	// Driver at km 0, task pickup at km 6 published at minute 2:
	// arrival = 2 + 6 = minute 8.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	tk := task(0, 6, 7, minutes(2), minutes(30), minutes(60), 10)
	e := mustEngine(t, d)
	var arr float64
	probe := dispatcherFunc(func(_ model.Task, cands []Candidate, _ *rand.Rand) int {
		arr = cands[0].Arrival
		return -1
	})
	e.Run([]model.Task{tk}, probe)
	if math.Abs(arr-minutes(8)) > 1 {
		t.Fatalf("arrival = %.1f s, want ≈ %1.f s", arr, minutes(8))
	}
}

func TestProfitAccountingConservation(t *testing.T) {
	// TotalProfit must equal Σ per-driver profits, and Revenue the sum
	// of served prices.
	d := []model.Driver{
		{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(480)},
		{ID: 1, Source: at(10), Dest: at(10), Start: 0, End: minutes(480)},
	}
	var tasks []model.Task
	for i := 0; i < 12; i++ {
		p := float64(5 + i%3)
		start := minutes(float64(10 + 15*i))
		tasks = append(tasks, task(i, float64(i%8), float64((i+3)%8), start-minutes(5), start, start+minutes(20), p))
	}
	e := mustEngine(t, d)
	res := e.Run(tasks, pickFirst{})

	var profitSum, revSum float64
	for i := range d {
		profitSum += res.PerDriverProfit[i]
		revSum += res.PerDriverRevenue[i]
	}
	if math.Abs(profitSum-res.TotalProfit) > 1e-9 {
		t.Fatalf("per-driver profits sum %.6f != total %.6f", profitSum, res.TotalProfit)
	}
	var priceSum float64
	for ti := range res.Assignment {
		priceSum += tasks[ti].Price
	}
	if math.Abs(priceSum-res.Revenue) > 1e-9 {
		t.Fatalf("assigned prices sum %.6f != revenue %.6f", priceSum, res.Revenue)
	}
	if res.Served+res.Rejected != len(tasks) {
		t.Fatalf("served %d + rejected %d != %d tasks", res.Served, res.Rejected, len(tasks))
	}
}

func TestRunByValueOrdersDescendingPrice(t *testing.T) {
	// With one driver and two overlapping tasks only one can be served;
	// by-value processing must pick the pricier one.
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	cheap := task(0, 1, 2, minutes(1), minutes(10), minutes(20), 5)
	rich := task(1, 1, 2, minutes(2), minutes(10), minutes(20), 50)
	e := mustEngine(t, d)

	inOrder := e.Run([]model.Task{cheap, rich}, pickFirst{})
	if _, ok := inOrder.Assignment[0]; !ok {
		t.Fatal("publish order should serve the earlier (cheap) task first")
	}
	byValue := e.RunByValue([]model.Task{cheap, rich}, pickFirst{})
	if _, ok := byValue.Assignment[1]; !ok {
		t.Fatal("by-value order should serve the expensive task first")
	}
}

func TestResultRates(t *testing.T) {
	r := Result{Served: 3, Rejected: 1,
		PerDriverRevenue: []float64{10, 0}, PerDriverTasks: []int{3, 0}}
	if got := r.ServeRate(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ServeRate = %g, want 0.75", got)
	}
	if got := r.AvgRevenuePerDriver(); math.Abs(got-5) > 1e-12 {
		t.Errorf("AvgRevenuePerDriver = %g, want 5", got)
	}
	if got := r.AvgTasksPerDriver(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("AvgTasksPerDriver = %g, want 1.5", got)
	}
	var empty Result
	if empty.ServeRate() != 0 || empty.AvgRevenuePerDriver() != 0 || empty.AvgTasksPerDriver() != 0 {
		t.Error("zero Result should report zero rates")
	}
}

func TestEngineRejectsInvalidDrivers(t *testing.T) {
	bad := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 10, End: 5}}
	if _, err := New(lineMkt(), bad, 1); err == nil {
		t.Fatal("New should reject start ≥ end")
	}
}

func TestEngineResetBetweenRuns(t *testing.T) {
	// Two identical runs must give identical results (state resets).
	d := []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)}}
	tasks := []model.Task{
		task(0, 1, 3, minutes(1), minutes(10), minutes(20), 10),
		task(1, 3, 5, minutes(2), minutes(40), minutes(60), 10),
	}
	e := mustEngine(t, d)
	r1 := e.Run(tasks, pickFirst{})
	r2 := e.Run(tasks, pickFirst{})
	if r1.Served != r2.Served || math.Abs(r1.TotalProfit-r2.TotalProfit) > 1e-12 {
		t.Fatalf("runs differ: %+v vs %+v", r1.Served, r2.Served)
	}
}
