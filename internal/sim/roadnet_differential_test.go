package sim

import (
	"reflect"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/trace"
)

// TestRoadNetworkMetricDifferential is the network-metric property
// wall: with Market.Dist swapped from crow-fly to the roadnet router,
// an engine day must stay bit-identical across ScanSource, GridSource
// and ShardedSource × shards {1,2,4} × match workers {1,2,4} × routing
// kernel (CH vs ALT) × batched distance hook (installed vs absent),
// under churn and cancellations, for both instant and batched dispatch.
// The router's shared cache is exercised concurrently by the match
// workers, so this doubles as a determinism check on the singleflight
// path; the batch-hook dimension pins the one-to-many scoring path to
// the per-pair loop it replaces.
func TestRoadNetworkMetricDifferential(t *testing.T) {
	rcfg := roadnet.DefaultGridConfig()
	rcfg.Rows, rcfg.Cols = 12, 14 // smaller graph, same structure — keeps the sweep fast
	g, err := roadnet.GenerateGrid(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	chRouter := roadnet.NewRouter(g, rcfg.Box, 8)
	altRouter := roadnet.NewRouterAlgo(g, rcfg.Box, 8, roadnet.AlgoALT)

	// Generate the trace under the network metric so deadlines and
	// prices are feasible for the distances the engine will see.
	cfg := trace.NewConfig(59, 140, 110, trace.Hitchhiking)
	cfg.Market.Dist = chRouter.Dist
	tr := trace.NewGenerator(cfg).Generate(nil)
	events := trace.WithChurn(tr, trace.ChurnConfig{
		Seed: 11, JoinFraction: 0.2, RetireFraction: 0.15, CancelFraction: 0.2,
	})

	type variant struct {
		name    string
		src     func() CandidateSource
		shards  int
		workers int
		alt     bool // route with the ALT kernel instead of CH
		batch   bool // install the one-to-many scoring hook
	}
	var variants []variant
	variants = append(variants, variant{"scan", func() CandidateSource { return nil }, 0, 1, false, false})
	variants = append(variants, variant{"scan", func() CandidateSource { return nil }, 0, 1, false, true})
	variants = append(variants, variant{"scan", func() CandidateSource { return nil }, 0, 1, true, false})
	variants = append(variants, variant{"grid", func() CandidateSource { return NewGridSource(nil) }, 0, 2, false, true})
	variants = append(variants, variant{"grid", func() CandidateSource { return NewGridSource(nil) }, 0, 2, true, false})
	for _, s := range []int{1, 2, 4} {
		for _, w := range []int{1, 2, 4} {
			s, w := s, w
			variants = append(variants, variant{
				"sharded", func() CandidateSource { return NewShardedSource(s) }, s, w, false, true,
			})
			variants = append(variants, variant{
				"sharded", func() CandidateSource { return NewShardedSource(s) }, s, w, true, false,
			})
		}
	}

	run := func(v variant, batched bool) Result {
		market := cfg.Market
		router := chRouter
		if v.alt {
			router = altRouter
		}
		market.Dist = router.Dist
		if v.batch {
			market.Batch = router
		}
		eng, err := New(market, tr.Drivers, 1)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetCandidateSource(v.src())
		eng.MatchWorkers = v.workers
		if batched {
			return eng.RunBatchedScenario(tr.Tasks, events, 60, BatchHungarian)
		}
		return eng.RunScenario(tr.Tasks, events, diffMaxMargin{})
	}

	for _, batched := range []bool{false, true} {
		want := run(variants[0], batched)
		if want.Served == 0 {
			t.Fatalf("degenerate baseline (batched=%v): nothing served under network metric", batched)
		}
		for _, v := range variants[1:] {
			if got := run(v, batched); !reflect.DeepEqual(want, got) {
				t.Errorf("batched=%v: %s(shards=%d,workers=%d,alt=%v,batch=%v) diverges from scan under network metric: served %d vs %d, revenue %.9f vs %.9f — this is a bug",
					batched, v.name, v.shards, v.workers, v.alt, v.batch, got.Served, want.Served, got.Revenue, want.Revenue)
			}
		}
	}

	if hits, misses, _ := chRouter.CacheStats(); hits == 0 || misses == 0 {
		t.Errorf("route cache never exercised (hits=%d misses=%d); the network metric was not on the hot path", hits, misses)
	}
}

// TestRoadNetworkMetricChangesOutcome is the companion sanity check:
// the network metric must actually matter. A day dispatched with
// network distances must differ from the same day under crow-fly —
// otherwise the rail is wired to a no-op.
func TestRoadNetworkMetricChangesOutcome(t *testing.T) {
	rcfg := roadnet.DefaultGridConfig()
	rcfg.Rows, rcfg.Cols = 12, 14
	g, err := roadnet.GenerateGrid(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	router := roadnet.NewRouter(g, rcfg.Box, 8)

	crowCfg := trace.NewConfig(61, 120, 90, trace.Hitchhiking)
	tr := trace.NewGenerator(crowCfg).Generate(nil)

	crowEng, err := New(crowCfg.Market, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	crow := crowEng.RunBatched(tr.Tasks, 60, BatchHungarian)

	netMarket := crowCfg.Market
	netMarket.Dist = router.Dist
	netEng, err := New(netMarket, tr.Drivers, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := netEng.RunBatched(tr.Tasks, 60, BatchHungarian)

	if crow.Served == 0 || net.Served == 0 {
		t.Fatalf("degenerate day: crow served %d, net served %d", crow.Served, net.Served)
	}
	if reflect.DeepEqual(crow, net) {
		t.Fatal("network metric produced a bit-identical day to crow-fly; the distance function is not reaching dispatch")
	}
}
