package sim

import (
	"repro/internal/geo"
	"repro/internal/model"
)

// This file is the engine side of batched candidate scoring. Scoring a
// task against k drivers needs three distances per driver, and two of
// them share a task endpoint across the whole set: location→pickup
// (shared destination) and dropoff→home (shared origin). When the
// market installs a model.DistanceBatcher (dispatch wires the road
// router in), those two become one one-to-many batch each —
// roadnet.Router answers a batch from a single shared half-search —
// instead of 2k point-to-point queries. The batcher contract demands
// bitwise-equal distances, and the scoring stages below are the same
// pickupArrival/finishCandidate pair the per-pair path runs, so batched
// and looped scoring are value-identical (the roadnet differential
// tests replay full traces both ways to prove it).

// minDistBatch is the smallest candidate set routed through the
// batcher: below it, the shared half-search cannot amortize and the
// per-pair loop is at least as fast.
const minDistBatch = 8

// distBatch is one scoring pass's scratch. Each caller that may score
// concurrently owns one (the engine for the linear scan, each
// GridSource, each ShardedSource zone).
type distBatch struct {
	ids   []int       // surviving driver indices
	pts   []geo.Point // batch endpoints (locations, then home dests)
	kms   []float64   // location→pickup distances
	arr   []float64   // pickup arrival times
	homes []float64   // dropoff→home distances
}

// scoreCandidates runs the exact feasibility checks of Algorithms 3–4
// over ids (which must be in ascending driver order), appending the
// feasible candidates to buf in that order. With a market batcher and
// enough drivers the distances come from shared-endpoint batches;
// otherwise this is exactly the candidateFor loop.
func (e *Engine) scoreCandidates(db *distBatch, ids []int, task model.Task, now, service, serviceCost float64, buf []Candidate) []Candidate {
	batcher := e.Market.Batch
	if batcher == nil || len(ids) < minDistBatch {
		for _, i := range ids {
			if c, ok := e.candidateFor(i, task, now, service, serviceCost); ok {
				buf = append(buf, c)
			}
		}
		return buf
	}

	// Stage 1: location→pickup for every present driver, one
	// many-to-one batch (the pickup is the shared destination).
	db.ids = db.ids[:0]
	db.pts = db.pts[:0]
	for _, i := range ids {
		if !e.present[i] {
			continue
		}
		db.ids = append(db.ids, i)
		db.pts = append(db.pts, e.states[i].loc)
	}
	db.kms = growFloats(db.kms, len(db.ids))
	batcher.DistManyToInto(db.pts, task.Source, db.kms)

	// Stage 2: pickup- and dropoff-deadline clauses, which need no
	// further distances. Survivors compact in place, keeping order.
	db.arr = growFloats(db.arr, len(db.ids))
	db.pts = db.pts[:0]
	keep := 0
	for k, i := range db.ids {
		arrival, ok := e.pickupArrival(i, task, now, db.kms[k])
		if !ok || arrival+service > task.EndBy {
			continue
		}
		db.ids[keep] = i
		db.kms[keep] = db.kms[k]
		db.arr[keep] = arrival
		db.pts = append(db.pts, e.Drivers[i].Dest)
		keep++
	}
	if keep == 0 {
		return buf
	}

	// Stage 3: dropoff→home for the survivors, one one-to-many batch
	// (the dropoff is the shared origin), then the remaining clauses.
	db.homes = growFloats(db.homes, keep)
	batcher.DistManyInto(task.Dest, db.pts, db.homes)
	for k := 0; k < keep; k++ {
		if c, ok := e.finishCandidate(db.ids[k], task, service, serviceCost, db.arr[k], db.kms[k], db.homes[k]); ok {
			buf = append(buf, c)
		}
	}
	return buf
}

// growFloats returns s resized to n elements, reallocating only when
// capacity is short (contents are overwritten by the caller).
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
