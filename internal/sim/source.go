package sim

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/spatial"
)

// This file holds the two CandidateSource implementations. ScanSource is
// the reference: the exact per-driver feasibility loop of Algorithms 3–4.
// GridSource puts a spatial.Index between the task and that loop: only
// drivers inside the max-speed reachability radius of the pickup are
// checked exactly. The pre-filter is conservative — it never drops a
// driver the scan would accept — and survivors are checked in ascending
// driver order, so the two sources yield bit-identical simulations (the
// differential tests assert exactly that).

// ScanSource enumerates candidates with an exact linear scan over all
// drivers — O(N) per task. The zero value is ready for Engine use.
type ScanSource struct {
	e *Engine
}

var _ CandidateSource = (*ScanSource)(nil)

// Name implements CandidateSource.
func (s *ScanSource) Name() string { return "scan" }

// Bind implements CandidateSource.
func (s *ScanSource) Bind(e *Engine) { s.e = e }

// Candidates implements CandidateSource.
func (s *ScanSource) Candidates(task model.Task, now float64, buf []Candidate) []Candidate {
	return s.e.candidates(task, now, buf)
}

// Moved implements CandidateSource.
func (s *ScanSource) Moved(int) {}

// Presence implements CandidateSource. The scan has no index to prune;
// the engine's exact feasibility check skips absent drivers.
func (s *ScanSource) Presence(int, bool) {}

// GridSource enumerates candidates through a bucketed spatial index over
// grid cells that tracks every driver's location and availability window
// as assignments mutate state. A task with pickup deadline t̄− dispatched
// at `now` can only go to a driver within maxSpeed·(t̄−−max(freeAt,now))
// of the pickup whose shift outlasts the task, so the source queries the
// index with exactly that reachability predicate and runs the exact
// feasibility checks only on the survivors. On city-scale markets where
// most of the fleet is off shift, locked, or out of range at any instant
// this turns the per-task cost from O(N) into O(drivers plausibly able
// to serve).
//
// The radius pre-filter is conservative as long as the market's distance
// function never undercuts spatial.Safety × the equirectangular distance
// (true for every metric in this repository; see the spatial package
// doc), so results are identical to ScanSource on the same engine.
type GridSource struct {
	// Grid is the cell decomposition to index drivers over. Leaving it
	// nil auto-sizes a grid over the fleet's bounding box at Bind time,
	// targeting a few drivers per cell.
	Grid *geo.Grid

	e        *Engine
	ix       *spatial.Index
	maxSpeed float64 // fastest driver in the fleet, km/h
	ids      []int   // query scratch
	db       distBatch
}

var _ CandidateSource = (*GridSource)(nil)

// NewGridSource returns a grid-indexed source over the given grid; nil
// auto-sizes one from the fleet when the source is bound to an engine.
func NewGridSource(grid *geo.Grid) *GridSource {
	return &GridSource{Grid: grid}
}

// Name implements CandidateSource.
func (s *GridSource) Name() string { return "grid-indexed" }

// Bind implements CandidateSource. It panics if the configured grid's
// latitude band is so far from the fleet's that the index's conservative
// projection guarantee would no longer hold (see spatial.Safety) — a
// misconfigured static grid, in the same spirit as geo.NewGrid's own
// panics; results would otherwise silently diverge from ScanSource.
func (s *GridSource) Bind(e *Engine) {
	s.e = e
	grid := s.Grid
	if grid == nil {
		grid = autoGrid(e.Drivers)
	}
	checkGridCoversFleet(grid, e.Drivers)
	locs := make([]geo.Point, len(e.states))
	for i := range e.states {
		locs[i] = e.states[i].loc
	}
	s.ix = spatial.NewIndex(grid, locs)
	s.maxSpeed = e.Market.SpeedKmh
	for i, d := range e.Drivers {
		if d.SpeedKmh > s.maxSpeed {
			s.maxSpeed = d.SpeedKmh
		}
		// freeAt starts at shift start (the engine resets states that
		// way); the window narrows as assignments lock the driver.
		// Drivers that join mid-run start with the empty span and are
		// restored by Presence when their join event fires.
		if e.present[i] {
			s.ix.SetSpan(i, e.states[i].freeAt, d.End)
		} else {
			s.ix.SetSpan(i, math.Inf(1), math.Inf(-1))
		}
	}
}

// Candidates implements CandidateSource.
func (s *GridSource) Candidates(task model.Task, now float64, buf []Candidate) []Candidate {
	e := s.e
	// Who could reach the pickup by its deadline? Every driver departs
	// at max(freeAt, now), so the index prunes on both the travel-time
	// budget and the availability window. A driver must also outlast the
	// task: until her release time (the end deadline, or the dispatch
	// instant in real-time mode, plus the non-negative trip home) — any
	// driver retiring earlier is infeasible for the scan too.
	minRetire := task.EndBy
	if e.RealTime {
		minRetire = now
	}
	s.ids = s.ids[:0]
	s.ix.NearReachable(task.Source, s.maxSpeed, task.StartBy, now, minRetire,
		func(id int) { s.ids = append(s.ids, id) })
	// The index visits in ring/bucket order; restore the canonical
	// ascending driver order the dispatchers' tie-breaking depends on.
	slices.Sort(s.ids)

	service := e.Market.TravelTime(task.Source, task.Dest, 0)
	serviceCost := e.Market.ServiceCost(task)
	return e.scoreCandidates(&s.db, s.ids, task, now, service, serviceCost, buf)
}

// Moved implements CandidateSource.
func (s *GridSource) Moved(i int) {
	s.ix.Move(i, s.e.states[i].loc)
	s.ix.SetSpan(i, s.e.states[i].freeAt, s.e.Drivers[i].End)
}

// Presence implements CandidateSource. The dense index keeps every
// driver bucketed; absent drivers are pruned by collapsing their
// availability window to the empty span (and restored from engine
// state on a join). Correctness never depends on this — the engine's
// exact check is the arbiter — it only keeps retired fleets cheap.
func (s *GridSource) Presence(i int, present bool) {
	if present {
		s.ix.SetSpan(i, s.e.states[i].freeAt, s.e.Drivers[i].End)
	} else {
		s.ix.SetSpan(i, math.Inf(1), math.Inf(-1))
	}
}

// checkGridCoversFleet verifies the precondition of the index's planar
// pre-filter: its longitude scale uses the smallest cosine over the grid
// box's latitudes, which lower-bounds true east-west distances only for
// points at latitudes with comparable cosines. A fleet far poleward of
// the box would have its distances overstated beyond what the Safety
// slack absorbs, silently voiding the scan/grid equivalence — reject
// that configuration loudly instead. The 1.05 ceiling leaves most of
// the 1/spatial.Safety ≈ 1.11 slack for metric disagreement (haversine,
// road networks) and for drivers drifting to dropoffs near, but outside,
// the box during simulation.
func checkGridCoversFleet(grid *geo.Grid, drivers []model.Driver) {
	boxCos := math.Min(
		math.Abs(math.Cos(grid.Box.MinLat*math.Pi/180)),
		math.Abs(math.Cos(grid.Box.MaxLat*math.Pi/180)))
	for _, d := range drivers {
		for _, p := range []geo.Point{d.Source, d.Dest} {
			c := math.Abs(math.Cos(p.Lat * math.Pi / 180))
			if boxCos > c*1.05 {
				panic(fmt.Sprintf(
					"sim: grid box latitudes [%g, %g] too far from driver %d at latitude %g for conservative pre-filtering; use a grid covering the fleet (or a nil Grid to auto-size one)",
					grid.Box.MinLat, grid.Box.MaxLat, d.ID, p.Lat))
			}
		}
	}
}

// fleetBox bounds the fleet's start/end positions, padded so boundary
// drivers do not all clamp into edge cells; points outside it (e.g.
// pickups of far-out tasks) stay correct via clamping, merely a little
// slower. An empty fleet gets the Porto box.
func fleetBox(drivers []model.Driver) geo.BoundingBox {
	if len(drivers) == 0 {
		return geo.PortoBox
	}
	box := geo.BoundingBox{
		MinLat: math.Inf(1), MinLon: math.Inf(1),
		MaxLat: math.Inf(-1), MaxLon: math.Inf(-1),
	}
	grow := func(p geo.Point) {
		box.MinLat = math.Min(box.MinLat, p.Lat)
		box.MaxLat = math.Max(box.MaxLat, p.Lat)
		box.MinLon = math.Min(box.MinLon, p.Lon)
		box.MaxLon = math.Max(box.MaxLon, p.Lon)
	}
	for _, d := range drivers {
		grow(d.Source)
		grow(d.Dest)
	}
	const padDeg = 0.005 // ~0.5 km; also un-degenerates single-point fleets
	box.MinLat = math.Max(box.MinLat-padDeg, -90)
	box.MinLon = math.Max(box.MinLon-padDeg, -180)
	box.MaxLat = math.Min(box.MaxLat+padDeg, 90)
	box.MaxLon = math.Min(box.MaxLon+padDeg, 180)
	return box
}

// autoGrid sizes a grid over the fleet's bounding box, targeting
// roughly two drivers per cell so ring queries touch small buckets.
func autoGrid(drivers []model.Driver) *geo.Grid {
	dim := int(math.Ceil(math.Sqrt(float64(len(drivers)) / 2)))
	if dim < 1 {
		dim = 1
	}
	if dim > 512 {
		dim = 512
	}
	return geo.NewGrid(fleetBox(drivers), dim, dim)
}
