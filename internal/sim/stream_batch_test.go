package sim

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// replayThroughBatchedStream feeds a whole trace through a batched
// Stream in the canonical merge order (see replayThroughStream) and
// returns the final Result. Joins and retirements are pre-scheduled as
// fleet events; cancellations and arrivals are submitted live, so
// window closes fire exactly where RunBatchedScenario's drain would
// fire them: before the first submission at or past the close time, or
// in Finish.
func replayThroughBatchedStream(t *testing.T, e *Engine, window float64, algo BatchAlgorithm,
	tasks []model.Task, events []model.MarketEvent) Result {
	t.Helper()
	var fleet []model.MarketEvent
	type item struct {
		at     float64
		rank   int
		isTask bool
		task   int
	}
	var feed []item
	for _, ev := range events {
		switch ev.Kind {
		case model.EventJoin, model.EventRetire:
			fleet = append(fleet, ev)
		case model.EventCancel:
			feed = append(feed, item{at: ev.At, rank: int(evCancel), task: ev.Task})
		}
	}
	for i := range tasks {
		feed = append(feed, item{at: tasks[i].Publish, rank: int(evArrival), isTask: true, task: i})
	}
	sort.SliceStable(feed, func(a, b int) bool {
		if feed[a].at != feed[b].at {
			return feed[a].at < feed[b].at
		}
		return feed[a].rank < feed[b].rank
	})

	st, err := e.NewBatchedStream(window, algo, fleet)
	if err != nil {
		t.Fatalf("NewBatchedStream: %v", err)
	}
	for _, it := range feed {
		if it.isTask {
			dec, err := st.SubmitTask(tasks[it.task])
			if err != nil {
				t.Fatalf("SubmitTask(%d): %v", it.task, err)
			}
			if dec.Task != it.task {
				t.Fatalf("task registered under index %d, want %d", dec.Task, it.task)
			}
			if !dec.Pending {
				t.Fatalf("batched submission %d answered instantly: %+v", it.task, dec)
			}
			if dec.DecideAt <= dec.At || dec.DecideAt > dec.At+window {
				t.Fatalf("task %d window close %g outside (%g, %g]", it.task, dec.DecideAt, dec.At, dec.At+window)
			}
		} else {
			if _, _, err := st.CancelTask(it.task, it.at); err != nil {
				t.Fatalf("CancelTask(%d): %v", it.task, err)
			}
		}
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return res
}

// TestBatchedStreamBitIdenticalToRunBatched is the tentpole's
// differential contract: replaying any trace — churn, cancellations,
// shard counts 1/2/4, both solvers — one event at a time through a
// batched Stream must produce the same Result, bit for bit, as
// RunBatchedScenario on the whole day.
func TestBatchedStreamBitIdenticalToRunBatched(t *testing.T) {
	scenarios := []struct {
		drivers, tasks int
		churn, cancel  float64
		window         float64
	}{
		{25, 120, 0, 0, 45},
		{25, 120, 0.4, 0.3, 45},
		{40, 150, 0.5, 0.4, 120},
	}
	algos := []BatchAlgorithm{BatchHungarian, BatchAuction}
	for si, sc := range scenarios {
		cfg := trace.NewConfig(int64(200+si), sc.tasks, sc.drivers, trace.Hitchhiking)
		cfg.PickupWindowMin = 8 * 60 // give batches room to form
		cfg.PickupWindowMax = 16 * 60
		tr := trace.NewGenerator(cfg).Generate(nil)
		var events []model.MarketEvent
		if sc.churn > 0 || sc.cancel > 0 {
			events = trace.WithChurn(tr, trace.DefaultChurn(int64(si), sc.churn, sc.cancel))
		}
		for _, algo := range algos {
			for _, shards := range []int{1, 2, 4} {
				name := fmt.Sprintf("s%d/%v/shards=%d", si, algo, shards)
				t.Run(name, func(t *testing.T) {
					mk := func() CandidateSource {
						if shards > 1 {
							return NewShardedSource(shards)
						}
						return nil
					}
					be, err := New(cfg.Market, tr.Drivers, 7)
					if err != nil {
						t.Fatal(err)
					}
					be.SetCandidateSource(mk())
					batch := be.RunBatchedScenario(tr.Tasks, events, sc.window, algo)

					se, err := New(cfg.Market, tr.Drivers, 7)
					if err != nil {
						t.Fatal(err)
					}
					se.SetCandidateSource(mk())
					streamed := replayThroughBatchedStream(t, se, sc.window, algo, tr.Tasks, events)

					if !reflect.DeepEqual(batch, streamed) {
						t.Fatalf("batched stream diverged from RunBatchedScenario:\nbatch:  served=%d rejected=%d cancelled=%d revenue=%.9f profit=%.9f\nstream: served=%d rejected=%d cancelled=%d revenue=%.9f profit=%.9f",
							batch.Served, batch.Rejected, batch.Cancelled, batch.Revenue, batch.TotalProfit,
							streamed.Served, streamed.Rejected, streamed.Cancelled, streamed.Revenue, streamed.TotalProfit)
					}
				})
			}
		}
	}
}

// TestBatchedStreamInvariants is the batched mode's property wall,
// driven over randomized churn/cancel days for both solvers:
//
//   - the books balance after every single operation and every window
//     close: served + rejected + cancelled + pending == submitted;
//   - no driver receives two assignments within one window;
//   - a task cancelled while waiting in its window is never assigned;
//   - every submitted task is decided (or cancelled) by Finish.
func TestBatchedStreamInvariants(t *testing.T) {
	seeds := []int64{301, 302, 303, 304}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		for _, algo := range []BatchAlgorithm{BatchHungarian, BatchAuction} {
			t.Run(fmt.Sprintf("seed=%d/%v", seed, algo), func(t *testing.T) {
				cfg := trace.NewConfig(seed, 150, 30, trace.Hitchhiking)
				cfg.PickupWindowMin = 8 * 60
				cfg.PickupWindowMax = 16 * 60
				tr := trace.NewGenerator(cfg).Generate(nil)
				events := trace.WithChurn(tr, trace.ChurnConfig{
					Seed: seed + 9, JoinFraction: 0.3, RetireFraction: 0.3, CancelFraction: 0.35,
				})

				e, err := New(cfg.Market, tr.Drivers, seed)
				if err != nil {
					t.Fatal(err)
				}
				var fleet []model.MarketEvent
				type op struct {
					at     float64
					rank   int
					isTask bool
					task   int
				}
				var feed []op
				for _, ev := range events {
					switch ev.Kind {
					case model.EventJoin, model.EventRetire:
						fleet = append(fleet, ev)
					case model.EventCancel:
						feed = append(feed, op{at: ev.At, rank: int(evCancel), task: ev.Task})
					}
				}
				for i := range tr.Tasks {
					feed = append(feed, op{at: tr.Tasks[i].Publish, rank: int(evArrival), isTask: true, task: i})
				}
				sort.SliceStable(feed, func(a, b int) bool {
					if feed[a].at != feed[b].at {
						return feed[a].at < feed[b].at
					}
					return feed[a].rank < feed[b].rank
				})

				st, err := e.NewBatchedStream(60, algo, fleet)
				if err != nil {
					t.Fatal(err)
				}
				decided := make(map[int]TaskDecision)
				var windowDrivers map[int]bool
				cancelledPending := make(map[int]bool)
				st.SetDecisionHandler(func(dec TaskDecision) {
					if windowDrivers == nil {
						windowDrivers = make(map[int]bool)
					}
					if _, dup := decided[dec.Task]; dup {
						t.Errorf("task %d decided twice", dec.Task)
					}
					decided[dec.Task] = dec
					if cancelledPending[dec.Task] {
						t.Errorf("task %d was cancelled in its window but still decided: %+v", dec.Task, dec)
					}
					if dec.Assigned {
						if windowDrivers[dec.Driver] {
							t.Errorf("driver %d assigned twice within one window", dec.Driver)
						}
						windowDrivers[dec.Driver] = true
					}
				})
				windows := 0
				st.SetBatchCloseHandler(func(bs BatchStats) {
					windows++
					if bs.Submitted != bs.Matched+bs.Rejected+bs.Cancelled {
						t.Errorf("window stats do not balance: %+v", bs)
					}
					if bs.ClosedAt != bs.OpenedAt+60 {
						t.Errorf("window not anchored at its opener: %+v", bs)
					}
					windowDrivers = nil // next window may reuse drivers
					// Books are NOT checked here: a close usually fires
					// inside the submission that passed its time, when
					// that task is registered but its arrival is still
					// queued. The per-operation check below covers every
					// post-close state.
				})

				cancelledOK := make(map[int]bool)
				for _, o := range feed {
					if o.isTask {
						if _, err := st.SubmitTask(tr.Tasks[o.task]); err != nil {
							t.Fatalf("SubmitTask(%d): %v", o.task, err)
						}
					} else {
						_, wasDecided := decided[o.task]
						if _, ok, err := st.CancelTask(o.task, o.at); err != nil {
							t.Fatalf("CancelTask(%d): %v", o.task, err)
						} else if ok {
							cancelledOK[o.task] = true
							if !wasDecided {
								cancelledPending[o.task] = true
							}
						}
					}
					checkBooks(t, st, "after op")
				}
				res, err := st.Finish()
				if err != nil {
					t.Fatalf("Finish: %v", err)
				}
				if windows == 0 {
					t.Fatal("no window ever closed")
				}
				if res.Served+res.Rejected+res.Cancelled != len(tr.Tasks) {
					t.Fatalf("final books do not balance: served=%d rejected=%d cancelled=%d of %d",
						res.Served, res.Rejected, res.Cancelled, len(tr.Tasks))
				}
				for ti := range tr.Tasks {
					if _, wasDecided := decided[ti]; !wasDecided && !cancelledOK[ti] {
						t.Errorf("task %d neither decided nor cancelled", ti)
					}
				}
			})
		}
	}
}

// checkBooks asserts the mid-run accounting identity of a batched
// stream: every submitted task is served, rejected, cancelled or
// waiting in the open window.
func checkBooks(t *testing.T, st *Stream, where string) {
	t.Helper()
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatalf("%s: Snapshot: %v", where, err)
	}
	if got := snap.Served + snap.Rejected + snap.Cancelled + st.PendingTasks(); got != st.TaskCount() {
		t.Fatalf("%s: books do not balance: served=%d rejected=%d cancelled=%d pending=%d, submitted=%d",
			where, snap.Served, snap.Rejected, snap.Cancelled, st.PendingTasks(), st.TaskCount())
	}
}

// TestBatchedStreamWindowLifecycle pins the open-loop window mechanics
// on a scripted market: BatchDue anchoring, pending counts, cancel
// inside the window, decision delivery on AdvanceTo.
func TestBatchedStreamWindowLifecycle(t *testing.T) {
	drivers := []model.Driver{
		{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: minutes(240)},
		{ID: 1, Source: at(2), Dest: at(2), Start: 0, End: minutes(240)},
	}
	e := mustEngine(t, drivers)
	st, err := e.NewBatchedStream(30, BatchHungarian, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, open := st.BatchDue(); open {
		t.Fatal("window open before any order")
	}
	var decisions []TaskDecision
	st.SetDecisionHandler(func(d TaskDecision) { decisions = append(decisions, d) })
	var closes []BatchStats
	st.SetBatchCloseHandler(func(bs BatchStats) { closes = append(closes, bs) })

	a := task(0, 0, 2, minutes(1), minutes(20), minutes(30), 10)
	b := task(1, 1, 3, minutes(1), minutes(20), minutes(30), 10)
	c := task(2, 0, 1, minutes(1), minutes(20), minutes(30), 10)
	decA, err := st.SubmitTask(a)
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	if !decA.Pending || decA.DecideAt != minutes(1)+30 {
		t.Fatalf("first submission: %+v", decA)
	}
	if closeAt, open := st.BatchDue(); !open || closeAt != decA.DecideAt {
		t.Fatalf("BatchDue = %g, %v", closeAt, open)
	}
	if _, err := st.SubmitTask(b); err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	if _, err := st.SubmitTask(c); err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	if st.PendingTasks() != 3 {
		t.Fatalf("pending = %d, want 3", st.PendingTasks())
	}
	// Rider c thinks better of it while the window is open.
	if _, ok, err := st.CancelTask(2, minutes(1)+5); err != nil {
		t.Fatalf("CancelTask: %v", err)
	} else if !ok {
		t.Fatal("in-window cancel not honored")
	}
	if st.PendingTasks() != 2 {
		t.Fatalf("pending after cancel = %d, want 2", st.PendingTasks())
	}
	// Advancing past the close decides the window.
	if err := st.AdvanceTo(minutes(2)); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	if len(decisions) != 2 || len(closes) != 1 {
		t.Fatalf("decisions=%d closes=%d after advance", len(decisions), len(closes))
	}
	bs := closes[0]
	if bs.Submitted != 3 || bs.Cancelled != 1 || bs.Matched+bs.Rejected != 2 {
		t.Fatalf("window stats %+v", bs)
	}
	if bs.OpenedAt != minutes(1) || bs.ClosedAt != minutes(1)+30 {
		t.Fatalf("window anchoring %+v", bs)
	}
	seen := map[int]bool{}
	for _, d := range decisions {
		if d.At != bs.ClosedAt {
			t.Fatalf("decision at %g, want close time %g", d.At, bs.ClosedAt)
		}
		if d.Assigned {
			if seen[d.Driver] {
				t.Fatalf("driver %d assigned twice in one window", d.Driver)
			}
			seen[d.Driver] = true
		}
	}
	if _, open := st.BatchDue(); open {
		t.Fatal("window still open after its close fired")
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if res.Served+res.Rejected != 2 || res.Cancelled != 1 {
		t.Fatalf("final result %+v", res)
	}
}

// TestNewBatchedStreamRejectsBadWindow: the streaming constructor is a
// public boundary and returns a typed-by-message error instead of the
// Run* entry points' internal-invariant panic.
func TestNewBatchedStreamRejectsBadWindow(t *testing.T) {
	e := mustEngine(t, []model.Driver{{ID: 0, Source: at(0), Dest: at(0), Start: 0, End: 100}})
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := e.NewBatchedStream(w, BatchHungarian, nil); err == nil {
			t.Errorf("window %g accepted", w)
		}
	}
	if _, err := e.NewBatchedStream(30, BatchHungarian, nil); err != nil {
		t.Errorf("valid window rejected: %v", err)
	}
}
