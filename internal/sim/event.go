package sim

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/model"
)

// This file is the engine's event-driven core. Instead of replaying a
// pre-sorted task slice, every Run* entry point enqueues its work as
// events — task arrivals, driver joins/retirements, rider
// cancellations, driver frees, plus the internal batch-close and
// replan-round triggers — onto one priority queue and drains it through
// per-mode handlers. The queue's merge order is total and documented
// (key, then kind, then sequence number), which is what makes the
// sharded concurrent candidate generation reproducible: any two engines
// that drain the same events against the same candidate *sets* produce
// bit-identical results, whatever the shard count.

// eventKind orders same-key events. The ordering is part of the
// engine's semantics: at one timestamp, fleet changes (join/retire) are
// applied first, then cancellations and the driver frees they trigger,
// then batch closes (a batch spans [head, head+window) — an arrival at
// exactly head+window belongs to the next batch), then arrivals, and
// finally replan rounds (a round at t re-plans everything published
// up to and including t).
type eventKind int

const (
	evJoin eventKind = iota
	evRetire
	evCancel
	evFree
	evBatchClose
	evArrival
	evReplan
)

// event is one queue entry. key is the drain order (the event time for
// every time-keyed run; RunByValue keys arrivals by descending price
// instead), at is the simulated time the event occurs, idx the task or
// driver it concerns, and seq a stable tiebreak within (key, kind).
type event struct {
	key  float64
	kind eventKind
	seq  int
	at   float64
	idx  int
}

// eventQueue is a min-heap over (key, kind, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.key != b.key {
		return a.key < b.key
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Clock paces the event drain. The engine calls Advance as simulated
// time moves forward between events; a simulation clock returns
// immediately, a demo clock can sleep to animate the day.
type Clock interface {
	Advance(from, to float64)
}

// InstantClock drains events as fast as the hardware allows — the
// default, and the only sensible clock for experiments.
type InstantClock struct{}

// Advance implements Clock.
func (InstantClock) Advance(from, to float64) {}

// ScaledClock sleeps (to−from)/Factor wall seconds per advance, so a
// day replays in day/Factor. Factor ≤ 0 is treated as 1 (real time).
type ScaledClock struct {
	Factor float64
}

// Advance implements Clock.
func (c ScaledClock) Advance(from, to float64) {
	f := c.Factor
	if f <= 0 {
		f = 1
	}
	time.Sleep(time.Duration((to - from) / f * float64(time.Second)))
}

// inflightInfo snapshots a driver's state right before an assignment so
// a later rider cancellation can revoke it.
type inflightInfo struct {
	driver  int
	prev    driverState
	arrival float64
	task    int
}

// eventRun is the per-run state of one drain: the queue, the result
// under construction, the cancellation bookkeeping, and the mode hooks
// (instant dispatch, batched matching, replanning) that interpret
// arrivals and the internal trigger events.
type eventRun struct {
	e     *Engine
	tasks []model.Task
	d     Dispatcher
	res   Result

	q     eventQueue
	seq   int // next sequence number for dynamically pushed events
	cands []Candidate

	timeKeyed bool // false for by-value runs: at is not monotone, no clock
	started   bool
	now       float64

	cancelled []bool
	inflight  map[int]inflightInfo // task index -> snapshot, while revocable
	revert    map[int]inflightInfo // driver -> revert to apply at its evFree

	onArrival    func(ev event)
	onBatchClose func(ev event)
	onReplan     func(ev event)
	// onDecided reports each dispatch decision a mode commits *after*
	// the task's arrival event (a batch close deciding the window's
	// orders). Instant dispatch decides inside the arrival itself and
	// leaves it nil; the streaming API uses it to surface deferred
	// decisions.
	onDecided func(dec TaskDecision)
	// cancelPending removes a still-undecided task from the mode's
	// pending set (an open batch, the replan pool). It reports whether
	// the task was pending; instant dispatch has no pending tasks.
	cancelPending func(ti int) bool
}

// newEventRun validates the scenario events, resets the engine with
// join-announced drivers absent, and enqueues the churn events. The
// caller enqueues arrivals (choosing the key) and mode triggers, then
// calls drain.
func (e *Engine) newEventRun(tasks []model.Task, events []model.MarketEvent, timeKeyed bool) *eventRun {
	if err := model.ValidateEvents(events, e.Drivers, tasks); err != nil {
		panic(fmt.Sprintf("sim: invalid scenario: %v", err))
	}
	var absent []int
	hasCancel := false
	for _, ev := range events {
		switch ev.Kind {
		case model.EventJoin:
			absent = append(absent, ev.Driver)
		case model.EventCancel:
			hasCancel = true
		}
	}
	e.resetAbsent(absent)
	r := &eventRun{
		e:         e,
		tasks:     tasks,
		timeKeyed: timeKeyed,
		seq:       len(tasks) + len(events),
		res:       newResult(e),
	}
	if !timeKeyed && len(events) > 0 {
		panic("sim: churn events require a time-keyed run (not by-value)")
	}
	for i, ev := range events {
		var kind eventKind
		var idx int
		switch ev.Kind {
		case model.EventJoin:
			kind, idx = evJoin, ev.Driver
		case model.EventRetire:
			kind, idx = evRetire, ev.Driver
		case model.EventCancel:
			kind, idx = evCancel, ev.Task
		}
		r.q = append(r.q, event{key: ev.At, kind: kind, seq: i, at: ev.At, idx: idx})
	}
	if hasCancel {
		r.cancelled = make([]bool, len(tasks))
		r.inflight = make(map[int]inflightInfo)
		r.revert = make(map[int]inflightInfo)
	}
	r.resetLivePricing()
	return r
}

// add enqueues a statically built event (heap property restored by
// drain's heap.Init).
func (r *eventRun) add(ev event) { r.q = append(r.q, ev) }

// push enqueues an event mid-drain, preserving the heap.
func (r *eventRun) push(ev event) {
	ev.seq = r.seq
	r.seq++
	heap.Push(&r.q, ev)
}

// init restores the heap invariant over the statically built queue.
// Call once, after the last add and before the first step.
func (r *eventRun) init() { heap.Init(&r.q) }

// step pops and handles the next event in merge order, reporting
// whether one was processed. The batch drain and the streaming API
// (see stream.go) are both loops over this single-event core.
func (r *eventRun) step() bool {
	if r.q.Len() == 0 {
		return false
	}
	r.handle(heap.Pop(&r.q).(event))
	return true
}

// handle advances the simulated clock to the event and dispatches it to
// its handler.
func (r *eventRun) handle(ev event) {
	if r.timeKeyed {
		if r.started && ev.at > r.now && r.e.Clock != nil {
			r.e.Clock.Advance(r.now, ev.at)
		}
		if ev.at > r.now || !r.started {
			r.now = ev.at
		}
		r.started = true
	}
	switch ev.kind {
	case evJoin:
		r.handleJoin(ev)
	case evRetire:
		r.handleRetire(ev)
	case evCancel:
		r.handleCancel(ev)
	case evFree:
		r.handleFree(ev)
	case evArrival:
		r.priceArrival(ev.idx)
		r.onArrival(ev)
	case evBatchClose:
		r.onBatchClose(ev)
	case evReplan:
		r.onReplan(ev)
	}
}

// drain processes every event in merge order: the batch entry points
// are thin adapters that enqueue their whole day and drain it through
// the same stepping core the streaming API advances incrementally.
func (r *eventRun) drain() {
	r.init()
	for r.step() {
	}
}

// handleJoin makes the driver visible to dispatch from the join instant
// on. Joining after the nominal shift start delays the earliest
// departure accordingly.
func (r *eventRun) handleJoin(ev event) {
	i := ev.idx
	if r.e.present[i] {
		return
	}
	r.e.present[i] = true
	if st := &r.e.states[i]; st.freeAt < ev.at {
		st.freeAt = ev.at
	}
	r.e.source.Presence(i, true)
	if r.e.pricer != nil {
		r.e.pricer.ObserveSupply(r.e.states[i].loc, 1)
	}
}

// handleRetire removes the driver from the market: no new tasks, though
// an in-flight assignment still completes.
func (r *eventRun) handleRetire(ev event) {
	i := ev.idx
	if !r.e.present[i] {
		return
	}
	r.e.present[i] = false
	r.e.source.Presence(i, false)
}

// handleCancel processes a rider cancellation. Three cases, checked in
// order: the task is still pending in the mode's undecided pool (open
// batch, replan queue) — drop it there; the task is assigned and the
// driver has not reached the pickup — revoke, freeing the driver via an
// explicit driver-free event at the cancellation instant; otherwise
// (already rejected, expired, or picked up) the cancellation is moot.
//
// Revocation is limited to the driver's most recent assignment: the
// engine commits task chains eagerly (a locked driver may already have
// a follow-up task stacked on this one, its feasibility derived from
// this trip's dropoff), so cancelling *under* a committed chain would
// invalidate the commitments above it. Such cancellations are treated
// as too late and the ride proceeds — the simplification is noted in
// DESIGN.md.
func (r *eventRun) handleCancel(ev event) {
	ti := ev.idx
	if r.isCancelled(ti) {
		return
	}
	if r.cancelPending != nil && r.cancelPending(ti) {
		r.cancelled[ti] = true
		r.res.Cancelled++
		return
	}
	drv, assigned := r.res.Assignment[ti]
	if !assigned {
		return
	}
	info, ok := r.inflight[ti]
	if !ok || info.arrival <= ev.at {
		return // picked up already (or superseded): too late to cancel
	}
	if path := r.res.DriverPaths[drv]; len(path) == 0 || path[len(path)-1] != ti {
		return // a later task is chained on this trip: committed
	}
	r.cancelled[ti] = true
	r.res.Cancelled++
	r.revert[drv] = info
	r.push(event{key: ev.at, kind: evFree, at: ev.at, idx: drv})
}

// handleFree applies a pending revocation: the driver's pre-assignment
// state is restored, except that the time she spent driving toward the
// cancelled pickup is gone — she frees at the cancellation instant (or
// at her previous lock release, whichever is later) at her previous
// location. The aborted deadhead's fuel is not charged; the engine's
// cost model only meters committed trips.
func (r *eventRun) handleFree(ev event) {
	info, ok := r.revert[ev.idx]
	if !ok {
		return
	}
	delete(r.revert, ev.idx)
	delete(r.inflight, info.task)
	st := &r.e.states[ev.idx]
	*st = info.prev
	if st.freeAt < ev.at {
		st.freeAt = ev.at
	}
	r.e.source.Moved(ev.idx)
	if r.e.pricer != nil {
		// The revoked driver's capacity is available again at her
		// restored location.
		r.e.pricer.ObserveSupply(st.loc, 1)
	}

	r.res.Served--
	delete(r.res.Assignment, info.task)
	path := r.res.DriverPaths[ev.idx]
	r.res.DriverPaths[ev.idx] = path[:len(path)-1]
}

// isCancelled reports whether the task was cancelled earlier in the
// drain. Safe to call on runs with no cancel events.
func (r *eventRun) isCancelled(ti int) bool {
	return r.cancelled != nil && r.cancelled[ti]
}

// assignTask commits the task to the candidate driver and records the
// revocation snapshot while cancellations are possible.
func (r *eventRun) assignTask(ti int, c Candidate, task model.Task) {
	if r.inflight != nil {
		r.inflight[ti] = inflightInfo{driver: c.Driver, prev: r.e.states[c.Driver], arrival: c.Arrival, task: ti}
	}
	r.e.assign(c, task)
	r.res.Served++
	r.res.Assignment[ti] = c.Driver
	r.res.DriverPaths[c.Driver] = append(r.res.DriverPaths[c.Driver], ti)
}

// instantArrival is the instant-dispatch arrival handler: candidates at
// the arrival instant, one dispatcher choice, commit or reject.
func (r *eventRun) instantArrival(ev event) {
	task := r.tasks[ev.idx]
	r.cands = r.e.source.Candidates(task, ev.at, r.cands[:0])
	choice := -1
	if len(r.cands) > 0 {
		choice = r.d.Choose(task, r.cands, r.e.rng)
		if choice >= len(r.cands) {
			panic(fmt.Sprintf("sim: dispatcher %s chose %d of %d candidates", r.d.Name(), choice, len(r.cands)))
		}
	}
	if choice < 0 {
		r.res.Rejected++
		return
	}
	r.assignTask(ev.idx, r.cands[choice], task)
}

// newResult allocates a Result sized to the engine's fleet.
func newResult(e *Engine) Result {
	return Result{
		PerDriverRevenue: make([]float64, len(e.Drivers)),
		PerDriverProfit:  make([]float64, len(e.Drivers)),
		PerDriverTasks:   make([]int, len(e.Drivers)),
		DriverPaths:      make([][]int, len(e.Drivers)),
		Assignment:       make(map[int]int),
	}
}
