package sim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/model"
)

// This file makes a suspended Stream's state portable: CaptureState
// deep-copies everything a run needs to continue — driver states, the
// pending event queue, the open batch window, the in-progress result,
// the RNG position — into an exported, serialization-friendly
// StreamState, and Engine.RestoreStream rebuilds a Stream from one that
// continues bit-identically to the captured run. The durable dispatch
// rail (dispatch.WithDurability / dispatch.Restore) persists a
// StreamState in each snapshot file so crash recovery replays only the
// write-ahead-log suffix after the snapshot, not the whole day; the
// state round-trip tests in this package prove capture → restore →
// continue equals never-interrupted, bit for bit.

// DriverStateSnap is one driver's mutable engine state.
type DriverStateSnap struct {
	FreeAt  float64   `json:"free_at"`
	Loc     geo.Point `json:"loc"`
	Revenue float64   `json:"revenue"`
	Cost    float64   `json:"cost"`
	NTasks  int       `json:"ntasks"`
}

// EventSnap is one pending entry of the run's event queue.
type EventSnap struct {
	Key  float64 `json:"key"`
	Kind int     `json:"kind"`
	Seq  int     `json:"seq"`
	At   float64 `json:"at"`
	Idx  int     `json:"idx"`
}

// InflightSnap is one revocable assignment: the driver's pre-assignment
// state kept while a rider cancellation could still revoke the trip.
type InflightSnap struct {
	Task    int             `json:"task"`
	Driver  int             `json:"driver"`
	Prev    DriverStateSnap `json:"prev"`
	Arrival float64         `json:"arrival"`
}

// BatchSnap is the open batch window of a batched stream.
type BatchSnap struct {
	Batch     []int   `json:"batch"`
	OpenedAt  float64 `json:"opened_at"`
	CloseAt   float64 `json:"close_at"`
	Open      bool    `json:"open"`
	Cancelled int     `json:"cancelled"`
}

// ResultSnap is the in-progress aggregate result. Per-driver financial
// fields are not captured: they are settled from driver states at
// Finish, so the driver states above are the authoritative copy.
type ResultSnap struct {
	Served      int         `json:"served"`
	Rejected    int         `json:"rejected"`
	Cancelled   int         `json:"cancelled"`
	Assignment  map[int]int `json:"assignment"`
	DriverPaths [][]int     `json:"driver_paths"`
}

// StreamState is a complete, self-contained copy of a suspended
// streaming run, sufficient to rebuild a Stream that continues
// bit-identically. All fields are exported and JSON-clean (no NaNs: the
// batcher's NaN close sentinel is carried as BatchSnap.Open).
type StreamState struct {
	Drivers   []model.Driver    `json:"drivers"`
	States    []DriverStateSnap `json:"states"`
	Present   []bool            `json:"present"`
	RNGDraws  uint64            `json:"rng_draws"`
	Now       float64           `json:"now"`
	Started   bool              `json:"started"`
	Seq       int               `json:"seq"`
	Tasks     []model.Task      `json:"tasks"`
	Cancelled []bool            `json:"cancelled"`
	Queue     []EventSnap       `json:"queue"`
	Inflight  []InflightSnap    `json:"inflight"`
	// Revert lists revocations granted but whose driver-free events are
	// still queued; keyed by driver via InflightSnap.Driver.
	Revert []InflightSnap `json:"revert"`
	Res    ResultSnap     `json:"res"`
	// Batch is nil on instant-dispatch streams.
	Batch *BatchSnap `json:"batch,omitempty"`
}

func snapDriverState(st driverState) DriverStateSnap {
	return DriverStateSnap{FreeAt: st.freeAt, Loc: st.loc, Revenue: st.revenue, Cost: st.cost, NTasks: st.ntasks}
}

func (s DriverStateSnap) state() driverState {
	return driverState{freeAt: s.FreeAt, loc: s.Loc, revenue: s.Revenue, cost: s.Cost, ntasks: s.NTasks}
}

// CaptureState deep-copies the suspended run into a StreamState. The
// stream must not be advanced concurrently (callers serialize, as the
// dispatch service does); a finished stream reports ErrFinished.
func (s *Stream) CaptureState() (*StreamState, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	e, r := s.e, s.r
	st := &StreamState{
		Drivers:   append([]model.Driver(nil), e.Drivers...),
		States:    make([]DriverStateSnap, len(e.states)),
		Present:   append([]bool(nil), e.present...),
		RNGDraws:  e.RNGDraws(),
		Now:       r.now,
		Started:   r.started,
		Seq:       r.seq,
		Tasks:     append([]model.Task(nil), r.tasks...),
		Cancelled: append([]bool{}, r.cancelled...),
	}
	for i, ds := range e.states {
		st.States[i] = snapDriverState(ds)
	}
	st.Queue = make([]EventSnap, len(r.q))
	for i, ev := range r.q {
		st.Queue[i] = EventSnap{Key: ev.key, Kind: int(ev.kind), Seq: ev.seq, At: ev.at, Idx: ev.idx}
	}
	for ti, info := range r.inflight {
		st.Inflight = append(st.Inflight, InflightSnap{Task: ti, Driver: info.driver, Prev: snapDriverState(info.prev), Arrival: info.arrival})
	}
	for drv, info := range r.revert {
		st.Revert = append(st.Revert, InflightSnap{Task: info.task, Driver: drv, Prev: snapDriverState(info.prev), Arrival: info.arrival})
	}
	st.Res = ResultSnap{
		Served:      r.res.Served,
		Rejected:    r.res.Rejected,
		Cancelled:   r.res.Cancelled,
		Assignment:  make(map[int]int, len(r.res.Assignment)),
		DriverPaths: make([][]int, len(r.res.DriverPaths)),
	}
	for ti, drv := range r.res.Assignment {
		st.Res.Assignment[ti] = drv
	}
	for i, p := range r.res.DriverPaths {
		// Preserve nil-ness: a path emptied by a revoked assignment is
		// empty-but-non-nil, and a faithful restore keeps it that way.
		if p != nil {
			st.Res.DriverPaths[i] = append([]int{}, p...)
		}
	}
	if s.b != nil {
		bs := &BatchSnap{
			Batch:     append([]int(nil), s.b.batch...),
			OpenedAt:  s.b.openedAt,
			Cancelled: s.b.cancelled,
			Open:      s.b.open(),
		}
		if bs.Open {
			bs.CloseAt = s.b.closeAt
		}
		st.Batch = bs
	}
	return st, nil
}

// validate cross-checks the state's internal sizing so a corrupted
// snapshot fails loudly here instead of as an index panic mid-replay.
func (st *StreamState) validate() error {
	n := len(st.Drivers)
	if len(st.States) != n || len(st.Present) != n || len(st.Res.DriverPaths) != n {
		return fmt.Errorf("sim: state sizing mismatch: %d drivers, %d states, %d present, %d paths",
			n, len(st.States), len(st.Present), len(st.Res.DriverPaths))
	}
	if len(st.Cancelled) != len(st.Tasks) {
		return fmt.Errorf("sim: state sizing mismatch: %d tasks, %d cancelled flags", len(st.Tasks), len(st.Cancelled))
	}
	for ti, drv := range st.Res.Assignment {
		if ti < 0 || ti >= len(st.Tasks) || drv < 0 || drv >= n {
			return fmt.Errorf("sim: state assignment out of range: task %d -> driver %d", ti, drv)
		}
	}
	for _, ev := range st.Queue {
		if ev.Kind < int(evJoin) || ev.Kind > int(evReplan) {
			return fmt.Errorf("sim: state queue holds unknown event kind %d", ev.Kind)
		}
	}
	return nil
}

// RestoreStream rebuilds a suspended streaming run from a captured
// state, in the mode selected by the arguments: instant dispatch under
// d when the state has no batch section, else batched dispatch with the
// given window and algorithm (which must match the capturing run's
// configuration — the engine cannot verify the window retroactively,
// only that the mode agrees). The engine's market constants, RealTime,
// Clock, candidate source and MatchWorkers must be configured as they
// were on the capturing engine before calling; the restored stream then
// continues bit-identically to the captured one.
func (e *Engine) RestoreStream(st *StreamState, d Dispatcher, window float64, algo BatchAlgorithm) (*Stream, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	if st.Batch == nil && d == nil {
		return nil, fmt.Errorf("sim: restoring an instant stream needs a dispatcher")
	}
	if st.Batch != nil && (!(window > 0) || math.IsInf(window, 1)) {
		return nil, fmt.Errorf("sim: restoring a batched stream needs a positive finite window, got %g", window)
	}

	e.Drivers = append([]model.Driver(nil), st.Drivers...)
	e.states = make([]driverState, len(st.States))
	for i, ds := range st.States {
		e.states[i] = ds.state()
	}
	e.present = append([]bool(nil), st.Present...)
	e.SeekRNG(st.RNGDraws)
	e.source.Bind(e)

	r := &eventRun{
		e:         e,
		timeKeyed: true,
		started:   st.Started,
		now:       st.Now,
		seq:       st.Seq,
		tasks:     append([]model.Task(nil), st.Tasks...),
		cancelled: append([]bool{}, st.Cancelled...),
		inflight:  make(map[int]inflightInfo, len(st.Inflight)),
		revert:    make(map[int]inflightInfo, len(st.Revert)),
	}
	r.res = Result{
		Served:           st.Res.Served,
		Rejected:         st.Res.Rejected,
		Cancelled:        st.Res.Cancelled,
		PerDriverRevenue: make([]float64, len(e.Drivers)),
		PerDriverProfit:  make([]float64, len(e.Drivers)),
		PerDriverTasks:   make([]int, len(e.Drivers)),
		DriverPaths:      make([][]int, len(e.Drivers)),
		Assignment:       make(map[int]int, len(st.Res.Assignment)),
	}
	for ti, drv := range st.Res.Assignment {
		r.res.Assignment[ti] = drv
	}
	for i, p := range st.Res.DriverPaths {
		if p != nil {
			r.res.DriverPaths[i] = append([]int{}, p...)
		}
	}
	for _, info := range st.Inflight {
		r.inflight[info.Task] = inflightInfo{driver: info.Driver, prev: info.Prev.state(), arrival: info.Arrival, task: info.Task}
	}
	for _, info := range st.Revert {
		r.revert[info.Driver] = inflightInfo{driver: info.Driver, prev: info.Prev.state(), arrival: info.Arrival, task: info.Task}
	}
	r.q = make(eventQueue, len(st.Queue))
	for i, ev := range st.Queue {
		r.q[i] = event{key: ev.Key, kind: eventKind(ev.Kind), seq: ev.Seq, at: ev.At, idx: ev.Idx}
	}
	heap.Init(&r.q)

	strm := &Stream{e: e, r: r}
	if st.Batch != nil {
		b := newBatcher(r, window, algo)
		b.batch = append(b.batch, st.Batch.Batch...)
		b.openedAt = st.Batch.OpenedAt
		b.cancelled = st.Batch.Cancelled
		if st.Batch.Open {
			b.closeAt = st.Batch.CloseAt
		}
		strm.b = b
	} else {
		r.d = d
		r.onArrival = r.instantArrival
	}
	return strm, nil
}
