package sim

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/offline"
	"repro/internal/taskmap"
)

// This file implements rolling-horizon re-optimization: the strongest
// online strategy in the framework and, with batched matching, the
// second half of the paper's "non-heuristic online algorithms" future
// work. At every task arrival (and on a periodic flush grid of `period`
// seconds) the platform rebuilds a task map over all *pending* tasks
// (published, not yet assigned, not cancelled, pickup still reachable)
// with each present driver's current position and availability as her
// virtual source, runs the offline greedy (Algorithm 1) on the
// snapshot, and commits the first leg of each selected task list. Later
// legs stay uncommitted and are re-planned as new demand arrives.
//
// Over the event loop, replan rounds are explicit events: one per
// distinct arrival time plus the periodic flush grid. A round at time t
// sorts after every arrival at t, so it always sees the full demand
// published up to and including t.

// RunReplan simulates the day under rolling-horizon re-optimization.
// period controls the flush grid that re-examines deferred tasks after
// arrivals go quiet; re-planning itself is triggered by every arrival,
// so accepted customers get an answer with no added latency.
func (e *Engine) RunReplan(tasks []model.Task, period float64) Result {
	return e.RunReplanScenario(tasks, nil, period)
}

// RunReplanScenario is RunReplan with dynamic market events: retired
// drivers drop out of every subsequent snapshot, mid-day joiners enter
// it from their join time, and cancelled pending tasks leave the pool
// (an assigned-but-not-picked-up cancellation frees the driver for the
// next round, with the same revocation semantics as RunScenario).
func (e *Engine) RunReplanScenario(tasks []model.Task, events []model.MarketEvent, period float64) Result {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive replan period %g", period))
	}
	r := e.newEventRun(tasks, events, true)
	if len(tasks) == 0 && len(events) == 0 {
		return r.res
	}

	assigned := make([]bool, len(tasks))
	expired := make([]bool, len(tasks))
	var published []int // task indices in arrival order

	r.onArrival = func(ev event) { published = append(published, ev.idx) }
	r.cancelPending = func(ti int) bool {
		// Published (cancellations are strictly after publish) and not
		// yet decided: drop it from the pool. Decided tasks fall through
		// to the generic assigned/too-late handling.
		return !assigned[ti] && !expired[ti]
	}
	r.onReplan = func(ev event) {
		now := ev.at
		// Pending demand: published, unassigned, uncancelled, pickup
		// deadline ahead.
		var pending []int
		for _, ti := range published {
			if assigned[ti] || expired[ti] || r.isCancelled(ti) {
				continue
			}
			if r.tasks[ti].StartBy < now {
				expired[ti] = true
				r.res.Rejected++
				continue
			}
			pending = append(pending, ti)
		}
		if len(pending) == 0 {
			return
		}

		// Virtual market snapshot: each present driver planning from her
		// current location and availability.
		var vdrivers []model.Driver
		realOf := make([]int, 0, len(e.Drivers))
		for i, d := range e.Drivers {
			if !e.present[i] {
				continue // not yet joined, or retired
			}
			st := &e.states[i]
			availAt := st.freeAt
			if availAt < now {
				availAt = now
			}
			if availAt >= d.End {
				continue // shift effectively over
			}
			vdrivers = append(vdrivers, model.Driver{
				ID:       len(vdrivers),
				Source:   st.loc,
				Dest:     d.Dest,
				Start:    availAt,
				End:      d.End,
				SpeedKmh: d.SpeedKmh,
			})
			realOf = append(realOf, i)
		}
		if len(vdrivers) == 0 {
			return
		}
		vtasks := make([]model.Task, len(pending))
		for k, ti := range pending {
			vtasks[k] = r.tasks[ti]
			vtasks[k].ID = k
		}

		g, err := taskmap.New(e.Market, vdrivers, vtasks)
		if err != nil {
			// Inputs were validated at engine construction; a snapshot
			// failure is a programming error.
			panic(fmt.Sprintf("sim: replan snapshot invalid: %v", err))
		}
		plan := offline.Greedy(g)

		// Commit the first leg of every selected task list; later legs
		// stay open for re-planning. Deferring even first legs keeps
		// more options open in principle, but with short pickup notice
		// every deferred round costs reachable candidates, which
		// dominates in practice.
		for _, path := range plan.Paths {
			if path.Len() == 0 {
				continue
			}
			first := path.Tasks[0]
			ti := pending[first]
			task := r.tasks[ti]
			drv := realOf[path.Driver]
			st := &e.states[drv]
			depart := st.freeAt
			if depart < now {
				depart = now
			}
			arrival := depart + e.Market.DriverTravelTime(e.Drivers[drv], st.loc, task.Source)
			if arrival > task.StartBy {
				continue // the snapshot aged out; re-plan next round
			}
			r.assignTask(ti, Candidate{Driver: drv, Arrival: arrival}, task)
			assigned[ti] = true
		}
	}

	// Arrivals, then one replan round per distinct arrival time, then
	// the periodic flush grid out to the horizon.
	start, horizon := 0.0, 0.0
	for i := range tasks {
		r.add(event{key: tasks[i].Publish, kind: evArrival, seq: i, at: tasks[i].Publish, idx: i})
		if i == 0 || tasks[i].Publish < start {
			start = tasks[i].Publish
		}
		if i == 0 || tasks[i].StartBy > horizon {
			horizon = tasks[i].StartBy
		}
	}
	if len(tasks) > 0 {
		roundTimes := make([]float64, 0, len(tasks))
		for i := range tasks {
			roundTimes = append(roundTimes, tasks[i].Publish)
		}
		sort.Float64s(roundTimes)
		seq := 0
		for k, at := range roundTimes {
			if k > 0 && at == roundTimes[k-1] {
				continue
			}
			r.add(event{key: at, kind: evReplan, seq: seq, at: at})
			seq++
		}
		for now := start + period; now <= horizon+period; now += period {
			r.add(event{key: now, kind: evReplan, seq: seq, at: now})
			seq++
		}
	}

	r.drain()

	// Cancellation revocations can strand a task as unassigned again
	// only by marking it cancelled, so the final sweep stays simple:
	// everything never decided is rejected.
	for ti := range tasks {
		if !assigned[ti] && !expired[ti] && !r.isCancelled(ti) {
			r.res.Rejected++
		}
	}
	e.settle(&r.res)
	return r.res
}
