package sim

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/offline"
	"repro/internal/taskmap"
)

// This file implements rolling-horizon re-optimization: the strongest
// online strategy in the framework and, with batched matching, the
// second half of the paper's "non-heuristic online algorithms" future
// work. At every task arrival (and on a periodic flush grid of `period`
// seconds) the platform rebuilds a task map over all *pending* tasks
// (published, not yet assigned, pickup still reachable) with each
// driver's current position and availability as her virtual source, runs
// the offline greedy (Algorithm 1) on the snapshot, and commits the
// first leg of each selected task list. Later legs stay uncommitted and
// are re-planned as new demand arrives.

// RunReplan simulates the day under rolling-horizon re-optimization.
// period controls the flush grid that re-examines deferred tasks after
// arrivals go quiet; re-planning itself is triggered by every arrival,
// so accepted customers get an answer with no added latency.
func (e *Engine) RunReplan(tasks []model.Task, period float64) Result {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive replan period %g", period))
	}
	e.reset()
	res := Result{
		PerDriverRevenue: make([]float64, len(e.Drivers)),
		PerDriverProfit:  make([]float64, len(e.Drivers)),
		PerDriverTasks:   make([]int, len(e.Drivers)),
		DriverPaths:      make([][]int, len(e.Drivers)),
		Assignment:       make(map[int]int),
	}
	if len(tasks) == 0 {
		return res
	}

	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return tasks[order[a]].Publish < tasks[order[b]].Publish })

	assigned := make([]bool, len(tasks))
	expired := make([]bool, len(tasks))

	start := tasks[order[0]].Publish
	horizon := start
	for _, ti := range order {
		if tasks[ti].StartBy > horizon {
			horizon = tasks[ti].StartBy
		}
	}

	// Re-plan at every arrival (zero added response latency) and then on
	// a periodic grid until the horizon, so deferred tasks are flushed.
	var rounds []float64
	for _, ti := range order {
		if n := len(rounds); n == 0 || tasks[ti].Publish > rounds[n-1] {
			rounds = append(rounds, tasks[ti].Publish)
		}
	}
	for now := start + period; now <= horizon+period; now += period {
		rounds = append(rounds, now)
	}
	sort.Float64s(rounds)

	next := 0 // next unpublished task position in order
	for _, now := range rounds {
		for next < len(order) && tasks[order[next]].Publish <= now {
			next++
		}
		// Pending demand: published, unassigned, pickup deadline ahead.
		var pending []int
		for _, ti := range order[:next] {
			if assigned[ti] || expired[ti] {
				continue
			}
			if tasks[ti].StartBy < now {
				expired[ti] = true
				res.Rejected++
				continue
			}
			pending = append(pending, ti)
		}
		if len(pending) == 0 {
			continue
		}

		// Virtual market snapshot: each driver planning from her
		// current location and availability.
		var vdrivers []model.Driver
		realOf := make([]int, 0, len(e.Drivers))
		for i, d := range e.Drivers {
			st := &e.states[i]
			availAt := st.freeAt
			if availAt < now {
				availAt = now
			}
			if availAt >= d.End {
				continue // shift effectively over
			}
			vdrivers = append(vdrivers, model.Driver{
				ID:       len(vdrivers),
				Source:   st.loc,
				Dest:     d.Dest,
				Start:    availAt,
				End:      d.End,
				SpeedKmh: d.SpeedKmh,
			})
			realOf = append(realOf, i)
		}
		if len(vdrivers) == 0 {
			continue
		}
		vtasks := make([]model.Task, len(pending))
		for k, ti := range pending {
			vtasks[k] = tasks[ti]
			vtasks[k].ID = k
		}

		g, err := taskmap.New(e.Market, vdrivers, vtasks)
		if err != nil {
			// Inputs were validated at engine construction; a snapshot
			// failure is a programming error.
			panic(fmt.Sprintf("sim: replan snapshot invalid: %v", err))
		}
		plan := offline.Greedy(g)

		// Commit the first leg of every selected task list; later legs
		// stay open for re-planning. Deferring even first legs keeps
		// more options open in principle, but with short pickup notice
		// every deferred round costs reachable candidates, which
		// dominates in practice.
		for _, path := range plan.Paths {
			if path.Len() == 0 {
				continue
			}
			first := path.Tasks[0]
			ti := pending[first]
			task := tasks[ti]
			drv := realOf[path.Driver]
			st := &e.states[drv]
			depart := st.freeAt
			if depart < now {
				depart = now
			}
			arrival := depart + e.Market.DriverTravelTime(e.Drivers[drv], st.loc, task.Source)
			if arrival > task.StartBy {
				continue // the snapshot aged out; re-plan next round
			}
			e.assign(Candidate{Driver: drv, Arrival: arrival}, task)
			assigned[ti] = true
			res.Served++
			res.Assignment[ti] = drv
			res.DriverPaths[drv] = append(res.DriverPaths[drv], ti)
		}
	}

	for ti := range tasks {
		if !assigned[ti] && !expired[ti] {
			res.Rejected++
		}
	}
	e.settle(&res)
	return res
}
