// Package sim is the online market simulator for §V of the paper: tasks
// arrive in publish-time order, the platform must respond instantly by
// assigning a candidate driver or rejecting the task, and drivers move
// through lock/unlock states as they serve assignments.
//
// The engine is event-driven: every entry point enqueues its work —
// task arrivals, driver joins and retirements, rider cancellations —
// onto one priority queue (see event.go) drained through a pluggable
// Clock, with a total, documented merge order for same-timestamp
// events. Candidate generation is pluggable too (CandidateSource):
// the exact linear scan, a grid-indexed pre-filter, and a zone-sharded
// source that queries per-zone spatial indexes concurrently all yield
// bit-identical results; only the wall-clock changes.
//
// The engine owns market state (driver positions, availability, earnings)
// and computes the candidate set for each arriving task exactly as
// Algorithms 3 and 4 prescribe: unlocked drivers who can reach the
// pickup from their current location by the pickup deadline, plus locked
// drivers who can reach it from their in-flight task's destination in
// time. A pluggable Dispatcher chooses among candidates, which is the
// only difference between the paper's two online heuristics.
//
// Driver availability is deadline-based by default, exactly as the
// paper's algorithms prescribe: a driver assigned task m' is treated as
// busy until the task's end deadline t̄+_m' (Algorithm 3/4 step (a) adds
// "locked drivers who can travel from their current destination d̄_m' to
// s̄_m during time t̄+_m' to t̄−_m"). This keeps every online assignment
// a feasible path of the offline task map, so the offline bound Z*_f
// applies to online runs too. Setting Engine.RealTime instead frees a
// driver at her *actual* finish time (arrival + service) — the §III-B
// remark that tasks may finish before t̄+_m — which gives online
// algorithms extra capacity the offline model cannot represent; it is
// kept as an ablation (see the bench harness).
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/model"
)

// Candidate describes one feasible driver for an arriving task.
type Candidate struct {
	Driver  int     // index into the engine's driver slice
	Arrival float64 // earliest time the driver can reach the pickup
	Margin  float64 // δ_{n,m}, Eq. (14): marginal profit of accepting
}

// Dispatcher selects a candidate for each arriving task. Implementations
// must not retain the candidate slice. Returning -1 rejects the task.
type Dispatcher interface {
	Name() string
	Choose(task model.Task, cands []Candidate, rng *rand.Rand) int
}

// CandidateSource enumerates the feasible drivers for an arriving task.
// It is the engine's pluggable answer to "who can serve this?": the
// linear scan evaluates every driver (exact, O(N) per task), the
// grid-indexed source pre-filters with a spatial index, and the sharded
// source partitions the fleet into concurrent per-zone indexes — all
// running the same exact feasibility checks on the survivors, so every
// source produces identical candidate sets and therefore bit-identical
// simulation results.
//
// Implementations must append candidates in ascending driver order: the
// dispatchers' tie-breaking (and their consumption of the engine's RNG)
// is order-sensitive, and reproducibility across sources depends on a
// canonical order.
type CandidateSource interface {
	Name() string
	// Bind attaches the source to an engine and rebuilds any internal
	// state from the engine's current driver states and presence flags.
	// The engine calls it once per Run* entry point, right after
	// resetting driver state.
	Bind(e *Engine)
	// Candidates appends every feasible candidate for task into buf when
	// the dispatch decision happens at time now, and returns buf.
	Candidates(task model.Task, now float64, buf []Candidate) []Candidate
	// Moved notifies the source that driver i's engine state (location,
	// availability) changed after an assignment or a revocation.
	Moved(i int)
	// Presence notifies the source that driver i entered (mid-day join)
	// or left (retirement) the market. Absent drivers are never
	// candidates — the engine's exact feasibility check enforces that
	// regardless, so sources may treat this purely as a pruning hint.
	Presence(i int, present bool)
}

// Result aggregates a full simulation run. Per-driver slices are indexed
// like the input driver slice.
type Result struct {
	Served   int
	Rejected int

	// Cancelled counts tasks withdrawn by their rider before pickup —
	// dropped from a pending pool, or revoked after assignment (revoked
	// tasks are not double-counted in Served). Zero for event-free runs.
	Cancelled int

	Revenue     float64 // Σ p_m over served tasks (market revenue, Fig. 6)
	TotalProfit float64 // drivers' total profit, objective Eq. (4)

	PerDriverRevenue []float64
	PerDriverProfit  []float64
	PerDriverTasks   []int

	// DriverPaths[n] lists the task indices served by driver n in
	// service order; Assignment maps task index → driver index.
	DriverPaths [][]int
	Assignment  map[int]int
}

// ServeRate returns the fraction of tasks served (Fig. 7).
func (r Result) ServeRate() float64 {
	total := r.Served + r.Rejected
	if total == 0 {
		return 0
	}
	return float64(r.Served) / float64(total)
}

// AvgRevenuePerDriver returns mean revenue per driver (Fig. 8), over all
// drivers in the market including idle ones, matching the paper's
// "average payoff received by each driver".
func (r Result) AvgRevenuePerDriver() float64 {
	if len(r.PerDriverRevenue) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.PerDriverRevenue {
		sum += v
	}
	return sum / float64(len(r.PerDriverRevenue))
}

// AvgTasksPerDriver returns mean served tasks per driver (Fig. 9).
func (r Result) AvgTasksPerDriver() float64 {
	if len(r.PerDriverTasks) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.PerDriverTasks {
		sum += float64(v)
	}
	return sum / float64(len(r.PerDriverTasks))
}

// driverState is the engine's mutable view of one driver.
type driverState struct {
	freeAt  float64   // when the driver can next move (real finish time)
	loc     geo.Point // current position (last dropoff, or source)
	revenue float64
	cost    float64 // travel cost incurred so far (deadhead + service)
	ntasks  int
}

// Engine simulates one day of the online market. Construct with New.
type Engine struct {
	Market  model.Market
	Drivers []model.Driver

	// RealTime frees drivers at their actual finish time instead of the
	// served task's end deadline. See the package comment.
	RealTime bool

	// Clock paces the event drain of time-keyed runs; nil runs at full
	// speed (InstantClock).
	Clock Clock

	// MatchWorkers bounds the goroutines solving a batched window's
	// independent task–driver components concurrently; values below 2
	// solve serially. Results are bit-identical for every worker count
	// (the window differential tests sweep it) — the knob is purely
	// operational, like shard counts.
	MatchWorkers int

	// DenseWindows forces batched windows through the pre-decomposition
	// dense solve — the differential oracle for the sparse component
	// path. Assignments are identical either way; only speed and
	// allocation behaviour change. Tests and the bench harness flip it;
	// production leaves it false.
	DenseWindows bool

	// pricer, when installed via SetLivePricer, re-prices every arriving
	// order from live demand/supply observations (see livepricing.go).
	pricer       LivePricer
	pricerDecay  float64
	pricerMarkup float64

	states     []driverState
	present    []bool // false: not yet joined, or retired
	allIDs     []int  // 0..len(Drivers)-1, the linear scan's id list
	db         distBatch
	rng        *rand.Rand
	seed       int64           // the seed rng was constructed from
	rngSrc     *countingSource // rng's underlying source, counting draws
	source     CandidateSource
	winScratch *windowScratch // pooled batched-window working set

	// auditHook, when set by tests, observes every batched window right
	// before it is solved and committed.
	auditHook func(r *eventRun, batch []int, decisionAt float64)
}

// New returns an engine over the given market and drivers. It returns an
// error if the inputs fail validation.
func New(m model.Market, drivers []model.Driver, seed int64) (*Engine, error) {
	if err := model.ValidateAll(m, drivers, nil); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	src := newCountingSource(seed)
	e := &Engine{
		Market:  m,
		Drivers: append([]model.Driver(nil), drivers...),
		rng:     rand.New(src),
		seed:    seed,
		rngSrc:  src,
		source:  &ScanSource{},
	}
	e.reset()
	return e, nil
}

// countingSource wraps the seeded RNG source and counts every draw, so
// a suspended run's RNG position is recoverable: re-seeding and
// discarding the same number of draws reproduces the source state
// bit-for-bit (each Int63/Uint64 call advances math/rand's generator by
// exactly one step regardless of which method was called). The durable
// snapshot/restore rail depends on this to keep tie-breaking policies
// (Nearest, Random) deterministic across a crash.
type countingSource struct {
	src rand.Source
	s64 rand.Source64 // src's Source64 view, nil if unsupported
	n   uint64        // draws consumed so far
}

func newCountingSource(seed int64) *countingSource {
	src := rand.NewSource(seed)
	s64, _ := src.(rand.Source64)
	return &countingSource{src: src, s64: s64}
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	if c.s64 != nil {
		return c.s64.Uint64()
	}
	// Mirror math/rand's fallback; counts as one draw per underlying
	// call so replaying n Int63 draws still lands on the same state.
	c.n++
	return uint64(c.src.Int63())>>31 | uint64(c.src.Int63())<<32
}

func (c *countingSource) Seed(seed int64) {
	c.n = 0
	c.src.Seed(seed)
}

// RNGDraws reports how many draws the engine's tie-breaking RNG has
// consumed since construction (or the last SeekRNG). Part of the
// engine's restorable state.
func (e *Engine) RNGDraws() uint64 { return e.rngSrc.n }

// SeekRNG rewinds the engine's RNG to its seed and fast-forwards it by
// n draws, restoring the exact generator state a run that had consumed
// RNGDraws() == n draws was suspended at.
func (e *Engine) SeekRNG(n uint64) {
	src := newCountingSource(e.seed)
	for i := uint64(0); i < n; i++ {
		src.src.Int63()
	}
	src.n = n
	e.rngSrc = src
	e.rng = rand.New(src)
}

// SetCandidateSource swaps the engine's candidate generation strategy.
// Passing nil restores the default linear scan. The source is rebound at
// the start of every Run*, so it may be set at any time between runs.
func (e *Engine) SetCandidateSource(src CandidateSource) {
	if src == nil {
		src = &ScanSource{}
	}
	e.source = src
	e.source.Bind(e)
}

func (e *Engine) reset() {
	e.resetAbsent(nil)
}

// resetAbsent rebuilds driver state for a fresh run, marking the listed
// drivers absent (they join mid-run via events) before the candidate
// source rebuilds its indexes from the presence flags.
func (e *Engine) resetAbsent(absent []int) {
	e.states = make([]driverState, len(e.Drivers))
	e.present = make([]bool, len(e.Drivers))
	for i, d := range e.Drivers {
		e.states[i] = driverState{freeAt: d.Start, loc: d.Source}
		e.present[i] = true
	}
	for _, i := range absent {
		e.present[i] = false
	}
	e.source.Bind(e)
}

// Run processes the tasks in publish order through the dispatcher and
// returns the aggregated result. The engine resets its state first, so
// one engine can run several dispatchers in sequence; tasks are not
// mutated. It is RunScenario with no dynamic events.
func (e *Engine) Run(tasks []model.Task, d Dispatcher) Result {
	return e.RunScenario(tasks, nil, d)
}

// RunScenario simulates the day under instant dispatch with dynamic
// market events interleaved into the arrival stream: drivers joining
// and retiring mid-day, riders cancelling before pickup. Events are
// validated against the inputs (indices are positions in the slices,
// as in model.Trace); invalid scenarios panic, as they are static
// test/experiment inputs. A nil or empty event slice reproduces Run
// exactly.
func (e *Engine) RunScenario(tasks []model.Task, events []model.MarketEvent, d Dispatcher) Result {
	r := e.newEventRun(tasks, events, true)
	r.d = d
	r.onArrival = r.instantArrival
	for i := range tasks {
		r.add(event{key: tasks[i].Publish, kind: evArrival, seq: i, at: tasks[i].Publish, idx: i})
	}
	r.drain()
	e.settle(&r.res)
	return r.res
}

// RunByValue processes tasks in descending price order — the offline
// variant of the maximum-marginal-value heuristic the paper sketches at
// the end of §V-B ("it will be more efficient to deal with the tasks
// which have higher values firstly"). Each dispatch decision still
// happens at the task's own publish time; only the drain order changes,
// so the run is keyed by price, not time, and supports no churn events.
func (e *Engine) RunByValue(tasks []model.Task, d Dispatcher) Result {
	r := e.newEventRun(tasks, nil, false)
	r.d = d
	r.onArrival = r.instantArrival
	for i := range tasks {
		r.add(event{key: -tasks[i].Price, kind: evArrival, seq: i, at: tasks[i].Publish, idx: i})
	}
	r.drain()
	e.settle(&r.res)
	return r.res
}

// settle closes per-driver accounts: profit is revenue minus excess
// cost, where excess cost adds the final leg home and credits the
// baseline source→destination trip (Eq. 4).
func (e *Engine) settle(res *Result) {
	for i := range e.states {
		st := &e.states[i]
		drv := e.Drivers[i]
		res.PerDriverRevenue[i] = st.revenue
		res.PerDriverTasks[i] = st.ntasks
		if st.ntasks == 0 {
			continue
		}
		homeCost := e.Market.TravelCost(st.loc, drv.Dest)
		excess := st.cost + homeCost - e.Market.BaselineCost(drv)
		res.PerDriverProfit[i] = st.revenue - excess
		res.TotalProfit += res.PerDriverProfit[i]
		res.Revenue += st.revenue
	}
}

// candidates computes the feasible driver set for the task when the
// dispatch decision is made at time now (== task.Publish for instant
// dispatch; later for batched dispatch), appending into buf. It is the
// exact linear scan that ScanSource exposes, batching shared-endpoint
// distances through Market.Batch when one is installed.
func (e *Engine) candidates(task model.Task, now float64, buf []Candidate) []Candidate {
	service := e.Market.TravelTime(task.Source, task.Dest, 0)
	serviceCost := e.Market.ServiceCost(task)
	if cap(e.allIDs) < len(e.Drivers) {
		e.allIDs = make([]int, len(e.Drivers))
		for i := range e.allIDs {
			e.allIDs[i] = i
		}
	}
	return e.scoreCandidates(&e.db, e.allIDs[:len(e.Drivers)], task, now, service, serviceCost, buf)
}

// candidateFor runs the exact feasibility checks of Algorithms 3–4 for
// one driver; service and serviceCost are the task-only terms hoisted out
// of the per-driver loop. It is the per-pair composition of
// pickupArrival and finishCandidate — the batched scoring path
// (scoreCandidates) runs the same two stages over whole candidate sets
// with the distances computed in shared-endpoint batches, and must stay
// value-identical to this function.
func (e *Engine) candidateFor(i int, task model.Task, now, service, serviceCost float64) (Candidate, bool) {
	if !e.present[i] {
		return Candidate{}, false // not yet joined, or retired
	}
	pickupKm := e.Market.Dist(e.states[i].loc, task.Source)
	arrival, ok := e.pickupArrival(i, task, now, pickupKm)
	if !ok {
		return Candidate{}, false
	}
	homeKm := e.Market.Dist(task.Dest, e.Drivers[i].Dest)
	return e.finishCandidate(i, task, service, serviceCost, arrival, pickupKm, homeKm)
}

// pickupArrival computes when driver i would reach the pickup (given
// the already-computed distance from her location to it) and checks the
// pickup-deadline clause. The second return is false when she cannot
// make the pickup.
func (e *Engine) pickupArrival(i int, task model.Task, now, pickupKm float64) (float64, bool) {
	drv := e.Drivers[i]
	st := &e.states[i]

	depart := st.freeAt
	if depart < now && st.ntasks > 0 {
		// The driver has been idle at her last dropoff since
		// freeAt; she departs when notified.
		depart = now
	}
	if st.ntasks == 0 {
		// Not yet started: she leaves her source no earlier than
		// shift start or the task's arrival, whichever is later.
		if depart < now {
			depart = now
		}
		if depart < drv.Start {
			depart = drv.Start
		}
	}
	arrival := depart + e.Market.TravelTimeKm(pickupKm, drv.SpeedKmh)
	if arrival > task.StartBy {
		return 0, false // cannot reach the pickup by its deadline
	}
	return arrival, true
}

// finishCandidate applies the dropoff-deadline and return-home clauses
// and prices the margin; pickupKm and homeKm are the already-computed
// location→pickup and dropoff→home distances.
func (e *Engine) finishCandidate(i int, task model.Task, service, serviceCost, arrival, pickupKm, homeKm float64) (Candidate, bool) {
	drv := e.Drivers[i]
	st := &e.states[i]

	finish := arrival + service
	if finish > task.EndBy {
		return Candidate{}, false // cannot complete by the dropoff deadline
	}
	// Return-home clause: after the task the driver must still make
	// her own destination by shift end. In deadline mode she is held
	// until t̄+_m, matching Eqs. (2)–(3); in real-time mode she
	// leaves at her actual finish.
	releasedAt := task.EndBy
	if e.RealTime {
		releasedAt = finish
	}
	if releasedAt+e.Market.TravelTimeKm(homeKm, drv.SpeedKmh) > drv.End {
		return Candidate{}, false
	}

	// δ_{n,m}, Eq. (14): price minus the marginal cost of inserting
	// the task after the driver's current plan.
	deadhead := e.Market.TravelCostKm(pickupKm)
	newHome := e.Market.TravelCostKm(homeKm)
	oldHome := e.Market.TravelCost(st.loc, drv.Dest)
	margin := task.Price - (deadhead + serviceCost + newHome - oldHome)

	return Candidate{Driver: i, Arrival: arrival, Margin: margin}, true
}

// assign commits the task to the candidate driver.
func (e *Engine) assign(c Candidate, task model.Task) {
	st := &e.states[c.Driver]
	st.cost += e.Market.TravelCost(st.loc, task.Source) + e.Market.ServiceCost(task)
	st.revenue += task.Price
	st.ntasks++
	if e.RealTime {
		st.freeAt = c.Arrival + e.Market.TravelTime(task.Source, task.Dest, 0)
	} else {
		st.freeAt = task.EndBy
	}
	st.loc = task.Dest
	e.source.Moved(c.Driver)
	if e.pricer != nil {
		// The driver's capacity frees next at the dropoff zone.
		e.pricer.ObserveSupply(task.Dest, 1)
	}
}
