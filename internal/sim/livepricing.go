package sim

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/model"
)

// This file feeds a surge pricer live from the event loop. Offline
// experiments stamp prices onto a trace before the day starts
// (pricing.ApplyPricing); a live market cannot — the multiplier at a
// task's publish instant depends on every arrival, assignment and
// driver movement before it. With a LivePricer installed the engine
// re-prices each order at its arrival event and streams the market mass
// it observes back into the pricer:
//
//   - demand:  +1 at the pickup zone when an order is submitted,
//   - supply:  +1 at a driver's location when she enters the market
//     (run start or mid-day join), at the dropoff zone when an
//     assignment commits (where her capacity frees next), and at her
//     restored location when a cancellation revokes an assignment,
//   - Decay:   once per closed batch window, so surge tracks recent
//     imbalance instead of the whole day.
//
// Every feed point sits on the single-goroutine event drain, so the
// observation order is a pure function of the event merge order — the
// same differential discipline as candidate generation: sources, shard
// counts and match workers cannot change it, and results stay
// bit-identical across all of them (see livepricing_test.go). The
// pricer is Reset at the start of every run so repeated days are
// reproducible.

// LivePricer is the engine-facing surface of a zone pricer fed live
// from the event loop (pricing.Surge implements it). Implementations
// must be safe for concurrent readers, though the engine itself only
// calls them from the event goroutine.
type LivePricer interface {
	Price(t model.Task) float64
	ObserveDemand(p geo.Point, weight float64)
	ObserveSupply(p geo.Point, weight float64)
	Decay(gamma float64)
	Reset()
}

// SetLivePricer installs (or, with nil, removes) a live pricer. Each
// arriving order's Price is recomputed by the pricer at its publish
// event — the caller's task slice is never mutated — and WTP is
// restamped as Price·(1+wtpMarkup), preserving the §III-A invariant
// that published tasks cover their fare. decayGamma in (0, 1] ages the
// pricer's observations at every batch-window close (1 = no decay; the
// only sensible value for instant dispatch, which has no windows).
func (e *Engine) SetLivePricer(p LivePricer, decayGamma, wtpMarkup float64) {
	if p == nil {
		e.pricer = nil
		return
	}
	if !(decayGamma > 0 && decayGamma <= 1) {
		panic(fmt.Sprintf("sim: live pricing decay %g outside (0, 1]", decayGamma))
	}
	if wtpMarkup < 0 {
		panic(fmt.Sprintf("sim: negative live pricing wtp markup %g", wtpMarkup))
	}
	e.pricer = p
	e.pricerDecay = decayGamma
	e.pricerMarkup = wtpMarkup
}

// resetLivePricing zeroes the pricer and seeds the opening supply: one
// observation per driver present at the run's start, in ascending
// driver order (the canonical order the differential discipline keys
// on). Called by newEventRun after driver state is reset.
func (r *eventRun) resetLivePricing() {
	e := r.e
	if e.pricer == nil {
		return
	}
	e.pricer.Reset()
	// The run owns a private copy of the tasks from here on: arrival
	// events overwrite Price/WTP, and callers' slices must not change.
	r.tasks = append([]model.Task(nil), r.tasks...)
	for i := range e.Drivers {
		if e.present[i] {
			e.pricer.ObserveSupply(e.states[i].loc, 1)
		}
	}
}

// priceArrival observes the order's demand and re-prices it at its
// publish event, before any mode handler sees it.
func (r *eventRun) priceArrival(ti int) {
	e := r.e
	if e.pricer == nil {
		return
	}
	task := &r.tasks[ti]
	e.pricer.ObserveDemand(task.Source, 1)
	task.Price = e.pricer.Price(*task)
	task.WTP = task.Price * (1 + e.pricerMarkup)
}
