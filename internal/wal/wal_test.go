package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func appendAll(t *testing.T, l *Log, payloads ...[]byte) {
	t.Helper()
	for i, p := range payloads {
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		_ = lsn
	}
}

func mustRecover(t *testing.T, dir string) *Recovery {
	t.Helper()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return rec
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, string(make([]byte, i%7))))
	}
	return out
}

// TestAppendRecoverRoundTrip: every appended record comes back, in
// order, with the right LSNs, across all fsync policies.
func TestAppendRecoverRoundTrip(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Create(dir, Options{Fsync: pol, SyncInterval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			ps := payloads(100)
			appendAll(t, l, ps...)
			if got := l.NextLSN(); got != 100 {
				t.Fatalf("NextLSN = %d, want 100", got)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			rec := mustRecover(t, dir)
			if rec.TornTail || rec.Snapshot != nil || rec.SnapshotLSN != 0 {
				t.Fatalf("unexpected recovery shape: %+v", rec)
			}
			if len(rec.Records) != 100 || rec.NextLSN != 100 {
				t.Fatalf("recovered %d records, next %d", len(rec.Records), rec.NextLSN)
			}
			for i, r := range rec.Records {
				if r.LSN != uint64(i) || !bytes.Equal(r.Data, ps[i]) {
					t.Fatalf("record %d: LSN %d data %q", i, r.LSN, r.Data)
				}
			}
		})
	}
}

// TestSegmentRotation: a tiny segment bound forces rotation; recovery
// stitches the chain back together and appending continues the LSNs.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(50)
	appendAll(t, l, ps...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments; rotation never fired", len(segs))
	}
	rec := mustRecover(t, dir)
	if len(rec.Records) != 50 {
		t.Fatalf("recovered %d of 50 records across %d segments", len(rec.Records), len(segs))
	}

	// Reopen and append more: the sequence continues.
	l, err = Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := l.NextLSN(); got != 50 {
		t.Fatalf("NextLSN after reopen = %d, want 50", got)
	}
	appendAll(t, l, payloads(25)...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec = mustRecover(t, dir)
	if len(rec.Records) != 75 || rec.NextLSN != 75 {
		t.Fatalf("after reopen: %d records, next %d", len(rec.Records), rec.NextLSN)
	}
}

// TestSnapshotBoundsReplay: recovery returns the newest snapshot and
// only the record suffix after it.
func TestSnapshotBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, payloads(10)...)
	if err := l.WriteSnapshot([]byte("state@10")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendAll(t, l, payloads(5)...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec := mustRecover(t, dir)
	if string(rec.Snapshot) != "state@10" || rec.SnapshotLSN != 10 {
		t.Fatalf("snapshot %q at %d", rec.Snapshot, rec.SnapshotLSN)
	}
	if len(rec.Records) != 5 || rec.Records[0].LSN != 10 {
		t.Fatalf("suffix: %d records from LSN %d", len(rec.Records), rec.Records[0].LSN)
	}
}

// TestSnapshotPruning: old snapshots and fully-covered segments are
// removed; recovery still works from what remains.
func TestSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{SegmentBytes: 128, KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		appendAll(t, l, payloads(20)...)
		if err := l.WriteSnapshot([]byte(fmt.Sprintf("state@%d", l.NextLSN()))); err != nil {
			t.Fatal(err)
		}
	}
	appendAll(t, l, payloads(3)...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, snaps, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots retained, want 2", len(snaps))
	}
	all := 0
	for _, s := range segs {
		_ = s
		all++
	}
	// 120 tiny records at 128-byte segments is many segments; pruning
	// must have dropped the fully-covered prefix.
	if all > 8 {
		t.Fatalf("%d segments survive pruning", all)
	}
	rec := mustRecover(t, dir)
	if rec.SnapshotLSN != 120 || string(rec.Snapshot) != "state@120" {
		t.Fatalf("newest snapshot at %d: %q", rec.SnapshotLSN, rec.Snapshot)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("suffix of %d records, want 3", len(rec.Records))
	}
}

// TestCorruptSnapshotFallsBack: a snapshot with flipped bits is skipped
// in favour of the previous one, with the correspondingly longer record
// suffix.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{KeepSnapshots: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, payloads(4)...)
	if err := l.WriteSnapshot([]byte("good@4")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, payloads(4)...)
	if err := l.WriteSnapshot([]byte("bad@8")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, fmt.Sprintf(snapPattern, 8)), -1)
	rec := mustRecover(t, dir)
	if string(rec.Snapshot) != "good@4" || rec.SnapshotLSN != 4 {
		t.Fatalf("fallback snapshot %q at %d", rec.Snapshot, rec.SnapshotLSN)
	}
	if len(rec.Records) != 4 {
		t.Fatalf("suffix of %d records, want 4", len(rec.Records))
	}
}

// corruptFile flips one bit of the file; off<0 counts from the end.
func corruptFile(t *testing.T, path string, off int64) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(buf))
	}
	buf[off] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptInteriorIsErrCorrupt: flipped bits before the final record
// are unrecoverable and typed ErrCorrupt, not ErrCorruptTail.
func TestCorruptInteriorIsErrCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(10)
	appendAll(t, l, ps...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the middle of the file: some interior record breaks.
	seg := filepath.Join(dir, fmt.Sprintf(segPattern, 0))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	corruptFile(t, seg, fi.Size()/2)
	_, rerr := Recover(dir)
	if !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("Recover = %v, want ErrCorrupt", rerr)
	}
	if errors.Is(rerr, ErrCorruptTail) {
		t.Fatalf("interior corruption misclassified as tail corruption")
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
	// Repair refuses interior damage.
	if _, err := Repair(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Repair = %v, want refusal with ErrCorrupt", err)
	}
}

// TestRepairDropsCorruptTail: a corrupt final record is surfaced typed,
// Repair truncates exactly it, and recovery then returns the clean
// prefix.
func TestRepairDropsCorruptTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(10)
	appendAll(t, l, ps...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, fmt.Sprintf(segPattern, 0)), -2)
	if _, err := Recover(dir); !errors.Is(err, ErrCorruptTail) {
		t.Fatalf("Recover = %v, want ErrCorruptTail", err)
	}
	dropped, err := Repair(dir)
	if err != nil || dropped <= 0 {
		t.Fatalf("Repair = %d, %v", dropped, err)
	}
	rec := mustRecover(t, dir)
	if len(rec.Records) != 9 || rec.NextLSN != 9 {
		t.Fatalf("after repair: %d records, next %d", len(rec.Records), rec.NextLSN)
	}
}

// TestCreateOnExistingLogFails and open/recover on nothing.
func TestCreateOpenEdges(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Create(dir, Options{}); !errors.Is(err, ErrExists) {
		t.Fatalf("second Create = %v, want ErrExists", err)
	}
	empty := t.TempDir()
	if _, err := Recover(empty); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Recover(empty) = %v, want ErrNotFound", err)
	}
	if _, err := Open(empty, Options{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open(empty) = %v, want ErrNotFound", err)
	}
	if _, err := Recover(filepath.Join(empty, "missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Recover(missing) = %v, want ErrNotFound", err)
	}
}

// TestClosedLogRefuses: appends and snapshots after Close are typed.
func TestClosedLogRefuses(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v", err)
	}
	if err := l.WriteSnapshot([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteSnapshot after Close = %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close = %v", err)
	}
}

// TestStatsCount: the append-path counters move.
func TestStatsCount(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, payloads(7)...)
	st := l.Stats()
	if st.Records != 7 || st.Bytes <= 0 || st.Syncs < 7 {
		t.Fatalf("stats %+v", st)
	}
	l.Close()
}

// TestParseFsyncPolicy round-trips the CLI names.
func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
