package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// These tests pin the corners the differential and property sweeps do
// not reach: policy parsing, explicit Sync, the interval syncer, repair
// of already-clean logs, snapshot fallback across every way a snapshot
// file can be damaged, and the ErrCorrupt taxonomy for damage that is
// NOT confined to the tail.

func TestFsyncPolicyStrings(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		s := p.String()
		back, err := ParseFsyncPolicy(s)
		if err != nil || back != p {
			t.Fatalf("round trip %v -> %q -> %v, %v", p, s, back, err)
		}
	}
	if got := FsyncPolicy(99).String(); got != "FsyncPolicy(99)" {
		t.Fatalf("unknown policy prints %q", got)
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy parsed")
	}
}

func TestSyncAndClosedPaths(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	// Sync on a clean log, then on a dirty one.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Records != 1 || st.Syncs < 2 {
		t.Fatalf("stats %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close: %v", err)
	}
	if _, err := l.Append([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v", err)
	}
	if err := l.WriteSnapshot([]byte("s")); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteSnapshot after close: %v", err)
	}
}

func TestIntervalSyncerTicks(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Fsync: FsyncInterval, SyncInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("tick me durable")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAppendOversizeRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, maxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestRepairCleanAndMissing(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, payloads(3)...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := Repair(dir); n != 0 || err != nil {
		t.Fatalf("repair of a clean log: %d bytes, %v", n, err)
	}
	if _, err := Repair(t.TempDir()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("repair of an empty dir: %v", err)
	}
}

// TestSnapshotFallbackVariants: recovery walks snapshots newest-first
// and must skip, without failing, every way a snapshot file can be
// unusable — truncated, wrong magic, mislabelled LSN, size mismatch,
// bad checksum, or from a future the records do not reach — landing on
// the newest valid one.
func TestSnapshotFallbackVariants(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(5)
	appendAll(t, l, ps[:3]...)
	if err := l.WriteSnapshot([]byte("good-state")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, ps[3:]...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A zoo of broken snapshots, all with LSNs above the good one so the
	// newest-first walk tries every variant before falling back.
	mkSnap := func(lsn uint64, payload []byte, mutate func([]byte) []byte) {
		buf := make([]byte, headerLen+frameLen+len(payload))
		copy(buf[:8], snapMagic)
		binary.LittleEndian.PutUint64(buf[8:], lsn)
		binary.LittleEndian.PutUint32(buf[headerLen:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[headerLen+4:], crc32.Checksum(payload, crcTable))
		copy(buf[headerLen+frameLen:], payload)
		if mutate != nil {
			buf = mutate(buf)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf(snapPattern, lsn)), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mkSnap(4, []byte("truncated"), func(b []byte) []byte { return b[:headerLen] })
	mkSnap(5, []byte("bad-magic"), func(b []byte) []byte { copy(b[:8], "XXXXXXXX"); return b })
	mkSnap(6, []byte("mislabelled"), func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:], 999)
		return b
	})
	mkSnap(7, []byte("short-body"), func(b []byte) []byte { return b[:len(b)-2] })
	mkSnap(8, []byte("bad-crc"), func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b })
	mkSnap(100, []byte("from-the-future"), nil) // valid, but covers records the log lacks

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "good-state" || rec.SnapshotLSN != 3 {
		t.Fatalf("fell back to %q at LSN %d", rec.Snapshot, rec.SnapshotLSN)
	}
	if len(rec.Records) != 2 || !bytes.Equal(rec.Records[0].Data, ps[3]) {
		t.Fatalf("suffix: %d records", len(rec.Records))
	}
}

// TestInteriorDamageIsCorrupt: damage NOT confined to the final record
// of the final segment is ErrCorrupt — torn interior segments, broken
// headers, and gaps in the segment chain alike.
func TestInteriorDamageIsCorrupt(t *testing.T) {
	// A master log with several small segments.
	mk := func(t *testing.T) (string, []segFile) {
		dir := t.TempDir()
		l, err := Create(dir, Options{SegmentBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, payloads(9)...)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _, err := listFiles(dir)
		if err != nil || len(segs) < 3 {
			t.Fatalf("want ≥3 segments, got %d (%v)", len(segs), err)
		}
		return dir, segs
	}

	t.Run("torn-interior-segment", func(t *testing.T) {
		dir, segs := mk(t)
		sz, err := fileSize(segs[0].path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(segs[0].path, sz-1); err != nil {
			t.Fatal(err)
		}
		if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("torn interior segment: %v", err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open over torn interior segment: %v", err)
		}
	})

	t.Run("bad-segment-magic", func(t *testing.T) {
		dir, segs := mk(t)
		corruptFile(t, segs[1].path, 0)
		if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bad magic: %v", err)
		}
	})

	t.Run("header-lsn-mismatch", func(t *testing.T) {
		dir, segs := mk(t)
		corruptFile(t, segs[1].path, 8)
		if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("header LSN mismatch: %v", err)
		}
	})

	t.Run("segment-chain-gap", func(t *testing.T) {
		dir, segs := mk(t)
		if err := os.Remove(segs[1].path); err != nil {
			t.Fatal(err)
		}
		if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("chain gap: %v", err)
		}
	})

	t.Run("header-truncated", func(t *testing.T) {
		dir, segs := mk(t)
		if err := os.Truncate(segs[1].path, headerLen-3); err != nil {
			t.Fatal(err)
		}
		if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated header: %v", err)
		}
	})
}

func TestCreateEdges(t *testing.T) {
	// The target path is an existing file: MkdirAll must fail typed.
	f := filepath.Join(t.TempDir(), "a-file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(f, Options{}); err == nil {
		t.Fatal("Create over a file succeeded")
	}
	// A directory holding only a snapshot still refuses Create (the
	// snapshot belongs to SOME log) and refuses Open (no segments).
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf(snapPattern, 0)), []byte("s"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, Options{}); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over a snapshot-only dir: %v", err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open of a snapshot-only dir: %v", err)
	}
}

// TestCompleteBadRecordWithTrailingBytes: a record that fails its CRC
// but has more records AFTER it is interior corruption — ErrCorrupt,
// never the repairable ErrCorruptTail — whether the bad record sits in
// the last segment or an earlier one. Repair must refuse both.
func TestCompleteBadRecordWithTrailingBytes(t *testing.T) {
	t.Run("last-segment", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, payloads(2)...)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _, err := listFiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		// First payload byte of the FIRST record, which has a complete
		// second record after it.
		corruptFile(t, segs[0].path, headerLen+frameLen)
		if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) || errors.Is(err, ErrCorruptTail) {
			t.Fatalf("bad record with trailing bytes: %v", err)
		}
		if _, err := Repair(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Repair of interior corruption: %v", err)
		}
	})
	t.Run("earlier-segment", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Create(dir, Options{SegmentBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, payloads(9)...)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _, err := listFiles(dir)
		if err != nil || len(segs) < 2 {
			t.Fatalf("want ≥2 segments, got %d (%v)", len(segs), err)
		}
		corruptFile(t, segs[0].path, headerLen+frameLen)
		if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) || errors.Is(err, ErrCorruptTail) {
			t.Fatalf("bad record in a non-last segment: %v", err)
		}
	})
}

// TestOpenTruncatesTornTail: Open over a crash artifact (incomplete
// final frame) silently drops the torn frame and resumes appending on
// the record boundary.
func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, payloads(2)...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	sz, err := fileSize(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0].path, sz-1); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextLSN(); got != 1 {
		t.Fatalf("after dropping the torn record NextLSN = %d, want 1", got)
	}
	if _, err := l.Append([]byte("replacement")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil || len(rec.Records) != 2 || string(rec.Records[1].Data) != "replacement" {
		t.Fatalf("recovery after torn-tail reopen: %v, %d records", err, len(rec.Records))
	}
}

func TestOpenOnFilePath(t *testing.T) {
	f := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f, Options{}); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Open on a file: %v", err)
	}
	if _, err := Recover(f); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Recover on a file: %v", err)
	}
}

// TestRotateIntoBlockedPath: rotation must surface startSegment
// failures through Append instead of silently writing past the bound.
func TestRotateIntoBlockedPath(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Squat on every segment name a rotation could want.
	for lsn := uint64(1); lsn < 16; lsn++ {
		if err := os.Mkdir(filepath.Join(dir, fmt.Sprintf(segPattern, lsn)), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	var rotErr error
	for i := 0; i < 16; i++ {
		if _, rotErr = l.Append(make([]byte, 60)); rotErr != nil {
			break
		}
	}
	if rotErr == nil {
		t.Fatal("rotation into a blocked segment path succeeded")
	}
}

// TestSnapshotWriteFailures: both the temp-file write and the final
// rename must fail loudly (and clean up the temp file) when blocked.
func TestSnapshotWriteFailures(t *testing.T) {
	t.Run("tmp-blocked", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		appendAll(t, l, payloads(1)...)
		tmp := filepath.Join(dir, fmt.Sprintf(snapPattern, l.NextLSN())+".tmp")
		if err := os.Mkdir(tmp, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteSnapshot([]byte("s")); err == nil {
			t.Fatal("snapshot wrote through a blocked temp path")
		}
	})
	t.Run("rename-blocked", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		appendAll(t, l, payloads(1)...)
		final := filepath.Join(dir, fmt.Sprintf(snapPattern, l.NextLSN()))
		if err := os.Mkdir(final, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteSnapshot([]byte("s")); err == nil {
			t.Fatal("snapshot renamed over a directory")
		}
		if _, err := os.Stat(final + ".tmp"); !os.IsNotExist(err) {
			t.Fatalf("temp file left behind: %v", err)
		}
	})
}

// TestSnapshotSyncsDirtyTail: under FsyncOff a snapshot must first push
// the records it claims to cover to stable storage — observable as a
// sync on a dirty log.
func TestSnapshotSyncsDirtyTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, payloads(2)...)
	before := l.Stats().Syncs
	if err := l.WriteSnapshot([]byte("covers-2")); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Syncs <= before {
		t.Fatal("snapshot did not sync the dirty tail first")
	}
	rec, err := Recover(dir)
	if err != nil || rec.SnapshotLSN != 2 || len(rec.Records) != 0 {
		t.Fatalf("recovery after snapshot: %v, LSN %d, %d records", err, rec.SnapshotLSN, len(rec.Records))
	}
}
