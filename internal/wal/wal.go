// Package wal is an append-only, checksummed, length-prefixed
// write-ahead log with segment rotation, periodic snapshot files and
// crash recovery. It stores opaque payloads — the dispatch layer
// defines what a record means — and guarantees, per fsync policy, that
// an acknowledged Append survives a process kill (every policy: the
// record bytes reach the file descriptor before Append returns) and a
// machine crash (FsyncAlways: synced before Append returns;
// FsyncInterval: synced at least every interval; FsyncOff: whenever the
// OS flushes its page cache).
//
// On-disk layout, one directory per log:
//
//	seg-<firstLSN>.wal   header (magic, version, first LSN), then
//	                     records: u32 length, u32 CRC32-C, payload
//	snap-<LSN>.snap      header (magic, version, LSN), u32 length,
//	                     u32 CRC32-C, payload
//
// LSNs number records from 0 in append order; a snapshot at LSN L
// captures the state after applying records [0, L), so recovery loads
// the newest valid snapshot and replays only the record suffix [L, ∞).
// Recovery distinguishes a torn tail — an incomplete final record, the
// signature of a crash mid-append, dropped silently because it was
// never acknowledged as durable — from a corrupt tail (a complete final
// record whose checksum fails: flipped bits, not a torn write), which
// is reported as typed ErrCorruptTail and never dropped without an
// explicit Repair. Corruption anywhere before the final record is
// ErrCorrupt: the log is not trustworthy and no silent recovery exists.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Typed errors; match with errors.Is.
var (
	// ErrCorruptTail: the final record of the log is complete but fails
	// its checksum. Unlike a torn tail it cannot be the artifact of a
	// crashed append (those leave short frames), so it is surfaced
	// instead of silently dropped; Repair truncates it explicitly.
	ErrCorruptTail = errors.New("wal: corrupt tail record")
	// ErrCorrupt: a record before the final one fails its frame or
	// checksum, or the segment chain is inconsistent. There is no safe
	// automatic recovery.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed: the log was closed.
	ErrClosed = errors.New("wal: log closed")
	// ErrExists: Create on a directory that already holds a log.
	ErrExists = errors.New("wal: log already exists")
	// ErrNotFound: Recover/Open on a directory with no log in it.
	ErrNotFound = errors.New("wal: no log in directory")
)

// FsyncPolicy selects when appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs before every Append returns: no acknowledged
	// record is ever lost, at the price of one fsync per record.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval writes each record to the file descriptor
	// immediately (process kills lose nothing) and fsyncs on a timer:
	// a machine crash loses at most the last interval of records.
	FsyncInterval
	// FsyncOff never fsyncs on the append path; the OS page cache
	// decides. Rotation, snapshots and Close still sync.
	FsyncOff
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy converts a policy name (as printed by String) back
// into a FsyncPolicy; CLI front ends use it to parse flags.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
	}
}

// Options configures a Log. The zero value is usable: FsyncAlways,
// 64 MiB segments, 100 ms sync interval, two retained snapshots.
type Options struct {
	// Fsync selects the append durability policy.
	Fsync FsyncPolicy
	// SyncInterval is FsyncInterval's timer period; ≤0 selects 100 ms.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes; ≤0 selects 64 MiB.
	SegmentBytes int64
	// KeepSnapshots bounds how many snapshot files are retained;
	// segments fully covered by the oldest retained snapshot are
	// pruned. ≤0 selects 2.
	KeepSnapshots int
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o
}

const (
	segMagic    = "RSWALSG1"
	snapMagic   = "RSWALSN1"
	headerLen   = 8 + 8 // magic + first LSN (segments) / LSN (snapshots)
	frameLen    = 4 + 4 // u32 payload length + u32 CRC32-C
	maxRecord   = 64 << 20
	segPattern  = "seg-%016x.wal"
	snapPattern = "snap-%016x.snap"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is an open write-ahead log. Safe for concurrent use; appends
// serialize on an internal mutex.
type Log struct {
	mu       sync.Mutex
	dir      string
	opt      Options
	f        *os.File
	segStart uint64 // first LSN of the active segment
	segBytes int64  // bytes written to the active segment
	next     uint64 // next LSN to assign
	frame    []byte // reusable frame assembly buffer
	dirty    bool   // bytes written since the last sync
	records  uint64 // appends since Open/Create
	bytes    int64  // payload+frame bytes since Open/Create
	syncs    uint64 // fsyncs issued since Open/Create
	closed   bool
	stop     chan struct{} // interval syncer shutdown
	done     chan struct{}
}

// Create initializes a fresh log in dir (created if missing, which must
// not already contain one) and opens it for appending from LSN 0.
func Create(dir string, opt Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, snaps, err := listFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 || len(snaps) > 0 {
		return nil, fmt.Errorf("%w: %s", ErrExists, dir)
	}
	l := &Log{dir: dir, opt: opt.withDefaults()}
	if err := l.startSegment(0); err != nil {
		return nil, err
	}
	l.startSyncer()
	return l, nil
}

// Open recovers the log in dir and opens it for appending after the
// last valid record. A torn tail (crash artifact) is truncated away; a
// corrupt tail is refused with ErrCorruptTail (Repair drops it
// explicitly). New records continue the LSN sequence.
func Open(dir string, opt Options) (*Log, error) {
	st, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt.withDefaults()}
	if st.tornSeg != "" {
		// Drop the unacknowledged torn frame so the segment ends on a
		// record boundary again, then continue appending to it.
		if err := os.Truncate(st.tornSeg, st.tornOff); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	last := st.segs[len(st.segs)-1]
	f, err := os.OpenFile(last.path, os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segStart = last.firstLSN
	l.segBytes = end
	l.next = st.next
	l.startSyncer()
	return l, nil
}

// startSegment seals nothing and opens a fresh segment whose first
// record will be LSN first. Caller holds the mutex (or owns l solely).
func (l *Log) startSegment(first uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf(segPattern, first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], first)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segStart = first
	l.segBytes = headerLen
	l.next = first
	return nil
}

func (l *Log) startSyncer() {
	if l.opt.Fsync != FsyncInterval {
		return
	}
	l.stop = make(chan struct{})
	l.done = make(chan struct{})
	go func() {
		defer close(l.done)
		t := time.NewTicker(l.opt.SyncInterval)
		defer t.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				l.mu.Lock()
				if !l.closed && l.dirty {
					l.f.Sync()
					l.syncs++
					l.dirty = false
				}
				l.mu.Unlock()
			}
		}
	}()
}

// Append writes one record and returns its LSN. The record bytes reach
// the file descriptor before Append returns under every policy; under
// FsyncAlways they are also synced to stable storage.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d byte bound", len(payload), maxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.segBytes >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	need := frameLen + len(payload)
	if cap(l.frame) < need {
		l.frame = make([]byte, need)
	}
	frame := l.frame[:need]
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameLen:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.segBytes += int64(need)
	l.dirty = true
	l.records++
	l.bytes += int64(need)
	lsn := l.next
	l.next++
	if l.opt.Fsync == FsyncAlways {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: %w", err)
		}
		l.syncs++
		l.dirty = false
	}
	return lsn, nil
}

// rotate seals the active segment (sync + close) and opens the next
// one. Caller holds the mutex.
func (l *Log) rotate() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.syncs++
	l.dirty = false
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.startSegment(l.next)
}

// Sync forces everything appended so far to stable storage, whatever
// the policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.syncs++
	l.dirty = false
	return nil
}

// NextLSN returns the LSN the next Append will be assigned.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Stats reports append-path counters since the log was opened.
type Stats struct {
	Records uint64 // records appended
	Bytes   int64  // frame bytes appended
	Syncs   uint64 // fsyncs issued
}

// Stats returns the log's append-path counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Records: l.records, Bytes: l.bytes, Syncs: l.syncs}
}

// WriteSnapshot atomically persists a snapshot of the state after every
// record appended so far (its LSN is NextLSN), then prunes snapshots
// beyond the retention bound and any segment fully covered by the
// oldest retained snapshot. The snapshot reaches stable storage before
// WriteSnapshot returns.
func (l *Log) WriteSnapshot(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// The snapshot claims to cover every appended record; make that
	// true on stable storage before the snapshot itself lands.
	if l.dirty {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.syncs++
		l.dirty = false
	}
	lsn := l.next
	final := filepath.Join(l.dir, fmt.Sprintf(snapPattern, lsn))
	tmp := final + ".tmp"
	buf := make([]byte, headerLen+frameLen+len(payload))
	copy(buf[:8], snapMagic)
	binary.LittleEndian.PutUint64(buf[8:], lsn)
	binary.LittleEndian.PutUint32(buf[headerLen:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[headerLen+4:], crc32.Checksum(payload, crcTable))
	copy(buf[headerLen+frameLen:], payload)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(l.dir)
	l.prune()
	return nil
}

// prune drops snapshots beyond the retention bound and segments whose
// every record is covered by the oldest retained snapshot. Best
// effort: pruning failures never fail the snapshot that triggered
// them. Caller holds the mutex.
func (l *Log) prune() {
	segs, snaps, err := listFiles(l.dir)
	if err != nil || len(snaps) == 0 {
		return
	}
	keep := l.opt.KeepSnapshots
	if len(snaps) > keep {
		for _, s := range snaps[:len(snaps)-keep] {
			os.Remove(s.path)
		}
		snaps = snaps[len(snaps)-keep:]
	}
	oldest := snaps[0].lsn
	// A segment is disposable when the next segment starts at or below
	// the oldest retained snapshot LSN (so every record in it is
	// covered) — never the active segment.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].firstLSN <= oldest && segs[i].firstLSN != l.segStart {
			os.Remove(segs[i].path)
		}
	}
}

// Close flushes, syncs and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if serr := l.f.Sync(); serr != nil {
		err = fmt.Errorf("wal: %w", serr)
	} else {
		l.syncs++
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	stop, done := l.stop, l.done
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// syncDir best-effort fsyncs a directory so a rename is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
