package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Record is one recovered log entry.
type Record struct {
	LSN  uint64
	Data []byte
}

// Recovery is everything a crashed process needs to rebuild state: the
// newest valid snapshot (if any) and the record suffix appended after
// it, in LSN order.
type Recovery struct {
	// Snapshot is the newest valid snapshot payload, nil when the log
	// has none. It covers records [0, SnapshotLSN).
	Snapshot    []byte
	SnapshotLSN uint64
	// Records holds the suffix [SnapshotLSN, NextLSN) to replay on top
	// of the snapshot.
	Records []Record
	// NextLSN is where appending resumes.
	NextLSN uint64
	// TornTail reports that the last segment ended in an incomplete
	// frame — the signature of a crash mid-append — which recovery
	// drops (Open truncates it away).
	TornTail bool
}

// Recover scans the log in dir without modifying it. A torn tail is
// reported via Recovery.TornTail; a complete final record with a bad
// checksum returns ErrCorruptTail; corruption before the final record
// returns ErrCorrupt.
func Recover(dir string) (*Recovery, error) {
	st, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{NextLSN: st.next, TornTail: st.tornSeg != ""}
	// Walk snapshots newest-first until one parses; a truncated or
	// corrupt newer snapshot (crash during WriteSnapshot never leaves
	// one, but disks do) falls back to the one before it.
	for i := len(st.snaps) - 1; i >= 0; i-- {
		payload, err := readSnapshot(st.snaps[i].path, st.snaps[i].lsn)
		if err != nil {
			continue
		}
		if st.snaps[i].lsn > st.next {
			// Snapshot from a future the log doesn't reach — the tail
			// segments it covered are gone. Unusable.
			continue
		}
		rec.Snapshot = payload
		rec.SnapshotLSN = st.snaps[i].lsn
		break
	}
	for _, r := range st.records {
		if r.LSN >= rec.SnapshotLSN {
			rec.Records = append(rec.Records, r)
		}
	}
	return rec, nil
}

// Repair truncates a corrupt final record (ErrCorruptTail) off the last
// segment, losing exactly that record. It refuses to touch a log whose
// corruption is not confined to the tail. Returns the number of bytes
// dropped (0 when the log was already clean).
func Repair(dir string) (int64, error) {
	st, err := scanDir(dir)
	if err == nil {
		return 0, nil
	}
	if st == nil || st.badSeg == "" {
		return 0, err
	}
	end, serr := fileSize(st.badSeg)
	if serr != nil {
		return 0, serr
	}
	if terr := os.Truncate(st.badSeg, st.badOff); terr != nil {
		return 0, fmt.Errorf("wal: repairing tail: %w", terr)
	}
	return end - st.badOff, nil
}

type segFile struct {
	path     string
	firstLSN uint64
}

type snapFile struct {
	path string
	lsn  uint64
}

// scanState is the result of a full directory scan.
type scanState struct {
	segs    []segFile
	snaps   []snapFile
	records []Record
	next    uint64
	tornSeg string // segment holding a torn (incomplete) tail frame
	tornOff int64  // offset at which to truncate it
	badSeg  string // segment holding a corrupt-tail record (scan errored)
	badOff  int64  // offset of that record's frame
}

// listFiles enumerates segment and snapshot files, sorted by LSN.
func listFiles(dir string) ([]segFile, []snapFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segFile
	var snaps []snapFile
	for _, ent := range ents {
		name := ent.Name()
		var lsn uint64
		if n, _ := fmt.Sscanf(name, segPattern, &lsn); n == 1 {
			segs = append(segs, segFile{path: filepath.Join(dir, name), firstLSN: lsn})
		} else if n, _ := fmt.Sscanf(name, snapPattern, &lsn); n == 1 {
			snaps = append(snaps, snapFile{path: filepath.Join(dir, name), lsn: lsn})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lsn < snaps[j].lsn })
	return segs, snaps, nil
}

// scanDir reads every live segment front to back, validating the frame
// chain. On ErrCorruptTail the returned state still carries badSeg /
// badOff so Repair can act on it.
func scanDir(dir string) (*scanState, error) {
	segs, snaps, err := listFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, dir)
	}
	st := &scanState{segs: segs, snaps: snaps}
	expect := segs[0].firstLSN
	for i, seg := range segs {
		if seg.firstLSN != expect {
			return nil, fmt.Errorf("%w: segment %s starts at LSN %d, want %d", ErrCorrupt, seg.path, seg.firstLSN, expect)
		}
		last := i == len(segs)-1
		n, err := scanSegment(seg, last, st)
		if err != nil {
			return st, err
		}
		expect += n
	}
	st.next = expect
	return st, nil
}

// scanSegment appends seg's records to st and returns how many it held.
// Only the final segment may legally end early (torn tail).
func scanSegment(seg segFile, last bool, st *scanState) (uint64, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: segment %s header unreadable: %v", ErrCorrupt, seg.path, err)
	}
	if string(hdr[:8]) != segMagic {
		return 0, fmt.Errorf("%w: segment %s has bad magic", ErrCorrupt, seg.path)
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != seg.firstLSN {
		return 0, fmt.Errorf("%w: segment %s header LSN %d does not match its name", ErrCorrupt, seg.path, got)
	}
	var count uint64
	off := int64(headerLen)
	var frame [frameLen]byte
	for {
		n, err := io.ReadFull(f, frame[:])
		if err == io.EOF {
			return count, nil
		}
		if err == io.ErrUnexpectedEOF {
			return count, tailStop(seg, last, off, st, int64(n), "frame header")
		}
		if err != nil {
			return 0, fmt.Errorf("wal: %w", err)
		}
		size := binary.LittleEndian.Uint32(frame[0:])
		want := binary.LittleEndian.Uint32(frame[4:])
		if size > maxRecord {
			// An absurd length is bit corruption of the frame itself:
			// treat like a checksum failure at this position.
			return count, badStop(seg, last, off, st, "frame length")
		}
		payload := make([]byte, size)
		n, err = io.ReadFull(f, payload)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return count, tailStop(seg, last, off, st, frameLen+int64(n), "record body")
		}
		if err != nil {
			return 0, fmt.Errorf("wal: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != want {
			return count, badStop(seg, last, off, st, "checksum")
		}
		st.records = append(st.records, Record{LSN: seg.firstLSN + count, Data: payload})
		count++
		off += frameLen + int64(size)
	}
}

// tailStop handles an incomplete frame: legal (and recoverable) only at
// the very end of the last segment.
func tailStop(seg segFile, last bool, off int64, st *scanState, short int64, what string) error {
	if !last {
		return fmt.Errorf("%w: segment %s truncated mid-log (%s cut %d bytes in at offset %d)", ErrCorrupt, seg.path, what, short, off)
	}
	st.tornSeg = seg.path
	st.tornOff = off
	return nil
}

// badStop handles a complete-but-invalid record: ErrCorruptTail when it
// is the final record of the log, ErrCorrupt otherwise.
func badStop(seg segFile, last bool, off int64, st *scanState, what string) error {
	if !last {
		return fmt.Errorf("%w: segment %s fails its %s at offset %d", ErrCorrupt, seg.path, what, off)
	}
	// Is anything after this record? Then the corruption is interior.
	end, err := fileSize(seg.path)
	if err != nil {
		return err
	}
	rest, err := recordEnd(seg.path, off)
	if err != nil {
		return err
	}
	if rest < end {
		return fmt.Errorf("%w: segment %s fails its %s at offset %d with %d trailing bytes", ErrCorrupt, seg.path, what, off, end-rest)
	}
	st.badSeg = seg.path
	st.badOff = off
	return fmt.Errorf("%w: segment %s record at offset %d fails its %s", ErrCorruptTail, seg.path, off, what)
}

// recordEnd returns the offset just past the frame starting at off.
func recordEnd(path string, off int64) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var frame [frameLen]byte
	if _, err := f.ReadAt(frame[:], off); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	return off + frameLen + int64(binary.LittleEndian.Uint32(frame[0:])), nil
}

func fileSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	return fi.Size(), nil
}

// readSnapshot parses one snapshot file, validating magic, LSN and
// checksum.
func readSnapshot(path string, wantLSN uint64) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if len(buf) < headerLen+frameLen {
		return nil, fmt.Errorf("%w: snapshot %s truncated", ErrCorrupt, path)
	}
	if string(buf[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: snapshot %s has bad magic", ErrCorrupt, path)
	}
	if got := binary.LittleEndian.Uint64(buf[8:]); got != wantLSN {
		return nil, fmt.Errorf("%w: snapshot %s header LSN %d does not match its name", ErrCorrupt, path, got)
	}
	size := binary.LittleEndian.Uint32(buf[headerLen:])
	want := binary.LittleEndian.Uint32(buf[headerLen+4:])
	payload := buf[headerLen+frameLen:]
	if uint32(len(payload)) != size {
		return nil, fmt.Errorf("%w: snapshot %s body is %d bytes, header says %d", ErrCorrupt, path, len(payload), size)
	}
	if crc32.Checksum(payload, crcTable) != want {
		return nil, fmt.Errorf("%w: snapshot %s fails its checksum", ErrCorrupt, path)
	}
	return payload, nil
}
