package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestTornWriteEveryOffset is the torn-write property test: a log whose
// final segment is truncated at EVERY byte offset of the final record —
// from the byte before its frame through the byte before its end — must
// either recover cleanly (the incomplete record dropped, every earlier
// record intact) or, never, anything else: no panic, no ErrCorruptTail,
// no invented records. This is the exhaustive sweep of what a crash
// mid-append can leave on disk.
func TestTornWriteEveryOffset(t *testing.T) {
	master := t.TempDir()
	l, err := Create(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(8)
	appendAll(t, l, ps...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := fmt.Sprintf(segPattern, 0)
	whole, err := os.ReadFile(filepath.Join(master, seg))
	if err != nil {
		t.Fatal(err)
	}
	// The final record's frame starts lastLen bytes before the end.
	lastLen := int64(frameLen + len(ps[7]))
	full := int64(len(whole))

	for cut := full - lastLen; cut < full; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, seg), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut at %d/%d: Recover = %v", cut, full, err)
		}
		wantRecords := 7
		wantTorn := true
		if cut == full-lastLen {
			// Truncated exactly on the record boundary: not torn at all.
			wantTorn = false
		}
		if rec.TornTail != wantTorn || len(rec.Records) != wantRecords {
			t.Fatalf("cut at %d/%d: torn=%v records=%d", cut, full, rec.TornTail, len(rec.Records))
		}
		for i, r := range rec.Records {
			if !bytes.Equal(r.Data, ps[i]) {
				t.Fatalf("cut at %d: record %d corrupted to %q", cut, i, r.Data)
			}
		}
		// Open must truncate the torn bytes and accept a fresh append in
		// the dropped record's place.
		lg, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: Open = %v", cut, err)
		}
		lsn, err := lg.Append([]byte("replacement"))
		if err != nil || lsn != 7 {
			t.Fatalf("cut at %d: Append after torn recovery = %d, %v", cut, lsn, err)
		}
		if err := lg.Close(); err != nil {
			t.Fatal(err)
		}
		rec2, err := Recover(dir)
		if err != nil || len(rec2.Records) != 8 || rec2.TornTail {
			t.Fatalf("cut at %d: post-repair recovery %v, %d records", cut, err, len(rec2.Records))
		}
	}
}

// TestCorruptTailEveryOffset is the complementary sweep: flipping one
// bit at EVERY offset inside the final record (frame and payload) must
// yield a typed error — ErrCorruptTail when the damage is detectable as
// a broken final record, ErrCorrupt if the flipped length byte makes the
// log look torn-then-trailing — and never a panic or a silently wrong
// record. Flips in the length field that make the final record read as
// torn are accepted as torn (the CRC of a random earlier cut cannot
// collide here; the property asserted is: no panic, no bad data).
func TestCorruptTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	l, err := Create(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := payloads(8)
	appendAll(t, l, ps...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := fmt.Sprintf(segPattern, 0)
	whole, err := os.ReadFile(filepath.Join(master, seg))
	if err != nil {
		t.Fatal(err)
	}
	lastLen := int64(frameLen + len(ps[7]))
	full := int64(len(whole))

	for off := full - lastLen; off < full; off++ {
		dir := t.TempDir()
		mut := append([]byte(nil), whole...)
		mut[off] ^= 0x10
		if err := os.WriteFile(filepath.Join(dir, seg), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, rerr := Recover(dir)
		switch {
		case rerr == nil:
			// A flip in the length field can shrink the final frame so the
			// scan sees a shorter record... but then its CRC fails, which
			// errors — or make it longer than the file, which reads as a
			// torn tail. Only the torn-tail shape recovers cleanly, and it
			// must deliver exactly the 7 intact records.
			if !rec.TornTail || len(rec.Records) != 7 {
				t.Fatalf("off %d: clean recovery with torn=%v records=%d", off, rec.TornTail, len(rec.Records))
			}
			for i, r := range rec.Records {
				if !bytes.Equal(r.Data, ps[i]) {
					t.Fatalf("off %d: record %d corrupted to %q", off, i, r.Data)
				}
			}
		case errors.Is(rerr, ErrCorruptTail):
			// The typed contract: explicit Repair drops the record and
			// recovery then succeeds with the intact prefix.
			if _, err := Repair(dir); err != nil {
				t.Fatalf("off %d: Repair = %v", off, err)
			}
			rec2, err := Recover(dir)
			if err != nil || len(rec2.Records) != 7 {
				t.Fatalf("off %d: post-repair %v, %d records", off, err, len(rec2.Records))
			}
		case errors.Is(rerr, ErrCorrupt):
			// Length-field damage that leaves trailing garbage after the
			// reinterpreted record: unrecoverable, typed, no panic.
		default:
			t.Fatalf("off %d: untyped recovery error %v", off, rerr)
		}
	}
}
