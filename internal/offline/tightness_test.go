package offline_test

import (
	"math"
	"testing"

	"repro/internal/bound"
	"repro/internal/offline"
	"repro/internal/taskmap"
)

func TestTightnessInstanceGreedyEarnsOne(t *testing.T) {
	for _, d := range []int{2, 3, 5, 8} {
		mkt, drivers, tasks, err := offline.TightnessInstance(d, 0.01)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		g, err := taskmap.New(mkt, drivers, tasks)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		sol := offline.Greedy(g)
		if math.Abs(sol.TotalProfit-1) > 1e-6 {
			t.Errorf("D=%d: greedy profit %.6f, want 1 (Lemma 3)", d, sol.TotalProfit)
		}
		if len(sol.Paths) != 1 || sol.Paths[0].Driver != 0 {
			t.Errorf("D=%d: greedy should select only driver 0's chain, got %+v", d, sol.Paths)
		}
		if got := len(sol.Paths[0].Tasks); got != d {
			t.Errorf("D=%d: chain length %d, want %d", d, got, d)
		}
	}
}

func TestTightnessInstanceOptimum(t *testing.T) {
	const eps = 0.01
	for _, d := range []int{2, 3, 4} {
		mkt, drivers, tasks, err := offline.TightnessInstance(d, eps)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		g, err := taskmap.New(mkt, drivers, tasks)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		exact, err := bound.BruteForce(g, 0)
		if err != nil {
			t.Fatalf("D=%d: brute force: %v", d, err)
		}
		want := float64(d+1) * (1 - eps)
		if math.Abs(exact.Objective-want) > 1e-6 {
			t.Errorf("D=%d: OPT = %.6f, want (D+1)(1−ε) = %.6f", d, exact.Objective, want)
		}
	}
}

func TestTightnessRatioApproachesBound(t *testing.T) {
	// GA/OPT = 1/((D+1)(1−ε)): the paper's tight worst case.
	const eps = 0.001
	for _, d := range []int{2, 3, 5} {
		mkt, drivers, tasks, err := offline.TightnessInstance(d, eps)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		g, err := taskmap.New(mkt, drivers, tasks)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		ga := offline.Greedy(g).TotalProfit
		exact, err := bound.BruteForce(g, 0)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		ratio := ga / exact.Objective
		want := 1 / (float64(d+1) * (1 - eps))
		if math.Abs(ratio-want) > 1e-6 {
			t.Errorf("D=%d: ratio %.6f, want %.6f", d, ratio, want)
		}
	}
}

func TestTightnessInstanceDiameter(t *testing.T) {
	// The instance's task-map diameter is exactly D (the chain).
	for _, d := range []int{2, 4, 6} {
		mkt, drivers, tasks, err := offline.TightnessInstance(d, 0.01)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		g, err := taskmap.New(mkt, drivers, tasks)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		if got := g.Diameter(); got != d {
			t.Errorf("D=%d: diameter %d", d, got)
		}
	}
}

func TestTightnessInstanceValidation(t *testing.T) {
	if _, _, _, err := offline.TightnessInstance(1, 0.01); err == nil {
		t.Error("D=1 should be rejected")
	}
	if _, _, _, err := offline.TightnessInstance(5, 0); err == nil {
		t.Error("ε=0 should be rejected")
	}
	if _, _, _, err := offline.TightnessInstance(5, 0.9); err == nil {
		t.Error("ε ≥ 1−1/D should be rejected")
	}
}
