package offline_test

import (
	"math"
	"testing"

	"repro/internal/bound"
	"repro/internal/offline"
	"repro/internal/taskmap"
	"repro/internal/trace"
)

func buildGraph(t *testing.T, seed int64, tasks, drivers int, dm trace.DriverModel) *taskmap.Graph {
	t.Helper()
	cfg := trace.NewConfig(seed, tasks, drivers, dm)
	tr := trace.NewGenerator(cfg).Generate(nil)
	g, err := taskmap.New(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		t.Fatalf("taskmap.New: %v", err)
	}
	return g
}

func TestGreedyMatchesNaive(t *testing.T) {
	// The lazy-heap greedy must earn exactly the naive GA's total on a
	// spread of instances (the selection sequences coincide up to
	// equal-profit ties, which cannot change the total).
	for _, tc := range []struct {
		seed           int64
		tasks, drivers int
		dm             trace.DriverModel
	}{
		{1, 30, 5, trace.Hitchhiking},
		{2, 60, 10, trace.Hitchhiking},
		{3, 60, 10, trace.HomeWorkHome},
		{4, 100, 15, trace.Hitchhiking},
		{5, 100, 25, trace.HomeWorkHome},
	} {
		g := buildGraph(t, tc.seed, tc.tasks, tc.drivers, tc.dm)
		lazy := offline.Greedy(g)
		naive := offline.GreedyNaive(g)
		if math.Abs(lazy.TotalProfit-naive.TotalProfit) > 1e-6 {
			t.Errorf("seed %d: lazy %.6f != naive %.6f", tc.seed, lazy.TotalProfit, naive.TotalProfit)
		}
		if lazy.Iterations != naive.Iterations {
			t.Errorf("seed %d: lazy %d iterations, naive %d", tc.seed, lazy.Iterations, naive.Iterations)
		}
		if lazy.Recomputes > naive.Recomputes {
			t.Errorf("seed %d: lazy evaluation did more DP work (%d) than naive (%d)",
				tc.seed, lazy.Recomputes, naive.Recomputes)
		}
	}
}

func TestGreedySolutionFeasible(t *testing.T) {
	g := buildGraph(t, 7, 120, 20, trace.Hitchhiking)
	sol := offline.Greedy(g)

	usedDriver := make(map[int]bool)
	usedTask := make(map[int]bool)
	var total float64
	for _, p := range sol.Paths {
		if usedDriver[p.Driver] {
			t.Fatalf("driver %d selected twice", p.Driver)
		}
		usedDriver[p.Driver] = true
		for _, task := range p.Tasks {
			if usedTask[task] {
				t.Fatalf("task %d on two paths (node-disjointness violated)", task)
			}
			usedTask[task] = true
		}
		profit, err := g.PathProfit(p.Driver, p.Tasks)
		if err != nil {
			t.Fatalf("driver %d: infeasible path: %v", p.Driver, err)
		}
		if math.Abs(profit-p.Profit) > 1e-6 {
			t.Fatalf("driver %d: declared %.6f, recomputed %.6f", p.Driver, p.Profit, profit)
		}
		if p.Profit <= 0 {
			t.Fatalf("driver %d: non-positive profit %.6f selected", p.Driver, p.Profit)
		}
		total += profit
	}
	if math.Abs(total-sol.TotalProfit) > 1e-6 {
		t.Fatalf("TotalProfit %.6f != sum of paths %.6f", sol.TotalProfit, total)
	}
}

func TestGreedySelectionsDecrease(t *testing.T) {
	// GA picks the global maximum each round, so selected profits are
	// non-increasing in selection order.
	g := buildGraph(t, 9, 80, 12, trace.Hitchhiking)
	sol := offline.Greedy(g)
	for i := 1; i < len(sol.Paths); i++ {
		if sol.Paths[i].Profit > sol.Paths[i-1].Profit+1e-9 {
			t.Fatalf("selection %d (%.6f) exceeds selection %d (%.6f)",
				i, sol.Paths[i].Profit, i-1, sol.Paths[i-1].Profit)
		}
	}
}

func TestGreedyWithinApproximationBound(t *testing.T) {
	// Theorem 1: GA ≥ OPT/(D+1). Check against the exact optimum on
	// tiny instances.
	for seed := int64(0); seed < 6; seed++ {
		g := buildGraph(t, seed, 10, 3, trace.Hitchhiking)
		sol := offline.Greedy(g)
		exact, err := bound.BruteForce(g, 0)
		if err != nil {
			t.Fatalf("seed %d: brute force: %v", seed, err)
		}
		if sol.TotalProfit > exact.Objective+1e-6 {
			t.Fatalf("seed %d: greedy %.6f exceeds optimum %.6f", seed, sol.TotalProfit, exact.Objective)
		}
		d := g.Diameter()
		if exact.Objective > 0 && sol.TotalProfit < exact.Objective/float64(d+1)-1e-6 {
			t.Fatalf("seed %d: greedy %.6f below OPT/(D+1) = %.6f (D=%d)",
				seed, sol.TotalProfit, exact.Objective/float64(d+1), d)
		}
	}
}

func TestGreedyEmptyInstances(t *testing.T) {
	g := buildGraph(t, 3, 10, 0, trace.Hitchhiking)
	if sol := offline.Greedy(g); sol.TotalProfit != 0 || len(sol.Paths) != 0 {
		t.Errorf("no drivers: got profit %.3f, %d paths", sol.TotalProfit, len(sol.Paths))
	}
}

func TestGreedyAssignmentHelpers(t *testing.T) {
	g := buildGraph(t, 5, 50, 8, trace.Hitchhiking)
	sol := offline.Greedy(g)
	asg := sol.Assignment()
	if len(asg) != sol.ServedTasks() {
		t.Fatalf("Assignment() has %d tasks, ServedTasks() = %d", len(asg), sol.ServedTasks())
	}
	for _, p := range sol.Paths {
		for _, task := range p.Tasks {
			if asg[task] != p.Driver {
				t.Fatalf("task %d mapped to driver %d, want %d", task, asg[task], p.Driver)
			}
		}
	}
}

func TestGreedyDominatesSingleBestPath(t *testing.T) {
	// GA's first pick is the globally best path, so its total is at
	// least any single driver's best.
	g := buildGraph(t, 11, 60, 10, trace.HomeWorkHome)
	sol := offline.Greedy(g)
	for n := 0; n < g.N(); n++ {
		p := g.BestPath(n, nil, nil)
		if p.Profit > sol.TotalProfit+1e-9 {
			t.Fatalf("driver %d best path %.6f exceeds greedy total %.6f", n, p.Profit, sol.TotalProfit)
		}
	}
}
