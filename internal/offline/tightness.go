package offline

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/model"
)

// TightnessInstance constructs the adversarial market of the paper's
// Fig. 2 (Lemma 3), on which GA performs exactly at its approximation
// bound: GA earns 1 while the optimum earns (D+1)(1−ε), so
// GA/OPT = 1/((D+1)(1−ε)) → 1/(D+1) as ε → 0.
//
// Construction (all on one west-east line, gasoline 1 unit/km, 60 km/h):
//
//   - D "chain" tasks at locations P_1..P_D spaced L km apart, with
//     consecutive hour-long windows, zero service distance (source ==
//     destination) and price 1−ε each. Driver 0 lives at P_1
//     (home-work-home) and is the only driver able to chain them; her
//     round trip P_1→…→P_D→P_1 costs 2(D−1)L, and L is chosen so the
//     chain's profit is exactly 1.
//   - One "blocker" task at P_1 whose window spans the whole horizon,
//     price 1−ε: only driver 0 can serve it, and serving it precludes
//     the chain.
//   - Drivers 1..D each live at P_i with a window covering only chain
//     task i, each earning exactly 1−ε from it.
//
// GA picks driver 0's chain (profit 1, the unique maximum), which
// removes every chain task; drivers 1..D are left with nothing and the
// blocker is unreachable, so GA totals 1. The optimum instead gives each
// chain task to its local driver and the blocker to driver 0, totaling
// (D+1)(1−ε). Requires D ≥ 2 and 0 < ε < 1 − 1/D so that L > 0.
func TightnessInstance(d int, eps float64) (model.Market, []model.Driver, []model.Task, error) {
	if d < 2 {
		return model.Market{}, nil, nil, fmt.Errorf("offline: tightness instance needs D ≥ 2, got %d", d)
	}
	if eps <= 0 || eps >= 1-1/float64(d) {
		return model.Market{}, nil, nil, fmt.Errorf("offline: need 0 < ε < 1−1/D, got ε=%g, D=%d", eps, d)
	}
	mkt := model.Market{
		Dist:     geo.Equirectangular,
		SpeedKmh: 60,
		GasPerKm: 1,
	}

	// Choose spacing so the chain profit is exactly 1:
	// D(1−ε) − 2(D−1)L = 1  ⇒  L = (D(1−ε) − 1) / (2(D−1)).
	l := (float64(d)*(1-eps) - 1) / (2 * float64(d-1))

	origin := geo.Point{Lat: 41.15, Lon: -8.61}
	locs := make([]geo.Point, d)
	for i := range locs {
		locs[i] = geo.Offset(origin, 90*degree, float64(i)*l) // due east
	}

	const (
		window  = 3600.0 // chain task pitch
		open    = 600.0  // chain task window length
		horizon = 100 * 3600.0
	)

	price := 1 - eps
	tasks := make([]model.Task, 0, d+1)
	for i := 0; i < d; i++ {
		startBy := float64(i+1) * window
		tasks = append(tasks, model.Task{
			ID:      i,
			Publish: startBy - 60,
			Source:  locs[i],
			Dest:    locs[i],
			StartBy: startBy,
			EndBy:   startBy + open,
			Price:   price,
			WTP:     price,
		})
	}
	// Blocker task at P_1, spanning the entire horizon.
	tasks = append(tasks, model.Task{
		ID:      d,
		Publish: 1,
		Source:  locs[0],
		Dest:    locs[0],
		StartBy: 2,
		EndBy:   horizon,
		Price:   price,
		WTP:     price,
	})

	drivers := make([]model.Driver, 0, d+1)
	// Driver 0: home-work-home at P_1, spanning everything.
	drivers = append(drivers, model.Driver{
		ID: 0, Source: locs[0], Dest: locs[0], Start: 0, End: horizon + 1,
	})
	// Drivers 1..D: local to chain task i−1, window covering only it.
	for i := 1; i <= d; i++ {
		t := tasks[i-1]
		drivers = append(drivers, model.Driver{
			ID:     i,
			Source: t.Source,
			Dest:   t.Source,
			Start:  t.StartBy - 1,
			End:    t.EndBy + 1,
		})
	}
	return mkt, drivers, tasks, nil
}

// degree is π/180; geo.Offset takes bearings in radians.
const degree = 3.14159265358979323846 / 180
