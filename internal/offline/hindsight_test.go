package offline

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/taskmap"
	"repro/internal/trace"
)

// TestCompileNoEventTaskmapParity holds the compiler to the dense
// reference: on an event-free trace the compiled instance must be the
// taskmap restricted to path-relevant pairs, bitwise — same srcOK set,
// same costs, same arcs, same path values.
func TestCompileNoEventTaskmapParity(t *testing.T) {
	seeds := []int64{3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		for _, dm := range []trace.DriverModel{trace.Hitchhiking, trace.HomeWorkHome} {
			cfg := trace.NewConfig(seed, 40, 12, dm)
			tr := trace.NewGenerator(cfg).Generate(nil)
			in, err := Compile(cfg.Market, tr, Options{})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			g, err := taskmap.New(cfg.Market, tr.Drivers, tr.Tasks)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}

			kept := make(map[[2]int]bool)
			for d := 0; d < in.NDrv(); d++ {
				orig := in.DrvID[d]
				if in.Baseline[d] != g.Baseline[orig] {
					t.Fatalf("seed %d: baseline driver %d = %v, want %v", seed, orig, in.Baseline[d], g.Baseline[orig])
				}
				for s := in.DrvPtr[d]; s < in.DrvPtr[d+1]; s++ {
					m := int(in.DrvTask[s])
					kept[[2]int{orig, m}] = true
					if !g.Feasible(orig, m) {
						t.Fatalf("seed %d: kept pair (%d,%d) infeasible in taskmap", seed, orig, m)
					}
					if in.DrvSrcOK[s] != g.SourceReachable(orig, m) {
						t.Fatalf("seed %d: srcOK (%d,%d) = %v, taskmap %v", seed, orig, m, in.DrvSrcOK[s], g.SourceReachable(orig, m))
					}
					if in.DrvSrcCost[s] != g.SourceCost(orig, m) || in.DrvSnkCost[s] != g.SinkCost(orig, m) {
						t.Fatalf("seed %d: costs (%d,%d) = (%v,%v), taskmap (%v,%v)",
							seed, orig, m, in.DrvSrcCost[s], in.DrvSnkCost[s], g.SourceCost(orig, m), g.SinkCost(orig, m))
					}
				}
			}
			// Dropped feasible pairs must be provably path-irrelevant.
			for n := range tr.Drivers {
				for m := range tr.Tasks {
					if g.Feasible(n, m) && !kept[[2]int{n, m}] {
						if tr.Drivers[n].Start <= tr.Tasks[m].StartBy+2e-9 {
							t.Fatalf("seed %d: feasible pair (%d,%d) dropped without prefilter cover", seed, n, m)
						}
					}
				}
			}
			// Arc sets agree on the kept subset, costs bitwise.
			for d := 0; d < in.NDrv(); d++ {
				for si := in.DrvPtr[d]; si < in.DrvPtr[d+1]; si++ {
					for sj := in.DrvPtr[d]; sj < in.DrvPtr[d+1]; sj++ {
						a, b := int(in.DrvTask[si]), int(in.DrvTask[sj])
						if a == b {
							continue
						}
						k := in.SuccIndex(si, sj)
						if (k >= 0) != g.HasArc(a, b) {
							t.Fatalf("seed %d: arc %d→%d driver %d: compiled %v, taskmap %v",
								seed, a, b, in.DrvID[d], k >= 0, g.HasArc(a, b))
						}
						if k >= 0 {
							want := cfg.Market.DeadheadCost(tr.Tasks[a], tr.Tasks[b])
							if in.DrvSuccCost[k] != want {
								t.Fatalf("seed %d: arc cost %d→%d = %v, want %v", seed, a, b, in.DrvSuccCost[k], want)
							}
						}
					}
				}
			}
			// Path values replicate PathProfit bitwise over a DFS sweep.
			checkPathValues(t, in, g, 2000)
		}
	}
}

// checkPathValues DFS-enumerates up to cap paths per instance and
// compares PathValue against taskmap.PathProfit bitwise.
func checkPathValues(t *testing.T, in *Instance, g *taskmap.Graph, cap int) {
	t.Helper()
	count := 0
	var slots []int32
	var tasks []int
	var dfs func(d, last int)
	dfs = func(d, last int) {
		if count >= cap {
			return
		}
		count++
		got, err := in.PathValue(d, slots)
		if err != nil {
			t.Fatalf("PathValue(%d, %v): %v", d, tasks, err)
		}
		want, err := g.PathProfit(in.DrvID[d], tasks)
		if err != nil {
			t.Fatalf("PathProfit(%d, %v): %v", in.DrvID[d], tasks, err)
		}
		if got != want {
			t.Fatalf("driver %d path %v: PathValue %v, PathProfit %v", in.DrvID[d], tasks, got, want)
		}
		for k := in.DrvSuccPtr[last]; k < in.DrvSuccPtr[last+1]; k++ {
			s := int(in.DrvSucc[k])
			slots = append(slots, int32(s))
			tasks = append(tasks, int(in.DrvTask[s]))
			dfs(d, s)
			slots = slots[:len(slots)-1]
			tasks = tasks[:len(tasks)-1]
		}
	}
	for d := 0; d < in.NDrv(); d++ {
		for s := in.DrvPtr[d]; s < in.DrvPtr[d+1]; s++ {
			if !in.DrvSrcOK[s] {
				continue
			}
			slots = append(slots, int32(s))
			tasks = append(tasks, int(in.DrvTask[s]))
			dfs(d, s)
			slots = slots[:0]
			tasks = tasks[:0]
		}
	}
	if count == 0 {
		t.Fatal("no paths enumerated — degenerate instance")
	}
}

// twoPointTrace builds a hand-sized scenario: driver home near the
// first point, tasks between named points, everything else derived from
// the market so the test never hardcodes float geometry.
func hindsightScenario() (model.Market, model.Driver, model.Task, model.Task) {
	market := model.DefaultMarket()
	p0 := geo.Point{Lat: 41.15, Lon: -8.61}
	p1 := geo.Point{Lat: 41.16, Lon: -8.60} // ~1.4 km from p0
	p2 := geo.Point{Lat: 41.17, Lon: -8.59}
	d := model.Driver{ID: 1, Source: p0, Dest: p0, Start: 0, End: 40000}
	// Task A: p1 → p2; generous window.
	a := model.Task{ID: 10, Publish: 0, Source: p1, Dest: p2, StartBy: 2000, EndBy: 4000, Price: 10, WTP: 12}
	// Task B starts where A ends, after A's deadline.
	b := model.Task{ID: 11, Publish: 100, Source: p2, Dest: p1, StartBy: 4500, EndBy: 7000, Price: 10, WTP: 12}
	return market, d, a, b
}

func TestCompileCancelBarsPickup(t *testing.T) {
	market, d, a, _ := hindsightScenario()
	travel := market.DriverTravelTime(d, d.Source, a.Source)
	tr := model.Trace{Drivers: []model.Driver{d}, Tasks: []model.Task{a}}

	// No events: reachable.
	in, err := Compile(market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.NSlots() != 1 || !in.DrvSrcOK[0] {
		t.Fatalf("baseline: slots=%d srcOK=%v, want 1 reachable pair", in.NSlots(), in.NSlots() == 1 && in.DrvSrcOK[0])
	}

	// Cancellation before the driver can arrive bars the pickup.
	tr.Events = []model.MarketEvent{{At: travel - 100, Kind: model.EventCancel, Task: 0}}
	in, err = Compile(market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.NSlots() != 1 || in.DrvSrcOK[0] {
		t.Fatalf("early cancel: slots=%d, srcOK=%v — pickup must be barred", in.NSlots(), in.NSlots() == 1 && in.DrvSrcOK[0])
	}
	// In rail mode the unreachable pair disappears entirely.
	in, err = Compile(market, tr, Options{TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if in.NSlots() != 0 {
		t.Fatalf("rail early cancel: %d slots, want 0", in.NSlots())
	}

	// Cancellation after the feasible arrival leaves the pair usable.
	tr.Events = []model.MarketEvent{{At: travel + 100, Kind: model.EventCancel, Task: 0}}
	in, err = Compile(market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.NSlots() != 1 || !in.DrvSrcOK[0] {
		t.Fatal("late cancel: pair must stay reachable")
	}
}

func TestCompileCancelBarsArcs(t *testing.T) {
	market, d, a, b := hindsightScenario()
	tr := model.Trace{Drivers: []model.Driver{d}, Tasks: []model.Task{a, b}}

	in, err := Compile(market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := in.Slot(0, 0), in.Slot(0, 1)
	if sa < 0 || sb < 0 || in.SuccIndex(sa, sb) < 0 {
		t.Fatal("baseline: expected arc A→B")
	}

	// Cancel B before A's dropoff deadline: the chain gap vanishes.
	tr.Events = []model.MarketEvent{{At: a.EndBy - 100, Kind: model.EventCancel, Task: 1}}
	in, err = Compile(market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb = in.Slot(0, 0), in.Slot(0, 1)
	if sa < 0 || sb < 0 {
		t.Fatal("cancel: both pairs should stay (B is still first-task reachable before its bar)")
	}
	if in.SuccIndex(sa, sb) >= 0 {
		t.Fatal("cancel before A's deadline must bar the A→B chain")
	}
}

func TestCompileJoinRetirePresence(t *testing.T) {
	market, d, a, _ := hindsightScenario()
	tr := model.Trace{Drivers: []model.Driver{d}, Tasks: []model.Task{a}}

	// Join after the pickup bar: the driver was unknown in time.
	tr.Events = []model.MarketEvent{{At: a.StartBy + 50, Kind: model.EventJoin, Driver: 0}}
	in, err := Compile(market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.NSlots() != 0 {
		t.Fatalf("late join: %d slots, want 0", in.NSlots())
	}

	// Join leaving exactly enough travel slack keeps the pair.
	travel := market.DriverTravelTime(d, d.Source, a.Source)
	tr.Events = []model.MarketEvent{{At: a.StartBy - travel - 1, Kind: model.EventJoin, Driver: 0}}
	in, err = Compile(market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.NSlots() != 1 || !in.DrvSrcOK[0] {
		t.Fatal("timely join: pair must stay reachable")
	}

	// Retire before the order is published: no candidacy.
	tr.Events = []model.MarketEvent{{At: a.Publish, Kind: model.EventRetire, Driver: 0}}
	tr.Tasks[0].Publish = 50
	in, err = Compile(market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.NSlots() != 0 {
		t.Fatalf("early retire: %d slots, want 0", in.NSlots())
	}

	// Retire after publication keeps the candidacy (commitment model).
	tr.Events = []model.MarketEvent{{At: 200, Kind: model.EventRetire, Driver: 0}}
	in, err = Compile(market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.NSlots() != 1 {
		t.Fatal("late retire: pair must survive")
	}
}

func TestCompileComponentsClosed(t *testing.T) {
	cfg := trace.NewConfig(9, 60, 15, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	tr.Events = trace.WithChurn(tr, trace.DefaultChurn(9, 0.3, 0.2))
	in, err := Compile(cfg.Market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.NComp != in.Stats.Components || in.NComp == 0 {
		t.Fatalf("components = %d (stats %d)", in.NComp, in.Stats.Components)
	}
	for m := range tr.Tasks {
		for p := in.Pairs.RowPtr[m]; p < in.Pairs.RowPtr[m+1]; p++ {
			d := in.Pairs.Col[p]
			if in.Comp.CompOfRow[m] != in.Comp.CompOfCol[d] {
				t.Fatalf("pair (task %d, drv %d) crosses components", m, d)
			}
		}
	}
}

func TestCompileWorkerCountInvariant(t *testing.T) {
	cfg := trace.NewConfig(21, 80, 20, trace.HomeWorkHome)
	tr := trace.NewGenerator(cfg).Generate(nil)
	tr.Events = trace.WithChurn(tr, trace.DefaultChurn(21, 0.2, 0.3))
	var ref *Instance
	for _, w := range []int{1, 2, 4} {
		in, err := Compile(cfg.Market, tr, Options{TopK: 4, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = in
			continue
		}
		if !reflect.DeepEqual(in.Pairs, ref.Pairs) || !reflect.DeepEqual(in.DrvTask, ref.DrvTask) ||
			!reflect.DeepEqual(in.DrvSucc, ref.DrvSucc) || !reflect.DeepEqual(in.DrvSuccCost, ref.DrvSuccCost) ||
			!reflect.DeepEqual(in.DrvSrcCost, ref.DrvSrcCost) || in.Stats != ref.Stats {
			t.Fatalf("workers=%d compiles a different instance", w)
		}
	}
}

func TestCompileRevenueMode(t *testing.T) {
	cfg := trace.NewConfig(33, 50, 12, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	profit, err := Compile(cfg.Market, tr, Options{Objective: ObjectiveProfit})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Compile(cfg.Market, tr, Options{Objective: ObjectiveRevenue})
	if err != nil {
		t.Fatal(err)
	}
	// Feasibility is objective-independent: identical structure.
	if !reflect.DeepEqual(profit.Pairs.Col, rev.Pairs.Col) || !reflect.DeepEqual(profit.DrvTask, rev.DrvTask) ||
		!reflect.DeepEqual(profit.DrvSucc, rev.DrvSucc) {
		t.Fatal("revenue mode changed the kept graph")
	}
	for m, task := range tr.Tasks {
		if rev.Value[m] != task.Price {
			t.Fatalf("revenue value[%d] = %v, want price %v", m, rev.Value[m], task.Price)
		}
	}
	for s := range rev.DrvSrcCost {
		if rev.DrvSrcCost[s] != 0 || rev.DrvSnkCost[s] != 0 {
			t.Fatal("revenue mode must zero source/sink costs")
		}
	}
	for _, c := range rev.DrvSuccCost {
		if c != 0 {
			t.Fatal("revenue mode must zero arc costs")
		}
	}
	for _, b := range rev.Baseline {
		if b != 0 {
			t.Fatal("revenue mode must zero baselines")
		}
	}
}

func TestCompileForcedKeepSurvivesRail(t *testing.T) {
	cfg := trace.NewConfig(7, 60, 25, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	// Exact instance to find a pair that rail pruning would drop.
	exact, err := Compile(cfg.Market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rail, err := Compile(cfg.Market, tr, Options{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	var keep [][2]int32
	for m := range tr.Tasks {
		for p := exact.Pairs.RowPtr[m]; p < exact.Pairs.RowPtr[m+1]; p++ {
			orig := int32(exact.DrvID[exact.Pairs.Col[p]])
			present := false
			for q := rail.Pairs.RowPtr[m]; q < rail.Pairs.RowPtr[m+1]; q++ {
				if rail.DrvID[rail.Pairs.Col[q]] == int(orig) {
					present = true
					break
				}
			}
			if !present {
				keep = append(keep, [2]int32{int32(m), orig})
			}
		}
	}
	if len(keep) == 0 {
		t.Skip("rail pruning dropped nothing at this size")
	}
	forced, err := Compile(cfg.Market, tr, Options{TopK: 1, Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	for _, kp := range keep {
		d := forced.CompactOf(int(kp[1]))
		if d < 0 || forced.Slot(d, int(kp[0])) < 0 {
			t.Fatalf("forced pair (task %d, driver %d) missing from rail instance", kp[0], kp[1])
		}
	}
	if forced.Stats.ForcedDropped != 0 {
		t.Fatalf("ForcedDropped = %d for feasible forced pairs", forced.Stats.ForcedDropped)
	}
}

func TestPruneTopK(t *testing.T) {
	mk := func(driver int, rank float64, forcedFlag bool) candidate {
		return candidate{driver: int32(driver), rank: rank, forced: forcedFlag}
	}
	cands := []candidate{mk(0, 1, false), mk(1, 3, false), mk(2, 3, false), mk(3, 2, false), mk(4, 0.5, true)}
	out := pruneTopK(append([]candidate(nil), cands...), 2)
	var drivers []int
	for _, c := range out {
		drivers = append(drivers, int(c.driver))
	}
	// Top-2 by rank: drivers 1 and 2 (tied at 3, both fit); forced 4 rides along.
	if !reflect.DeepEqual(drivers, []int{1, 2, 4}) {
		t.Fatalf("topk = %v, want [1 2 4]", drivers)
	}
	// Tie at the cutoff: earlier driver wins.
	cands = []candidate{mk(0, 2, false), mk(1, 3, false), mk(2, 2, false)}
	out = pruneTopK(append([]candidate(nil), cands...), 2)
	drivers = drivers[:0]
	for _, c := range out {
		drivers = append(drivers, int(c.driver))
	}
	if !reflect.DeepEqual(drivers, []int{0, 1}) {
		t.Fatalf("cutoff tie = %v, want [0 1]", drivers)
	}
}

func TestCompileStatsAndEffStartBars(t *testing.T) {
	market, d, a, _ := hindsightScenario()
	tr := model.Trace{Drivers: []model.Driver{d}, Tasks: []model.Task{a}}
	in, err := Compile(market, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.Stats.Pairs != 1 || in.Stats.ActiveDrivers != 1 {
		t.Fatalf("stats = %+v", in.Stats)
	}
	if !math.IsInf(in.RetireAt[0], 1) || in.EffStart[0] != d.Start || in.PickupBar[0] != a.StartBy {
		t.Fatal("event-free bars must be vacuous")
	}
}
