package offline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matching"
	"repro/internal/model"
)

// This file is the trace→hindsight-instance compiler of the oracle
// rail: it turns any modern trace — churn, cancellations, batched or
// instant dispatch — into a feasibility-correct offline assignment
// graph the sparse branch-and-bound in internal/bound can solve per
// connected component. The dense taskmap.Graph is the semantic
// reference (and stays the differential oracle via bound.BruteForce),
// but it is O(N·M) per-driver tables plus O(M²) shared arcs: at a
// 12k-order/50k-driver day that is ~10 GB of tables nobody reads. The
// compiler instead keeps only the candidate pairs that can matter,
// laid out in the PR 5 CSR discipline.
//
// Hindsight semantics. The offline optimum must answer "what could a
// clairvoyant dispatcher have earned on this day", so dynamic events
// tighten the taskmap feasibility rules rather than disappear:
//
//   - A cancellation at time c bars any pickup after c: the pickup
//     deadline becomes PickupBar = min(StartBy, cancelAt), substituted
//     for StartBy in the source-reach clause (Eq. 2) and the inter-task
//     gap (Eq. 3). The service window (Eq. 1) and the dropoff deadline
//     keep using StartBy/EndBy — a served-in-time task is unaffected by
//     a cancellation that never fired.
//   - A mid-day join at time j delays the driver's effective shift
//     start: EffStart = max(Start, joinAt) replaces Start in the
//     source-reach clause. Before j the platform does not know the
//     driver exists, so no pickup can be scheduled to start earlier.
//   - A retirement at time r bars new assignments, not committed ones:
//     a driver is a candidate for an order only if the order was
//     published strictly before r (Publish < RetireAt). This matches
//     the engine, where an in-flight task is still completed.
//
// On an event-free trace every bar is vacuous (PickupBar = StartBy,
// EffStart = Start, RetireAt = +Inf) and the compiled instance is
// exactly the taskmap restricted to pairs that can appear on some
// path — the parity tests in hindsight_test.go hold this bitwise.
//
// One conservative prefilter drops pairs with EffStart > PickupBar:
// such a pair can never be on a feasible path (as a first task the
// reach clause fails outright; as a successor of some first task a₀,
// PickupBar_m ≥ EndBy_a₀ − ε > PickupBar_a₀ − ε ≥ EffStart − 2ε), so
// removing it cannot change any solution. The ≤ is slack by 2ε to keep
// that argument airtight under float noise.

// Objective selects what the compiled instance's values and costs
// measure.
type Objective int

const (
	// ObjectiveProfit compiles the paper's Eq. 4 driver-profit
	// objective: task margins minus deadhead/source/sink legs plus the
	// baseline credit. Bitwise-comparable with taskmap.PathProfit and
	// bound.BruteForce.
	ObjectiveProfit Objective = iota
	// ObjectiveRevenue compiles market revenue (Σ Price over served
	// tasks): values are raw prices and every cost and baseline is
	// zero, so the same solver maximizes revenue. This is the
	// competitive-ratio objective of the bench rail.
	ObjectiveRevenue
)

func (o Objective) String() string {
	switch o {
	case ObjectiveProfit:
		return "profit"
	case ObjectiveRevenue:
		return "revenue"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Options configures Compile.
type Options struct {
	Objective Objective

	// TopK = 0 compiles the exact instance: every pair that can appear
	// on some feasible path is kept. TopK > 0 compiles the rail
	// instance: per order, only the TopK individually-profitable
	// drivers (ranked by single-task profit, ties to the lower driver
	// index) plus any forced Keep pairs survive. The rail instance's
	// optimum is a lower bound on the true hindsight optimum — forced
	// pairs from the online policies keep it at or above every online
	// policy, so competitive ratios stay ≤ 1.
	TopK int

	// Keep lists (task index, driver index) pairs that must survive
	// rail pruning — typically the union of the online policies'
	// assignments, so their schedules stay representable. Pairs that
	// fail the hindsight feasibility rules are still dropped (and
	// counted in Stats.ForcedDropped).
	Keep [][2]int32

	// Workers bounds compile-time parallelism over the per-order
	// candidate scan and the per-driver arc discovery. Values below 2
	// run serially. The output is identical for every worker count —
	// rows and drivers are independent.
	Workers int
}

// CompileStats records what the compiler kept and dropped.
type CompileStats struct {
	Pairs         int // candidate pairs kept
	ForcedKept    int // pairs kept only because of Options.Keep
	ForcedDropped int // Keep pairs that failed hindsight feasibility
	DroppedTopK   int // candidates cut by rail top-k pruning
	Arcs          int // per-driver inter-task arcs
	ActiveDrivers int // drivers with ≥ 1 kept pair (compact columns)
	Components    int
	LargestTasks  int // tasks in the largest component
	LargestSlots  int // pair slots in the largest component
}

// Instance is a compiled hindsight assignment graph. All slices are
// laid out flat; "slot" means one kept (task, driver) pair, the unit
// the per-driver views below are indexed by.
type Instance struct {
	Market  model.Market
	Drivers []model.Driver
	Tasks   []model.Task

	Objective Objective

	// Hindsight bars (see the file comment). PickupBar is per task;
	// EffStart/RetireAt are per original driver index.
	PickupBar []float64
	EffStart  []float64
	RetireAt  []float64

	// Value[m] is the objective margin collected on serving task m.
	Value []float64

	// Pairs is the kept candidate graph in CSR over rows = tasks and
	// cols = compact drivers; W holds the single-task profit used for
	// rail ranking. PairSlot maps a CSR position to its slot id.
	Pairs    matching.Sparse
	PairSlot []int32

	// DrvID maps a compact driver to its original index; CompactOf is
	// the inverse (-1 for drivers with no kept pair).
	DrvID     []int
	compactOf []int32

	// Per-driver slot view: compact driver d owns slots
	// DrvPtr[d]:DrvPtr[d+1]; DrvTask ascends within a driver. Costs
	// and the baseline are already objective-adjusted (all zero under
	// ObjectiveRevenue).
	DrvPtr     []int
	DrvTask    []int32
	DrvSrcOK   []bool
	DrvSrcCost []float64
	DrvSnkCost []float64
	Baseline   []float64

	// DrvTopo lists each driver's slots in topological (StartBy, index)
	// order, in the same DrvPtr segments.
	DrvTopo []int32

	// Per-slot successor arcs: slot s's successors are
	// DrvSucc[DrvSuccPtr[s]:DrvSuccPtr[s+1]] — slot ids of the same
	// driver, in topological order of the successor task, mirroring
	// taskmap.Graph.Succs on the kept subset.
	DrvSuccPtr  []int
	DrvSucc     []int32
	DrvSuccCost []float64

	// Comp is the union-find decomposition of Pairs: component rows
	// are task indices, component cols compact drivers.
	Comp  matching.ComponentScratch
	NComp int

	Stats CompileStats
}

// timeEps mirrors taskmap's deadline-comparison slack.
const timeEps = 1e-9

// NDrv returns the compact driver count, NSlots the kept pair count.
func (in *Instance) NDrv() int   { return len(in.DrvID) }
func (in *Instance) NSlots() int { return len(in.DrvTask) }

// CompactOf returns the compact index of an original driver index, or
// -1 if the driver has no kept pair.
func (in *Instance) CompactOf(orig int) int {
	if orig < 0 || orig >= len(in.compactOf) {
		return -1
	}
	return int(in.compactOf[orig])
}

// Slot returns the slot id of (compact driver d, task m), or -1.
func (in *Instance) Slot(d, m int) int {
	lo, hi := in.DrvPtr[d], in.DrvPtr[d+1]
	i := lo + sort.Search(hi-lo, func(k int) bool { return int(in.DrvTask[lo+k]) >= m })
	if i < hi && int(in.DrvTask[i]) == m {
		return i
	}
	return -1
}

// SuccIndex returns the position in DrvSucc of the arc slot sa → slot
// sb, or -1 if the arc does not exist.
func (in *Instance) SuccIndex(sa, sb int) int {
	for k := in.DrvSuccPtr[sa]; k < in.DrvSuccPtr[sa+1]; k++ {
		if int(in.DrvSucc[k]) == sb {
			return k
		}
	}
	return -1
}

// PathValue computes the objective value of the slot sequence for
// compact driver d, replicating taskmap.PathProfit's accumulation
// order operation for operation so profit-mode values are bitwise
// comparable with the dense oracle. It errors if the sequence is not a
// path in the compiled graph.
func (in *Instance) PathValue(d int, slots []int32) (float64, error) {
	if len(slots) == 0 {
		return 0, nil
	}
	first := int(slots[0])
	if first < in.DrvPtr[d] || first >= in.DrvPtr[d+1] {
		return 0, fmt.Errorf("offline: slot %d not owned by driver %d", first, d)
	}
	if !in.DrvSrcOK[first] {
		return 0, fmt.Errorf("offline: task %d not reachable from driver %d's source", in.DrvTask[first], d)
	}
	value := -in.DrvSrcCost[first]
	for i, s := range slots {
		si := int(s)
		if si < in.DrvPtr[d] || si >= in.DrvPtr[d+1] {
			return 0, fmt.Errorf("offline: slot %d not owned by driver %d", si, d)
		}
		value += in.Value[in.DrvTask[si]]
		if i > 0 {
			k := in.SuccIndex(int(slots[i-1]), si)
			if k < 0 {
				return 0, fmt.Errorf("offline: no arc %d→%d for driver %d",
					in.DrvTask[slots[i-1]], in.DrvTask[si], d)
			}
			value -= in.DrvSuccCost[k]
		}
	}
	value -= in.DrvSnkCost[int(slots[len(slots)-1])]
	value += in.Baseline[d]
	return value, nil
}

// candidate is one surviving (task, driver) pair during the scan.
type candidate struct {
	driver  int32 // original driver index
	srcOK   bool
	forced  bool
	srcCost float64 // real (profit-basis) costs; zeroed later for revenue
	snkCost float64
	rank    float64 // single-task profit, the rail ranking key
}

// Compile builds the hindsight instance for one trace under the given
// options. The trace must validate; Keep entries must be in range.
func Compile(market model.Market, tr model.Trace, opt Options) (*Instance, error) {
	if err := model.ValidateAll(market, tr.Drivers, tr.Tasks); err != nil {
		return nil, fmt.Errorf("offline: %w", err)
	}
	if err := model.ValidateEvents(tr.Events, tr.Drivers, tr.Tasks); err != nil {
		return nil, fmt.Errorf("offline: %w", err)
	}
	if opt.TopK < 0 {
		return nil, fmt.Errorf("offline: negative TopK %d", opt.TopK)
	}
	nDrv, nTask := len(tr.Drivers), len(tr.Tasks)
	for _, kp := range opt.Keep {
		if int(kp[0]) < 0 || int(kp[0]) >= nTask || int(kp[1]) < 0 || int(kp[1]) >= nDrv {
			return nil, fmt.Errorf("offline: keep pair (task %d, driver %d) out of range", kp[0], kp[1])
		}
	}

	in := &Instance{
		Market:    market,
		Drivers:   tr.Drivers,
		Tasks:     tr.Tasks,
		Objective: opt.Objective,
	}
	in.compileBars(tr.Events)
	in.compileValues()

	forced := make([][]int32, nTask) // per task, deduped forced driver list
	for _, kp := range opt.Keep {
		dup := false
		for _, f := range forced[kp[0]] {
			if f == kp[1] {
				dup = true
				break
			}
		}
		if !dup {
			forced[kp[0]] = append(forced[kp[0]], kp[1])
		}
	}

	// Per-order candidate scan (independent rows — parallelizable).
	rows := make([][]candidate, nTask)
	fitsMarket := make([]bool, nTask)
	for m, t := range tr.Tasks {
		fitsMarket[m] = market.ServiceTime(t, 0) <= t.EndBy-t.StartBy+timeEps
	}
	// The baseline credit is a per-driver constant; computing it once
	// here instead of per (task, driver) pair removes a distance call
	// from the scan's hot loop.
	baseCost := make([]float64, nDrv)
	for n, d := range tr.Drivers {
		baseCost[n] = market.BaselineCost(d)
	}
	dropped := make([]int, nTask)
	scan := func(m int) {
		rows[m] = in.scanOrder(m, fitsMarket, baseCost, forced[m], opt, rows[m])
		if opt.TopK > 0 {
			before := len(rows[m])
			rows[m] = pruneTopK(rows[m], opt.TopK)
			dropped[m] = before - len(rows[m])
		}
	}
	runIndexed(opt.Workers, nTask, scan)
	for m, d := range dropped {
		in.Stats.DroppedTopK += d
		found := 0
		for _, c := range rows[m] {
			if c.forced {
				found++
			}
		}
		in.Stats.ForcedDropped += len(forced[m]) - found
	}

	in.assemble(rows, opt)
	in.buildArcs(opt)
	in.NComp = in.Comp.Decompose(in.Pairs)
	in.Stats.Components = in.NComp
	for c := 0; c < in.NComp; c++ {
		if n := in.Comp.RowPtr[c+1] - in.Comp.RowPtr[c]; n > in.Stats.LargestTasks {
			in.Stats.LargestTasks = n
		}
		slots := 0
		for _, col := range in.Comp.ColsByComp[in.Comp.ColPtr[c]:in.Comp.ColPtr[c+1]] {
			slots += in.DrvPtr[col+1] - in.DrvPtr[col]
		}
		if slots > in.Stats.LargestSlots {
			in.Stats.LargestSlots = slots
		}
	}
	return in, nil
}

// compileBars folds the event stream into the per-task and per-driver
// hindsight bars.
func (in *Instance) compileBars(events []model.MarketEvent) {
	in.PickupBar = make([]float64, len(in.Tasks))
	for m, t := range in.Tasks {
		in.PickupBar[m] = t.StartBy
	}
	in.EffStart = make([]float64, len(in.Drivers))
	in.RetireAt = make([]float64, len(in.Drivers))
	for n, d := range in.Drivers {
		in.EffStart[n] = d.Start
		in.RetireAt[n] = math.Inf(1)
	}
	for _, ev := range events {
		switch ev.Kind {
		case model.EventJoin:
			if ev.At > in.EffStart[ev.Driver] {
				in.EffStart[ev.Driver] = ev.At
			}
		case model.EventRetire:
			if ev.At < in.RetireAt[ev.Driver] {
				in.RetireAt[ev.Driver] = ev.At
			}
		case model.EventCancel:
			if ev.At < in.PickupBar[ev.Task] {
				in.PickupBar[ev.Task] = ev.At
			}
		}
	}
}

func (in *Instance) compileValues() {
	in.Value = make([]float64, len(in.Tasks))
	for m, t := range in.Tasks {
		if in.Objective == ObjectiveRevenue {
			in.Value[m] = t.Price
		} else {
			in.Value[m] = t.Price - in.Market.ServiceCost(t)
		}
	}
}

// scanOrder collects task m's surviving candidate drivers in ascending
// driver order. In exact mode (TopK = 0) every hindsight-feasible pair
// survives; in rail mode only individually-profitable source-reachable
// pairs compete for the top-k, plus the forced list.
func (in *Instance) scanOrder(m int, fitsMarket []bool, baseCost []float64, forcedDrivers []int32, opt Options, buf []candidate) []candidate {
	buf = buf[:0]
	t := in.Tasks[m]
	bar := in.PickupBar[m]
	// The profit-basis margin is the ranking key whatever the compile
	// objective: revenue-mode pruning still wants pairs a profit-seeking
	// platform would plausibly use.
	profitValue := t.Price - in.Market.ServiceCost(t)
	// The distance function dominates city-scale compiles, so each
	// surviving pair computes its two distances exactly once and derives
	// both the time check and the cost from the same value (the
	// expressions match Market.TravelTime / Market.TravelCost term for
	// term, so the results are bit-identical to the method calls).
	dist, gas, mktSpeed := in.Market.Dist, in.Market.GasPerKm, in.Market.SpeedKmh
	for n, d := range in.Drivers {
		eff := in.EffStart[n]
		// Cheap bar checks first; geometry only for survivors.
		if eff > bar+2*timeEps {
			continue // prefilter: can never be on a path (file comment)
		}
		if t.Publish >= in.RetireAt[n] {
			continue // retired before the order existed
		}
		if d.End-t.EndBy < -timeEps {
			continue // shift ends before the dropoff deadline
		}
		sp := d.SpeedKmh
		// Eq. (1) at the driver's own speed.
		if sp == 0 {
			if !fitsMarket[m] {
				continue
			}
			sp = mktSpeed
		} else {
			if in.Market.ServiceTime(t, sp) > t.EndBy-t.StartBy+timeEps {
				continue
			}
			if sp <= 0 {
				sp = mktSpeed
			}
		}
		// Return clause of Eqs. (2)-(3).
		retDist := dist(t.Dest, d.Dest)
		if retDist/sp*3600 > d.End-t.EndBy+timeEps {
			continue
		}
		srcDist := dist(d.Source, t.Source)
		srcOK := srcDist/sp*3600 <= bar-eff+timeEps
		isForced := false
		for _, f := range forcedDrivers {
			if int(f) == n {
				isForced = true
				break
			}
		}
		if opt.TopK > 0 && !srcOK && !isForced {
			continue // rail candidates must work standalone
		}
		srcCost := srcDist * gas
		snkCost := retDist * gas
		rank := profitValue - srcCost - snkCost + baseCost[n]
		if opt.TopK > 0 && !isForced && !(rank > 0) {
			continue // rail candidates must be individually profitable
		}
		buf = append(buf, candidate{
			driver: int32(n), srcOK: srcOK, forced: isForced,
			srcCost: srcCost, snkCost: snkCost, rank: rank,
		})
	}
	return buf
}

// pruneTopK keeps the k best candidates by (rank desc, driver asc) plus
// every forced candidate, preserving ascending driver order. cands is
// already driver-ascending, so admitting cutoff ties first-come keeps
// the earlier driver on rank ties.
func pruneTopK(cands []candidate, k int) []candidate {
	free := 0
	for _, c := range cands {
		if !c.forced {
			free++
		}
	}
	if free <= k {
		return cands
	}
	// A size-k min-heap of the largest free ranks replaces a full sort:
	// the multiset of the k largest values is unique, so the cutoff and
	// the tie budget come out identical at O(free·log k).
	heap := make([]float64, 0, k)
	for _, c := range cands {
		if c.forced {
			continue
		}
		r := c.rank
		if len(heap) < k {
			heap = append(heap, r)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if heap[p] <= heap[i] {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
			continue
		}
		if r <= heap[0] {
			continue
		}
		heap[0] = r
		for i := 0; ; {
			c := 2*i + 1
			if c >= k {
				break
			}
			if rc := c + 1; rc < k && heap[rc] < heap[c] {
				c = rc
			}
			if heap[i] <= heap[c] {
				break
			}
			heap[i], heap[c] = heap[c], heap[i]
			i = c
		}
	}
	cutoff := heap[0]
	tieBudget := k
	for _, r := range heap {
		if r > cutoff {
			tieBudget--
		}
	}
	out := make([]candidate, 0, k)
	for _, c := range cands {
		switch {
		case c.forced:
			out = append(out, c)
		case c.rank > cutoff:
			out = append(out, c)
		case c.rank == cutoff && tieBudget > 0:
			out = append(out, c)
			tieBudget--
		}
	}
	return out
}

// assemble lays the per-task candidate rows out as the pair CSR, the
// compact driver set, and the per-driver slot view.
func (in *Instance) assemble(rows [][]candidate, opt Options) {
	nTask, nDrv := len(in.Tasks), len(in.Drivers)
	revenue := in.Objective == ObjectiveRevenue

	// Compact the touched drivers, ascending original index.
	in.compactOf = make([]int32, nDrv)
	for n := range in.compactOf {
		in.compactOf[n] = -1
	}
	nnz := 0
	for _, row := range rows {
		nnz += len(row)
		for _, c := range row {
			in.compactOf[c.driver] = 0
		}
	}
	for n := 0; n < nDrv; n++ {
		if in.compactOf[n] == 0 {
			in.compactOf[n] = int32(len(in.DrvID))
			in.DrvID = append(in.DrvID, n)
		}
	}
	nc := len(in.DrvID)
	in.Stats.ActiveDrivers = nc
	in.Stats.Pairs = nnz

	in.Pairs = matching.Sparse{
		Rows:   nTask,
		Cols:   nc,
		RowPtr: make([]int, nTask+1),
		Col:    make([]int, 0, nnz),
		W:      make([]float64, 0, nnz),
	}
	in.PairSlot = make([]int32, nnz)
	in.DrvPtr = make([]int, nc+1)
	for m, row := range rows {
		in.Pairs.RowPtr[m+1] = in.Pairs.RowPtr[m] + len(row)
		for _, c := range row {
			in.Pairs.Col = append(in.Pairs.Col, int(in.compactOf[c.driver]))
			in.Pairs.W = append(in.Pairs.W, c.rank)
			in.DrvPtr[in.compactOf[c.driver]+1]++
			if c.forced && (opt.TopK > 0 && !(c.srcOK && c.rank > 0)) {
				in.Stats.ForcedKept++
			}
		}
	}
	for d := 1; d <= nc; d++ {
		in.DrvPtr[d] += in.DrvPtr[d-1]
	}

	in.DrvTask = make([]int32, nnz)
	in.DrvSrcOK = make([]bool, nnz)
	in.DrvSrcCost = make([]float64, nnz)
	in.DrvSnkCost = make([]float64, nnz)
	cursor := make([]int, nc)
	copy(cursor, in.DrvPtr[:nc])
	k := 0
	for m, row := range rows {
		for _, c := range row {
			d := int(in.compactOf[c.driver])
			s := cursor[d]
			cursor[d]++
			in.DrvTask[s] = int32(m)
			in.DrvSrcOK[s] = c.srcOK
			if !revenue {
				in.DrvSrcCost[s] = c.srcCost
				in.DrvSnkCost[s] = c.snkCost
			}
			in.PairSlot[k] = int32(s)
			k++
		}
	}
	in.Baseline = make([]float64, nc)
	if !revenue {
		for d, orig := range in.DrvID {
			in.Baseline[d] = in.Market.BaselineCost(in.Drivers[orig])
		}
	}

	// Topological slot order per driver, derived from the global
	// (StartBy, index) order exactly as taskmap.buildOrder sorts it.
	order := make([]int32, nTask)
	for i := range order {
		order[i] = int32(i)
	}
	tasks := in.Tasks
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if tasks[a].StartBy != tasks[b].StartBy {
			return tasks[a].StartBy < tasks[b].StartBy
		}
		return a < b
	})
	in.DrvTopo = make([]int32, nnz)
	copy(cursor, in.DrvPtr[:nc])
	for _, mi := range order {
		m := int(mi)
		for p := in.Pairs.RowPtr[m]; p < in.Pairs.RowPtr[m+1]; p++ {
			d := in.Pairs.Col[p]
			in.DrvTopo[cursor[d]] = in.PairSlot[p]
			cursor[d]++
		}
	}
}

// buildArcs discovers the per-driver inter-task arcs driver-centrically:
// for each driver, ordered pairs within her kept task set in topological
// order, reproducing taskmap.buildSharedArcs' conditions (and its
// Succs ordering) on the kept subset. The global shared-arc loop would
// be O(M²) ≈ 70M arcs at 12k orders; Σ|T_d|² over rail-pruned drivers
// is orders of magnitude smaller.
func (in *Instance) buildArcs(opt Options) {
	nnz := len(in.DrvTask)
	revenue := in.Objective == ObjectiveRevenue
	counts := make([]int, nnz+1)
	type arc struct {
		from, to int32
		cost     float64
	}
	arcs := make([][]arc, len(in.DrvID))

	fits := make([]bool, len(in.Tasks))
	for m, t := range in.Tasks {
		fits[m] = in.Market.ServiceTime(t, 0) <= t.EndBy-t.StartBy+timeEps
	}

	discover := func(d int) {
		topo := in.DrvTopo[in.DrvPtr[d]:in.DrvPtr[d+1]]
		speed := in.Drivers[in.DrvID[d]].SpeedKmh
		var out []arc
		for i := 0; i < len(topo); i++ {
			sa := int(topo[i])
			a := int(in.DrvTask[sa])
			if !fits[a] {
				continue
			}
			ta := in.Tasks[a]
			for j := i + 1; j < len(topo); j++ {
				sb := int(topo[j])
				b := int(in.DrvTask[sb])
				if !fits[b] {
					continue
				}
				tb := in.Tasks[b]
				gap := in.PickupBar[b] - ta.EndBy
				if gap < -timeEps {
					continue
				}
				if in.Market.TravelTime(ta.Dest, tb.Source, 0) > gap+timeEps {
					continue
				}
				// Slower speed overrides re-check the deadhead against
				// the barred gap, mirroring taskmap.arcUsable.
				if speed > 0 && speed < in.Market.SpeedKmh {
					if in.Market.Dist(ta.Dest, tb.Source)/speed*3600 > gap+timeEps {
						continue
					}
				}
				cost := 0.0
				if !revenue {
					cost = in.Market.DeadheadCost(ta, tb)
				}
				out = append(out, arc{from: int32(sa), to: int32(sb), cost: cost})
			}
		}
		arcs[d] = out
	}
	runIndexed(opt.Workers, len(in.DrvID), discover)

	total := 0
	for _, out := range arcs {
		total += len(out)
		for _, a := range out {
			counts[a.from+1]++
		}
	}
	in.Stats.Arcs = total
	in.DrvSuccPtr = counts
	for s := 1; s <= nnz; s++ {
		in.DrvSuccPtr[s] += in.DrvSuccPtr[s-1]
	}
	in.DrvSucc = make([]int32, total)
	in.DrvSuccCost = make([]float64, total)
	fill := make([]int, nnz)
	copy(fill, in.DrvSuccPtr[:nnz])
	// Per driver, arcs were discovered with ascending topo source and
	// ascending topo target — scattering in that order keeps each succ
	// list in topo order of the target, matching taskmap.Succs.
	for _, out := range arcs {
		for _, a := range out {
			p := fill[a.from]
			fill[a.from]++
			in.DrvSucc[p] = a.to
			in.DrvSuccCost[p] = a.cost
		}
	}
}

// runIndexed applies fn to every index, fanning out over workers when
// workers > 1. Each index is processed exactly once; work is handed out
// in contiguous chunks so writers touch disjoint cache lines.
func runIndexed(workers, n int, fn func(int)) {
	if workers < 2 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			for i := lo; i < hi; i++ {
				fn(i)
			}
			done <- struct{}{}
		}(lo, hi)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
