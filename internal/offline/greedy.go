// Package offline implements the paper's deterministic offline solution
// (§IV): the greedy algorithm GA (Algorithm 1) for the maximum-value
// node-disjoint paths problem, which achieves a tight 1/(D+1)
// approximation ratio where D is the task-map diameter (Theorem 1).
//
// GA repeatedly selects the highest-profit source→destination path in the
// current graph, assigns it to its driver, and removes the driver and the
// path's task nodes. This implementation reproduces GA's exact choice
// sequence with lazy re-evaluation: removing nodes can only lower any
// driver's best-path profit, so a cached best path that survived all
// removals and still tops a max-heap is provably the global argmax —
// stale entries are recomputed on demand instead of recomputing every
// driver every iteration (the paper's O(N²M²) worst case is preserved,
// the common case is far cheaper).
package offline

import (
	"container/heap"

	"repro/internal/taskmap"
)

// Solution is the assignment produced by the greedy algorithm.
type Solution struct {
	// Paths holds the selected task lists, in selection order (highest
	// profit first), one per selected driver.
	Paths []taskmap.Path
	// TotalProfit is the drivers' total profit (objective Eq. 4).
	TotalProfit float64
	// Iterations is the number of greedy selections (K in the paper's
	// analysis); Recomputes counts longest-path DP invocations, the
	// measure of how much work lazy evaluation saved.
	Iterations int
	Recomputes int
}

// Assignment returns task→driver in a map, for quick membership tests.
func (s Solution) Assignment() map[int]int {
	out := make(map[int]int)
	for _, p := range s.Paths {
		for _, t := range p.Tasks {
			out[t] = p.Driver
		}
	}
	return out
}

// ServedTasks returns the number of tasks assigned.
func (s Solution) ServedTasks() int {
	n := 0
	for _, p := range s.Paths {
		n += len(p.Tasks)
	}
	return n
}

type heapItem struct {
	path    taskmap.Path
	version int // graph version when the path was computed
}

type pathHeap []heapItem

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].path.Profit > h[j].path.Profit }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Greedy runs Algorithm 1 on the task map and returns the selected
// paths. The choice sequence is exactly the paper's GA up to arbitrary
// tie-breaking between equal-profit paths.
func Greedy(g *taskmap.Graph) Solution {
	alive := make([]bool, g.M())
	for i := range alive {
		alive[i] = true
	}

	var sol Solution
	h := make(pathHeap, 0, g.N())
	version := 0
	for n := 0; n < g.N(); n++ {
		p := g.BestPath(n, alive, nil)
		sol.Recomputes++
		if p.Len() > 0 && p.Profit > 0 {
			h = append(h, heapItem{path: p, version: version})
		}
	}
	heap.Init(&h)

	for h.Len() > 0 {
		it := heap.Pop(&h).(heapItem)
		if it.version != version && !allAlive(it.path.Tasks, alive) {
			// Stale: some node on the cached path was removed.
			// Recompute against the current graph; the recomputed
			// profit can only be ≤ the cached one, so pushing it back
			// keeps the heap's max property sound.
			p := g.BestPath(it.path.Driver, alive, nil)
			sol.Recomputes++
			if p.Len() > 0 && p.Profit > 0 {
				heap.Push(&h, heapItem{path: p, version: version})
			}
			continue
		}
		// If the cached path survived every removal its profit is still
		// attainable, and since removals only lower best-path profits it
		// is still the driver's optimum — fresh by value, even if the
		// version lagged.
		// Fresh: this is the global maximum-profit path. Select it.
		sol.Paths = append(sol.Paths, it.path)
		sol.TotalProfit += it.path.Profit
		sol.Iterations++
		for _, t := range it.path.Tasks {
			alive[t] = false
		}
		version++
	}
	return sol
}

func allAlive(tasks []int, alive []bool) bool {
	for _, t := range tasks {
		if !alive[t] {
			return false
		}
	}
	return true
}

// GreedyNaive is the textbook O(N²M²) implementation of Algorithm 1: in
// every iteration it recomputes the best path of every remaining driver
// and picks the maximum. It exists as the reference implementation that
// the lazy version is tested against, and as the ablation baseline for
// the lazy-evaluation benchmark.
func GreedyNaive(g *taskmap.Graph) Solution {
	alive := make([]bool, g.M())
	for i := range alive {
		alive[i] = true
	}
	usedDriver := make([]bool, g.N())

	var sol Solution
	for {
		best := taskmap.Path{}
		found := false
		for n := 0; n < g.N(); n++ {
			if usedDriver[n] {
				continue
			}
			p := g.BestPath(n, alive, nil)
			sol.Recomputes++
			if p.Len() == 0 || p.Profit <= 0 {
				continue
			}
			if !found || p.Profit > best.Profit {
				best = p
				found = true
			}
		}
		if !found {
			return sol
		}
		sol.Paths = append(sol.Paths, best)
		sol.TotalProfit += best.Profit
		sol.Iterations++
		usedDriver[best.Driver] = true
		for _, t := range best.Tasks {
			alive[t] = false
		}
	}
}
