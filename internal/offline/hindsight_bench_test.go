package offline_test

import (
	"testing"

	"repro/internal/offline"
	"repro/internal/trace"
)

// BenchmarkCompileHindsight prices the trace→instance compiler at a
// bench-scale day (the BENCH_7 shape, scaled down ~10x so the CI bench
// smoke finishes); the city-scale figure is recorded by the -oracle
// suite's compile_seconds column.
func BenchmarkCompileHindsight(b *testing.B) {
	cfg := trace.NewConfig(7, 1200, 5000, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	tr.Events = trace.WithChurn(tr, trace.DefaultChurn(7, 0.2, 0.15))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := offline.Compile(cfg.Market, tr, offline.Options{
			Objective: offline.ObjectiveRevenue, TopK: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if in.NComp == 0 {
			b.Fatal("no components")
		}
	}
}
