package fed

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/dispatch"
)

// Market describes one city registered with the Router.
type Market struct {
	Name string            // path segment under /v1/markets/; no slashes
	Svc  *dispatch.Service // the market's dispatch service

	// MaxInflight caps concurrent in-flight HTTP requests routed to this
	// market; excess requests are shed with 429 at the router, before
	// they touch the service. 0 leaves router-level admission unbounded
	// (the service's own WithMaxPending bound still applies).
	MaxInflight int

	// WALDir, when non-empty, is the market's write-ahead-log directory
	// and enables Router.Restart: halt the service crash-consistently,
	// dispatch.Restore from the log, and swap the rebuilt service in
	// while every other market keeps serving. DurOpts tune the reopened
	// log exactly as they would on dispatch.Restore.
	WALDir  string
	DurOpts []dispatch.DurOption
}

// marketEntry is a registered market's runtime state. The service and
// handler are swapped under their own lock during a rolling restart so
// routing to OTHER markets never blocks on a restore.
type marketEntry struct {
	name        string
	maxInflight int64
	walDir      string
	durOpts     []dispatch.DurOption

	inflight atomic.Int64

	mu   sync.RWMutex
	svc  *dispatch.Service
	h    http.Handler
	down bool // mid-restart: requests answer 503 until the restore lands
}

// Router federates named markets behind one HTTP surface:
//
//	GET  /healthz                      aggregate health, per-market breakdown
//	GET  /v1/stats                     aggregate books, per-market breakdown
//	GET  /v1/markets                   registered market names
//	POST /v1/markets/{m}/restart       rolling restart via WAL recovery
//	     /v1/markets/{m}/<endpoint>    the market's own API (MarketHandler),
//	                                   e.g. /v1/markets/porto/tasks,
//	                                   /v1/markets/porto/healthz
//
// Construct with NewRouter, add markets with Register, mount Handler.
type Router struct {
	done <-chan struct{}

	mu      sync.Mutex
	markets map[string]*marketEntry
}

// NewRouter returns an empty router. done, when non-nil, tells
// streaming per-market handlers the server is shutting down.
func NewRouter(done <-chan struct{}) *Router {
	return &Router{done: done, markets: make(map[string]*marketEntry)}
}

// Register adds a market. Names are path segments: non-empty, unique,
// and slash-free.
func (rt *Router) Register(m Market) error {
	if m.Name == "" || strings.ContainsAny(m.Name, "/ ") {
		return fmt.Errorf("fed: market name %q, want a non-empty path segment", m.Name)
	}
	if m.Svc == nil {
		return fmt.Errorf("fed: market %q registered without a service", m.Name)
	}
	if m.MaxInflight < 0 {
		return fmt.Errorf("fed: market %q max inflight %d, want ≥ 0", m.Name, m.MaxInflight)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.markets[m.Name]; dup {
		return fmt.Errorf("fed: market %q already registered", m.Name)
	}
	rt.markets[m.Name] = &marketEntry{
		name:        m.Name,
		maxInflight: int64(m.MaxInflight),
		walDir:      m.WALDir,
		durOpts:     m.DurOpts,
		svc:         m.Svc,
		h:           MarketHandler(m.Svc, rt.done),
	}
	return nil
}

// Names lists the registered markets, sorted.
func (rt *Router) Names() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	names := make([]string, 0, len(rt.markets))
	for name := range rt.markets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookup returns the entry for a market name.
func (rt *Router) lookup(name string) (*marketEntry, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e, ok := rt.markets[name]
	return e, ok
}

// Service returns the market's current dispatch service (the restored
// one after a rolling restart).
func (rt *Router) Service(name string) (*dispatch.Service, bool) {
	e, ok := rt.lookup(name)
	if !ok {
		return nil, false
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.svc, true
}

// SetService swaps a market's service for a replacement — the
// re-registration half of an externally-orchestrated rolling restart —
// and brings the market back up.
func (rt *Router) SetService(name string, svc *dispatch.Service) error {
	if svc == nil {
		return fmt.Errorf("fed: market %q: nil replacement service", name)
	}
	e, ok := rt.lookup(name)
	if !ok {
		return fmt.Errorf("fed: unknown market %q", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.svc = svc
	e.h = MarketHandler(svc, rt.done)
	e.down = false
	return nil
}

// Restart rolls one market through WAL recovery: the service is halted
// crash-consistently (no finish record — the day does NOT settle), the
// log is restored into a fresh service, and the replacement is swapped
// in. While the restore runs the market answers 503; every other market
// keeps serving untouched. The market must have been registered with a
// WALDir.
func (rt *Router) Restart(name string) error {
	e, ok := rt.lookup(name)
	if !ok {
		return fmt.Errorf("fed: unknown market %q", name)
	}
	if e.walDir == "" {
		return fmt.Errorf("fed: market %q has no write-ahead log to restart from", name)
	}
	e.mu.Lock()
	if e.down {
		e.mu.Unlock()
		return fmt.Errorf("fed: market %q is already restarting", name)
	}
	e.down = true
	old := e.svc
	e.mu.Unlock()

	if _, err := old.Halt(); err != nil {
		e.mu.Lock()
		e.down = false
		e.mu.Unlock()
		return fmt.Errorf("fed: halting market %q: %w", name, err)
	}
	svc, err := dispatch.Restore(e.walDir, e.durOpts...)
	if err != nil {
		// The old service is halted and the restore failed: the market
		// stays down (503) rather than serving a half-state. The log on
		// disk is intact; a later Restart or SetService can still land.
		return fmt.Errorf("fed: restoring market %q: %w", name, err)
	}
	e.mu.Lock()
	e.svc = svc
	e.h = MarketHandler(svc, rt.done)
	e.down = false
	e.mu.Unlock()
	return nil
}

// Close settles every market (dispatch.Close: final snapshot, finish
// record, fsync) and reports the settled stats per market alongside the
// first error.
func (rt *Router) Close() (map[string]dispatch.Stats, error) {
	var firstErr error
	out := make(map[string]dispatch.Stats)
	for _, name := range rt.Names() {
		e, ok := rt.lookup(name)
		if !ok {
			continue
		}
		e.mu.RLock()
		svc := e.svc
		e.mu.RUnlock()
		stats, err := svc.Close()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fed: closing market %q: %w", name, err)
		}
		out[name] = stats
	}
	return out, firstErr
}

// AggregateStats is the federation-wide view of the books: sums across
// markets plus the per-market breakdown the sums reconcile against.
type AggregateStats struct {
	Markets   int     `json:"markets"`
	Tasks     int     `json:"tasks"`
	Served    int     `json:"served"`
	Rejected  int     `json:"rejected"`
	Cancelled int     `json:"cancelled"`
	Pending   int     `json:"pending"`
	Shed      int     `json:"shed"`
	FeedDrops int     `json:"feed_drops"`
	Revenue   float64 `json:"revenue"`
	Profit    float64 `json:"profit"`

	PerMarket map[string]dispatch.Stats `json:"per_market"`
}

// Stats aggregates every market's Snapshot. A halted (mid-restart)
// market answers its stats as of the halt, so the aggregate stays
// well-defined during a rolling restart.
func (rt *Router) Stats(r *http.Request) (AggregateStats, error) {
	agg := AggregateStats{PerMarket: make(map[string]dispatch.Stats)}
	for _, name := range rt.Names() {
		e, ok := rt.lookup(name)
		if !ok {
			continue
		}
		e.mu.RLock()
		svc := e.svc
		e.mu.RUnlock()
		stats, err := svc.Snapshot(r.Context())
		if err != nil {
			return agg, fmt.Errorf("fed: market %q stats: %w", name, err)
		}
		agg.Markets++
		agg.Tasks += stats.Tasks
		agg.Served += stats.Served
		agg.Rejected += stats.Rejected
		agg.Cancelled += stats.Cancelled
		agg.Pending += stats.Pending
		agg.Shed += stats.Shed
		agg.FeedDrops += stats.FeedDrops
		agg.Revenue += stats.Revenue
		agg.Profit += stats.Profit
		agg.PerMarket[name] = stats
	}
	return agg, nil
}

// Handler mounts the router's HTTP surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		overall := "ok"
		perMarket := make(map[string]any)
		for _, name := range rt.Names() {
			e, ok := rt.lookup(name)
			if !ok {
				continue
			}
			e.mu.RLock()
			svc, down := e.svc, e.down
			e.mu.RUnlock()
			if down {
				overall = "degraded"
				perMarket[name] = map[string]any{"status": "restarting"}
				continue
			}
			stats, err := svc.Snapshot(r.Context())
			if err != nil {
				overall = "degraded"
				perMarket[name] = map[string]any{"status": "error", "error": err.Error()}
				continue
			}
			body := healthBody(stats)
			body["inflight"] = e.inflight.Load()
			perMarket[name] = body
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  overall,
			"markets": perMarket,
		})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		agg, err := rt.Stats(r)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, agg)
	})

	mux.HandleFunc("GET /v1/markets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"markets": rt.Names()})
	})

	mux.HandleFunc("POST /v1/markets/{market}/restart", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("market")
		if err := rt.Restart(name); err != nil {
			status := http.StatusInternalServerError
			if _, ok := rt.lookup(name); !ok {
				status = http.StatusNotFound
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"market": name, "restarted": true})
	})

	mux.HandleFunc("/v1/markets/{market}/{rest...}", rt.delegate)

	return mux
}

// delegate routes one request into a market's own API. The outer path
// /v1/markets/{m}/<endpoint> maps onto the market's MarketHandler
// surface: "healthz" to /healthz, everything else under /v1/ — so
// /v1/markets/porto/tasks/3/cancel lands on /v1/tasks/3/cancel of the
// porto service. Router-level admission is charged per market: each
// market's in-flight requests count against only its own MaxInflight,
// so one saturated city sheds 429 without starving the rest.
func (rt *Router) delegate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("market")
	e, ok := rt.lookup(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": fmt.Sprintf("unknown market %q", name),
		})
		return
	}
	if e.maxInflight > 0 {
		if e.inflight.Add(1) > e.maxInflight {
			e.inflight.Add(-1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]string{
				"error": fmt.Sprintf("market %q at its in-flight bound", name),
			})
			return
		}
		defer e.inflight.Add(-1)
	} else {
		e.inflight.Add(1)
		defer e.inflight.Add(-1)
	}

	e.mu.RLock()
	h, down := e.h, e.down
	e.mu.RUnlock()
	if down {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": fmt.Sprintf("market %q is restarting", name),
		})
		return
	}

	rest := r.PathValue("rest")
	inner := "/v1/" + rest
	if rest == "healthz" {
		inner = "/healthz"
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = inner
	r2.URL.RawPath = ""
	h.ServeHTTP(w, r2)
}
