// Package fed federates per-market dispatch services behind one HTTP
// router. Each city/market is an independent dispatch.Service — its own
// books, its own admission bound, optionally its own write-ahead log —
// and the Router exposes them under /v1/markets/{m}/... while
// aggregating /healthz and /v1/stats across the fleet. Isolation is the
// design goal: one overloaded market answers 429 from its own bound
// without starving the rest, and one market can be restarted through
// WAL recovery (Router.Restart) while the others keep serving.
//
// MarketHandler is the single-market HTTP surface; `rideshare serve`
// mounts it at the root and `rideshare router` mounts one per market.
package fed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/dispatch"
)

// MarketHandler wires the HTTP API over one dispatch service:
//
//	GET  /healthz                    liveness + market shape
//	POST /v1/tasks                   submit a task, get the decision
//	GET  /v1/tasks/{id}              current decision (pending on a batched market)
//	POST /v1/tasks/{id}/cancel       rider cancellation   {"at": t}
//	POST /v1/drivers                 announce a driver
//	POST /v1/drivers/{id}/retire     retire a driver      {"at": t}
//	GET  /v1/stats                   settled aggregate stats
//	GET  /v1/events                  assignment feed (server-sent events)
//
// done, when non-nil, tells streaming handlers the server is shutting
// down.
func MarketHandler(svc *dispatch.Service, done <-chan struct{}) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		stats, err := svc.Snapshot(r.Context())
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, healthBody(stats))
	})

	mux.HandleFunc("POST /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		var t dispatch.Task
		if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
			httpError(w, fmt.Errorf("%w: %v", dispatch.ErrInvalidTask, err))
			return
		}
		a, err := svc.SubmitTask(r.Context(), t)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, a)
	})

	mux.HandleFunc("GET /v1/tasks/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("bad id %q: not an integer", r.PathValue("id")),
			})
			return
		}
		a, err := svc.Decision(r.Context(), id)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, a)
	})

	mux.HandleFunc("POST /v1/tasks/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id, at, ok := idAndAt(w, r)
		if !ok {
			return
		}
		out, err := svc.CancelTask(r.Context(), id, at)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /v1/drivers", func(w http.ResponseWriter, r *http.Request) {
		var d dispatch.Driver
		if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
			httpError(w, fmt.Errorf("%w: %v", dispatch.ErrInvalidDriver, err))
			return
		}
		if err := svc.AddDriver(r.Context(), d); err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"driver_id": d.ID, "joined": true})
	})

	mux.HandleFunc("POST /v1/drivers/{id}/retire", func(w http.ResponseWriter, r *http.Request) {
		id, at, ok := idAndAt(w, r)
		if !ok {
			return
		}
		if err := svc.RetireDriver(r.Context(), id, at); err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"driver_id": id, "retired": true})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		stats, err := svc.Snapshot(r.Context())
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, stats)
	})

	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		feed, cancel := svc.Subscribe(1024)
		defer cancel()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-done:
				return // server shutting down
			case ev, ok := <-feed:
				if !ok {
					return // service closed
				}
				data, err := json.Marshal(ev)
				if err != nil {
					return
				}
				fmt.Fprintf(w, "data: %s\n\n", data)
				fl.Flush()
			}
		}
	})

	return mux
}

// healthBody is the /healthz answer for one market; the router reuses
// it per market so the aggregate and the single-market views agree.
func healthBody(stats dispatch.Stats) map[string]any {
	return map[string]any{
		"status":      "ok",
		"now":         stats.Now,
		"drivers":     stats.Drivers,
		"present":     stats.PresentDrivers,
		"tasks":       stats.Tasks,
		"pending":     stats.Pending,
		"max_pending": stats.MaxPending,
		"shed":        stats.Shed,
		"feed_drops":  stats.FeedDrops,
	}
}

// idAndAt parses the {id} path value and the {"at": t} request body
// shared by the cancel and retire endpoints, answering a plain 400
// itself on malformed requests (the typed-error vocabulary is reserved
// for conditions the dispatch service actually reported).
func idAndAt(w http.ResponseWriter, r *http.Request) (id int, at float64, ok bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("bad id %q: not an integer", r.PathValue("id")),
		})
		return 0, 0, false
	}
	var body struct {
		At float64 `json:"at"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("bad request body: %v (want {\"at\": seconds})", err),
		})
		return 0, 0, false
	}
	return id, body.At, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// httpError maps the dispatch package's typed errors onto HTTP status
// codes, keeping the sentinel's text in the JSON body so clients can
// still distinguish conditions sharing a code.
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, dispatch.ErrOverloaded):
		// Backpressure, not failure: the submission was shed at the
		// admission bound and the rider should retry after the market
		// drains (a batched market decides its window within seconds).
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, dispatch.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, dispatch.ErrUnknownTask), errors.Is(err, dispatch.ErrUnknownDriver):
		status = http.StatusNotFound
	case errors.Is(err, dispatch.ErrDuplicateTask), errors.Is(err, dispatch.ErrDuplicateDriver),
		errors.Is(err, dispatch.ErrOutOfOrder):
		status = http.StatusConflict
	case errors.Is(err, dispatch.ErrInvalidTask), errors.Is(err, dispatch.ErrInvalidDriver),
		errors.Is(err, dispatch.ErrInvalidCancel), errors.Is(err, dispatch.ErrInvalidOption):
		status = http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = 499 // client closed request
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
