package fed

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/dispatch"
)

// These tests pin the error vocabulary of the HTTP surface — every
// malformed request and every typed dispatch error must land on the
// documented status code — plus the streaming and shutdown corners the
// end-to-end flows do not reach.

// TestMarketHandlerErrorVocabulary drives one strict-times market
// through each 4xx the single-market surface can produce.
func TestMarketHandlerErrorVocabulary(t *testing.T) {
	fx := newFixture(t, 71, 10, 12, dispatch.WithStrictTimes())
	defer fx.svc.Close()
	srv := httptest.NewServer(MarketHandler(fx.svc, nil))
	defer srv.Close()

	task := fx.tasks[0]
	if code := postJSON(t, srv.URL+"/v1/tasks", task, nil); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}

	post := func(path string, body string) int {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	checks := []struct {
		name string
		got  int
		want int
	}{
		{"task bad body", post("/v1/tasks", "{nope"), http.StatusBadRequest},
		{"decision bad id", getJSON(t, srv.URL+"/v1/tasks/abc", nil), http.StatusBadRequest},
		{"cancel bad id", post("/v1/tasks/abc/cancel", `{"at":1}`), http.StatusBadRequest},
		{"cancel bad body", post("/v1/tasks/0/cancel", "{nope"), http.StatusBadRequest},
		{"cancel unknown task", post("/v1/tasks/999/cancel", `{"at":1e6}`), http.StatusNotFound},
		{"cancel at publish", post("/v1/tasks/0/cancel",
			jsonAt(task.Publish)), http.StatusBadRequest}, // ErrInvalidCancel
		{"driver bad body", post("/v1/drivers", "{nope"), http.StatusBadRequest},
		{"retire bad id", post("/v1/drivers/abc/retire", `{"at":1}`), http.StatusBadRequest},
		{"retire bad body", post("/v1/drivers/0/retire", "{nope"), http.StatusBadRequest},
		{"retire unknown driver", post("/v1/drivers/999/retire", `{"at":1e6}`), http.StatusNotFound},
		{"retire out of order", post("/v1/drivers/0/retire", `{"at":-1e9}`), http.StatusConflict}, // ErrOutOfOrder
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: status %d, want %d", c.name, c.got, c.want)
		}
	}

	// Duplicate driver join: 409 through the drivers endpoint.
	d := dispatch.Driver{ID: 0, Start: 0, End: 86400, SpeedKmh: 30}
	if code := postJSON(t, srv.URL+"/v1/drivers", d, nil); code != http.StatusConflict {
		t.Fatalf("duplicate driver: status %d, want 409", code)
	}
}

func jsonAt(at float64) string {
	return fmt.Sprintf(`{"at":%g}`, at)
}

// TestEventsStreamEdges covers the server-sent-events corners: a writer
// that cannot stream, a service closing mid-stream, and the server's
// done channel ending the stream.
func TestEventsStreamEdges(t *testing.T) {
	t.Run("non-flusher", func(t *testing.T) {
		fx := newFixture(t, 72, 4, 6)
		defer fx.svc.Close()
		h := MarketHandler(fx.svc, nil)
		rec := httptest.NewRecorder()
		// Hide the recorder's Flush so the handler sees a bare writer.
		w := struct{ http.ResponseWriter }{rec}
		h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/events", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("non-flusher: status %d, want 500", rec.Code)
		}
	})

	t.Run("service-closed-ends-stream", func(t *testing.T) {
		fx := newFixture(t, 73, 4, 6)
		srv := httptest.NewServer(MarketHandler(fx.svc, nil))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/v1/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		go fx.svc.Close()
		done := make(chan struct{})
		go func() {
			buf := make([]byte, 256)
			for {
				if _, err := resp.Body.Read(buf); err != nil {
					close(done)
					return
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("stream did not end when the service closed")
		}
	})

	t.Run("server-done-ends-stream", func(t *testing.T) {
		fx := newFixture(t, 74, 4, 6)
		defer fx.svc.Close()
		stop := make(chan struct{})
		srv := httptest.NewServer(MarketHandler(fx.svc, stop))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/v1/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		close(stop)
		done := make(chan struct{})
		go func() {
			buf := make([]byte, 256)
			for {
				if _, err := resp.Body.Read(buf); err != nil {
					close(done)
					return
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("stream did not end on server shutdown")
		}
	})
}

// TestRouterCanceledContext: a client that has already hung up gets 499
// from the stats aggregation, and the health endpoint degrades instead
// of failing when a market's snapshot cannot be taken.
func TestRouterCanceledContext(t *testing.T) {
	fx := newFixture(t, 75, 4, 6)
	defer fx.svc.Close()
	rt := NewRouter(nil)
	if err := rt.Register(Market{Name: "porto", Svc: fx.svc}); err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil).WithContext(ctx))
	if rec.Code != 499 {
		t.Fatalf("stats with canceled context: status %d, want 499", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil).WithContext(ctx))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"degraded"`) {
		t.Fatalf("healthz with canceled context: status %d body %s", rec.Code, rec.Body.String())
	}

	// The single-market surface answers 499 on both snapshot endpoints.
	mh := MarketHandler(fx.svc, nil)
	for _, path := range []string{"/healthz", "/v1/stats"} {
		rec = httptest.NewRecorder()
		mh.ServeHTTP(rec, httptest.NewRequest("GET", path, nil).WithContext(ctx))
		if rec.Code != 499 {
			t.Fatalf("%s with canceled context: status %d, want 499", path, rec.Code)
		}
	}
}

// TestRouterCloseReportsJournalError: settling a durable market whose
// log directory has vanished must surface the failure from Close while
// still reporting every market's stats.
func TestRouterCloseReportsJournalError(t *testing.T) {
	dir := t.TempDir()
	fx := newFixture(t, 76, 4, 6, dispatch.WithDurability(dir))
	rt := NewRouter(nil)
	if err := rt.Register(Market{Name: "porto", Svc: fx.svc, WALDir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.svc.SubmitTask(context.Background(), fx.tasks[0]); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	stats, err := rt.Close()
	if err == nil {
		t.Fatal("closing over a vanished log directory succeeded")
	}
	if _, ok := stats["porto"]; !ok {
		t.Fatal("stats missing despite the close error")
	}
}
