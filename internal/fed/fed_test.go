package fed

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/dispatch"
	"repro/internal/model"
	"repro/internal/trace"
)

// marketFixture is one synthetic city: a fresh dispatch service plus
// the day's publish-sorted order stream.
type marketFixture struct {
	svc   *dispatch.Service
	tasks []dispatch.Task
}

func toDriver(i int, d model.Driver) dispatch.Driver {
	return dispatch.Driver{
		ID: i, Source: dispatch.Point(d.Source), Dest: dispatch.Point(d.Dest),
		Start: d.Start, End: d.End, SpeedKmh: d.SpeedKmh,
	}
}

func toTask(i int, t model.Task) dispatch.Task {
	return dispatch.Task{
		ID: i, Publish: t.Publish, Source: dispatch.Point(t.Source), Dest: dispatch.Point(t.Dest),
		StartBy: t.StartBy, EndBy: t.EndBy, Price: t.Price, WTP: t.WTP,
	}
}

func newFixture(t *testing.T, seed int64, nTasks, nDrivers int, opts ...dispatch.Option) marketFixture {
	t.Helper()
	cfg := trace.NewConfig(seed, nTasks, nDrivers, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	m := dispatch.Market{}
	for i, d := range tr.Drivers {
		m.Drivers = append(m.Drivers, toDriver(i, d))
	}
	tasks := make([]dispatch.Task, len(tr.Tasks))
	for i, task := range tr.Tasks {
		tasks[i] = toTask(i, task)
	}
	svc, err := dispatch.New(m, append([]dispatch.Option{dispatch.WithSeed(seed)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return marketFixture{svc: svc, tasks: tasks}
}

// postJSON posts v and decodes the response, returning the status.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestRouterEndToEnd drives three markets through the full federated
// surface: per-market submissions, cancellations, driver churn,
// decisions, health, and the aggregate stats that must reconcile with
// the per-market books.
func TestRouterEndToEnd(t *testing.T) {
	names := []string{"porto", "lisbon", "braga"}
	fixtures := make(map[string]marketFixture)
	rt := NewRouter(nil)
	for i, name := range names {
		fx := newFixture(t, int64(11+i), 25, 30)
		fixtures[name] = fx
		if err := rt.Register(Market{Name: name, Svc: fx.svc}); err != nil {
			t.Fatal(err)
		}
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	var list struct {
		Markets []string `json:"markets"`
	}
	if code := getJSON(t, srv.URL+"/v1/markets", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/markets: status %d", code)
	}
	if !reflect.DeepEqual(list.Markets, []string{"braga", "lisbon", "porto"}) {
		t.Fatalf("market list %v", list.Markets)
	}

	// Submit every market's day through its own route.
	for _, name := range names {
		for _, task := range fixtures[name].tasks {
			var a dispatch.Assignment
			code := postJSON(t, srv.URL+"/v1/markets/"+name+"/tasks", task, &a)
			if code != http.StatusOK {
				t.Fatalf("market %s task %d: status %d", name, task.ID, code)
			}
		}
	}

	// A cancellation and a driver join/retire through the router land on
	// the right market.
	var cancel dispatch.CancelOutcome
	cURL := srv.URL + "/v1/markets/porto/tasks/0/cancel"
	if code := postJSON(t, cURL, map[string]float64{"at": fixtures["porto"].tasks[0].Publish + 1}, &cancel); code != http.StatusOK {
		t.Fatalf("cancel via router: status %d", code)
	}
	newDriver := dispatch.Driver{ID: 9000, SpeedKmh: 30, End: 1e9}
	if code := postJSON(t, srv.URL+"/v1/markets/braga/drivers", newDriver, nil); code != http.StatusOK {
		t.Fatalf("join via router: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/markets/braga/drivers/9000/retire",
		map[string]float64{"at": 1e8}, nil); code != http.StatusOK {
		t.Fatalf("retire via router: status %d", code)
	}
	var dec dispatch.Assignment
	if code := getJSON(t, srv.URL+"/v1/markets/lisbon/tasks/3", &dec); code != http.StatusOK || dec.TaskID != 3 {
		t.Fatalf("decision via router: status %d, task %d", code, dec.TaskID)
	}

	// Per-market health, through both the aggregate and the market route.
	var health struct {
		Status  string                    `json:"status"`
		Markets map[string]map[string]any `json:"markets"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health.Status != "ok" || len(health.Markets) != 3 {
		t.Fatalf("healthz: status %q, %d markets", health.Status, len(health.Markets))
	}
	var mh map[string]any
	if code := getJSON(t, srv.URL+"/v1/markets/porto/healthz", &mh); code != http.StatusOK || mh["status"] != "ok" {
		t.Fatalf("market healthz: status %d, body %v", code, mh)
	}

	// The aggregate reconciles with the per-market books.
	var agg AggregateStats
	if code := getJSON(t, srv.URL+"/v1/stats", &agg); code != http.StatusOK {
		t.Fatalf("aggregate stats: status %d", code)
	}
	if agg.Markets != 3 || agg.Tasks != 75 {
		t.Fatalf("aggregate: %d markets, %d tasks", agg.Markets, agg.Tasks)
	}
	var sum AggregateStats
	for _, name := range names {
		var ms dispatch.Stats
		if code := getJSON(t, srv.URL+"/v1/markets/"+name+"/stats", &ms); code != http.StatusOK {
			t.Fatalf("market %s stats: status %d", name, code)
		}
		if !reflect.DeepEqual(ms, agg.PerMarket[name]) {
			t.Fatalf("market %s: direct stats %+v != aggregate breakdown %+v", name, ms, agg.PerMarket[name])
		}
		sum.Tasks += ms.Tasks
		sum.Served += ms.Served
		sum.Rejected += ms.Rejected
		sum.Cancelled += ms.Cancelled
		sum.Revenue += ms.Revenue
		sum.Profit += ms.Profit
	}
	if sum.Tasks != agg.Tasks || sum.Served != agg.Served || sum.Rejected != agg.Rejected ||
		sum.Cancelled != agg.Cancelled || sum.Revenue != agg.Revenue || sum.Profit != agg.Profit {
		t.Fatalf("aggregate does not reconcile: sum %+v vs agg %+v", sum, agg)
	}

	// Typed error surface through the router: unknown market, unknown
	// task, duplicate task, malformed id, malformed body.
	if code := getJSON(t, srv.URL+"/v1/markets/madrid/stats", nil); code != http.StatusNotFound {
		t.Fatalf("unknown market: status %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/markets/porto/tasks/99999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown task: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/markets/porto/tasks", fixtures["porto"].tasks[1], nil); code != http.StatusConflict {
		t.Fatalf("duplicate task: status %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/markets/porto/tasks/abc", nil); code != http.StatusBadRequest {
		t.Fatalf("bad task id: status %d", code)
	}
	resp, err := http.Post(srv.URL+"/v1/markets/porto/tasks/0/cancel", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cancel body: status %d", resp.StatusCode)
	}
}

// TestRouterRollingRestart is the federation acceptance test: three
// durable markets, one restarted through WAL recovery mid-day, the
// others serving throughout — and the restarted market's books must be
// bit-identical to a never-restarted reference run of the same stream.
func TestRouterRollingRestart(t *testing.T) {
	names := []string{"porto", "lisbon", "braga"}
	durOpts := []dispatch.DurOption{
		dispatch.DurFsync("interval"),
		dispatch.DurSnapshotEvery(7),
	}
	rt := NewRouter(nil)
	fixtures := make(map[string]marketFixture)
	for i, name := range names {
		dir := filepath.Join(t.TempDir(), name)
		seed := int64(41 + i)
		cfg := trace.NewConfig(seed, 30, 20, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		m := dispatch.Market{}
		for j, d := range tr.Drivers {
			m.Drivers = append(m.Drivers, toDriver(j, d))
		}
		tasks := make([]dispatch.Task, len(tr.Tasks))
		for j, task := range tr.Tasks {
			tasks[j] = toTask(j, task)
		}
		svc, err := dispatch.New(m, dispatch.WithSeed(seed), dispatch.WithDurability(dir, durOpts...))
		if err != nil {
			t.Fatal(err)
		}
		fixtures[name] = marketFixture{svc: svc, tasks: tasks}
		if err := rt.Register(Market{Name: name, Svc: svc, WALDir: dir, DurOpts: durOpts}); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	// Reference for lisbon: the identical stream, never restarted. Same
	// seed, same market, no durability — determinism is the contract.
	refCfg := trace.NewConfig(42, 30, 20, trace.Hitchhiking)
	refTr := trace.NewGenerator(refCfg).Generate(nil)
	refMkt := dispatch.Market{}
	for j, d := range refTr.Drivers {
		refMkt.Drivers = append(refMkt.Drivers, toDriver(j, d))
	}
	ref, err := dispatch.New(refMkt, dispatch.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}

	submit := func(name string, tasks []dispatch.Task) {
		t.Helper()
		for _, task := range tasks {
			if code := postJSON(t, srv.URL+"/v1/markets/"+name+"/tasks", task, nil); code != http.StatusOK {
				t.Fatalf("market %s task %d: status %d", name, task.ID, code)
			}
		}
	}
	half := len(fixtures["lisbon"].tasks) / 2
	for _, name := range names {
		submit(name, fixtures[name].tasks[:half])
	}

	// Roll lisbon: halt, restore from its WAL, swap — over HTTP.
	var restarted struct {
		Market    string `json:"market"`
		Restarted bool   `json:"restarted"`
	}
	if code := postJSON(t, srv.URL+"/v1/markets/lisbon/restart", nil, &restarted); code != http.StatusOK || !restarted.Restarted {
		t.Fatalf("restart: status %d, body %+v", code, restarted)
	}
	if svc, ok := rt.Service("lisbon"); !ok || svc == fixtures["lisbon"].svc {
		t.Fatal("restart did not swap in a restored service")
	}

	// Everyone — including the restarted market — serves the rest of the
	// day.
	for _, name := range names {
		submit(name, fixtures[name].tasks[half:])
	}
	ctx := t.Context()
	for _, task := range fixtures["lisbon"].tasks {
		if _, err := ref.SubmitTask(ctx, task); err != nil {
			t.Fatal(err)
		}
	}

	var lisbon dispatch.Stats
	if code := getJSON(t, srv.URL+"/v1/markets/lisbon/stats", &lisbon); code != http.StatusOK {
		t.Fatalf("lisbon stats: status %d", code)
	}
	want, err := ref.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, lisbon) {
		t.Fatalf("restarted market diverged from the uninterrupted reference:\nwant %+v\ngot  %+v", want, lisbon)
	}
	for _, name := range []string{"porto", "braga"} {
		var ms dispatch.Stats
		if code := getJSON(t, srv.URL+"/v1/markets/"+name+"/stats", &ms); code != http.StatusOK {
			t.Fatalf("market %s stats: status %d", name, code)
		}
		if ms.Tasks != len(fixtures[name].tasks) {
			t.Fatalf("market %s lost traffic across the neighbour's restart: %d tasks", name, ms.Tasks)
		}
	}

	// Error surface: restarting a market with no WAL, and an unknown one.
	eph := newFixture(t, 99, 5, 5)
	if err := rt.Register(Market{Name: "ephemeral", Svc: eph.svc}); err != nil {
		t.Fatal(err)
	}
	var errBody map[string]string
	if code := postJSON(t, srv.URL+"/v1/markets/ephemeral/restart", nil, &errBody); code != http.StatusInternalServerError ||
		!strings.Contains(errBody["error"], "no write-ahead log") {
		t.Fatalf("no-WAL restart: status %d, body %v", code, errBody)
	}
	if code := postJSON(t, srv.URL+"/v1/markets/madrid/restart", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown-market restart: status %d", code)
	}

	// Shutdown settles every market durably; a second Close is
	// idempotent.
	stats, err := rt.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 || stats["lisbon"].Tasks != len(fixtures["lisbon"].tasks) {
		t.Fatalf("close stats: %+v", stats)
	}
	if _, err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// A settled market answers reads with 503 on mutations.
	if code := postJSON(t, srv.URL+"/v1/markets/porto/tasks", dispatch.Task{ID: 777}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("mutation after close: status %d", code)
	}
}

// TestRouterRestartFailureKeepsMarketDown: a restart whose restore
// fails leaves THAT market answering 503 — not half-state — until an
// operator lands a replacement with SetService; other markets are
// untouched.
func TestRouterRestartFailureKeepsMarketDown(t *testing.T) {
	rt := NewRouter(nil)
	broken := newFixture(t, 7, 5, 10)
	healthy := newFixture(t, 8, 5, 10)
	// WALDir points at an empty directory: Halt succeeds, Restore finds
	// no log and fails.
	if err := rt.Register(Market{Name: "broken", Svc: broken.svc, WALDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(Market{Name: "healthy", Svc: healthy.svc}); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	if err := rt.Restart("broken"); err == nil {
		t.Fatal("restart over an empty WAL dir succeeded")
	}
	if code := getJSON(t, srv.URL+"/v1/markets/broken/stats", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("failed-restart market: status %d, want 503", code)
	}
	var health struct {
		Status  string                    `json:"status"`
		Markets map[string]map[string]any `json:"markets"`
	}
	if getJSON(t, srv.URL+"/healthz", &health); health.Status != "degraded" {
		t.Fatalf("healthz with a down market: %q", health.Status)
	}
	if health.Markets["broken"]["status"] != "restarting" {
		t.Fatalf("down market health: %v", health.Markets["broken"])
	}
	if code := getJSON(t, srv.URL+"/v1/markets/healthy/stats", nil); code != http.StatusOK {
		t.Fatalf("healthy market during neighbour outage: status %d", code)
	}
	// A second restart of a down market is refused.
	if err := rt.Restart("broken"); err == nil || !strings.Contains(err.Error(), "already restarting") {
		t.Fatalf("restart of a down market: %v", err)
	}

	// Operator lands a replacement.
	repl := newFixture(t, 9, 5, 10)
	if err := rt.SetService("broken", repl.svc); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, srv.URL+"/v1/markets/broken/stats", nil); code != http.StatusOK {
		t.Fatalf("replaced market: status %d", code)
	}
}

// TestRouterInflightIsolation: the router-level in-flight bound is per
// market — a saturated city sheds 429 while its neighbour serves.
func TestRouterInflightIsolation(t *testing.T) {
	rt := NewRouter(nil)
	porto := newFixture(t, 21, 5, 10)
	lisbon := newFixture(t, 22, 5, 10)
	if err := rt.Register(Market{Name: "porto", Svc: porto.svc, MaxInflight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(Market{Name: "lisbon", Svc: lisbon.svc}); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	// Hold porto's single in-flight slot open with the SSE feed.
	resp, err := http.Get(srv.URL + "/v1/markets/porto/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream: status %d", resp.StatusCode)
	}

	shed, err := http.Get(srv.URL + "/v1/markets/porto/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, shed.Body)
	shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests || shed.Header.Get("Retry-After") == "" {
		t.Fatalf("saturated market: status %d, Retry-After %q", shed.StatusCode, shed.Header.Get("Retry-After"))
	}
	if code := getJSON(t, srv.URL+"/v1/markets/lisbon/stats", nil); code != http.StatusOK {
		t.Fatalf("neighbour of a saturated market: status %d", code)
	}

	// Releasing the stream frees the slot.
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := getJSON(t, srv.URL+"/v1/markets/porto/stats", nil); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("porto never freed its in-flight slot")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterAdmissionIsolation: a market at its own WithMaxPending
// bound sheds 429 through the router without touching its neighbours.
func TestRouterAdmissionIsolation(t *testing.T) {
	rt := NewRouter(nil)
	// A batched market with a huge window and a bound of 1: the first
	// order parks in the window, the second is shed.
	bounded := newFixture(t, 31, 10, 10,
		dispatch.WithBatching(1e6, dispatch.Hungarian), dispatch.WithMaxPending(1))
	open := newFixture(t, 32, 10, 10)
	if err := rt.Register(Market{Name: "bounded", Svc: bounded.svc}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(Market{Name: "open", Svc: open.svc}); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	var a dispatch.Assignment
	if code := postJSON(t, srv.URL+"/v1/markets/bounded/tasks", bounded.tasks[0], &a); code != http.StatusOK || !a.Pending {
		t.Fatalf("first order: status %d, pending %v", code, a.Pending)
	}
	var errBody map[string]string
	if code := postJSON(t, srv.URL+"/v1/markets/bounded/tasks", bounded.tasks[1], &errBody); code != http.StatusTooManyRequests {
		t.Fatalf("order beyond the bound: status %d, body %v", code, errBody)
	}
	if code := postJSON(t, srv.URL+"/v1/markets/open/tasks", open.tasks[0], nil); code != http.StatusOK {
		t.Fatalf("unbounded neighbour: status %d", code)
	}
	var ms dispatch.Stats
	if code := getJSON(t, srv.URL+"/v1/markets/bounded/stats", &ms); code != http.StatusOK || ms.Shed != 1 {
		t.Fatalf("bounded market books: status %d, shed %d", code, ms.Shed)
	}
}

// TestRouterRegisterValidation: malformed registrations are refused
// typed, and the accessors answer sensibly for unknown names.
func TestRouterRegisterValidation(t *testing.T) {
	rt := NewRouter(nil)
	fx := newFixture(t, 3, 5, 5)
	defer fx.svc.Close()
	for _, m := range []Market{
		{Name: "", Svc: fx.svc},
		{Name: "a/b", Svc: fx.svc},
		{Name: "a b", Svc: fx.svc},
		{Name: "ok", Svc: nil},
		{Name: "ok", Svc: fx.svc, MaxInflight: -1},
	} {
		if err := rt.Register(m); err == nil {
			t.Fatalf("registration %+v accepted", m)
		}
	}
	if err := rt.Register(Market{Name: "ok", Svc: fx.svc}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(Market{Name: "ok", Svc: fx.svc}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, ok := rt.Service("nope"); ok {
		t.Fatal("Service answered for an unknown market")
	}
	if err := rt.SetService("nope", fx.svc); err == nil {
		t.Fatal("SetService accepted an unknown market")
	}
	if err := rt.SetService("ok", nil); err == nil {
		t.Fatal("SetService accepted a nil service")
	}
	if err := rt.Restart("nope"); err == nil {
		t.Fatal("Restart accepted an unknown market")
	}
	if got := rt.Names(); len(got) != 1 || got[0] != "ok" {
		t.Fatalf("names %v", got)
	}
	if svc, ok := rt.Service("ok"); !ok || svc != fx.svc {
		t.Fatal("Service accessor mismatch")
	}
}

// TestRouterEventsPassThrough: the SSE feed streams a market's
// assignment through the federated route.
func TestRouterEventsPassThrough(t *testing.T) {
	rt := NewRouter(nil)
	fx := newFixture(t, 51, 5, 20)
	if err := rt.Register(Market{Name: "porto", Svc: fx.svc}); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/markets/porto/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	if code := postJSON(t, srv.URL+"/v1/markets/porto/tasks", fx.tasks[0], nil); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	line := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		line <- string(buf[:n])
	}()
	select {
	case ev := <-line:
		if !strings.Contains(ev, "data: ") {
			t.Fatalf("not an SSE frame: %q", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event arrived on the federated feed")
	}
}
