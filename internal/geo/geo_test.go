package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// porto and lisbon anchor real-world distance checks.
var (
	porto  = Point{Lat: 41.1496, Lon: -8.6109}
	lisbon = Point{Lat: 38.7223, Lon: -9.1393}
)

func TestHaversineKnownDistance(t *testing.T) {
	// Porto–Lisbon is roughly 274 km great-circle.
	d := Haversine(porto, lisbon)
	if d < 265 || d > 285 {
		t.Fatalf("Haversine(Porto, Lisbon) = %.1f km, want ≈ 274", d)
	}
}

func TestHaversineZero(t *testing.T) {
	if d := Haversine(porto, porto); d != 0 {
		t.Fatalf("Haversine(p, p) = %g, want 0", d)
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		return math.Abs(Haversine(a, b)-Haversine(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a := randomPointIn(rng, PortoBox)
		b := randomPointIn(rng, PortoBox)
		c := randomPointIn(rng, PortoBox)
		if Haversine(a, c) > Haversine(a, b)+Haversine(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestEquirectangularMatchesHaversineAtCityScale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a := randomPointIn(rng, PortoBox)
		b := randomPointIn(rng, PortoBox)
		h := Haversine(a, b)
		e := Equirectangular(a, b)
		if h > 0.1 && math.Abs(h-e)/h > 0.01 {
			t.Fatalf("equirectangular error %.3f%% at %v→%v (h=%.4f e=%.4f)",
				100*math.Abs(h-e)/h, a, b, h, e)
		}
	}
}

func TestPointValid(t *testing.T) {
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{math.NaN(), 0}, false},
		{Point{0, math.NaN()}, false},
	}
	for _, tc := range tests {
		if got := tc.p.Valid(); got != tc.want {
			t.Errorf("%v.Valid() = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{Lat: 41.1, Lon: -8.6}).String(); got != "(41.10000, -8.60000)" {
		t.Errorf("String() = %q", got)
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(Point{0, 0}, Point{2, 4})
	if m.Lat != 1 || m.Lon != 2 {
		t.Fatalf("Midpoint = %v, want (1, 2)", m)
	}
}

func TestBoundingBoxContains(t *testing.T) {
	if !PortoBox.Contains(porto) {
		t.Error("PortoBox should contain central Porto")
	}
	if PortoBox.Contains(lisbon) {
		t.Error("PortoBox should not contain Lisbon")
	}
	if !PortoBox.Contains(PortoBox.Center()) {
		t.Error("box should contain its own center")
	}
}

func TestBoundingBoxValid(t *testing.T) {
	if !PortoBox.Valid() {
		t.Error("PortoBox should be valid")
	}
	bad := BoundingBox{MinLat: 1, MaxLat: 0, MinLon: 0, MaxLon: 1}
	if bad.Valid() {
		t.Error("inverted box should be invalid")
	}
}

func TestBoundingBoxDimensions(t *testing.T) {
	// PortoBox spans 0.15° lat ≈ 16.7 km, 0.20° lon ≈ 16.7 km at 41°N.
	if h := PortoBox.HeightKm(); h < 15 || h > 18 {
		t.Errorf("HeightKm = %.2f, want ≈ 16.7", h)
	}
	if w := PortoBox.WidthKm(); w < 15 || w > 18 {
		t.Errorf("WidthKm = %.2f, want ≈ 16.7", w)
	}
}

func TestBoundingBoxClamp(t *testing.T) {
	in := PortoBox.Clamp(lisbon)
	if !PortoBox.Contains(in) {
		t.Fatalf("clamped point %v outside box", in)
	}
	// A point already inside is unchanged.
	if got := PortoBox.Clamp(porto); got != porto {
		t.Fatalf("Clamp moved interior point: %v", got)
	}
}

func TestBoundingBoxLerpCorners(t *testing.T) {
	sw := PortoBox.Lerp(0, 0)
	ne := PortoBox.Lerp(1, 1)
	if sw.Lat != PortoBox.MinLat || sw.Lon != PortoBox.MinLon {
		t.Errorf("Lerp(0,0) = %v, want SW corner", sw)
	}
	if ne.Lat != PortoBox.MaxLat || ne.Lon != PortoBox.MaxLon {
		t.Errorf("Lerp(1,1) = %v, want NE corner", ne)
	}
}

func TestOffsetDistanceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		p := randomPointIn(rng, PortoBox)
		bearing := rng.Float64() * 2 * math.Pi
		dist := rng.Float64() * 20
		q := Offset(p, bearing, dist)
		got := Haversine(p, q)
		if math.Abs(got-dist) > 0.02*dist+0.001 {
			t.Fatalf("Offset %v by %.2f km: measured %.4f km", p, dist, got)
		}
	}
}

func TestOffsetCardinalDirections(t *testing.T) {
	p := porto
	north := Offset(p, 0, 5)
	if north.Lat <= p.Lat || math.Abs(north.Lon-p.Lon) > 1e-9 {
		t.Errorf("north offset moved to %v", north)
	}
	east := Offset(p, math.Pi/2, 5)
	if east.Lon <= p.Lon || math.Abs(east.Lat-p.Lat) > 1e-9 {
		t.Errorf("east offset moved to %v", east)
	}
	south := Offset(p, math.Pi, 5)
	if south.Lat >= p.Lat {
		t.Errorf("south offset moved to %v", south)
	}
}

func clampLat(v float64) float64 {
	return math.Mod(math.Abs(v), 180) - 90
}

func clampLon(v float64) float64 {
	return math.Mod(math.Abs(v), 360) - 180
}

func randomPointIn(rng *rand.Rand, b BoundingBox) Point {
	return b.Lerp(rng.Float64(), rng.Float64())
}
