// Package geo provides geographic primitives used throughout the
// ride-sharing market framework: latitude/longitude points, distance
// computation, bounding boxes, and uniform grids used for surge-pricing
// zones.
//
// Distances are returned in kilometers. Two distance functions are
// provided: exact haversine and a faster equirectangular approximation
// that is accurate to well under 1% at city scale (the scale at which the
// paper's market operates).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius in kilometers.
const EarthRadiusKm = 6371.0088

// Point is a geographic location. Following the paper's notation
// (§III-A), a point is the tuple (u, v) of latitude and longitude in
// degrees.
type Point struct {
	Lat float64 // latitude in degrees, in [-90, 90]
	Lon float64 // longitude in degrees, in [-180, 180]
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.5f, %.5f)", p.Lat, p.Lon)
}

// Valid reports whether the point lies within the legal
// latitude/longitude ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// degToRad converts degrees to radians.
func degToRad(d float64) float64 { return d * math.Pi / 180 }

// Haversine returns the great-circle distance between a and b in
// kilometers using the haversine formula. It is exact on the spherical
// Earth model and numerically stable for small distances.
func Haversine(a, b Point) float64 {
	lat1 := degToRad(a.Lat)
	lat2 := degToRad(b.Lat)
	dLat := lat2 - lat1
	dLon := degToRad(b.Lon - a.Lon)

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Equirectangular returns the approximate distance between a and b in
// kilometers using the equirectangular projection. At city scale (tens of
// kilometers) the error versus haversine is negligible, and it is roughly
// 3x faster; the market simulator uses it on hot paths.
func Equirectangular(a, b Point) float64 {
	meanLat := degToRad((a.Lat + b.Lat) / 2)
	x := degToRad(b.Lon-a.Lon) * math.Cos(meanLat)
	y := degToRad(b.Lat - a.Lat)
	return EarthRadiusKm * math.Hypot(x, y)
}

// DistanceFunc computes the distance in kilometers between two points.
type DistanceFunc func(a, b Point) float64

// Midpoint returns the arithmetic midpoint of a and b. It is adequate at
// city scale where the projection distortion is negligible.
func Midpoint(a, b Point) Point {
	return Point{Lat: (a.Lat + b.Lat) / 2, Lon: (a.Lon + b.Lon) / 2}
}

// BoundingBox is an axis-aligned latitude/longitude rectangle.
type BoundingBox struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// PortoBox approximates the metropolitan area of Porto, Portugal — the
// city whose taxi trace the paper evaluates on (§VI-A).
var PortoBox = BoundingBox{
	MinLat: 41.10, MinLon: -8.70,
	MaxLat: 41.25, MaxLon: -8.50,
}

// Contains reports whether p lies inside the box (inclusive).
func (b BoundingBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the center point of the box.
func (b BoundingBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Valid reports whether the box is non-degenerate and within legal
// coordinate ranges.
func (b BoundingBox) Valid() bool {
	min := Point{Lat: b.MinLat, Lon: b.MinLon}
	max := Point{Lat: b.MaxLat, Lon: b.MaxLon}
	return min.Valid() && max.Valid() && b.MinLat < b.MaxLat && b.MinLon < b.MaxLon
}

// WidthKm returns the east-west extent of the box in kilometers measured
// along its central latitude.
func (b BoundingBox) WidthKm() float64 {
	mid := (b.MinLat + b.MaxLat) / 2
	return Equirectangular(Point{Lat: mid, Lon: b.MinLon}, Point{Lat: mid, Lon: b.MaxLon})
}

// HeightKm returns the north-south extent of the box in kilometers.
func (b BoundingBox) HeightKm() float64 {
	return Equirectangular(Point{Lat: b.MinLat, Lon: b.MinLon}, Point{Lat: b.MaxLat, Lon: b.MinLon})
}

// Clamp returns p moved to the nearest point inside the box.
func (b BoundingBox) Clamp(p Point) Point {
	return Point{
		Lat: math.Min(math.Max(p.Lat, b.MinLat), b.MaxLat),
		Lon: math.Min(math.Max(p.Lon, b.MinLon), b.MaxLon),
	}
}

// Lerp returns the point at fractional position (fLat, fLon) inside the
// box, where (0,0) is the south-west corner and (1,1) the north-east
// corner. It is the primitive used by deterministic Monte-Carlo samplers.
func (b BoundingBox) Lerp(fLat, fLon float64) Point {
	return Point{
		Lat: b.MinLat + fLat*(b.MaxLat-b.MinLat),
		Lon: b.MinLon + fLon*(b.MaxLon-b.MinLon),
	}
}

// Offset returns the point reached by traveling distKm kilometers from p
// at the given bearing (radians clockwise from north), using a local
// flat-Earth approximation that is accurate at city scale. The trace
// generator uses it to place a trip destination at a sampled distance and
// random direction from the pickup.
func Offset(p Point, bearingRad, distKm float64) Point {
	dLat := distKm / EarthRadiusKm * math.Cos(bearingRad) * 180 / math.Pi
	cosLat := math.Cos(degToRad(p.Lat))
	if math.Abs(cosLat) < 1e-9 {
		cosLat = 1e-9
	}
	dLon := distKm / EarthRadiusKm * math.Sin(bearingRad) / cosLat * 180 / math.Pi
	return Point{Lat: p.Lat + dLat, Lon: p.Lon + dLon}
}
