package geo

import (
	"fmt"
	"math"
)

// Grid partitions a bounding box into Rows x Cols rectangular cells.
// The surge-pricing engine (§VI-A, Eq. 15) computes per-zone demand/supply
// imbalance over grid cells; the online dispatchers use it for cheap
// spatial candidate pre-filtering.
type Grid struct {
	Box  BoundingBox
	Rows int // number of latitude bands
	Cols int // number of longitude bands
}

// NewGrid returns a grid over box with the given dimensions. It panics if
// rows or cols are not positive or the box is invalid, since a grid is
// always constructed from static configuration.
func NewGrid(box BoundingBox, rows, cols int) *Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("geo: invalid grid dimensions %dx%d", rows, cols))
	}
	if !box.Valid() {
		panic(fmt.Sprintf("geo: invalid grid box %+v", box))
	}
	return &Grid{Box: box, Rows: rows, Cols: cols}
}

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.Rows * g.Cols }

// CellOf returns the flat cell index of p. Points outside the box are
// clamped to the nearest boundary cell, so the result is always a valid
// index in [0, NumCells).
func (g *Grid) CellOf(p Point) int {
	r, c := g.rowColOf(p)
	return r*g.Cols + c
}

func (g *Grid) rowColOf(p Point) (row, col int) {
	p = g.Box.Clamp(p)
	latSpan := g.Box.MaxLat - g.Box.MinLat
	lonSpan := g.Box.MaxLon - g.Box.MinLon
	row = int(float64(g.Rows) * (p.Lat - g.Box.MinLat) / latSpan)
	col = int(float64(g.Cols) * (p.Lon - g.Box.MinLon) / lonSpan)
	if row >= g.Rows {
		row = g.Rows - 1
	}
	if col >= g.Cols {
		col = g.Cols - 1
	}
	return row, col
}

// CellSpanKm returns a conservative (never over-) estimate of one cell's
// north-south and east-west extent in kilometers. The width is measured
// at the latitude extreme of the box where meridians are closest, so for
// any two points in cells r rows / c cols apart the equirectangular
// distance between them is at least (r-1)*height and (c-1)*width
// respectively. Spatial indexes rely on this bound to prune cells during
// radius queries without ever dropping an in-range point.
func (g *Grid) CellSpanKm() (heightKm, widthKm float64) {
	heightKm = g.Box.HeightKm() / float64(g.Rows)
	minCos := math.Min(math.Abs(math.Cos(degToRad(g.Box.MinLat))), math.Abs(math.Cos(degToRad(g.Box.MaxLat))))
	lonSpan := degToRad(g.Box.MaxLon-g.Box.MinLon) / float64(g.Cols)
	widthKm = EarthRadiusKm * lonSpan * minCos
	return heightKm, widthKm
}

// CellCenter returns the center point of the cell with the given flat
// index. It panics on an out-of-range index.
func (g *Grid) CellCenter(cell int) Point {
	if cell < 0 || cell >= g.NumCells() {
		panic(fmt.Sprintf("geo: cell index %d out of range [0,%d)", cell, g.NumCells()))
	}
	row := cell / g.Cols
	col := cell % g.Cols
	fLat := (float64(row) + 0.5) / float64(g.Rows)
	fLon := (float64(col) + 0.5) / float64(g.Cols)
	return g.Box.Lerp(fLat, fLon)
}

// Neighbors returns the flat indices of the up-to-8 cells adjacent to
// cell (Moore neighborhood), excluding cell itself. The result is a fresh
// slice owned by the caller.
func (g *Grid) Neighbors(cell int) []int {
	if cell < 0 || cell >= g.NumCells() {
		panic(fmt.Sprintf("geo: cell index %d out of range [0,%d)", cell, g.NumCells()))
	}
	row := cell / g.Cols
	col := cell % g.Cols
	out := make([]int, 0, 8)
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			r, c := row+dr, col+dc
			if r < 0 || r >= g.Rows || c < 0 || c >= g.Cols {
				continue
			}
			out = append(out, r*g.Cols+c)
		}
	}
	return out
}
