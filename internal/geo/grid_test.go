package geo

import (
	"math/rand"
	"testing"
)

func TestGridCellOfInRange(t *testing.T) {
	g := NewGrid(PortoBox, 8, 10)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		p := randomPointIn(rng, PortoBox)
		c := g.CellOf(p)
		if c < 0 || c >= g.NumCells() {
			t.Fatalf("CellOf(%v) = %d out of [0,%d)", p, c, g.NumCells())
		}
	}
}

func TestGridClampsOutsidePoints(t *testing.T) {
	g := NewGrid(PortoBox, 4, 4)
	c := g.CellOf(lisbon) // far south-west of the box
	if c < 0 || c >= g.NumCells() {
		t.Fatalf("CellOf(outside) = %d out of range", c)
	}
}

func TestGridCellCenterRoundTrip(t *testing.T) {
	g := NewGrid(PortoBox, 5, 7)
	for c := 0; c < g.NumCells(); c++ {
		if got := g.CellOf(g.CellCenter(c)); got != c {
			t.Fatalf("CellOf(CellCenter(%d)) = %d", c, got)
		}
	}
}

func TestGridCornersMapToCornerCells(t *testing.T) {
	g := NewGrid(PortoBox, 3, 3)
	sw := Point{Lat: PortoBox.MinLat, Lon: PortoBox.MinLon}
	ne := Point{Lat: PortoBox.MaxLat, Lon: PortoBox.MaxLon}
	if c := g.CellOf(sw); c != 0 {
		t.Errorf("SW corner in cell %d, want 0", c)
	}
	if c := g.CellOf(ne); c != g.NumCells()-1 {
		t.Errorf("NE corner in cell %d, want %d", c, g.NumCells()-1)
	}
}

func TestGridNeighbors(t *testing.T) {
	g := NewGrid(PortoBox, 3, 3)
	// Center cell (index 4) has all 8 neighbors.
	if nbs := g.Neighbors(4); len(nbs) != 8 {
		t.Errorf("center neighbors = %d, want 8", len(nbs))
	}
	// Corner cell 0 has 3.
	if nbs := g.Neighbors(0); len(nbs) != 3 {
		t.Errorf("corner neighbors = %d, want 3", len(nbs))
	}
	// Edge cell 1 has 5.
	if nbs := g.Neighbors(1); len(nbs) != 5 {
		t.Errorf("edge neighbors = %d, want 5", len(nbs))
	}
}

func TestGridNeighborsExcludeSelf(t *testing.T) {
	g := NewGrid(PortoBox, 4, 4)
	for c := 0; c < g.NumCells(); c++ {
		for _, nb := range g.Neighbors(c) {
			if nb == c {
				t.Fatalf("cell %d lists itself as neighbor", c)
			}
			if nb < 0 || nb >= g.NumCells() {
				t.Fatalf("cell %d has out-of-range neighbor %d", c, nb)
			}
		}
	}
}

func TestGridPanicsOnBadDimensions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(0 rows) should panic")
		}
	}()
	NewGrid(PortoBox, 0, 3)
}

func TestGridPanicsOnBadCellIndex(t *testing.T) {
	g := NewGrid(PortoBox, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("CellCenter(-1) should panic")
		}
	}()
	g.CellCenter(-1)
}

func TestCellSpanKmIsConservative(t *testing.T) {
	g := NewGrid(PortoBox, 5, 8)
	h, w := g.CellSpanKm()
	if h <= 0 || w <= 0 {
		t.Fatalf("degenerate cell span %.4f x %.4f", h, w)
	}
	wantH := PortoBox.HeightKm() / 5
	if diff := h - wantH; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("height per cell %.6f, want %.6f", h, wantH)
	}
	// The width estimate must never exceed the true east-west separation
	// of two points one cell column apart, at any latitude of the box.
	for _, fLat := range []float64{0, 0.25, 0.5, 0.75, 1} {
		a := PortoBox.Lerp(fLat, 0)
		b := PortoBox.Lerp(fLat, 1.0/8)
		if d := Equirectangular(a, b); w > d+1e-9 {
			t.Errorf("cell width %.6f exceeds true separation %.6f at fLat=%.2f", w, d, fLat)
		}
	}
}
