package model

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// This file implements trace serialization. Traces are exchanged as CSV
// (one row per driver/task, mirroring the column layout of the ECML/PKDD
// Porto dataset the paper evaluates on) and as JSON for programmatic use.

var driverHeader = []string{"driver_id", "src_lat", "src_lon", "dst_lat", "dst_lon", "start", "end", "speed_kmh"}

var taskHeader = []string{"task_id", "publish", "src_lat", "src_lon", "dst_lat", "dst_lon", "start_by", "end_by", "price", "wtp"}

// WriteDriversCSV writes drivers to w in the canonical column layout.
func WriteDriversCSV(w io.Writer, drivers []Driver) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(driverHeader); err != nil {
		return fmt.Errorf("write driver header: %w", err)
	}
	for _, d := range drivers {
		rec := []string{
			strconv.Itoa(d.ID),
			formatF(d.Source.Lat), formatF(d.Source.Lon),
			formatF(d.Dest.Lat), formatF(d.Dest.Lon),
			formatF(d.Start), formatF(d.End),
			formatF(d.SpeedKmh),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write driver %d: %w", d.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDriversCSV parses drivers previously written by WriteDriversCSV.
func ReadDriversCSV(r io.Reader) ([]Driver, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(driverHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read drivers: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("read drivers: missing header")
	}
	drivers := make([]Driver, 0, len(rows)-1)
	for i, row := range rows[1:] {
		var d Driver
		var perr error
		parse := func(s string) float64 {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil && perr == nil {
				perr = err
			}
			return v
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("drivers row %d: bad id %q: %w", i+1, row[0], err)
		}
		d.ID = id
		d.Source.Lat, d.Source.Lon = parse(row[1]), parse(row[2])
		d.Dest.Lat, d.Dest.Lon = parse(row[3]), parse(row[4])
		d.Start, d.End = parse(row[5]), parse(row[6])
		d.SpeedKmh = parse(row[7])
		if perr != nil {
			return nil, fmt.Errorf("drivers row %d: %w", i+1, perr)
		}
		drivers = append(drivers, d)
	}
	return drivers, nil
}

// WriteTasksCSV writes tasks to w in the canonical column layout.
func WriteTasksCSV(w io.Writer, tasks []Task) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(taskHeader); err != nil {
		return fmt.Errorf("write task header: %w", err)
	}
	for _, t := range tasks {
		rec := []string{
			strconv.Itoa(t.ID),
			formatF(t.Publish),
			formatF(t.Source.Lat), formatF(t.Source.Lon),
			formatF(t.Dest.Lat), formatF(t.Dest.Lon),
			formatF(t.StartBy), formatF(t.EndBy),
			formatF(t.Price), formatF(t.WTP),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write task %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTasksCSV parses tasks previously written by WriteTasksCSV.
func ReadTasksCSV(r io.Reader) ([]Task, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(taskHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read tasks: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("read tasks: missing header")
	}
	tasks := make([]Task, 0, len(rows)-1)
	for i, row := range rows[1:] {
		var t Task
		var perr error
		parse := func(s string) float64 {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil && perr == nil {
				perr = err
			}
			return v
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("tasks row %d: bad id %q: %w", i+1, row[0], err)
		}
		t.ID = id
		t.Publish = parse(row[1])
		t.Source.Lat, t.Source.Lon = parse(row[2]), parse(row[3])
		t.Dest.Lat, t.Dest.Lon = parse(row[4]), parse(row[5])
		t.StartBy, t.EndBy = parse(row[6]), parse(row[7])
		t.Price, t.WTP = parse(row[8]), parse(row[9])
		if perr != nil {
			return nil, fmt.Errorf("tasks row %d: %w", i+1, perr)
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// Trace bundles a full market instance for JSON serialization. Events
// is optional: a trace without it replays as the paper's static-fleet,
// no-cancellation day.
type Trace struct {
	Drivers []Driver      `json:"drivers"`
	Tasks   []Task        `json:"tasks"`
	Events  []MarketEvent `json:"events,omitempty"`
}

// WriteTraceJSON writes the instance as indented JSON.
func WriteTraceJSON(w io.Writer, tr Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tr); err != nil {
		return fmt.Errorf("encode trace: %w", err)
	}
	return nil
}

// ReadTraceJSON reads an instance written by WriteTraceJSON.
func ReadTraceJSON(r io.Reader) (Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return Trace{}, fmt.Errorf("decode trace: %w", err)
	}
	return tr, nil
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
