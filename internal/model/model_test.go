package model

import (
	"math"
	"testing"

	"repro/internal/geo"
)

var (
	pA = geo.Point{Lat: 41.15, Lon: -8.61}
	pB = geo.Point{Lat: 41.16, Lon: -8.60}
)

func validDriver() Driver {
	return Driver{ID: 1, Source: pA, Dest: pB, Start: 0, End: 3600}
}

func validTask() Task {
	return Task{ID: 1, Publish: 0, Source: pA, Dest: pB,
		StartBy: 600, EndBy: 1800, Price: 5, WTP: 7}
}

func TestDriverValidate(t *testing.T) {
	if err := validDriver().Validate(); err != nil {
		t.Fatalf("valid driver rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Driver)
	}{
		{"bad source", func(d *Driver) { d.Source.Lat = 100 }},
		{"bad dest", func(d *Driver) { d.Dest.Lon = -999 }},
		{"start after end", func(d *Driver) { d.Start = d.End + 1 }},
		{"start equals end", func(d *Driver) { d.Start = d.End }},
		{"negative speed", func(d *Driver) { d.SpeedKmh = -5 }},
	}
	for _, tc := range cases {
		d := validDriver()
		tc.mut(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestDriverAccessors(t *testing.T) {
	d := validDriver()
	if !d.IsCommuter() {
		t.Error("distinct endpoints should be the hitchhiking model")
	}
	d.Dest = d.Source
	if d.IsCommuter() {
		t.Error("equal endpoints should be the home-work-home model")
	}
	if got := d.WorkingSeconds(); got != 3600 {
		t.Errorf("WorkingSeconds = %g", got)
	}
}

func TestTaskValidate(t *testing.T) {
	if err := validTask().Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Task)
	}{
		{"bad source", func(tk *Task) { tk.Source.Lat = 91 }},
		{"bad dest", func(tk *Task) { tk.Dest.Lat = -91 }},
		{"publish after start", func(tk *Task) { tk.Publish = tk.StartBy }},
		{"start after end", func(tk *Task) { tk.StartBy = tk.EndBy }},
		{"negative price", func(tk *Task) { tk.Price = -1; tk.WTP = 0 }},
		{"price above WTP", func(tk *Task) { tk.Price = tk.WTP + 1 }},
	}
	for _, tc := range cases {
		tk := validTask()
		tc.mut(&tk)
		if err := tk.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestTaskAccessors(t *testing.T) {
	tk := validTask()
	if got := tk.Window(); got != 1200 {
		t.Errorf("Window = %g", got)
	}
	if got := tk.Surplus(); got != 2 {
		t.Errorf("Surplus = %g", got)
	}
}

func TestMarketValidate(t *testing.T) {
	m := DefaultMarket()
	if err := m.Validate(); err != nil {
		t.Fatalf("default market invalid: %v", err)
	}
	bad := m
	bad.Dist = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil Dist accepted")
	}
	bad = m
	bad.SpeedKmh = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero speed accepted")
	}
	bad = m
	bad.GasPerKm = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative gas accepted")
	}
}

func TestTravelTimeAndCost(t *testing.T) {
	m := DefaultMarket()
	d := m.Dist(pA, pB)
	wantTime := d / 30 * 3600
	if got := m.TravelTime(pA, pB, 0); math.Abs(got-wantTime) > 1e-9 {
		t.Errorf("TravelTime = %g, want %g", got, wantTime)
	}
	// Speed override halves the time at 60 km/h.
	if got := m.TravelTime(pA, pB, 60); math.Abs(got-wantTime/2) > 1e-9 {
		t.Errorf("TravelTime(60) = %g, want %g", got, wantTime/2)
	}
	if got := m.TravelCost(pA, pB); math.Abs(got-d*m.GasPerKm) > 1e-12 {
		t.Errorf("TravelCost = %g", got)
	}
}

func TestDriverTravelTimeHonorsOverride(t *testing.T) {
	m := DefaultMarket()
	d := validDriver()
	d.SpeedKmh = 60
	slow := m.TravelTime(pA, pB, 0)
	if got := m.DriverTravelTime(d, pA, pB); math.Abs(got-slow/2) > 1e-9 {
		t.Errorf("DriverTravelTime = %g, want %g", got, slow/2)
	}
}

func TestServiceAndDeadheadHelpers(t *testing.T) {
	m := DefaultMarket()
	tk := validTask()
	if got, want := m.ServiceCost(tk), m.TravelCost(pA, pB); got != want {
		t.Errorf("ServiceCost = %g, want %g", got, want)
	}
	tk2 := validTask()
	tk2.Source = pB
	if got, want := m.DeadheadCost(tk, tk2), m.TravelCost(tk.Dest, tk2.Source); got != want {
		t.Errorf("DeadheadCost = %g, want %g", got, want)
	}
	d := validDriver()
	if got, want := m.BaselineCost(d), m.TravelCost(pA, pB); got != want {
		t.Errorf("BaselineCost = %g, want %g", got, want)
	}
}

func TestValidateAll(t *testing.T) {
	m := DefaultMarket()
	drivers := []Driver{validDriver()}
	tasks := []Task{validTask()}
	if err := ValidateAll(m, drivers, tasks); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	dup := append(drivers, validDriver())
	if err := ValidateAll(m, dup, tasks); err == nil {
		t.Error("duplicate driver ID accepted")
	}
	dupT := append(tasks, validTask())
	if err := ValidateAll(m, drivers, dupT); err == nil {
		t.Error("duplicate task ID accepted")
	}
	badT := []Task{validTask()}
	badT[0].Publish = badT[0].StartBy + 1
	if err := ValidateAll(m, drivers, badT); err == nil {
		t.Error("invalid task accepted")
	}
}
