package model

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleTrace() Trace {
	return Trace{
		Drivers: []Driver{
			{ID: 0, Source: pA, Dest: pB, Start: 100, End: 7200, SpeedKmh: 45},
			{ID: 1, Source: pB, Dest: pB, Start: 0, End: 3600},
		},
		Tasks: []Task{
			{ID: 0, Publish: 10, Source: pA, Dest: pB, StartBy: 500, EndBy: 900, Price: 3.25, WTP: 4},
			{ID: 1, Publish: 20, Source: pB, Dest: pA, StartBy: 700, EndBy: 1400, Price: 5, WTP: 5},
		},
	}
}

func TestDriversCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteDriversCSV(&buf, tr.Drivers); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDriversCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Drivers) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr.Drivers)
	}
}

func TestTasksCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTasksCSV(&buf, tr.Tasks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTasksCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Tasks) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr.Tasks)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch")
	}
}

func TestReadDriversCSVErrors(t *testing.T) {
	if _, err := ReadDriversCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	bad := "driver_id,src_lat,src_lon,dst_lat,dst_lon,start,end,speed_kmh\nxx,1,2,3,4,5,6,7\n"
	if _, err := ReadDriversCSV(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric id accepted")
	}
	badF := "driver_id,src_lat,src_lon,dst_lat,dst_lon,start,end,speed_kmh\n1,oops,2,3,4,5,6,7\n"
	if _, err := ReadDriversCSV(strings.NewReader(badF)); err == nil {
		t.Error("non-numeric field accepted")
	}
	short := "driver_id,src_lat\n1,2\n"
	if _, err := ReadDriversCSV(strings.NewReader(short)); err == nil {
		t.Error("wrong column count accepted")
	}
}

func TestReadTasksCSVErrors(t *testing.T) {
	if _, err := ReadTasksCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	bad := "task_id,publish,src_lat,src_lon,dst_lat,dst_lon,start_by,end_by,price,wtp\nxx,1,2,3,4,5,6,7,8,9\n"
	if _, err := ReadTasksCSV(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric id accepted")
	}
	badF := "task_id,publish,src_lat,src_lon,dst_lat,dst_lon,start_by,end_by,price,wtp\n1,x,2,3,4,5,6,7,8,9\n"
	if _, err := ReadTasksCSV(strings.NewReader(badF)); err == nil {
		t.Error("non-numeric field accepted")
	}
}

func TestReadTraceJSONError(t *testing.T) {
	if _, err := ReadTraceJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestEmptySlicesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDriversCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDriversCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d drivers from empty write", len(got))
	}
}
