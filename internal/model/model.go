// Package model defines the core domain types of the two-sided
// ride-sharing market from the paper's §III-A and Table I: drivers with
// daily travel plans, customer tasks with deadlines, prices and
// willingness-to-pay, and the market-wide cost model.
//
// Times are float64 seconds on a common clock (seconds since the start of
// the simulated horizon). Distances are kilometers, money is in abstract
// currency units.
package model

import (
	"errors"
	"fmt"

	"repro/internal/geo"
)

// Driver is a worker in the market (paper notation: driver n with source
// s_n, destination d_n, working window [t−_n, t+_n]). A driver reveals
// her travel plan before starting work; the special case Source == Dest
// is the "home-work-home" model of §VI-A, while Source != Dest is the
// "hitchhiking" model (e.g. Waze Rider commuters).
type Driver struct {
	ID     int
	Source geo.Point // s_n: where the driver starts her day
	Dest   geo.Point // d_n: where she must end her day
	Start  float64   // t−_n: earliest departure time (seconds)
	End    float64   // t+_n: latest arrival time at Dest (seconds)

	// SpeedKmh optionally overrides the market-wide driving speed for
	// this driver. Zero means "use Market.SpeedKmh".
	SpeedKmh float64
}

// Validate reports whether the driver is internally consistent.
func (d Driver) Validate() error {
	switch {
	case !d.Source.Valid():
		return fmt.Errorf("driver %d: invalid source %v", d.ID, d.Source)
	case !d.Dest.Valid():
		return fmt.Errorf("driver %d: invalid destination %v", d.ID, d.Dest)
	case d.Start >= d.End:
		return fmt.Errorf("driver %d: start %.1f not before end %.1f", d.ID, d.Start, d.End)
	case d.SpeedKmh < 0:
		return fmt.Errorf("driver %d: negative speed %.1f", d.ID, d.SpeedKmh)
	}
	return nil
}

// IsCommuter reports whether the driver follows the "hitchhiking"
// working model (distinct source and destination).
func (d Driver) IsCommuter() bool { return d.Source != d.Dest }

// WorkingSeconds returns the length of the driver's working window.
func (d Driver) WorkingSeconds() float64 { return d.End - d.Start }

// Task is an order submitted by a customer (paper notation: task m with
// publishing time t̄_m, source s̄_m, destination d̄_m, start deadline
// t̄−_m, end deadline t̄+_m, price p_m and willingness-to-pay b_m).
//
// In the online setting StartBy and EndBy are deadlines: the task may
// start and finish earlier, never later.
type Task struct {
	ID      int
	Publish float64   // t̄_m: when the customer submits the order
	Source  geo.Point // s̄_m: pickup location
	Dest    geo.Point // d̄_m: dropoff location
	StartBy float64   // t̄−_m: deadline for the pickup
	EndBy   float64   // t̄+_m: deadline for the dropoff

	Price float64 // p_m: payoff to the serving driver, set by the platform
	WTP   float64 // b_m: the customer's willingness to pay
}

// Validate reports whether the task is internally consistent, enforcing
// the paper's ordering t̄_m < t̄−_m < t̄+_m and individual rationality
// p_m ≤ b_m (a task with p_m > b_m would never be published, §III-A).
func (t Task) Validate() error {
	switch {
	case !t.Source.Valid():
		return fmt.Errorf("task %d: invalid source %v", t.ID, t.Source)
	case !t.Dest.Valid():
		return fmt.Errorf("task %d: invalid destination %v", t.ID, t.Dest)
	case t.Publish >= t.StartBy:
		return fmt.Errorf("task %d: publish %.1f not before start deadline %.1f", t.ID, t.Publish, t.StartBy)
	case t.StartBy >= t.EndBy:
		return fmt.Errorf("task %d: start deadline %.1f not before end deadline %.1f", t.ID, t.StartBy, t.EndBy)
	case t.Price < 0:
		return fmt.Errorf("task %d: negative price %.2f", t.ID, t.Price)
	case t.Price > t.WTP:
		return fmt.Errorf("task %d: price %.2f exceeds willingness-to-pay %.2f", t.ID, t.Price, t.WTP)
	}
	return nil
}

// Window returns the scheduled duration budget t̄+_m − t̄−_m.
func (t Task) Window() float64 { return t.EndBy - t.StartBy }

// Surplus returns the consumer surplus b_m − p_m the customer obtains if
// the task is served.
func (t Task) Surplus() float64 { return t.WTP - t.Price }

// EventKind tags one dynamic market event in a trace.
type EventKind string

// The market event vocabulary. The paper's online model (§V) fixes the
// fleet for the whole day and assumes every published task is served or
// rejected once; these events extend traces with the dynamics a real
// two-sided market faces between those decisions.
const (
	// EventJoin announces a driver mid-day: before At she is invisible
	// to dispatch (the platform does not yet know she exists). Join
	// events normally carry At == the driver's shift start.
	EventJoin EventKind = "join"
	// EventRetire removes a driver from the market at At: she accepts no
	// further tasks (an in-flight task is still completed).
	EventRetire EventKind = "retire"
	// EventCancel is a rider cancellation at At, after the task's
	// publish time. A cancellation that lands before the assigned
	// driver's pickup revokes the assignment; after pickup it is too
	// late and the ride proceeds.
	EventCancel EventKind = "cancel"
)

// MarketEvent is one dynamic event in a trace. Driver and Task are
// indices into the owning Trace's Drivers and Tasks slices (not IDs),
// matching how the simulator addresses both.
type MarketEvent struct {
	At     float64   `json:"at"`
	Kind   EventKind `json:"kind"`
	Driver int       `json:"driver,omitempty"` // join, retire
	Task   int       `json:"task,omitempty"`   // cancel
}

// ValidateEvents checks every event against the trace it belongs to:
// known kind, indices in range, and cancellations strictly after their
// task's publish time (a task cancelled before publication would simply
// never be published).
func ValidateEvents(events []MarketEvent, drivers []Driver, tasks []Task) error {
	for i, ev := range events {
		switch ev.Kind {
		case EventJoin, EventRetire:
			if ev.Driver < 0 || ev.Driver >= len(drivers) {
				return fmt.Errorf("event %d (%s): driver index %d out of range [0,%d)", i, ev.Kind, ev.Driver, len(drivers))
			}
		case EventCancel:
			if ev.Task < 0 || ev.Task >= len(tasks) {
				return fmt.Errorf("event %d (cancel): task index %d out of range [0,%d)", i, ev.Task, len(tasks))
			}
			if ev.At <= tasks[ev.Task].Publish {
				return fmt.Errorf("event %d (cancel): at %.1f not after task %d publish %.1f", i, ev.At, ev.Task, tasks[ev.Task].Publish)
			}
		default:
			return fmt.Errorf("event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// DistanceBatcher answers many distance queries sharing one endpoint in
// a single call. Implementations must return element-for-element
// bitwise the same values the Dist function would: DistManyInto[i] ==
// Dist(origin, targets[i]) and DistManyToInto[i] == Dist(sources[i],
// dest). (The two shapes are distinct because float addition is not
// associative; a shared computation must sit on the side the pairs
// share.) roadnet.Router implements it over contraction hierarchies.
type DistanceBatcher interface {
	DistManyInto(origin geo.Point, targets []geo.Point, out []float64)
	DistManyToInto(sources []geo.Point, dest geo.Point, out []float64)
}

// Market holds the market-wide physical and economic constants used to
// estimate travel times and costs (§III-B). The zero value is not usable;
// construct with DefaultMarket or fill every field.
type Market struct {
	// Dist computes point-to-point distance in kilometers. The paper
	// estimates travel distances between task endpoints; we default to
	// the equirectangular approximation at city scale.
	Dist geo.DistanceFunc

	// Batch optionally accelerates candidate scoring: when non-nil it
	// must agree bitwise with Dist (see DistanceBatcher), and the
	// engine routes shared-endpoint distance batches through it. Nil is
	// always correct — consumers fall back to per-pair Dist calls — so
	// arbitrary WithDistanceFunc metrics keep working unchanged.
	Batch DistanceBatcher

	// SpeedKmh is the estimated average driving speed used to convert
	// distances into travel times.
	SpeedKmh float64

	// GasPerKm is the travel cost per kilometer (the paper multiplies
	// trip distance by the unit price of gasoline, §VI-A).
	GasPerKm float64
}

// DefaultMarket returns a Market with the constants used throughout the
// evaluation: 30 km/h average urban speed and a gasoline cost of 0.09
// currency units per kilometer.
func DefaultMarket() Market {
	return Market{
		Dist:     geo.Equirectangular,
		SpeedKmh: 30,
		GasPerKm: 0.09,
	}
}

// Validate reports whether the market constants are usable.
func (m Market) Validate() error {
	switch {
	case m.Dist == nil:
		return errors.New("market: nil distance function")
	case m.SpeedKmh <= 0:
		return fmt.Errorf("market: non-positive speed %.2f", m.SpeedKmh)
	case m.GasPerKm < 0:
		return fmt.Errorf("market: negative gas cost %.4f", m.GasPerKm)
	}
	return nil
}

// TravelTime returns the estimated time in seconds for a driver with the
// given speed override (0 = market default) to drive from a to b.
func (m Market) TravelTime(a, b geo.Point, speedKmh float64) float64 {
	return m.TravelTimeKm(m.Dist(a, b), speedKmh)
}

// TravelTimeKm converts an already-computed distance to seconds with
// the given speed override (0 = market default). Batched scoring paths
// obtain km from Batch and must convert it through exactly the float
// operations TravelTime performs.
func (m Market) TravelTimeKm(km, speedKmh float64) float64 {
	if speedKmh <= 0 {
		speedKmh = m.SpeedKmh
	}
	return km / speedKmh * 3600
}

// TravelCost returns the estimated monetary cost of driving from a to b.
func (m Market) TravelCost(a, b geo.Point) float64 {
	return m.TravelCostKm(m.Dist(a, b))
}

// TravelCostKm converts an already-computed distance to money,
// mirroring TravelCost's float operations (see TravelTimeKm).
func (m Market) TravelCostKm(km float64) float64 {
	return km * m.GasPerKm
}

// DriverTravelTime returns the travel time for driver d from a to b,
// honoring the driver's speed override.
func (m Market) DriverTravelTime(d Driver, a, b geo.Point) float64 {
	return m.TravelTime(a, b, d.SpeedKmh)
}

// ServiceTime returns l̂_m: the time for a driver to carry task t from
// its source to its destination.
func (m Market) ServiceTime(t Task, speedKmh float64) float64 {
	return m.TravelTime(t.Source, t.Dest, speedKmh)
}

// ServiceCost returns ĉ_m: the cost of carrying task t from its source
// to its destination.
func (m Market) ServiceCost(t Task) float64 {
	return m.TravelCost(t.Source, t.Dest)
}

// DeadheadCost returns c_{m,m'}: the cost of driving empty from the
// destination of task a to the source of task b.
func (m Market) DeadheadCost(a, b Task) float64 {
	return m.TravelCost(a.Dest, b.Source)
}

// BaselineCost returns c_{n,0,−1}: the cost the driver would incur anyway
// driving directly from her source to her destination with no tasks.
// The objective (Eq. 4) subtracts only the *excess* cost over this.
func (m Market) BaselineCost(d Driver) float64 {
	return m.TravelCost(d.Source, d.Dest)
}

// ValidateAll validates the market, every driver and every task, and
// checks for duplicate IDs. It returns the first problem found.
func ValidateAll(m Market, drivers []Driver, tasks []Task) error {
	if err := m.Validate(); err != nil {
		return err
	}
	seenD := make(map[int]bool, len(drivers))
	for _, d := range drivers {
		if err := d.Validate(); err != nil {
			return err
		}
		if seenD[d.ID] {
			return fmt.Errorf("duplicate driver ID %d", d.ID)
		}
		seenD[d.ID] = true
	}
	seenT := make(map[int]bool, len(tasks))
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if seenT[t.ID] {
			return fmt.Errorf("duplicate task ID %d", t.ID)
		}
		seenT[t.ID] = true
	}
	return nil
}
