package bound

// Per-component machinery of the sparse oracle solver: path
// enumeration in EnumeratePaths' order, the warm/greedy incumbent, LP
// reduced-cost fixing, the BruteForce-parity branch and bound, and the
// Lagrangian fallback for components too large to enumerate.

import (
	"math"

	"repro/internal/lp"
	"repro/internal/offline"
)

// solveComp solves component c into s.compRes[c] using sc's arenas.
func (s *SparseSolver) solveComp(in *offline.Instance, opt *SparseOptions, c int, sc *sparseScratch) {
	res := &s.compRes[c]
	*res = compResult{worker: sc.id, firstRec: len(sc.chosenRecs), exact: true}
	cols := in.Comp.ColsByComp[in.Comp.ColPtr[c]:in.Comp.ColPtr[c+1]]
	rows := in.Comp.RowsByComp[in.Comp.RowPtr[c]:in.Comp.RowPtr[c+1]]
	if len(cols) == 0 {
		return // a task no driver can reach
	}

	warmVal := sc.warmComp(in, cols, opt.Warm, res)
	greedyVal := sc.greedyComp(in, cols, rows)
	// Incumbent: the better of the online warm assignment and the
	// offline greedy; ties keep the warm one.
	inc, incWarm := warmVal, true
	if greedyVal > warmVal {
		inc, incWarm = greedyVal, false
	}

	if !sc.enumerateComp(in, cols, opt.PathCap, opt.CompPathCap) {
		// Too big to enumerate: keep the incumbent, bound the gap.
		res.exact = false
		res.objective = sc.emitIncumbent(in, cols, incWarm, res)
		ub := sc.lagrangeComp(in, cols, rows, inc, opt.LagIters)
		ub += 1e-7 * (1 + math.Abs(ub))
		if ub < res.objective {
			ub = res.objective
		}
		res.ub = ub
		return
	}

	if opt.LP && len(sc.paths) > 0 &&
		len(cols)+len(rows) <= opt.LPMaxRows && len(sc.paths) <= opt.LPMaxCols {
		sc.lpFix(in, cols, rows, inc, incWarm, res)
	}

	obj, aborted := sc.branchAndBound(in, cols, res, opt.NodeCap, inc, incWarm)
	res.objective = obj
	if aborted {
		res.exact = false
		ub := sc.lagrangeComp(in, cols, rows, obj, opt.LagIters)
		ub += 1e-7 * (1 + math.Abs(ub))
		if ub < obj {
			ub = obj
		}
		res.ub = ub
		return
	}
	res.ub = obj
}

// enumerateComp fills sc.paths / sc.pathSlots / sc.drvPathPtr with each
// component driver's positive-value paths, in exactly the order
// EnumeratePaths visits them (first tasks in natural task order, then
// successors in topo order, pre-order). Returns false if a cap blew.
func (sc *sparseScratch) enumerateComp(in *offline.Instance, cols []int, pathCap, compPathCap int) bool {
	sc.paths = sc.paths[:0]
	sc.pathSlots = sc.pathSlots[:0]
	sc.drvPathPtr = growI32(sc.drvPathPtr, len(cols)+1)
	sc.drvPathPtr[0] = 0
	for i, d := range cols {
		enumerated := 0
		for si := in.DrvPtr[d]; si < in.DrvPtr[d+1]; si++ {
			if !in.DrvSrcOK[si] {
				continue
			}
			acc := -in.DrvSrcCost[si]
			acc += in.Value[in.DrvTask[si]]
			sc.frames = sc.frames[:0]
			sc.frames = append(sc.frames, dfsFrame{slot: int32(si), k: int32(in.DrvSuccPtr[si]), acc: acc})
			for len(sc.frames) > 0 {
				top := len(sc.frames) - 1
				f := &sc.frames[top]
				if f.k == int32(in.DrvSuccPtr[int(f.slot)]) {
					// First visit: record the prefix ending here.
					enumerated++
					if enumerated > pathCap || len(sc.paths) > compPathCap {
						return false
					}
					r := f.acc - in.DrvSnkCost[f.slot]
					r += in.Baseline[d]
					if r > 0 {
						off := int32(len(sc.pathSlots))
						for j := 0; j <= top; j++ {
							sc.pathSlots = append(sc.pathSlots, sc.frames[j].slot)
						}
						sc.paths = append(sc.paths, pathRec{off: off, n: int32(top + 1), value: r})
					}
				}
				if int(f.k) < in.DrvSuccPtr[int(f.slot)+1] {
					child := in.DrvSucc[f.k]
					acc2 := f.acc + in.Value[in.DrvTask[child]]
					acc2 -= in.DrvSuccCost[f.k]
					f.k++
					sc.frames = append(sc.frames, dfsFrame{slot: child, k: int32(in.DrvSuccPtr[child]), acc: acc2})
					continue
				}
				sc.frames = sc.frames[:top]
			}
		}
		sc.drvPathPtr[i+1] = int32(len(sc.paths))
	}
	return true
}

// bestPathDP runs the per-driver longest-path DP over d's slots in topo
// order under the dead-task mask and optional Lagrangian adjustment,
// returning the best positive closing value and its end slot (-1 for
// the empty path).
func (sc *sparseScratch) bestPathDP(in *offline.Instance, d int, lambda []float64) (float64, int32) {
	lo, hi := in.DrvPtr[d], in.DrvPtr[d+1]
	topo := in.DrvTopo[lo:hi]
	ninf := math.Inf(-1)
	for _, si := range topo {
		if in.DrvSrcOK[si] && !sc.dead[in.DrvTask[si]] {
			sc.cur[si] = -in.DrvSrcCost[si]
		} else {
			sc.cur[si] = ninf
		}
		sc.prevS[si] = -1
	}
	best, bestEnd := 0.0, int32(-1)
	for _, si := range topo {
		mi := in.DrvTask[si]
		if sc.dead[mi] {
			continue
		}
		cv := sc.cur[si]
		if cv == ninf {
			continue
		}
		v := cv + in.Value[mi]
		if lambda != nil {
			v -= lambda[mi]
		}
		r := v - in.DrvSnkCost[si]
		r += in.Baseline[d]
		if r > best {
			best, bestEnd = r, si
		}
		for k := in.DrvSuccPtr[int(si)]; k < in.DrvSuccPtr[int(si)+1]; k++ {
			sj := in.DrvSucc[k]
			cand := v - in.DrvSuccCost[k]
			if cand > sc.cur[sj] {
				sc.cur[sj] = cand
				sc.prevS[sj] = si
			}
		}
	}
	return best, bestEnd
}

// reconstruct appends the prevS chain ending at end to dst in forward
// order and returns the extended slice.
func (sc *sparseScratch) reconstruct(end int32, dst []int32) []int32 {
	start := len(dst)
	for s := end; s >= 0; s = sc.prevS[s] {
		dst = append(dst, s)
	}
	// Reverse in place.
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// greedyComp builds the offline greedy incumbent: repeatedly commit the
// best remaining single-driver path (ties to the lower compact driver),
// invalidating cached paths lazily. Returns the left-associated value
// over the component's drivers ascending. Restores sc.dead to all
// false.
func (sc *sparseScratch) greedyComp(in *offline.Instance, cols, rows []int) float64 {
	nd := len(cols)
	sc.gOff = growI32(sc.gOff, nd)
	sc.gLen = growI32(sc.gLen, nd)
	sc.gVal = growF64(sc.gVal, nd)
	sc.gDone = growBools(sc.gDone, nd)
	sc.gSlots = sc.gSlots[:0]
	for i := 0; i < nd; i++ {
		sc.gDone[i] = false
		sc.gLen[i] = -1 // no cached path yet
	}
	for {
		bi := -1
		for i := 0; i < nd; i++ {
			if sc.gDone[i] {
				continue
			}
			stale := sc.gLen[i] < 0
			if !stale {
				for _, slot := range sc.gSlots[sc.gOff[i] : sc.gOff[i]+sc.gLen[i]] {
					if sc.dead[in.DrvTask[slot]] {
						stale = true
						break
					}
				}
			}
			if stale {
				v, end := sc.bestPathDP(in, cols[i], nil)
				sc.gOff[i] = int32(len(sc.gSlots))
				sc.gSlots = sc.reconstruct(end, sc.gSlots)
				sc.gLen[i] = int32(len(sc.gSlots)) - sc.gOff[i]
				sc.gVal[i] = v
			}
			if sc.gVal[i] > 0 && (bi < 0 || sc.gVal[i] > sc.gVal[bi]) {
				bi = i
			}
		}
		if bi < 0 {
			break
		}
		sc.gDone[bi] = true
		// Re-value the committed path canonically so incumbent values
		// are comparable with enumerated path values.
		slots := sc.gSlots[sc.gOff[bi] : sc.gOff[bi]+sc.gLen[bi]]
		if v, err := in.PathValue(cols[bi], slots); err == nil {
			sc.gVal[bi] = v
		}
		for _, slot := range slots {
			sc.dead[in.DrvTask[slot]] = true
		}
	}
	total := 0.0
	for i := 0; i < nd; i++ {
		if sc.gDone[i] {
			total += sc.gVal[i]
		} else {
			sc.gLen[i] = -1 // not part of the incumbent
		}
	}
	for _, m := range rows {
		sc.dead[m] = false
	}
	return total
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// warmComp validates the online assignment's paths for the component's
// drivers against the compiled hindsight graph and stores the
// survivors. Returns their left-associated value, drivers ascending.
// Restores sc.used to all false.
func (sc *sparseScratch) warmComp(in *offline.Instance, cols []int, warm [][]int, res *compResult) float64 {
	nd := len(cols)
	sc.wOff = growI32(sc.wOff, nd)
	sc.wLen = growI32(sc.wLen, nd)
	sc.wVal = growF64(sc.wVal, nd)
	sc.wSlots = sc.wSlots[:0]
	total := 0.0
	for i, d := range cols {
		sc.wLen[i] = -1
		orig := in.DrvID[d]
		if orig >= len(warm) || len(warm[orig]) == 0 {
			continue
		}
		tasks := warm[orig]
		off := int32(len(sc.wSlots))
		ok := true
		for _, m := range tasks {
			slot := in.Slot(d, m)
			if slot < 0 || sc.used[m] {
				ok = false
				break
			}
			sc.wSlots = append(sc.wSlots, int32(slot))
		}
		if ok {
			slots := sc.wSlots[off:]
			v, err := in.PathValue(d, slots)
			if err != nil || !(v > 0) {
				ok = false
			} else {
				sc.wOff[i] = off
				sc.wLen[i] = int32(len(slots))
				sc.wVal[i] = v
				total += v
				for _, slot := range slots {
					sc.used[in.DrvTask[slot]] = true
				}
			}
		}
		if !ok {
			sc.wSlots = sc.wSlots[:off]
			res.warmDrop++
		} else {
			res.warmKept++
		}
	}
	for i := 0; i < nd; i++ {
		if sc.wLen[i] >= 0 {
			for _, slot := range sc.wSlots[sc.wOff[i] : sc.wOff[i]+sc.wLen[i]] {
				sc.used[in.DrvTask[slot]] = false
			}
		}
	}
	return total
}

// emitIncumbent copies the warm (incWarm) or greedy incumbent into the
// worker's chosen arena and returns its left-associated value.
func (sc *sparseScratch) emitIncumbent(in *offline.Instance, cols []int, incWarm bool, res *compResult) float64 {
	offs, lens, vals := sc.wOff, sc.wLen, sc.wVal
	arena := sc.wSlots
	if !incWarm {
		offs, lens, vals = sc.gOff, sc.gLen, sc.gVal
		arena = sc.gSlots
	}
	total := 0.0
	for i := range cols {
		if lens[i] < 0 || lens[i] == 0 {
			continue
		}
		off := int32(len(sc.chosenSlots))
		sc.chosenSlots = append(sc.chosenSlots, arena[offs[i]:offs[i]+lens[i]]...)
		sc.chosenRecs = append(sc.chosenRecs, chosenRec{
			driver: int32(cols[i]), off: off, n: lens[i], value: vals[i],
		})
		res.nRecs++
		total += vals[i]
	}
	return total
}

// lpFix solves the component's path-packing LP relaxation, warm-started
// from the incumbent's columns, and fixes out every path whose reduced
// cost proves it cannot appear in a solution beating the incumbent. The
// 1e-6 slack absorbs simplex dual tolerance, so surviving optima are
// untouched and BruteForce parity is preserved.
func (sc *sparseScratch) lpFix(in *offline.Instance, cols, rows []int, inc float64, incWarm bool, res *compResult) {
	nd, nv := len(cols), len(sc.paths)
	for li, m := range rows {
		sc.taskRow[m] = int32(nd + li)
	}
	prob := lp.NewProblem(nv)
	for i := 0; i < nd+len(rows); i++ {
		prob.AddRow(lp.LE, 1)
	}
	for i := 0; i < nd; i++ {
		for pi := sc.drvPathPtr[i]; pi < sc.drvPathPtr[i+1]; pi++ {
			p := sc.paths[pi]
			prob.SetObjective(int(pi), p.value)
			prob.SetCoeff(i, int(pi), 1)
			for _, slot := range sc.pathSlots[p.off : p.off+p.n] {
				prob.SetCoeff(int(sc.taskRow[in.DrvTask[slot]]), int(pi), 1)
			}
		}
	}
	// Crash basis: the incumbent's columns, located by slot-sequence
	// match within each driver's enumeration block.
	sc.warmCols = sc.warmCols[:0]
	offs, lens := sc.wOff, sc.wLen
	arena := sc.wSlots
	if !incWarm {
		offs, lens = sc.gOff, sc.gLen
		arena = sc.gSlots
	}
	for i := 0; i < nd; i++ {
		if lens[i] <= 0 {
			continue
		}
		want := arena[offs[i] : offs[i]+lens[i]]
		for pi := sc.drvPathPtr[i]; pi < sc.drvPathPtr[i+1]; pi++ {
			p := sc.paths[pi]
			if p.n != int32(len(want)) {
				continue
			}
			same := true
			for j, slot := range sc.pathSlots[p.off : p.off+p.n] {
				if slot != want[j] {
					same = false
					break
				}
			}
			if same {
				sc.warmCols = append(sc.warmCols, int(pi))
				break
			}
		}
	}
	sol, err := sc.lps.SolveWarm(prob, sc.warmCols)
	if err != nil || sol.Status != lp.Optimal {
		return
	}
	res.lpSolved++
	zlp := sol.Objective
	fixTol := 1e-6 * (1 + math.Abs(inc))
	sc.drop = growBools(sc.drop, nv)
	fixed := 0
	for i := 0; i < nd; i++ {
		for pi := sc.drvPathPtr[i]; pi < sc.drvPathPtr[i+1]; pi++ {
			p := sc.paths[pi]
			red := p.value - sol.Duals[i]
			for _, slot := range sc.pathSlots[p.off : p.off+p.n] {
				red -= sol.Duals[sc.taskRow[in.DrvTask[slot]]]
			}
			sc.drop[pi] = zlp+red < inc-fixTol
			if sc.drop[pi] {
				fixed++
			}
		}
	}
	if fixed == 0 {
		return
	}
	res.lpFixed = fixed
	// Compact the per-driver path lists in place, preserving order.
	// Segments stay contiguous, so each driver's new start doubles as
	// the previous driver's end.
	out := 0
	for i := 0; i < nd; i++ {
		start := out
		for pi := int(sc.drvPathPtr[i]); pi < int(sc.drvPathPtr[i+1]); pi++ {
			if !sc.drop[pi] {
				sc.paths[out] = sc.paths[pi]
				out++
			}
		}
		sc.drvPathPtr[i] = int32(start)
	}
	sc.drvPathPtr[nd] = int32(out)
	sc.paths = sc.paths[:out]
}

// bbState carries the branch-and-bound recursion without closures so
// the steady-state re-solve path stays allocation-free.
type bbState struct {
	in      *offline.Instance
	sc      *sparseScratch
	cols    []int
	nd      int
	best    float64
	margin  float64
	nodes   int
	cap     int
	aborted bool
}

// branchAndBound reproduces BruteForce's recursion on the component:
// drivers ascending, skip-first, paths in enumeration order, strict
// improvement at the leaves — plus sound suffix/value pruning that can
// never cut a strict improvement, so objective AND argmax match the
// brute force bit for bit. A search that exhausts nodeCap aborts with
// whatever it has; if that beats the incumbent it is emitted anyway
// (still a feasible solution), otherwise the incumbent is kept.
func (sc *sparseScratch) branchAndBound(in *offline.Instance, cols []int, res *compResult, nodeCap int, inc float64, incWarm bool) (float64, bool) {
	nd := len(cols)
	sc.suffix = growF64(sc.suffix, nd+1)
	sc.suffix[nd] = 0
	for i := nd - 1; i >= 0; i-- {
		maxv := 0.0
		for pi := sc.drvPathPtr[i]; pi < sc.drvPathPtr[i+1]; pi++ {
			if v := sc.paths[pi].value; v > maxv {
				maxv = v
			}
		}
		sc.suffix[i] = sc.suffix[i+1] + maxv
	}
	sc.choice = growI32(sc.choice, nd)
	sc.bestChoice = growI32(sc.bestChoice, nd)
	for i := 0; i < nd; i++ {
		sc.bestChoice[i] = -1
	}
	bb := bbState{
		in: in, sc: sc, cols: cols, nd: nd,
		margin: 1e-9 * (1 + sc.suffix[0]),
		cap:    nodeCap,
	}
	bb.rec(0, 0)
	res.nodes += bb.nodes
	if bb.aborted && !(bb.best > inc) {
		return sc.emitIncumbent(in, cols, incWarm, res), true
	}
	// Emit the winning choice ascending by driver.
	total := 0.0
	for i := 0; i < nd; i++ {
		pi := sc.bestChoice[i]
		if pi < 0 {
			continue
		}
		p := sc.paths[pi]
		off := int32(len(sc.chosenSlots))
		sc.chosenSlots = append(sc.chosenSlots, sc.pathSlots[p.off:p.off+p.n]...)
		sc.chosenRecs = append(sc.chosenRecs, chosenRec{
			driver: int32(cols[i]), off: off, n: p.n, value: p.value,
		})
		res.nRecs++
		total += p.value
	}
	return total, bb.aborted
}

func (b *bbState) rec(i int, total float64) {
	if b.aborted {
		return
	}
	b.nodes++
	if b.nodes > b.cap {
		b.aborted = true
		return
	}
	sc := b.sc
	if i == b.nd {
		if total > b.best {
			b.best = total
			copy(sc.bestChoice[:b.nd], sc.choice[:b.nd])
		}
		return
	}
	if total+sc.suffix[i] < b.best-b.margin {
		return
	}
	sc.choice[i] = -1
	b.rec(i+1, total)
	for pi := sc.drvPathPtr[i]; pi < sc.drvPathPtr[i+1]; pi++ {
		p := sc.paths[pi]
		slots := sc.pathSlots[p.off : p.off+p.n]
		ok := true
		for _, slot := range slots {
			if sc.used[b.in.DrvTask[slot]] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if total+p.value+sc.suffix[i+1] < b.best-b.margin {
			continue
		}
		for _, slot := range slots {
			sc.used[b.in.DrvTask[slot]] = true
		}
		sc.choice[i] = pi
		b.rec(i+1, total+p.value)
		for _, slot := range slots {
			sc.used[b.in.DrvTask[slot]] = false
		}
	}
	sc.choice[i] = -1
}

// lagrangeComp computes a subgradient upper bound on the component's
// integral optimum: L(λ) = Σ_m λ_m + Σ_d max(0, bestpath_d(λ)) is valid
// for every λ ≥ 0. lb (the incumbent) steers the step size. Restores
// nothing — λ and grad are component-local and re-seeded next call.
func (sc *sparseScratch) lagrangeComp(in *offline.Instance, cols, rows []int, lb float64, iters int) float64 {
	for _, m := range rows {
		sc.lambda[m] = 0
	}
	bestL := math.Inf(1)
	theta := 2.0
	noImp := 0
	for it := 0; it < iters; it++ {
		L := 0.0
		for _, m := range rows {
			L += sc.lambda[m]
			sc.grad[m] = 1
		}
		for _, d := range cols {
			v, end := sc.bestPathDP(in, d, sc.lambda)
			if v > 0 {
				L += v
				for s := end; s >= 0; s = sc.prevS[s] {
					sc.grad[in.DrvTask[s]]--
				}
			}
		}
		if L < bestL {
			bestL = L
			noImp = 0
		} else {
			noImp++
			if noImp >= 10 {
				theta /= 2
				noImp = 0
			}
		}
		gnorm := 0.0
		for _, m := range rows {
			g := float64(sc.grad[m])
			gnorm += g * g
		}
		if gnorm == 0 {
			break
		}
		step := theta * (L - lb) / gnorm
		if !(step > 0) {
			break
		}
		for _, m := range rows {
			nl := sc.lambda[m] - step*float64(sc.grad[m])
			if nl < 0 {
				nl = 0
			}
			sc.lambda[m] = nl
		}
	}
	return bestL
}
